module p2plb

go 1.22

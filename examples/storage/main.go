// Storage: run the balancer as a long-lived service over an
// object-backed workload. Objects are hashed into the identifier space
// (a virtual server's load is the sum of its objects' loads — the
// paper's own justification for the Gaussian model), 10% of the object
// population churns between rounds, and the daemon periodically runs
// full message-level balancing rounds while keeping the K-nary tree
// repaired.
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"math/rand"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/daemon"
	"p2plb/internal/ktree"
	"p2plb/internal/objects"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

func main() {
	eng := sim.NewEngine(2024)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < 256; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), 5)
	}

	// 100k objects with Zipf popularity: a few hot items, a long tail.
	store := objects.NewStore(ring)
	rng := rand.New(rand.NewSource(7))
	loadFn := objects.ZipfLoads(rng, 1.3, 1, 1<<16, 0.25)
	if err := store.Populate(rng, 100_000, loadFn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nodes, %d virtual servers, %d objects (total load %.0f)\n",
		len(ring.AliveNodes()), ring.NumVServers(), store.Len(), store.TotalLoad())

	tree, err := ktree.New(ring, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		log.Fatal(err)
	}

	d, err := daemon.New(ring, tree, daemon.Config{
		RoundInterval:  5_000,
		RepairInterval: 1_000,
		Protocol:       protocol.Config{Core: core.Config{Epsilon: 0.05}},
		BeforeRound: func() {
			// Workload drift between rounds: 10% of objects churn.
			if err := store.Drift(rng, 10_000, loadFn); err != nil {
				log.Fatal(err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	eng.RunUntil(60_000)
	d.Stop()
	eng.Run()

	fmt.Println("\n round  t(start)  Gini before  Gini after  moved load  transfers")
	for i, rec := range d.History() {
		if rec.Err != nil {
			fmt.Printf("%6d  %8d  round failed: %v\n", i+1, rec.StartedAt, rec.Err)
			continue
		}
		fmt.Printf("%6d  %8d  %11.3f  %10.3f  %10.0f  %9d\n",
			i+1, rec.StartedAt, rec.GiniBefore, rec.GiniAfter,
			rec.Result.MovedLoad, len(rec.Result.Assignments))
	}
	sum := d.Summarize()
	fmt.Printf("\n%d rounds (%d failed), %.0f load moved in total; mean Gini %.3f -> %.3f\n",
		sum.Rounds, sum.Failed, sum.TotalMoved, sum.MeanGiniPre, sum.MeanGiniPost)
	if err := store.CheckLoads(1e-6); err != nil {
		log.Fatal(err)
	}
	fmt.Println("object accounting consistent after the whole run")
	fmt.Println("\nnote: the residual Gini (~0.3) is the capacity-granularity floor —")
	fmt.Println("capacity-1 nodes cannot hold a proportional share of any virtual server.")
}

// Quickstart: build a small heterogeneous Chord ring with virtual
// servers, run one proximity-ignorant load-balancing round, and print
// what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
	"p2plb/internal/workload"
)

func main() {
	// Everything runs on a deterministic discrete-event engine: same
	// seed, same run.
	eng := sim.NewEngine(42)

	// A ring of 64 physical nodes, each hosting 5 virtual servers with
	// random identifiers. Capacities follow the paper's Gnutella-like
	// profile: a few powerful nodes, many weak ones.
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < 64; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), 5)
	}

	// Draw each virtual server's load from the Gaussian model: mean
	// proportional to the identifier-space fraction it owns.
	mu := 64.0 * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 200}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}

	// The distributed K-nary tree (K=2) is the aggregation and
	// rendezvous infrastructure for load balancing.
	tree, err := ktree.New(ring, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring: %d nodes, %d virtual servers; KT tree: %d nodes, height %d\n",
		len(ring.AliveNodes()), ring.NumVServers(), tree.NumNodes(), tree.Height())

	// Run one complete load-balancing round.
	balancer, err := core.NewBalancer(ring, tree, core.Config{Epsilon: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	before := balancer.UnitLoads()
	res, err := balancer.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	after := balancer.UnitLoads()

	fmt.Printf("\nglobal LBI: total load %.0f, total capacity %.0f, min VS load %.2f\n",
		res.Global.L, res.Global.C, res.Global.Lmin)
	fmt.Printf("before: %d heavy / %d light / %d neutral\n",
		res.HeavyBefore, res.LightBefore, res.NeutralBefore)
	fmt.Printf("after:  %d heavy / %d light / %d neutral\n",
		res.HeavyAfter, res.LightAfter, res.NeutralAfter)
	fmt.Printf("moved %.0f load (%.1f%% of total) in %d virtual-server transfers\n",
		res.MovedLoad, 100*res.MovedLoad/res.Global.L, len(res.Assignments))

	sb, sa := stats.Summarize(before), stats.Summarize(after)
	fmt.Printf("\nunit load (load/capacity): mean %.2f -> %.2f, max %.2f -> %.2f, std %.2f -> %.2f\n",
		sb.Mean, sa.Mean, sb.Max, sa.Max, sb.Std, sa.Std)

	fmt.Printf("\nphase times (latency units): LBI up %d, down %d, VSA done %d, VST done %d\n",
		res.TimeLBIAggregate, res.TimeLBIDisseminate, res.TimeVSAComplete, res.TimeVSTComplete)
	fmt.Printf("protocol messages: %d total\n", eng.TotalMessages())
	for _, kind := range eng.MessageKinds() {
		fmt.Printf("  %-20s %6d msgs, total cost %d\n", kind, eng.MessageCount(kind), eng.MessageCost(kind))
	}
}

// Heterogeneous capacities: the paper's central claim is that load
// balancing should align the two skews inherent in P2P systems — skewed
// load distribution and skewed node capabilities — so that high-capacity
// nodes carry proportionally more load.
//
// This example runs the balancer under both load models the paper
// evaluates (Gaussian and the heavy-tailed Pareto) and shows, per
// capacity class, the mean load and the mean unit load (load/capacity)
// before and after. After balancing, unit load is nearly flat across
// classes: a capacity-10⁴ node carries ~10⁴× the load of a capacity-1
// node.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"p2plb/internal/exp"
)

func main() {
	for _, pareto := range []bool{false, true} {
		name := "Gaussian"
		if pareto {
			name = "Pareto(α=1.5)"
		}
		s := exp.DefaultSetup(7)
		s.Nodes = 1024 // laptop-friendly; use 4096 to match the paper exactly
		s.Pareto = pareto
		inst, err := exp.Build(s)
		if err != nil {
			log.Fatal(err)
		}
		before := inst.Balancer.LoadByCapacityClass()
		res, err := inst.Balancer.RunRound()
		if err != nil {
			log.Fatal(err)
		}
		after := inst.Balancer.LoadByCapacityClass()

		fmt.Printf("%s loads, %d nodes: %d heavy before, %d after; moved %.1f%% of total load\n",
			name, s.Nodes, res.HeavyBefore, res.HeavyAfter, 100*res.MovedLoad/res.Global.L)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  capacity\tnodes\tmean load before\tafter\tunit load before\tafter")
		for _, c := range before.Classes() {
			fmt.Fprintf(w, "  %.0f\t%d\t%.1f\t%.1f\t%.3f\t%.3f\n",
				c, before.Count(c), before.Mean(c), after.Mean(c),
				before.Mean(c)/c, after.Mean(c)/c)
		}
		w.Flush()
		fmt.Println()
	}
	fmt.Println("note: the flat 'unit load after' column is the aligned-skews result")
	fmt.Println("(compare the paper's Figures 5 and 6).")
}

// Proximity-aware versus proximity-ignorant load balancing on a
// transit-stub Internet topology — the paper's headline experiment
// (Figures 7 and 8) at example scale.
//
// The run embeds a Chord overlay into a generated transit-stub underlay,
// measures each node's landmark vector (distances to 15 landmark nodes),
// maps it through a 15-dimensional Hilbert curve into the DHT identifier
// space, and publishes load-balancing advertisements under the resulting
// keys. Virtual-server assignment then pairs physically close heavy and
// light nodes at low levels of the K-nary tree, so most load moves only
// a few hops.
//
//	go run ./examples/proximity
package main

import (
	"fmt"
	"log"

	"p2plb/internal/core"
	"p2plb/internal/exp"
	"p2plb/internal/topology"
)

func main() {
	topo := topology.Params{
		TransitDomains:        4,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   4,
		StubDomainSizeMean:    40,
		TransitEdgeProb:       0.6,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.42,
	}

	run := func(mode core.Mode) *core.Result {
		s := exp.DefaultSetup(11)
		s.Nodes = 1024
		t := topo
		s.Topology = &t
		s.Mode = mode
		inst, err := exp.Build(s)
		if err != nil {
			log.Fatal(err)
		}
		res, err := inst.Balancer.RunRound()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	aware := run(core.ProximityAware)
	ignorant := run(core.ProximityIgnorant)

	fmt.Printf("1024 overlay nodes on a %d-domain transit-stub underlay\n\n",
		topo.TransitDomains+topo.TransitDomains*topo.TransitNodesPerDomain*topo.StubsPerTransitNode)
	fmt.Printf("%-20s %12s %12s\n", "", "aware", "ignorant")
	fmt.Printf("%-20s %11.0f%% %11.0f%%\n", "moved within 2",
		100*aware.MovedByHops.FractionWithin(2), 100*ignorant.MovedByHops.FractionWithin(2))
	fmt.Printf("%-20s %11.0f%% %11.0f%%\n", "moved within 10",
		100*aware.MovedByHops.FractionWithin(10), 100*ignorant.MovedByHops.FractionWithin(10))
	fmt.Printf("%-20s %12.1f %12.1f\n", "mean distance", meanHops(aware), meanHops(ignorant))
	fmt.Printf("%-20s %12d %12d\n", "transfers", len(aware.Assignments), len(ignorant.Assignments))
	fmt.Printf("%-20s %12d %12d\n", "heavy after", aware.HeavyAfter, ignorant.HeavyAfter)

	fmt.Println("\ndistance  CDF aware  CDF ignorant")
	maxB := aware.MovedByHops.MaxBucket()
	if b := ignorant.MovedByHops.MaxBucket(); b > maxB {
		maxB = b
	}
	for d := 0; d <= maxB; d += 2 {
		fmt.Printf("%8d  %9.2f  %12.2f\n", d,
			aware.MovedByHops.FractionWithin(d), ignorant.MovedByHops.FractionWithin(d))
	}
	fmt.Println("\nBoth runs balance the same workload to zero heavy nodes; the aware")
	fmt.Println("variant just pays far less network distance to get there.")
}

func meanHops(res *core.Result) float64 {
	var w, hw float64
	for _, a := range res.Assignments {
		w += a.Load
		hw += a.Load * float64(a.Hops)
	}
	if w == 0 {
		return 0
	}
	return hw / w
}

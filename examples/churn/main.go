// Churn: the K-nary tree is soft state over a DHT whose membership
// changes. This example runs a long simulation in which nodes join and
// crash continuously, the tree repairs itself on a maintenance timer
// (the paper's periodic region checks and heartbeats), and a
// load-balancing round runs periodically — demonstrating that the
// structure the balancer depends on survives churn.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

func main() {
	eng := sim.NewEngine(99)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	mu := 256.0 * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 200}

	addNode := func() *chord.Node {
		n := ring.AddNode(-1, profile.Sample(eng.Rand()), 5)
		for _, vs := range n.VServers() {
			vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
		}
		return n
	}
	for i := 0; i < 256; i++ {
		addNode()
	}

	tree, err := ktree.New(ring, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		log.Fatal(err)
	}
	balancer, err := core.NewBalancer(ring, tree, core.Config{Epsilon: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("start: %d nodes, %d VSs, tree %d nodes / height %d\n",
		len(ring.AliveNodes()), ring.NumVServers(), tree.NumNodes(), tree.Height())

	// Churn: every 50 time units a random node crashes and a fresh one
	// joins (its virtual servers' regions are re-drawn by the ring).
	churnEvents := 0
	cancelChurn := eng.Every(50, func() {
		alive := ring.AliveNodes()
		if len(alive) > 32 {
			victim := alive[eng.Rand().Intn(len(alive))]
			ring.RemoveNode(victim)
			churnEvents++
		}
		addNode()
		churnEvents++
	})

	// Tree maintenance: periodic repair sweep, exactly the paper's
	// "periodically check each child's region / heartbeat" behaviour.
	repairs, repaired := 0, 0
	cancelRepair := eng.Every(200, func() {
		changes, err := tree.Repair()
		if err != nil {
			log.Fatal(err)
		}
		repairs++
		repaired += changes
	})

	// Load balancing: one full round every 2000 units.
	rounds := 0
	cancelLB := eng.Every(2000, func() {
		// Repair first so the round sees a consistent tree.
		if _, err := tree.Repair(); err != nil {
			log.Fatal(err)
		}
		res, err := balancer.RunRound()
		if err != nil {
			log.Fatal(err)
		}
		rounds++
		fmt.Printf("t=%6d  round %d: heavy %4d -> %d, moved %7.0f load in %4d transfers (tree height %d)\n",
			eng.Now(), rounds, res.HeavyBefore, res.HeavyAfter, res.MovedLoad,
			len(res.Assignments), res.TreeHeight)
	})

	eng.RunUntil(10_000)
	cancelChurn()
	cancelRepair()
	cancelLB()

	// Final verification: after all that churn the structures are still
	// internally consistent.
	if _, err := tree.Repair(); err != nil {
		log.Fatal(err)
	}
	ring.CheckInvariants()
	tree.CheckInvariants()
	fmt.Printf("\nend: %d nodes, %d VSs after %d churn events\n",
		len(ring.AliveNodes()), ring.NumVServers(), churnEvents)
	fmt.Printf("maintenance: %d repair sweeps fixed %d KT nodes; %d heartbeats, %d plants\n",
		repairs, repaired,
		eng.MessageCount(ktree.MsgHeartbeat), eng.MessageCount(ktree.MsgPlant))
	fmt.Println("ring and tree invariants hold — the soft-state tree survived the churn")
}

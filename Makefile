# Convenience targets; `make check` is the tier-1 gate (see ROADMAP.md).
# `make lint` runs the project static-analysis suite alone for fast
# iteration on lbvet findings.

.PHONY: check build test race fmt lint

check:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/livenet/ ./internal/par/ ./internal/sim/ ./internal/ktree/ ./internal/daemon/

fmt:
	gofmt -s -w .

lint:
	go run ./cmd/lbvet

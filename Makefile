# Convenience targets; `make check` is the tier-1 gate (see ROADMAP.md).

.PHONY: check build test race fmt

check:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/livenet/ ./internal/par/ ./internal/sim/

fmt:
	gofmt -w .

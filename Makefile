# Convenience targets; `make check` is the tier-1 gate (see ROADMAP.md).
# `make lint` runs the project static-analysis suite alone for fast
# iteration on lbvet findings. `make bench` runs the scaling benchmark
# (64k/256k/1M virtual servers), the fault-tolerance sweep (256k VSs),
# the executor-runtime comparison (protocol vs livenet at 64k/256k VSs),
# the multi-process cluster chaos run (8 lbd daemons, 3 SIGKILLs) and
# the tail-latency serving sweep (4096 nodes, 1M Zipf requests, balancer
# on/off/nocache), refreshing BENCH_scale.json, BENCH_faults.json,
# BENCH_runtime.json, BENCH_cluster.json and BENCH_serve.json in the
# repo root; see EXPERIMENTS.md "Scaling", "Fault tolerance", "Crash
# tolerance" and "Tail latency".

.PHONY: check build test race fmt lint bench

check:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/livenet/ ./internal/par/ ./internal/sim/ ./internal/ktree/ ./internal/daemon/ ./internal/faults/ ./internal/lbnode/ ./internal/protocol/ ./internal/wire/ ./internal/cluster/

fmt:
	gofmt -s -w .

lint:
	go run ./cmd/lbvet

bench:
	go run ./cmd/lbbench -bench scale,faults,runtime,cluster,serve -out .

// Benchmarks regenerating every figure in the paper's evaluation (§5)
// plus ablations over the design choices called out in DESIGN.md.
// Each Fig* benchmark runs the same experiment driver as cmd/lbsim and
// reports the figure's headline quantities as custom benchmark metrics,
// so `go test -bench .` both times the system and re-derives the
// results. See EXPERIMENTS.md for paper-vs-measured values.
package p2plb

import (
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/daemon"
	"p2plb/internal/exp"
	"p2plb/internal/ktree"
	"p2plb/internal/objects"
	"p2plb/internal/protocol"
	"p2plb/internal/rao"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
	"p2plb/internal/workload"
)

// runRound builds the setup and runs one load-balancing round.
func runRound(b *testing.B, s exp.Setup) *core.Result {
	b.Helper()
	inst, err := exp.Build(s)
	if err != nil {
		b.Fatal(err)
	}
	res, err := inst.Balancer.RunRound()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig4UnitLoadGaussian regenerates Figure 4: one full
// load-balancing round at paper scale (4096 nodes × 5 VSs, Gaussian
// loads, Gnutella capacities). Reported metrics: fraction of nodes
// heavy before the round, heavy nodes remaining after, and the share of
// total load moved.
func BenchmarkFig4UnitLoadGaussian(b *testing.B) {
	var heavyBefore, heavyAfter, movedFrac float64
	for i := 0; i < b.N; i++ {
		res := runRound(b, exp.DefaultSetup(int64(i)+1))
		total := float64(res.HeavyBefore + res.LightBefore + res.NeutralBefore)
		heavyBefore += float64(res.HeavyBefore) / total
		heavyAfter += float64(res.HeavyAfter)
		movedFrac += res.MovedLoad / res.Global.L
	}
	n := float64(b.N)
	b.ReportMetric(heavyBefore/n, "heavyBeforeFrac")
	b.ReportMetric(heavyAfter/n, "heavyAfter")
	b.ReportMetric(movedFrac/n, "movedLoadFrac")
}

// benchLoadByCapacity regenerates Figures 5/6: the unit-load ratio
// between the capacity-1000 and capacity-10 classes after balancing.
// Aligned skews put it near 1; virtual-server granularity keeps the
// small class somewhat below the common band, so ~1-2 is the healthy
// range (the unbalanced ratio is ~0.01).
func benchLoadByCapacity(b *testing.B, pareto bool) {
	var unitRatio, heavyAfter float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.Pareto = pareto
		inst, err := exp.Build(s)
		if err != nil {
			b.Fatal(err)
		}
		res, err := inst.Balancer.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		after := inst.Balancer.LoadByCapacityClass()
		unitRatio += (after.Mean(1000) / 1000) / (after.Mean(10) / 10)
		heavyAfter += float64(res.HeavyAfter)
	}
	n := float64(b.N)
	b.ReportMetric(unitRatio/n, "unitLoad1000v10")
	b.ReportMetric(heavyAfter/n, "heavyAfter")
}

// BenchmarkFig5LoadByCapacityGaussian regenerates Figure 5.
func BenchmarkFig5LoadByCapacityGaussian(b *testing.B) { benchLoadByCapacity(b, false) }

// BenchmarkFig6LoadByCapacityPareto regenerates Figure 6.
func BenchmarkFig6LoadByCapacityPareto(b *testing.B) { benchLoadByCapacity(b, true) }

// benchMovedLoad regenerates one mode of Figures 7/8 on one topology
// instance per iteration, reporting the moved-load CDF milestones.
func benchMovedLoad(b *testing.B, topo func(int64) topology.Params, mode core.Mode) {
	var within2, within10, meanDist float64
	for i := 0; i < b.N; i++ {
		p := topo(int64(i) + 1)
		s := exp.DefaultSetup(int64(i) + 1)
		s.Topology = &p
		s.Mode = mode
		res := runRound(b, s)
		within2 += res.MovedByHops.FractionWithin(2)
		within10 += res.MovedByHops.FractionWithin(10)
		var w, hw float64
		for _, a := range res.Assignments {
			w += a.Load
			hw += a.Load * float64(a.Hops)
		}
		if w > 0 {
			meanDist += hw / w
		}
	}
	n := float64(b.N)
	b.ReportMetric(within2/n, "movedWithin2")
	b.ReportMetric(within10/n, "movedWithin10")
	b.ReportMetric(meanDist/n, "meanDistance")
}

// BenchmarkFig7TS5kLargeAware regenerates the proximity-aware series of
// Figure 7 (paper: ~67% of moved load within 2 hops, ~86% within 10).
func BenchmarkFig7TS5kLargeAware(b *testing.B) {
	benchMovedLoad(b, topology.TS5kLarge, core.ProximityAware)
}

// BenchmarkFig7TS5kLargeIgnorant regenerates the proximity-ignorant
// series of Figure 7 (paper: ~13% within 10 hops).
func BenchmarkFig7TS5kLargeIgnorant(b *testing.B) {
	benchMovedLoad(b, topology.TS5kLarge, core.ProximityIgnorant)
}

// BenchmarkFig8TS5kSmallAware regenerates the proximity-aware series of
// Figure 8.
func BenchmarkFig8TS5kSmallAware(b *testing.B) {
	benchMovedLoad(b, topology.TS5kSmall, core.ProximityAware)
}

// BenchmarkFig8TS5kSmallIgnorant regenerates the proximity-ignorant
// series of Figure 8.
func BenchmarkFig8TS5kSmallIgnorant(b *testing.B) {
	benchMovedLoad(b, topology.TS5kSmall, core.ProximityIgnorant)
}

// benchVSATime checks §5.2's O(log_K N) claim: VSA completion time in
// simulated latency units for a given tree degree.
func benchVSATime(b *testing.B, k int) {
	var vsaDone, height float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.K = k
		res := runRound(b, s)
		vsaDone += float64(res.TimeVSAComplete)
		height += float64(res.TreeHeight)
	}
	n := float64(b.N)
	b.ReportMetric(vsaDone/n, "vsaTimeUnits")
	b.ReportMetric(height/n, "treeHeight")
}

// BenchmarkVSATimeK2 measures VSA completion with the paper's K=2 tree.
func BenchmarkVSATimeK2(b *testing.B) { benchVSATime(b, 2) }

// BenchmarkVSATimeK8 measures VSA completion with K=8 ("we observed
// similar results on the degree of 8").
func BenchmarkVSATimeK8(b *testing.B) { benchVSATime(b, 8) }

// --- Ablations -----------------------------------------------------

// benchSubset isolates the heavy-node shed-subset strategy: the metric
// is the total load moved (exact should move no more than greedy).
func benchSubset(b *testing.B, strat core.SubsetStrategy) {
	var moved float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.Nodes = 1024
		inst, err := exp.Build(s)
		if err != nil {
			b.Fatal(err)
		}
		cfg := inst.Balancer.Config()
		cfg.Subset = strat
		bal, err := core.NewBalancer(inst.Ring, inst.Tree, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := bal.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		moved += res.MovedLoad / res.Global.L
	}
	b.ReportMetric(moved/float64(b.N), "movedLoadFrac")
}

// BenchmarkAblationSubsetExact uses exact (optimal) subset selection.
func BenchmarkAblationSubsetExact(b *testing.B) { benchSubset(b, core.SubsetExact) }

// BenchmarkAblationSubsetGreedy uses the greedy heuristic.
func BenchmarkAblationSubsetGreedy(b *testing.B) { benchSubset(b, core.SubsetGreedy) }

// benchThreshold isolates the rendezvous threshold: how deep in the
// tree pairings happen and how long VSA takes.
func benchThreshold(b *testing.B, threshold int) {
	var vsaDone, subRootFrac float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.Nodes = 1024
		s.RendezvousThreshold = threshold
		res := runRound(b, s)
		vsaDone += float64(res.TimeVSAComplete)
		deep := 0
		for _, a := range res.Assignments {
			if a.Depth > 0 {
				deep++
			}
		}
		if len(res.Assignments) > 0 {
			subRootFrac += float64(deep) / float64(len(res.Assignments))
		}
	}
	n := float64(b.N)
	b.ReportMetric(vsaDone/n, "vsaTimeUnits")
	b.ReportMetric(subRootFrac/n, "subRootPairFrac")
}

// BenchmarkAblationThreshold2 pairs as soon as two entries meet.
func BenchmarkAblationThreshold2(b *testing.B) { benchThreshold(b, 2) }

// BenchmarkAblationThreshold30 is the paper's suggested threshold.
func BenchmarkAblationThreshold30(b *testing.B) { benchThreshold(b, 30) }

// BenchmarkAblationThresholdRootOnly defers all pairing to the root.
func BenchmarkAblationThresholdRootOnly(b *testing.B) { benchThreshold(b, -1) }

// benchGrid isolates the landmark-space grid: equal-size cells (the
// paper's literal construction) versus quantile cells, at the default
// 4 bits per dimension.
func benchGrid(b *testing.B, quantile bool) {
	var within2 float64
	for i := 0; i < b.N; i++ {
		p := topology.TS5kLarge(int64(i) + 1)
		s := exp.DefaultSetup(int64(i) + 1)
		s.Topology = &p
		s.Mode = core.ProximityAware
		s.QuantileGrid = quantile
		res := runRound(b, s)
		within2 += res.MovedByHops.FractionWithin(2)
	}
	b.ReportMetric(within2/float64(b.N), "movedWithin2")
}

// BenchmarkAblationGridEqualSize is the default equal-size grid.
func BenchmarkAblationGridEqualSize(b *testing.B) { benchGrid(b, false) }

// BenchmarkAblationGridQuantile places cell edges at distance quantiles.
func BenchmarkAblationGridQuantile(b *testing.B) { benchGrid(b, true) }

// benchBits isolates the grid resolution (bits per landmark dimension).
func benchBits(b *testing.B, bits int) {
	var within2 float64
	for i := 0; i < b.N; i++ {
		p := topology.TS5kLarge(int64(i) + 1)
		s := exp.DefaultSetup(int64(i) + 1)
		s.Topology = &p
		s.Mode = core.ProximityAware
		s.HilbertBits = bits
		res := runRound(b, s)
		within2 += res.MovedByHops.FractionWithin(2)
	}
	b.ReportMetric(within2/float64(b.N), "movedWithin2")
}

// BenchmarkAblationHilbertBits2 uses 2 bits per dimension (2^30 cells).
func BenchmarkAblationHilbertBits2(b *testing.B) { benchBits(b, 2) }

// BenchmarkAblationHilbertBits4 uses 4 bits per dimension (2^60 cells).
func BenchmarkAblationHilbertBits4(b *testing.B) { benchBits(b, 4) }

// --- Baselines -----------------------------------------------------

// BenchmarkBaselineRandomMatching is the directory-style baseline:
// heavy-to-light pairing with no proximity or identifier-space
// structure. Compare its meanDistance with Fig7's aware value.
func BenchmarkBaselineRandomMatching(b *testing.B) {
	var meanDist, heavyAfter float64
	for i := 0; i < b.N; i++ {
		p := topology.TS5kLarge(int64(i) + 1)
		s := exp.DefaultSetup(int64(i) + 1)
		s.Topology = &p
		inst, err := exp.Build(s)
		if err != nil {
			b.Fatal(err)
		}
		res, err := inst.Balancer.RunRandomMatching()
		if err != nil {
			b.Fatal(err)
		}
		var w, hw float64
		for _, a := range res.Assignments {
			w += a.Load
			hw += a.Load * float64(a.Hops)
		}
		if w > 0 {
			meanDist += hw / w
		}
		heavyAfter += float64(res.HeavyAfter)
	}
	n := float64(b.N)
	b.ReportMetric(meanDist/n, "meanDistance")
	b.ReportMetric(heavyAfter/n, "heavyAfter")
}

// BenchmarkBaselineCFSShedding is the CFS-style baseline: overloaded
// nodes delete virtual servers. Metrics: thrash events (nodes made
// heavy by shed regions) and residual heavy nodes.
func BenchmarkBaselineCFSShedding(b *testing.B) {
	var thrash, heavyAtEnd float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.Nodes = 1024
		inst, err := exp.Build(s)
		if err != nil {
			b.Fatal(err)
		}
		out, err := core.RunCFSShedding(inst.Ring, 0.05, 50)
		if err != nil {
			b.Fatal(err)
		}
		thrash += float64(out.ThrashEvents)
		heavyAtEnd += float64(out.HeavyAtEnd)
	}
	n := float64(b.N)
	b.ReportMetric(thrash/n, "thrashEvents")
	b.ReportMetric(heavyAtEnd/n, "heavyAtEnd")
}

// --- Extended subsystems --------------------------------------------

// BenchmarkProtocolRound runs the fully message-level round (explicit
// converge-casts, routed publications, timed transfers) at 1024 nodes,
// reporting the same balancing metrics as the closed-form benchmarks
// plus the event count.
func BenchmarkProtocolRound(b *testing.B) {
	var heavyAfter, events float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.Nodes = 1024
		inst, err := exp.Build(s)
		if err != nil {
			b.Fatal(err)
		}
		r, err := protocol.NewRunner(inst.Ring, inst.Tree, protocol.Config{
			Core: core.Config{Epsilon: 0.05},
		})
		if err != nil {
			b.Fatal(err)
		}
		before := inst.Engine.Executed()
		var res *protocol.Result
		if err := r.StartRound(func(out *protocol.Result, err error) {
			if err != nil {
				b.Fatal(err)
			}
			res = out
		}); err != nil {
			b.Fatal(err)
		}
		inst.Engine.Run()
		heavyAfter += float64(res.HeavyAfter)
		events += float64(inst.Engine.Executed() - before)
	}
	n := float64(b.N)
	b.ReportMetric(heavyAfter/n, "heavyAfter")
	b.ReportMetric(events/n, "events")
}

// benchRao runs one Rao et al. scheme to convergence (or the round cap)
// at 1024 nodes and reports rounds and residual heavy nodes.
func benchRao(b *testing.B, scheme rao.Scheme) {
	var rounds, heavyEnd float64
	for i := 0; i < b.N; i++ {
		s := exp.DefaultSetup(int64(i) + 1)
		s.Nodes = 1024
		inst, err := exp.Build(s)
		if err != nil {
			b.Fatal(err)
		}
		res, err := rao.Run(inst.Ring, rao.Config{Scheme: scheme, Epsilon: 0.05}, 50)
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
		heavyEnd += float64(res.HeavyEnd)
	}
	n := float64(b.N)
	b.ReportMetric(rounds/n, "rounds")
	b.ReportMetric(heavyEnd/n, "heavyEnd")
}

// BenchmarkBaselineRaoOneToOne: random probing (IPTPS'03 scheme 1).
func BenchmarkBaselineRaoOneToOne(b *testing.B) { benchRao(b, rao.OneToOne) }

// BenchmarkBaselineRaoOneToMany: directory shedding (scheme 2).
func BenchmarkBaselineRaoOneToMany(b *testing.B) { benchRao(b, rao.OneToMany) }

// BenchmarkBaselineRaoManyToMany: global matching (scheme 3).
func BenchmarkBaselineRaoManyToMany(b *testing.B) { benchRao(b, rao.ManyToMany) }

// --- Ring maintenance scaling ---------------------------------------

// buildBulkRing populates a fresh ring the way exp.Build does: bulk
// insertion with Gnutella capacities drawn from the engine RNG.
func buildBulkRing(seed int64, nodes, vsPerNode int) *chord.Ring {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	ring.BulkAddNodes(nodes, vsPerNode,
		func(int) topology.NodeID { return -1 },
		func(int) float64 { return profile.Sample(eng.Rand()) })
	return ring
}

// BenchmarkRingBuild100k pins the cost of populating a 100 000-VS ring
// (20 000 nodes × 5 VSs each) with the bulk path exp.Build uses.
func BenchmarkRingBuild100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ring := buildBulkRing(int64(i)+1, 20_000, 5); ring.NumVServers() != 100_000 {
			b.Fatalf("built %d VSs", ring.NumVServers())
		}
	}
}

// BenchmarkRingBuild200k is the acceptance benchmark for the O(log n)
// ring-maintenance work: the seed implementation (eager ringPos suffix
// rewrites on every insert) took ~42 s to populate 200 000 VSs; the
// bulk path must stay at least 10× under that (it lands near 150 ms).
func BenchmarkRingBuild200k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ring := buildBulkRing(int64(i)+1, 40_000, 5); ring.NumVServers() != 200_000 {
			b.Fatalf("built %d VSs", ring.NumVServers())
		}
	}
}

// TestRingBuildSubQuadratic is the regression guard against the old
// quadratic population: 4× the virtual servers (25k → 100k) must cost
// well under the 16× a quadratic build would take. n log n predicts
// ~4.7×; the bound of 12 leaves room for timer noise while still
// failing instantly if the suffix rewrite ever comes back.
func TestRingBuildSubQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based test")
	}
	small := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildBulkRing(int64(i)+1, 5_000, 5)
		}
	})
	large := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildBulkRing(int64(i)+1, 20_000, 5)
		}
	})
	ratio := float64(large.NsPerOp()) / float64(small.NsPerOp())
	if ratio > 12 {
		t.Errorf("100k/25k VS build cost ratio = %.1f (small %v, large %v); quadratic maintenance is back",
			ratio, small.NsPerOp(), large.NsPerOp())
	}
}

// BenchmarkDriftMaintenance runs the daemon over an object-backed
// drifting workload (10% churn per round, 8 rounds) and reports the
// steady-state imbalance containment.
func BenchmarkDriftMaintenance(b *testing.B) {
	var giniPre, giniPost float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i) + 1)
		ring := chord.NewRing(eng, chord.Config{})
		profile := workload.GnutellaProfile()
		for j := 0; j < 512; j++ {
			ring.AddNode(-1, profile.Sample(eng.Rand()), 5)
		}
		store := objects.NewStore(ring)
		rng := rand.New(rand.NewSource(int64(i) + 1))
		loadFn := func(r *rand.Rand) float64 { return r.Float64() * 2 }
		if err := store.Populate(rng, 100_000, loadFn); err != nil {
			b.Fatal(err)
		}
		tree, err := ktree.New(ring, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.Build(); err != nil {
			b.Fatal(err)
		}
		d, err := daemon.New(ring, tree, daemon.Config{
			RoundInterval: 5000,
			Protocol:      protocol.Config{Core: core.Config{Epsilon: 0.05}},
			BeforeRound: func() {
				if err := store.Drift(rng, 10_000, loadFn); err != nil {
					b.Fatal(err)
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		d.Start()
		eng.RunUntil(40_000)
		d.Stop()
		eng.Run()
		sum := d.Summarize()
		if sum.Failed > 0 {
			b.Fatalf("%d rounds failed", sum.Failed)
		}
		giniPre += sum.MeanGiniPre
		giniPost += sum.MeanGiniPost
	}
	n := float64(b.N)
	b.ReportMetric(giniPre/n, "meanGiniPre")
	b.ReportMetric(giniPost/n, "meanGiniPost")
}

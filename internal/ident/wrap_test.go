package ident

import (
	"math"
	"testing"
)

// These tests pin the behaviour of Region/Split/Covers and friends at
// the exact seam raw integer arithmetic gets wrong: identifiers within
// a few steps of 0 and 2^32-1. They are the ground truth the
// identcompare analyzer (cmd/lbvet) exists to protect — every case
// here would misbehave if some caller reverted to </>/−.

const top = ID(math.MaxUint32) // 2^32 - 1, one step counterclockwise of 0

func TestDistAcrossWrap(t *testing.T) {
	if got := top.Dist(0); got != 1 {
		t.Errorf("Dist(top, 0) = %d, want 1", got)
	}
	if got := ID(0).Dist(top); got != math.MaxUint32 {
		t.Errorf("Dist(0, top) = %d, want 2^32-1", got)
	}
	if got := ID(0xFFFFFFF0).Dist(0x10); got != 0x20 {
		t.Errorf("Dist across wrap = %d, want 0x20", got)
	}
	// The raw comparison view would order these the other way around:
	// top > 0 as integers, yet 0 is top's immediate clockwise neighbor.
	if top.Add(1) != 0 {
		t.Errorf("Add(top, 1) = %s, want 0", top.Add(1))
	}
}

func TestBetweenAcrossWrap(t *testing.T) {
	// Arc (0xFFFFFF00, 0x100] crosses zero; membership must hold on
	// both sides of the seam and fail outside it.
	start, end := ID(0xFFFFFF00), ID(0x100)
	for _, id := range []ID{0xFFFFFF01, top, 0, 1, 0x100} {
		if !id.Between(start, end) {
			t.Errorf("%s should be in (%s, %s]", id, start, end)
		}
	}
	for _, id := range []ID{start, 0x101, 0x80000000} {
		if id.Between(start, end) {
			t.Errorf("%s should not be in (%s, %s]", id, start, end)
		}
	}
}

func TestRegionContainsAcrossWrap(t *testing.T) {
	// [0xFFFFFF80, 0x80): width 0x100, straddling zero.
	r := Region{Start: 0xFFFFFF80, Width: 0x100}
	for _, id := range []ID{0xFFFFFF80, top, 0, 0x7F} {
		if !r.Contains(id) {
			t.Errorf("%s should contain %s", r, id)
		}
	}
	for _, id := range []ID{0x80, 0xFFFFFF7F, 0x80000000} {
		if r.Contains(id) {
			t.Errorf("%s should not contain %s", r, id)
		}
	}
	if got := r.End(); got != 0x80 {
		t.Errorf("End() = %s, want 00000080", got)
	}
}

func TestOwnershipArcAcrossWrap(t *testing.T) {
	// A virtual server at 0x10 whose predecessor sits just below the
	// top owns (pred, 0x10]: the tail of the space plus the head.
	pred, self := ID(0xFFFFFFF0), ID(0x10)
	arc := OwnershipArc(pred, self)
	if arc.Width != 0x20 {
		t.Errorf("width = %d, want 0x20", arc.Width)
	}
	for _, id := range []ID{0xFFFFFFF1, top, 0, self} {
		if !arc.Contains(id) {
			t.Errorf("ownership arc %s should contain %s", arc, id)
		}
	}
	if arc.Contains(pred) {
		t.Errorf("ownership arc %s should exclude the predecessor %s", arc, pred)
	}
}

func TestSplitAcrossWrap(t *testing.T) {
	// Split a zero-straddling region: children must be contiguous,
	// clockwise, sum to the parent width, and stay inside the parent —
	// including the child that itself crosses zero.
	r := Region{Start: 0xFFFFFFFD, Width: 10} // covers FFFFFFFD..00000006
	for _, k := range []int{1, 2, 3, 4, 10} {
		parts := r.Split(k)
		if len(parts) != k {
			t.Fatalf("Split(%d) returned %d parts", k, len(parts))
		}
		var sum uint64
		cursor := r.Start
		for i, p := range parts {
			if p.Start != cursor {
				t.Errorf("k=%d child %d starts at %s, want %s (contiguity across the seam)", k, i, p.Start, cursor)
			}
			if !r.Covers(p) {
				t.Errorf("k=%d child %d %s escapes parent %s", k, i, p, r)
			}
			sum += p.Width
			cursor = cursor.Add(p.Width)
		}
		if sum != r.Width {
			t.Errorf("k=%d children sum to %d, want %d", k, sum, r.Width)
		}
	}
	// k=2 splits 10 into 5+5: the first child ends exactly at zero+2,
	// the second begins there — the seam falls inside the region.
	parts := r.Split(2)
	if parts[0].End() != parts[1].Start {
		t.Errorf("children not adjacent: %s then %s", parts[0], parts[1])
	}
}

func TestCoversAcrossWrap(t *testing.T) {
	parent := Region{Start: 0xFFFFFF00, Width: 0x200} // straddles zero
	inside := []Region{
		{Start: 0xFFFFFF00, Width: 0x200}, // itself
		{Start: 0xFFFFFFC0, Width: 0x80},  // crosses the seam
		{Start: 0, Width: 0x100},          // entirely past the seam
		{Start: 0xFFFFFF80, Width: 0},     // empty is covered by all
	}
	for _, s := range inside {
		if !parent.Covers(s) {
			t.Errorf("%s should cover %s", parent, s)
		}
	}
	outside := []Region{
		{Start: 0xFFFFFF00, Width: 0x201}, // one too wide
		{Start: 0xFFFFFEFF, Width: 0x10},  // starts one short
		{Start: 0x100, Width: 1},          // starts exactly at End()
		{Start: 0x80000000, Width: 2},     // far side of the ring
	}
	for _, s := range outside {
		if parent.Covers(s) {
			t.Errorf("%s should not cover %s", parent, s)
		}
	}
}

func TestOverlapsAcrossWrap(t *testing.T) {
	a := Region{Start: 0xFFFFFFF0, Width: 0x20} // straddles zero
	overlapping := []Region{
		{Start: 0, Width: 1},             // inside a, past the seam
		{Start: 0xFFFFFFF8, Width: 4},    // inside a, before the seam
		{Start: 0xF, Width: 0x10},        // shares exactly id 0xF
		{Start: 0xFFFFFF00, Width: 0xF1}, // reaches a's first id
	}
	for _, b := range overlapping {
		if !a.Overlaps(b) || !b.Overlaps(a) {
			t.Errorf("%s and %s should overlap (both directions)", a, b)
		}
	}
	disjoint := []Region{
		{Start: 0x10, Width: 0x10},       // begins exactly at a.End()
		{Start: 0xFFFFFF00, Width: 0xF0}, // ends exactly at a.Start
	}
	for _, b := range disjoint {
		if a.Overlaps(b) || b.Overlaps(a) {
			t.Errorf("%s and %s should not overlap", a, b)
		}
	}
}

func TestCenterAcrossWrap(t *testing.T) {
	// The midpoint of a zero-straddling region lies past the seam.
	r := Region{Start: 0xFFFFFFF0, Width: 0x20}
	if got := r.Center(); got != 0 {
		t.Errorf("Center(%s) = %s, want 00000000", r, got)
	}
	r2 := Region{Start: 0xFFFFFFFE, Width: 8}
	if got := r2.Center(); got != 2 {
		t.Errorf("Center(%s) = %s, want 00000002", r2, got)
	}
}

// Package ident implements arithmetic on the circular 32-bit DHT
// identifier space used throughout the system: identifiers, clockwise
// distances, and wrap-around arcs (regions) with the split/center/cover
// operations that the Chord ring and the distributed K-nary tree rely on.
//
// The space is the ring of integers modulo 2^32. A Region is a half-open
// arc [Start, Start+Width) taken clockwise; Width is carried as a uint64 so
// that the full circle (Width == 2^32) is representable and unambiguous.
package ident

import (
	"fmt"
	"hash/fnv"
)

// Bits is the width of the identifier space in bits. The paper evaluates
// on a 32-bit Chord identifier space.
const Bits = 32

// SpaceSize is the number of identifiers in the space, 2^Bits.
const SpaceSize = uint64(1) << Bits

// ID is a point on the identifier circle.
type ID uint32

// String formats the identifier as zero-padded hexadecimal.
func (a ID) String() string { return fmt.Sprintf("%08x", uint32(a)) }

// Hash maps an arbitrary byte string onto the identifier circle using
// FNV-1a. It stands in for the SHA-1-truncation DHTs use; only uniformity
// matters for the simulation.
func Hash(b []byte) ID {
	h := fnv.New32a()
	h.Write(b)
	return ID(h.Sum32())
}

// HashString is Hash for strings.
func HashString(s string) ID { return Hash([]byte(s)) }

// Dist returns the clockwise distance from a to b: the number of steps
// needed to reach b from a moving in increasing-identifier direction.
// Dist(a, a) == 0.
func (a ID) Dist(b ID) uint64 { return uint64(uint32(b) - uint32(a)) }

// Add returns a advanced clockwise by d (mod 2^32).
func (a ID) Add(d uint64) ID { return ID(uint32(a) + uint32(d)) }

// Between reports whether a lies in the half-open clockwise arc (start, end].
// This is the ownership test used by Chord: a virtual server with identifier
// s and predecessor p owns exactly the keys k with k ∈ (p, s].
// When start == end the arc is the full circle, so Between is always true.
func (a ID) Between(start, end ID) bool {
	if start == end {
		return true
	}
	return start.Dist(a) > 0 && start.Dist(a) <= start.Dist(end)
}

// Region is a half-open clockwise arc [Start, Start+Width) of the
// identifier circle. Width may be anything in [0, 2^32]; Width == SpaceSize
// means the full circle and Width == 0 the empty arc.
type Region struct {
	Start ID
	Width uint64
}

// Full returns the region covering the entire identifier space.
func Full() Region { return Region{Start: 0, Width: SpaceSize} }

// Arc returns the half-open clockwise region [start, end). If start == end
// the result is the empty region (use Full for the whole circle).
func Arc(start, end ID) Region {
	return Region{Start: start, Width: start.Dist(end)}
}

// OwnershipArc returns the region (pred, self] as a half-open arc
// [pred+1, self+1), the key range owned by a ring participant with
// identifier self whose predecessor is pred. If pred == self the
// participant is alone on the ring and owns the full circle.
func OwnershipArc(pred, self ID) Region {
	if pred == self {
		return Region{Start: self.Add(1), Width: SpaceSize}
	}
	return Region{Start: pred.Add(1), Width: pred.Dist(self)}
}

// IsEmpty reports whether the region contains no identifiers.
func (r Region) IsEmpty() bool { return r.Width == 0 }

// IsFull reports whether the region is the entire circle.
func (r Region) IsFull() bool { return r.Width == SpaceSize }

// End returns the first identifier clockwise past the region,
// i.e. Start+Width mod 2^32. For the full circle End == Start.
func (r Region) End() ID { return r.Start.Add(r.Width) }

// Contains reports whether id lies inside the region.
func (r Region) Contains(id ID) bool {
	return r.Start.Dist(id) < r.Width
}

// Covers reports whether every identifier of s also lies in r.
// The empty region is covered by everything; the full region covers
// everything.
func (r Region) Covers(s Region) bool {
	if s.IsEmpty() || r.IsFull() {
		return true
	}
	if s.Width > r.Width {
		return false
	}
	off := r.Start.Dist(s.Start)
	return off < r.Width && off+s.Width <= r.Width
}

// Overlaps reports whether r and s share at least one identifier.
func (r Region) Overlaps(s Region) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Start.Dist(s.Start) < r.Width || s.Start.Dist(r.Start) < s.Width
}

// Center returns the midpoint of the region: Start advanced by Width/2.
// This is the identifier the K-nary tree uses as the DHT key at which a
// KT node responsible for this region is planted.
func (r Region) Center() ID { return r.Start.Add(r.Width / 2) }

// Split partitions the region into k consecutive child arcs of (as near as
// possible) equal width, in clockwise order. The first Width mod k children
// are one identifier wider so the widths always sum to Width exactly.
// Children whose width would be zero are returned as empty regions so that
// the result always has exactly k elements (the K-nary tree keeps child
// slots positional).
func (r Region) Split(k int) []Region {
	if k <= 0 {
		panic("ident: Split with non-positive k")
	}
	out := make([]Region, k)
	base := r.Width / uint64(k)
	rem := r.Width % uint64(k)
	start := r.Start
	for i := 0; i < k; i++ {
		w := base
		if uint64(i) < rem {
			w++
		}
		out[i] = Region{Start: start, Width: w}
		start = start.Add(w)
	}
	return out
}

// Fraction returns the share of the whole identifier space the region
// occupies, in [0, 1].
func (r Region) Fraction() float64 {
	return float64(r.Width) / float64(SpaceSize)
}

// String formats the region as [start, end)/width.
func (r Region) String() string {
	if r.IsFull() {
		return "[full circle]"
	}
	if r.IsEmpty() {
		return fmt.Sprintf("[empty@%s]", r.Start)
	}
	return fmt.Sprintf("[%s,%s)", r.Start, r.End())
}

package ident

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	cases := []struct {
		a, b ID
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, SpaceSize - 1},
		{0xffffffff, 0, 1},
		{0xffffffff, 1, 2},
		{10, 10, 0},
		{0x80000000, 0, 0x80000000},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); got != c.want {
			t.Errorf("Dist(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistAntisymmetry(t *testing.T) {
	// For distinct ids, Dist(a,b) + Dist(b,a) == SpaceSize.
	f := func(a, b uint32) bool {
		x, y := ID(a), ID(b)
		if x == y {
			return x.Dist(y) == 0
		}
		return x.Dist(y)+y.Dist(x) == SpaceSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddDistRoundTrip(t *testing.T) {
	f := func(a uint32, d uint32) bool {
		id := ID(a)
		return id.Dist(id.Add(uint64(d))) == uint64(d)%SpaceSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, start, end ID
		want          bool
	}{
		{5, 0, 10, true},         // inside
		{10, 0, 10, true},        // end inclusive
		{0, 0, 10, false},        // start exclusive
		{11, 0, 10, false},       // outside
		{0, 0xfffffff0, 5, true}, // wrap
		{0xfffffff1, 0xfffffff0, 5, true},
		{0xffffffef, 0xfffffff0, 5, false},
		{7, 7, 7, true}, // full circle when start == end
		{3, 7, 7, true},
	}
	for _, c := range cases {
		if got := c.a.Between(c.start, c.end); got != c.want {
			t.Errorf("%s.Between(%s,%s) = %v, want %v", c.a, c.start, c.end, got, c.want)
		}
	}
}

func TestOwnershipArc(t *testing.T) {
	// (pred, self] as a region must contain self, not pred, and have
	// width Dist(pred, self).
	f := func(p, s uint32) bool {
		pred, self := ID(p), ID(s)
		r := OwnershipArc(pred, self)
		if pred == self {
			return r.IsFull() && r.Contains(self)
		}
		return r.Contains(self) && !r.Contains(pred) && r.Width == pred.Dist(self)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnershipArcMatchesBetween(t *testing.T) {
	// Region membership must agree with the Chord Between ownership test.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		pred, self, k := ID(rng.Uint32()), ID(rng.Uint32()), ID(rng.Uint32())
		r := OwnershipArc(pred, self)
		if got, want := r.Contains(k), k.Between(pred, self); got != want {
			t.Fatalf("OwnershipArc(%s,%s).Contains(%s) = %v, Between = %v",
				pred, self, k, got, want)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Start: 0xfffffffe, Width: 4} // {fe, ff, 0, 1}
	for _, id := range []ID{0xfffffffe, 0xffffffff, 0, 1} {
		if !r.Contains(id) {
			t.Errorf("%v should contain %s", r, id)
		}
	}
	for _, id := range []ID{0xfffffffd, 2, 0x80000000} {
		if r.Contains(id) {
			t.Errorf("%v should not contain %s", r, id)
		}
	}
}

func TestFullRegion(t *testing.T) {
	r := Full()
	if !r.IsFull() || r.IsEmpty() {
		t.Fatalf("Full() misreported: %+v", r)
	}
	for _, id := range []ID{0, 1, 0x7fffffff, 0xffffffff} {
		if !r.Contains(id) {
			t.Errorf("full region should contain %s", id)
		}
	}
	if got := r.Center(); got != 0x80000000 {
		t.Errorf("Full().Center() = %s, want 80000000", got)
	}
}

func TestEmptyRegion(t *testing.T) {
	r := Arc(5, 5)
	if !r.IsEmpty() {
		t.Fatalf("Arc(5,5) should be empty, got %+v", r)
	}
	if r.Contains(5) {
		t.Error("empty region should contain nothing")
	}
	if !Full().Covers(r) || !r.Covers(r) {
		t.Error("empty region must be covered by anything")
	}
}

func TestCovers(t *testing.T) {
	outer := Region{Start: 100, Width: 50} // [100,150)
	cases := []struct {
		inner Region
		want  bool
	}{
		{Region{100, 50}, true},  // identical
		{Region{100, 10}, true},  // prefix
		{Region{140, 10}, true},  // suffix
		{Region{120, 20}, true},  // middle
		{Region{99, 10}, false},  // starts before
		{Region{145, 10}, false}, // ends after
		{Region{200, 10}, false}, // disjoint
		{Region{100, 51}, false}, // wider
	}
	for _, c := range cases {
		if got := outer.Covers(c.inner); got != c.want {
			t.Errorf("%v.Covers(%v) = %v, want %v", outer, c.inner, got, c.want)
		}
	}
	// Wrap-around outer region.
	wrap := Region{Start: 0xfffffff0, Width: 0x20} // [...f0, 0x10)
	if !wrap.Covers(Region{Start: 0xfffffff8, Width: 0x10}) {
		t.Error("wrap-around cover failed")
	}
	if wrap.Covers(Region{Start: 0x8, Width: 0x10}) {
		t.Error("wrap-around cover should fail past end")
	}
}

func TestCoversImpliesContains(t *testing.T) {
	// If r covers s then every sampled point of s is in r.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		r := Region{Start: ID(rng.Uint32()), Width: uint64(rng.Uint32())}
		s := Region{Start: ID(rng.Uint32()), Width: uint64(rng.Uint32()) % (r.Width + 1)}
		if !r.Covers(s) || s.IsEmpty() {
			continue
		}
		for j := 0; j < 8; j++ {
			p := s.Start.Add(uint64(rng.Int63()) % s.Width)
			if !r.Contains(p) {
				t.Fatalf("%v covers %v but misses point %s", r, s, p)
			}
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := Region{Start: 10, Width: 10} // [10,20)
	cases := []struct {
		b    Region
		want bool
	}{
		{Region{15, 10}, true},
		{Region{20, 10}, false}, // adjacent, half-open
		{Region{0, 10}, false},  // adjacent before
		{Region{0, 11}, true},
		{Region{19, 1}, true},
		{Region{5, 100}, true}, // engulfing
		{Region{15, 0}, false}, // empty never overlaps
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v,%v", a, c.b)
		}
	}
}

func TestSplitInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		r := Region{Start: ID(rng.Uint32()), Width: uint64(rng.Uint32())}
		if trial == 0 {
			r = Full()
		}
		k := 1 + rng.Intn(9)
		parts := r.Split(k)
		if len(parts) != k {
			t.Fatalf("Split(%d) returned %d parts", k, len(parts))
		}
		var sum uint64
		cursor := r.Start
		for i, p := range parts {
			if p.Start != cursor {
				t.Fatalf("part %d starts at %s, want %s (region %v, k=%d)",
					i, p.Start, cursor, r, k)
			}
			if !r.Covers(p) {
				t.Fatalf("part %d (%v) not covered by %v", i, p, r)
			}
			sum += p.Width
			cursor = cursor.Add(p.Width)
		}
		if sum != r.Width {
			t.Fatalf("split widths sum to %d, want %d", sum, r.Width)
		}
		// Widths differ by at most one.
		min, max := parts[0].Width, parts[0].Width
		for _, p := range parts {
			if p.Width < min {
				min = p.Width
			}
			if p.Width > max {
				max = p.Width
			}
		}
		if max-min > 1 {
			t.Fatalf("split widths uneven: min %d max %d", min, max)
		}
	}
}

func TestSplitDisjoint(t *testing.T) {
	r := Full()
	parts := r.Split(8)
	for i := range parts {
		for j := range parts {
			if i != j && parts[i].Overlaps(parts[j]) {
				t.Fatalf("parts %d and %d overlap: %v %v", i, j, parts[i], parts[j])
			}
		}
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(0) should panic")
		}
	}()
	Full().Split(0)
}

func TestCenterInsideRegion(t *testing.T) {
	f := func(start uint32, width uint32) bool {
		r := Region{Start: ID(start), Width: uint64(width)}
		if r.IsEmpty() {
			return true
		}
		return r.Contains(r.Center())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if c := Full().Center(); !Full().Contains(c) {
		t.Error("full region center not contained")
	}
}

func TestFraction(t *testing.T) {
	if got := Full().Fraction(); got != 1.0 {
		t.Errorf("Full fraction = %v", got)
	}
	if got := (Region{0, SpaceSize / 4}).Fraction(); got != 0.25 {
		t.Errorf("quarter fraction = %v", got)
	}
	if got := (Region{123, 0}).Fraction(); got != 0 {
		t.Errorf("empty fraction = %v", got)
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	if Hash([]byte("abc")) != Hash([]byte("abc")) {
		t.Fatal("hash not deterministic")
	}
	if HashString("abc") != Hash([]byte("abc")) {
		t.Fatal("HashString disagrees with Hash")
	}
	// Crude uniformity check: hash many keys, count per quadrant.
	var quad [4]int
	n := 40000
	for i := 0; i < n; i++ {
		h := HashString(string(rune(i)) + "key" + string(rune(i*7)))
		quad[uint32(h)>>30]++
	}
	for q, c := range quad {
		frac := float64(c) / float64(n)
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("quadrant %d got fraction %.3f, want ~0.25", q, frac)
		}
	}
}

func TestRegionString(t *testing.T) {
	if s := Full().String(); s != "[full circle]" {
		t.Errorf("Full().String() = %q", s)
	}
	if s := (Region{Start: 0, Width: 0}).String(); s != "[empty@00000000]" {
		t.Errorf("empty String() = %q", s)
	}
	if s := (Region{Start: 0x10, Width: 0x10}).String(); s != "[00000010,00000020)" {
		t.Errorf("String() = %q", s)
	}
}

func TestFullRegionCoversEverything(t *testing.T) {
	// Regression: a full region starting anywhere must cover any region.
	full := Region{Start: 12346, Width: SpaceSize}
	cases := []Region{
		Full(),
		{Start: 0, Width: SpaceSize},
		{Start: 999, Width: 1},
		{Start: 0xffffffff, Width: 2},
	}
	for _, s := range cases {
		if !full.Covers(s) {
			t.Errorf("full region should cover %v", s)
		}
	}
}

package serve

import (
	"reflect"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

func testPlan() workload.PlanSpec {
	return workload.PlanSpec{
		Seed:        1,
		Requests:    8000,
		Objects:     1000,
		Rate:        2,
		PutFraction: 0.1,
		Origins:     48,
	}
}

type fixture struct {
	eng  *sim.Engine
	ring *chord.Ring
	srv  *Server
}

// build assembles a 48-node Gnutella-capacity ring and a Server; with
// balanced it wires a protocol.Runner whose rounds classify against the
// Server's observed rates.
func build(t *testing.T, seed int64, cfg Config, balanced bool) *fixture {
	t.Helper()
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < 48; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), 4)
	}
	srv, err := New(eng, ring, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if balanced {
		tree, err := ktree.New(ring, 4)
		if err != nil {
			t.Fatal(err)
		}
		runner, err := protocol.NewRunner(ring, tree, protocol.Config{
			Core: core.Config{Epsilon: 0.05, Loads: srv},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.UseBalancer(runner, 1500)
	}
	return &fixture{eng: eng, ring: ring, srv: srv}
}

// Two runs of the same plan at the same seed must produce identical
// reports down to the raw latency-stream checksum — the determinism
// contract behind the committed BENCH_serve.json and the ci.sh smoke.
func TestServeDeterministic(t *testing.T) {
	run := func() *Report {
		f := build(t, 1, Config{Plan: testPlan(), Work: 100}, true)
		rep, err := f.srv.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Checksum != b.Checksum {
		t.Fatalf("latency streams diverge: %s vs %s", a.Checksum, b.Checksum)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports diverge:\n%+v\n%+v", a, b)
	}
	if a.Requests != testPlan().Requests {
		t.Fatalf("served %d requests, plan had %d", a.Requests, testPlan().Requests)
	}
	if a.Gets+a.Puts != a.Requests || a.Puts == 0 {
		t.Fatalf("implausible op split: %d gets, %d puts", a.Gets, a.Puts)
	}
}

// Balancing rounds must actually interleave with the stream, move
// virtual servers, and leave per-VS loads equal to the observed rates.
func TestServeInterleavesBalancerRounds(t *testing.T) {
	f := build(t, 1, Config{Plan: testPlan(), Work: 100}, true)
	rep, err := f.srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 2 {
		t.Fatalf("only %d balancing rounds interleaved, want >= 2", rep.Rounds)
	}
	if rep.Transfers == 0 {
		t.Fatal("rounds ran but no virtual server moved")
	}
	// A refresh writes the observed EWMA rates into vs.Load.
	f.srv.Refresh(f.ring)
	var total float64
	for _, vs := range f.ring.VServers() {
		if vs.Load < 0 {
			t.Fatalf("negative observed load %v", vs.Load)
		}
		total += vs.Load
	}
	if total == 0 {
		t.Fatal("no load observed after 8000 requests")
	}
	f.ring.CheckInvariants()
}

// The balancer-off baseline serves the identical request stream (same
// plan, same seed) — only the latency outcome differs.
func TestServeBalancerOffStillDrains(t *testing.T) {
	f := build(t, 1, Config{Plan: testPlan(), Work: 100}, false)
	rep, err := f.srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 0 || rep.Transfers != 0 {
		t.Fatalf("balancer-off ran %d rounds, %d transfers", rep.Rounds, rep.Transfers)
	}
	if rep.Requests != testPlan().Requests {
		t.Fatalf("served %d, want %d", rep.Requests, testPlan().Requests)
	}
}

// The hot-path cache must cut mean lookup hops against the uncached
// baseline on the same plan.
func TestServeCacheCutsHops(t *testing.T) {
	cached := build(t, 1, Config{Plan: testPlan(), Work: 100}, false)
	crep, err := cached.srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	uncached := build(t, 1, Config{Plan: testPlan(), Work: 100, CacheSize: -1}, false)
	urep, err := uncached.srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if crep.CacheHits == 0 {
		t.Fatal("cache never hit under a Zipf workload")
	}
	if urep.CacheHits != 0 || urep.CacheMisses != 0 {
		t.Fatalf("uncached run counted cache traffic: %+v", urep)
	}
	if crep.MeanHops >= urep.MeanHops {
		t.Fatalf("cache did not cut hops: %.3f cached vs %.3f uncached", crep.MeanHops, urep.MeanHops)
	}
}

// Priming wires internal/objects in: the store holds the plan's object
// population with analytically expected loads, credited consistently.
func TestServePrimedStore(t *testing.T) {
	f := build(t, 1, Config{Plan: testPlan(), Work: 100}, false)
	store := f.srv.Store()
	if store.Len() != testPlan().Objects {
		t.Fatalf("store holds %d objects, plan has %d", store.Len(), testPlan().Objects)
	}
	if err := store.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
	// Expected total credited rate: Rate·Work (weights sum to 1).
	want := testPlan().Rate * 100
	got := store.TotalLoad()
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("primed store totals %v, want ≈ %v", got, want)
	}

	noprime := build(t, 1, Config{Plan: testPlan(), Work: 100, NoPrime: true}, false)
	if noprime.srv.Store().Len() != 0 {
		t.Fatal("NoPrime still populated the store")
	}
}

// Hot objects get replicas; replicated gets spread across distinct
// nodes, visible as replica sets after a promotion pass.
func TestServeHotReplication(t *testing.T) {
	f := build(t, 1, Config{Plan: testPlan(), Work: 100, HotCount: 8, Replicas: 2, PromoteEvery: 500}, false)
	if _, err := f.srv.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.srv.reps) == 0 {
		t.Fatal("no hot object was promoted")
	}
	for obj, set := range f.srv.reps {
		owner := f.ring.Successor(f.srv.keys[obj])
		seen := map[*chord.Node]bool{owner.Owner: true}
		for _, rep := range set {
			if seen[rep.Owner] {
				t.Fatalf("object %d: replica set reuses node %d", obj, rep.Owner.Index)
			}
			seen[rep.Owner] = true
		}
	}
}

// A warmup window drops early arrivals from the summaries but not from
// the served counts or the observation state.
func TestServeWarmupExcludesEarlyArrivals(t *testing.T) {
	full := build(t, 1, Config{Plan: testPlan(), Work: 100}, false)
	frep, err := full.srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	warm := build(t, 1, Config{Plan: testPlan(), Work: 100, Warmup: 1000}, false)
	wrep, err := warm.srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if wrep.Requests != frep.Requests || wrep.Gets != frep.Gets || wrep.Puts != frep.Puts {
		t.Fatalf("warmup changed what was served: %+v vs %+v", wrep, frep)
	}
	if wrep.Measured >= frep.Measured {
		t.Fatalf("warmup excluded nothing: measured %d vs %d", wrep.Measured, frep.Measured)
	}
	// Rate 2/tick for 1000 ticks ≈ 2000 excluded arrivals.
	excluded := frep.Measured - wrep.Measured
	if excluded < 1500 || excluded > 2500 {
		t.Fatalf("excluded %d arrivals, expected ≈ 2000", excluded)
	}
	if wrep.Checksum == frep.Checksum {
		t.Fatal("checksum unchanged despite excluded samples")
	}
}

func TestServeConfigErrors(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	if _, err := New(eng, ring, Config{Plan: testPlan()}); err == nil {
		t.Fatal("expected empty-ring error")
	}
	ring.AddNode(-1, 10, 4)
	if _, err := New(eng, ring, Config{}); err == nil {
		t.Fatal("expected invalid-plan error")
	}
	if _, err := New(eng, ring, Config{Plan: testPlan(), Alpha: 2}); err == nil {
		t.Fatal("expected alpha error")
	}
	srv, err := New(eng, ring, Config{Plan: testPlan(), Work: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(); err == nil {
		t.Fatal("expected already-ran error")
	}
}

package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// LatencySummary is the tail-focused view of one latency stream, in
// simulation ticks.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func summarize(xs []float64) LatencySummary {
	if len(xs) == 0 {
		return LatencySummary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	sum := stats.SummarizeSorted(sorted)
	return LatencySummary{
		Mean: sum.Mean,
		P50:  sum.Median,
		P99:  stats.PercentileSorted(sorted, 99),
		P999: stats.PercentileSorted(sorted, 99.9),
		Max:  sum.Max,
	}
}

// Report is the outcome of one served plan. When a warmup window is
// configured, the latency summaries, hop counts and checksum cover the
// Measured post-warmup requests only; Requests/Gets/Puts count
// everything served.
type Report struct {
	Requests int `json:"requests"`
	Measured int `json:"measured"`
	Gets     int `json:"gets"`
	Puts     int `json:"puts"`
	// Duration is the virtual time at which the last queued service
	// completed.
	Duration sim.Time `json:"duration"`

	// MeanHops is the average overlay hop count per lookup — the number
	// the hot-path cache exists to cut.
	MeanHops float64 `json:"mean_hops"`
	// Cache counters (all zero when the cache is disabled).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheStale  int64 `json:"cache_stale"`

	Lookup  LatencySummary `json:"lookup"`
	Service LatencySummary `json:"service"`
	Total   LatencySummary `json:"total"`

	// Balancing activity interleaved with the stream.
	Rounds    int     `json:"rounds"`
	Transfers int     `json:"transfers"`
	MovedLoad float64 `json:"moved_load"`

	// Checksum fingerprints the raw per-request latency streams in
	// completion order (FNV-64a over the IEEE-754 bits). Two runs of
	// the same plan are byte-identical iff their checksums match — the
	// determinism gate diffs this, not just the summaries.
	Checksum string `json:"checksum"`
}

func (s *Server) report() *Report {
	rep := &Report{
		Requests:  s.served,
		Measured:  len(s.totalLat),
		Gets:      s.gets,
		Puts:      s.puts,
		Duration:  sim.Time(math.Ceil(s.lastFinish)),
		Rounds:    s.rounds,
		Transfers: s.transfers,
		MovedLoad: s.movedLoad,
		Lookup:    summarize(s.lookupLat),
		Service:   summarize(s.serviceLat),
		Total:     summarize(s.totalLat),
		Checksum:  checksum(s.lookupLat, s.serviceLat),
	}
	if rep.Measured > 0 {
		rep.MeanHops = float64(s.hopSum) / float64(rep.Measured)
	}
	if s.cache != nil {
		rep.CacheHits, rep.CacheMisses, rep.CacheStale = s.cache.Stats()
	}
	return rep
}

// checksum fingerprints latency streams: FNV-64a over each sample's
// IEEE-754 bits in completion order.
func checksum(streams ...[]float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, xs := range streams {
		for _, x := range xs {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Package serve is the heavy-traffic serving layer over the balanced
// ring: it replays a workload.RequestPlan — an open-loop stream of
// Zipf-popularity get/put requests — against internal/chord +
// internal/objects, measuring per-request lookup and service latency
// while balancing rounds run concurrently on the same deterministic
// engine.
//
// This is where "load" stops being an assigned scalar: each request's
// service work is credited to the virtual server that absorbed it, a
// windowed EWMA turns those credits into a decayed observed request
// rate, and the Server itself is a core.LoadSource — every balancing
// round classifies against what the traffic actually did, not what a
// model once sampled (the Mirrezaei–Shahparian regime: loads drift
// between rounds).
//
// Three accelerations sit on the request path, all deterministic:
//
//   - a chord.LookupCache turns repeat lookups of hot keys into single
//     overlay hops (invalidated on transfer/churn, validated at
//     arrival — see internal/chord/cache.go);
//   - the head of the Zipf curve is replicated: every PromoteEvery
//     ticks the most-requested objects get rate-sized replica sets on
//     distinct ring successors, and hot requests spread across the
//     slots by capacity-weighted round-robin (puts multi-master with a
//     bounded write-through to the strongest peers);
//   - the object population is bulk-loaded (objects.Store.BulkInsert)
//     with the plan's analytic popularity weights, priming the observed
//     rates so the first round classifies sensibly and warm-starting
//     the hot set before the first arrival (see primePromote).
//
// Service is a per-node FIFO queue: a request occupies its serving node
// for work/capacity ticks after the queue drains — slow peers back up,
// which is exactly the tail the balancer is supposed to flatten.
package serve

import (
	"fmt"
	"math"
	"sort"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/metrics"
	"p2plb/internal/objects"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Plan is the request workload. Required.
	Plan workload.PlanSpec
	// Work is the service work of a get, in capacity·tick units: a node
	// of capacity C serves it in Work/C ticks. Default 1000 (the
	// Gnutella profile's dial-up peers are then genuinely slow).
	Work float64
	// PutWorkFactor scales Work for puts (and their replica writes).
	// Default 2.
	PutWorkFactor float64
	// CacheSize is the per-origin-node lookup cache capacity. 0 means
	// the chord default (128); negative disables the cache entirely
	// (the uncached baseline the hops claim is pinned against).
	CacheSize int
	// HotCount is how many of the most-requested objects hold replicas
	// after each promotion pass. It must reach past the Zipf ranks
	// whose single-object rate exceeds what the balancer can place as
	// one virtual server (see ReplicaCapacity). 0 means 64; negative
	// disables replication.
	HotCount int
	// Replicas caps the replica-set size per hot object beyond the
	// owner, placed on distinct-node ring successors. Sets are sized
	// per object from its observed rate (see ReplicaCapacity); the head
	// of a strong Zipf curve legitimately needs tens of read replicas —
	// no single node, however capable, can absorb 10%+ of all traffic
	// within its fair share. Default 64.
	Replicas int
	// ReplicaCapacity is the capacity class replica slots are sized
	// for: each hot object gets enough slots that one slot's get rate
	// is about the fair-share load of a node with this capacity. Too
	// small wastes replicas; too large recreates the unassignable-VS
	// problem replication exists to solve. Default 1000 (the Gnutella
	// profile's "server-class" tier, 4.9% of nodes).
	ReplicaCapacity float64
	// PromoteEvery is the interval between hot-set promotions. Default
	// 2000 ticks.
	PromoteEvery sim.Time
	// Window is the observation window: per-VS work credits are folded
	// into the EWMA rate once per Window. Default 500 ticks.
	Window sim.Time
	// Alpha is the EWMA smoothing factor in (0, 1]. Default 0.3.
	Alpha float64
	// RoundInterval starts a balancing round every so many ticks while
	// the plan is still emitting (skipped while one is in flight). 0
	// disables balancing — the balancer-off baseline.
	RoundInterval sim.Time
	// Warmup excludes requests arriving before this virtual time from
	// the latency summaries (they are still served, still occupy queues
	// and still feed the observed rates). Every variant shares the same
	// initial placement, so the transient before the balancer and the
	// hot-set promotion can possibly react — the first PromoteEvery and
	// the first few RoundIntervals — measures the same queues in every
	// variant; the steady-state tail is where they differ. Default 0
	// (measure everything).
	Warmup sim.Time
	// NoPrime skips seeding the object store with the plan's analytic
	// popularity weights (load = weight·Rate·Work per object). Priming
	// starts virtual-server loads and observed rates at the
	// expectation instead of zero, and warm-starts the hot replica
	// sets before the first arrival (see primePromote).
	NoPrime bool
}

func (c *Config) fill() error {
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Work == 0 {
		c.Work = 1000
	}
	if c.Work < 0 {
		return fmt.Errorf("serve: negative work %v", c.Work)
	}
	if c.PutWorkFactor == 0 {
		c.PutWorkFactor = 2
	}
	if c.HotCount == 0 {
		c.HotCount = 64
	}
	if c.Replicas == 0 {
		c.Replicas = 64
	}
	if c.ReplicaCapacity == 0 {
		c.ReplicaCapacity = 1000
	}
	if c.PromoteEvery == 0 {
		c.PromoteEvery = 2000
	}
	if c.Window == 0 {
		c.Window = 500
	}
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("serve: EWMA alpha %v outside (0,1]", c.Alpha)
	}
	return nil
}

// writeReplicas bounds how many replicas a put writes through to —
// durability fan-out, independent of the read set's size.
const writeReplicas = 2

// RoundRunner starts message-level balancing rounds on the engine; it
// is the face of protocol.Runner the server needs.
type RoundRunner interface {
	StartRound(done func(*protocol.Result, error)) error
}

// Server replays a request plan against a ring.
type Server struct {
	eng   *sim.Engine
	ring  *chord.Ring
	cfg   Config
	plan  *workload.RequestPlan
	store *objects.Store
	cache *chord.LookupCache
	keys  []ident.ID // object index -> identifier-space key

	runner RoundRunner

	nodes  []*chord.Node
	busy   []float64 // per node Index: queue drain time (fractional ticks); sized at New
	sumCap float64   // total ring capacity, for replica-slot sizing

	// Observation state. Maps are keyed by pointer and only ever read
	// through point lookups or in ring/sorted order.
	win     map[*chord.VServer]float64 // work credited this window
	ew      map[*chord.VServer]float64 // decayed observed rate
	touched map[int]float64            // object -> requests since last promotion
	reps    map[int][]*chord.VServer   // hot object -> replica set
	wrr     map[int][]float64          // hot object -> smooth-WRR credits per slot

	// Per-request samples, in completion order.
	lookupLat  []float64
	serviceLat []float64
	totalLat   []float64

	outstanding int
	planDone    bool
	started     bool
	finished    bool
	cancels     []func()

	served     int
	gets, puts int
	hopSum     int64
	lastFinish float64

	roundActive bool
	roundErr    error
	rounds      int
	transfers   int
	movedLoad   float64

	mService *metrics.Histogram
}

// New builds a Server over ring: draws the object keys, bulk-loads the
// primed object store, and sets up the lookup cache. The ring must
// already be populated.
func New(eng *sim.Engine, ring *chord.Ring, cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ring.NumVServers() == 0 {
		return nil, fmt.Errorf("serve: empty ring")
	}
	plan, err := workload.NewRequestPlan(cfg.Plan)
	if err != nil {
		return nil, err
	}
	maxIdx := 0
	for _, n := range ring.Nodes() {
		if n.Index > maxIdx {
			maxIdx = n.Index
		}
	}
	s := &Server{
		eng:     eng,
		ring:    ring,
		cfg:     cfg,
		plan:    plan,
		store:   objects.NewStore(ring),
		nodes:   ring.Nodes(),
		busy:    make([]float64, maxIdx+1),
		win:     make(map[*chord.VServer]float64, ring.NumVServers()),
		ew:      make(map[*chord.VServer]float64, ring.NumVServers()),
		touched: make(map[int]float64),
		reps:    make(map[int][]*chord.VServer),
		wrr:     make(map[int][]float64),
	}
	for _, n := range s.nodes {
		s.sumCap += n.Capacity
	}
	s.keys = make([]ident.ID, cfg.Plan.Objects)
	for i := range s.keys {
		s.keys[i] = ident.ID(eng.Rand().Uint32())
	}
	if cfg.CacheSize >= 0 {
		s.cache = chord.NewLookupCache(ring, cfg.CacheSize)
	}
	if !cfg.NoPrime {
		w := plan.ExpectedWeights()
		objs := make([]objects.Object, len(s.keys))
		for i, k := range s.keys {
			objs[i] = objects.Object{Key: k, Load: w[i] * cfg.Plan.Rate * cfg.Work}
		}
		if err := s.store.BulkInsert(objs); err != nil {
			return nil, err
		}
		// The store credited each VS its expected absorbed rate; start
		// the observation from that prior rather than from zero.
		for _, vs := range ring.VServers() {
			s.ew[vs] = vs.Load
		}
	}
	return s, nil
}

// Store exposes the primed object population (tests, experiments).
func (s *Server) Store() *objects.Store { return s.store }

// Cache exposes the lookup cache (nil when disabled).
func (s *Server) Cache() *chord.LookupCache { return s.cache }

// UseBalancer interleaves message-level balancing rounds every interval
// ticks with the request stream. Call before Run. The runner's core
// config should carry this Server as its LoadSource so rounds classify
// against observed rates.
func (s *Server) UseBalancer(r RoundRunner, interval sim.Time) {
	s.runner = r
	s.cfg.RoundInterval = interval
}

// Refresh implements core.LoadSource: each virtual server's Load
// becomes its decayed observed request rate (work per tick), in
// canonical ring order.
func (s *Server) Refresh(ring *chord.Ring) {
	for _, vs := range ring.VServers() {
		vs.Load = s.ew[vs]
	}
}

// Name implements core.LoadSource.
func (s *Server) Name() string { return "observed-ewma" }

// Run replays the whole plan on the engine and reports. It may be
// called once.
func (s *Server) Run() (*Report, error) {
	if s.started {
		return nil, fmt.Errorf("serve: server already ran")
	}
	s.started = true
	n := s.cfg.Plan.Requests
	s.lookupLat = make([]float64, 0, n)
	s.serviceLat = make([]float64, 0, n)
	s.totalLat = make([]float64, 0, n)

	first, ok := s.plan.Next()
	if !ok {
		return nil, fmt.Errorf("serve: empty plan")
	}
	s.pump(first)
	s.cancels = append(s.cancels, s.eng.Every(s.cfg.Window, s.windowTick))
	if s.cfg.HotCount > 0 && s.cfg.Replicas > 0 {
		if !s.cfg.NoPrime {
			s.primePromote()
		}
		s.cancels = append(s.cancels, s.eng.Every(s.cfg.PromoteEvery, s.promoteTick))
	}
	if s.runner != nil && s.cfg.RoundInterval > 0 {
		s.cancels = append(s.cancels, s.eng.Every(s.cfg.RoundInterval, s.roundTick))
	}
	s.eng.Run()
	if s.roundErr != nil {
		return nil, s.roundErr
	}
	if !s.planDone || s.outstanding != 0 {
		return nil, fmt.Errorf("serve: engine drained with %d requests outstanding (planDone=%v)",
			s.outstanding, s.planDone)
	}
	return s.report(), nil
}

// pump schedules the next planned arrival; each arrival event handles
// its request and pumps the one after it, so the whole plan streams
// through a single in-flight timer.
func (s *Server) pump(r workload.Request) {
	delay := sim.Time(r.At) - s.eng.Now()
	if delay < 0 {
		delay = 0
	}
	s.eng.Schedule(delay, func() {
		s.handle(r)
		if next, ok := s.plan.Next(); ok {
			s.pump(next)
		} else {
			s.planDone = true
			s.maybeFinish()
		}
	})
}

// handle issues one request: pick the routing target (owner key, or a
// capacity-weighted replica slot for hot objects), resolve it through
// the cached lookup, then queue the service work where the lookup
// landed.
func (s *Server) handle(r workload.Request) {
	s.outstanding++
	origin := s.nodes[r.Origin%len(s.nodes)]
	key := s.keys[r.Object]
	if reps := s.reps[r.Object]; len(reps) > 0 {
		// Hot object: both ops spread over owner + replicas by smooth
		// weighted round-robin, weighted by each slot's current host
		// capacity — a slot the balancer has moved onto a backbone
		// node draws proportionally more traffic, a slot stranded on a
		// dial-up peer draws almost none. Slot 0 is the owner; serving
		// puts at a weighted slot makes hot keys multi-master, with a
		// bounded write-through to the strongest peers (see complete).
		if slot := s.pickSlot(r.Object, reps); slot > 0 {
			// A replica owns its own identifier, so routing to rep.ID
			// resolves (and caches) the replica itself.
			key = reps[slot-1].ID
		}
	}
	s.ring.CachedLookup(s.cache, origin, key, func(res chord.LookupResult) {
		s.complete(r, res)
	})
}

// pickSlot runs one step of smooth weighted round-robin over a hot
// object's slots ([owner, replicas...]), weighted by the slots' current
// host capacities. Deterministic: ties break toward the lowest index.
func (s *Server) pickSlot(obj int, reps []*chord.VServer) int {
	n := len(reps) + 1
	credit := s.wrr[obj]
	if len(credit) != n {
		credit = make([]float64, n)
		s.wrr[obj] = credit
	}
	owner := s.ring.Successor(s.keys[obj])
	var total float64
	best := 0
	for i := 0; i < n; i++ {
		vs := owner
		if i > 0 {
			vs = reps[i-1]
		}
		w := vs.Owner.Capacity
		credit[i] += w
		total += w
		if credit[i] > credit[best] {
			best = i
		}
	}
	credit[best] -= total
	return best
}

// complete runs when the lookup lands at the serving VS: charge the
// FIFO queue of the hosting node, credit the observation window, and
// record the request's latency split.
func (s *Server) complete(r workload.Request, res chord.LookupResult) {
	now := float64(s.eng.Now())
	work := s.cfg.Work
	if r.Op == workload.OpPut {
		work *= s.cfg.PutWorkFactor
	}

	node := res.VS.Owner
	finish := s.enqueue(node, now, work)
	svc := finish - now
	if r.Op == workload.OpPut {
		// Replica writes are asynchronous: they do not stretch this
		// request's latency but do occupy the replica nodes' queues —
		// replication is not free. Writes fan out to a bounded number
		// of durability peers — the highest-capacity other slots, not
		// the whole read set: a head object with dozens of read slots
		// must not multiply every put by dozens, and write-through to
		// a dial-up slot would bury the one queue the weighted reads
		// already spare.
		if reps := s.reps[r.Object]; len(reps) > 0 {
			for _, rep := range s.writeSet(r.Object, reps, res.VS) {
				s.enqueue(rep.Owner, now, work)
			}
		}
		s.puts++
	} else {
		s.gets++
	}

	s.win[res.VS] += work
	s.touched[r.Object]++
	s.served++

	if sim.Time(r.At) >= s.cfg.Warmup {
		s.hopSum += int64(res.Hops)
		lookup := float64(res.Cost)
		s.lookupLat = append(s.lookupLat, lookup)
		s.serviceLat = append(s.serviceLat, svc)
		s.totalLat = append(s.totalLat, lookup+svc)
		s.observeService(svc)
	}
	if finish > s.lastFinish {
		s.lastFinish = finish
	}
	s.outstanding--
	s.maybeFinish()
}

// writeSet picks the put write-through targets for a hot object: up to
// writeReplicas slots other than the serving one, highest host
// capacity first (ties toward the owner, then ring order).
func (s *Server) writeSet(obj int, reps []*chord.VServer, served *chord.VServer) []*chord.VServer {
	slots := make([]*chord.VServer, 0, len(reps)+1)
	if owner := s.ring.Successor(s.keys[obj]); owner != served {
		slots = append(slots, owner)
	}
	for _, rep := range reps {
		if rep != served && s.ring.OnRing(rep) {
			slots = append(slots, rep)
		}
	}
	sort.SliceStable(slots, func(i, j int) bool {
		return slots[i].Owner.Capacity > slots[j].Owner.Capacity
	})
	if len(slots) > writeReplicas {
		slots = slots[:writeReplicas]
	}
	return slots
}

// enqueue appends work to node's FIFO service queue, returning the
// completion time. Occupancy is fractional — work/capacity ticks — so
// capacity heterogeneity bites proportionally across the profile's
// full 10⁰–10⁴ span: a backbone node absorbs ten requests per tick
// while a dial-up peer needs a thousand ticks for one. (An integer
// floor here would cap every node at one request per tick and make
// the Zipf head unservable by any placement.)
//
// The busy slice is sized to the ring's maximum node index at New;
// the serving layer does not support membership change mid-plan (it
// would invalidate the latency accounting), so no growth path exists
// here.
//
//lbvet:hotpath
func (s *Server) enqueue(node *chord.Node, now float64, work float64) float64 {
	start := now
	if bu := s.busy[node.Index]; bu > start {
		start = bu
	}
	finish := start + work/node.Capacity
	s.busy[node.Index] = finish
	return finish
}

// windowTick folds the window's work credits into the decayed observed
// rates, in canonical ring order.
func (s *Server) windowTick() {
	w := float64(s.cfg.Window)
	a := s.cfg.Alpha
	for _, vs := range s.ring.VServers() {
		rate := s.win[vs] / w
		s.ew[vs] = a*rate + (1-a)*s.ew[vs]
		if s.win[vs] != 0 {
			s.win[vs] = 0
		}
	}
}

// promoteTick recomputes the hot set: the HotCount most-requested
// objects since the last promotion get replicas on distinct-node ring
// successors, with the set sized to the object's observed rate.
func (s *Server) promoteTick() {
	cand := make([]candidate, 0, len(s.touched))
	for obj, n := range s.touched {
		cand = append(cand, candidate{obj, n})
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].obj < cand[j].obj })
	s.promote(cand)
	s.touched = make(map[int]float64)
}

// primePromote warm-starts the hot set from the plan's analytic
// popularity weights before the first arrival. Without it, every
// variant spends the first PromoteEvery ticks funnelling the whole
// Zipf head into the one virtual server that happens to own each hot
// key; if that is a dial-up peer, the queue built during that blind
// window takes millions of ticks to drain and buries every later
// request routed there — and no balancer can repair it afterwards,
// because the damage is backlog, not rate. The prior is the same
// expectation the store was primed with, so this is warm-starting
// from knowledge the server already has.
func (s *Server) primePromote() {
	w := s.plan.ExpectedWeights()
	cand := make([]candidate, len(w))
	for i, wi := range w {
		cand[i] = candidate{i, wi * s.cfg.Plan.Rate * float64(s.cfg.PromoteEvery)}
	}
	s.promote(cand)
}

type candidate struct {
	obj int
	n   float64 // requests attributed to obj over one promotion window
}

// promote rebuilds the replica sets from request-count candidates.
// Candidate order is fully deterministic (count desc, object index
// asc).
func (s *Server) promote(cand []candidate) {
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].n != cand[j].n {
			return cand[i].n > cand[j].n
		}
		return cand[i].obj < cand[j].obj
	})
	if len(cand) > s.cfg.HotCount {
		cand = cand[:s.cfg.HotCount]
	}
	// Per-slot work budget: the fair-share load of a ReplicaCapacity
	// node at the ring's current work-per-capacity ratio. A hot object
	// gets enough slots that each carries about one budget's worth.
	ratio := s.totalObserved() / s.sumCap
	chunk := ratio * s.cfg.ReplicaCapacity
	reps := make(map[int][]*chord.VServer, len(cand))
	for _, c := range cand {
		want := s.wantReplicas(c.n, chunk)
		// Replica sets are sticky while the object stays hot:
		// re-rolling placements every pass would hand the balancer a
		// moving target — it moves an unlucky replica's virtual server
		// off a dial-up node once, and the set stays fixed so the fix
		// sticks. Only recompute when a replica's VS left the ring or
		// the object got hot enough to need a bigger set.
		if set, ok := s.reps[c.obj]; ok && len(set) >= want && s.allOnRing(set) {
			reps[c.obj] = set
			continue
		}
		owner := s.ring.Successor(s.keys[c.obj])
		if set := s.replicaSet(owner, want); len(set) > 0 {
			reps[c.obj] = set
		}
	}
	s.reps = reps
}

// wantReplicas sizes one hot object's replica set: its observed get
// work rate divided into chunk-sized slots (owner holds one), capped
// by cfg.Replicas.
func (s *Server) wantReplicas(requests float64, chunk float64) int {
	rate := requests / float64(s.cfg.PromoteEvery)
	want := 1
	if chunk > 0 {
		want = int(math.Ceil(rate * s.cfg.Work / chunk))
	}
	if want < 1 {
		want = 1
	}
	if want > s.cfg.Replicas {
		want = s.cfg.Replicas
	}
	return want
}

// totalObserved is the ring-wide observed work rate, summed in ring
// order.
func (s *Server) totalObserved() float64 {
	var t float64
	for _, vs := range s.ring.VServers() {
		t += s.ew[vs]
	}
	return t
}

func (s *Server) allOnRing(set []*chord.VServer) bool {
	for _, rep := range set {
		if !s.ring.OnRing(rep) {
			return false
		}
	}
	return true
}

// replicaSet walks the ring clockwise from owner collecting up to want
// virtual servers hosted on distinct nodes (none on the owner's node)
// — the successor-chain placement every DHT replication scheme uses.
func (s *Server) replicaSet(owner *chord.VServer, want int) []*chord.VServer {
	out := make([]*chord.VServer, 0, want)
	cur := owner
	for steps := 0; len(out) < want && steps < s.ring.NumVServers(); steps++ {
		cur = s.ring.Successor(cur.ID.Add(1))
		if cur == owner {
			break
		}
		if cur.Owner == owner.Owner {
			continue
		}
		dup := false
		for _, o := range out {
			if o.Owner == cur.Owner {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cur)
		}
	}
	return out
}

// roundTick starts a balancing round unless one is in flight or the
// plan has drained.
func (s *Server) roundTick() {
	if s.runner == nil || s.roundActive || s.planDone || s.roundErr != nil {
		return
	}
	s.roundActive = true
	err := s.runner.StartRound(func(res *protocol.Result, err error) {
		s.roundActive = false
		if err != nil {
			s.roundErr = err
			return
		}
		s.rounds++
		s.transfers += len(res.Assignments)
		s.movedLoad += res.MovedLoad
	})
	if err != nil {
		s.roundErr = err
		s.roundActive = false
	}
}

// maybeFinish cancels the periodic tickers once the plan has drained
// and no lookup is in flight, letting the engine run dry.
func (s *Server) maybeFinish() {
	if s.finished || !s.planDone || s.outstanding != 0 {
		return
	}
	s.finished = true
	for _, cancel := range s.cancels {
		cancel()
	}
	s.cancels = nil
}

// observeService records one service latency into the engine's metrics
// registry, if one is attached.
func (s *Server) observeService(d float64) {
	if s.mService == nil {
		reg := s.eng.Metrics()
		if reg == nil {
			return
		}
		s.mService = reg.Histogram("serve.service.latency")
	}
	s.mService.Observe(int64(d))
}

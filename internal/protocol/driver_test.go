// Driver-level unit tests: the epoch-window budget and the round-scratch
// recycling paths belong to the sim executor, not the lbnode machines,
// so they are pinned here against the Runner internals directly.
package protocol

import (
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/sim"
)

// TestEpochWindowEdgeCases pins the per-node epoch budget: windows
// shrink one slack unit per level down the tree, a parent always
// outlasting its children, and never collapse below one unit even for
// nodes deeper than the current tree height (tree repair can leave such
// nodes between Build calls; a zero window would fire the expiry at the
// same instant as the request).
func TestEpochWindowEdgeCases(t *testing.T) {
	ring, tree := fixture(31, 64, 3)
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 100})
	if err != nil {
		t.Fatal(err)
	}
	rd := &round{r: r, timeout: 100}
	h := tree.Height()
	if h < 1 {
		t.Fatalf("fixture tree too flat: height %d", h)
	}
	if got, want := rd.epochWindow(&ktree.Node{Depth: 0}), sim.Time(100*(h+1)); got != want {
		t.Errorf("root window = %v, want %v", got, want)
	}
	if got, want := rd.epochWindow(&ktree.Node{Depth: h}), sim.Time(100); got != want {
		t.Errorf("leaf window = %v, want %v", got, want)
	}
	for d := 0; d < h; d++ {
		parent, child := rd.epochWindow(&ktree.Node{Depth: d}), rd.epochWindow(&ktree.Node{Depth: d + 1})
		if parent <= child {
			t.Errorf("depth-%d window %v does not outlast depth-%d window %v", d, parent, d+1, child)
		}
	}
	if got, want := rd.epochWindow(&ktree.Node{Depth: h + 7}), sim.Time(100); got != want {
		t.Errorf("over-deep window = %v, want clamped %v", got, want)
	}
}

// TestScratchReuseAndShrink covers takeScratch's two paths directly: a
// modest inbox map is retained key-by-key with its report slices
// truncated in place, while a map dominated by retired KT-node keys
// (tree repair retires nodes between rounds) is dropped for a fresh one
// rather than dragging dead buckets along forever.
func TestScratchReuseAndShrink(t *testing.T) {
	ring, tree := fixture(32, 48, 3)
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	if err != nil {
		t.Fatal(err)
	}

	// Seed a recycled scratch the way a clean round leaves one: populated
	// maps, report slices still holding last round's entries.
	n1, n2 := &ktree.Node{}, &ktree.Node{}
	sc := &roundScratch{
		lbiInbox: map[*ktree.Node][]core.LBI{n1: make([]core.LBI, 3, 8), n2: make([]core.LBI, 1)},
		states:   map[*chord.Node]*core.NodeState{ring.Nodes()[0]: {}},
		vsaInbox: map[*ktree.Node]*core.PairList{n1: {}},
		leafOfVS: map[*chord.VServer]*ktree.Node{ring.VServers()[0]: n1},
	}
	r.scratch = sc

	got := r.takeScratch()
	if got != sc {
		t.Fatal("takeScratch allocated fresh scratch instead of reusing the recycled one")
	}
	if r.scratch != nil {
		t.Fatal("takeScratch left the runner still holding the scratch")
	}
	if len(got.lbiInbox) != 2 {
		t.Errorf("reuse path kept %d inbox keys, want 2", len(got.lbiInbox))
	}
	if len(got.lbiInbox[n1]) != 0 || cap(got.lbiInbox[n1]) < 8 {
		t.Errorf("reuse path must truncate report slices in place: len %d cap %d, want len 0 cap >= 8",
			len(got.lbiInbox[n1]), cap(got.lbiInbox[n1]))
	}
	if len(got.states) != 0 || len(got.vsaInbox) != 0 || len(got.leafOfVS) != 0 {
		t.Errorf("reuse path must clear states/vsaInbox/leafOfVS: %d/%d/%d entries left",
			len(got.states), len(got.vsaInbox), len(got.leafOfVS))
	}

	// Shrink path: flood the inbox with retired keys past the 2·N+16
	// bound, then take again — the inbox map must be replaced outright.
	for i := 0; i <= 2*tree.NumNodes()+16; i++ {
		got.lbiInbox[&ktree.Node{}] = nil
	}
	r.scratch = got
	fresh := r.takeScratch()
	if fresh != got {
		t.Fatal("shrink path should reuse the scratch struct, replacing only the inbox map")
	}
	if len(fresh.lbiInbox) != 0 {
		t.Errorf("shrink path kept %d retired inbox keys, want a fresh empty map", len(fresh.lbiInbox))
	}

	// A runner with no recycled scratch allocates a complete fresh set.
	r.scratch = nil
	blank := r.takeScratch()
	if blank == nil || blank.lbiInbox == nil || blank.states == nil || blank.vsaInbox == nil || blank.leafOfVS == nil {
		t.Fatal("cold takeScratch must allocate every map")
	}
}

package protocol

// Fault-tolerance tests: the protocol's reliable delivery and two-phase
// handoff against the deterministic fault-injection layer, with
// chord.Ring.CheckConservation asserting after every round that no
// virtual server is lost or double-hosted and total load is conserved.

import (
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/faults"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// nodeGini is the imbalance metric: Gini over per-node unit load.
func nodeGini(ring *chord.Ring) float64 {
	var units []float64
	for _, n := range ring.AliveNodes() {
		if n.Capacity > 0 {
			units = append(units, n.TotalLoad()/n.Capacity)
		}
	}
	return stats.Gini(units)
}

// runFaultyRound starts one round and drains the engine, tolerating
// round errors (a deadline under heavy faults is legitimate) but always
// returning the result when one was produced.
func runFaultyRound(t *testing.T, r *Runner) (*Result, error) {
	t.Helper()
	var out *Result
	var outErr error
	if err := r.StartRound(func(res *Result, err error) { out, outErr = res, err }); err != nil {
		t.Fatal(err)
	}
	r.ring.Engine().Run()
	return out, outErr
}

// TestScratchDroppedAfterUncleanRound is the regression test for the
// recycling condition: per-round maps may be reused only after a round
// with no timeouts, no aborted transfers and no retransmissions.
func TestScratchDroppedAfterUncleanRound(t *testing.T) {
	ring, tree := fixture(21, 96, 4)
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 500})
	if err != nil {
		t.Fatal(err)
	}

	// Clean round: the scratch is handed back and reused.
	if _, err := runFaultyRound(t, r); err != nil {
		t.Fatal(err)
	}
	first := r.scratch
	if first == nil {
		t.Fatal("clean round did not recycle its scratch")
	}
	if _, err := runFaultyRound(t, r); err != nil {
		t.Fatal(err)
	}
	if r.scratch != first {
		t.Fatal("second clean round did not reuse the same scratch")
	}

	// Unclean round (timeouts): crash a batch of nodes mid-LBI.
	eng := ring.Engine()
	var out *Result
	if err := r.StartRound(func(res *Result, err error) { out = res }); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(1, func() {
		alive := ring.AliveNodes()
		for i := 0; i < 12; i++ {
			victim := alive[len(alive)-1-i]
			if victim == tree.Root().Host.Owner {
				continue
			}
			ring.RemoveNode(victim)
		}
	})
	eng.Run()
	if out == nil || out.TimedOutChildren == 0 {
		t.Fatalf("crash round did not time out as intended: %+v", out)
	}
	if r.scratch != nil {
		t.Fatal("scratch recycled after a round with timed-out epochs")
	}

	// Unclean round (retries): 20% loss forces retransmissions even when
	// every epoch eventually completes.
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	in, err := faults.New(21, faults.Plan{Drop: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(ring); err != nil {
		t.Fatal(err)
	}
	defer in.Detach()
	for i := 0; i < 10; i++ {
		out, roundErr := runFaultyRound(t, r)
		if roundErr != nil || out == nil {
			if _, err := tree.Repair(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if out.Retries > 0 {
			if r.scratch != nil {
				t.Fatal("scratch recycled after a round with retransmissions")
			}
			return
		}
	}
	t.Fatal("20% loss never produced a retransmission in 10 rounds")
}

// prepareKiller is a MessageFilter that delivers everything verbatim
// but kills one endpoint of the first VST prepare it sees — the
// deterministic "died between prepare and commit" scenario.
type prepareKiller struct {
	ring       *chord.Ring
	killSender bool
	killed     bool
	victim     *chord.Node
}

func (f *prepareKiller) Deliveries(kind string, src, dst int, now, cost sim.Time) []sim.Time {
	if kind == MsgPrepare && !f.killed {
		f.killed = true
		idx := dst
		if f.killSender {
			idx = src
		}
		f.victim = f.ring.Nodes()[idx]
		// The prepare itself is in flight; the endpoint dies before the
		// commit can arrive.
		f.ring.RemoveNode(f.victim)
	}
	return []sim.Time{0}
}

// TestCrashBetweenPrepareAndCommit kills the receiver (then, in a second
// run, the sender) of the first handoff right as its prepare is sent:
// the pairing must abort, the books at both endpoints must stay
// consistent, and load must be conserved.
func TestCrashBetweenPrepareAndCommit(t *testing.T) {
	for _, killSender := range []bool{false, true} {
		name := "receiver-dies"
		if killSender {
			name = "sender-dies"
		}
		t.Run(name, func(t *testing.T) {
			ring, tree := fixture(22, 96, 4)
			base := ring.SnapshotConservation()
			filter := &prepareKiller{ring: ring, killSender: killSender}
			ring.Engine().SetFilter(filter)
			r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 500})
			if err != nil {
				t.Fatal(err)
			}
			out, roundErr := runFaultyRound(t, r)
			if roundErr != nil {
				t.Fatal(roundErr)
			}
			if !filter.killed {
				t.Fatal("no prepare message was ever sent — fixture produced no pairs")
			}
			if out.AbortedTransfers == 0 {
				t.Error("killing a handoff endpoint between prepare and commit did not abort any transfer")
			}
			// The dead endpoint's book is empty and nothing points at it.
			if got := len(filter.victim.VServers()); got != 0 {
				t.Errorf("dead endpoint still hosts %d virtual servers", got)
			}
			for _, a := range out.Assignments {
				if a.VS.Owner != a.To {
					t.Error("completed assignment whose VS is not at its destination")
				}
			}
			if err := ring.CheckConservation(base); err != nil {
				t.Errorf("conservation violated: %v", err)
			}
			ring.CheckInvariants()
		})
	}
}

// TestCommitLossNeverLosesVS blocks every commit message: all handoffs
// must abort after their retries drain, with every paired virtual
// server still hosted by its sender.
func TestCommitLossNeverLosesVS(t *testing.T) {
	ring, tree := fixture(23, 96, 4)
	base := ring.SnapshotConservation()
	in, err := faults.New(23, faults.Plan{DropByKind: map[string]float64{MsgTransfer: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(ring); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 500})
	if err != nil {
		t.Fatal(err)
	}
	out, roundErr := runFaultyRound(t, r)
	if roundErr != nil {
		t.Fatal(roundErr)
	}
	if out.AbortedTransfers == 0 {
		t.Fatal("blocking all commits aborted nothing — no pairs?")
	}
	if len(out.Assignments) != 0 {
		t.Errorf("%d transfers completed despite total commit loss", len(out.Assignments))
	}
	if out.Retries == 0 {
		t.Error("total commit loss should have forced retransmissions")
	}
	if err := ring.CheckConservation(base); err != nil {
		t.Errorf("conservation violated: %v", err)
	}
	if got, want := ring.NumVServers(), base.NumVS; got != want {
		t.Errorf("VS population changed: %d vs %d", got, want)
	}
	ring.CheckInvariants()
}

// TestDuplicatedCommitsAreIdempotent duplicates every message at a high
// rate: receiver dedup must keep each transfer applied exactly once.
func TestDuplicatedCommitsAreIdempotent(t *testing.T) {
	ring, tree := fixture(24, 96, 4)
	base := ring.SnapshotConservation()
	in, err := faults.New(24, faults.Plan{Duplicate: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(ring); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 500})
	if err != nil {
		t.Fatal(err)
	}
	out, roundErr := runFaultyRound(t, r)
	if roundErr != nil {
		t.Fatal(roundErr)
	}
	if len(out.Assignments) == 0 {
		t.Fatal("no transfers completed under duplication")
	}
	seen := make(map[*chord.VServer]bool)
	for _, a := range out.Assignments {
		if seen[a.VS] {
			t.Errorf("virtual server %s transferred twice", a.VS.ID)
		}
		seen[a.VS] = true
	}
	if err := ring.CheckConservation(base); err != nil {
		t.Errorf("conservation violated: %v", err)
	}
	ring.CheckInvariants()
}

// TestLossAndCrashesConvergeWithConservation is the acceptance
// scenario: 10% uniform loss plus a mid-round crash schedule. Every
// round must end with conservation intact, and the system must still
// converge to within 2× the fault-free imbalance.
func TestLossAndCrashesConvergeWithConservation(t *testing.T) {
	const rounds = 6

	// Fault-free baseline imbalance after the same number of rounds.
	cleanRing, cleanTree := fixture(25, 128, 4)
	rClean, err := NewRunner(cleanRing, cleanTree, Config{Core: core.Config{Epsilon: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := runFaultyRound(t, rClean); err != nil {
			t.Fatal(err)
		}
	}
	cleanGini := nodeGini(cleanRing)

	// Faulty run: same fixture, 10% loss, crashes landing mid-round.
	ring, tree := fixture(25, 128, 4)
	base := ring.SnapshotConservation()
	in, err := faults.New(25, faults.Plan{
		Drop: 0.10,
		Crashes: []faults.Crash{
			{At: 200, Node: 40},
			{At: 5000, Node: 41, Restart: 40000},
			{At: 9000, Node: 42},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(ring); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 500})
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < rounds; i++ {
		out, roundErr := runFaultyRound(t, r)
		if roundErr != nil {
			// A failed round must still leave the books consistent; the
			// tree may need a repair before the next attempt.
			if _, err := tree.Repair(); err != nil {
				t.Fatal(err)
			}
		} else if out != nil {
			completed++
		}
		if err := ring.CheckConservation(base); err != nil {
			t.Fatalf("round %d: conservation violated: %v", i, err)
		}
		ring.CheckInvariants()
	}
	if completed == 0 {
		t.Fatal("no round completed under 10% loss")
	}
	faultyGini := nodeGini(ring)
	t.Logf("gini: clean=%.4f faulty=%.4f (completed %d/%d rounds, dropped=%d, crashes=%d)",
		cleanGini, faultyGini, completed, rounds, in.Dropped(), in.Crashes())
	if limit := 2 * cleanGini; faultyGini > limit {
		t.Errorf("faulty imbalance %.4f exceeds 2× fault-free %.4f", faultyGini, cleanGini)
	}
}

package protocol

import (
	"math"
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/proximity"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
	"p2plb/internal/workload"
)

// fixture builds a loaded heterogeneous ring + tree on a fresh engine.
func fixture(seed int64, nodes, vsPer int) (*chord.Ring, *ktree.Tree) {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), vsPer)
	}
	mu := float64(nodes) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		panic(err)
	}
	if err := tree.Build(); err != nil {
		panic(err)
	}
	return ring, tree
}

func runOneRound(t *testing.T, ring *chord.Ring, tree *ktree.Tree, cfg Config) *Result {
	t.Helper()
	r, err := NewRunner(ring, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out *Result
	var outErr error
	if err := r.StartRound(func(res *Result, err error) { out, outErr = res, err }); err != nil {
		t.Fatal(err)
	}
	ring.Engine().Run()
	if outErr != nil {
		t.Fatal(outErr)
	}
	if out == nil {
		t.Fatal("round never completed")
	}
	return out
}

func TestNewRunnerValidation(t *testing.T) {
	ring, tree := fixture(1, 16, 3)
	if _, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: -1}}); err == nil {
		t.Error("invalid core config should fail")
	}
	if _, err := NewRunner(ring, tree, Config{ChildTimeout: -1}); err == nil {
		t.Error("negative timeout should fail")
	}
	other, _ := fixture(2, 8, 2)
	otherTree, _ := ktree.New(other, 2)
	if _, err := NewRunner(ring, otherTree, Config{}); err == nil {
		t.Error("mismatched ring/tree should fail")
	}
}

func TestRoundBalancesStaticRing(t *testing.T) {
	ring, tree := fixture(3, 192, 5)
	res := runOneRound(t, ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	if res.HeavyBefore < 96 {
		t.Fatalf("fixture too tame: %d heavy", res.HeavyBefore)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("%d heavy remain (unassigned offers: %d)", res.HeavyAfter, res.UnassignedOffers)
	}
	if res.TimedOutChildren != 0 || res.AbortedTransfers != 0 {
		t.Errorf("static ring should have no timeouts/aborts: %d/%d",
			res.TimedOutChildren, res.AbortedTransfers)
	}
	if res.NodesClassified != 192 {
		t.Errorf("classified %d nodes, want 192", res.NodesClassified)
	}
	if math.Abs(res.MovedByHops.Total()-res.MovedLoad) > 1e-6 {
		t.Error("histogram total diverges from moved load")
	}
	ring.CheckInvariants()
	tree.CheckInvariants()
}

func TestProtocolMatchesAnalyticOutcome(t *testing.T) {
	// The message-level execution and the closed-form Balancer must
	// agree on the global tuple and balancing effectiveness for the
	// same workload (exact assignments differ: RNG draws happen in a
	// different order).
	ringA, treeA := fixture(4, 160, 5)
	resA := runOneRound(t, ringA, treeA, Config{Core: core.Config{Epsilon: 0.05}})

	ringB, treeB := fixture(4, 160, 5)
	bal, err := core.NewBalancer(ringB, treeB, core.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := bal.RunRound()
	if err != nil {
		t.Fatal(err)
	}

	if resA.Global != resB.Global {
		t.Errorf("global LBI differs: %+v vs %+v", resA.Global, resB.Global)
	}
	if resA.HeavyBefore != resB.HeavyBefore {
		t.Errorf("heavy-before differs: %d vs %d", resA.HeavyBefore, resB.HeavyBefore)
	}
	if resA.HeavyAfter != 0 || resB.HeavyAfter != 0 {
		t.Errorf("both should fully balance: %d vs %d", resA.HeavyAfter, resB.HeavyAfter)
	}
	// Moved load should agree closely (same classification, same
	// pairing rules; leaf-choice randomness shifts a little).
	if math.Abs(resA.MovedLoad-resB.MovedLoad) > 0.05*resB.MovedLoad {
		t.Errorf("moved load diverges: %.0f vs %.0f", resA.MovedLoad, resB.MovedLoad)
	}
}

func TestRoundDeterministic(t *testing.T) {
	run := func() *Result {
		ring, tree := fixture(5, 96, 4)
		return runOneRound(t, ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	}
	a, b := run(), run()
	if a.MovedLoad != b.MovedLoad || len(a.Assignments) != len(b.Assignments) ||
		a.TimeVSAComplete != b.TimeVSAComplete || a.TimeVSTComplete != b.TimeVSTComplete {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Result, b.Result)
	}
}

func TestPhaseTimesOrdered(t *testing.T) {
	ring, tree := fixture(6, 128, 4)
	res := runOneRound(t, ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	if !(res.TimeLBIAggregate > 0 &&
		res.TimeLBIAggregate <= res.TimeLBIDisseminate &&
		res.TimeLBIDisseminate <= res.TimeVSAComplete &&
		res.TimeVSAComplete <= res.TimeVSTComplete) {
		t.Fatalf("phase times out of order: %d %d %d %d",
			res.TimeLBIAggregate, res.TimeLBIDisseminate,
			res.TimeVSAComplete, res.TimeVSTComplete)
	}
}

func TestMessageAccounting(t *testing.T) {
	ring, tree := fixture(7, 96, 4)
	eng := ring.Engine()
	eng.ResetMessageStats()
	res := runOneRound(t, ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	for _, kind := range []string{MsgCollectDown, MsgReportUp, MsgDisperse, MsgVSADown, MsgVSAUp, MsgAssign, MsgTransfer} {
		if eng.MessageCount(kind) == 0 {
			t.Errorf("no %s messages", kind)
		}
	}
	// One collect down and one report up per tree edge.
	edges := int64(tree.NumNodes() - 1)
	if got := eng.MessageCount(MsgCollectDown); got != edges {
		t.Errorf("collect messages %d, want %d", got, edges)
	}
	if got := eng.MessageCount(MsgAssign); got < 2*int64(len(res.Assignments)) {
		t.Errorf("assign messages %d for %d assignments", got, len(res.Assignments))
	}
}

func TestCrashDuringLBIPhase(t *testing.T) {
	// Kill a batch of nodes immediately after the round starts: their
	// KT subtrees go silent, parents time out, and the round still
	// completes with partial data.
	ring, tree := fixture(8, 128, 4)
	eng := ring.Engine()
	r, err := NewRunner(ring, tree, Config{
		Core:         core.Config{Epsilon: 0.05},
		ChildTimeout: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out *Result
	var outErr error
	if err := r.StartRound(func(res *Result, err error) { out, outErr = res, err }); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(1, func() {
		alive := ring.AliveNodes()
		for i := 0; i < 16; i++ {
			// Never kill the root's host (a dead root fails the round
			// by deadline; tested separately).
			victim := alive[len(alive)-1-i]
			if victim == tree.Root().Host.Owner {
				continue
			}
			ring.RemoveNode(victim)
		}
	})
	eng.Run()
	if outErr != nil {
		t.Fatal(outErr)
	}
	if out == nil {
		t.Fatal("round did not complete despite timeouts")
	}
	if out.TimedOutChildren == 0 {
		t.Error("expected timed-out children after crashing 16 nodes")
	}
	// Partial data still yields a valid (if incomplete) balance pass.
	if !out.Global.Valid() {
		t.Error("global tuple should still be valid")
	}
	ring.CheckInvariants()
	// After repair, a fresh round completes cleanly.
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	res2 := runOneRound(t, ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	if res2.TimedOutChildren != 0 {
		t.Errorf("post-repair round still timing out: %d", res2.TimedOutChildren)
	}
	tree.CheckInvariants()
}

func TestCrashedTransferEndpointAborts(t *testing.T) {
	// Kill nodes midway through the round (after LBI, during VSA/VST):
	// transfers to/from dead endpoints abort, everything else lands.
	ring, tree := fixture(9, 128, 4)
	eng := ring.Engine()
	r, _ := NewRunner(ring, tree, Config{
		Core:         core.Config{Epsilon: 0.05},
		ChildTimeout: 500,
	})
	var out *Result
	r.StartRound(func(res *Result, err error) {
		if err != nil {
			t.Error(err)
		}
		out = res
	})
	// LBI up+down takes ~4*height; strike during the VSA/VST window.
	eng.Schedule(150, func() {
		alive := ring.AliveNodes()
		for i := 0; i < 24; i++ {
			victim := alive[len(alive)-1-i]
			if victim == tree.Root().Host.Owner {
				continue
			}
			ring.RemoveNode(victim)
		}
	})
	eng.Run()
	if out == nil {
		t.Fatal("round did not complete")
	}
	t.Logf("aborted=%d timedOut=%d assignments=%d heavyAfter=%d",
		out.AbortedTransfers, out.TimedOutChildren, len(out.Assignments), out.HeavyAfter)
	for _, a := range out.Assignments {
		if a.VS.Owner != a.To {
			t.Error("completed assignment whose VS is not at its destination")
		}
	}
	ring.CheckInvariants()
}

func TestRootDeathFailsRoundByDeadline(t *testing.T) {
	ring, tree := fixture(10, 64, 4)
	eng := ring.Engine()
	r, _ := NewRunner(ring, tree, Config{
		Core:         core.Config{Epsilon: 0.05},
		ChildTimeout: 100,
	})
	completed := false
	var roundErr error
	r.StartRound(func(res *Result, err error) {
		completed = true
		roundErr = err
	})
	eng.Schedule(1, func() {
		ring.RemoveNode(tree.Root().Host.Owner)
	})
	eng.Run()
	if !completed {
		t.Fatal("round never resolved")
	}
	if roundErr == nil {
		t.Fatal("expected a deadline error after root death")
	}
}

func TestOnlyOneActiveRound(t *testing.T) {
	ring, tree := fixture(11, 32, 3)
	r, _ := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	if err := r.StartRound(func(*Result, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.StartRound(func(*Result, error) {}); err == nil {
		t.Fatal("second concurrent round must be rejected")
	}
	ring.Engine().Run()
	// After completion a new round is allowed again.
	if err := r.StartRound(func(*Result, error) {}); err != nil {
		t.Fatalf("round after completion rejected: %v", err)
	}
	ring.Engine().Run()
}

func TestEmptyRingRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	tree, _ := ktree.New(ring, 2)
	r, _ := NewRunner(ring, tree, Config{})
	if err := r.StartRound(func(*Result, error) {}); err == nil {
		t.Fatal("empty ring must be rejected")
	}
}

func TestRepeatedRoundsConverge(t *testing.T) {
	ring, tree := fixture(12, 128, 5)
	r, _ := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}})
	var lastMoved float64
	for i := 0; i < 3; i++ {
		var out *Result
		if err := r.StartRound(func(res *Result, err error) {
			if err != nil {
				t.Fatal(err)
			}
			out = res
		}); err != nil {
			t.Fatal(err)
		}
		ring.Engine().Run()
		if i == 0 {
			lastMoved = out.MovedLoad
		} else if out.MovedLoad > lastMoved/4 {
			t.Errorf("round %d still moved %.0f (first: %.0f)", i, out.MovedLoad, lastMoved)
		}
	}
}

func TestAwareRoundWithPrefixRouting(t *testing.T) {
	// The proximity-aware round over a transit-stub underlay, once with
	// Chord finger routing and once with Pastry-style prefix routing:
	// identical balancing outcome, different lookup paths.
	build := func() (*chord.Ring, *ktree.Tree, core.Config) {
		g, err := topology.Generate(topology.Params{
			TransitDomains:        3,
			TransitNodesPerDomain: 2,
			StubsPerTransitNode:   3,
			StubDomainSizeMean:    30,
			TransitEdgeProb:       0.6,
			TransitDomainEdgeProb: 0.5,
			StubEdgeProb:          0.42,
			Seed:                  55,
		})
		if err != nil {
			t.Fatal(err)
		}
		lat := topology.NewDistancesMetric(g, topology.LatencyMetric)
		eng := sim.NewEngine(55)
		ring := chord.NewRing(eng, chord.Config{Latency: chord.TopologyLatency(lat)})
		profile := workload.GnutellaProfile()
		underlays := g.SampleStubNodes(eng.Rand(), 256)
		for i := 0; i < 256; i++ {
			ring.AddNode(underlays[i], profile.Sample(eng.Rand()), 5)
		}
		mu := 256.0 * 100
		model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
		for _, vs := range ring.VServers() {
			vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
		}
		tree, err := ktree.New(ring, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Build(); err != nil {
			t.Fatal(err)
		}
		lm, err := proximity.ChooseSpread(g, lat, rand.New(rand.NewSource(55)), proximity.DefaultLandmarkCount)
		if err != nil {
			t.Fatal(err)
		}
		mapper, err := proximity.NewMapper(lm, proximity.DefaultBitsPerDimension)
		if err != nil {
			t.Fatal(err)
		}
		return ring, tree, core.Config{Mode: core.ProximityAware, Epsilon: 0.05, Mapper: mapper}
	}
	results := map[bool]*Result{}
	for _, prefix := range []bool{false, true} {
		ring, tree, coreCfg := build()
		r, err := NewRunner(ring, tree, Config{Core: coreCfg, PrefixRouting: prefix})
		if err != nil {
			t.Fatal(err)
		}
		var out *Result
		if err := r.StartRound(func(res *Result, err error) {
			if err != nil {
				t.Fatal(err)
			}
			out = res
		}); err != nil {
			t.Fatal(err)
		}
		ring.Engine().Run()
		results[prefix] = out
		if prefix && ring.Engine().MessageCount(chord.MsgPrefixHop) == 0 {
			t.Error("prefix routing produced no prefix hops")
		}
		if !prefix && ring.Engine().MessageCount(chord.MsgPrefixHop) != 0 {
			t.Error("finger routing produced prefix hops")
		}
	}
	a, b := results[false], results[true]
	if a.HeavyAfter != 0 || b.HeavyAfter != 0 {
		t.Errorf("rounds left heavy nodes: %d / %d", a.HeavyAfter, b.HeavyAfter)
	}
	if a.Global != b.Global || a.HeavyBefore != b.HeavyBefore {
		t.Error("routing scheme changed classification — it must not")
	}
}

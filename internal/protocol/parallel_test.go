package protocol

import (
	"fmt"
	"sort"
	"testing"

	"p2plb/internal/core"
	"p2plb/internal/faults"
)

// assignmentKeys renders a result's transfer set order-insensitively:
// same-instant commits may fold in a different order under parallel
// subtree execution (sequence numbers are per-engine), so the set —
// not the slice order — is the invariant.
func assignmentKeys(res *Result) []string {
	keys := make([]string, len(res.Assignments))
	for i, a := range res.Assignments {
		keys[i] = fmt.Sprintf("%v:%d->%d:%.17g:%d:%d", a.VS.ID, a.From.Index, a.To.Index, a.Load, a.Hops, a.AssignedAt)
	}
	sort.Strings(keys)
	return keys
}

// TestParallelSubtreesEquivalence pins the parallel stepper's
// contract: a round with ParallelSubtrees produces the same global
// tuple, the same census, the same per-kind message tallies and the
// same transfer set as the sequential round on an identical fixture.
func TestParallelSubtreesEquivalence(t *testing.T) {
	// Threshold 0 (the default, 30) exercises rendezvous pairing deep
	// inside the worker subtrees — the deferred-replay path; -1 defers
	// all pairing to the root. "mode" below is the threshold.
	for _, mode := range []int{0, -1} {
		cfgCore := core.Config{Epsilon: 0.05, RendezvousThreshold: mode}

		ringS, treeS := fixture(7, 512, 5)
		seq := runOneRound(t, ringS, treeS, Config{Core: cfgCore})

		ringP, treeP := fixture(7, 512, 5)
		par := runOneRound(t, ringP, treeP, Config{Core: cfgCore, ParallelSubtrees: true})

		if seq.Global != par.Global {
			t.Fatalf("threshold %d: global diverged: sequential %+v parallel %+v", mode, seq.Global, par.Global)
		}
		if seq.HeavyBefore != par.HeavyBefore || seq.LightBefore != par.LightBefore ||
			seq.HeavyAfter != par.HeavyAfter || seq.NodesClassified != par.NodesClassified {
			t.Fatalf("mode %v: census diverged: sequential %+v parallel %+v", mode, seq, par)
		}
		if seq.MovedLoad != par.MovedLoad || seq.UnassignedOffers != par.UnassignedOffers {
			t.Fatalf("mode %v: moved=%v/%v unassigned=%d/%d", mode,
				seq.MovedLoad, par.MovedLoad, seq.UnassignedOffers, par.UnassignedOffers)
		}
		sk, pk := assignmentKeys(seq), assignmentKeys(par)
		if len(sk) != len(pk) {
			t.Fatalf("mode %v: %d vs %d transfers", mode, len(sk), len(pk))
		}
		for i := range sk {
			if sk[i] != pk[i] {
				t.Fatalf("mode %v: transfer sets diverge at %d:\n  sequential %s\n  parallel   %s", mode, i, sk[i], pk[i])
			}
		}
		for _, kind := range ringS.Engine().MessageKinds() {
			if c, p := ringS.Engine().MessageCount(kind), ringP.Engine().MessageCount(kind); c != p {
				t.Errorf("mode %v: %s count %d (sequential) vs %d (parallel)", mode, kind, c, p)
			}
			if c, p := ringS.Engine().MessageCost(kind), ringP.Engine().MessageCost(kind); c != p {
				t.Errorf("mode %v: %s cost %d (sequential) vs %d (parallel)", mode, kind, c, p)
			}
		}
		if seq.TimedOutChildren != 0 || par.TimedOutChildren != 0 || seq.Retries != 0 || par.Retries != 0 {
			t.Fatalf("mode %v: lossless round saw timeouts/retries", mode)
		}
		ringP.CheckInvariants()
		treeP.CheckInvariants()
	}
}

// TestParallelSubtreesDeterministic: two parallel runs on identical
// fixtures are identical in every observable, including assignment
// ORDER — goroutine scheduling must not leak into outcomes.
func TestParallelSubtreesDeterministic(t *testing.T) {
	run := func() *Result {
		ring, tree := fixture(11, 384, 5)
		return runOneRound(t, ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ParallelSubtrees: true})
	}
	a, b := run(), run()
	if a.Global != b.Global || a.MovedLoad != b.MovedLoad || len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("parallel runs diverged: %+v vs %+v", a.Global, b.Global)
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.VS.ID != y.VS.ID || x.From.Index != y.From.Index || x.To.Index != y.To.Index || x.AssignedAt != y.AssignedAt {
			t.Fatalf("assignment %d diverged across identical parallel runs", i)
		}
	}
}

// TestParallelSubtreesRejectsFaultFilter: the conservative lookahead
// assumes subtree isolation, which a fault filter's shared state
// breaks — the combination must be refused up front.
func TestParallelSubtreesRejectsFaultFilter(t *testing.T) {
	ring, tree := fixture(13, 64, 5)
	eng := ring.Engine()
	in, err := faults.New(1, faults.Plan{Drop: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(ring); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ring, tree, Config{Core: core.Config{Epsilon: 0.05}, ParallelSubtrees: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.StartRound(func(*Result, error) {}); err == nil {
		t.Fatal("StartRound accepted ParallelSubtrees with a fault filter installed")
	}
	in.Detach()
	if err := r.StartRound(func(*Result, error) {}); err != nil {
		t.Fatalf("filter removed, round still refused: %v", err)
	}
	eng.Run()
}

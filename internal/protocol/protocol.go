// Package protocol executes the load-balancing scheme as explicit
// messages on the discrete-event engine — the fully distributed
// counterpart of core.Balancer's closed-form round.
//
// The per-node protocol logic itself — LBI epoch merging, the
// classification roster, VSA rendezvous pairing, the two-phase VST
// handoff — lives in internal/lbnode as pure state machines shared with
// the concurrent executor (internal/livenet). This package is the
// deterministic-sim driver for those machines: it owns everything the
// machines deliberately do not — delivery through sim.Engine (so a
// fault plan can interfere), per-child epoch timers, sequence-numbered
// acks with retransmission, and the per-round scratch recycling. LBI
// collection is a pull converge-cast with per-child timeouts, the
// global tuple is disseminated hop by hop, proximity-aware
// advertisements are published through routed Chord lookups, the VSA
// converge-cast carries the actual lists, rendezvous points emit pair
// notifications as messages, and transfers occupy simulated time.
// Because every step is an event, nodes may crash *during* a round:
// dead subtrees simply stop replying, parents proceed after a timeout
// with partial data, and the next round (after tree repair) picks up
// the remainder — the fault-tolerance behaviour §3.1-3.4 argue for and
// defer to future work to evaluate.
//
// All three executions share the classification and pairing rules
// through lbnode and core's exported primitives, so on a static ring
// they produce equivalent balancing outcomes.
//
// Every message is sent through sim.Engine.Deliver, so a fault plan
// (internal/faults) can drop, duplicate or delay it. The flows that
// must survive that are hardened: converge-cast replies, dissemination
// copies and pairing notifications carry sequence-numbered acks with
// bounded, exponentially backed-off retransmission and receiver-side
// dedup (exactly-once handler execution), and the virtual-server
// transfer is a two-phase prepare/commit handoff whose commit applies
// ring.Transfer exactly once — a VS is never lost and never
// double-hosted no matter where a drop, duplicate or crash lands
// (chord.Ring.CheckConservation is the executable statement of that
// guarantee). The per-level epoch timeouts remain the backstop for what
// retransmission cannot fix: dead or partitioned subtrees.
package protocol

import (
	"fmt"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/lbnode"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// Message kinds counted on the engine.
const (
	MsgCollectDown = "protocol.lbi-collect"  // parent → child LBI pull
	MsgReportUp    = "protocol.lbi-report"   // child → parent LBI reply
	MsgDisperse    = "protocol.lbi-disperse" // parent → child global tuple
	MsgPublish     = "protocol.vsa-publish"  // final hop of a routed VSA publication
	MsgVSADown     = "protocol.vsa-collect"  // parent → child VSA pull
	MsgVSAUp       = "protocol.vsa-report"   // child → parent VSA reply
	MsgAssign      = "protocol.vsa-assign"   // rendezvous → endpoints
	MsgPrepare     = "protocol.vst-prepare"  // heavy → light handoff reservation
	MsgTransfer    = "protocol.vst-transfer" // the virtual server movement (commit)
)

// MsgAckSuffix is appended to a reliable message's kind for its
// acknowledgement (e.g. "protocol.lbi-report.ack").
const MsgAckSuffix = ".ack"

// Config parameterizes a Runner.
type Config struct {
	// Core carries the balancing semantics (mode, epsilon, threshold,
	// mapper, subset strategy, transfer-cost metric).
	Core core.Config
	// ChildTimeout is the per-level epoch slack: a KT node at depth d
	// waits ChildTimeout·(height−d+1) for its children's replies before
	// proceeding with partial data (crashed subtrees never reply).
	// Scaling with remaining subtree height is essential — with a flat
	// window every ancestor would give up just before its child's
	// partial reply arrived, cascading data loss to the root. The value
	// must exceed the worst one-hop reply latency; 0 means a generous
	// default of 5000 time units per level. It only affects rounds in
	// which something actually failed.
	ChildTimeout sim.Time
	// PrefixRouting publishes proximity-aware advertisements with
	// Pastry-style prefix routing instead of Chord finger routing —
	// the §4.3 claim that the scheme adapts to other DHTs. It changes
	// only lookup paths, never outcomes.
	PrefixRouting bool
	// MaxRetries bounds how often a reliable message (converge-cast
	// replies, dissemination, pairing notifications, the two-phase
	// handoff) is retransmitted when its ack does not arrive. The
	// retransmission timer starts at one round trip plus slack and
	// doubles per attempt (exponential backoff). 0 means the default of
	// 5; lossless runs never retransmit, so the knob only matters under
	// a fault plan.
	MaxRetries int
}

// defaultChildTimeout is the per-level slack used when Config leaves
// ChildTimeout zero.
const defaultChildTimeout = 5000

// defaultMaxRetries is the retransmission bound used when Config leaves
// MaxRetries zero. Five doublings from one round trip tolerate ~30%
// loss with high probability without stretching timed-out epochs.
const defaultMaxRetries = 5

// Runner executes rounds over a ring and its tree.
type Runner struct {
	ring *chord.Ring
	tree *ktree.Tree
	cfg  Config
	eng  *sim.Engine

	roundActive bool
	scratch     *roundScratch
}

// roundScratch holds the per-round maps (and the report slices inside
// lbiInbox) that steady-state drivers — the daemon, churn sweeps —
// would otherwise reallocate every round. A round hands its scratch
// back only when it finished clean: after a timeout or an aborted
// transfer, stale epoch events may still read the maps (and a late VSA
// reply can even mutate its PairList), so such rounds drop the scratch
// instead of recycling it.
type roundScratch struct {
	lbiInbox map[*ktree.Node][]core.LBI
	states   map[*chord.Node]*core.NodeState
	vsaInbox map[*ktree.Node]*core.PairList
	leafOfVS map[*chord.VServer]*ktree.Node
}

// takeScratch returns a cleared scratch for the next round, reusing the
// previous round's maps when available.
func (r *Runner) takeScratch() *roundScratch {
	sc := r.scratch
	r.scratch = nil
	if sc == nil {
		return &roundScratch{
			lbiInbox: make(map[*ktree.Node][]core.LBI),
			states:   make(map[*chord.Node]*core.NodeState),
			vsaInbox: make(map[*ktree.Node]*core.PairList),
			leafOfVS: make(map[*chord.VServer]*ktree.Node),
		}
	}
	// Tree repair retires KT nodes between rounds; once dead keys
	// clearly dominate, a fresh map beats dragging their buckets along.
	if len(sc.lbiInbox) > 2*r.tree.NumNodes()+16 {
		sc.lbiInbox = make(map[*ktree.Node][]core.LBI)
	} else {
		for k, v := range sc.lbiInbox {
			sc.lbiInbox[k] = v[:0]
		}
	}
	clear(sc.states)
	clear(sc.vsaInbox)
	clear(sc.leafOfVS)
	return sc
}

// NewRunner returns a Runner. The tree must belong to the ring.
func NewRunner(ring *chord.Ring, tree *ktree.Tree, cfg Config) (*Runner, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if tree.Ring() != ring {
		return nil, fmt.Errorf("protocol: tree is built over a different ring")
	}
	if cfg.ChildTimeout < 0 {
		return nil, fmt.Errorf("protocol: negative child timeout")
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("protocol: negative retry bound")
	}
	return &Runner{ring: ring, tree: tree, cfg: cfg, eng: ring.Engine()}, nil
}

// Result extends core.Result with the protocol-level evidence.
type Result struct {
	core.Result
	// TimedOutChildren counts child epochs a parent gave up waiting
	// for (dead or unreachable subtrees).
	TimedOutChildren int
	// AbortedTransfers counts pairings whose endpoint died before the
	// transfer completed, or whose prepare/commit phase exhausted its
	// retries.
	AbortedTransfers int
	// NodesClassified counts nodes that received the global tuple.
	NodesClassified int
	// Retries counts retransmissions of reliable messages (zero on a
	// lossless network).
	Retries int
}

// round carries one round's mutable state.
type round struct {
	r       *Runner
	timeout sim.Time
	start   sim.Time

	lbiInbox map[*ktree.Node][]core.LBI
	global   core.LBI

	roster     *lbnode.Roster // dissemination endpoint state (over scratch's states map)
	vsaInbox   map[*ktree.Node]*core.PairList
	leafOfVS   map[*chord.VServer]*ktree.Node
	publishing int // outstanding routed publications

	// Reliable-delivery state. seen is the receiver-side dedup set: a
	// sequence number enters it when its message is first accepted, so
	// duplicated or retransmitted copies are idempotent. It is freshly
	// allocated every round (never recycled through roundScratch) because
	// a late retransmit may arrive after the round closed.
	nextSeq    uint64
	seen       map[uint64]bool
	maxRetries int

	outstandingTransfers int
	vsaDone              bool
	finished             bool

	res    *Result
	finish func(*Result, error)
}

// done completes the round exactly once.
func (rd *round) done(res *Result, err error) {
	if rd.finished {
		return
	}
	rd.finished = true
	rd.finish(res, err)
}

// StartRound begins one asynchronous load-balancing round; done fires
// on the engine when the round (including all transfers) completes.
// Only one round may be active at a time.
func (r *Runner) StartRound(done func(*Result, error)) error {
	if r.roundActive {
		return fmt.Errorf("protocol: round already active")
	}
	if r.ring.NumVServers() == 0 {
		return fmt.Errorf("protocol: ring has no virtual servers")
	}
	if r.tree.Root() == nil {
		if err := r.tree.Build(); err != nil {
			return err
		}
	}
	r.roundActive = true
	timeout := r.cfg.ChildTimeout
	if timeout == 0 {
		timeout = defaultChildTimeout
	}
	retries := r.cfg.MaxRetries
	if retries == 0 {
		retries = defaultMaxRetries
	}
	sc := r.takeScratch()
	rd := &round{
		r:          r,
		timeout:    timeout,
		start:      r.eng.Now(),
		lbiInbox:   sc.lbiInbox,
		roster:     lbnode.NewRoster(sc.states),
		vsaInbox:   sc.vsaInbox,
		leafOfVS:   sc.leafOfVS,
		seen:       make(map[uint64]bool),
		maxRetries: retries,
		res: &Result{Result: core.Result{
			Mode:        r.cfg.Core.Mode,
			MovedByHops: &stats.WeightedHistogram{},
			TreeHeight:  r.tree.Height(),
		}},
		finish: func(res *Result, err error) {
			r.roundActive = false
			// Recycle the scratch only after a perfectly clean round:
			// timeouts, aborts and retransmissions all mean stale epoch
			// events or late copies may still reference the maps.
			if err == nil && res.TimedOutChildren == 0 && res.AbortedTransfers == 0 && res.Retries == 0 {
				r.scratch = sc
			}
			r.recordRound(res, err)
			done(res, err)
		},
	}
	// Hard deadline: if the root itself dies mid-round the epoch can
	// never complete; fail the round so the caller can repair and retry.
	r.eng.Schedule(8*rd.epochWindow(r.tree.Root()), func() {
		rd.done(nil, fmt.Errorf("protocol: round deadline exceeded (root unreachable?)"))
	})
	rd.depositLBIReports()
	rd.collectLBI(r.tree.Root(), func(global core.LBI) {
		if !global.Valid() {
			rd.done(nil, fmt.Errorf("protocol: no node reported LBI"))
			return
		}
		rd.global = global
		rd.res.Global = global
		rd.res.TimeLBIAggregate = r.eng.Now() - rd.start
		rd.disseminate(r.tree.Root())
		// Dissemination completion is tracked per delivery; the VSA
		// epoch starts once all deliveries and publications are done.
	})
	return nil
}

// recordRound publishes one round's outcome to the engine's metrics
// registry (no-op without one): measured per-phase durations in virtual
// latency units plus the failure evidence a message-level round can
// produce (timed-out child epochs, aborted transfers).
func (r *Runner) recordRound(res *Result, err error) {
	reg := r.eng.Metrics()
	if reg == nil {
		return
	}
	reg.Counter("protocol.rounds").Inc()
	if err != nil {
		reg.Counter("protocol.round_errors").Inc()
		return
	}
	reg.Histogram("protocol.phase.lbi_aggregate").Observe(int64(res.TimeLBIAggregate))
	reg.Histogram("protocol.phase.lbi_disseminate").Observe(int64(res.TimeLBIDisseminate - res.TimeLBIAggregate))
	if res.TimePublish > 0 {
		reg.Histogram("protocol.phase.publish").Observe(int64(res.TimePublish - res.TimeLBIDisseminate))
	}
	reg.Histogram("protocol.phase.vsa").Observe(int64(res.TimeVSAComplete))
	reg.Histogram("protocol.phase.vst").Observe(int64(res.TimeVSTComplete))
	reg.Counter("protocol.timeouts").Add(int64(res.TimedOutChildren))
	reg.Counter("protocol.aborted_transfers").Add(int64(res.AbortedTransfers))
	reg.Counter("protocol.retries").Add(int64(res.Retries))
	reg.Counter("protocol.pairs.assigned").Add(int64(len(res.Assignments)))
	reg.Counter("protocol.pairs.unassigned").Add(int64(res.UnassignedOffers))
	reg.Float("protocol.moved_load").Add(res.MovedLoad)
}

// alive reports whether the KT node is currently operational (its
// hosting virtual server's owner is alive). Crashed hosts silently drop
// epoch messages; Repair replants them between rounds.
func (rd *round) alive(n *ktree.Node) bool {
	return n.Host.Owner.Alive
}

// epochWindow returns how long the KT node n waits for its children's
// epoch replies: the per-level slack times the remaining subtree height,
// so a parent's window always outlasts its children's.
func (rd *round) epochWindow(n *ktree.Node) sim.Time {
	levels := rd.r.tree.Height() - n.Depth + 1
	if levels < 1 {
		levels = 1
	}
	return rd.timeout * sim.Time(levels)
}

// hostIdx returns the physical-node index hosting a KT node, the
// endpoint identity the fault layer partitions on.
func hostIdx(n *ktree.Node) int { return n.Host.Owner.Index }

// reliable delivers kind with at-least-once retransmission and
// receiver-side dedup — together, exactly-once handler execution:
//
//   - each copy that arrives offers the message to handle; the first
//     accepted copy marks the sequence number seen, so duplicates and
//     retransmits only re-ack. handle returning false models a dead or
//     no-longer-valid receiver: no dedup mark, no ack — silence.
//   - every accepted arrival acks back to the sender; the first ack
//     settles the exchange.
//   - the sender retransmits when no ack arrives within the timer —
//     one round trip plus slack, doubling per attempt — up to the
//     round's retry bound, then settles failed.
//
// settle(ok) runs exactly once per call (ok: an ack arrived; !ok:
// retries exhausted). A settled failure does NOT imply the handler
// never ran — the data may have arrived with every ack lost — so
// side effects that must not double (the VST commit) live in the
// handler behind the dedup, and failure paths only release resources.
func (rd *round) reliable(kind string, src, dst int, cost sim.Time, handle func() bool, settle func(ok bool)) {
	eng := rd.r.eng
	seq := rd.nextSeq
	rd.nextSeq++
	settled := false
	resolve := func(ok bool) {
		if settled {
			return
		}
		settled = true
		if settle != nil {
			settle(ok)
		}
	}
	var send func(attemptsLeft int, rto sim.Time)
	send = func(attemptsLeft int, rto sim.Time) {
		if settled || rd.finished {
			return
		}
		eng.Deliver(kind, src, dst, cost, func() {
			if rd.finished {
				return
			}
			if !rd.seen[seq] {
				if handle != nil && !handle() {
					return
				}
				rd.seen[seq] = true
			}
			eng.Deliver(kind+MsgAckSuffix, dst, src, cost, func() { resolve(true) })
		})
		eng.Schedule(rto, func() {
			if settled || rd.finished {
				return
			}
			if attemptsLeft <= 1 {
				resolve(false)
				return
			}
			rd.res.Retries++
			send(attemptsLeft-1, 2*rto)
		})
	}
	send(rd.maxRetries+1, 2*cost+2)
}

// leafFor returns the single leaf a virtual server reports through this
// round, or nil for a VS the tree does not know yet: a virtual server
// that joined since the last repair (a restarted node rejoining
// mid-round) has no leaves until Repair plants them, so its reports
// simply sit out the round — the soft-state behaviour, not an error.
func (rd *round) leafFor(vs *chord.VServer) *ktree.Node {
	if leaf, ok := rd.leafOfVS[vs]; ok {
		return leaf
	}
	var leaf *ktree.Node
	if leaves := rd.r.tree.LeavesOf(vs); len(leaves) > 0 {
		leaf = leaves[rd.r.eng.Rand().Intn(len(leaves))]
	}
	rd.leafOfVS[vs] = leaf
	return leaf
}

// depositLBIReports places each alive node's LBI report at the leaf of
// its randomly chosen virtual server (both local interactions).
func (rd *round) depositLBIReports() {
	eng := rd.r.eng
	for _, n := range rd.r.ring.Nodes() {
		if !n.Alive {
			continue
		}
		vs := n.RandomVS(eng.Rand())
		if vs == nil {
			all := rd.r.ring.VServers()
			vs = all[eng.Rand().Intn(len(all))]
		}
		leaf := rd.leafFor(vs)
		if leaf == nil {
			continue // fresh joiner: no leaf until the next repair
		}
		rd.lbiInbox[leaf] = append(rd.lbiInbox[leaf], core.NodeLBI(n))
	}
}

// collectLBI pulls <L, C, Lmin> from n's subtree, driving one
// lbnode.LBICollect epoch per node: leaves answer from their inbox;
// internal nodes query children, merge replies through the machine, and
// give up on silent children after the timeout.
func (rd *round) collectLBI(n *ktree.Node, cb func(core.LBI)) {
	if !rd.alive(n) {
		return // a dead KT node never replies
	}
	col := lbnode.NewLBICollect(rd.lbiInbox[n], len(n.Children))
	if col.Done() {
		cb(col.Aggregate())
		return
	}
	for _, c := range n.Children {
		c := c
		edge := rd.r.tree.EdgeLatency(c)
		// Both directions are acked and retransmitted: a lost pull would
		// silence the child's whole subtree, compounding per level, so
		// the epoch timeout is reserved for genuinely dead subtrees.
		// The reply merges exactly once (receiver dedup).
		rd.reliable(MsgCollectDown, hostIdx(n), hostIdx(c), edge, func() bool {
			rd.collectLBI(c, func(sub core.LBI) {
				rd.reliable(MsgReportUp, hostIdx(c), hostIdx(n), edge, func() bool {
					// A reply after the epoch closed is absorbed by the
					// machine — still acked so the child stops resending.
					if col.ChildReply(sub) {
						cb(col.Aggregate())
					}
					return true
				}, nil)
			})
			return true
		}, nil)
	}
	rd.r.eng.Schedule(rd.epochWindow(n), func() {
		if timedOut, expired := col.Expire(); expired {
			rd.res.TimedOutChildren += timedOut
			cb(col.Aggregate())
		}
	})
}

// disseminate pushes the global tuple down the tree; each leaf delivery
// classifies its host's owner node (once) and triggers publication.
// Downward copies are acked and retransmitted: losing one would
// silently leave a whole subtree unclassified for the round, a much
// worse failure than the extra ack traffic. The publishing counter is
// settled on the sender side — exactly once per edge, whether the copy
// landed (ack) or the retries ran dry — so the VSA epoch always starts.
func (rd *round) disseminate(n *ktree.Node) {
	rd.publishing++ // guards VSA start until this subtree finishes
	var walk func(n *ktree.Node)
	walk = func(n *ktree.Node) {
		if !rd.alive(n) {
			return
		}
		if n.IsLeaf() {
			rd.classifyAndPublish(n.Host.Owner)
			return
		}
		for _, c := range n.Children {
			c := c
			edge := rd.r.tree.EdgeLatency(c)
			rd.publishing++
			rd.reliable(MsgDisperse, hostIdx(n), hostIdx(c), edge,
				func() bool { walk(c); return true },
				func(bool) { rd.publishDone() })
		}
	}
	walk(n)
	rd.publishDone()
}

// classifyAndPublish runs classification on a node the first time the
// global tuple reaches it (the roster machine absorbs duplicates), and
// publishes its VSA information.
func (rd *round) classifyAndPublish(node *chord.Node) {
	st, ok := rd.roster.Classify(node, rd.global, rd.cfg().Epsilon, rd.cfg().Subset)
	if !ok {
		return
	}
	rd.res.NodesClassified++
	if t := rd.r.eng.Now() - rd.start; t > rd.res.TimeLBIDisseminate {
		rd.res.TimeLBIDisseminate = t
	}
	if st.Class == core.Neutral {
		return
	}
	eng := rd.r.eng
	switch rd.cfg().Mode {
	case core.ProximityIgnorant:
		vs := node.RandomVS(eng.Rand())
		if vs == nil {
			all := rd.r.ring.VServers()
			vs = all[eng.Rand().Intn(len(all))]
		}
		rd.deposit(vs, st, 0)
	case core.ProximityAware:
		key := rd.cfg().Mapper.Key(node.Underlay)
		group := uint64(key)
		if cm, ok := rd.cfg().Mapper.(core.CellMapper); ok {
			group = cm.Cell(node.Underlay)
		}
		// Routed publication: the advertisement travels through the
		// overlay to the key's owner.
		rd.publishing++
		lookup := rd.r.ring.Lookup
		if rd.r.cfg.PrefixRouting {
			lookup = rd.r.ring.PrefixLookup
		}
		lookup(node, key, func(res chord.LookupResult) {
			eng.CountMessage(MsgPublish, 1)
			rd.deposit(res.VS, st, group)
			if t := rd.r.eng.Now() - rd.start; t > rd.res.TimePublish {
				rd.res.TimePublish = t
			}
			rd.publishDone()
		})
	}
}

func (rd *round) cfg() core.Config { return rd.r.cfg.Core }

// deposit stores a node's VSA entries at the given virtual server's
// reporting leaf.
func (rd *round) deposit(vs *chord.VServer, st *core.NodeState, group uint64) {
	leaf := rd.leafFor(vs)
	if leaf == nil {
		return // fresh joiner: the advertisement waits for the next round
	}
	pl := rd.vsaInbox[leaf]
	if pl == nil {
		pl = &core.PairList{}
		rd.vsaInbox[leaf] = pl
	}
	lbnode.DepositVSA(pl, st, group)
}

// publishDone decrements the outstanding-publication counter; at zero,
// every advertisement has landed and the VSA epoch begins.
func (rd *round) publishDone() {
	rd.publishing--
	if rd.publishing > 0 {
		return
	}
	rd.startVSA()
}

// startVSA runs the VSA converge-cast from the root.
func (rd *round) startVSA() {
	rd.res.HeavyBefore, rd.res.LightBefore, rd.res.NeutralBefore = rd.roster.Census()

	rd.collectVSA(rd.r.tree.Root(), true, func(left *core.PairList) {
		rd.res.TimeVSAComplete = rd.r.eng.Now() - rd.start
		rd.res.UnassignedOffers = left.Offers()
		rd.res.UnassignedLoad = left.OfferLoad()
		rd.vsaDone = true
		rd.maybeFinish()
	})
}

// collectVSA is the bottom-up VSA sweep, one lbnode.VSACollect epoch
// per node: children reply with their unpaired lists; rendezvous points
// (threshold reached, or the root) pair and notify, and everything
// unpaired flows upward.
func (rd *round) collectVSA(n *ktree.Node, isRoot bool, cb func(*core.PairList)) {
	if !rd.alive(n) {
		return
	}
	col := lbnode.NewVSACollect(rd.vsaInbox[n], len(n.Children))
	finishNode := func() {
		for _, p := range col.Rendezvous(isRoot, rd.cfg().RendezvousThreshold, rd.global.Lmin) {
			rd.emitPair(n, p)
		}
		cb(col.Lists())
	}
	if col.Done() {
		finishNode()
		return
	}
	for _, c := range n.Children {
		c := c
		edge := rd.r.tree.EdgeLatency(c)
		rd.reliable(MsgVSADown, hostIdx(n), hostIdx(c), edge, func() bool {
			rd.collectVSA(c, false, func(sub *core.PairList) {
				rd.reliable(MsgVSAUp, hostIdx(c), hostIdx(n), edge, func() bool {
					if col.ChildReply(sub) {
						finishNode()
					}
					return true
				}, nil)
			})
			return true
		}, nil)
	}
	rd.r.eng.Schedule(rd.epochWindow(n), func() {
		if timedOut, expired := col.Expire(); expired {
			rd.res.TimedOutChildren += timedOut
			finishNode()
		}
	})
}

// emitPair sends the pairing to both endpoints and starts the two-phase
// handoff. The heavy endpoint's notification is reliable (it drives the
// transfer); the light endpoint's copy is informational — the prepare
// phase re-validates the receiver — so it rides an unreliable send.
func (rd *round) emitPair(rendezvous *ktree.Node, p core.Pair) {
	eng := rd.r.eng
	host := rendezvous.Host.Owner
	costFrom := rd.r.ring.Latency(host, p.From) + 1
	costTo := rd.r.ring.Latency(host, p.To) + 1
	rd.outstandingTransfers++
	h := &handoff{rd: rd, rendezvous: rendezvous, m: lbnode.NewHandoff(p), assignedAt: eng.Now() - rd.start}
	eng.Deliver(MsgAssign, host.Index, p.To.Index, costTo, func() {})
	rd.reliable(MsgAssign, host.Index, p.From.Index, costFrom,
		func() bool {
			// ack=false models a dead heavy endpoint: silent, no ack.
			ack, op := h.m.AssignReceived()
			h.apply(op)
			return ack
		},
		func(ok bool) {
			if !ok {
				h.apply(h.m.Fail())
			}
		})
}

// handoff drives one lbnode.Handoff machine — the two-phase
// virtual-server transfer for one pairing — over the reliable-delivery
// transport. The machine owns the phase logic (validate, reserve,
// exactly-once commit, abort); this wrapper owns delivery, retries and
// the round's accounting. Each handoff settles exactly once (PhaseDone
// or PhaseAborted), releasing the round's outstanding-transfer slot.
type handoff struct {
	rd         *round
	rendezvous *ktree.Node
	m          *lbnode.Handoff
	assignedAt sim.Time
	cost       sim.Time // heavy → light latency, fixed at prepare time
}

// apply performs the outgoing action a machine transition requested.
func (h *handoff) apply(op lbnode.HandoffOp) {
	switch op {
	case lbnode.OpPrepare:
		h.prepare()
	case lbnode.OpCommit:
		h.commit()
	case lbnode.OpAbort:
		h.rd.res.AbortedTransfers++
		h.rd.transferDone()
	}
}

// prepare sends the reservation heavy → light. Acceptance (the machine
// while the receiver is alive and the pairing unsettled) is the ack; a
// dead receiver is silent and the sender's retries drain into an abort.
func (h *handoff) prepare() {
	p := h.m.Pair
	h.cost = h.rd.r.ring.Latency(p.From, p.To) + 1
	h.rd.reliable(MsgPrepare, p.From.Index, p.To.Index, h.cost,
		func() bool { return h.m.PrepareReceived() },
		func(ok bool) {
			if !ok {
				h.apply(h.m.Fail())
				return
			}
			h.apply(h.m.PrepareAcked())
		})
}

// commit ships the VS once the reservation is acknowledged. The FIRST
// commit copy the machine accepts applies ring.Transfer — the dedup set
// plus the machine's exactly-once contract make duplicated or
// retransmitted commits idempotent, so the VS is moved exactly once and
// never double-hosted.
func (h *handoff) commit() {
	p := h.m.Pair
	h.rd.reliable(MsgTransfer, p.From.Index, p.To.Index, h.cost,
		func() bool {
			if !h.m.TransferReceived() {
				return false
			}
			h.complete()
			return true
		},
		func(ok bool) {
			if !ok {
				h.apply(h.m.Fail())
			}
		})
}

// complete applies the transfer at the receiver on the commit copy the
// machine accepted — the single point where ring state changes hands.
func (h *handoff) complete() {
	rd := h.rd
	p := h.m.Pair
	rd.r.ring.Transfer(p.VS, p.To)
	hops := rd.transferCost(p.From, p.To)
	rd.res.Assignments = append(rd.res.Assignments, core.Assignment{
		VS: p.VS, From: p.From, To: p.To, Load: p.Load,
		Hops: hops, AssignedAt: h.assignedAt, Depth: h.rendezvous.Depth,
	})
	rd.res.MovedLoad += p.Load
	rd.res.MovedByHops.Add(hops, p.Load)
	if t := rd.r.eng.Now() - rd.start; t > rd.res.TimeVSTComplete {
		rd.res.TimeVSTComplete = t
	}
	rd.transferDone()
}

func (rd *round) transferCost(from, to *chord.Node) int {
	if tc := rd.cfg().TransferCost; tc != nil {
		return tc(from, to)
	}
	return int(rd.r.ring.Latency(from, to))
}

func (rd *round) transferDone() {
	rd.outstandingTransfers--
	rd.maybeFinish()
}

// maybeFinish closes the round when the VSA sweep and every transfer
// have completed: final census, lazy KT migration (tree repair), and
// the caller's completion callback.
func (rd *round) maybeFinish() {
	if !rd.vsaDone || rd.outstandingTransfers > 0 {
		return
	}
	rd.res.HeavyAfter, rd.res.LightAfter, rd.res.NeutralAfter =
		lbnode.Census(rd.r.ring.Nodes(), rd.global, rd.cfg().Epsilon, rd.cfg().Subset)
	if _, err := rd.r.tree.Repair(); err != nil {
		rd.done(nil, err)
		return
	}
	rd.done(rd.res, nil)
}

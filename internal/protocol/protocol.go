// Package protocol executes the load-balancing scheme as explicit
// messages on the discrete-event engine — the fully distributed
// counterpart of core.Balancer's closed-form round.
//
// The per-node protocol logic itself — LBI epoch merging, the
// classification roster, VSA rendezvous pairing, the two-phase VST
// handoff — lives in internal/lbnode as pure state machines shared with
// the concurrent executor (internal/livenet). This package is the
// deterministic-sim driver for those machines: it owns everything the
// machines deliberately do not — delivery through sim.Engine (so a
// fault plan can interfere), per-child epoch timers, sequence-numbered
// acks with retransmission, and the per-round scratch recycling. LBI
// collection is a pull converge-cast with per-child timeouts, the
// global tuple is disseminated hop by hop, proximity-aware
// advertisements are published through routed Chord lookups, the VSA
// converge-cast carries the actual lists, rendezvous points emit pair
// notifications as messages, and transfers occupy simulated time.
// Because every step is an event, nodes may crash *during* a round:
// dead subtrees simply stop replying, parents proceed after a timeout
// with partial data, and the next round (after tree repair) picks up
// the remainder — the fault-tolerance behaviour §3.1-3.4 argue for and
// defer to future work to evaluate.
//
// All three executions share the classification and pairing rules
// through lbnode and core's exported primitives, so on a static ring
// they produce equivalent balancing outcomes.
//
// Every message is sent through sim.Engine.Deliver, so a fault plan
// (internal/faults) can drop, duplicate or delay it. The flows that
// must survive that are hardened: converge-cast replies, dissemination
// copies and pairing notifications carry sequence-numbered acks with
// bounded, exponentially backed-off retransmission and receiver-side
// dedup (exactly-once handler execution), and the virtual-server
// transfer is a two-phase prepare/commit handoff whose commit applies
// ring.Transfer exactly once — a VS is never lost and never
// double-hosted no matter where a drop, duplicate or crash lands
// (chord.Ring.CheckConservation is the executable statement of that
// guarantee). The per-level epoch timeouts remain the backstop for what
// retransmission cannot fix: dead or partitioned subtrees.
package protocol

import (
	"fmt"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/lbnode"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// Message kinds counted on the engine.
const (
	MsgCollectDown = "protocol.lbi-collect"  // parent → child LBI pull
	MsgReportUp    = "protocol.lbi-report"   // child → parent LBI reply
	MsgDisperse    = "protocol.lbi-disperse" // parent → child global tuple
	MsgPublish     = "protocol.vsa-publish"  // final hop of a routed VSA publication
	MsgVSADown     = "protocol.vsa-collect"  // parent → child VSA pull
	MsgVSAUp       = "protocol.vsa-report"   // child → parent VSA reply
	MsgAssign      = "protocol.vsa-assign"   // rendezvous → endpoints
	MsgPrepare     = "protocol.vst-prepare"  // heavy → light handoff reservation
	MsgTransfer    = "protocol.vst-transfer" // the virtual server movement (commit)
)

// MsgAckSuffix is appended to a reliable message's kind for its
// acknowledgement (e.g. "protocol.lbi-report.ack").
const MsgAckSuffix = ".ack"

// Config parameterizes a Runner.
type Config struct {
	// Core carries the balancing semantics (mode, epsilon, threshold,
	// mapper, subset strategy, transfer-cost metric).
	Core core.Config
	// ChildTimeout is the per-level epoch slack: a KT node at depth d
	// waits ChildTimeout·(height−d+1) for its children's replies before
	// proceeding with partial data (crashed subtrees never reply).
	// Scaling with remaining subtree height is essential — with a flat
	// window every ancestor would give up just before its child's
	// partial reply arrived, cascading data loss to the root. The value
	// must exceed the worst one-hop reply latency; 0 means a generous
	// default of 5000 time units per level. It only affects rounds in
	// which something actually failed.
	ChildTimeout sim.Time
	// PrefixRouting publishes proximity-aware advertisements with
	// Pastry-style prefix routing instead of Chord finger routing —
	// the §4.3 claim that the scheme adapts to other DHTs. It changes
	// only lookup paths, never outcomes.
	PrefixRouting bool
	// MaxRetries bounds how often a reliable message (converge-cast
	// replies, dissemination, pairing notifications, the two-phase
	// handoff) is retransmitted when its ack does not arrive. The
	// retransmission timer starts at one round trip plus slack and
	// doubles per attempt (exponential backoff). 0 means the default of
	// 5; lossless runs never retransmit, so the knob only matters under
	// a fault plan.
	MaxRetries int
	// ParallelSubtrees runs the LBI and VSA converge-casts of the
	// root's child subtrees on parallel worker engines (one goroutine
	// and one derived-seed sim.Engine per root child), exploiting that
	// on a lossless network the subtrees exchange no messages until
	// the root merge. The lookahead is conservative: each worker
	// simulates its whole subtree phase in isolation and the root
	// replays the subtree's externally visible effects (the reply, the
	// rendezvous pairings, the message tallies) at their reported
	// virtual times, so results are equivalent to a sequential run —
	// see parallel.go for the exact contract. Incompatible with a
	// fault filter (a filter's state couples the subtrees);
	// StartRound rejects the combination.
	ParallelSubtrees bool
}

// defaultChildTimeout is the per-level slack used when Config leaves
// ChildTimeout zero.
const defaultChildTimeout = 5000

// defaultMaxRetries is the retransmission bound used when Config leaves
// MaxRetries zero. Five doublings from one round trip tolerate ~30%
// loss with high probability without stretching timed-out epochs.
const defaultMaxRetries = 5

// Runner executes rounds over a ring and its tree.
type Runner struct {
	ring *chord.Ring
	tree *ktree.Tree
	cfg  Config
	eng  *sim.Engine

	roundActive bool
	scratch     *roundScratch
}

// roundScratch holds the per-round maps (and the report slices inside
// lbiInbox) that steady-state drivers — the daemon, churn sweeps —
// would otherwise reallocate every round. A round hands its scratch
// back only when it finished clean: after a timeout or an aborted
// transfer, stale epoch events may still read the maps (and a late VSA
// reply can even mutate its PairList), so such rounds drop the scratch
// instead of recycling it.
type roundScratch struct {
	lbiInbox map[*ktree.Node][]core.LBI
	states   map[*chord.Node]*core.NodeState
	vsaInbox map[*ktree.Node]*core.PairList
	leafOfVS map[*chord.VServer]*ktree.Node
}

// takeScratch returns a cleared scratch for the next round, reusing the
// previous round's maps when available.
func (r *Runner) takeScratch() *roundScratch {
	sc := r.scratch
	r.scratch = nil
	if sc == nil {
		return &roundScratch{
			lbiInbox: make(map[*ktree.Node][]core.LBI),
			states:   make(map[*chord.Node]*core.NodeState),
			vsaInbox: make(map[*ktree.Node]*core.PairList),
			leafOfVS: make(map[*chord.VServer]*ktree.Node),
		}
	}
	// Tree repair retires KT nodes between rounds; once dead keys
	// clearly dominate, a fresh map beats dragging their buckets along.
	if len(sc.lbiInbox) > 2*r.tree.NumNodes()+16 {
		sc.lbiInbox = make(map[*ktree.Node][]core.LBI)
	} else {
		for k, v := range sc.lbiInbox {
			sc.lbiInbox[k] = v[:0]
		}
	}
	clear(sc.states)
	clear(sc.vsaInbox)
	clear(sc.leafOfVS)
	return sc
}

// NewRunner returns a Runner. The tree must belong to the ring.
func NewRunner(ring *chord.Ring, tree *ktree.Tree, cfg Config) (*Runner, error) {
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if tree.Ring() != ring {
		return nil, fmt.Errorf("protocol: tree is built over a different ring")
	}
	if cfg.ChildTimeout < 0 {
		return nil, fmt.Errorf("protocol: negative child timeout")
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("protocol: negative retry bound")
	}
	return &Runner{ring: ring, tree: tree, cfg: cfg, eng: ring.Engine()}, nil
}

// Result extends core.Result with the protocol-level evidence.
type Result struct {
	core.Result
	// TimedOutChildren counts child epochs a parent gave up waiting
	// for (dead or unreachable subtrees).
	TimedOutChildren int
	// AbortedTransfers counts pairings whose endpoint died before the
	// transfer completed, or whose prepare/commit phase exhausted its
	// retries.
	AbortedTransfers int
	// NodesClassified counts nodes that received the global tuple.
	NodesClassified int
	// Retries counts retransmissions of reliable messages (zero on a
	// lossless network).
	Retries int
}

// round carries one round's mutable state.
type round struct {
	r       *Runner
	timeout sim.Time
	start   sim.Time

	lbiInbox map[*ktree.Node][]core.LBI
	global   core.LBI
	place    *lbnode.Placement // canonical randomized placement, drawn before any event

	roster     *lbnode.Roster // dissemination endpoint state (over scratch's states map)
	vsaInbox   map[*ktree.Node]*core.PairList
	leafOfVS   map[*chord.VServer]*ktree.Node
	publishing int // outstanding routed publications

	// Reliable-delivery state. seen is the receiver-side dedup set: a
	// sequence number enters it when its message is first accepted, so
	// duplicated or retransmitted copies are idempotent. Sequence numbers
	// are allocated densely from zero per round, so the set is a growable
	// bitset rather than a map — at large scale it is touched once per
	// delivered copy. It starts fresh every round (never recycled through
	// roundScratch); late retransmits from a previous round are fenced by
	// their own round's finished flag, not by this set.
	nextSeq    uint64
	seen       seqSet
	maxRetries int
	exFree     []*exchange // settled exchanges recycled by reliable()

	deadline sim.Timer // round-failure backstop, canceled on completion

	outstandingTransfers int
	vsaDone              bool
	finished             bool

	// Chunked slabs for the tree-walk objects (lbiNode, lbiEdge, …):
	// the walks allocate one object per live tree node/edge per phase,
	// and a slab turns those into one heap allocation per slabChunk
	// objects. The backing arrays die with the round.
	lbiNodes  []lbiNode
	lbiEdges  []lbiEdge
	vsaNodes  []vsaNode
	vsaEdges  []vsaEdge
	dispEdges []dispEdge

	onLBIRoot func(core.LBI)

	// Non-nil only on a parallel subtree worker: emitPair records
	// instead of executing (see parallel.go).
	deferPairs *[]timedPair

	res    *Result
	finish func(*Result, error)
}

// slabChunk is how many walk objects one slab allocation holds.
const slabChunk = 256

// slabAlloc hands out the next zeroed object from a chunked slab,
// refilling it with a fresh backing array when empty.
func slabAlloc[T any](s *[]T) *T {
	if len(*s) == 0 {
		*s = make([]T, slabChunk)
	}
	p := &(*s)[0]
	*s = (*s)[1:]
	return p
}

// seqSet is a growable bitset over densely allocated sequence numbers.
type seqSet struct{ bits []uint64 }

//lbvet:hotpath
func (s *seqSet) has(seq uint64) bool {
	w := seq >> 6
	return w < uint64(len(s.bits)) && s.bits[w]&(1<<(seq&63)) != 0
}

func (s *seqSet) add(seq uint64) {
	w := seq >> 6
	for uint64(len(s.bits)) <= w {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (seq & 63)
}

// done completes the round exactly once.
func (rd *round) done(res *Result, err error) {
	if rd.finished {
		return
	}
	rd.finished = true
	rd.r.eng.Cancel(rd.deadline)
	rd.finish(res, err)
}

// StartRound begins one asynchronous load-balancing round; done fires
// on the engine when the round (including all transfers) completes.
// Only one round may be active at a time.
func (r *Runner) StartRound(done func(*Result, error)) error {
	if r.roundActive {
		return fmt.Errorf("protocol: round already active")
	}
	if r.ring.NumVServers() == 0 {
		return fmt.Errorf("protocol: ring has no virtual servers")
	}
	if r.tree.Root() == nil {
		if err := r.tree.Build(); err != nil {
			return err
		}
	}
	if r.cfg.ParallelSubtrees && r.eng.Filter() != nil {
		return fmt.Errorf("protocol: ParallelSubtrees is incompatible with a fault filter (filter state couples the subtrees)")
	}
	// Same contract as core.Balancer.RunRound: a configured LoadSource
	// snapshots its current view into vs.Load before the LBI sweep reads
	// it (the serving layer's observed request rates refresh here).
	if r.cfg.Core.Loads != nil {
		r.cfg.Core.Loads.Refresh(r.ring)
	}
	r.roundActive = true
	timeout := r.cfg.ChildTimeout
	if timeout == 0 {
		timeout = defaultChildTimeout
	}
	retries := r.cfg.MaxRetries
	if retries == 0 {
		retries = defaultMaxRetries
	}
	sc := r.takeScratch()
	rd := &round{
		r:          r,
		timeout:    timeout,
		start:      r.eng.Now(),
		lbiInbox:   sc.lbiInbox,
		roster:     lbnode.NewRoster(sc.states),
		vsaInbox:   sc.vsaInbox,
		leafOfVS:   sc.leafOfVS,
		maxRetries: retries,
		res: &Result{Result: core.Result{
			Mode:        r.cfg.Core.Mode,
			MovedByHops: &stats.WeightedHistogram{},
			TreeHeight:  r.tree.Height(),
		}},
		finish: func(res *Result, err error) {
			r.roundActive = false
			// Recycle the scratch only after a perfectly clean round:
			// timeouts, aborts and retransmissions all mean stale epoch
			// events or late copies may still reference the maps.
			if err == nil && res.TimedOutChildren == 0 && res.AbortedTransfers == 0 && res.Retries == 0 {
				r.scratch = sc
			}
			r.recordRound(res, err)
			done(res, err)
		},
	}
	// Hard deadline: if the root itself dies mid-round the epoch can
	// never complete; fail the round so the caller can repair and retry.
	// A completing round cancels it so the engine drains immediately.
	rd.deadline = r.eng.After(8*rd.epochWindow(r.tree.Root()), func() {
		rd.done(nil, fmt.Errorf("protocol: round deadline exceeded (root unreachable?)"))
	})
	// Draw the round's canonical placement before the first event: the
	// concurrent executor consumes the identical RNG sequence, so both
	// executors deposit identical per-leaf inboxes (see lbnode.PlaceRound).
	rd.place = lbnode.PlaceRound(r.ring, r.tree, r.eng.Rand(), sc.leafOfVS)
	rd.place.DepositReports(rd.lbiInbox)
	rd.collectLBI(r.tree.Root(), func(global core.LBI) {
		if !global.Valid() {
			rd.done(nil, fmt.Errorf("protocol: no node reported LBI"))
			return
		}
		rd.global = global
		rd.res.Global = global
		rd.res.TimeLBIAggregate = r.eng.Now() - rd.start
		rd.disseminate(r.tree.Root())
		// Dissemination completion is tracked per delivery; the VSA
		// epoch starts once all deliveries and publications are done.
	})
	return nil
}

// recordRound publishes one round's outcome to the engine's metrics
// registry (no-op without one): measured per-phase durations in virtual
// latency units plus the failure evidence a message-level round can
// produce (timed-out child epochs, aborted transfers).
func (r *Runner) recordRound(res *Result, err error) {
	reg := r.eng.Metrics()
	if reg == nil {
		return
	}
	reg.Counter("protocol.rounds").Inc()
	if err != nil {
		reg.Counter("protocol.round_errors").Inc()
		return
	}
	reg.Histogram("protocol.phase.lbi_aggregate").Observe(int64(res.TimeLBIAggregate))
	reg.Histogram("protocol.phase.lbi_disseminate").Observe(int64(res.TimeLBIDisseminate - res.TimeLBIAggregate))
	if res.TimePublish > 0 {
		reg.Histogram("protocol.phase.publish").Observe(int64(res.TimePublish - res.TimeLBIDisseminate))
	}
	reg.Histogram("protocol.phase.vsa").Observe(int64(res.TimeVSAComplete))
	reg.Histogram("protocol.phase.vst").Observe(int64(res.TimeVSTComplete))
	reg.Counter("protocol.timeouts").Add(int64(res.TimedOutChildren))
	reg.Counter("protocol.aborted_transfers").Add(int64(res.AbortedTransfers))
	reg.Counter("protocol.retries").Add(int64(res.Retries))
	reg.Counter("protocol.pairs.assigned").Add(int64(len(res.Assignments)))
	reg.Counter("protocol.pairs.unassigned").Add(int64(res.UnassignedOffers))
	reg.Float("protocol.moved_load").Add(res.MovedLoad)
}

// alive reports whether the KT node is currently operational (its
// hosting virtual server's owner is alive). Crashed hosts silently drop
// epoch messages; Repair replants them between rounds.
func (rd *round) alive(n *ktree.Node) bool {
	return n.Host.Owner.Alive
}

// epochWindow returns how long the KT node n waits for its children's
// epoch replies: the per-level slack times the remaining subtree height,
// so a parent's window always outlasts its children's.
func (rd *round) epochWindow(n *ktree.Node) sim.Time {
	levels := rd.r.tree.Height() - n.Depth + 1
	if levels < 1 {
		levels = 1
	}
	return rd.timeout * sim.Time(levels)
}

// hostIdx returns the physical-node index hosting a KT node, the
// endpoint identity the fault layer partitions on.
func hostIdx(n *ktree.Node) int { return n.Host.Owner.Index }

// rhandler is the callback pair of one reliable exchange, implemented
// on pooled per-edge walk objects so a reliable send costs no closure
// allocations. reliableEv delivers with at-least-once retransmission
// and receiver-side dedup — together, exactly-once handler execution:
//
//   - each copy that arrives offers the message to HandleMsg; the
//     first accepted copy marks the sequence number seen, so
//     duplicates and retransmits only re-ack. HandleMsg returning
//     false models a dead or no-longer-valid receiver: no dedup mark,
//     no ack — silence.
//   - every accepted arrival acks back to the sender; the first ack
//     settles the exchange.
//   - the sender retransmits when no ack arrives within the timer —
//     one round trip plus slack, doubling per attempt — up to the
//     round's retry bound, then settles failed.
//
// SettleMsg(ok) runs exactly once per send (ok: an ack arrived; !ok:
// retries exhausted). A settled failure does NOT imply the handler
// never ran — the data may have arrived with every ack lost — so
// side effects that must not double (the VST commit) live in the
// handler behind the dedup, and failure paths only release resources.
type rhandler interface {
	HandleMsg() bool
	SettleMsg(ok bool)
}

// reliableEv is reliable with an object callback pair.
//
//lbvet:hotpath
func (rd *round) reliableEv(kind string, src, dst int, cost sim.Time, h rhandler) {
	ex := rd.newExchange(kind, src, dst, cost)
	ex.h = h
	ex.send()
}

//lbvet:hotpath
func (rd *round) newExchange(kind string, src, dst int, cost sim.Time) *exchange {
	var ex *exchange
	if n := len(rd.exFree); n > 0 {
		ex = rd.exFree[n-1]
		rd.exFree[n-1] = nil
		rd.exFree = rd.exFree[:n-1]
		ex.kind, ex.ackKind = kind, ackKindOf(kind)
		ex.src, ex.dst, ex.cost = src, dst, cost
		ex.seq = rd.nextSeq
		ex.attemptsLeft = rd.maxRetries + 1
		ex.backoff = 2*cost + 2
		ex.settled = false
		ex.rto = sim.Timer{}
	} else {
		//lbvet:ignore hotalloc pool miss: one exchange object per peak-concurrency slot, recycled for the rest of the round
		ex = &exchange{
			rd: rd, kind: kind, ackKind: ackKindOf(kind),
			src: src, dst: dst, cost: cost,
			seq:          rd.nextSeq,
			attemptsLeft: rd.maxRetries + 1,
			backoff:      2*cost + 2,
		}
		// Wire the three embedded event adapters once per exchange
		// object: interior pointers into the exchange itself, reused
		// across retransmissions, duplicate arrivals and (through the
		// pool) later exchanges, so the steady-state cost is zero
		// allocations instead of a fresh closure per attempt — at 256k
		// VSs the per-attempt closures were the round's dominant
		// garbage.
		ex.arriveEv.ex = ex
		ex.ackEv.ex = ex
		ex.rtoEv.ex = ex
	}
	rd.nextSeq++
	return ex
}

// ackKindOf maps a reliable kind to its ack kind without concatenating
// at send time (constant folding keeps the switch allocation-free).
func ackKindOf(kind string) string {
	switch kind {
	case MsgCollectDown:
		return MsgCollectDown + MsgAckSuffix
	case MsgReportUp:
		return MsgReportUp + MsgAckSuffix
	case MsgDisperse:
		return MsgDisperse + MsgAckSuffix
	case MsgVSADown:
		return MsgVSADown + MsgAckSuffix
	case MsgVSAUp:
		return MsgVSAUp + MsgAckSuffix
	case MsgAssign:
		return MsgAssign + MsgAckSuffix
	case MsgPrepare:
		return MsgPrepare + MsgAckSuffix
	case MsgTransfer:
		return MsgTransfer + MsgAckSuffix
	}
	return kind + MsgAckSuffix
}

// exchange is one reliable message's in-flight state: the sender side
// (retransmission attempts, the cancelable rto timer, the settle
// outcome) and the receiver side (dedup by sequence number, the ack).
type exchange struct {
	rd           *round
	kind         string
	ackKind      string
	src, dst     int
	cost         sim.Time
	seq          uint64
	attemptsLeft int
	backoff      sim.Time
	settled      bool
	rto          sim.Timer
	h            rhandler // receiver handler + sender settle outcome

	arriveEv arriveEv
	ackEv    ackEv
	rtoEv    rtoEv
}

// arriveEv, ackEv and rtoEv adapt the exchange's three event entry
// points to sim.Eventer. They are embedded by value so scheduling one
// passes an interior pointer — no per-event closure, no per-exchange
// method-value allocations.
type arriveEv struct{ ex *exchange }

//lbvet:hotpath
func (a *arriveEv) RunEvent() { a.ex.arrive() }

type ackEv struct{ ex *exchange }

//lbvet:hotpath
func (a *ackEv) RunEvent() { a.ex.resolve(true) }

type rtoEv struct{ ex *exchange }

//lbvet:hotpath
func (r *rtoEv) RunEvent() { r.ex.onRTO() }

// resolve settles the exchange exactly once. The pending retransmission
// timer is revoked instead of firing into a dead check — on a lossless
// network no rto timer ever fires, which at scale was a third of a
// round's event volume.
func (ex *exchange) resolve(ok bool) {
	if ex.settled {
		return
	}
	ex.settled = true
	ex.rd.r.eng.Cancel(ex.rto)
	ex.h.SettleMsg(ok)
	// Without a fault filter the exchange is provably unreferenced once
	// it settles — every copy transmits exactly once and is consumed on
	// arrival before the rto window closes (backoff > cost), the queue
	// consumed the event that invoked this very callback before running
	// it, and Cancel released the rto slot — so it recycles into the
	// round's pool. With a filter, duplicate or delayed copies may still
	// hold the callbacks; those exchanges are left to the GC.
	if ex.rd.r.eng.Filter() == nil {
		ex.h = nil
		ex.rd.exFree = append(ex.rd.exFree, ex)
	}
}

// send transmits one copy and arms the retransmission timer. On a
// lossless network (no fault filter) the timer is not armed here at
// all: the single copy provably arrives, and the only outcome that
// needs a retransmission — the handler refusing the message — arms it
// from the refusal itself (see arrive). At scale the always-armed,
// always-canceled rto was roughly a quarter of all queue traffic.
func (ex *exchange) send() {
	if ex.settled || ex.rd.finished {
		return
	}
	eng := ex.rd.r.eng
	eng.DeliverEv(ex.kind, ex.src, ex.dst, ex.cost, &ex.arriveEv)
	if eng.Filter() != nil {
		ex.rto = eng.AfterEv(ex.backoff, &ex.rtoEv)
	}
}

// arrive runs at the receiver for every copy that lands: the first
// accepted copy executes the handler and enters the dedup set; every
// accepted arrival (re-)acks.
func (ex *exchange) arrive() {
	rd := ex.rd
	if rd.finished {
		return
	}
	if !rd.seen.has(ex.seq) {
		if !ex.h.HandleMsg() {
			// Refused: no dedup mark, no ack — the sender must time
			// out. Lossless sends skipped the eager rto (see send), so
			// arm it now for the instant the eager timer would have
			// fired: this copy left at now-cost, so the window closes
			// backoff-cost from now. The doubling ladder is unchanged —
			// onRTO retransmits at exactly the eager schedule's times.
			if ex.rto.Zero() && ex.rd.r.eng.Filter() == nil {
				ex.rto = ex.rd.r.eng.AfterEv(ex.backoff-ex.cost, &ex.rtoEv)
			}
			return
		}
		rd.seen.add(ex.seq)
	}
	rd.r.eng.DeliverEv(ex.ackKind, ex.dst, ex.src, ex.cost, &ex.ackEv)
}

// onRTO fires when no ack arrived within the backoff window:
// retransmit with a doubled window, or settle failed once the attempts
// are spent.
func (ex *exchange) onRTO() {
	if ex.settled || ex.rd.finished {
		return
	}
	if ex.attemptsLeft <= 1 {
		ex.resolve(false)
		return
	}
	ex.rd.res.Retries++
	ex.attemptsLeft--
	ex.backoff *= 2
	// This handle was just consumed by firing; clear it so a lossless
	// retransmission's refusal can arm a fresh one (see arrive).
	ex.rto = sim.Timer{}
	ex.send()
}

// leafFor returns the single leaf a virtual server reports through this
// round, or nil for a VS the tree does not know yet: a virtual server
// that joined since the last repair (a restarted node rejoining
// mid-round) has no leaves until Repair plants them, so its reports
// simply sit out the round — the soft-state behaviour, not an error.
// The cache is shared with the placement pre-pass, so lazy draws (the
// routed proximity-aware publication path, whose target VS is only
// known once the lookup lands) never contradict a placed report.
func (rd *round) leafFor(vs *chord.VServer) *ktree.Node {
	if leaf, ok := rd.leafOfVS[vs]; ok {
		return leaf
	}
	var leaf *ktree.Node
	if leaves := rd.r.tree.LeavesOf(vs); len(leaves) > 0 {
		leaf = leaves[rd.r.eng.Rand().Intn(len(leaves))]
	}
	rd.leafOfVS[vs] = leaf
	return leaf
}

// collectLBI pulls <L, C, Lmin> from n's subtree, driving one
// lbnode.LBICollect epoch per node: leaves answer from their inbox;
// internal nodes query children, merge replies through the machine, and
// give up on silent children after the timeout. cb receives the root
// aggregate; the walk itself runs on slab-pooled lbiNode/lbiEdge
// objects, one per live tree node and edge, so an epoch costs no
// per-message closures.
func (rd *round) collectLBI(n *ktree.Node, cb func(core.LBI)) {
	rd.onLBIRoot = cb
	if rd.r.cfg.ParallelSubtrees {
		rd.startLBIPar(n)
		return
	}
	rd.startLBI(n, nil)
}

// lbiNode drives one internal node's LBI epoch: the collect machine,
// the epoch timer, and the link to the parent edge the aggregate
// reports through (nil at the root).
type lbiNode struct {
	rd       *round
	n        *ktree.Node
	ni       int
	col      lbnode.LBICollect
	parent   *lbiEdge
	expire   sim.Timer
	expireEv lbiExpire
}

// lbiEdge is one parent→child link of the epoch: the target of the
// downward pull, the buffer for the child subtree's aggregate, and the
// two reliable-exchange handler roles (pull arriving at the child,
// report arriving back at the parent) as embedded adapters.
type lbiEdge struct {
	nd   *lbiNode // parent's machine
	c    *ktree.Node
	ci   int
	chi  int
	edge sim.Time
	sub  core.LBI
	down lbiDown
	up   lbiUp
}

// startLBI begins n's epoch; parent is the edge the subtree aggregate
// reports through, nil at the root. A leaf (or a childless machine)
// completes synchronously on the caller's stack — no walk objects.
//
//lbvet:hotpath
func (rd *round) startLBI(n *ktree.Node, parent *lbiEdge) {
	// One chase through Host.Owner serves the aliveness check and the
	// endpoint index; the parent's edge already resolved ours.
	owner := n.Host.Owner
	if !owner.Alive {
		return // a dead KT node never replies
	}
	ni := owner.Index
	if parent != nil {
		ni = parent.chi
	}
	col := lbnode.MakeLBICollect(rd.lbiInbox[n], len(n.Children))
	if col.Done() {
		rd.lbiComplete(parent, col.Aggregate())
		return
	}
	nd := slabAlloc(&rd.lbiNodes)
	nd.rd, nd.n, nd.ni, nd.col, nd.parent = rd, n, ni, col, parent
	nd.expireEv.nd = nd
	for ci, c := range n.Children {
		e := slabAlloc(&rd.lbiEdges)
		e.nd, e.c, e.ci, e.chi = nd, c, ci, hostIdx(c)
		e.edge = rd.r.tree.EdgeLatency(c)
		e.down.e, e.up.e = e, e
		// Both directions are acked and retransmitted: a lost pull would
		// silence the child's whole subtree, compounding per level, so
		// the epoch timeout is reserved for genuinely dead subtrees.
		// The reply merges exactly once (receiver dedup).
		rd.reliableEv(MsgCollectDown, ni, e.chi, e.edge, &e.down)
	}
	// The epoch timer is canceled the moment the last child replies —
	// on a healthy tree no epoch timer ever fires.
	nd.expire = rd.r.eng.AfterEv(rd.epochWindow(n), &nd.expireEv)
}

// lbiComplete routes a finished subtree's aggregate: up the parent
// edge, or into the round's continuation at the root.
//
//lbvet:hotpath
func (rd *round) lbiComplete(parent *lbiEdge, agg core.LBI) {
	if parent != nil {
		parent.sub = agg
		rd.reliableEv(MsgReportUp, parent.chi, parent.nd.ni, parent.edge, &parent.up)
		return
	}
	rd.onLBIRoot(agg)
}

type lbiDown struct{ e *lbiEdge }

// HandleMsg: the downward pull reached the child — start its epoch.
//
//lbvet:hotpath
func (d *lbiDown) HandleMsg() bool {
	e := d.e
	e.nd.rd.startLBI(e.c, e)
	return true
}

func (d *lbiDown) SettleMsg(bool) {}

type lbiUp struct{ e *lbiEdge }

// HandleMsg: the child subtree's aggregate reached the parent. A reply
// after the epoch closed is absorbed by the machine — still acked so
// the child stops resending. Replies are buffered under their child
// index, so the fold order (and the global's float bits) is the same
// no matter when each subtree answers.
//
//lbvet:hotpath
func (u *lbiUp) HandleMsg() bool {
	e := u.e
	nd := e.nd
	if nd.col.ChildReply(e.ci, e.sub) {
		nd.rd.r.eng.Cancel(nd.expire)
		nd.rd.lbiComplete(nd.parent, nd.col.Aggregate())
	}
	return true
}

func (u *lbiUp) SettleMsg(bool) {}

// lbiExpire fires the epoch timeout: give up on the silent children
// and report what arrived.
type lbiExpire struct{ nd *lbiNode }

func (x *lbiExpire) RunEvent() {
	nd := x.nd
	if timedOut, expired := nd.col.Expire(); expired {
		nd.rd.res.TimedOutChildren += timedOut
		nd.rd.lbiComplete(nd.parent, nd.col.Aggregate())
	}
}

// disseminate pushes the global tuple down the tree; each leaf delivery
// classifies its host's owner node (once) and triggers publication.
// Downward copies are acked and retransmitted: losing one would
// silently leave a whole subtree unclassified for the round, a much
// worse failure than the extra ack traffic. The publishing counter is
// settled on the sender side — exactly once per edge, whether the copy
// landed (ack) or the retries ran dry — so the VSA epoch always starts.
func (rd *round) disseminate(n *ktree.Node) {
	rd.publishing++ // guards VSA start until this subtree finishes
	rd.dispWalk(n)
	rd.publishDone()
}

// dispWalk delivers the global tuple to n and pushes it on to n's
// children over slab-pooled per-edge handlers.
//
//lbvet:hotpath
func (rd *round) dispWalk(n *ktree.Node) {
	owner := n.Host.Owner
	if !owner.Alive {
		return
	}
	if n.IsLeaf() {
		rd.classifyAndPublish(owner)
		return
	}
	ni := owner.Index
	for _, c := range n.Children {
		e := slabAlloc(&rd.dispEdges)
		e.rd, e.c = rd, c
		rd.publishing++
		rd.reliableEv(MsgDisperse, ni, hostIdx(c), rd.r.tree.EdgeLatency(c), e)
	}
}

// dispEdge is one downward dissemination hop: the arriving copy
// continues the walk below c; settling (acked or drained) releases the
// publishing guard.
type dispEdge struct {
	rd *round
	c  *ktree.Node
}

//lbvet:hotpath
func (e *dispEdge) HandleMsg() bool {
	e.rd.dispWalk(e.c)
	return true
}

func (e *dispEdge) SettleMsg(bool) { e.rd.publishDone() }

// classifyAndPublish runs classification on a node the first time the
// global tuple reaches it (the roster machine absorbs duplicates), and
// publishes its VSA information.
func (rd *round) classifyAndPublish(node *chord.Node) {
	st, ok := rd.roster.Classify(node, rd.global, rd.cfg().Epsilon, rd.cfg().Subset)
	if !ok {
		return
	}
	rd.res.NodesClassified++
	if t := rd.r.eng.Now() - rd.start; t > rd.res.TimeLBIDisseminate {
		rd.res.TimeLBIDisseminate = t
	}
	if st.Class == core.Neutral {
		return
	}
	eng := rd.r.eng
	switch rd.cfg().Mode {
	case core.ProximityIgnorant:
		// The advertisement leaf was drawn in the placement pre-pass —
		// not here at event time — so it does not depend on the order in
		// which the global tuple reaches the nodes.
		if leaf, ok := rd.place.VSALeaf[node]; ok {
			rd.depositAt(leaf, st, 0)
		}
	case core.ProximityAware:
		key := rd.cfg().Mapper.Key(node.Underlay)
		group := uint64(key)
		if cm, ok := rd.cfg().Mapper.(core.CellMapper); ok {
			group = cm.Cell(node.Underlay)
		}
		// Routed publication: the advertisement travels through the
		// overlay to the key's owner.
		rd.publishing++
		lookup := rd.r.ring.Lookup
		if rd.r.cfg.PrefixRouting {
			lookup = rd.r.ring.PrefixLookup
		}
		lookup(node, key, func(res chord.LookupResult) {
			eng.CountMessage(MsgPublish, 1)
			rd.deposit(res.VS, st, group)
			if t := rd.r.eng.Now() - rd.start; t > rd.res.TimePublish {
				rd.res.TimePublish = t
			}
			rd.publishDone()
		})
	}
}

func (rd *round) cfg() core.Config { return rd.r.cfg.Core }

// deposit stores a node's VSA entries at the given virtual server's
// reporting leaf.
func (rd *round) deposit(vs *chord.VServer, st *core.NodeState, group uint64) {
	leaf := rd.leafFor(vs)
	if leaf == nil {
		return // fresh joiner: the advertisement waits for the next round
	}
	rd.depositAt(leaf, st, group)
}

// depositAt stores a node's VSA entries at an already-resolved leaf.
func (rd *round) depositAt(leaf *ktree.Node, st *core.NodeState, group uint64) {
	pl := rd.vsaInbox[leaf]
	if pl == nil {
		pl = &core.PairList{}
		rd.vsaInbox[leaf] = pl
	}
	lbnode.DepositVSA(pl, st, group)
}

// publishDone decrements the outstanding-publication counter; at zero,
// every advertisement has landed and the VSA epoch begins.
func (rd *round) publishDone() {
	rd.publishing--
	if rd.publishing > 0 {
		return
	}
	rd.startVSA()
}

// startVSA runs the VSA converge-cast from the root.
func (rd *round) startVSA() {
	rd.res.HeavyBefore, rd.res.LightBefore, rd.res.NeutralBefore = rd.roster.Census()

	rd.collectVSA(rd.r.tree.Root(), true, func(left *core.PairList) {
		rd.res.TimeVSAComplete = rd.r.eng.Now() - rd.start
		rd.res.UnassignedOffers = left.Offers()
		rd.res.UnassignedLoad = left.OfferLoad()
		rd.vsaDone = true
		rd.maybeFinish()
	})
}

// collectVSA is the bottom-up VSA sweep, one lbnode.VSACollect epoch
// per node: children reply with their unpaired lists; rendezvous points
// (threshold reached, or the root) pair and notify, and everything
// unpaired flows upward.
func (rd *round) collectVSA(n *ktree.Node, isRoot bool, cb func(*core.PairList)) {
	if rd.r.cfg.ParallelSubtrees {
		rd.startVSAPar(n, cb)
		return
	}
	rd.startVSANode(n, isRoot, nil, cb)
}

// vsaNode drives one internal node's VSA epoch — the mirror of lbiNode
// with a pair list flowing up instead of an LBI tuple, and a
// rendezvous step on completion.
type vsaNode struct {
	rd       *round
	n        *ktree.Node
	ni       int
	isRoot   bool
	col      lbnode.VSACollect
	parent   *vsaEdge
	rootCb   func(*core.PairList) // only at the root
	expire   sim.Timer
	expireEv vsaExpire
}

// vsaEdge is one parent→child link of the VSA epoch.
type vsaEdge struct {
	nd   *vsaNode
	c    *ktree.Node
	chi  int
	edge sim.Time
	sub  *core.PairList
	down vsaDown
	up   vsaUp
}

// startVSANode begins n's epoch; exactly one of parent (interior) and
// cb (root) is set. Leaves complete synchronously on the caller's
// stack.
//
//lbvet:hotpath
func (rd *round) startVSANode(n *ktree.Node, isRoot bool, parent *vsaEdge, cb func(*core.PairList)) {
	owner := n.Host.Owner
	if !owner.Alive {
		return
	}
	ni := owner.Index
	if parent != nil {
		ni = parent.chi
	}
	col := lbnode.MakeVSACollect(rd.vsaInbox[n], len(n.Children))
	if col.Done() {
		rd.finishVSA(n, isRoot, &col, parent, cb)
		return
	}
	nd := slabAlloc(&rd.vsaNodes)
	nd.rd, nd.n, nd.ni, nd.isRoot, nd.col = rd, n, ni, isRoot, col
	nd.parent, nd.rootCb = parent, cb
	nd.expireEv.nd = nd
	for _, c := range n.Children {
		e := slabAlloc(&rd.vsaEdges)
		e.nd, e.c, e.chi = nd, c, hostIdx(c)
		e.edge = rd.r.tree.EdgeLatency(c)
		e.down.e, e.up.e = e, e
		rd.reliableEv(MsgVSADown, ni, e.chi, e.edge, &e.down)
	}
	// As in collectLBI: the last reply revokes the epoch timer.
	nd.expire = rd.r.eng.AfterEv(rd.epochWindow(n), &nd.expireEv)
}

// finishVSA closes n's epoch: rendezvous-pair what this subtree can,
// then flow the unpaired remainder up the parent edge (or into the
// round's continuation at the root).
//
//lbvet:hotpath
func (rd *round) finishVSA(n *ktree.Node, isRoot bool, col *lbnode.VSACollect, parent *vsaEdge, cb func(*core.PairList)) {
	for _, p := range col.Rendezvous(isRoot, rd.cfg().RendezvousThreshold, rd.global.Lmin) {
		rd.emitPair(n, p)
	}
	left := col.Lists()
	if parent != nil {
		parent.sub = left
		rd.reliableEv(MsgVSAUp, parent.chi, parent.nd.ni, parent.edge, &parent.up)
		return
	}
	cb(left)
}

type vsaDown struct{ e *vsaEdge }

//lbvet:hotpath
func (d *vsaDown) HandleMsg() bool {
	e := d.e
	e.nd.rd.startVSANode(e.c, false, e, nil)
	return true
}

func (d *vsaDown) SettleMsg(bool) {}

type vsaUp struct{ e *vsaEdge }

//lbvet:hotpath
func (u *vsaUp) HandleMsg() bool {
	e := u.e
	nd := e.nd
	if nd.col.ChildReply(e.sub) {
		nd.rd.r.eng.Cancel(nd.expire)
		nd.rd.finishVSA(nd.n, nd.isRoot, &nd.col, nd.parent, nd.rootCb)
	}
	return true
}

func (u *vsaUp) SettleMsg(bool) {}

type vsaExpire struct{ nd *vsaNode }

func (x *vsaExpire) RunEvent() {
	nd := x.nd
	if timedOut, expired := nd.col.Expire(); expired {
		nd.rd.res.TimedOutChildren += timedOut
		nd.rd.finishVSA(nd.n, nd.isRoot, &nd.col, nd.parent, nd.rootCb)
	}
}

// emitPair sends the pairing to both endpoints and starts the two-phase
// handoff. The heavy endpoint's notification is reliable (it drives the
// transfer); the light endpoint's copy is informational — the prepare
// phase re-validates the receiver — so it rides an unreliable send.
func (rd *round) emitPair(rendezvous *ktree.Node, p core.Pair) {
	if rd.deferPairs != nil {
		// Parallel worker: pairing side effects (handoffs mutate the
		// shared ring) are recorded with their virtual emission time
		// and replayed on the root engine at the join.
		*rd.deferPairs = append(*rd.deferPairs, timedPair{at: rd.r.eng.Now(), n: rendezvous, p: p})
		return
	}
	eng := rd.r.eng
	host := rendezvous.Host.Owner
	costFrom := rd.r.ring.Latency(host, p.From) + 1
	costTo := rd.r.ring.Latency(host, p.To) + 1
	rd.outstandingTransfers++
	h := &handoff{rd: rd, rendezvous: rendezvous, m: lbnode.NewHandoff(p), assignedAt: eng.Now() - rd.start}
	h.assign.h, h.prep.h, h.commitH.h = h, h, h
	eng.Deliver(MsgAssign, host.Index, p.To.Index, costTo, func() {})
	rd.reliableEv(MsgAssign, host.Index, p.From.Index, costFrom, &h.assign)
}

// handoff drives one lbnode.Handoff machine — the two-phase
// virtual-server transfer for one pairing — over the reliable-delivery
// transport. The machine owns the phase logic (validate, reserve,
// exactly-once commit, abort); this wrapper owns delivery, retries and
// the round's accounting. Each handoff settles exactly once (PhaseDone
// or PhaseAborted), releasing the round's outstanding-transfer slot.
type handoff struct {
	rd         *round
	rendezvous *ktree.Node
	m          *lbnode.Handoff
	assignedAt sim.Time
	cost       sim.Time // heavy → light latency, fixed at prepare time

	// The three phases' reliable-exchange handler roles, embedded so a
	// handoff costs one allocation total (see rhandler).
	assign  assignH
	prep    prepareH
	commitH commitH
}

// assignH: the rendezvous→heavy assignment message.
type assignH struct{ h *handoff }

func (a *assignH) HandleMsg() bool {
	// ack=false models a dead heavy endpoint: silent, no ack.
	ack, op := a.h.m.AssignReceived()
	a.h.apply(op)
	return ack
}

func (a *assignH) SettleMsg(ok bool) {
	if !ok {
		a.h.apply(a.h.m.Fail())
	}
}

// prepareH: the heavy→light reservation. Acceptance (the machine, while
// the receiver is alive and the pairing unsettled) is the ack; a dead
// receiver is silent and the sender's retries drain into an abort.
type prepareH struct{ h *handoff }

func (pr *prepareH) HandleMsg() bool { return pr.h.m.PrepareReceived() }

func (pr *prepareH) SettleMsg(ok bool) {
	if !ok {
		pr.h.apply(pr.h.m.Fail())
		return
	}
	pr.h.apply(pr.h.m.PrepareAcked())
}

// commitH: the heavy→light VS shipment. The FIRST commit copy the
// machine accepts applies ring.Transfer — the dedup set plus the
// machine's exactly-once contract make duplicated or retransmitted
// commits idempotent, so the VS is moved exactly once and never
// double-hosted.
type commitH struct{ h *handoff }

func (c *commitH) HandleMsg() bool {
	if !c.h.m.TransferReceived() {
		return false
	}
	c.h.complete()
	return true
}

func (c *commitH) SettleMsg(ok bool) {
	if !ok {
		c.h.apply(c.h.m.Fail())
	}
}

// apply performs the outgoing action a machine transition requested.
func (h *handoff) apply(op lbnode.HandoffOp) {
	switch op {
	case lbnode.OpPrepare:
		h.prepare()
	case lbnode.OpCommit:
		h.commit()
	case lbnode.OpAbort:
		h.rd.res.AbortedTransfers++
		h.rd.transferDone()
	}
}

// prepare sends the reservation heavy → light.
func (h *handoff) prepare() {
	p := h.m.Pair
	h.cost = h.rd.r.ring.Latency(p.From, p.To) + 1
	h.rd.reliableEv(MsgPrepare, p.From.Index, p.To.Index, h.cost, &h.prep)
}

// commit ships the VS once the reservation is acknowledged.
func (h *handoff) commit() {
	p := h.m.Pair
	h.rd.reliableEv(MsgTransfer, p.From.Index, p.To.Index, h.cost, &h.commitH)
}

// complete applies the transfer at the receiver on the commit copy the
// machine accepted — the single point where ring state changes hands.
func (h *handoff) complete() {
	rd := h.rd
	p := h.m.Pair
	rd.r.ring.Transfer(p.VS, p.To)
	hops := rd.transferCost(p.From, p.To)
	rd.res.Assignments = append(rd.res.Assignments, core.Assignment{
		VS: p.VS, From: p.From, To: p.To, Load: p.Load,
		Hops: hops, AssignedAt: h.assignedAt, Depth: h.rendezvous.Depth,
	})
	rd.res.MovedLoad += p.Load
	rd.res.MovedByHops.Add(hops, p.Load)
	if t := rd.r.eng.Now() - rd.start; t > rd.res.TimeVSTComplete {
		rd.res.TimeVSTComplete = t
	}
	rd.transferDone()
}

func (rd *round) transferCost(from, to *chord.Node) int {
	if tc := rd.cfg().TransferCost; tc != nil {
		return tc(from, to)
	}
	return int(rd.r.ring.Latency(from, to))
}

func (rd *round) transferDone() {
	rd.outstandingTransfers--
	rd.maybeFinish()
}

// maybeFinish closes the round when the VSA sweep and every transfer
// have completed: final census, lazy KT migration (tree repair), and
// the caller's completion callback.
func (rd *round) maybeFinish() {
	if !rd.vsaDone || rd.outstandingTransfers > 0 {
		return
	}
	rd.res.HeavyAfter, rd.res.LightAfter, rd.res.NeutralAfter =
		lbnode.Census(rd.r.ring.Nodes(), rd.global, rd.cfg().Epsilon, rd.cfg().Subset)
	if _, err := rd.r.tree.Repair(); err != nil {
		rd.done(nil, err)
		return
	}
	rd.done(rd.res, nil)
}

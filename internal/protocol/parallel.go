// Conservative parallel execution of the root's child subtrees.
//
// On a lossless network the LBI and VSA converge-casts have a strict
// locality property: until a subtree's aggregate reaches the root,
// every message either stays inside one root-child subtree or travels
// on the root↔child edge. The subtrees share no protocol state — the
// per-leaf inboxes, the per-node collect machines and the sequence
// space partition cleanly — so each subtree's phase can be simulated
// to completion on its own engine (the conservative lookahead: the
// whole phase, justified because no event outside the subtree can
// target it mid-phase).
//
// Each worker gets a goroutine and a fresh sim.Engine whose seed is
// derived from the root engine's seed and the child index WITHOUT
// consuming the root RNG — a draw would shift every later draw (lazy
// advertisement placement, subset strategies) and break equivalence
// with the sequential executor. The collect walks themselves consume
// no randomness; the derived seed exists so that any future stray
// draw diverges loudly per worker instead of silently corrupting the
// shared stream.
//
// The root drives the phase exactly like the sequential walk: it
// sends the real MsgCollectDown/MsgVSADown exchanges on its own
// engine, and the down-arrival event joins the worker (blocking the
// root goroutine in real time, never in virtual time). The join then
// replays the subtree's externally visible effects at their reported
// virtual offsets:
//
//   - the child's reply exchange (MsgReportUp/MsgVSAUp) is issued at
//     the child's virtual completion time;
//   - rendezvous pairings emitted inside the subtree are re-run on
//     the root engine at their emission times (handoffs mutate the
//     shared ring, so they must execute under the root's clock);
//   - per-kind message tallies and failure counters merge in child
//     order (pure sums, so the merge order is immaterial to the
//     totals).
//
// Equivalence with the sequential run: the global tuple, the message
// totals and the transfer set are identical. The only representational
// difference is the order of same-instant events (sequence numbers are
// allocated per engine), which the index-buffered root machines fold
// away — TestParallelSubtreesEquivalence pins all of this.
package protocol

import (
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/lbnode"
	"p2plb/internal/sim"
)

// timedPair is a rendezvous pairing recorded inside a worker, stamped
// with the worker-virtual time it was emitted at.
type timedPair struct {
	at sim.Time
	n  *ktree.Node
	p  core.Pair
}

// subWorker is one root-child subtree phase running on its own engine.
// The goroutine writes the result fields and closes done; the root
// reads them only after <-done (the channel is the happens-before
// edge).
type subWorker struct {
	done  chan struct{}
	eng   *sim.Engine
	res   *Result
	ok    bool           // the child completed its epoch (false: dead subtree, never replies)
	dur   sim.Time       // worker-virtual time of the child's completion
	agg   core.LBI       // LBI phase result
	left  *core.PairList // VSA phase result: the unpaired remainder
	pairs []timedPair    // VSA phase: deferred rendezvous pairings
}

// deriveSeed mixes a per-child worker seed out of the root engine's
// seed (splitmix64 finalizer) without touching the root RNG.
func deriveSeed(base int64, child int) int64 {
	z := uint64(base) + uint64(child+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// subRound builds the worker-local round shim: same ring, tree, config
// and shared (read-only during the phase) inboxes, but its own engine,
// sequence space, dedup set and result counters.
func (rd *round) subRound(eng *sim.Engine, res *Result) *round {
	return &round{
		r:          &Runner{ring: rd.r.ring, tree: rd.r.tree, cfg: rd.r.cfg, eng: eng},
		timeout:    rd.timeout,
		lbiInbox:   rd.lbiInbox,
		vsaInbox:   rd.vsaInbox,
		global:     rd.global,
		maxRetries: rd.maxRetries,
		res:        res,
	}
}

// mergeWorker folds a finished worker's message tallies and failure
// counters into the root round.
func (rd *round) mergeWorker(w *subWorker) {
	eng := rd.r.eng
	for _, kind := range w.eng.MessageKinds() {
		eng.CountMessageN(kind, w.eng.MessageCount(kind), sim.Time(w.eng.MessageCost(kind)))
	}
	rd.res.Retries += w.res.Retries
	rd.res.TimedOutChildren += w.res.TimedOutChildren
	rd.res.NodesClassified += w.res.NodesClassified
}

// startLBIPar is startLBI for the root with one worker per child
// subtree. The root's own machine, epoch timer and down/up exchanges
// are identical to the sequential walk; only what happens between the
// down-arrival and the up-reply moves onto worker engines.
func (rd *round) startLBIPar(n *ktree.Node) {
	owner := n.Host.Owner
	if !owner.Alive {
		return
	}
	col := lbnode.MakeLBICollect(rd.lbiInbox[n], len(n.Children))
	if col.Done() {
		rd.lbiComplete(nil, col.Aggregate())
		return
	}
	nd := slabAlloc(&rd.lbiNodes)
	nd.rd, nd.n, nd.ni, nd.col, nd.parent = rd, n, owner.Index, col, nil
	nd.expireEv.nd = nd
	base := rd.r.eng.Seed()
	for ci, c := range n.Children {
		e := slabAlloc(&rd.lbiEdges)
		e.nd, e.c, e.ci, e.chi = nd, c, ci, hostIdx(c)
		e.edge = rd.r.tree.EdgeLatency(c)
		e.up.e = e
		w := rd.spawnLBIWorker(c, deriveSeed(base, ci))
		rd.reliableEv(MsgCollectDown, nd.ni, e.chi, e.edge, &lbiJoin{e: e, w: w})
	}
	nd.expire = rd.r.eng.AfterEv(rd.epochWindow(n), &nd.expireEv)
}

// spawnLBIWorker simulates c's whole LBI epoch on a derived-seed
// engine.
func (rd *round) spawnLBIWorker(c *ktree.Node, seed int64) *subWorker {
	w := &subWorker{done: make(chan struct{}), eng: sim.NewEngine(seed), res: &Result{}}
	go func() {
		defer close(w.done)
		sub := rd.subRound(w.eng, w.res)
		sub.onLBIRoot = func(agg core.LBI) {
			w.ok, w.agg, w.dur = true, agg, w.eng.Now()
		}
		sub.startLBI(c, nil)
		w.eng.Run()
	}()
	return w
}

// lbiJoin handles the down-arrival at a parallel child: wait for the
// worker, then replay the reply at the child's completion offset. A
// dead subtree still acks the pull (as in the sequential walk, where
// aliveness gates the walk, not the transport) and simply never
// replies, leaving the root's epoch timer to expire.
type lbiJoin struct {
	e *lbiEdge
	w *subWorker
}

func (j *lbiJoin) HandleMsg() bool {
	w := j.w
	<-w.done
	rd := j.e.nd.rd
	rd.mergeWorker(w)
	if !w.ok {
		return true
	}
	e, agg := j.e, w.agg
	rd.r.eng.Schedule(w.dur, func() { rd.lbiComplete(e, agg) })
	return true
}

func (j *lbiJoin) SettleMsg(bool) {}

// startVSAPar mirrors startLBIPar for the VSA converge-cast. The root
// runs its own rendezvous step (isRoot pairing) on the root engine via
// the ordinary finishVSA path; subtree rendezvous pairings were
// deferred by the workers and replay on the root engine.
func (rd *round) startVSAPar(n *ktree.Node, cb func(*core.PairList)) {
	owner := n.Host.Owner
	if !owner.Alive {
		return
	}
	col := lbnode.MakeVSACollect(rd.vsaInbox[n], len(n.Children))
	if col.Done() {
		rd.finishVSA(n, true, &col, nil, cb)
		return
	}
	nd := slabAlloc(&rd.vsaNodes)
	nd.rd, nd.n, nd.ni, nd.isRoot, nd.col = rd, n, owner.Index, true, col
	nd.rootCb = cb
	nd.expireEv.nd = nd
	base := rd.r.eng.Seed()
	for ci, c := range n.Children {
		e := slabAlloc(&rd.vsaEdges)
		e.nd, e.c, e.chi = nd, c, hostIdx(c)
		e.edge = rd.r.tree.EdgeLatency(c)
		e.up.e = e
		w := rd.spawnVSAWorker(c, deriveSeed(base, ci))
		rd.reliableEv(MsgVSADown, nd.ni, e.chi, e.edge, &vsaJoin{e: e, w: w})
	}
	nd.expire = rd.r.eng.AfterEv(rd.epochWindow(n), &nd.expireEv)
}

// spawnVSAWorker simulates c's whole VSA epoch on a derived-seed
// engine, recording rendezvous pairings instead of executing them.
func (rd *round) spawnVSAWorker(c *ktree.Node, seed int64) *subWorker {
	w := &subWorker{done: make(chan struct{}), eng: sim.NewEngine(seed), res: &Result{}}
	go func() {
		defer close(w.done)
		sub := rd.subRound(w.eng, w.res)
		sub.deferPairs = &w.pairs
		sub.startVSANode(c, false, nil, func(left *core.PairList) {
			w.ok, w.left, w.dur = true, left, w.eng.Now()
		})
		w.eng.Run()
	}()
	return w
}

// vsaJoin: as lbiJoin, plus the deferred-pairing replay. Pairings are
// scheduled before the reply so that a pairing and the reply landing
// on the same instant keep their worker-side emission order.
type vsaJoin struct {
	e *vsaEdge
	w *subWorker
}

func (j *vsaJoin) HandleMsg() bool {
	w := j.w
	<-w.done
	rd := j.e.nd.rd
	rd.mergeWorker(w)
	if !w.ok {
		return true
	}
	for _, tp := range w.pairs {
		tp := tp
		rd.r.eng.Schedule(tp.at, func() { rd.emitPair(tp.n, tp.p) })
	}
	e, left := j.e, w.left
	rd.r.eng.Schedule(w.dur, func() {
		e.sub = left
		rd.reliableEv(MsgVSAUp, e.chi, e.nd.ni, e.edge, &e.up)
	})
	return true
}

func (j *vsaJoin) SettleMsg(bool) {}

package workload

import (
	"math"
	"testing"
)

func testSpec() PlanSpec {
	return PlanSpec{
		Seed:        1,
		Requests:    20000,
		Objects:     5000,
		Rate:        4,
		PutFraction: 0.1,
		Origins:     64,
	}
}

func drain(t *testing.T, p *RequestPlan) []Request {
	t.Helper()
	out := make([]Request, 0, p.Spec().Requests)
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Two plans with the same spec — and one plan replayed via Reset — must
// produce the identical request sequence: this is the reproducibility
// contract the serve determinism gate rests on.
func TestRequestPlanDeterministic(t *testing.T) {
	p1, err := NewRequestPlan(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewRequestPlan(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(t, p1), drain(t, p2)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	p1.Reset()
	c := drain(t, p1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("replay after Reset diverges at %d: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestRequestPlanSeedsIndependent(t *testing.T) {
	s := testSpec()
	s.Seed = 2
	p1, _ := NewRequestPlan(testSpec())
	p2, _ := NewRequestPlan(s)
	a, b := drain(t, p1), drain(t, p2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical plans")
	}
}

// The stream is open-loop Poisson: timestamps nondecreasing, mean
// inter-arrival ≈ 1/Rate, and all fields in range.
func TestRequestPlanShape(t *testing.T) {
	spec := testSpec()
	p, err := NewRequestPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	reqs := drain(t, p)
	if len(reqs) != spec.Requests {
		t.Fatalf("emitted %d requests, want %d", len(reqs), spec.Requests)
	}
	if p.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", p.Remaining())
	}
	puts := 0
	for i, r := range reqs {
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatalf("timestamps regress at %d: %d after %d", i, r.At, reqs[i-1].At)
		}
		if r.Object < 0 || r.Object >= spec.Objects {
			t.Fatalf("object %d out of range at %d", r.Object, i)
		}
		if r.Origin < 0 || r.Origin >= spec.Origins {
			t.Fatalf("origin %d out of range at %d", r.Origin, i)
		}
		if r.Op == OpPut {
			puts++
		}
	}
	// Mean arrival rate: span/requests should be ~1/Rate.
	span := float64(reqs[len(reqs)-1].At)
	gotRate := float64(len(reqs)) / span
	if gotRate < spec.Rate*0.9 || gotRate > spec.Rate*1.1 {
		t.Fatalf("observed rate %.3f, want ≈ %.3f", gotRate, spec.Rate)
	}
	putFrac := float64(puts) / float64(len(reqs))
	if putFrac < 0.07 || putFrac > 0.13 {
		t.Fatalf("put fraction %.3f, want ≈ %.3f", putFrac, spec.PutFraction)
	}
}

// Zipf popularity: the hottest object must dominate the median-rank
// object by a wide margin.
func TestRequestPlanZipfSkew(t *testing.T) {
	p, err := NewRequestPlan(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, testSpec().Objects)
	for {
		r, ok := p.Next()
		if !ok {
			break
		}
		counts[r.Object]++
	}
	if counts[0] < 20*maxInt(counts[2500], 1) {
		t.Fatalf("head object count %d not ≫ median-rank count %d", counts[0], counts[2500])
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestExpectedWeights(t *testing.T) {
	p, err := NewRequestPlan(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := p.ExpectedWeights()
	if len(w) != testSpec().Objects {
		t.Fatalf("got %d weights, want %d", len(w), testSpec().Objects)
	}
	var sum float64
	for k, wk := range w {
		if wk <= 0 {
			t.Fatalf("weight %d nonpositive: %v", k, wk)
		}
		if k > 0 && wk > w[k-1] {
			t.Fatalf("weights not monotone at %d", k)
		}
		sum += wk
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
}

func TestPlanSpecValidate(t *testing.T) {
	base := testSpec()
	bad := []func(*PlanSpec){
		func(s *PlanSpec) { s.Requests = 0 },
		func(s *PlanSpec) { s.Objects = 0 },
		func(s *PlanSpec) { s.Rate = 0 },
		func(s *PlanSpec) { s.Rate = -1 },
		func(s *PlanSpec) { s.ZipfS = 1 },
		func(s *PlanSpec) { s.ZipfV = 0.5 },
		func(s *PlanSpec) { s.PutFraction = 1.5 },
		func(s *PlanSpec) { s.PutFraction = -0.1 },
		func(s *PlanSpec) { s.Origins = 0 },
	}
	for i, mutate := range bad {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, s)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

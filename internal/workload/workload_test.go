package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestGaussianMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Gaussian{Mu: 1e6, Sigma: 1e4}
	f := 0.001
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := g.Load(rng, f)
		if x < 0 {
			t.Fatal("negative load")
		}
		sum += x
	}
	mean := sum / float64(n)
	wantMean := g.Mu * f
	if math.Abs(mean-wantMean)/wantMean > 0.01 {
		t.Errorf("Gaussian mean = %v, want ~%v", mean, wantMean)
	}
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		x := g.Load(rng, f)
		d := x - wantMean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n))
	wantStd := g.Sigma * math.Sqrt(f)
	if math.Abs(std-wantStd)/wantStd > 0.03 {
		t.Errorf("Gaussian std = %v, want ~%v", std, wantStd)
	}
}

func TestGaussianClampsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Force a regime where negatives would be common without clamping.
	g := Gaussian{Mu: 0, Sigma: 100}
	for i := 0; i < 10000; i++ {
		if g.Load(rng, 0.5) < 0 {
			t.Fatal("clamp failed")
		}
	}
}

func TestParetoMeanAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Pareto{Alpha: 1.5, Mu: 1e6}
	f := 0.01
	wantMean := p.Mu * f
	xm := wantMean * (p.Alpha - 1) / p.Alpha
	n := 2_000_000
	var sum float64
	exceed := 0
	for i := 0; i < n; i++ {
		x := p.Load(rng, f)
		if x < xm {
			t.Fatalf("Pareto draw %v below scale %v", x, xm)
		}
		sum += x
		if x > 10*xm {
			exceed++
		}
	}
	mean := sum / float64(n)
	// α=1.5 has infinite variance so the sample mean converges slowly;
	// allow a loose band.
	if mean < 0.85*wantMean || mean > 1.4*wantMean {
		t.Errorf("Pareto mean = %v, want ~%v", mean, wantMean)
	}
	// Tail check: P(X > 10·x_m) = 10^(−α) = 10^(−1.5) ≈ 0.0316.
	frac := float64(exceed) / float64(n)
	if math.Abs(frac-math.Pow(10, -1.5)) > 0.003 {
		t.Errorf("Pareto tail fraction = %v, want ~%v", frac, math.Pow(10, -1.5))
	}
}

func TestParetoBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto with alpha<=1 should panic")
		}
	}()
	Pareto{Alpha: 1, Mu: 1}.Load(rand.New(rand.NewSource(1)), 0.1)
}

func TestModelNames(t *testing.T) {
	if (Gaussian{}).Name() != "gaussian" || (Pareto{}).Name() != "pareto" {
		t.Fatal("model names wrong")
	}
}

func TestGnutellaProfileValid(t *testing.T) {
	p := GnutellaProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected mean: 1·.2 + 10·.45 + 100·.3 + 1000·.049 + 10000·.001 = 93.7
	if m := p.MeanCapacity(); math.Abs(m-93.7) > 1e-9 {
		t.Errorf("mean capacity = %v, want 93.7", m)
	}
}

func TestProfileSampleFrequencies(t *testing.T) {
	p := GnutellaProfile()
	rng := rand.New(rand.NewSource(5))
	counts := map[float64]int{}
	n := 500000
	for i := 0; i < n; i++ {
		counts[p.Sample(rng)]++
	}
	for _, c := range p {
		frac := float64(counts[c.Capacity]) / float64(n)
		if math.Abs(frac-c.Prob) > 0.005+c.Prob*0.05 {
			t.Errorf("capacity %v sampled at %v, want %v", c.Capacity, frac, c.Prob)
		}
	}
}

func TestProfileValidateErrors(t *testing.T) {
	cases := []Profile{
		nil,
		{{Capacity: 1, Prob: 0.5}}, // sums to 0.5
		{{Capacity: -1, Prob: 1}},  // negative capacity
		{{Capacity: 1, Prob: -0.1}, {Capacity: 2, Prob: 1.1}}, // negative prob
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestUniformProfile(t *testing.T) {
	p := UniformProfile(50)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		if p.Sample(rng) != 50 {
			t.Fatal("uniform profile sampled wrong capacity")
		}
	}
}

func TestExpFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 4096
	trials := 300000
	var sum float64
	for i := 0; i < trials; i++ {
		f := ExpFraction(rng, n)
		if f <= 0 || f > 1 {
			t.Fatalf("fraction %v out of range", f)
		}
		sum += f
	}
	mean := sum / float64(trials)
	want := 1.0 / float64(n)
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("ExpFraction mean = %v, want ~%v", mean, want)
	}
}

func TestExpFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpFraction(0) should panic")
		}
	}()
	ExpFraction(rand.New(rand.NewSource(1)), 0)
}

func BenchmarkGaussianLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := Gaussian{Mu: 1e6, Sigma: 1e4}
	for i := 0; i < b.N; i++ {
		g.Load(rng, 0.001)
	}
}

func BenchmarkParetoLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := Pareto{Alpha: 1.5, Mu: 1e6}
	for i := 0; i < b.N; i++ {
		p.Load(rng, 0.001)
	}
}

// Package workload generates the synthetic loads and node capacities the
// paper evaluates with: virtual-server loads drawn from a Gaussian or a
// Pareto model parameterized by the fraction of the identifier space a
// virtual server owns, and a Gnutella-like node-capacity profile.
//
// Following the paper's setup (§5.1): with f the fraction of the
// identifier space owned by a virtual server (exponentially distributed,
// as arises naturally from random identifiers on the Chord ring), μ and σ
// the mean and standard deviation of the total system load,
//
//   - the Gaussian model draws loads from N(μf, (σ√f)²), and
//   - the Pareto model uses shape α = 1.5 with mean μf (infinite variance).
//
// Node capacities follow the Gnutella-like profile: capacity 1, 10, 10²,
// 10³ and 10⁴ with probability 20%, 45%, 30%, 4.9% and 0.1%.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// LoadModel draws a non-negative load for a virtual server owning
// fraction f of the identifier space.
type LoadModel interface {
	// Load returns the load of a virtual server owning fraction f of
	// the identifier space. Implementations must return a value >= 0.
	Load(rng *rand.Rand, f float64) float64
	// Name identifies the model in experiment output.
	Name() string
}

// Gaussian is the Gaussian load model: N(Mu·f, (Sigma·√f)²), truncated
// at zero (negative draws clamp to 0; with the paper's parameters these
// are rare, and clamping preserves non-negativity of load).
type Gaussian struct {
	Mu    float64 // mean of the total system load
	Sigma float64 // standard deviation of the total system load
}

// Load implements LoadModel.
func (g Gaussian) Load(rng *rand.Rand, f float64) float64 {
	x := g.Mu*f + g.Sigma*math.Sqrt(f)*rng.NormFloat64()
	if x < 0 {
		return 0
	}
	return x
}

// Name implements LoadModel.
func (g Gaussian) Name() string { return "gaussian" }

// Pareto is the heavy-tailed load model: a Pareto distribution with shape
// Alpha (> 1) and mean Mu·f. The scale is derived from the mean:
// x_m = mean·(α−1)/α. With the paper's α = 1.5 the variance is infinite.
type Pareto struct {
	Alpha float64 // shape parameter, must be > 1 so the mean exists
	Mu    float64 // mean of the total system load
}

// Load implements LoadModel.
func (p Pareto) Load(rng *rand.Rand, f float64) float64 {
	if p.Alpha <= 1 {
		panic(fmt.Sprintf("workload: Pareto shape %v has no mean", p.Alpha))
	}
	mean := p.Mu * f
	xm := mean * (p.Alpha - 1) / p.Alpha
	// Inverse-CDF sampling: X = x_m · U^(−1/α), U ∈ (0, 1].
	u := 1 - rng.Float64() // (0, 1]
	return xm * math.Pow(u, -1/p.Alpha)
}

// Name implements LoadModel.
func (p Pareto) Name() string { return "pareto" }

// CapacityClass is one row of a capacity profile: nodes receive Capacity
// with probability Prob.
type CapacityClass struct {
	Capacity float64
	Prob     float64
}

// Profile is a discrete node-capacity distribution.
type Profile []CapacityClass

// GnutellaProfile returns the paper's Gnutella-like capacity profile.
func GnutellaProfile() Profile {
	return Profile{
		{Capacity: 1, Prob: 0.20},
		{Capacity: 10, Prob: 0.45},
		{Capacity: 100, Prob: 0.30},
		{Capacity: 1000, Prob: 0.049},
		{Capacity: 10000, Prob: 0.001},
	}
}

// UniformProfile returns a degenerate profile where every node has
// capacity c — the homogeneous assumption classic DHTs make, useful as a
// control in experiments.
func UniformProfile(c float64) Profile {
	return Profile{{Capacity: c, Prob: 1}}
}

// Validate checks that probabilities are non-negative and sum to 1
// (within 1e-9) and capacities are positive.
func (p Profile) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("workload: empty capacity profile")
	}
	var sum float64
	for _, c := range p {
		if c.Prob < 0 {
			return fmt.Errorf("workload: negative probability %v", c.Prob)
		}
		if c.Capacity <= 0 {
			return fmt.Errorf("workload: non-positive capacity %v", c.Capacity)
		}
		sum += c.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload: probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Sample draws one capacity from the profile.
func (p Profile) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var cum float64
	for _, c := range p {
		cum += c.Prob
		if u < cum {
			return c.Capacity
		}
	}
	// Floating-point slack: fall through to the last class.
	return p[len(p)-1].Capacity
}

// MeanCapacity returns the expected capacity under the profile.
func (p Profile) MeanCapacity() float64 {
	var m float64
	for _, c := range p {
		m += c.Capacity * c.Prob
	}
	return m
}

// ExpFraction draws an identifier-space fraction for one of n ring
// participants. Spacings of n uniformly random points on a circle are
// (jointly) distributed so that each is approximately Exp(mean 1/n) for
// large n; the paper states f is exponentially distributed in both Chord
// and CAN. The draw is truncated at 1.
func ExpFraction(rng *rand.Rand, n int) float64 {
	if n <= 0 {
		panic("workload: ExpFraction with non-positive n")
	}
	f := rng.ExpFloat64() / float64(n)
	if f > 1 {
		return 1
	}
	return f
}

package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// This file defines the request workload the serving layer replays: an
// open-loop stream of get/put requests with Zipf object popularity.
// Unlike the LoadModel above — which *assigns* each virtual server a
// load scalar once — a RequestPlan makes load an emergent property:
// requests arrive, route, queue and are served, and a virtual server's
// load is whatever request rate it is observed to absorb.
//
// A plan is a pure function of its Spec: the arrival process, object
// choices, operations and origins are drawn from a private RNG derived
// from the spec seed (FNV-mixed, like internal/faults derives its
// per-class streams), never from a sim.Engine. Two iterations of the
// same plan yield the identical request sequence byte for byte, which
// is what makes serve runs replayable and the latency histograms
// diffable across processes and commits.

// RequestOp is the operation a request performs.
type RequestOp uint8

// Operations.
const (
	OpGet RequestOp = iota
	OpPut
)

func (o RequestOp) String() string {
	if o == OpPut {
		return "put"
	}
	return "get"
}

// Request is one planned arrival. At is in virtual-time units (the
// same units as sim.Time; the plan stays int64 so this package does not
// depend on the engine). Object is the popularity index of the target
// object — index 0 is the hottest; the serving layer maps indexes to
// identifier-space keys. Origin selects the requesting node.
type Request struct {
	At     int64
	Object int
	Op     RequestOp
	Origin int
}

// PlanSpec parameterizes a RequestPlan.
type PlanSpec struct {
	// Seed derives the plan's private RNG stream.
	Seed int64
	// Requests is the total number of arrivals.
	Requests int
	// Objects is the size of the object population; Zipf popularity
	// ranks are drawn over [0, Objects).
	Objects int
	// Rate is the open-loop mean arrival rate in requests per
	// virtual-time unit. Inter-arrival gaps are exponential (Poisson
	// arrivals); the stream does not slow down when the system backs
	// up — that is what makes tail latency observable.
	Rate float64
	// ZipfS is the Zipf skew (> 1; the paper's object-popularity
	// regime). Zero means the default 1.1.
	ZipfS float64
	// ZipfV is the Zipf value offset (>= 1). Zero means 1.
	ZipfV float64
	// PutFraction is the probability a request is a put. Zero is
	// honoured (a read-only workload); the serving default is set by
	// the experiment, not here.
	PutFraction float64
	// Origins is the number of distinct request origins (physical
	// nodes); each request draws one uniformly.
	Origins int
}

// Validate reports spec errors.
func (s PlanSpec) Validate() error {
	if s.Requests < 1 {
		return fmt.Errorf("workload: plan needs at least one request, got %d", s.Requests)
	}
	if s.Objects < 1 {
		return fmt.Errorf("workload: plan needs at least one object, got %d", s.Objects)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("workload: non-positive arrival rate %v", s.Rate)
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("workload: Zipf skew %v must exceed 1", s.ZipfS)
	}
	if s.ZipfV != 0 && s.ZipfV < 1 {
		return fmt.Errorf("workload: Zipf offset %v must be at least 1", s.ZipfV)
	}
	if s.PutFraction < 0 || s.PutFraction > 1 {
		return fmt.Errorf("workload: put fraction %v outside [0,1]", s.PutFraction)
	}
	if s.Origins < 1 {
		return fmt.Errorf("workload: plan needs at least one origin, got %d", s.Origins)
	}
	return nil
}

func (s PlanSpec) zipfS() float64 {
	if s.ZipfS == 0 {
		return 1.1
	}
	return s.ZipfS
}

func (s PlanSpec) zipfV() float64 {
	if s.ZipfV == 0 {
		return 1
	}
	return s.ZipfV
}

// planSeed mixes the spec seed into an independent RNG stream so a plan
// never shares draws with the engine or the fault injector at the same
// seed (the internal/faults idiom).
func planSeed(seed int64) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte("workload.RequestPlan"))
	return int64(h.Sum64())
}

// RequestPlan generates the arrival stream of a PlanSpec. Use Next to
// stream requests in arrival order (millions of requests never
// materialize at once) and Reset to replay the identical sequence.
type RequestPlan struct {
	spec    PlanSpec
	rng     *rand.Rand
	zipf    *rand.Zipf
	emitted int
	clock   float64 // exact arrival instant; Request.At is its floor
}

// NewRequestPlan validates spec and returns a plan positioned at the
// first request.
func NewRequestPlan(spec PlanSpec) (*RequestPlan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &RequestPlan{spec: spec}
	p.Reset()
	return p, nil
}

// Spec returns the plan's spec.
func (p *RequestPlan) Spec() PlanSpec { return p.spec }

// Reset rewinds the plan to its first request; the regenerated stream
// is identical to the previous iteration.
func (p *RequestPlan) Reset() {
	p.rng = rand.New(rand.NewSource(planSeed(p.spec.Seed)))
	p.zipf = rand.NewZipf(p.rng, p.spec.zipfS(), p.spec.zipfV(), uint64(p.spec.Objects-1))
	p.emitted = 0
	p.clock = 0
}

// Next returns the next planned request in arrival order (timestamps
// are nondecreasing). ok is false once Requests arrivals have been
// emitted.
func (p *RequestPlan) Next() (r Request, ok bool) {
	if p.emitted >= p.spec.Requests {
		return Request{}, false
	}
	p.emitted++
	p.clock += p.rng.ExpFloat64() / p.spec.Rate
	r.At = int64(p.clock)
	r.Object = int(p.zipf.Uint64())
	r.Op = OpGet
	if p.spec.PutFraction > 0 && p.rng.Float64() < p.spec.PutFraction {
		r.Op = OpPut
	}
	r.Origin = p.rng.Intn(p.spec.Origins)
	return r, true
}

// Remaining returns how many requests the plan has yet to emit.
func (p *RequestPlan) Remaining() int { return p.spec.Requests - p.emitted }

// ExpectedWeights returns the normalized expected request share of each
// object index under the plan's popularity distribution: index k gets
// weight proportional to 1/(v+k)^s, the Zipf pmf. The serving layer
// uses it to seed per-object expected loads (via the object store) so a
// run starts from the analytic expectation rather than zero knowledge.
func (p *RequestPlan) ExpectedWeights() []float64 {
	s, v := p.spec.zipfS(), p.spec.zipfV()
	w := make([]float64, p.spec.Objects)
	var sum float64
	for k := range w {
		w[k] = 1 / math.Pow(v+float64(k), s)
		sum += w[k]
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}

package chord

import (
	"p2plb/internal/ident"
)

// This file adds the serving layer's hot-path lookup cache: the
// Kademlia lookup-performance playbook (Salah–Roos–Strufe, PAPERS.md)
// applied to the Chord routed lookup. Each origin node remembers the
// owner of recently resolved keys; a hit turns an O(log n)-hop routed
// lookup into a single overlay hop straight to the cached owner. Under
// Zipf popularity the head of the curve dominates traffic, so a small
// per-origin cache absorbs most lookups.
//
// Correctness is pinned by two rules (see DESIGN.md "Serving layer"):
//
//   - Invalidation on transfer/churn: the cache subscribes to ring
//     events and bumps a per-VServer version on VSRemoved and
//     VSTransferred. A cached entry is only usable while its recorded
//     version matches — a departed or re-homed virtual server can never
//     be returned from the cache alone.
//   - Validation at arrival: even a version-matched entry is re-checked
//     when the single hop lands — the target must still be on the ring
//     AND still own the key (VSAdded region splits shrink regions
//     without touching the old owner). A stale arrival is not an error:
//     the request keeps routing from wherever it landed, exactly like
//     an in-flight hop whose target departed, and the stale entry is
//     dropped.
//
// Cached hits therefore return byte-identical owners to the uncached
// Ring.Lookup at every instant — only hops and latency differ — which
// is what TestCachedLookupEquivalence pins under churn and transfers.

type cacheEntry struct {
	vs  *VServer
	ver uint32
}

type cacheShard struct {
	m    map[ident.ID]cacheEntry
	fifo []ident.ID // insertion order; may hold residue of invalidated keys
	head int
}

// LookupCache is a bounded per-origin-node cache of key → owning
// virtual server. It must be Subscribe'd to the ring it serves (the
// constructor does this) so transfers and churn invalidate entries.
// Like the ring itself it is engine-owned, single-goroutine state.
type LookupCache struct {
	perNode int
	shards  []cacheShard
	ver     map[*VServer]uint32

	hits   int64 // cache hit, validated at arrival
	misses int64 // no usable entry; full routed lookup
	stale  int64 // hit that failed arrival validation
}

// NewLookupCache returns a cache holding at most perNode entries per
// origin node (default 128) and subscribes it to ring.
func NewLookupCache(ring *Ring, perNode int) *LookupCache {
	if perNode <= 0 {
		perNode = 128
	}
	c := &LookupCache{
		perNode: perNode,
		ver:     make(map[*VServer]uint32),
	}
	ring.Subscribe(c)
	return c
}

// VSAdded implements Listener. A join splits the region of the new VS's
// successor; cached entries for that successor stay version-valid but
// fail arrival validation for keys the split took away, so no bump is
// needed — the arrival check is the guard.
func (c *LookupCache) VSAdded(vs *VServer) {}

// VSRemoved implements Listener: entries naming vs become unusable.
func (c *LookupCache) VSRemoved(vs *VServer) { c.ver[vs]++ }

// VSTransferred implements Listener: vs now lives on a different node,
// so a cached single hop would go to the wrong host.
func (c *LookupCache) VSTransferred(vs *VServer, from, to *Node) { c.ver[vs]++ }

// Stats returns the cache's hit / miss / stale-arrival counters.
func (c *LookupCache) Stats() (hits, misses, stale int64) {
	return c.hits, c.misses, c.stale
}

// get returns origin's cached owner for key if a version-valid entry
// exists. Point map reads only — no allocation on the hit path.
//
//lbvet:hotpath
func (c *LookupCache) get(origin *Node, key ident.ID) (*VServer, bool) {
	if origin.Index >= len(c.shards) {
		return nil, false
	}
	e, ok := c.shards[origin.Index].m[key]
	if !ok || e.ver != c.ver[e.vs] {
		return nil, false
	}
	return e.vs, true
}

// put records that a lookup from origin resolved key to vs, evicting
// the oldest entries once the shard is full.
func (c *LookupCache) put(origin *Node, key ident.ID, vs *VServer) {
	for origin.Index >= len(c.shards) {
		c.shards = append(c.shards, cacheShard{})
	}
	sh := &c.shards[origin.Index]
	if sh.m == nil {
		sh.m = make(map[ident.ID]cacheEntry, c.perNode)
	}
	if _, exists := sh.m[key]; !exists {
		for len(sh.m) >= c.perNode && sh.head < len(sh.fifo) {
			old := sh.fifo[sh.head]
			sh.head++
			delete(sh.m, old) // no-op for invalidated residue
		}
		if sh.head > c.perNode && sh.head*2 > len(sh.fifo) {
			sh.fifo = append(sh.fifo[:0], sh.fifo[sh.head:]...)
			sh.head = 0
		}
		sh.fifo = append(sh.fifo, key)
	}
	sh.m[key] = cacheEntry{vs: vs, ver: c.ver[vs]}
}

// invalidate drops origin's entry for key (after a stale arrival).
func (c *LookupCache) invalidate(origin *Node, key ident.ID) {
	if origin.Index < len(c.shards) {
		delete(c.shards[origin.Index].m, key)
	}
}

// OnRing reports whether vs is currently a ring member. In-flight
// consumers (the lookup cache, the serving layer's replica sets) use it
// to notice a target departed while a message was travelling.
func (r *Ring) OnRing(vs *VServer) bool { return r.onRing(vs) }

// CachedLookup is Lookup accelerated by c: a version-valid cache hit
// costs a single overlay hop to the cached owner, validated on arrival
// (stale arrivals keep routing from where they landed, charging their
// hops). A miss runs the normal routed lookup and teaches the cache the
// result. A nil cache is exactly Lookup.
func (r *Ring) CachedLookup(c *LookupCache, from *Node, key ident.ID, cb func(LookupResult)) {
	if c == nil {
		r.Lookup(from, key, cb)
		return
	}
	if vs, ok := c.get(from, key); ok {
		hop := r.cfg.Latency(from, vs.Owner) + r.cfg.MinHopLatency
		r.eng.CountMessage(MsgLookupHop, hop)
		r.eng.Schedule(hop, func() {
			if r.onRing(vs) && r.RegionOf(vs).Contains(key) {
				c.hits++
				r.observeLookup(1, hop)
				cb(LookupResult{VS: vs, Hops: 1, Cost: hop})
				return
			}
			// Stale arrival: the entry outlived its usefulness between
			// our version check and the hop landing (or a join shrank
			// the region). Forget it and keep routing.
			c.stale++
			c.invalidate(from, key)
			start := vs
			if !r.onRing(vs) {
				start = r.Successor(key)
			}
			r.lookupStep(from, start, key, 1, hop, cb)
		})
		return
	}
	c.misses++
	r.Lookup(from, key, func(res LookupResult) {
		c.put(from, key, res.VS)
		cb(res)
	})
}

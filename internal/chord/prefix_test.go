package chord

import (
	"math"
	"math/rand"
	"testing"

	"p2plb/internal/ident"
	"p2plb/internal/sim"
)

func TestCommonPrefixDigits(t *testing.T) {
	cases := []struct {
		a, b ident.ID
		want int
	}{
		{0x00000000, 0x00000000, 8},
		{0x12345678, 0x12345678, 8},
		{0x12345678, 0x12345679, 7},
		{0x12345678, 0x1234567F, 7},
		{0x12345678, 0x12340000, 4},
		{0x12345678, 0x82345678, 0},
		{0xF0000000, 0x0F000000, 0},
	}
	for _, c := range cases {
		if got := commonPrefixDigits(c.a, c.b); got != c.want {
			t.Errorf("commonPrefixDigits(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Symmetry property.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := ident.ID(rng.Uint32()), ident.ID(rng.Uint32())
		if commonPrefixDigits(a, b) != commonPrefixDigits(b, a) {
			t.Fatal("commonPrefixDigits not symmetric")
		}
	}
}

func TestPrefixLookupMatchesSuccessor(t *testing.T) {
	r := newTestRing(t, 31, 64, 5)
	eng := r.Engine()
	rng := rand.New(rand.NewSource(2))
	nodes := r.AliveNodes()
	for i := 0; i < 200; i++ {
		key := ident.ID(rng.Uint32())
		from := nodes[rng.Intn(len(nodes))]
		want := r.Successor(key)
		done := false
		r.PrefixLookup(from, key, func(res LookupResult) {
			done = true
			if res.VS != want {
				t.Errorf("prefix lookup(%s) = %s, want %s", key, res.VS.ID, want.ID)
			}
		})
		eng.Run()
		if !done {
			t.Fatal("prefix lookup never completed")
		}
	}
}

func TestPrefixLookupHopCount(t *testing.T) {
	// Prefix routing resolves O(log_16 V) digits: with ~1280 VSs the
	// digit bound is ceil(log16(1280)) ≈ 3 improving hops (+1 final).
	r := newTestRing(t, 32, 256, 5)
	eng := r.Engine()
	rng := rand.New(rand.NewSource(3))
	nodes := r.AliveNodes()
	var total int
	const trials = 200
	for i := 0; i < trials; i++ {
		key := ident.ID(rng.Uint32())
		from := nodes[rng.Intn(len(nodes))]
		r.PrefixLookup(from, key, func(res LookupResult) { total += res.Hops })
		eng.Run()
	}
	avg := float64(total) / trials
	bound := math.Log(float64(r.NumVServers()))/math.Log(16) + 2
	if avg > bound {
		t.Errorf("prefix lookup averages %.2f hops, want <= %.2f", avg, bound)
	}
	if eng.MessageCount(MsgPrefixHop) == 0 {
		t.Error("prefix hops not counted")
	}
}

func TestPrefixLookupFewerHopsThanChord(t *testing.T) {
	// Base-16 digits resolve ~4 bits per hop versus Chord's ~1: prefix
	// routing should clearly beat finger routing on average.
	rPrefix := newTestRing(t, 33, 256, 5)
	rChord := newTestRing(t, 33, 256, 5)
	rng := rand.New(rand.NewSource(4))
	var hopsPrefix, hopsChord int
	const trials = 150
	for i := 0; i < trials; i++ {
		key := ident.ID(rng.Uint32())
		idx := rng.Intn(256)
		rPrefix.PrefixLookup(rPrefix.AliveNodes()[idx], key,
			func(res LookupResult) { hopsPrefix += res.Hops })
		rPrefix.Engine().Run()
		rChord.Lookup(rChord.AliveNodes()[idx], key,
			func(res LookupResult) { hopsChord += res.Hops })
		rChord.Engine().Run()
	}
	if hopsPrefix >= hopsChord {
		t.Errorf("prefix routing took %d hops total, chord %d — expected fewer", hopsPrefix, hopsChord)
	}
}

func TestPrefixLookupSingleVS(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	r.AddNodeWithIDs(-1, 10, []ident.ID{0x12345678})
	done := false
	r.PrefixLookup(r.AliveNodes()[0], 0xCAFEBABE, func(res LookupResult) {
		done = true
		if res.VS.ID != 0x12345678 {
			t.Error("wrong owner on single-VS ring")
		}
	})
	r.Engine().Run()
	if !done {
		t.Fatal("lookup did not complete")
	}
}

func TestPrefixLookupUnderChurn(t *testing.T) {
	r := newTestRing(t, 34, 64, 4)
	eng := r.Engine()
	rng := rand.New(rand.NewSource(5))
	completed := 0
	for i := 0; i < 40; i++ {
		key := ident.ID(rng.Uint32())
		from := r.AliveNodes()[rng.Intn(16)]
		r.PrefixLookup(from, key, func(res LookupResult) {
			completed++
			if !r.RegionOf(res.VS).Contains(key) {
				t.Errorf("post-churn prefix lookup returned non-owner")
			}
		})
	}
	for i := 0; i < 8; i++ {
		victims := r.AliveNodes()
		r.RemoveNode(victims[rng.Intn(len(victims)-1)+1])
		for j := 0; j < 15; j++ {
			eng.Step()
		}
	}
	eng.Run()
	if completed != 40 {
		t.Fatalf("only %d/40 prefix lookups completed under churn", completed)
	}
}

func BenchmarkPrefixLookup(b *testing.B) {
	eng := sim.NewEngine(1)
	r := NewRing(eng, Config{})
	for j := 0; j < 1024; j++ {
		r.AddNode(-1, 100, 5)
	}
	nodes := r.AliveNodes()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.PrefixLookup(nodes[rng.Intn(len(nodes))], ident.ID(rng.Uint32()), func(LookupResult) {})
		eng.Run()
	}
}

package chord

import (
	"math"
	"testing"

	"p2plb/internal/ident"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
)

// orderListener counts ring-change callbacks and remembers the
// order VSAdded fired in.
type orderListener struct {
	added       []*VServer
	removed     int
	transferred int
}

func (l *orderListener) VSAdded(vs *VServer)                  { l.added = append(l.added, vs) }
func (l *orderListener) VSRemoved(*VServer)                   { l.removed++ }
func (l *orderListener) VSTransferred(*VServer, *Node, *Node) { l.transferred++ }

// TestBulkAddMatchesIncremental pins the determinism contract of the
// bulk path: at the same seed, BulkAddNodes must produce a ring
// identical to the equivalent AddNode loop — same RNG consumption, same
// identifiers, same hosting — so experiment results are byte-identical
// whichever path populated the ring.
func TestBulkAddMatchesIncremental(t *testing.T) {
	const nodes, vsPer = 300, 5
	engA := sim.NewEngine(9)
	a := NewRing(engA, Config{})
	for i := 0; i < nodes; i++ {
		a.AddNode(-1, 100+float64(engA.Rand().Intn(900)), vsPer)
	}
	engB := sim.NewEngine(9)
	b := NewRing(engB, Config{})
	b.BulkAddNodes(nodes, vsPer,
		func(int) topology.NodeID { return -1 },
		func(int) float64 { return 100 + float64(engB.Rand().Intn(900)) })

	a.CheckInvariants()
	b.CheckInvariants()
	va, vb := a.VServers(), b.VServers()
	if len(va) != len(vb) {
		t.Fatalf("VS counts differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i].ID != vb[i].ID {
			t.Fatalf("VS %d: ID %s vs %s", i, va[i].ID, vb[i].ID)
		}
		if va[i].Owner.Index != vb[i].Owner.Index {
			t.Fatalf("VS %d: owner %d vs %d", i, va[i].Owner.Index, vb[i].Owner.Index)
		}
		if va[i].Owner.Capacity != vb[i].Owner.Capacity {
			t.Fatalf("VS %d: owner capacity %v vs %v", i, va[i].Owner.Capacity, vb[i].Owner.Capacity)
		}
	}
	na, nb := a.Nodes(), b.Nodes()
	for i := range na {
		for j := range na[i].VServers() {
			if na[i].VServers()[j].ID != nb[i].VServers()[j].ID {
				t.Fatalf("node %d hosts different VS order", i)
			}
		}
	}
}

// TestBulkAddIntoExistingRing merges a bulk batch into a ring that
// already has members and checks the listener contract: one VSAdded per
// fresh VS, in draw order, each fired against the fully merged ring.
func TestBulkAddIntoExistingRing(t *testing.T) {
	eng := sim.NewEngine(11)
	r := NewRing(eng, Config{})
	r.AddNode(-1, 100, 5)
	rec := &orderListener{}
	r.Subscribe(rec)
	nodes := r.BulkAddNodes(50, 3,
		func(int) topology.NodeID { return -1 },
		func(int) float64 { return 100 })
	r.CheckInvariants()
	if len(nodes) != 50 || r.NumVServers() != 5+150 {
		t.Fatalf("got %d nodes, %d VSs", len(nodes), r.NumVServers())
	}
	if len(rec.added) != 150 {
		t.Fatalf("VSAdded fired %d times, want 150", len(rec.added))
	}
	// Draw order groups a node's virtual servers together.
	for i, vs := range rec.added {
		if vs.Owner != nodes[i/3] {
			t.Fatalf("VSAdded %d fired for node %d, want %d", i, vs.Owner.Index, nodes[i/3].Index)
		}
		if r.RegionOf(vs).Width == 0 {
			t.Fatalf("VSAdded %d fired before the ring was consistent", i)
		}
	}
	// Index continues densely across the bulk batch.
	for i, n := range nodes {
		if n.Index != 1+i {
			t.Fatalf("node %d has index %d", i, n.Index)
		}
	}
}

// TestFirstFreeFromWrap exercises the saturation fallback scan on a
// dense cluster that straddles the 0 / 2^32−1 seam.
func TestFirstFreeFromWrap(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRing(eng, Config{})
	const top = ident.ID(math.MaxUint32)
	//lbvet:ignore identcompare constant fixture identifiers next to the seam, no wrap involved
	if _, err := r.AddNodeWithIDs(-1, 100, []ident.ID{0, 1, 2, top - 1, top}); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ start, want ident.ID }{
		{top - 1, 3}, //lbvet:ignore identcompare constant fixture identifier below the seam
		{top, 3},
		{0, 3},
		{2, 3},
		{3, 3},             // already free
		{5, 5},             // free gap mid-space
		{top - 4, top - 4}, //lbvet:ignore identcompare constant fixture identifier below the seam
	}
	for _, c := range cases {
		if got := r.firstFreeFrom(c.start); got != c.want {
			t.Errorf("firstFreeFrom(%s) = %s, want %s", c.start, got, c.want)
		}
	}
	// Empty ring: any start is free.
	empty := NewRing(sim.NewEngine(1), Config{})
	if got := empty.firstFreeFrom(42); got != 42 {
		t.Errorf("firstFreeFrom on empty ring = %s, want 42", got)
	}
}

// TestRandomFreeIDBoundedRetries forces the rejection-sampling bound:
// occupy exactly the identifiers the engine will draw so every one of
// the maxIDDraws attempts collides, and check the allocator falls back
// to the first-free-gap scan instead of spinning.
func TestRandomFreeIDBoundedRetries(t *testing.T) {
	const seed = 77
	// Replay the exact draw sequence randomFreeID will consume.
	scratch := sim.NewEngine(seed)
	draws := make([]ident.ID, maxIDDraws+1)
	for i := range draws {
		draws[i] = ident.ID(scratch.Rand().Uint32())
	}
	occupied := map[ident.ID]bool{}
	var ids []ident.ID
	for _, id := range draws[:maxIDDraws] {
		if !occupied[id] {
			occupied[id] = true
			ids = append(ids, id)
		}
	}
	// Occupy a short run after the fallback start so the scan has to
	// walk past it.
	start := draws[maxIDDraws]
	for _, id := range []ident.ID{start, start.Add(1), start.Add(2)} {
		if !occupied[id] {
			occupied[id] = true
			ids = append(ids, id)
		}
	}
	want := start
	for occupied[want] {
		want = want.Add(1)
	}

	eng := sim.NewEngine(seed)
	r := NewRing(eng, Config{})
	if _, err := r.AddNodeWithIDs(-1, 100, ids); err != nil {
		t.Fatal(err)
	}
	got := r.randomFreeID()
	if got != want {
		t.Fatalf("randomFreeID = %s, want fallback scan result %s", got, want)
	}
	if occupied[got] {
		t.Fatalf("randomFreeID returned occupied identifier %s", got)
	}

	// The bulk path's allocator must take the same fallback against its
	// pending set.
	eng2 := sim.NewEngine(seed)
	r2 := NewRing(eng2, Config{})
	used := make(map[ident.ID]struct{}, len(occupied))
	for id := range occupied {
		used[id] = struct{}{}
	}
	if got := r2.drawFreeID(used); got != want {
		t.Fatalf("drawFreeID = %s, want %s", got, want)
	}
}

// TestLazyPosCacheMixedOps drives add/remove/transfer sequences and
// checks after every step that lazily revalidated positions agree with
// the array — the invariant the epoch cache must maintain.
func TestLazyPosCacheMixedOps(t *testing.T) {
	eng := sim.NewEngine(3)
	r := NewRing(eng, Config{})
	for i := 0; i < 32; i++ {
		r.AddNode(-1, 100, 4)
	}
	rng := eng.Rand()
	for step := 0; step < 200; step++ {
		alive := r.AliveNodes()
		switch step % 4 {
		case 0:
			r.AddNode(-1, 100, 2)
		case 1:
			r.RemoveNode(alive[rng.Intn(len(alive))])
		case 2:
			from := alive[rng.Intn(len(alive))]
			to := alive[rng.Intn(len(alive))]
			if vs := from.RandomVS(rng); vs != nil {
				r.Transfer(vs, to)
			}
		case 3:
			vss := r.VServers()
			vs := vss[rng.Intn(len(vss))]
			// Positional reads through stale caches must agree with
			// ground truth.
			pred := r.Predecessor(vs)
			if r.Successor(pred.ID.Add(1)) != vs && pred != vs {
				t.Fatalf("step %d: predecessor/successor disagree", step)
			}
			if !r.RegionOf(vs).Contains(vs.ID) {
				t.Fatalf("step %d: region does not contain own ID", step)
			}
		}
		r.CheckInvariants()
	}
}

// TestPosPanicsOffRing pins the failure mode: positional queries on a
// departed virtual server are caller bugs and must fail loudly, not
// return a stale index.
func TestPosPanicsOffRing(t *testing.T) {
	r := newTestRing(t, 5, 8, 2)
	vs := r.VServers()[3]
	r.RemoveVServer(vs)
	defer func() {
		if recover() == nil {
			t.Fatal("Predecessor of a removed VS did not panic")
		}
	}()
	r.Predecessor(vs)
}

// TestTopologyLatencyRejectsNegativeUnderlay pins the churn-joiner bug:
// a node carrying the -1 "no underlay" sentinel must be rejected with a
// clear panic instead of indexing garbage in the distance cache.
func TestTopologyLatencyRejectsNegativeUnderlay(t *testing.T) {
	lat := TopologyLatency(nil) // panics before touching the distances
	a := &Node{Index: 0, Underlay: -1}
	b := &Node{Index: 1, Underlay: 3}
	if got := lat(a, a); got != 0 {
		t.Fatalf("self latency = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative underlay did not panic")
		}
	}()
	lat(a, b)
}

package chord

import (
	"testing"

	"p2plb/internal/ident"
	"p2plb/internal/sim"
)

func cacheRing(seed int64, nodes int) (*sim.Engine, *Ring) {
	eng := sim.NewEngine(seed)
	ring := NewRing(eng, Config{})
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, 1+float64(i%7), 4)
	}
	return eng, ring
}

// otherNode returns an alive node that is not n.
func otherNode(t *testing.T, r *Ring, n *Node) *Node {
	t.Helper()
	for _, cand := range r.AliveNodes() {
		if cand != n {
			return cand
		}
	}
	t.Fatal("no other node")
	return nil
}

// A warm cache turns a repeat lookup into a single hop to the same
// owner the uncached lookup resolves.
func TestCachedLookupHitSingleHop(t *testing.T) {
	eng, ring := cacheRing(1, 16)
	cache := NewLookupCache(ring, 64)
	key := ident.ID(1 << 30)
	owner := ring.Successor(key)
	from := otherNode(t, ring, owner.Owner)

	var first, second *LookupResult
	ring.CachedLookup(cache, from, key, func(res LookupResult) {
		first = &res
		ring.CachedLookup(cache, from, key, func(res2 LookupResult) { second = &res2 })
	})
	eng.Run()
	if first == nil || second == nil {
		t.Fatal("lookups did not complete")
	}
	if first.VS != owner || second.VS != owner {
		t.Fatalf("resolved %v / %v, want %v", first.VS.ID, second.VS.ID, owner.ID)
	}
	if second.Hops != 1 {
		t.Fatalf("cached hit took %d hops, want 1", second.Hops)
	}
	hits, misses, stale := cache.Stats()
	if hits != 1 || misses != 1 || stale != 0 {
		t.Fatalf("stats hits=%d misses=%d stale=%d, want 1/1/0", hits, misses, stale)
	}
}

// Invalidation on churn/transfer: after the cached owner departs the
// ring or moves host, the version check must refuse the entry — the
// cache can never by itself return a departed or re-homed VS.
func TestCacheInvalidatedOnRemoveAndTransfer(t *testing.T) {
	eng, ring := cacheRing(2, 16)
	cache := NewLookupCache(ring, 64)
	key := ident.ID(77777)
	owner := ring.Successor(key)
	from := otherNode(t, ring, owner.Owner)

	ring.CachedLookup(cache, from, key, func(LookupResult) {})
	eng.Run()

	// Transfer: same VS, new host — the cached single hop would go to
	// the wrong node, so the entry must miss.
	ring.Transfer(owner, otherNode(t, ring, owner.Owner))
	var afterTransfer *LookupResult
	ring.CachedLookup(cache, from, key, func(res LookupResult) { afterTransfer = &res })
	eng.Run()
	if afterTransfer == nil || afterTransfer.VS != owner {
		t.Fatalf("post-transfer lookup resolved %+v, want still %v", afterTransfer, owner.ID)
	}
	if _, misses, _ := stats3(cache); misses != 2 {
		t.Fatalf("transfer did not invalidate: misses = %d, want 2", misses)
	}

	// Removal: the VS leaves the ring entirely.
	ring.RemoveVServer(owner)
	var afterRemove *LookupResult
	ring.CachedLookup(cache, from, key, func(res LookupResult) { afterRemove = &res })
	eng.Run()
	if afterRemove == nil {
		t.Fatal("post-removal lookup did not complete")
	}
	if afterRemove.VS == owner {
		t.Fatal("cache returned a departed VS")
	}
	if !ring.OnRing(afterRemove.VS) || afterRemove.VS != ring.Successor(key) {
		t.Fatalf("post-removal lookup resolved %v, want %v", afterRemove.VS.ID, ring.Successor(key).ID)
	}
}

func stats3(c *LookupCache) (int64, int64, int64) { return c.Stats() }

// A version-valid hit whose owner departs while the hop is in flight
// must not deliver the departed VS: the arrival check reroutes and the
// entry is dropped.
func TestCachedLookupStaleArrivalReroutes(t *testing.T) {
	eng, ring := cacheRing(3, 16)
	cache := NewLookupCache(ring, 64)
	key := ident.ID(424242)
	owner := ring.Successor(key)
	from := otherNode(t, ring, owner.Owner)

	ring.CachedLookup(cache, from, key, func(LookupResult) {})
	eng.Run()

	var got *LookupResult
	ring.CachedLookup(cache, from, key, func(res LookupResult) { got = &res })
	// The single cached hop is now in flight; the owner's node dies
	// before it lands.
	ring.RemoveNode(owner.Owner)
	eng.Run()
	if got == nil {
		t.Fatal("lookup did not complete")
	}
	if got.VS == owner {
		t.Fatal("stale arrival delivered a departed VS")
	}
	if got.VS != ring.Successor(key) {
		t.Fatalf("rerouted to %v, want %v", got.VS.ID, ring.Successor(key).ID)
	}
	if got.Hops < 2 {
		t.Fatalf("stale arrival charged %d hops, want the reroute to add hops", got.Hops)
	}
	if _, _, stale := cache.Stats(); stale != 1 {
		t.Fatalf("stale = %d, want 1", stale)
	}
}

// The cached and uncached lookups must agree with the ground-truth
// Successor at delivery time through a long randomized interleaving of
// lookups, VS transfers and node churn.
func TestCachedLookupEquivalenceUnderChurn(t *testing.T) {
	eng, ring := cacheRing(4, 32)
	cache := NewLookupCache(ring, 64)
	rng := eng.Rand()

	// A small hot-key pool so repeats actually hit the cache.
	keys := make([]ident.ID, 48)
	for i := range keys {
		keys[i] = ident.ID(rng.Uint32())
	}

	const steps = 600
	checked := 0
	for step := 0; step < steps; step++ {
		at := sim.Time(step * 3)
		eng.Schedule(at, func() {
			nodes := ring.AliveNodes()
			from := nodes[rng.Intn(len(nodes))]
			key := keys[rng.Intn(len(keys))]
			ring.CachedLookup(cache, from, key, func(res LookupResult) {
				checked++
				if !ring.OnRing(res.VS) {
					t.Errorf("delivered VS %v is not on the ring", res.VS.ID)
				}
				if want := ring.Successor(key); res.VS != want {
					t.Errorf("resolved %v, ground truth %v", res.VS.ID, want.ID)
				}
				if res.Hops < 1 || res.Cost < sim.Time(res.Hops) {
					t.Errorf("implausible result: hops=%d cost=%d", res.Hops, res.Cost)
				}
			})
		})
		// Transfers racing in-flight lookups (same tick, after issue).
		if step%5 == 4 {
			eng.Schedule(at, func() {
				vss := ring.VServers()
				vs := vss[rng.Intn(len(vss))]
				ring.Transfer(vs, ring.AliveNodes()[rng.Intn(len(ring.AliveNodes()))])
			})
		}
		// Churn: nodes leave and join between lookups.
		if step%11 == 7 {
			eng.Schedule(at+1, func() {
				nodes := ring.AliveNodes()
				if len(nodes) > 8 {
					ring.RemoveNode(nodes[rng.Intn(len(nodes))])
				}
				ring.AddNode(-1, 1+rng.Float64()*9, 4)
			})
		}
	}
	eng.Run()
	if checked != steps {
		t.Fatalf("completed %d lookups, want %d", checked, steps)
	}
	hits, misses, _ := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("interleaving did not exercise the cache: hits=%d misses=%d", hits, misses)
	}
	ring.CheckInvariants()
}

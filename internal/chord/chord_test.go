package chord

import (
	"math"
	"math/rand"
	"testing"

	"p2plb/internal/ident"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
)

func newTestRing(t *testing.T, seed int64, nodes, vsPerNode int) *Ring {
	t.Helper()
	eng := sim.NewEngine(seed)
	r := NewRing(eng, Config{})
	for i := 0; i < nodes; i++ {
		r.AddNode(-1, 100, vsPerNode)
	}
	r.CheckInvariants()
	return r
}

func TestAddNodeCreatesVSs(t *testing.T) {
	r := newTestRing(t, 1, 16, 5)
	if got := r.NumVServers(); got != 80 {
		t.Fatalf("NumVServers = %d, want 80", got)
	}
	if len(r.AliveNodes()) != 16 {
		t.Fatalf("AliveNodes = %d", len(r.AliveNodes()))
	}
	for _, n := range r.Nodes() {
		if len(n.VServers()) != 5 {
			t.Fatalf("node %d hosts %d VSs", n.Index, len(n.VServers()))
		}
		for _, vs := range n.VServers() {
			if vs.Owner != n {
				t.Fatal("owner back-link wrong")
			}
		}
	}
}

func TestRegionsPartitionCircle(t *testing.T) {
	r := newTestRing(t, 2, 32, 4)
	var total uint64
	for _, vs := range r.VServers() {
		reg := r.RegionOf(vs)
		if !reg.Contains(vs.ID) {
			t.Fatalf("region %v does not contain own id %s", reg, vs.ID)
		}
		total += reg.Width
	}
	if total != ident.SpaceSize {
		t.Fatalf("regions cover %d, want %d", total, ident.SpaceSize)
	}
}

func TestSuccessorOwnership(t *testing.T) {
	r := newTestRing(t, 3, 20, 5)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		key := ident.ID(rng.Uint32())
		vs := r.Successor(key)
		if !r.RegionOf(vs).Contains(key) {
			t.Fatalf("successor of %s is %s but region %v misses the key",
				key, vs.ID, r.RegionOf(vs))
		}
	}
}

func TestSuccessorEmptyRing(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	if r.Successor(42) != nil {
		t.Fatal("Successor on empty ring should be nil")
	}
}

func TestAddNodeWithIDs(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	n, err := r.AddNodeWithIDs(-1, 10, []ident.ID{100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.VServers()) != 3 {
		t.Fatal("wrong VS count")
	}
	if _, err := r.AddNodeWithIDs(-1, 10, []ident.ID{200}); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
	if _, err := r.AddNodeWithIDs(-1, 10, []ident.ID{400, 400}); err == nil {
		t.Fatal("duplicate id within request must be rejected")
	}
	r.CheckInvariants()
	// Single-node predecessor wraps to itself via ring order.
	vs := r.Successor(150)
	if vs.ID != 200 {
		t.Fatalf("Successor(150) = %s, want 00000c8", vs.ID)
	}
}

func TestSingleVSOwnsEverything(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	r.AddNodeWithIDs(-1, 10, []ident.ID{5000})
	vs := r.VServers()[0]
	if !r.RegionOf(vs).IsFull() {
		t.Fatalf("single VS region = %v, want full", r.RegionOf(vs))
	}
	for _, key := range []ident.ID{0, 5000, 5001, 0xffffffff} {
		if r.Successor(key) != vs {
			t.Fatalf("key %s not owned by the only VS", key)
		}
	}
}

func TestNodeLoadAccessors(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	n, _ := r.AddNodeWithIDs(-1, 10, []ident.ID{1, 2, 3})
	loads := []float64{5, 2, 9}
	for i, vs := range n.VServers() {
		vs.Load = loads[i]
	}
	if got := n.TotalLoad(); got != 16 {
		t.Fatalf("TotalLoad = %v", got)
	}
	min, ok := n.MinVSLoad()
	if !ok || min != 2 {
		t.Fatalf("MinVSLoad = %v/%v", min, ok)
	}
	empty := &Node{}
	if _, ok := empty.MinVSLoad(); ok {
		t.Fatal("empty node should report no min load")
	}
	if empty.RandomVS(rand.New(rand.NewSource(1))) != nil {
		t.Fatal("empty node RandomVS should be nil")
	}
	if empty.TotalLoad() != 0 {
		t.Fatal("empty node load should be 0")
	}
}

func TestRemoveNodeAbsorbsLoad(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	a, _ := r.AddNodeWithIDs(-1, 10, []ident.ID{100})
	b, _ := r.AddNodeWithIDs(-1, 10, []ident.ID{200})
	a.VServers()[0].Load = 7
	b.VServers()[0].Load = 3
	r.RemoveNode(a)
	r.CheckInvariants()
	if a.Alive {
		t.Fatal("removed node still alive")
	}
	if len(r.VServers()) != 1 {
		t.Fatalf("VS count = %d", len(r.VServers()))
	}
	if got := b.VServers()[0].Load; got != 10 {
		t.Fatalf("successor load = %v, want 10 (absorbed)", got)
	}
	if !r.RegionOf(b.VServers()[0]).IsFull() {
		t.Fatal("survivor should own the full circle")
	}
	// Removing again is a no-op.
	r.RemoveNode(a)
	r.CheckInvariants()
}

func TestRemoveMiddleNodeRegions(t *testing.T) {
	r := newTestRing(t, 5, 10, 3)
	nodes := r.AliveNodes()
	victim := nodes[4]
	before := r.NumVServers()
	r.RemoveNode(victim)
	r.CheckInvariants()
	if r.NumVServers() != before-3 {
		t.Fatalf("VS count %d after removal, want %d", r.NumVServers(), before-3)
	}
	var total uint64
	for _, vs := range r.VServers() {
		total += r.RegionOf(vs).Width
	}
	if total != ident.SpaceSize {
		t.Fatal("regions no longer partition the circle")
	}
}

func TestTransferKeepsRing(t *testing.T) {
	r := newTestRing(t, 6, 8, 4)
	nodes := r.AliveNodes()
	from, to := nodes[0], nodes[1]
	vs := from.VServers()[0]
	vs.Load = 11
	id := vs.ID
	regionBefore := r.RegionOf(vs)
	r.Transfer(vs, to)
	r.CheckInvariants()
	if vs.Owner != to {
		t.Fatal("owner not updated")
	}
	if len(from.VServers()) != 3 || len(to.VServers()) != 5 {
		t.Fatalf("host lists wrong: %d/%d", len(from.VServers()), len(to.VServers()))
	}
	if vs.ID != id || r.RegionOf(vs) != regionBefore || vs.Load != 11 {
		t.Fatal("transfer must not change identifier, region, or load")
	}
	// Self transfer is a no-op.
	r.Transfer(vs, to)
	r.CheckInvariants()
}

type recordingListener struct {
	added, removed int
	transferred    int
}

func (l *recordingListener) VSAdded(*VServer)                     { l.added++ }
func (l *recordingListener) VSRemoved(*VServer)                   { l.removed++ }
func (l *recordingListener) VSTransferred(*VServer, *Node, *Node) { l.transferred++ }

func TestListeners(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	var l recordingListener
	r.Subscribe(&l)
	a := r.AddNode(-1, 10, 3)
	b := r.AddNode(-1, 10, 2)
	r.Transfer(a.VServers()[0], b)
	r.RemoveNode(a)
	if l.added != 5 || l.transferred != 1 || l.removed != 2 {
		t.Fatalf("listener saw %d/%d/%d, want 5/1/2", l.added, l.transferred, l.removed)
	}
}

func TestLookupRoutedMatchesSuccessor(t *testing.T) {
	r := newTestRing(t, 7, 64, 5)
	eng := r.Engine()
	rng := rand.New(rand.NewSource(3))
	nodes := r.AliveNodes()
	for i := 0; i < 200; i++ {
		key := ident.ID(rng.Uint32())
		from := nodes[rng.Intn(len(nodes))]
		want := r.Successor(key)
		done := false
		r.Lookup(from, key, func(res LookupResult) {
			done = true
			if res.VS != want {
				t.Errorf("lookup(%s) = %s, want %s", key, res.VS.ID, want.ID)
			}
			if res.Hops < 1 || res.Cost < sim.Time(res.Hops) {
				t.Errorf("implausible hops/cost: %d/%d", res.Hops, res.Cost)
			}
		})
		eng.Run()
		if !done {
			t.Fatal("lookup never completed")
		}
	}
}

func TestLookupHopCountLogarithmic(t *testing.T) {
	// With N VSs, Chord lookups should take O(log2 N) hops; check the
	// average is in a sane band.
	r := newTestRing(t, 8, 256, 4) // 1024 VSs
	eng := r.Engine()
	rng := rand.New(rand.NewSource(4))
	nodes := r.AliveNodes()
	var totalHops int
	const trials = 300
	for i := 0; i < trials; i++ {
		key := ident.ID(rng.Uint32())
		from := nodes[rng.Intn(len(nodes))]
		r.Lookup(from, key, func(res LookupResult) { totalHops += res.Hops })
		eng.Run()
	}
	avg := float64(totalHops) / trials
	logN := math.Log2(1024)
	if avg < 1 || avg > 2*logN {
		t.Errorf("average hops %.2f outside (1, %.1f)", avg, 2*logN)
	}
}

func TestLookupCountsMessages(t *testing.T) {
	r := newTestRing(t, 9, 32, 4)
	eng := r.Engine()
	r.Lookup(r.AliveNodes()[0], 0x12345678, func(LookupResult) {})
	eng.Run()
	if eng.MessageCount(MsgLookupHop) < 1 {
		t.Fatal("lookup hops not counted")
	}
}

func TestLookupSurvivesChurn(t *testing.T) {
	// Remove nodes while lookups are in flight; every lookup must still
	// terminate and return the then-current owner of the key.
	r := newTestRing(t, 10, 64, 4)
	eng := r.Engine()
	rng := rand.New(rand.NewSource(5))
	nodes := r.AliveNodes()
	completed := 0
	for i := 0; i < 50; i++ {
		key := ident.ID(rng.Uint32())
		from := nodes[rng.Intn(16)]
		r.Lookup(from, key, func(res LookupResult) {
			completed++
			if !r.RegionOf(res.VS).Contains(key) {
				t.Errorf("post-churn lookup returned non-owner of %s", key)
			}
		})
	}
	// Interleave removals with event processing.
	for i := 0; i < 10; i++ {
		victim := r.AliveNodes()[rng.Intn(len(r.AliveNodes())-1)+1]
		r.RemoveNode(victim)
		for j := 0; j < 20; j++ {
			eng.Step()
		}
	}
	eng.Run()
	if completed != 50 {
		t.Fatalf("only %d/50 lookups completed under churn", completed)
	}
}

func TestConstantAndTopologyLatency(t *testing.T) {
	cl := ConstantLatency(5)
	if cl(nil, nil) != 5 {
		t.Fatal("ConstantLatency wrong")
	}
}

func TestLookupFromVSLessNode(t *testing.T) {
	r := newTestRing(t, 11, 8, 3)
	n := r.AddNode(-1, 10, 0) // observer node with no virtual servers
	done := false
	r.Lookup(n, 777, func(res LookupResult) {
		done = true
		if !r.RegionOf(res.VS).Contains(777) {
			t.Error("wrong owner")
		}
	})
	r.Engine().Run()
	if !done {
		t.Fatal("lookup from VS-less node did not complete")
	}
}

func TestRandomVSDistribution(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	n, _ := r.AddNodeWithIDs(-1, 10, []ident.ID{1, 2, 3, 4})
	rng := rand.New(rand.NewSource(6))
	counts := map[ident.ID]int{}
	for i := 0; i < 4000; i++ {
		counts[n.RandomVS(rng).ID]++
	}
	for id, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("VS %s chosen %d times, want ~1000", id, c)
		}
	}
}

func BenchmarkBuildRing4096x5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		r := NewRing(eng, Config{})
		for j := 0; j < 4096; j++ {
			r.AddNode(-1, 100, 5)
		}
	}
}

func BenchmarkRoutedLookup(b *testing.B) {
	eng := sim.NewEngine(1)
	r := NewRing(eng, Config{})
	for j := 0; j < 1024; j++ {
		r.AddNode(-1, 100, 5)
	}
	nodes := r.AliveNodes()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(nodes[rng.Intn(len(nodes))], ident.ID(rng.Uint32()), func(LookupResult) {})
		eng.Run()
	}
}

func TestTopologyLatencyModel(t *testing.T) {
	g, err := topology.Generate(topology.Params{
		TransitDomains:        2,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		StubDomainSizeMean:    4,
		TransitEdgeProb:       0.5,
		TransitDomainEdgeProb: 1,
		StubEdgeProb:          0.5,
		Seed:                  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := topology.NewDistancesMetric(g, topology.LatencyMetric)
	lat := TopologyLatency(dist)
	eng := sim.NewEngine(1)
	ring := NewRing(eng, Config{Latency: lat})
	stubs := g.StubNodes()
	a := ring.AddNode(stubs[0], 10, 2)
	b := ring.AddNode(stubs[len(stubs)-1], 10, 2)
	c := ring.AddNode(stubs[0], 10, 2) // co-located with a
	if got := lat(a, a); got != 0 {
		t.Errorf("self latency = %d", got)
	}
	if got := lat(a, c); got != 0 {
		t.Errorf("co-located latency = %d", got)
	}
	want := sim.Time(dist.Between(stubs[0], stubs[len(stubs)-1]))
	if got := lat(a, b); got != want {
		t.Errorf("latency a-b = %d, want %d", got, want)
	}
	if got := lat(b, a); got != want {
		t.Errorf("latency not symmetric: %d vs %d", lat(b, a), want)
	}
	// Routed lookups under the topology model accumulate underlay cost.
	done := false
	ring.Lookup(a, 0x55555555, func(res LookupResult) {
		done = true
		if res.Cost < sim.Time(res.Hops) {
			t.Errorf("cost %d below hop floor %d", res.Cost, res.Hops)
		}
	})
	eng.Run()
	if !done {
		t.Fatal("lookup under topology latency never completed")
	}
}

// TestCheckConservationClean verifies the checker accepts a healthy ring
// through the legitimate membership operations: transfers (load moves,
// total unchanged), crashes (successor absorbs the departed load) and
// joins (new VSs enter with zero load).
func TestCheckConservationClean(t *testing.T) {
	r := NewRing(sim.NewEngine(1), Config{})
	for i := 0; i < 5; i++ {
		r.AddNode(-1, 100, 3)
	}
	for i, vs := range r.VServers() {
		vs.Load = float64(i + 1)
	}
	base := r.SnapshotConservation()
	if base.NumVS != 15 {
		t.Fatalf("snapshot NumVS = %d, want 15", base.NumVS)
	}
	if err := r.CheckConservation(base); err != nil {
		t.Fatalf("fresh ring fails conservation: %v", err)
	}

	r.Transfer(r.VServers()[0], r.Nodes()[4])
	if err := r.CheckConservation(base); err != nil {
		t.Fatalf("after transfer: %v", err)
	}

	r.RemoveNode(r.Nodes()[2])
	if err := r.CheckConservation(base); err != nil {
		t.Fatalf("after crash: %v", err)
	}

	r.AddNode(-1, 80, 2)
	if err := r.CheckConservation(base); err != nil {
		t.Fatalf("after join: %v", err)
	}
}

// TestCheckConservationViolations manufactures each failure mode the
// checker exists to catch and asserts it is reported.
func TestCheckConservationViolations(t *testing.T) {
	build := func() *Ring {
		r := NewRing(sim.NewEngine(2), Config{})
		for i := 0; i < 3; i++ {
			r.AddNode(-1, 100, 2)
		}
		for _, vs := range r.VServers() {
			vs.Load = 10
		}
		return r
	}

	r := build()
	base := r.SnapshotConservation()

	// Lost: the owner's book no longer lists the VS.
	r1 := build()
	n := r1.Nodes()[0]
	n.vservers = n.vservers[1:]
	if err := r1.CheckConservation(base); err == nil {
		t.Error("lost VS not detected")
	}

	// Double-hosted: a second node's book lists a VS it does not own.
	r2 := build()
	stray := r2.Nodes()[0].vservers[0]
	r2.Nodes()[1].vservers = append(r2.Nodes()[1].vservers, stray)
	if err := r2.CheckConservation(base); err == nil {
		t.Error("double-hosted VS not detected")
	}

	// Load drift: total load changed with no membership excuse.
	r3 := build()
	r3.VServers()[0].Load += 7
	if err := r3.CheckConservation(base); err == nil {
		t.Error("load drift not detected")
	}

	// Negative load.
	r4 := build()
	r4.VServers()[0].Load = -1
	if err := r4.CheckConservation(r4.SnapshotConservation()); err == nil {
		t.Error("negative load not detected")
	}

	// Dead owner still holding a live VS.
	r5 := build()
	r5.Nodes()[0].Alive = false
	if err := r5.CheckConservation(base); err == nil {
		t.Error("dead owner not detected")
	}
}

package chord

import (
	"p2plb/internal/ident"
	"p2plb/internal/sim"
)

// This file implements Pastry/Tapestry-style prefix routing over the
// same ring of virtual servers. The paper notes (§4.3) that its
// techniques "are applicable or easily adapted to other DHTs such as
// Pastry and Tapestry"; everything above the lookup layer (the K-nary
// tree, LBI, VSA, VST) only needs *some* O(log N) routed lookup and the
// successor ownership rule, so swapping Chord's finger routing for
// digit-prefix routing changes nothing else. PrefixLookup demonstrates
// that: same ownership semantics, different routing geometry.

// PrefixDigitBits is the digit width b of the prefix routing (base 2^b
// = 16, Pastry's default).
const PrefixDigitBits = 4

// Message kind counted on the engine.
const MsgPrefixHop = "chord.prefix-hop"

// commonPrefixDigits returns how many leading base-2^b digits a and b
// share.
func commonPrefixDigits(a, b ident.ID) int {
	x := uint32(a) ^ uint32(b)
	if x == 0 {
		return ident.Bits / PrefixDigitBits
	}
	n := 0
	for shift := ident.Bits - PrefixDigitBits; shift >= 0; shift -= PrefixDigitBits {
		if x>>uint(shift)&0xF != 0 {
			break
		}
		n++
	}
	return n
}

// prefixNext returns the next hop for key from cur under prefix
// routing: a live VS whose identifier shares a strictly longer digit
// prefix with key, preferring the longest achievable improvement
// (Pastry's routing-table step). It returns nil when cur's prefix
// cannot be improved — the key's owner is then one direct hop away.
func (r *Ring) prefixNext(cur *VServer, key ident.ID) *VServer {
	curLen := commonPrefixDigits(cur.ID, key)
	for l := ident.Bits / PrefixDigitBits; l > curLen; l-- {
		if vs := r.bestInPrefixBlock(key, l); vs != nil && vs != cur {
			return vs
		}
	}
	return nil
}

// bestInPrefixBlock returns a VS whose identifier shares at least l
// leading digits with key (the first one in the key's aligned l-digit
// block), or nil if the block holds no VS.
func (r *Ring) bestInPrefixBlock(key ident.ID, l int) *VServer {
	shift := uint(ident.Bits - l*PrefixDigitBits)
	if l*PrefixDigitBits >= ident.Bits {
		if vs, ok := r.findVS(key); ok {
			return vs
		}
		return nil
	}
	blockStart := ident.ID(uint32(key) >> shift << shift)
	blockWidth := uint64(1) << shift
	// First VS at or after blockStart.
	vs := r.Successor(blockStart)
	if vs == nil {
		return nil
	}
	if blockStart.Dist(vs.ID) >= blockWidth {
		return nil // block holds no VS
	}
	return vs
}

// PrefixLookup routes a lookup for key with Pastry-style prefix routing
// and delivers the key's owner (the successor, as everywhere in this
// ring). Each overlay hop is counted as MsgPrefixHop and charged the
// inter-host latency.
func (r *Ring) PrefixLookup(from *Node, key ident.ID, cb func(LookupResult)) {
	if len(r.vss) == 0 {
		panic("chord: prefix lookup on empty ring")
	}
	var cur *VServer
	if len(from.vservers) > 0 {
		cur = from.vservers[0]
	} else {
		cur = r.Successor(ident.ID(r.eng.Rand().Uint32()))
	}
	r.prefixStep(cur, key, 0, 0, cb)
}

func (r *Ring) prefixStep(cur *VServer, key ident.ID, hops int, cost sim.Time, cb func(LookupResult)) {
	next := r.prefixNext(cur, key)
	if next == nil {
		// No prefix improvement possible: the owner is the key's
		// successor; hand over directly (one final hop unless cur
		// already owns the key).
		owner := r.Successor(key)
		if owner == cur {
			r.observeLookup(hops, cost)
			cb(LookupResult{VS: cur, Hops: hops, Cost: cost})
			return
		}
		hop := r.cfg.Latency(cur.Owner, owner.Owner) + r.cfg.MinHopLatency
		r.eng.CountMessage(MsgPrefixHop, hop)
		r.eng.Schedule(hop, func() {
			r.observeLookup(hops+1, cost+hop)
			cb(LookupResult{VS: r.Successor(key), Hops: hops + 1, Cost: cost + hop})
		})
		return
	}
	hop := r.cfg.Latency(cur.Owner, next.Owner) + r.cfg.MinHopLatency
	r.eng.CountMessage(MsgPrefixHop, hop)
	r.eng.Schedule(hop, func() {
		// Restart from the current view if next left the ring mid-hop.
		if !r.onRing(next) {
			r.prefixStep(r.Successor(key), key, hops+1, cost+hop, cb)
			return
		}
		r.prefixStep(next, key, hops+1, cost+hop, cb)
	})
}

// Package chord simulates a Chord DHT whose physical nodes each host
// multiple virtual servers (VS), the substrate the paper's load balancer
// runs on.
//
// A virtual server is a first-class ring participant: it has its own
// identifier and owns the arc (predecessor, self] of the 32-bit space.
// A physical node hosts several virtual servers and therefore owns
// several non-contiguous arcs (Figure 1 of the paper). Transferring a
// virtual server between physical nodes re-homes the VS — a leave
// followed by a join with the same identifier — so the ring structure is
// unchanged; only the hosting changes.
//
// The simulator keeps a globally consistent ring (sorted VS list) and
// models the *cost* of distributed operation explicitly: lookups are
// routed hop by hop through on-demand finger tables, every protocol
// message is counted on the sim.Engine, and each overlay hop is charged
// the underlay latency between the hosting physical nodes. Membership
// churn (join/leave/crash) updates the ring instantly and fires listener
// callbacks; the soft-state repair the paper relies on lives in the
// K-nary tree layer above.
package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"p2plb/internal/ident"
	"p2plb/internal/metrics"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
)

// VServer is a virtual server: one ring participant.
type VServer struct {
	ID    ident.ID
	Owner *Node   // hosting physical node; changes on transfer
	Load  float64 // current load attributed to this VS's region

	// ringPos caches this VS's index in Ring.vss; it is only valid while
	// posEpoch equals the ring's current epoch. Ring.pos revalidates a
	// stale cache with a binary search on ID, so membership changes cost
	// O(log n) amortized per affected VS instead of an eager O(n)
	// suffix rewrite per insert/delete.
	ringPos  int
	posEpoch uint64
}

// Node is a physical DHT node.
type Node struct {
	Index    int             // dense, stable index assigned at creation
	Underlay topology.NodeID // position in the underlay topology (-1 if none)
	Capacity float64
	Alive    bool

	vservers []*VServer
}

// VServers returns the virtual servers currently hosted by the node.
// The returned slice must not be modified.
func (n *Node) VServers() []*VServer { return n.vservers }

// TotalLoad returns L_i: the sum of the loads of the node's virtual
// servers.
func (n *Node) TotalLoad() float64 {
	var l float64
	for _, vs := range n.vservers {
		l += vs.Load
	}
	return l
}

// MinVSLoad returns L_{i,min}: the smallest virtual-server load on the
// node, and false if the node hosts no virtual servers.
func (n *Node) MinVSLoad() (float64, bool) {
	if len(n.vservers) == 0 {
		return 0, false
	}
	min := n.vservers[0].Load
	for _, vs := range n.vservers[1:] {
		if vs.Load < min {
			min = vs.Load
		}
	}
	return min, true
}

// NewStandaloneNode returns a physical node that belongs to no ring:
// it hosts the given virtual servers (their Owner back-links are set)
// but takes part in no ring bookkeeping. The multi-process deployment
// uses standalone nodes to run the classification and shed-subset
// machinery over a daemon's local inventory, where the global ring
// exists only as the union of all daemons' books.
func NewStandaloneNode(index int, capacity float64, vss []*VServer) *Node {
	n := &Node{Index: index, Underlay: -1, Capacity: capacity, Alive: true, vservers: vss}
	for _, vs := range vss {
		vs.Owner = n
	}
	return n
}

// RandomVS returns a uniformly random hosted virtual server, or nil if
// the node hosts none. The paper has each node report through one
// randomly chosen VS to avoid redundant reports.
func (n *Node) RandomVS(rng *rand.Rand) *VServer {
	if len(n.vservers) == 0 {
		return nil
	}
	return n.vservers[rng.Intn(len(n.vservers))]
}

// Listener receives ring-change notifications. The K-nary tree layer
// uses them to migrate or drop KT nodes planted in virtual servers.
type Listener interface {
	// VSAdded fires when a virtual server joins the ring.
	VSAdded(vs *VServer)
	// VSRemoved fires when a virtual server leaves the ring (its region
	// is absorbed by its successor).
	VSRemoved(vs *VServer)
	// VSTransferred fires when a virtual server moves between physical
	// nodes (ring structure unchanged).
	VSTransferred(vs *VServer, from, to *Node)
}

// LatencyFunc returns the message latency between two physical nodes, in
// simulation time units.
type LatencyFunc func(a, b *Node) sim.Time

// ConstantLatency returns a LatencyFunc charging c per message.
func ConstantLatency(c sim.Time) LatencyFunc {
	return func(a, b *Node) sim.Time { return c }
}

// TopologyLatency charges the underlay shortest-path distance between
// the hosting nodes' positions. Every node on a topology-backed ring
// must have a real underlay position: a negative Underlay (the "no
// underlay" sentinel) would silently index garbage in the distance
// cache, so it panics with a diagnosable message instead.
func TopologyLatency(d *topology.Distances) LatencyFunc {
	return func(a, b *Node) sim.Time {
		if a == b || a.Underlay == b.Underlay {
			return 0
		}
		if a.Underlay < 0 || b.Underlay < 0 {
			panic(fmt.Sprintf("chord: TopologyLatency between nodes %d and %d with underlay positions %d and %d; every node on a topology-backed ring needs a real underlay position",
				a.Index, b.Index, a.Underlay, b.Underlay))
		}
		return sim.Time(d.Between(a.Underlay, b.Underlay))
	}
}

// Config parameterizes a ring.
type Config struct {
	// Latency is the inter-node message latency model. nil means
	// ConstantLatency(1).
	Latency LatencyFunc
	// MinHopLatency is added to every overlay hop so that co-located
	// nodes still spend nonzero time per hop. Default 1.
	MinHopLatency sim.Time
}

// Ring is the Chord overlay.
type Ring struct {
	eng       *sim.Engine
	cfg       Config
	nodes     []*Node
	vss       []*VServer // alive virtual servers, sorted by ID
	listeners []Listener

	// epoch counts membership changes (VS insertions and removals). It
	// starts at 1 and only grows, so a VServer whose posEpoch matches it
	// is guaranteed to be on the ring with a correct ringPos; everything
	// else revalidates lazily (see pos).
	epoch uint64

	// Cached lookup metrics (filled on first completed lookup once the
	// engine carries a registry).
	mLookupHops *metrics.Histogram
	mLookupLat  *metrics.Histogram
}

// Message kinds counted on the engine.
const (
	MsgLookupHop = "chord.lookup-hop"
)

// NewRing returns an empty ring driven by eng.
func NewRing(eng *sim.Engine, cfg Config) *Ring {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(1)
	}
	if cfg.MinHopLatency == 0 {
		cfg.MinHopLatency = 1
	}
	return &Ring{eng: eng, cfg: cfg, epoch: 1}
}

// Engine returns the simulation engine driving the ring.
func (r *Ring) Engine() *sim.Engine { return r.eng }

// Subscribe registers a ring-change listener.
func (r *Ring) Subscribe(l Listener) { r.listeners = append(r.listeners, l) }

// Latency returns the configured message latency between two nodes.
func (r *Ring) Latency(a, b *Node) sim.Time { return r.cfg.Latency(a, b) }

// Nodes returns all physical nodes ever added, including dead ones
// (check Alive). The returned slice must not be modified.
func (r *Ring) Nodes() []*Node { return r.nodes }

// AliveNodes returns the physical nodes currently in the system.
func (r *Ring) AliveNodes() []*Node {
	out := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out
}

// VServers returns the live virtual servers in ring order. The returned
// slice must not be modified.
func (r *Ring) VServers() []*VServer { return r.vss }

// NumVServers returns the number of live virtual servers.
func (r *Ring) NumVServers() int { return len(r.vss) }

// AddNode creates a physical node hosting numVS virtual servers with
// identifiers drawn from the engine RNG, and joins them to the ring.
func (r *Ring) AddNode(underlay topology.NodeID, capacity float64, numVS int) *Node {
	n := &Node{
		Index:    len(r.nodes),
		Underlay: underlay,
		Capacity: capacity,
		Alive:    true,
	}
	r.nodes = append(r.nodes, n)
	for i := 0; i < numVS; i++ {
		r.addVS(n, r.randomFreeID())
	}
	return n
}

// AddNodeWithIDs is AddNode with caller-chosen VS identifiers (tests and
// deterministic scenarios). Duplicate identifiers are rejected.
func (r *Ring) AddNodeWithIDs(underlay topology.NodeID, capacity float64, ids []ident.ID) (*Node, error) {
	for _, id := range ids {
		if _, ok := r.findVS(id); ok {
			return nil, fmt.Errorf("chord: duplicate VS id %s", id)
		}
	}
	seen := map[ident.ID]bool{}
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("chord: duplicate VS id %s in request", id)
		}
		seen[id] = true
	}
	n := &Node{
		Index:    len(r.nodes),
		Underlay: underlay,
		Capacity: capacity,
		Alive:    true,
	}
	r.nodes = append(r.nodes, n)
	for _, id := range ids {
		r.addVS(n, id)
	}
	return n, nil
}

// maxIDDraws bounds the rejection sampling for a free identifier. Past
// it the space is dense enough that scanning for the first free gap is
// cheaper (and guaranteed to terminate) — rejection sampling alone
// spins unboundedly as the space saturates.
const maxIDDraws = 64

func (r *Ring) randomFreeID() ident.ID {
	if uint64(len(r.vss)) >= ident.SpaceSize {
		panic("chord: identifier space exhausted")
	}
	for i := 0; i < maxIDDraws; i++ {
		id := ident.ID(r.eng.Rand().Uint32())
		if _, ok := r.findVS(id); !ok {
			return id
		}
	}
	// Near saturation: one more draw picks a random start, the scan
	// takes the first free identifier clockwise from it.
	return r.firstFreeFrom(ident.ID(r.eng.Rand().Uint32()))
}

// firstFreeFrom returns the first identifier at or clockwise after
// start that no virtual server holds. The caller guarantees the space
// is not exhausted.
func (r *Ring) firstFreeFrom(start ident.ID) ident.ID {
	n := len(r.vss)
	if n == 0 {
		return start
	}
	pos := r.searchID(start)
	cand := start
	// Walk the occupied identifiers clockwise from start; the first one
	// that does not match the running candidate leaves a gap.
	for i := 0; i < n; i++ {
		if r.vss[(pos+i)%n].ID != cand {
			return cand
		}
		cand = cand.Add(1)
	}
	return cand
}

// searchID returns the index of the first VS with identifier >= id
// (len(r.vss) if none), the shared binary search under every positional
// operation.
func (r *Ring) searchID(id ident.ID) int {
	return sort.Search(len(r.vss), func(i int) bool { return r.vss[i].ID >= id }) //lbvet:ignore identcompare binary search over the canonical ID-sorted ring array; wrap is a caller concern
}

// pos returns vs's index in the ID-sorted array, revalidating a stale
// cache with a binary search. It panics if vs is not on the ring —
// positional queries on departed virtual servers are caller bugs.
func (r *Ring) pos(vs *VServer) int {
	if vs.posEpoch == r.epoch {
		return vs.ringPos
	}
	p := r.searchID(vs.ID)
	if p >= len(r.vss) || r.vss[p] != vs {
		panic(fmt.Sprintf("chord: position query for VS %s which is not on the ring", vs.ID))
	}
	vs.ringPos = p
	vs.posEpoch = r.epoch
	return p
}

// onRing reports whether vs is currently a ring member, refreshing its
// position cache when it is. In-flight messages use it to notice that a
// hop target departed while the message was travelling.
func (r *Ring) onRing(vs *VServer) bool {
	if vs.posEpoch == r.epoch {
		return true
	}
	p := r.searchID(vs.ID)
	if p >= len(r.vss) || r.vss[p] != vs {
		return false
	}
	vs.ringPos = p
	vs.posEpoch = r.epoch
	return true
}

func (r *Ring) addVS(n *Node, id ident.ID) *VServer {
	vs := &VServer{ID: id, Owner: n}
	pos := r.searchID(id)
	r.vss = append(r.vss, nil)
	copy(r.vss[pos+1:], r.vss[pos:])
	r.vss[pos] = vs
	r.epoch++
	vs.ringPos = pos
	vs.posEpoch = r.epoch
	n.vservers = append(n.vservers, vs)
	for _, l := range r.listeners {
		l.VSAdded(vs)
	}
	return vs
}

// BulkAddNodes creates count physical nodes, each hosting numVS virtual
// servers with identifiers drawn from the engine RNG, and joins them to
// the ring with a single sorted merge — O(m log m + n) for m new VSs
// over n existing ones, against O(n·m) for the incremental AddNode
// loop. The underlay and capacity callbacks are invoked once per node
// in index order; capacity draws and identifier draws interleave in
// exactly the order the equivalent AddNode loop consumes the engine
// RNG, so a bulk-built ring is identical to an incrementally built one
// at the same seed.
func (r *Ring) BulkAddNodes(count, numVS int, underlay func(i int) topology.NodeID, capacity func(i int) float64) []*Node {
	used := make(map[ident.ID]struct{}, len(r.vss)+count*numVS)
	for _, vs := range r.vss {
		used[vs.ID] = struct{}{}
	}
	nodes := make([]*Node, 0, count)
	fresh := make([]*VServer, 0, count*numVS) // draw order
	for i := 0; i < count; i++ {
		u := underlay(i)
		c := capacity(i)
		n := &Node{
			Index:    len(r.nodes),
			Underlay: u,
			Capacity: c,
			Alive:    true,
		}
		r.nodes = append(r.nodes, n)
		nodes = append(nodes, n)
		for v := 0; v < numVS; v++ {
			vs := &VServer{ID: r.drawFreeID(used), Owner: n}
			used[vs.ID] = struct{}{}
			n.vservers = append(n.vservers, vs)
			fresh = append(fresh, vs)
		}
	}
	if len(fresh) == 0 {
		return nodes
	}
	sorted := append([]*VServer(nil), fresh...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID }) //lbvet:ignore identcompare canonical sorted order of the ring array, not ring distance

	merged := make([]*VServer, 0, len(r.vss)+len(sorted))
	i, j := 0, 0
	for i < len(r.vss) && j < len(sorted) {
		if r.vss[i].ID < sorted[j].ID { //lbvet:ignore identcompare sorted-merge order of the canonical ring array
			merged = append(merged, r.vss[i])
			i++
		} else {
			merged = append(merged, sorted[j])
			j++
		}
	}
	merged = append(merged, r.vss[i:]...)
	merged = append(merged, sorted[j:]...)
	r.vss = merged
	r.epoch++
	for p, vs := range r.vss {
		vs.ringPos = p
		vs.posEpoch = r.epoch
	}
	// Listeners observe the same joins the incremental path would fire,
	// in draw order, each against the fully merged ring.
	for _, vs := range fresh {
		for _, l := range r.listeners {
			l.VSAdded(vs)
		}
	}
	return nodes
}

// drawFreeID is randomFreeID against a pending-membership set: bulk
// population checks candidate identifiers against both the ring and the
// batch being built, consuming the engine RNG in the same accept/reject
// sequence the incremental path would.
func (r *Ring) drawFreeID(used map[ident.ID]struct{}) ident.ID {
	if uint64(len(used)) >= ident.SpaceSize {
		panic("chord: identifier space exhausted")
	}
	for i := 0; i < maxIDDraws; i++ {
		id := ident.ID(r.eng.Rand().Uint32())
		if _, ok := used[id]; !ok {
			return id
		}
	}
	cand := ident.ID(r.eng.Rand().Uint32())
	for {
		if _, ok := used[cand]; !ok {
			return cand
		}
		cand = cand.Add(1)
	}
}

// RemoveNode removes a physical node from the system (leave or crash).
// Each of its virtual servers leaves the ring; a departed VS's region
// and load are absorbed by its ring successor, mirroring how the
// successor takes over the keys of a failed participant.
func (r *Ring) RemoveNode(n *Node) {
	if !n.Alive {
		return
	}
	n.Alive = false
	vss := n.vservers
	n.vservers = nil
	for _, vs := range vss {
		r.removeVS(vs)
	}
}

func (r *Ring) removeVS(vs *VServer) {
	pos := r.pos(vs)
	r.vss = append(r.vss[:pos], r.vss[pos+1:]...)
	r.epoch++
	vs.posEpoch = 0 // departed: every future pos query must fail
	// The successor absorbs the departed region's load.
	if len(r.vss) > 0 && vs.Load > 0 {
		succ := r.vss[pos%len(r.vss)]
		succ.Load += vs.Load
	}
	for _, l := range r.listeners {
		l.VSRemoved(vs)
	}
}

// RemoveVServer makes a virtual server leave the ring without its node
// leaving: the CFS-style shedding baseline, where an overloaded node
// simply deletes virtual servers. The departed VS's region and load are
// absorbed by its ring successor (which may live on a different node —
// the mechanism behind load thrashing).
func (r *Ring) RemoveVServer(vs *VServer) {
	owner := vs.Owner
	for i, v := range owner.vservers {
		if v == vs {
			owner.vservers = append(owner.vservers[:i], owner.vservers[i+1:]...)
			break
		}
	}
	r.removeVS(vs)
}

// Transfer re-homes a virtual server from its current owner to the node
// to. The ring structure (identifier, region, load) is unchanged.
func (r *Ring) Transfer(vs *VServer, to *Node) {
	from := vs.Owner
	if from == to {
		return
	}
	for i, v := range from.vservers {
		if v == vs {
			from.vservers = append(from.vservers[:i], from.vservers[i+1:]...)
			break
		}
	}
	vs.Owner = to
	to.vservers = append(to.vservers, vs)
	for _, l := range r.listeners {
		l.VSTransferred(vs, from, to)
	}
}

// findVS returns the VS with exactly the given identifier.
func (r *Ring) findVS(id ident.ID) (*VServer, bool) {
	pos := sort.Search(len(r.vss), func(i int) bool { return r.vss[i].ID >= id }) //lbvet:ignore identcompare exact-match binary search over the ID-sorted ring array

	if pos < len(r.vss) && r.vss[pos].ID == id {
		return r.vss[pos], true
	}
	return nil, false
}

// Successor returns the virtual server owning key: the first VS at or
// clockwise after key. It is the ground truth the routed lookup must
// agree with. It returns nil on an empty ring.
//
//lbvet:hotpath
func (r *Ring) Successor(key ident.ID) *VServer {
	if len(r.vss) == 0 {
		return nil
	}
	//lbvet:ignore hotalloc the sort.Search closure does not escape (Search inlines); no per-call allocation
	pos := sort.Search(len(r.vss), func(i int) bool { return r.vss[i].ID >= key }) //lbvet:ignore identcompare binary search in the ID-sorted array; pos%len below is the wrap
	return r.vss[pos%len(r.vss)]
}

// Predecessor returns the virtual server immediately counterclockwise of
// vs on the ring (itself if it is alone).
func (r *Ring) Predecessor(vs *VServer) *VServer {
	return r.vss[(r.pos(vs)+len(r.vss)-1)%len(r.vss)]
}

// RegionOf returns the arc of the identifier space owned by vs:
// (predecessor, vs] as a half-open region.
func (r *Ring) RegionOf(vs *VServer) ident.Region {
	return ident.OwnershipArc(r.Predecessor(vs).ID, vs.ID)
}

// closestPreceding returns the live VS reachable from cur's finger table
// that most closely precedes key, or nil when cur's immediate successor
// already owns key. Fingers are computed on demand from the consistent
// ring: finger k of cur is Successor(cur.ID + 2^k).
func (r *Ring) closestPreceding(cur *VServer, key ident.ID) *VServer {
	// If key is in (cur, successor(cur)], routing terminates.
	succ := r.vss[(r.pos(cur)+1)%len(r.vss)]
	if key.Between(cur.ID, succ.ID) {
		return nil
	}
	for k := ident.Bits - 1; k >= 0; k-- {
		f := r.Successor(cur.ID.Add(uint64(1) << uint(k)))
		if f == cur {
			continue
		}
		// f must strictly precede key (f in (cur, key)).
		if f.ID != key && f.ID.Between(cur.ID, key) {
			return f
		}
	}
	return succ
}

// LookupResult is delivered to a Lookup callback.
type LookupResult struct {
	VS   *VServer // owner of the key
	Hops int      // overlay hops traversed
	Cost sim.Time // total latency charged
}

// Lookup routes a lookup for key starting at the physical node from,
// delivering the result asynchronously after the routed path's latency.
// Each overlay hop costs the underlay latency between consecutive
// hosting nodes (plus MinHopLatency) and is counted as a message.
func (r *Ring) Lookup(from *Node, key ident.ID, cb func(LookupResult)) {
	if len(r.vss) == 0 {
		panic("chord: lookup on empty ring")
	}
	start := from.vservers
	var cur *VServer
	if len(start) > 0 {
		cur = start[0]
	} else {
		// A node with no virtual servers routes via the key's owner
		// region start; charge one hop to enter the ring.
		cur = r.Successor(ident.ID(r.eng.Rand().Uint32()))
	}
	r.lookupStep(from, cur, key, 0, 0, cb)
}

func (r *Ring) lookupStep(origin *Node, cur *VServer, key ident.ID, hops int, cost sim.Time, cb func(LookupResult)) {
	next := r.closestPreceding(cur, key)
	if next == nil {
		succ := r.vss[(r.pos(cur)+1)%len(r.vss)]
		hop := r.cfg.Latency(cur.Owner, succ.Owner) + r.cfg.MinHopLatency
		r.eng.CountMessage(MsgLookupHop, hop)
		r.eng.Schedule(hop, func() {
			// The owner may have left while the final hop was in flight;
			// re-route to the then-current owner instead of delivering a
			// departed VS.
			if !r.onRing(succ) {
				r.lookupStep(origin, r.Successor(key), key, hops+1, cost+hop, cb)
				return
			}
			// A join may have split succ's region in flight so it no
			// longer owns the key; succ forwards rather than answering.
			if !r.RegionOf(succ).Contains(key) {
				r.lookupStep(origin, succ, key, hops+1, cost+hop, cb)
				return
			}
			r.observeLookup(hops+1, cost+hop)
			cb(LookupResult{VS: succ, Hops: hops + 1, Cost: cost + hop})
		})
		return
	}
	hop := r.cfg.Latency(cur.Owner, next.Owner) + r.cfg.MinHopLatency
	r.eng.CountMessage(MsgLookupHop, hop)
	r.eng.Schedule(hop, func() {
		// Membership may have changed while the message was in flight;
		// restart from the ring's current view if next left the ring.
		if !r.onRing(next) {
			r.lookupStep(origin, r.Successor(key), key, hops+1, cost+hop, cb)
			return
		}
		r.lookupStep(origin, next, key, hops+1, cost+hop, cb)
	})
}

// observeLookup records a completed routed lookup's hop count and
// charged latency into the engine's metrics registry, if one is
// attached.
func (r *Ring) observeLookup(hops int, cost sim.Time) {
	if r.mLookupHops == nil {
		reg := r.eng.Metrics()
		if reg == nil {
			return
		}
		r.mLookupHops = reg.Histogram("chord.lookup.hops")
		r.mLookupLat = reg.Histogram("chord.lookup.latency")
	}
	r.mLookupHops.Observe(int64(hops))
	r.mLookupLat.Observe(int64(cost))
}

// LookupSync resolves the owner of key immediately without simulating
// messages (setup and verification paths).
func (r *Ring) LookupSync(key ident.ID) *VServer { return r.Successor(key) }

// CheckInvariants verifies internal consistency (tests): ring order,
// position indexes, owner back-links, and that regions partition the
// circle. It panics on violation.
func (r *Ring) CheckInvariants() {
	var total uint64
	for i, vs := range r.vss {
		if vs.posEpoch == r.epoch && vs.ringPos != i {
			panic(fmt.Sprintf("chord: vs %s caches current-epoch ringPos %d != %d", vs.ID, vs.ringPos, i))
		}
		if vs.posEpoch > r.epoch {
			panic(fmt.Sprintf("chord: vs %s posEpoch %d ahead of ring epoch %d", vs.ID, vs.posEpoch, r.epoch))
		}
		if p := r.pos(vs); p != i {
			panic(fmt.Sprintf("chord: vs %s resolves to position %d != %d", vs.ID, p, i))
		}
		if i > 0 && r.vss[i-1].ID >= vs.ID { //lbvet:ignore identcompare asserts the canonical sorted-array invariant, a total-order property
			panic(fmt.Sprintf("chord: ring out of order at %d", i))
		}
		if !vs.Owner.Alive {
			panic("chord: VS owned by dead node")
		}
		found := false
		for _, v := range vs.Owner.vservers {
			if v == vs {
				found = true
				break
			}
		}
		if !found {
			panic("chord: owner does not list VS")
		}
		total += r.RegionOf(vs).Width
	}
	if len(r.vss) > 0 && total != ident.SpaceSize {
		panic(fmt.Sprintf("chord: regions cover %d of %d", total, ident.SpaceSize))
	}
}

// Conservation is a snapshot of the quantities the fault-tolerance layer
// must preserve across drops, duplicates, partitions and crashes: the
// total load in the system. Capture it with SnapshotConservation before
// injecting faults and hand it to CheckConservation after every round.
type Conservation struct {
	TotalLoad float64
	NumVS     int
}

// SnapshotConservation captures the current load books.
func (r *Ring) SnapshotConservation() Conservation {
	var total float64
	for _, vs := range r.vss {
		total += vs.Load
	}
	return Conservation{TotalLoad: total, NumVS: len(r.vss)}
}

// CheckConservation verifies the fault-tolerance contract against a
// pre-fault snapshot and returns the first violation found:
//
//   - no VS is lost: every virtual server on the global ring is hosted
//     by exactly one node, and every hosted virtual server is on the
//     global ring (a prepare that never commits must leave the VS with
//     its sender; an abort must not orphan it);
//   - no VS is double-hosted: a virtual server never appears in two
//     nodes' books, and its Owner back-link matches the hosting node (a
//     duplicated commit must be idempotent);
//   - every hosting node is alive and no load is negative;
//   - total load is conserved within a relative 1e-9 tolerance (crashes
//     hand the departed region's load to the ring successor and joins
//     enter with zero load, so the total is invariant even under
//     membership change).
//
// The VS population may legitimately shrink (crash) or grow (restart,
// join); Conservation.NumVS is recorded for tests that run without
// membership change and want to assert it separately. Unlike
// CheckInvariants this returns an error instead of panicking, so fault
// experiments can attribute the failing round.
func (r *Ring) CheckConservation(base Conservation) error {
	hostings := make(map[*VServer]int, len(r.vss))
	var total float64
	for i, vs := range r.vss {
		if i > 0 && r.vss[i-1].ID >= vs.ID { //lbvet:ignore identcompare asserts the canonical sorted-array invariant, a total-order property
			return fmt.Errorf("chord: ring order violated at position %d", i)
		}
		if vs.Owner == nil {
			return fmt.Errorf("chord: vs %s has no owner", vs.ID)
		}
		if !vs.Owner.Alive {
			return fmt.Errorf("chord: vs %s owned by dead node %d", vs.ID, vs.Owner.Index)
		}
		if vs.Load < 0 {
			return fmt.Errorf("chord: vs %s has negative load %v", vs.ID, vs.Load)
		}
		hostings[vs] = 0
		total += vs.Load
	}
	for _, n := range r.nodes {
		for _, vs := range n.vservers {
			if !n.Alive {
				return fmt.Errorf("chord: dead node %d still hosts vs %s", n.Index, vs.ID)
			}
			count, onRing := hostings[vs]
			if !onRing {
				return fmt.Errorf("chord: node %d hosts vs %s which is not on the ring", n.Index, vs.ID)
			}
			if vs.Owner != n {
				return fmt.Errorf("chord: vs %s hosted by node %d but owned by node %d (double-hosted)",
					vs.ID, n.Index, vs.Owner.Index)
			}
			hostings[vs] = count + 1
		}
	}
	for _, vs := range r.vss {
		switch c := hostings[vs]; {
		case c == 0:
			return fmt.Errorf("chord: vs %s is on the ring but hosted by no node (lost)", vs.ID)
		case c > 1:
			return fmt.Errorf("chord: vs %s hosted %d times (double-hosted)", vs.ID, c)
		}
	}
	tol := 1e-9 * math.Max(1, math.Abs(base.TotalLoad))
	if diff := math.Abs(total - base.TotalLoad); diff > tol {
		return fmt.Errorf("chord: total load %v drifted from snapshot %v (|Δ|=%v)",
			total, base.TotalLoad, diff)
	}
	return nil
}

package exp

import (
	"testing"

	"p2plb/internal/metrics"
)

// TestFillHonoursExplicitZeros is the regression test for the
// zero-clobbering bug: an explicit Epsilon = 0 or Sigma = 0 must
// survive fill, while UseDefault still resolves to the paper values.
func TestFillHonoursExplicitZeros(t *testing.T) {
	s := DefaultSetup(1)
	s.Nodes = 64
	s.Epsilon = 0
	s.Sigma = 0
	s.fill()
	if s.Epsilon != 0 {
		t.Errorf("explicit Epsilon=0 clobbered to %v", s.Epsilon)
	}
	if s.Sigma != 0 {
		t.Errorf("explicit Sigma=0 clobbered to %v", s.Sigma)
	}

	d := DefaultSetup(1)
	d.Nodes = 64
	d.fill()
	if d.Epsilon != 0.05 {
		t.Errorf("default Epsilon = %v, want 0.05", d.Epsilon)
	}
	if want := d.Mu / 200; d.Sigma != want {
		t.Errorf("default Sigma = %v, want Mu/200 = %v", d.Sigma, want)
	}
	if d.Mu != 64*100 {
		t.Errorf("default Mu = %v, want Nodes*100", d.Mu)
	}
}

// TestEpsilonZeroEndToEnd runs full rounds with ε = 0: the balancer
// must actually use zero slack (exactly proportional targets). Unlike
// ε = 0.05, zero slack cannot reach zero heavy nodes — a large virtual
// server needs a light node whose deficit covers it, and shrinking
// every target shrinks every deficit, so some offers go unassigned and
// their owners stay heavy at a fixed point. The test asserts the true
// behaviour: a sharp first-round reduction, monotone non-increase over
// further rounds, and a strictly tighter classification than the
// default slack.
func TestEpsilonZeroEndToEnd(t *testing.T) {
	s := smallSetup(11)
	s.Epsilon = 0
	inst, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Balancer.Config().Epsilon; got != 0 {
		t.Fatalf("balancer runs at epsilon %v, want the explicit 0", got)
	}
	res, err := inst.Balancer.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyBefore == 0 {
		t.Fatal("fixture produced no heavy nodes")
	}
	if res.MovedLoad <= 0 {
		t.Fatal("no load moved at epsilon=0")
	}
	if res.HeavyAfter > res.HeavyBefore/4 {
		t.Errorf("first round only reduced heavy %d -> %d, want at least 4x",
			res.HeavyBefore, res.HeavyAfter)
	}
	heavy := res.HeavyAfter
	for round := 1; round < 4; round++ {
		r, err := inst.Balancer.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if r.HeavyAfter > heavy {
			t.Errorf("round %d increased heavy %d -> %d", round, heavy, r.HeavyAfter)
		}
		heavy = r.HeavyAfter
	}
	// ε=0 must classify at least as many nodes heavy as the default
	// slack would (a strictly tighter target).
	inst2, err := Build(smallSetup(11))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := inst2.Balancer.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyBefore < res2.HeavyBefore {
		t.Errorf("epsilon=0 classified %d heavy, default slack %d — tighter target cannot yield fewer",
			res.HeavyBefore, res2.HeavyBefore)
	}
	if res2.HeavyAfter != 0 {
		t.Errorf("default slack leaves %d heavy, want 0", res2.HeavyAfter)
	}
}

// TestBuildAttachesMetrics verifies a Setup-supplied registry reaches
// the engine and a round populates the expected metric families.
func TestBuildAttachesMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := smallSetup(12)
	s.Metrics = reg
	inst, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Engine.Metrics() != reg {
		t.Fatal("registry not attached to the engine")
	}
	res, err := inst.Balancer.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["core.rounds"] != 1 {
		t.Errorf("core.rounds = %d, want 1", snap.Counters["core.rounds"])
	}
	if got := snap.Floats["core.moved_load"]; got != res.MovedLoad {
		t.Errorf("core.moved_load = %v, want %v", got, res.MovedLoad)
	}
	if snap.Counters["core.pairs.assigned"] != int64(len(res.Assignments)) {
		t.Errorf("core.pairs.assigned = %d, want %d",
			snap.Counters["core.pairs.assigned"], len(res.Assignments))
	}
	if h, ok := snap.Histograms["core.subset.cost"]; !ok || h.Count == 0 {
		t.Error("core.subset.cost not recorded")
	}
	if h, ok := snap.Histograms["core.phase.vsa"]; !ok || h.Count != 1 {
		t.Error("core.phase.vsa not recorded")
	}
	// Message-kind counters come from the engine's CountMessage path.
	var sawMsg bool
	for name := range snap.Counters {
		if len(name) > 4 && name[:4] == "msg." {
			sawMsg = true
			break
		}
	}
	if !sawMsg {
		t.Error("no msg.* counters recorded")
	}
	// sim.queue.depth only fills when events are actually scheduled
	// (message-level rounds); the closed-form round here never schedules,
	// so it is deliberately not asserted.
}

package exp

import (
	"fmt"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/faults"
	"p2plb/internal/par"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// FaultRow is one operating point of the graceful-degradation sweep:
// `rounds` message-level balancing rounds under a uniform message drop
// rate, with chord.CheckConservation asserted after every round.
type FaultRow struct {
	DropRate float64 `json:"drop_rate"`
	// Rounds attempted, how many completed, how many failed outright
	// (hard round deadline).
	Rounds    int `json:"rounds"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// The protocol's damage report, summed over completed rounds.
	Retries          int `json:"retries"`
	TimedOutChildren int `json:"timed_out_children"`
	AbortedTransfers int `json:"aborted_transfers"`
	// Dropped is the injector's count of messages it destroyed.
	Dropped int64 `json:"dropped"`
	// MeanRoundTime is the mean virtual time from round start to VST
	// completion over completed rounds — the round-completion-time side
	// of the degradation curve.
	MeanRoundTime float64 `json:"mean_round_time"`
	// FinalGini is the per-node unit-load Gini after the last round —
	// the imbalance side of the curve.
	FinalGini float64 `json:"final_gini"`
}

// aliveUnitGini is the imbalance metric shared by the fault
// experiments: Gini over per-node unit load of the living membership.
func aliveUnitGini(ring *chord.Ring) float64 {
	var units []float64
	for _, n := range ring.AliveNodes() {
		if n.Capacity > 0 {
			units = append(units, n.TotalLoad()/n.Capacity)
		}
	}
	return stats.Gini(units)
}

// runProtocolRound drives one message-level round to completion.
func runProtocolRound(r *protocol.Runner, eng *sim.Engine) (*protocol.Result, error) {
	var out *protocol.Result
	var outErr error
	if err := r.StartRound(func(res *protocol.Result, err error) { out, outErr = res, err }); err != nil {
		return nil, err
	}
	eng.Run()
	return out, outErr
}

// FaultSweep measures graceful degradation under uniform message loss
// on the default no-underlay setup: for each drop rate it runs `rounds`
// message-level rounds on a fresh system and reports imbalance,
// round-completion time and the protocol's repair work. Conservation is
// checked after every round; a violation fails the sweep.
func FaultSweep(seed int64, nodes int, rates []float64, rounds int) ([]FaultRow, error) {
	s := DefaultSetup(seed)
	s.Nodes = nodes
	return FaultSweepSetup(s, rates, rounds)
}

// FaultSweepSetup runs the drop-rate sweep on an arbitrary setup. Rates
// run in parallel — each builds its own engine and injector from the
// setup seed, so rows are independent of scheduling.
func FaultSweepSetup(s Setup, rates []float64, rounds int) ([]FaultRow, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("exp: need at least one round")
	}
	for _, rate := range rates {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("exp: drop rate %v outside [0,1]", rate)
		}
	}
	return par.MapErr(rates, 0, func(rate float64) (FaultRow, error) {
		return faultRow(s, rate, rounds)
	})
}

func faultRow(s Setup, rate float64, rounds int) (FaultRow, error) {
	inst, err := Build(s)
	if err != nil {
		return FaultRow{}, err
	}
	base := inst.Ring.SnapshotConservation()
	in, err := faults.New(s.Seed, faults.Plan{Drop: rate})
	if err != nil {
		return FaultRow{}, err
	}
	if err := in.Attach(inst.Ring); err != nil {
		return FaultRow{}, err
	}
	r, err := protocol.NewRunner(inst.Ring, inst.Tree, protocol.Config{
		Core:         core.Config{Epsilon: inst.Setup.Epsilon},
		ChildTimeout: 500,
	})
	if err != nil {
		return FaultRow{}, err
	}
	row := FaultRow{DropRate: rate, Rounds: rounds}
	for i := 0; i < rounds; i++ {
		out, roundErr := runProtocolRound(r, inst.Engine)
		if roundErr != nil {
			row.Failed++
			if _, err := inst.Tree.Repair(); err != nil {
				return row, err
			}
		} else {
			row.Completed++
			row.Retries += out.Retries
			row.TimedOutChildren += out.TimedOutChildren
			row.AbortedTransfers += out.AbortedTransfers
			row.MeanRoundTime += float64(out.TimeVSTComplete)
		}
		if err := inst.Ring.CheckConservation(base); err != nil {
			return row, fmt.Errorf("exp: drop rate %v, round %d: %w", rate, i, err)
		}
	}
	if row.Completed > 0 {
		row.MeanRoundTime /= float64(row.Completed)
	}
	row.Dropped = in.Dropped()
	row.FinalGini = aliveUnitGini(inst.Ring)
	return row, nil
}

// PartitionRow is the partition-recovery experiment result: the system
// starts unbalanced with half the ring cut off, balances what it can
// reach, and the row reports how quickly it converges once the
// partition heals.
type PartitionRow struct {
	Nodes int `json:"nodes"`
	// BaselineGini is the fault-free post-round imbalance of the
	// identical instance — the recovery target.
	BaselineGini float64 `json:"baseline_gini"`
	// PartitionRounds/FailedDuring count the rounds attempted while the
	// cut was up and how many failed outright.
	PartitionRounds int `json:"partition_rounds"`
	FailedDuring    int `json:"failed_during"`
	// GiniAtHeal is the imbalance the partition left behind.
	GiniAtHeal float64 `json:"gini_at_heal"`
	// Retries totals retransmissions across the whole run.
	Retries int `json:"retries"`
	// RoundsToRecover is the number of post-heal rounds until the
	// imbalance is back within 25% of baseline (-1: never within the
	// budget); RecoveryTime is the virtual time that took.
	RoundsToRecover int      `json:"rounds_to_recover"`
	RecoveryTime    sim.Time `json:"recovery_time"`
	RecoveredGini   float64  `json:"recovered_gini"`
}

// PartitionRecovery bipartitions the ring (first half of the join order
// against the rest) before any balancing happens, runs `duringRounds`
// rounds against the cut, heals it, and measures convergence back to
// the fault-free imbalance within at most `maxRecover` further rounds.
// Conservation is checked after every round.
func PartitionRecovery(seed int64, nodes, duringRounds, maxRecover int) (PartitionRow, error) {
	if nodes < 4 {
		return PartitionRow{}, fmt.Errorf("exp: need at least four nodes to partition")
	}
	s := DefaultSetup(seed)
	s.Nodes = nodes
	row := PartitionRow{Nodes: nodes, RoundsToRecover: -1}

	// Fault-free baseline: same seed, same build, one clean round.
	clean, err := Build(s)
	if err != nil {
		return row, err
	}
	rc, err := protocol.NewRunner(clean.Ring, clean.Tree, protocol.Config{
		Core: core.Config{Epsilon: clean.Setup.Epsilon},
	})
	if err != nil {
		return row, err
	}
	if _, err := runProtocolRound(rc, clean.Engine); err != nil {
		return row, err
	}
	row.BaselineGini = aliveUnitGini(clean.Ring)

	inst, err := Build(s)
	if err != nil {
		return row, err
	}
	base := inst.Ring.SnapshotConservation()
	side := make([]int, nodes/2)
	for i := range side {
		side[i] = i
	}
	// The window is unbounded; Detach is the heal event, so the heal
	// instant is exactly known instead of racing a timed window against
	// round boundaries.
	in, err := faults.New(seed, faults.Plan{
		Partitions: []faults.Partition{{From: 0, Until: sim.Time(1) << 62, Side: side}},
	})
	if err != nil {
		return row, err
	}
	if err := in.Attach(inst.Ring); err != nil {
		return row, err
	}
	r, err := protocol.NewRunner(inst.Ring, inst.Tree, protocol.Config{
		Core:         core.Config{Epsilon: inst.Setup.Epsilon},
		ChildTimeout: 500,
	})
	if err != nil {
		return row, err
	}
	for i := 0; i < duringRounds; i++ {
		out, roundErr := runProtocolRound(r, inst.Engine)
		row.PartitionRounds++
		if roundErr != nil {
			row.FailedDuring++
			if _, err := inst.Tree.Repair(); err != nil {
				return row, err
			}
		} else {
			row.Retries += out.Retries
		}
		if err := inst.Ring.CheckConservation(base); err != nil {
			return row, fmt.Errorf("exp: partition round %d: %w", i, err)
		}
	}
	in.Detach()
	row.GiniAtHeal = aliveUnitGini(inst.Ring)
	healAt := inst.Engine.Now()
	threshold := row.BaselineGini*1.25 + 1e-6
	for i := 0; i < maxRecover; i++ {
		out, roundErr := runProtocolRound(r, inst.Engine)
		if roundErr != nil {
			if _, err := inst.Tree.Repair(); err != nil {
				return row, err
			}
			continue
		}
		row.Retries += out.Retries
		if err := inst.Ring.CheckConservation(base); err != nil {
			return row, fmt.Errorf("exp: recovery round %d: %w", i, err)
		}
		if g := aliveUnitGini(inst.Ring); g <= threshold {
			row.RoundsToRecover = i + 1
			row.RecoveryTime = inst.Engine.Now() - healAt
			row.RecoveredGini = g
			break
		}
	}
	return row, nil
}

package exp

import "testing"

func TestFaultSweepConservesAndDegradesGracefully(t *testing.T) {
	rows, err := FaultSweep(3, 64, []float64{0, 0.10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	clean, lossy := rows[0], rows[1]
	if clean.Dropped != 0 || clean.Retries != 0 || clean.Failed != 0 {
		t.Errorf("rate-0 row not clean: %+v", clean)
	}
	if clean.Completed != clean.Rounds {
		t.Errorf("rate-0 row completed %d of %d rounds", clean.Completed, clean.Rounds)
	}
	if lossy.Dropped == 0 {
		t.Error("10% loss dropped nothing")
	}
	if lossy.Retries == 0 {
		t.Error("10% loss forced no retransmissions")
	}
	if lossy.Completed == 0 {
		t.Fatal("no round completed under 10% loss")
	}
	if clean.FinalGini > 0 && lossy.FinalGini > 2*clean.FinalGini {
		t.Errorf("lossy imbalance %.4f exceeds 2× clean %.4f", lossy.FinalGini, clean.FinalGini)
	}
	if lossy.MeanRoundTime < clean.MeanRoundTime {
		t.Errorf("retransmission made rounds faster? clean %.0f lossy %.0f",
			clean.MeanRoundTime, lossy.MeanRoundTime)
	}
}

func TestFaultSweepValidation(t *testing.T) {
	if _, err := FaultSweep(1, 16, []float64{0.5}, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := FaultSweep(1, 16, []float64{1.5}, 1); err == nil {
		t.Error("rate above 1 accepted")
	}
	if _, err := FaultSweep(1, 16, []float64{-0.1}, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPartitionRecovery(t *testing.T) {
	row, err := PartitionRecovery(5, 64, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if row.PartitionRounds != 2 {
		t.Errorf("partition rounds %d, want 2", row.PartitionRounds)
	}
	// The cut leaves cross-side imbalance a clean round would have fixed.
	if row.GiniAtHeal <= row.BaselineGini {
		t.Errorf("partition left gini %.4f, not above baseline %.4f",
			row.GiniAtHeal, row.BaselineGini)
	}
	if row.RoundsToRecover < 0 {
		t.Fatalf("never recovered: %+v", row)
	}
	if row.RecoveredGini > row.BaselineGini*1.25+1e-6 {
		t.Errorf("recovered gini %.4f above threshold of baseline %.4f",
			row.RecoveredGini, row.BaselineGini)
	}
	if row.RecoveryTime <= 0 {
		t.Errorf("non-positive recovery time %d", row.RecoveryTime)
	}
}

// Package exp is the experiment harness: it assembles rings, trees,
// topologies, workloads and balancers into the exact configurations the
// paper evaluates (§5.1), and drives the runs behind every figure.
// Both cmd/lbsim and the repository's benchmarks call into it, so the
// printed tables and the benchmark numbers come from the same code.
//
// The paper's setup, reproduced by DefaultSetup: a Chord overlay of
// 4096 nodes, each initially hosting 5 virtual servers, over a 32-bit
// identifier space; a K-nary tree with K = 2 (results for K = 8 are
// similar); Gaussian or Pareto(α=1.5) virtual-server loads; the
// Gnutella-like capacity profile; 15 landmark nodes; and the ts5k-large
// / ts5k-small transit-stub topologies (10 graph instances each).
package exp

import (
	"fmt"
	"math/rand"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/metrics"
	"p2plb/internal/proximity"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
	"p2plb/internal/workload"
)

// UseDefault marks a Setup field whose zero value is meaningful
// (Epsilon, Sigma) as "use the package default". Zero is taken
// literally for those fields: Epsilon = 0 really runs the balancer at
// ε = 0 and Sigma = 0 draws a deterministic load. DefaultSetup seeds
// them with UseDefault.
const UseDefault = -1

// Setup parameterizes one experiment instance.
type Setup struct {
	Nodes     int // DHT nodes (paper: 4096)
	VSPerNode int // initial virtual servers per node (paper: 5)
	K         int // K-nary tree degree (paper: 2, also 8)
	Seed      int64

	// Mu is the mean of the total system load; Sigma its standard
	// deviation (Gaussian model). Mu = 0 defaults to Nodes·100; a
	// negative Sigma (UseDefault) becomes Mu/200, while Sigma = 0 is
	// honoured as a zero-variance load.
	Mu, Sigma float64
	// Pareto selects the Pareto(α=1.5) load model instead of Gaussian.
	Pareto bool

	Profile workload.Profile // nil → Gnutella-like profile

	// Epsilon is the target slack. Negative (UseDefault) becomes the
	// paper's 0.05; an explicit 0 is honoured — perfect-proportionality
	// targets.
	Epsilon             float64
	RendezvousThreshold int // 0 → paper default 30

	// Topology embeds the overlay in an underlay; nil runs without one
	// (constant unit latency — Figures 4-6 do not need an underlay).
	Topology *topology.Params
	// Landmarks and HilbertBits configure the proximity mapping
	// (defaults 15 and 2). Only used when Topology is set.
	Landmarks   int
	HilbertBits int
	// QuantileGrid places landmark-space cell edges at distance
	// quantiles instead of the paper's equal-size cells; kept as an
	// ablation (see DESIGN.md) — equal-size cells with bits=4 perform
	// better end to end.
	QuantileGrid bool

	Mode core.Mode

	// Metrics, when set, is attached to the instance's engine so the run
	// records counters, histograms and series (see internal/metrics).
	// The registry may be shared across instances (multi-trial sweeps);
	// snapshots then aggregate all of them.
	Metrics *metrics.Registry
}

// DefaultSetup returns the paper's baseline configuration (no underlay).
// Epsilon and Sigma start at UseDefault so fill resolves them to the
// paper values (0.05 and Mu/200); set either to 0 explicitly to run
// with zero slack or zero variance.
func DefaultSetup(seed int64) Setup {
	return Setup{Nodes: 4096, VSPerNode: 5, K: 2, Seed: seed,
		Epsilon: UseDefault, Sigma: UseDefault}
}

func (s *Setup) fill() {
	if s.Mu == 0 {
		s.Mu = float64(s.Nodes) * 100
	}
	if s.Sigma < 0 {
		s.Sigma = s.Mu / 200
	}
	if s.Profile == nil {
		s.Profile = workload.GnutellaProfile()
	}
	if s.Landmarks == 0 {
		s.Landmarks = proximity.DefaultLandmarkCount
	}
	if s.HilbertBits == 0 {
		s.HilbertBits = proximity.DefaultBitsPerDimension
	}
	if s.Epsilon < 0 {
		s.Epsilon = 0.05
	}
	if s.K == 0 {
		s.K = 2
	}
}

// Instance is a fully assembled experiment: ring, tree, balancer and
// (optionally) the underlay pieces.
type Instance struct {
	Setup    Setup
	Engine   *sim.Engine
	Ring     *chord.Ring
	Tree     *ktree.Tree
	Balancer *core.Balancer

	Graph *topology.Graph // nil without an underlay
	// HopDistances answers transfer-distance queries in the paper's hop
	// convention (figures); LatDistances answers latency queries used
	// for message timing and landmark measurement.
	HopDistances *topology.Distances
	LatDistances *topology.Distances
	Mapper       *proximity.Mapper // nil unless proximity-aware
}

// Build assembles an Instance: generate the underlay (if any), create
// the ring with capacities from the profile, draw virtual-server loads
// from the load model using each VS's actual identifier-space fraction,
// build the K-nary tree, choose landmarks, and wire up the balancer.
func Build(s Setup) (*Instance, error) {
	s.fill()
	if s.Nodes < 1 || s.VSPerNode < 1 {
		return nil, fmt.Errorf("exp: need at least one node and one VS per node")
	}
	inst := &Instance{Setup: s}
	inst.Engine = sim.NewEngine(s.Seed)
	inst.Engine.SetMetrics(s.Metrics)

	ringCfg := chord.Config{}
	var underlays []topology.NodeID
	if s.Topology != nil {
		p := *s.Topology
		p.Seed = s.Seed
		g, err := topology.Generate(p)
		if err != nil {
			return nil, err
		}
		if len(g.StubNodes()) < s.Nodes {
			return nil, fmt.Errorf("exp: topology has %d stub nodes, need %d",
				len(g.StubNodes()), s.Nodes)
		}
		inst.Graph = g
		inst.HopDistances = topology.NewDistances(g)
		inst.LatDistances = topology.NewDistancesMetric(g, topology.LatencyMetric)
		ringCfg.Latency = chord.TopologyLatency(inst.LatDistances)
		underlays = g.SampleStubNodes(inst.Engine.Rand(), s.Nodes)
	}

	inst.Ring = chord.NewRing(inst.Engine, ringCfg)
	// Bulk population sorts the VS identifiers once instead of paying an
	// incremental insert per node; the RNG draw order (capacity, then
	// identifiers, per node) matches the AddNode loop exactly, so runs
	// stay byte-identical across both paths at the same seed.
	inst.Ring.BulkAddNodes(s.Nodes, s.VSPerNode,
		func(i int) topology.NodeID {
			if underlays != nil {
				return underlays[i]
			}
			return -1
		},
		func(i int) float64 { return s.Profile.Sample(inst.Engine.Rand()) })

	var model workload.LoadModel
	if s.Pareto {
		model = workload.Pareto{Alpha: 1.5, Mu: s.Mu}
	} else {
		model = workload.Gaussian{Mu: s.Mu, Sigma: s.Sigma}
	}
	// Loads come from a core.LoadSource. The sampled source's one-shot
	// Refresh makes exactly the draws the historical assignment loop
	// made here (ring order, engine RNG), so figures at a given seed are
	// unchanged; refreshing eagerly keeps vs.Load populated for code
	// that reads it between Build and the first round (the before-LB
	// scatter of fig 4). Serving experiments override Loads with the
	// observed-request-rate source instead.
	loads := &core.SampledLoads{Model: model, Rng: inst.Engine.Rand()}
	loads.Refresh(inst.Ring)

	tree, err := ktree.New(inst.Ring, s.K)
	if err != nil {
		return nil, err
	}
	if err := tree.Build(); err != nil {
		return nil, err
	}
	inst.Tree = tree

	cfg := core.Config{
		Mode:                s.Mode,
		Epsilon:             s.Epsilon,
		RendezvousThreshold: s.RendezvousThreshold,
		Loads:               loads,
	}
	if inst.Graph != nil {
		hops := inst.HopDistances
		cfg.TransferCost = func(from, to *chord.Node) int {
			if from == to || from.Underlay == to.Underlay {
				return 0
			}
			return int(hops.Between(from.Underlay, to.Underlay))
		}
	}
	if s.Mode == core.ProximityAware {
		if inst.Graph == nil {
			return nil, fmt.Errorf("exp: proximity-aware mode requires a topology")
		}
		lm, err := proximity.ChooseSpread(inst.Graph, inst.LatDistances,
			rand.New(rand.NewSource(s.Seed+7919)), s.Landmarks)
		if err != nil {
			return nil, err
		}
		inst.Mapper, err = proximity.NewMapper(lm, s.HilbertBits)
		if err != nil {
			return nil, err
		}
		if s.QuantileGrid {
			if err := inst.Mapper.UseQuantileGrid(underlays); err != nil {
				return nil, err
			}
		}
		cfg.Mapper = inst.Mapper
	}
	inst.Balancer, err = core.NewBalancer(inst.Ring, tree, cfg)
	if err != nil {
		return nil, err
	}
	return inst, nil
}

package exp

import (
	"fmt"

	"p2plb/internal/core"
	"p2plb/internal/metrics"
	"p2plb/internal/par"
	"p2plb/internal/stats"
	"p2plb/internal/topology"
)

// BeforeAfter is the Figure 4 payload: per-node unit loads (load divided
// by capacity) before and after one load-balancing round.
type BeforeAfter struct {
	UnitBefore []float64
	UnitAfter  []float64
	Result     *core.Result
}

// PercentHeavyBefore returns the share of nodes that were heavy before
// the round (the paper reports about 75%).
func (b *BeforeAfter) PercentHeavyBefore() float64 {
	total := b.Result.HeavyBefore + b.Result.LightBefore + b.Result.NeutralBefore
	if total == 0 {
		return 0
	}
	return float64(b.Result.HeavyBefore) / float64(total)
}

// Fig4 reproduces Figure 4: the unit-load scatter before/after load
// balancing under the Gaussian load model (no underlay needed).
func Fig4(seed int64) (*BeforeAfter, error) {
	return beforeAfter(DefaultSetup(seed))
}

func beforeAfter(s Setup) (*BeforeAfter, error) {
	inst, err := Build(s)
	if err != nil {
		return nil, err
	}
	out := &BeforeAfter{UnitBefore: inst.Balancer.UnitLoads()}
	out.Result, err = inst.Balancer.RunRound()
	if err != nil {
		return nil, err
	}
	out.UnitAfter = inst.Balancer.UnitLoads()
	return out, nil
}

// CapacityClassRow is one row of the Figure 5/6 data: per capacity
// class, the node count and the mean load before and after balancing.
type CapacityClassRow struct {
	Capacity   float64
	Nodes      int
	MeanBefore float64
	MeanAfter  float64
	// UnitBefore/UnitAfter are the mean unit loads (load/capacity);
	// after balancing these should be nearly equal across classes —
	// the "aligned skews".
	UnitBefore float64
	UnitAfter  float64
}

// LoadByCapacity reproduces Figures 5 (Gaussian) and 6 (Pareto): the
// distribution of load across node-capacity classes before and after
// load balancing.
func LoadByCapacity(seed int64, pareto bool) ([]CapacityClassRow, *core.Result, error) {
	s := DefaultSetup(seed)
	s.Pareto = pareto
	inst, err := Build(s)
	if err != nil {
		return nil, nil, err
	}
	before := inst.Balancer.LoadByCapacityClass()
	res, err := inst.Balancer.RunRound()
	if err != nil {
		return nil, nil, err
	}
	after := inst.Balancer.LoadByCapacityClass()
	var rows []CapacityClassRow
	for _, c := range before.Classes() {
		rows = append(rows, CapacityClassRow{
			Capacity:   c,
			Nodes:      before.Count(c),
			MeanBefore: before.Mean(c),
			MeanAfter:  after.Mean(c),
			UnitBefore: before.Mean(c) / c,
			UnitAfter:  after.Mean(c) / c,
		})
	}
	return rows, res, nil
}

// MovedLoadDist is the Figure 7/8 payload: the distribution of moved
// load over transfer distance for the proximity-aware and the
// proximity-ignorant approach, aggregated over several graph instances.
type MovedLoadDist struct {
	Aware    *stats.WeightedHistogram
	Ignorant *stats.WeightedHistogram
	// Graphs is the number of topology instances aggregated.
	Graphs int
	// HeavyResidualAware/Ignorant count nodes still heavy after the
	// round, summed over instances (should be 0).
	HeavyResidualAware    int
	HeavyResidualIgnorant int
}

// MeanHops returns the load-weighted mean transfer distance per mode.
func (m *MovedLoadDist) MeanHops() (aware, ignorant float64) {
	mean := func(h *stats.WeightedHistogram) float64 {
		if h.Total() == 0 {
			return 0
		}
		var hw float64
		for b := 0; b <= h.MaxBucket(); b++ {
			hw += float64(b) * h.Weight(b)
		}
		return hw / h.Total()
	}
	return mean(m.Aware), mean(m.Ignorant)
}

// MovedLoadDistribution reproduces Figures 7 and 8: run one
// load-balancing round per mode on `graphs` independent topology
// instances (the paper runs 10 graphs per topology) and aggregate the
// moved-load-versus-distance histograms. Instances run in parallel; a
// non-nil registry is shared across all of them (its primitives are
// concurrency-safe), so one snapshot covers the whole sweep.
func MovedLoadDistribution(topo func(seed int64) topology.Params, graphs int, seedBase int64, nodes int, reg *metrics.Registry) (*MovedLoadDist, error) {
	if graphs < 1 {
		return nil, fmt.Errorf("exp: need at least one graph instance")
	}
	type trial struct {
		mode core.Mode
		seed int64
	}
	var trials []trial
	for g := 0; g < graphs; g++ {
		seed := seedBase + int64(g)
		trials = append(trials, trial{core.ProximityAware, seed}, trial{core.ProximityIgnorant, seed})
	}
	type trialOut struct {
		mode core.Mode
		res  *core.Result
		err  error
	}
	results := par.Map(trials, 0, func(tr trial) trialOut {
		p := topo(tr.seed)
		s := DefaultSetup(tr.seed)
		s.Nodes = nodes
		s.Topology = &p
		s.Mode = tr.mode
		s.Metrics = reg
		inst, err := Build(s)
		if err != nil {
			return trialOut{tr.mode, nil, err}
		}
		res, err := inst.Balancer.RunRound()
		return trialOut{tr.mode, res, err}
	})
	out := &MovedLoadDist{
		Aware:    &stats.WeightedHistogram{},
		Ignorant: &stats.WeightedHistogram{},
		Graphs:   graphs,
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.mode == core.ProximityAware {
			out.Aware.Merge(r.res.MovedByHops)
			out.HeavyResidualAware += r.res.HeavyAfter
		} else {
			out.Ignorant.Merge(r.res.MovedByHops)
			out.HeavyResidualIgnorant += r.res.HeavyAfter
		}
	}
	return out, nil
}

// PhaseTimes is one row of the VSA-time experiment (§5.2's
// "VSA completes quickly in O(log_K N) time" claim).
type PhaseTimes struct {
	K          int
	Nodes      int
	VServers   int
	TreeHeight int
	LBIUp      int64
	LBIDown    int64
	VSADone    int64 // from round start
	VSTDone    int64
}

// VSATimes measures phase completion times for the given tree degrees
// and system sizes under the default Gaussian workload. A non-nil
// registry is shared by every run. The (K, size) cells run in parallel;
// each builds its own engine from the seed, so every row is identical
// to what the sequential sweep produced and rows keep the ks-major,
// sizes-minor order.
func VSATimes(ks []int, sizes []int, seed int64, reg *metrics.Registry) ([]PhaseTimes, error) {
	type cell struct{ k, n int }
	var cells []cell
	for _, k := range ks {
		for _, n := range sizes {
			cells = append(cells, cell{k, n})
		}
	}
	return par.MapErr(cells, 0, func(c cell) (PhaseTimes, error) {
		s := DefaultSetup(seed)
		s.Nodes = c.n
		s.K = c.k
		s.Metrics = reg
		inst, err := Build(s)
		if err != nil {
			return PhaseTimes{}, err
		}
		res, err := inst.Balancer.RunRound()
		if err != nil {
			return PhaseTimes{}, err
		}
		return PhaseTimes{
			K:          c.k,
			Nodes:      c.n,
			VServers:   c.n * s.VSPerNode,
			TreeHeight: res.TreeHeight,
			LBIUp:      int64(res.TimeLBIAggregate),
			LBIDown:    int64(res.TimeLBIDisseminate),
			VSADone:    int64(res.TimeVSAComplete),
			VSTDone:    int64(res.TimeVSTComplete),
		}, nil
	})
}

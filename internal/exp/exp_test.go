package exp

import (
	"testing"

	"p2plb/internal/core"
	"p2plb/internal/topology"
)

// smallSetup keeps unit tests fast; full-scale runs live in the
// benchmarks and cmd/lbsim.
func smallSetup(seed int64) Setup {
	s := DefaultSetup(seed)
	s.Nodes = 256
	return s
}

func smallTopo(seed int64) topology.Params {
	return topology.Params{
		TransitDomains:        3,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   3,
		StubDomainSizeMean:    40,
		TransitEdgeProb:       0.6,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.42,
		Seed:                  seed,
	}
}

func TestBuildDefaults(t *testing.T) {
	inst, err := Build(smallSetup(1))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Ring.NumVServers() != 256*5 {
		t.Fatalf("VS count %d", inst.Ring.NumVServers())
	}
	if inst.Tree.Root() == nil {
		t.Fatal("tree not built")
	}
	if inst.Graph != nil || inst.Mapper != nil {
		t.Fatal("no topology requested but one was built")
	}
	// Loads must be drawn.
	var total float64
	for _, vs := range inst.Ring.VServers() {
		total += vs.Load
	}
	if total <= 0 {
		t.Fatal("no loads assigned")
	}
}

func TestBuildValidation(t *testing.T) {
	s := smallSetup(1)
	s.Nodes = 0
	if _, err := Build(s); err == nil {
		t.Error("zero nodes should fail")
	}
	s = smallSetup(1)
	s.Mode = core.ProximityAware
	if _, err := Build(s); err == nil {
		t.Error("aware mode without topology should fail")
	}
	s = smallSetup(1)
	tp := smallTopo(1)
	s.Topology = &tp
	s.Nodes = 100000
	if _, err := Build(s); err == nil {
		t.Error("more nodes than stub nodes should fail")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallSetup(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallSetup(3))
	if err != nil {
		t.Fatal(err)
	}
	va, vb := a.Ring.VServers(), b.Ring.VServers()
	if len(va) != len(vb) {
		t.Fatal("VS counts differ")
	}
	for i := range va {
		if va[i].ID != vb[i].ID || va[i].Load != vb[i].Load {
			t.Fatal("same seed produced different rings")
		}
	}
}

func TestFig4ShapeSmall(t *testing.T) {
	ba, err := beforeAfter(smallSetup(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ba.UnitBefore) != 256 || len(ba.UnitAfter) != 256 {
		t.Fatalf("unit load lengths %d/%d", len(ba.UnitBefore), len(ba.UnitAfter))
	}
	// The paper's headline numbers: ~75% heavy before, none after.
	if p := ba.PercentHeavyBefore(); p < 0.5 || p > 0.95 {
		t.Errorf("percent heavy before = %.2f, want ~0.75", p)
	}
	if ba.Result.HeavyAfter != 0 {
		t.Errorf("heavy after = %d, want 0", ba.Result.HeavyAfter)
	}
}

func TestLoadByCapacitySmall(t *testing.T) {
	for _, pareto := range []bool{false, true} {
		s := smallSetup(5)
		s.Pareto = pareto
		inst, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		before := inst.Balancer.LoadByCapacityClass()
		if _, err := inst.Balancer.RunRound(); err != nil {
			t.Fatal(err)
		}
		after := inst.Balancer.LoadByCapacityClass()
		// After balancing, unit load must become far more uniform across
		// classes: compare the unit-load ratio of the largest to the
		// smallest class before and after.
		classes := after.Classes()
		if len(classes) < 3 {
			t.Skip("profile under-sampled at this scale")
		}
		lo, hi := classes[0], classes[len(classes)-2] // skip rarely-sampled top class
		ratioBefore := (before.Mean(lo) / lo) / (before.Mean(hi) / hi)
		ratioAfter := (after.Mean(lo) / lo) / (after.Mean(hi) / hi)
		if ratioAfter > ratioBefore/5 {
			t.Errorf("pareto=%v: unit-load skew only improved %vx -> %vx",
				pareto, ratioBefore, ratioAfter)
		}
	}
}

func TestMovedLoadDistributionSmall(t *testing.T) {
	dist, err := MovedLoadDistribution(smallTopo, 2, 100, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Aware.Total() <= 0 || dist.Ignorant.Total() <= 0 {
		t.Fatal("no load moved")
	}
	if dist.HeavyResidualAware != 0 || dist.HeavyResidualIgnorant != 0 {
		t.Errorf("residual heavy nodes: %d aware, %d ignorant",
			dist.HeavyResidualAware, dist.HeavyResidualIgnorant)
	}
	aware, ignorant := dist.MeanHops()
	if aware >= ignorant {
		t.Errorf("aware mean hops %.2f >= ignorant %.2f", aware, ignorant)
	}
	// Aware CDF must dominate at short distances.
	if dist.Aware.FractionWithin(2) <= dist.Ignorant.FractionWithin(2) {
		t.Error("aware does not dominate within 2 hops")
	}
}

func TestMovedLoadDistributionErrors(t *testing.T) {
	if _, err := MovedLoadDistribution(smallTopo, 0, 1, 128, nil); err == nil {
		t.Error("zero graphs should fail")
	}
}

func TestVSATimesScaling(t *testing.T) {
	rows, err := VSATimes([]int{2, 8}, []int{64, 256}, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[[2]int]PhaseTimes{}
	for _, r := range rows {
		byKey[[2]int{r.K, r.Nodes}] = r
		if r.LBIUp <= 0 || r.VSADone < r.LBIDown {
			t.Errorf("implausible times: %+v", r)
		}
	}
	// Higher K gives a shallower tree.
	if byKey[[2]int{8, 256}].TreeHeight >= byKey[[2]int{2, 256}].TreeHeight {
		t.Error("K=8 tree not shallower than K=2")
	}
	// 4x nodes must not cost 4x VSA time (logarithmic growth).
	if byKey[[2]int{2, 256}].VSADone > 3*byKey[[2]int{2, 64}].VSADone {
		t.Errorf("VSA time grew superlogarithmically: %d -> %d",
			byKey[[2]int{2, 64}].VSADone, byKey[[2]int{2, 256}].VSADone)
	}
}

func TestFig4Driver(t *testing.T) {
	// The public Fig4 entry point at reduced scale via DefaultSetup is
	// too slow for unit tests, so drive the same path through
	// beforeAfter (Fig4 is a thin wrapper) — plus sanity on the
	// percentage helper.
	ba, err := beforeAfter(smallSetup(20))
	if err != nil {
		t.Fatal(err)
	}
	p := ba.PercentHeavyBefore()
	if p <= 0 || p >= 1 {
		t.Fatalf("PercentHeavyBefore = %v", p)
	}
	empty := &BeforeAfter{Result: &core.Result{}}
	if empty.PercentHeavyBefore() != 0 {
		t.Fatal("empty census should report 0")
	}
}

func TestLoadByCapacityDriver(t *testing.T) {
	// Exercise the exported LoadByCapacity through a full (small) run by
	// temporarily standing in for the default scale via VSATimes-style
	// setup; the full-scale path is covered by cmd/lbsim and benches.
	rows, res, err := LoadByCapacity(21, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("heavy after = %d", res.HeavyAfter)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d capacity rows", len(rows))
	}
	var totalNodes int
	for _, r := range rows {
		totalNodes += r.Nodes
		if r.MeanAfter < 0 || r.UnitAfter < 0 {
			t.Fatalf("negative row values: %+v", r)
		}
	}
	if totalNodes != 4096 {
		t.Fatalf("rows cover %d nodes, want 4096", totalNodes)
	}
	// Unit load after must be far more uniform than before across the
	// mid classes.
	var r10, r1000 CapacityClassRow
	for _, r := range rows {
		if r.Capacity == 10 {
			r10 = r
		}
		if r.Capacity == 1000 {
			r1000 = r
		}
	}
	if r1000.UnitBefore/r10.UnitBefore > 0.2 {
		t.Error("fixture not skewed before balancing")
	}
	if ratio := r1000.UnitAfter / r10.UnitAfter; ratio < 0.5 || ratio > 4 {
		t.Errorf("unit-load ratio after = %v, want near 1", ratio)
	}
}

func TestVSATimesErrors(t *testing.T) {
	if _, err := VSATimes([]int{1}, []int{64}, 1, nil); err == nil {
		t.Error("K=1 should fail")
	}
	if _, err := VSATimes([]int{2}, []int{0}, 1, nil); err == nil {
		t.Error("zero nodes should fail")
	}
}

func TestChurnSensitivity(t *testing.T) {
	rows, err := ChurnSensitivity(30, 128, []int{0, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Failed > 0 {
			t.Errorf("churn %d: %d rounds failed", r.Churn, r.Failed)
		}
		if r.Rounds < 4 {
			t.Errorf("churn %d: only %d rounds ran", r.Churn, r.Rounds)
		}
	}
	// Churn keeps creating imbalance: the churned system should keep
	// finding heavy nodes in steady state while the static one is done
	// after round one.
	if rows[1].MeanHeavyBefore <= rows[0].MeanHeavyBefore {
		t.Errorf("churned system (%v heavy/round) not busier than static (%v)",
			rows[1].MeanHeavyBefore, rows[0].MeanHeavyBefore)
	}
	if rows[1].MeanHeavyAfter > rows[1].MeanHeavyBefore/2 {
		t.Errorf("rounds not absorbing churn: %v -> %v heavy",
			rows[1].MeanHeavyBefore, rows[1].MeanHeavyAfter)
	}
}

func TestChurnSensitivityValidation(t *testing.T) {
	if _, err := ChurnSensitivity(1, 64, []int{0}, 1); err == nil {
		t.Error("single round should fail")
	}
	if _, err := ChurnSensitivity(1, 64, []int{64}, 3); err == nil {
		t.Error("excessive churn rate should fail")
	}
	if _, err := ChurnSensitivity(1, 64, []int{-1}, 3); err == nil {
		t.Error("negative churn rate should fail")
	}
}

// TestChurnOnTopology is the regression test for the churn/underlay
// latency bug: on a topology-backed instance (ts5k-small), joiners used
// to arrive with the -1 "no underlay" sentinel, and the first latency
// query involving one read Distances.Between(-1, ...). Joiners now take
// real stub positions, so the churn sweep must complete without panics.
func TestChurnOnTopology(t *testing.T) {
	s := DefaultSetup(40)
	s.Nodes = 96
	tp := topology.TS5kSmall(40)
	s.Topology = &tp
	rows, err := ChurnSensitivitySetup(s, []int{3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Failed > 0 {
		t.Errorf("%d rounds failed under topology-backed churn", rows[0].Failed)
	}
	if rows[0].Rounds < 2 {
		t.Errorf("only %d rounds ran", rows[0].Rounds)
	}
}

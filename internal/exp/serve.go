package exp

import (
	"fmt"

	"p2plb/internal/core"
	"p2plb/internal/metrics"
	"p2plb/internal/par"
	"p2plb/internal/protocol"
	"p2plb/internal/serve"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

// ServeSetup parameterizes the tail-latency serving experiment: one
// request plan replayed against the same ring under three variants
// (balancer off, balancer on, balancer on without the lookup cache),
// measuring whether KT-tree balancing actually flattens the service
// tail — the end-to-end claim the paper never tested.
type ServeSetup struct {
	Seed      int64
	Nodes     int
	VSPerNode int
	K         int
	// Requests and Objects size the plan; Utilization calibrates the
	// open-loop arrival rate as a fraction of the ring's ideal request
	// throughput (the sum over nodes of 1/serviceTicks — what perfect
	// load placement could absorb). Above the weakest peers' fair-share
	// capacity, balancer-off queues grow without bound while
	// balancer-on moves the traffic off them: that contrast is the
	// experiment.
	Requests    int
	Objects     int
	Utilization float64
	Work        float64
	PutFraction float64
	// RoundInterval is the virtual time between balancing rounds in the
	// balancer-on variants.
	RoundInterval sim.Time
	// Warmup excludes the arrivals before this virtual time from the
	// latency summaries in every variant (see serve.Config.Warmup): the
	// initial transient — before the first promotion pass and the first
	// few balancing rounds can possibly have reacted — queues on the
	// same initial placement in all three variants and would otherwise
	// drown the steady-state contrast the sweep exists to measure.
	Warmup sim.Time
	// Metrics, when set, is attached to the balancer-on variant's
	// engine.
	Metrics *metrics.Registry
}

// DefaultServeSetup is the committed-benchmark configuration: the
// paper-scale 4096-node Gnutella-capacity ring serving one million
// Zipf-popularity requests at a quarter of the ring's ideal throughput
// — still far beyond what the dial-up peers can absorb unaided.
// Utilization and RoundInterval are set so the arrival window spans
// dozens of balancing rounds (window ≈ Requests/(U·ideal) ticks): the
// balancer can only help requests that arrive after it has observed and
// moved the hot virtual servers, so a window of very few rounds would
// measure queueing noise, not balancing.
func DefaultServeSetup(seed int64) ServeSetup {
	return ServeSetup{
		Seed:          seed,
		Nodes:         4096,
		VSPerNode:     5,
		K:             2,
		Requests:      1_000_000,
		Objects:       100_000,
		Utilization:   0.25,
		Work:          1000,
		PutFraction:   0.1,
		RoundInterval: 500,
		Warmup:        4000,
	}
}

func (s *ServeSetup) fill() {
	d := DefaultServeSetup(s.Seed)
	if s.Nodes == 0 {
		s.Nodes = d.Nodes
	}
	if s.VSPerNode == 0 {
		s.VSPerNode = d.VSPerNode
	}
	if s.K == 0 {
		s.K = d.K
	}
	if s.Requests == 0 {
		s.Requests = d.Requests
	}
	if s.Objects == 0 {
		s.Objects = d.Objects
	}
	if s.Utilization == 0 {
		s.Utilization = d.Utilization
	}
	if s.Work == 0 {
		s.Work = d.Work
	}
	if s.PutFraction == 0 {
		s.PutFraction = d.PutFraction
	}
	if s.RoundInterval == 0 {
		s.RoundInterval = d.RoundInterval
	}
	if s.Warmup == 0 {
		s.Warmup = d.Warmup
	}
}

// ServeRow is one variant's outcome.
type ServeRow struct {
	Variant  string  `json:"variant"`
	Balancer bool    `json:"balancer"`
	Cache    bool    `json:"cache"`
	Nodes    int     `json:"nodes"`
	Rate     float64 `json:"rate"` // calibrated arrivals per tick
	*serve.Report
}

type serveVariant struct {
	name       string
	bal, cache bool
}

// ServeSweep runs the three serving variants on identically built rings
// (same seed, same plan) in parallel and returns their rows in variant
// order: balancer-off, balancer-on, balancer-on-nocache. The first two
// pin the tail-latency claim, the third pins the cache's hop savings.
func ServeSweep(s ServeSetup) ([]ServeRow, error) {
	s.fill()
	if s.Utilization < 0 {
		return nil, fmt.Errorf("exp: negative utilization %v", s.Utilization)
	}
	variants := []serveVariant{
		{"balancer-off", false, true},
		{"balancer-on", true, true},
		{"balancer-on-nocache", true, false},
	}
	return par.MapErr(variants, 0, func(v serveVariant) (ServeRow, error) {
		return serveRow(s, v)
	})
}

func serveRow(s ServeSetup, v serveVariant) (ServeRow, error) {
	setup := DefaultSetup(s.Seed)
	setup.Nodes = s.Nodes
	setup.VSPerNode = s.VSPerNode
	setup.K = s.K
	if v.bal && v.cache && s.Metrics != nil {
		setup.Metrics = s.Metrics
	}
	inst, err := Build(setup)
	if err != nil {
		return ServeRow{}, err
	}
	// The serving layer owns the loads here: discard the sampled draws
	// (the primed object store re-credits the analytic expectation, and
	// observation takes over from there).
	for _, vs := range inst.Ring.VServers() {
		vs.Load = 0
	}

	// Ideal request throughput: what the ring absorbs if work spreads
	// perfectly across all capacity (service is fractional: one request
	// occupies its node for Work/Capacity ticks).
	var ideal float64
	for _, n := range inst.Ring.Nodes() {
		ideal += n.Capacity / s.Work
	}
	rate := s.Utilization * ideal

	cfg := serve.Config{
		Plan: workload.PlanSpec{
			Seed:        s.Seed,
			Requests:    s.Requests,
			Objects:     s.Objects,
			Rate:        rate,
			PutFraction: s.PutFraction,
			Origins:     s.Nodes,
		},
		Work:   s.Work,
		Warmup: s.Warmup,
	}
	if !v.cache {
		cfg.CacheSize = -1
	}
	srv, err := serve.New(inst.Engine, inst.Ring, cfg)
	if err != nil {
		return ServeRow{}, err
	}
	if v.bal {
		runner, err := protocol.NewRunner(inst.Ring, inst.Tree, protocol.Config{
			Core: core.Config{Epsilon: inst.Setup.Epsilon, Loads: srv},
		})
		if err != nil {
			return ServeRow{}, err
		}
		srv.UseBalancer(runner, s.RoundInterval)
	}
	rep, err := srv.Run()
	if err != nil {
		return ServeRow{}, fmt.Errorf("exp: serve variant %s: %w", v.name, err)
	}
	return ServeRow{
		Variant:  v.name,
		Balancer: v.bal,
		Cache:    v.cache,
		Nodes:    s.Nodes,
		Rate:     rate,
		Report:   rep,
	}, nil
}

package exp

import (
	"fmt"

	"p2plb/internal/core"
	"p2plb/internal/daemon"
	"p2plb/internal/par"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
)

// ChurnRow is one churn-rate operating point of the robustness
// experiment: `Churn` nodes crash and `Churn` fresh nodes join before
// every balancing round.
type ChurnRow struct {
	Churn int // node replacements per round
	// Rounds completed and how many of them failed outright.
	Rounds, Failed int
	// TimedOutChildren sums the per-round epochs that proceeded on
	// partial data, and AbortedTransfers the pairings lost to dead
	// endpoints — the protocol's damage report.
	TimedOutChildren int
	AbortedTransfers int
	// MeanHeavyBefore/MeanHeavyAfter average the per-round censuses
	// over the steady-state rounds (the first round excluded).
	MeanHeavyBefore float64
	MeanHeavyAfter  float64
	// MovedPerRound is the steady-state mean moved load.
	MovedPerRound float64
}

// ChurnSensitivity measures how the balancer behaves as membership
// churn grows — the robustness question the paper leaves to future work
// (§5.1) — on the default no-underlay setup.
func ChurnSensitivity(seed int64, nodes int, rates []int, rounds int) ([]ChurnRow, error) {
	s := DefaultSetup(seed)
	s.Nodes = nodes
	return ChurnSensitivitySetup(s, rates, rounds)
}

// ChurnSensitivitySetup runs the churn sweep on an arbitrary setup,
// including topology-backed ones (joiners then take real stub underlay
// positions). For each rate it runs `rounds` message-level rounds on a
// fresh system where `rate` random nodes crash and `rate` join right
// before every round; crashes are visible to the round itself only
// through the tree's stale state (repair runs before each round, so the
// stress is on loads and membership, with the in-round crash path
// covered separately by the protocol tests). Rates run in parallel —
// each builds its own engine from the setup seed, so rows are
// independent of scheduling.
func ChurnSensitivitySetup(s Setup, rates []int, rounds int) ([]ChurnRow, error) {
	if rounds < 2 {
		return nil, fmt.Errorf("exp: need at least two rounds")
	}
	for _, rate := range rates {
		if rate < 0 || rate >= s.Nodes/2 {
			return nil, fmt.Errorf("exp: churn rate %d out of range for %d nodes", rate, s.Nodes)
		}
	}
	return par.MapErr(rates, 0, func(rate int) (ChurnRow, error) {
		return churnRow(s, rate, rounds)
	})
}

// churnRow runs one churn rate on a fresh instance.
func churnRow(s Setup, rate, rounds int) (ChurnRow, error) {
	inst, err := Build(s)
	if err != nil {
		return ChurnRow{}, err
	}
	// Build fills defaults (sentinels resolved, profile set) into the
	// instance's Setup copy; read the resolved values from there.
	profile := inst.Setup.Profile
	vsPerNode := inst.Setup.VSPerNode
	// Joiners on a topology-backed instance must occupy real underlay
	// positions — the latency model rejects the -1 sentinel.
	var stubs []topology.NodeID
	if inst.Graph != nil {
		stubs = inst.Graph.StubNodes()
	}
	// Rounds on a topology-backed instance pay real underlay latencies
	// on every message, so they need a much wider beat to finish before
	// the next one starts (overlap would surface as spurious "round
	// already active" failures, not as churn behaviour). Anything above
	// the protocol's hard round deadline — 8 epoch windows of
	// ChildTimeout·(height+1), with ChildTimeout defaulting to 5000 —
	// guarantees a tick never lands mid-round.
	interval := sim.Time(5000)
	if inst.Graph != nil {
		interval = sim.Time(9 * 5000 * (inst.Tree.Height() + 2))
	}
	d, err := daemon.New(inst.Ring, inst.Tree, daemon.Config{
		RoundInterval: interval,
		Protocol:      protocol.Config{Core: core.Config{Epsilon: inst.Setup.Epsilon}},
		BeforeRound: func() {
			// One membership snapshot per round with swap-remove
			// sampling: uniform over the round's initial membership and
			// O(rate) instead of re-materializing AliveNodes() (O(n))
			// after every crash.
			alive := inst.Ring.AliveNodes()
			for i := 0; i < rate && len(alive) > 0; i++ {
				j := inst.Engine.Rand().Intn(len(alive))
				inst.Ring.RemoveNode(alive[j])
				alive[j] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
			}
			for i := 0; i < rate; i++ {
				u := topology.NodeID(-1)
				if len(stubs) > 0 {
					u = stubs[inst.Engine.Rand().Intn(len(stubs))]
				}
				// Fresh nodes arrive with freshly loaded regions: the
				// ring redistributed the dead nodes' loads to ring
				// successors; joiners start with whatever falls into
				// their new regions (zero until objects/loads move),
				// which is exactly the imbalance the next round fixes.
				inst.Ring.AddNode(u, profile.Sample(inst.Engine.Rand()), vsPerNode)
			}
		},
	})
	if err != nil {
		return ChurnRow{}, err
	}
	if err := d.Start(); err != nil {
		return ChurnRow{}, err
	}
	inst.Engine.RunUntil(interval*sim.Time(rounds) + interval/2)
	d.Stop()
	inst.Engine.Run()

	row := ChurnRow{Churn: rate}
	steady := 0
	for i, rec := range d.History() {
		row.Rounds++
		if rec.Err != nil {
			row.Failed++
			continue
		}
		row.TimedOutChildren += rec.Result.TimedOutChildren
		row.AbortedTransfers += rec.Result.AbortedTransfers
		if i == 0 {
			continue
		}
		steady++
		row.MeanHeavyBefore += float64(rec.Result.HeavyBefore)
		row.MeanHeavyAfter += float64(rec.Result.HeavyAfter)
		row.MovedPerRound += rec.Result.MovedLoad
	}
	if steady > 0 {
		row.MeanHeavyBefore /= float64(steady)
		row.MeanHeavyAfter /= float64(steady)
		row.MovedPerRound /= float64(steady)
	}
	return row, nil
}

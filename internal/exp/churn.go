package exp

import (
	"fmt"

	"p2plb/internal/core"
	"p2plb/internal/daemon"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
)

// ChurnRow is one churn-rate operating point of the robustness
// experiment: `Churn` nodes crash and `Churn` fresh nodes join before
// every balancing round.
type ChurnRow struct {
	Churn int // node replacements per round
	// Rounds completed and how many of them failed outright.
	Rounds, Failed int
	// TimedOutChildren sums the per-round epochs that proceeded on
	// partial data, and AbortedTransfers the pairings lost to dead
	// endpoints — the protocol's damage report.
	TimedOutChildren int
	AbortedTransfers int
	// MeanHeavyBefore/MeanHeavyAfter average the per-round censuses
	// over the steady-state rounds (the first round excluded).
	MeanHeavyBefore float64
	MeanHeavyAfter  float64
	// MovedPerRound is the steady-state mean moved load.
	MovedPerRound float64
}

// ChurnSensitivity measures how the balancer behaves as membership
// churn grows — the robustness question the paper leaves to future work
// (§5.1). For each rate it runs `rounds` message-level rounds on a
// fresh system where `rate` random nodes crash and `rate` join right
// before every round; crashes are visible to the round itself only
// through the tree's stale state (repair runs before each round, so the
// stress is on loads and membership, with the in-round crash path
// covered separately by the protocol tests).
func ChurnSensitivity(seed int64, nodes int, rates []int, rounds int) ([]ChurnRow, error) {
	if rounds < 2 {
		return nil, fmt.Errorf("exp: need at least two rounds")
	}
	var out []ChurnRow
	for _, rate := range rates {
		if rate < 0 || rate >= nodes/2 {
			return nil, fmt.Errorf("exp: churn rate %d out of range for %d nodes", rate, nodes)
		}
		s := DefaultSetup(seed)
		s.Nodes = nodes
		inst, err := Build(s)
		if err != nil {
			return nil, err
		}
		// Build fills defaults (sentinels resolved, profile set) into the
		// instance's Setup copy; read the resolved values from there.
		profile := inst.Setup.Profile
		const interval = sim.Time(5000)
		rate := rate
		d, err := daemon.New(inst.Ring, inst.Tree, daemon.Config{
			RoundInterval: 5000,
			Protocol:      protocol.Config{Core: core.Config{Epsilon: inst.Setup.Epsilon}},
			BeforeRound: func() {
				alive := inst.Ring.AliveNodes()
				for i := 0; i < rate && len(alive) > i; i++ {
					inst.Ring.RemoveNode(alive[inst.Engine.Rand().Intn(len(alive))])
					alive = inst.Ring.AliveNodes()
				}
				for i := 0; i < rate; i++ {
					n := inst.Ring.AddNode(-1, profile.Sample(inst.Engine.Rand()), s.VSPerNode)
					// Fresh nodes arrive with freshly loaded regions: the
					// ring redistributed the dead nodes' loads to ring
					// successors; joiners start with whatever falls into
					// their new regions (zero until objects/loads move),
					// which is exactly the imbalance the next round fixes.
					_ = n
				}
			},
		})
		if err != nil {
			return nil, err
		}
		if err := d.Start(); err != nil {
			return nil, err
		}
		inst.Engine.RunUntil(interval*sim.Time(rounds) + interval/2)
		d.Stop()
		inst.Engine.Run()

		row := ChurnRow{Churn: rate}
		steady := 0
		for i, rec := range d.History() {
			row.Rounds++
			if rec.Err != nil {
				row.Failed++
				continue
			}
			row.TimedOutChildren += rec.Result.TimedOutChildren
			row.AbortedTransfers += rec.Result.AbortedTransfers
			if i == 0 {
				continue
			}
			steady++
			row.MeanHeavyBefore += float64(rec.Result.HeavyBefore)
			row.MeanHeavyAfter += float64(rec.Result.HeavyAfter)
			row.MovedPerRound += rec.Result.MovedLoad
		}
		if steady > 0 {
			row.MeanHeavyBefore /= float64(steady)
			row.MeanHeavyAfter /= float64(steady)
			row.MovedPerRound /= float64(steady)
		}
		out = append(out, row)
	}
	return out, nil
}

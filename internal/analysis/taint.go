package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the dataflow half of the engine: forward may-taint
// propagation over the CFG of cfg.go, used by detflow. Two taint kinds
// distinguish *order* taint (a value whose identity depends on
// map-iteration order — a range-over-map loop variable, a value
// computed from one) from *sequence* taint (a container whose element
// order is nondeterministic — a slice built by appending under a map
// range, directly or through an in-package helper). Order taint only
// escalates into sequence taint through order-sensitive accumulation
// (append, string or float +=); commutative accumulation (an int sum
// over map values) stays clean, which is what separates this analysis
// from blanket map-range bans. Sort calls (and in-package helpers
// whose name says they sort or canonicalize) are sanitizers: they kill
// the taint of their argument, making the sorted-results idiom check
// clean without annotations.
//
// The analysis is intra-procedural with one interprocedural device:
// flowSummaries records, per in-package function, which parameters
// flow into its results and which are sorted on the way, so a helper
// that launders an append (`out = push(out, k)`) still propagates and
// a helper that canonicalizes (`return sorted(out)`) still cleanses.

type taintKind int

const (
	// kindOrder marks a scalar derived from map-iteration order.
	kindOrder taintKind = iota + 1
	// kindSeq marks a sequence whose element order is nondeterministic.
	kindSeq
)

// taintFact is why one object is tainted.
type taintFact struct {
	kind taintKind
	why  string
}

// taintState maps tainted objects to facts. States are small; copying
// at joins is fine.
type taintState map[types.Object]taintFact

func (s taintState) clone() taintState {
	out := make(taintState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join unions other into s, keeping the stronger kind, and reports
// whether s changed.
func (s taintState) join(other taintState) bool {
	changed := false
	for obj, f := range other {
		cur, ok := s[obj]
		if !ok || f.kind > cur.kind {
			s[obj] = f
			changed = true
		}
	}
	return changed
}

func (s taintState) equal(other taintState) bool {
	if len(s) != len(other) {
		return false
	}
	for obj, f := range s {
		of, ok := other[obj]
		if !ok || of.kind != f.kind {
			return false
		}
	}
	return true
}

// taintHooks parameterize the engine: detflow wires the real policy,
// the unit tests wire toy sources/sinks.
type taintHooks struct {
	// sourceCall returns a taint fact for calls that are fresh sources
	// (pointer-identity reads; the tests' src()). Zero kind means not a
	// source.
	sourceCall func(call *ast.CallExpr) taintFact
	// sink is invoked for every node with the state in force before
	// it, in a final pass after the fixpoint; policies report there.
	sink func(n ast.Node, state taintState)
}

// taintFunc runs the forward taint fixpoint over one function and then
// replays each block against its stable entry state, invoking
// hooks.sink for every node.
func (p *Pass) taintFunc(fn ast.Node, hooks taintHooks) {
	g := p.FuncCFG(fn)
	in := make([]taintState, len(g.Blocks))
	out := make([]taintState, len(g.Blocks))
	for i := range g.Blocks {
		in[i] = make(taintState)
		out[i] = make(taintState)
	}
	// Iterate to fixpoint. Reverse-postorder would converge faster;
	// round-robin is plenty for function-sized graphs.
	for changed := true; changed; {
		changed = false
		for i, b := range g.Blocks {
			state := make(taintState)
			for _, pred := range g.Preds(b) {
				state.join(out[pred.Index])
			}
			in[i] = state
			work := state.clone()
			for _, n := range b.Nodes {
				p.taintTransfer(n, work, hooks)
			}
			if !work.equal(out[i]) {
				out[i] = work
				changed = true
			}
		}
	}
	for i, b := range g.Blocks {
		work := in[i].clone()
		for _, n := range b.Nodes {
			hooks.sink(n, work)
			p.taintTransfer(n, work, hooks)
		}
	}
}

// taintTransfer applies one node's effect to state.
func (p *Pass) taintTransfer(n ast.Node, state taintState, hooks taintHooks) {
	// Sanitizers anywhere in the node (statement-level granularity).
	// A RangeStmt sits in the loop-head block but contains its whole
	// body, whose statements live in their own blocks — scan only the
	// range operand there. Closure bodies run elsewhere; skip them.
	scan := n
	if rng, ok := n.(*ast.RangeStmt); ok {
		scan = rng.X
	}
	ast.Inspect(scan, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			for _, cleansed := range p.sanitizerTargets(call) {
				if obj := p.exprObj(cleansed); obj != nil {
					delete(state, obj)
				}
			}
		}
		return true
	})

	switch x := n.(type) {
	case *ast.RangeStmt:
		p.taintRangeHead(x, state)
	case *ast.AssignStmt:
		p.taintAssign(x, state, hooks)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						p.taintBind(name, vs.Values[i], state, hooks, false)
					}
				}
			}
		}
	}
}

// taintRangeHead taints the loop variables of order-sensitive ranges:
// ranging over a map gives the key and value order taint; ranging over
// a sequence-tainted slice gives the element positional (order) taint.
func (p *Pass) taintRangeHead(rng *ast.RangeStmt, state taintState) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	var fact taintFact
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		fact = taintFact{kind: kindOrder, why: "map-iteration order"}
	} else if f, tainted := p.exprTaint(rng.X, state); tainted && f.kind == kindSeq {
		fact = taintFact{kind: kindOrder, why: f.why}
	} else {
		return
	}
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				state[obj] = fact
			} else if obj := p.Info.Uses[id]; obj != nil {
				state[obj] = fact
			}
		}
	}
}

// taintAssign handles `=`, `:=` and the accumulating ops.
func (p *Pass) taintAssign(as *ast.AssignStmt, state taintState, hooks taintHooks) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Order-sensitive accumulation: float arithmetic and string
		// concatenation escalate order taint into sequence taint;
		// integer accumulation is commutative and stays clean.
		lhs := as.Lhs[0]
		obj := p.exprObj(lhs)
		if obj == nil {
			return
		}
		f, tainted := p.exprTaint(as.Rhs[0], state)
		if !tainted {
			return
		}
		t, ok := p.Info.Types[lhs]
		if !ok {
			return
		}
		if b, ok := t.Type.Underlying().(*types.Basic); ok {
			why := f.why
			if f.kind == kindSeq {
				// already described; keep the original construction
				state[obj] = taintFact{kind: kindSeq, why: why}
				return
			}
			switch {
			case b.Info()&types.IsFloat != 0:
				state[obj] = taintFact{kind: kindSeq, why: "float-accumulated in " + why}
			case b.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
				state[obj] = taintFact{kind: kindSeq, why: "concatenated in " + why}
			}
		}
		return
	case token.ASSIGN, token.DEFINE:
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			// Tuple assignment from one call: every lhs inherits.
			for _, lhs := range as.Lhs {
				p.taintBind(lhs, as.Rhs[0], state, hooks, true)
			}
			return
		}
		for i, lhs := range as.Lhs {
			if i < len(as.Rhs) {
				p.taintBind(lhs, as.Rhs[i], state, hooks, false)
			}
		}
	}
}

// taintBind assigns rhs's taint to the lvalue lhs: a tainted rhs
// taints it, an untainted rhs strong-updates (kills) a plain variable.
// Index lvalues (x[i] = v) neither taint nor kill the container — the
// positions written are a deterministic set even when the loop order
// is not.
func (p *Pass) taintBind(lhs, rhs ast.Expr, state taintState, hooks taintHooks, tuple bool) {
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
	default:
		return
	}
	obj := p.exprObj(lhs)
	if obj == nil {
		return
	}
	if f, tainted := p.taintOfRHS(rhs, state, hooks); tainted {
		state[obj] = f
	} else if !tuple {
		delete(state, obj) // strong update
	}
}

// taintOfRHS decides the taint of an assigned value: a source call, a
// sequence built from tainted parts, or a value mentioning a tainted
// object.
func (p *Pass) taintOfRHS(rhs ast.Expr, state taintState, hooks taintHooks) (taintFact, bool) {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if hooks.sourceCall != nil {
			if f := hooks.sourceCall(call); f.kind != 0 {
				return f, true
			}
		}
		if f, ok := p.callResultTaint(call, state, hooks); ok {
			return f, true
		}
		// A call result not covered by a summary does not propagate —
		// except conversions, which are the identity.
		if calleeFunc(p.Info, call) == nil && len(call.Args) == 1 && p.isConversion(call) {
			return p.exprTaint(call.Args[0], state)
		}
		return taintFact{}, false
	}
	return p.exprTaint(rhs, state, hooks)
}

// callResultTaint propagates taint through calls that build sequences:
// the builtin append, and in-package helpers whose flow summary says a
// parameter reaches the result.
func (p *Pass) callResultTaint(call *ast.CallExpr, state taintState, hooks taintHooks) (taintFact, bool) {
	if p.isBuiltin(call, "append") {
		for _, arg := range call.Args {
			if f, tainted := p.exprTaint(arg, state, hooks); tainted {
				if f.kind == kindSeq {
					return f, true // already a described sequence
				}
				return taintFact{kind: kindSeq, why: "built in " + f.why}, true
			}
		}
		return taintFact{}, false
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != p.Pkg {
		return taintFact{}, false
	}
	sum := p.flowSummary(fn)
	if sum == nil {
		return taintFact{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	worst := taintFact{}
	for i, arg := range call.Args {
		pi := i
		if sig != nil && sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi >= len(sum.flows) || !sum.flows[pi] {
			continue
		}
		f, tainted := p.exprTaint(arg, state, hooks)
		if !tainted {
			continue
		}
		if f.kind > worst.kind {
			worst = f
		}
	}
	if worst.kind == 0 {
		return taintFact{}, false
	}
	// A sequence-typed result assembled from order-tainted scalars is
	// itself sequence-tainted; otherwise the input kind carries over.
	// Sequence whys are already self-describing — don't re-wrap them
	// (the fixpoint revisits this call with its own prior result).
	if worst.kind == kindOrder {
		if isSequenceType(p.Info.Types[call].Type) {
			return taintFact{kind: kindSeq, why: "built in " + worst.why + " (via " + fn.Name() + ")"}, true
		}
		worst.why += " (via " + fn.Name() + ")"
	}
	return worst, true
}

// exprTaint reports whether e mentions a tainted object (or is itself
// a source/sequence-building call), and with what fact.
func (p *Pass) exprTaint(e ast.Expr, state taintState, hooksOpt ...taintHooks) (taintFact, bool) {
	var hooks taintHooks
	if len(hooksOpt) > 0 {
		hooks = hooksOpt[0]
	}
	var found taintFact
	ast.Inspect(e, func(n ast.Node) bool {
		if found.kind == kindSeq {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj != nil {
				if f, ok := state[obj]; ok && f.kind > found.kind {
					found = f
				}
			}
		case *ast.CallExpr:
			if hooks.sourceCall != nil {
				if f := hooks.sourceCall(x); f.kind != 0 && f.kind > found.kind {
					found = f
				}
			}
			if f, ok := p.callResultTaint(x, state, hooks); ok && f.kind > found.kind {
				found = f
			}
			// Conversions are the identity: look through them. Other
			// call results do not propagate their arguments' taint.
			return p.isConversion(x)
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found, found.kind != 0
}

// exprObj resolves an lvalue-ish expression to the object taint
// attaches to: a plain identifier's variable, or the field variable of
// a selector.
func (p *Pass) exprObj(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Defs[x]; obj != nil {
			return obj
		}
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		return p.Info.Uses[x.Sel]
	case *ast.StarExpr:
		return p.exprObj(x.X)
	case *ast.IndexExpr:
		return p.exprObj(x.X)
	case *ast.SliceExpr:
		return p.exprObj(x.X)
	}
	return nil
}

// sanitizerTargets returns the expressions a call cleanses: the
// arguments of sort-package (and slices-package Sort*) calls, and of
// in-package helpers or methods whose name contains "sort" or "canon".
func (p *Pass) sanitizerTargets(call *ast.CallExpr) []ast.Expr {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return nil
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "sort":
			// Everything in package sort except the Search* family
			// orders its argument (Strings, Ints, Float64s, Slice, …).
			if strings.HasPrefix(fn.Name(), "Search") {
				return nil
			}
			return call.Args
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				return call.Args
			}
			return nil
		}
	}
	lower := strings.ToLower(fn.Name())
	if !strings.Contains(lower, "sort") && !strings.Contains(lower, "canon") {
		return nil
	}
	targets := append([]ast.Expr{}, call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		targets = append(targets, sel.X)
	}
	return targets
}

func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether call is a type conversion.
func (p *Pass) isConversion(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// isSequenceType reports whether t is a slice, map or string — a value
// whose element order is observable.
func isSequenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// ---- in-package flow summaries ----

// flowSummary says, for one function, which parameters flow into its
// results. Parameters that are passed through a sort on the way are
// treated as cleansed (the canonicalizing-helper idiom).
type flowSummary struct {
	flows []bool
}

// flowSummary computes (and caches) the summary of an in-package
// function, or nil for functions without a declaration in this
// package. Recursive call chains are cut off conservatively: a
// function already being summarized contributes no flow.
func (p *Pass) flowSummary(fn *types.Func) *flowSummary {
	if sum, ok := p.facts.summaries[fn]; ok {
		return sum
	}
	if p.facts.inSummary[fn] {
		return nil
	}
	decl := p.funcDecl(fn)
	if decl == nil || decl.Body == nil {
		p.facts.summaries[fn] = nil
		return nil
	}
	p.facts.inSummary[fn] = true
	sum := p.computeFlowSummary(fn, decl)
	delete(p.facts.inSummary, fn)
	p.facts.summaries[fn] = sum
	return sum
}

// funcDecl finds the declaration of fn in the package files.
func (p *Pass) funcDecl(fn *types.Func) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if p.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// computeFlowSummary derives the parameter→result flows of one
// function with a small flow-insensitive fixpoint: the set of objects
// derived from each parameter grows through assignments (and appends
// and in-package calls) until stable; a parameter whose derived set is
// sorted before return is dropped; the flows are the parameters whose
// derived set intersects a return expression.
func (p *Pass) computeFlowSummary(fn *types.Func, decl *ast.FuncDecl) *flowSummary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	nparams := sig.Params().Len()
	if nparams == 0 || sig.Results().Len() == 0 {
		return &flowSummary{flows: make([]bool, nparams)}
	}
	const maxTracked = 64
	if nparams > maxTracked {
		nparams = maxTracked
	}
	// derived[obj] is a bitmask of parameter indices obj descends from.
	derived := make(map[types.Object]uint64)
	for i := 0; i < nparams; i++ {
		derived[sig.Params().At(i)] = 1 << uint(i)
	}
	exprMask := func(e ast.Expr) uint64 {
		var mask uint64
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				obj := p.Info.Uses[x]
				if obj == nil {
					obj = p.Info.Defs[x]
				}
				mask |= derived[obj]
			case *ast.CallExpr:
				if p.isBuiltin(x, "append") || p.isConversion(x) {
					return true // args flow through
				}
				if callee := calleeFunc(p.Info, x); callee != nil && callee.Pkg() == p.Pkg {
					if sub := p.flowSummary(callee); sub != nil {
						csig, _ := callee.Type().(*types.Signature)
						for i, arg := range x.Args {
							pi := i
							if csig != nil && csig.Variadic() && pi >= csig.Params().Len() {
								pi = csig.Params().Len() - 1
							}
							if pi < len(sub.flows) && sub.flows[pi] {
								var sm uint64
								ast.Inspect(arg, func(m ast.Node) bool {
									if id, ok := m.(*ast.Ident); ok {
										sm |= derived[p.Info.Uses[id]]
									}
									return true
								})
								mask |= sm
							}
						}
					}
				}
				return false
			case *ast.FuncLit:
				return false
			}
			return true
		})
		return mask
	}
	for iter := 0; iter < 8; iter++ {
		changed := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				var rhs ast.Expr
				switch {
				case i < len(as.Rhs) && len(as.Rhs) == len(as.Lhs):
					rhs = as.Rhs[i]
				case len(as.Rhs) == 1:
					rhs = as.Rhs[0]
				default:
					continue
				}
				obj := p.exprObj(lhs)
				if obj == nil {
					continue
				}
				m := exprMask(rhs)
				if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
					m |= exprMask(lhs) // accumulating ops keep their own mask
				}
				if derived[obj]&m != m {
					derived[obj] |= m
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	// Sort calls cleanse the parameters whose derivatives they touch.
	var sorted uint64
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, t := range p.sanitizerTargets(call) {
			if obj := p.exprObj(t); obj != nil {
				sorted |= derived[obj]
			}
		}
		return true
	})
	var resultMask uint64
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			resultMask |= exprMask(r)
		}
		return true
	})
	resultMask &^= sorted
	flows := make([]bool, nparams)
	for i := 0; i < nparams; i++ {
		flows[i] = resultMask&(1<<uint(i)) != 0
	}
	return &flowSummary{flows: flows}
}

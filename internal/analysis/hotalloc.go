package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc polices allocation on the paths that dominate simulation
// wall time. It is annotation-driven: a function marked
//
//	//lbvet:hotpath
//
// in its doc comment is checked for allocation-causing constructs —
// fmt formatting, make/new, map and slice literals, &T{} literals,
// closures, growing appends, and interface boxing at call sites
// (a concrete non-pointer argument passed as an interface parameter,
// the hidden allocation behind heap.Push and friends). Anything
// intentional stays, justified by a //lbvet:ignore hotalloc annotation,
// which turns "this allocation is fine" from tribal knowledge into a
// reviewed, greppable statement.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-causing constructs inside //lbvet:hotpath-annotated functions",
	Run:  runHotalloc,
}

const hotpathMarker = "//lbvet:hotpath"

// Hotpaths returns (building on first use) the set of function
// declarations in file annotated //lbvet:hotpath.
func (p *Pass) Hotpaths(file *ast.File) map[ast.Node]bool {
	if m, ok := p.facts.hotpaths[file]; ok {
		return m
	}
	m := make(map[ast.Node]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, hotpathMarker) {
				m[fd] = true
				break
			}
		}
	}
	p.facts.hotpaths[file] = m
	return m
}

func runHotalloc(pass *Pass) {
	for _, file := range pass.Files {
		for fn := range pass.Hotpaths(file) {
			fd := fn.(*ast.FuncDecl)
			if fd.Body == nil {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure literal in hotpath %s allocates; hoist it or restructure so the hot loop stays closure-free", fd.Name.Name)
			return false // the literal itself is the finding; don't re-flag its body
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					name := "composite"
					if lit.Type != nil {
						name = exprString(lit.Type)
					}
					pass.Reportf(x.Pos(), "&%s{…} in hotpath %s heap-allocates; reuse an existing value or a pool", name, fd.Name.Name)
					return false
				}
			}
		case *ast.CompositeLit:
			checkHotComposite(pass, fd, x)
		case *ast.CallExpr:
			checkHotCall(pass, fd, x)
		}
		return true
	})
}

func checkHotComposite(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in hotpath %s allocates; hoist it to a package/struct field and reuse", fd.Name.Name)
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in hotpath %s allocates; reuse a preallocated buffer", fd.Name.Name)
	}
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// fmt formatting: both the varargs slice and the boxed operands
	// allocate, and Sprintf allocates its result string.
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hotpath %s allocates (varargs slice, boxed operands, result); precompute the string or use a cached key", fn.Name(), fd.Name.Name)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hotpath %s allocates; preallocate outside the hot loop and reuse", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new in hotpath %s allocates; reuse an existing value", fd.Name.Name)
			case "append":
				pass.Reportf(call.Pos(), "append in hotpath %s may grow and allocate; size the buffer up front or reuse a preallocated one", fd.Name.Name)
			}
			return
		}
	}
	checkHotBoxing(pass, fd, call)
}

// checkHotBoxing flags concrete non-pointer arguments passed as
// interface parameters — the conversion heap-allocates a copy of the
// value (the classic hidden cost of heap.Push(h, ev)).
func checkHotBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				break
			}
			pi = np - 1
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == np-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) {
			continue
		}
		if isPointerSized(at.Type) || at.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s by value as an interface in hotpath %s boxes it onto the heap; pass a pointer or use a concrete-typed container", at.Type.String(), fd.Name.Name)
	}
}

// isPointerSized reports whether converting t to an interface stores a
// pointer directly instead of heap-allocating a copy.
func isPointerSized(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// Package analysis is lbvet's engine: a stdlib-only static-analysis
// driver (go/ast + go/parser + go/types + go/build, no go/packages)
// with project-specific analyzers that machine-check the invariants
// this reproduction otherwise enforces only by comment and review:
//
//   - randcontract: the sim.Engine.Rand single-goroutine contract —
//     no engine RNG (or any captured *math/rand.Rand) used inside a
//     `go` statement or a par worker callback.
//   - nondeterminism: the deterministic packages (sim, core, protocol,
//     ktree, exp, workload) must not read wall clocks, the global
//     math/rand source, or feed results from unordered map iteration.
//   - identcompare: no raw </>/- arithmetic on ident.ID outside
//     internal/ident — it silently breaks at the 2^32 ring wrap; use
//     Dist/Between/Region instead.
//   - metricsguard: metric registry calls on hot paths stay behind the
//     nil-registry guard pattern established by the metrics layer.
//   - layercheck: the runtime-agnostic protocol core (internal/lbnode)
//     must not import sim, faults or par, and must not spawn
//     goroutines — executors own delivery and concurrency.
//
// Findings can be suppressed with an annotation on the same line or
// the line immediately above:
//
//	//lbvet:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// lbvet:ignore annotations.
	Name string
	// Doc is a one-line description for `lbvet -help`.
	Doc string
	// Run inspects the package and reports findings through pass.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path ("p2plb/internal/sim").
	Path string
	// Files are the parsed source files, including in-package tests.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// All returns the analyzers in the order lbvet runs them.
func All() []*Analyzer {
	return []*Analyzer{
		RandContract,
		Nondeterminism,
		IdentCompare,
		MetricsGuard,
		Layercheck,
	}
}

// ByName resolves a comma-separated analyzer list ("all" or "" means
// every analyzer).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is one parsed //lbvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const ignorePrefix = "//lbvet:ignore"

// collectIgnores parses the lbvet:ignore annotations of a file into a
// map from the source line they apply to (their own line, which also
// covers the line below for standalone comments) to directives.
func collectIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			out = append(out, &ignoreDirective{
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				pos:      fset.Position(c.Pos()),
			})
		}
	}
	return out
}

// Filter drops findings suppressed by lbvet:ignore annotations in files
// and reports malformed or unused annotations as findings of the
// pseudo-analyzer "lbvet" (those cannot be suppressed). It returns the
// surviving findings sorted by position.
func Filter(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	var directives []*ignoreDirective
	for _, f := range files {
		directives = append(directives, collectIgnores(fset, f)...)
	}
	var out []Finding
	for _, fd := range findings {
		suppressed := false
		for _, d := range directives {
			if d.analyzer != fd.Analyzer || d.reason == "" {
				continue
			}
			if d.pos.Filename != fd.Pos.Filename {
				continue
			}
			// An annotation covers its own line (trailing comment) and
			// the line immediately below (standalone comment line).
			if d.pos.Line == fd.Pos.Line || d.pos.Line == fd.Pos.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, fd)
		}
	}
	for _, d := range directives {
		switch {
		case d.analyzer == "":
			out = append(out, Finding{
				Analyzer: "lbvet",
				Pos:      d.pos,
				Message:  "lbvet:ignore needs an analyzer name and a reason",
			})
		case d.reason == "":
			out = append(out, Finding{
				Analyzer: "lbvet",
				Pos:      d.pos,
				Message:  fmt.Sprintf("lbvet:ignore %s needs a justification (//lbvet:ignore %s <reason>)", d.analyzer, d.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// RunAnalyzers runs each analyzer over the pass's package and returns
// the ignore-filtered findings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			findings: &raw,
		}
		a.Run(pass)
	}
	return Filter(pkg.Fset, pkg.Files, raw)
}

// ---- shared type helpers ----

// isPtrToPkgType reports whether t is a pointer to a named type
// declared in the package whose import path ends with pkgSuffix.
// An empty name matches any type of that package.
func isPtrToPkgType(t types.Type, pkgSuffix, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isPkgType(ptr.Elem(), pkgSuffix, name)
}

// isPkgType reports whether t is the named type pkgSuffix.name (the
// package is matched by import-path suffix so testdata fixtures and
// the real module both resolve).
func isPkgType(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if !hasPathSuffix(obj.Pkg().Path(), pkgSuffix) {
		return false
	}
	return name == "" || obj.Name() == name
}

// hasPathSuffix reports whether path equals suffix or ends in
// "/"+suffix (import-path-segment-aware suffix match).
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pkgFunc resolves a called expression to the *types.Func it invokes,
// or nil for non-function calls (conversions, built-ins, func values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// methodOn reports whether fn is the method recvPkgSuffix.recvType.name
// (pointer or value receiver).
func methodOn(fn *types.Func, recvPkgSuffix, recvType, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	return isPkgType(rt, recvPkgSuffix, recvType)
}

// rootIdent walks to the leftmost identifier of a selector/index/paren
// chain (v, v.f, v.f[i].g → v). It returns nil when the chain is rooted
// in something else (call result, literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

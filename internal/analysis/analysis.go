// Package analysis is lbvet's engine: a stdlib-only static-analysis
// driver (go/ast + go/parser + go/types + go/build, no go/packages)
// with project-specific analyzers that machine-check the invariants
// this reproduction otherwise enforces only by comment and review.
//
// The engine has two layers. The syntactic layer walks type-checked
// ASTs directly; the dataflow layer (cfg.go, taint.go) builds a
// per-function control-flow graph and runs forward taint propagation
// through assignments, composite literals and in-package call
// summaries, so a value can be followed through locals and helpers
// instead of only matched at its use site. Analyzers share one set of
// per-package facts (concurrent regions, CFGs, call summaries, hotpath
// annotations) through the Pass.
//
// The analyzers:
//
//   - randcontract: the sim.Engine.Rand single-goroutine contract —
//     no engine RNG (or any captured *math/rand.Rand or
//     *faults.Injector) used inside a `go` statement or a par worker
//     callback.
//   - nondeterminism: the deterministic packages (sim, core, lbnode,
//     protocol, ktree, exp, workload, faults) must not read wall
//     clocks, the global math/rand source, or feed results from
//     unordered map iteration (syntactic layer).
//   - detflow: the dataflow upgrade of nondeterminism — values derived
//     from map-range order or pointer identity must not reach returns,
//     channel sends, engine events or metric outputs unless they pass
//     through a recognized canonicalizer (a sort, a canonicalizing
//     helper) first, even when laundered through locals and in-package
//     helper calls.
//   - identcompare: no raw </>/- arithmetic on ident.ID outside
//     internal/ident — it silently breaks at the 2^32 ring wrap; use
//     Dist/Between/Region instead.
//   - metricsguard: metric registry calls on hot paths stay behind the
//     nil-registry guard pattern established by the metrics layer.
//   - layercheck: the layer boundaries, as a rule table. The
//     runtime-agnostic protocol core (internal/lbnode) must not import
//     sim, faults, par or wire, and must not spawn goroutines —
//     executors own delivery and concurrency. The transport
//     (internal/wire) must not import sim or protocol — it moves
//     opaque frames below every executor, though its own goroutines
//     are legitimate.
//   - lockguard: guarded-field inference for the concurrent packages
//     (livenet, daemon, metrics) — a struct field written under
//     mu.Lock() anywhere must be accessed under the same mutex
//     everywhere, catching races -race only sees when the schedule
//     cooperates.
//   - hotalloc: allocation-causing constructs (fmt formatting, make,
//     map/slice literals, closures, interface boxing, growing appends)
//     inside functions annotated //lbvet:hotpath.
//   - floatorder: non-associative float accumulation merged in
//     worker-completion order (captured float += inside go statements
//     or par worker callbacks) instead of deterministic task order.
//
// Findings can be suppressed with an annotation on the same line or
// the line immediately above:
//
//	//lbvet:ignore <analyzer> <reason>
//
// The reason is mandatory; an ignore without one, or one naming an
// analyzer that is not registered, is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and in
	// lbvet:ignore annotations.
	Name string
	// Doc is a one-line description for `lbvet -help`.
	Doc string
	// Scope restricts the analyzer to packages whose import path ends
	// with one of the listed suffixes (testdata fixtures are always in
	// scope so golden files exercise the rules directly). Empty means
	// every package.
	Scope []string
	// Exclude lists package suffixes the analyzer skips even when they
	// match Scope — the package that owns the invariant's internals.
	Exclude []string
	// Run inspects the package and reports findings through pass.
	Run func(pass *Pass)
}

// appliesTo reports whether the analyzer runs over the package at path.
func (a *Analyzer) appliesTo(path string) bool {
	for _, s := range a.Exclude {
		if hasPathSuffix(path, s) {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	return pkgInScope(path, a.Scope)
}

// pkgInScope reports whether the package path matches one of the listed
// suffixes. Analyzer test fixtures (anything under a testdata tree) are
// always in scope so golden files exercise the rules directly.
func pkgInScope(path string, suffixes []string) bool {
	if strings.Contains(path, "/testdata/") {
		return true
	}
	for _, s := range suffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path ("p2plb/internal/sim").
	Path string
	// Files are the parsed source files, including in-package tests.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	facts    *packageFacts
	findings *[]Finding
}

// packageFacts caches structures derived once per package and shared by
// every analyzer that runs over it: concurrent regions (randcontract,
// floatorder), per-function CFGs and call summaries (detflow), and the
// set of //lbvet:hotpath-annotated functions (hotalloc). Each package
// is analyzed by a single goroutine, so lazy plain-map caching is safe.
type packageFacts struct {
	regions   map[*ast.File][]concurrentRegion
	cfgs      map[ast.Node]*CFG
	summaries map[*types.Func]*flowSummary
	inSummary map[*types.Func]bool
	hotpaths  map[*ast.File]map[ast.Node]bool
}

func newFacts() *packageFacts {
	return &packageFacts{
		regions:   make(map[*ast.File][]concurrentRegion),
		cfgs:      make(map[ast.Node]*CFG),
		summaries: make(map[*types.Func]*flowSummary),
		inSummary: make(map[*types.Func]bool),
		hotpaths:  make(map[*ast.File]map[ast.Node]bool),
	}
}

// ConcurrentRegions returns (building on first use) the source
// intervals of file that execute on spawned goroutines: `go` statement
// bodies and function-literal callbacks handed to internal/par.
func (p *Pass) ConcurrentRegions(file *ast.File) []concurrentRegion {
	if r, ok := p.facts.regions[file]; ok {
		return r
	}
	r := collectConcurrentRegions(p, file)
	p.facts.regions[file] = r
	return r
}

// FuncCFG returns (building on first use) the control-flow graph of a
// function declaration or literal.
func (p *Pass) FuncCFG(fn ast.Node) *CFG {
	if g, ok := p.facts.cfgs[fn]; ok {
		return g
	}
	g := buildCFG(funcBody(fn))
	p.facts.cfgs[fn] = g
	return g
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// All returns the analyzers in the order lbvet runs them.
func All() []*Analyzer {
	return []*Analyzer{
		RandContract,
		Nondeterminism,
		Detflow,
		IdentCompare,
		MetricsGuard,
		Layercheck,
		Lockguard,
		Hotalloc,
		Floatorder,
	}
}

// ByName resolves a comma-separated analyzer list ("all" or "" means
// every analyzer).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is one parsed //lbvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const ignorePrefix = "//lbvet:ignore"

// collectIgnores parses the lbvet:ignore annotations of a file into a
// map from the source line they apply to (their own line, which also
// covers the line below for standalone comments) to directives.
func collectIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			out = append(out, &ignoreDirective{
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				pos:      fset.Position(c.Pos()),
			})
		}
	}
	return out
}

// registeredNames is the set of analyzer names a lbvet:ignore may
// legitimately reference.
func registeredNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// Filter drops findings suppressed by lbvet:ignore annotations in files
// and reports malformed annotations — missing reason, unknown analyzer
// name — as findings of the pseudo-analyzer "lbvet" (those cannot be
// suppressed). It returns the surviving findings sorted by position.
func Filter(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	var directives []*ignoreDirective
	for _, f := range files {
		directives = append(directives, collectIgnores(fset, f)...)
	}
	var out []Finding
	for _, fd := range findings {
		suppressed := false
		for _, d := range directives {
			if d.analyzer != fd.Analyzer || d.reason == "" {
				continue
			}
			if d.pos.Filename != fd.Pos.Filename {
				continue
			}
			// An annotation covers its own line (trailing comment) and
			// the line immediately below (standalone comment line).
			if d.pos.Line == fd.Pos.Line || d.pos.Line == fd.Pos.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, fd)
		}
	}
	known := registeredNames()
	for _, d := range directives {
		switch {
		case d.analyzer == "":
			out = append(out, Finding{
				Analyzer: "lbvet",
				Pos:      d.pos,
				Message:  "lbvet:ignore needs an analyzer name and a reason",
			})
		case !known[d.analyzer]:
			out = append(out, Finding{
				Analyzer: "lbvet",
				Pos:      d.pos,
				Message:  fmt.Sprintf("lbvet:ignore names unknown analyzer %q (see lbvet -list); stale annotations must be deleted or renamed", d.analyzer),
			})
		case d.reason == "":
			out = append(out, Finding{
				Analyzer: "lbvet",
				Pos:      d.pos,
				Message:  fmt.Sprintf("lbvet:ignore %s needs a justification (//lbvet:ignore %s <reason>)", d.analyzer, d.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// RunAnalyzers runs each in-scope analyzer over the pass's package,
// sharing one set of package facts, and returns the ignore-filtered
// findings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	facts := newFacts()
	for _, a := range analyzers {
		if !a.appliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    facts,
			findings: &raw,
		}
		a.Run(pass)
	}
	return Filter(pkg.Fset, pkg.Files, raw)
}

// ---- shared type helpers ----

// isPtrToPkgType reports whether t is a pointer to a named type
// declared in the package whose import path ends with pkgSuffix.
// An empty name matches any type of that package.
func isPtrToPkgType(t types.Type, pkgSuffix, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isPkgType(ptr.Elem(), pkgSuffix, name)
}

// isPkgType reports whether t is the named type pkgSuffix.name (the
// package is matched by import-path suffix so testdata fixtures and
// the real module both resolve).
func isPkgType(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if !hasPathSuffix(obj.Pkg().Path(), pkgSuffix) {
		return false
	}
	return name == "" || obj.Name() == name
}

// hasPathSuffix reports whether path equals suffix or ends in
// "/"+suffix (import-path-segment-aware suffix match).
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves a called expression to the *types.Func it
// invokes, or nil for non-function calls (conversions, built-ins, func
// values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// methodOn reports whether fn is the method recvPkgSuffix.recvType.name
// (pointer or value receiver).
func methodOn(fn *types.Func, recvPkgSuffix, recvType, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	return isPkgType(rt, recvPkgSuffix, recvType)
}

// methodOnType reports whether fn is any method of
// recvPkgSuffix.recvType.
func methodOnType(fn *types.Func, recvPkgSuffix, recvType string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	return isPkgType(rt, recvPkgSuffix, recvType)
}

// rootIdent walks to the leftmost identifier of a selector/index/paren
// chain (v, v.f, v.f[i].g → v). It returns nil when the chain is rooted
// in something else (call result, literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcBody returns the body of a function declaration or literal (nil
// for bodyless declarations).
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch x := fn.(type) {
	case *ast.FuncDecl:
		return x.Body
	case *ast.FuncLit:
		return x.Body
	}
	return nil
}

// Fixture for the randcontract analyzer: flagged cases carry a
// trailing want-comment with a message substring, everything else
// must stay clean.
package randcontract

import (
	"math/rand"

	"p2plb/internal/faults"
	"p2plb/internal/par"
	"p2plb/internal/sim"
)

// badGo consumes the engine RNG on a spawned goroutine.
func badGo(eng *sim.Engine, out chan<- int) {
	go func() {
		out <- eng.Rand().Intn(10) // want "single-goroutine"
	}()
}

// badPar captures a *rand.Rand inside a par worker callback.
func badPar(rng *rand.Rand, xs []float64) {
	par.For(len(xs), 0, func(i int) {
		xs[i] = rng.Float64() // want "captured *rand.Rand"
	})
}

// badHandoff passes the RNG itself into a goroutine at spawn time.
func badHandoff(rng *rand.Rand, f func(*rand.Rand)) {
	go f(rng) // want "captured *rand.Rand"
}

// badFieldRand reaches a struct-held RNG from a worker callback.
type holder struct{ rng *rand.Rand }

func (h *holder) badField(xs []float64) {
	par.Map(xs, 0, func(x float64) float64 {
		return x + h.rng.Float64() // want "captured *rand.Rand"
	})
}

// badFaults consults a shared fault injector from par workers: the
// injector's drop/jitter streams are single-goroutine RNGs.
func badFaults(in *faults.Injector, xs []float64) {
	par.For(len(xs), 0, func(i int) {
		if len(in.Deliveries("k", 0, 1, 0, 1)) > 0 { // want "captured *faults.Injector"
			xs[i] = 1
		}
	})
}

// badFaultsGo reads an injector counter on a spawned goroutine.
func badFaultsGo(in *faults.Injector, out chan<- int64) {
	go func() {
		out <- in.Dropped() // want "captured *faults.Injector"
	}()
}

// goodFaults builds one injector per trial inside the worker: the
// sanctioned pattern, not flagged.
func goodFaults(seed int64, xs []float64) {
	par.For(len(xs), 0, func(i int) {
		in, err := faults.New(seed+int64(i), faults.Plan{Drop: 0.1})
		if err != nil {
			return
		}
		if len(in.Deliveries("k", 0, 1, 0, 1)) > 0 {
			xs[i] = 1
		}
	})
}

// goodPerWorker gives each worker its own engine: the sanctioned
// pattern, not flagged.
func goodPerWorker(seed int64, xs []float64) {
	par.For(len(xs), 0, func(i int) {
		eng := sim.NewEngine(seed + int64(i))
		xs[i] = eng.Rand().Float64()
	})
}

// goodSequential consumes all randomness before the fan-out and gives
// each worker a derived-seed RNG.
func goodSequential(eng *sim.Engine, xs []float64) {
	seeds := make([]int64, len(xs))
	for i := range seeds {
		seeds[i] = eng.Rand().Int63()
	}
	par.For(len(xs), 0, func(i int) {
		rng := rand.New(rand.NewSource(seeds[i]))
		xs[i] = rng.Float64()
	})
}

// goodSingleGoroutine uses the engine RNG outside any fan-out.
func goodSingleGoroutine(eng *sim.Engine) int {
	return eng.Rand().Intn(10)
}

// Fixture for the hotalloc analyzer: allocation-causing constructs are
// flagged only inside //lbvet:hotpath-annotated functions.
package hotalloc

import "fmt"

type item struct{ a, b int }

func sink(v interface{}) { _ = v }

//lbvet:hotpath
func badHot(buf []int, n int) []int {
	s := fmt.Sprintf("key.%d", n) // want "fmt.Sprintf"
	_ = s
	m := map[int]int{} // want "map literal"
	_ = m
	xs := []int{1, 2} // want "slice literal"
	_ = xs
	tmp := make([]int, n) // want "make in hotpath"
	_ = tmp
	p := new(item) // want "new in hotpath"
	_ = p
	q := &item{a: 1} // want "heap-allocates"
	_ = q
	f := func() {} // want "closure literal"
	_ = f
	sink(item{a: 1, b: 2}) // want "boxes"
	buf = append(buf, n)   // want "append in hotpath"
	return buf
}

// goodHot is annotated but allocation-free: reductions over
// preallocated state.
//
//lbvet:hotpath
func goodHot(buf []int) int {
	sum := 0
	for _, v := range buf {
		sum += v
	}
	return sum
}

// goodHotPointer passes a pointer as an interface: pointer-sized values
// do not box.
//
//lbvet:hotpath
func goodHotPointer(it *item) {
	sink(it)
}

// goodCold is not annotated: the same constructs are fine off the hot
// path.
func goodCold(n int) map[int]int {
	m := make(map[int]int, n)
	m[n] = n
	return m
}

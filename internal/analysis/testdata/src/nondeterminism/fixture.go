// Fixture for the nondeterminism analyzer (testdata packages are
// always treated as deterministic scope).
package nondeterminism

import (
	"math/rand"
	"sort"
	"time"

	"p2plb/internal/sim"
)

// badClock reads the wall clock.
func badClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// badGlobalRand draws from the global math/rand source.
func badGlobalRand() int {
	return rand.Intn(10) // want "global math/rand source"
}

// goodSeededRand draws from a seeded source.
func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// badMapOrder returns results in map-iteration order.
func badMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "map-iteration order"
	}
	return keys
}

// goodMapSorted sorts the collected keys before returning them.
func goodMapSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// badFloatSum accumulates floats in map order: addition is not
// associative, so the low bits depend on iteration order.
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "order-sensitive"
	}
	return sum
}

// goodIntSum accumulates integers, which commute exactly.
func goodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// badSchedule enqueues engine events in map-iteration order.
func badSchedule(eng *sim.Engine, m map[string]sim.Time) {
	for _, d := range m {
		eng.Schedule(d, func() {}) // want "map-iteration order"
	}
}

// goodSliceRange ranges over a slice, which is ordered.
func goodSliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// Fixture for the lbvet:ignore directive machinery.
package ignores

import "p2plb/internal/ident"

// suppressed: a reasoned ignore on the preceding line covers this one.
func suppressed(a, b ident.ID) bool {
	//lbvet:ignore identcompare canonical total order, deliberately
	return a < b
}

// notSuppressed: an ignore without a reason suppresses nothing and is
// itself reported.
func notSuppressed(a, b ident.ID) bool {
	//lbvet:ignore identcompare
	return a < b
}

// Fixture for the lbvet:ignore directive machinery.
package ignores

import "p2plb/internal/ident"

// suppressed: a reasoned ignore on the preceding line covers this one.
func suppressed(a, b ident.ID) bool {
	//lbvet:ignore identcompare canonical total order, deliberately
	return a < b
}

// notSuppressed: an ignore without a reason suppresses nothing and is
// itself reported.
func notSuppressed(a, b ident.ID) bool {
	//lbvet:ignore identcompare
	return a < b
}

// staleName: an ignore naming an analyzer that is not registered (a
// renamed or deleted check) is itself reported, so annotations cannot
// silently rot.
func staleName(x int) int {
	//lbvet:ignore idcompare renamed long ago, this directive is stale
	return x + 1
}

// Fixture for the metricsguard analyzer.
package metricsguard

import (
	"p2plb/internal/metrics"
	"p2plb/internal/sim"
)

type server struct {
	eng  *sim.Engine
	hist *metrics.Histogram
}

// badUnguarded calls through a maybe-nil registry.
func badUnguarded(eng *sim.Engine) {
	eng.Metrics().Counter("x").Inc() // want "maybe-nil"
}

// badField uses a cached metric field without its populate guard.
func (s *server) badField(v int64) {
	s.hist.Observe(v) // want "maybe-nil"
}

// goodIf guards with an if-with-init nil check.
func goodIf(eng *sim.Engine) {
	if reg := eng.Metrics(); reg != nil {
		reg.Counter("x").Inc()
	}
}

// goodEarlyReturn bails before any metric call when detached.
func goodEarlyReturn(eng *sim.Engine, v int64) {
	reg := eng.Metrics()
	if reg == nil {
		return
	}
	reg.Histogram("h").Observe(v)
}

// goodCache is the populate-once field cache pattern.
func (s *server) goodCache(v int64) {
	if s.hist == nil {
		reg := s.eng.Metrics()
		if reg == nil {
			return
		}
		s.hist = reg.Histogram("h")
	}
	s.hist.Observe(v)
}

// goodConstructed: constructor and get-or-create results are never
// nil, so no guard is needed.
func goodConstructed() {
	reg := metrics.NewRegistry()
	reg.Counter("x").Inc()
	c := reg.Counter("y")
	c.Inc()
}

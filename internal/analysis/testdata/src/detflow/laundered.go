// The laundered case: map-iteration order flows through a local and an
// in-package helper call before reaching the return. The syntactic
// nondeterminism analyzer only recognizes a builtin append assigned
// directly under the range — push hides it — so this file must produce
// zero nondeterminism findings and exactly the detflow ones below
// (asserted by TestDetflowCatchesLaunderedFlow).
package detflow

import "sort"

// push is the laundering helper: its flow summary records that both
// parameters reach the result un-sorted.
func push(dst []string, s string) []string {
	return append(dst, s)
}

// canonPush is the cleansing twin: the sort on the way out makes the
// result order-independent, and the summary records that too.
func canonPush(dst []string, s string) []string {
	dst = append(dst, s)
	sort.Strings(dst)
	return dst
}

// badLaundered builds a slice in map order through the helper.
func badLaundered(m map[string]int) []string {
	var out []string
	for k := range m {
		out = push(out, k)
	}
	return out // want "map-iteration order"
}

// goodLaunderedCanon uses the canonicalizing helper; the summary's
// sort-cleansing keeps the result clean without any annotation.
func goodLaunderedCanon(m map[string]int) []string {
	var out []string
	for k := range m {
		out = canonPush(out, k)
	}
	return out
}

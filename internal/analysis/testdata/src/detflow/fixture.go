// Fixture for the detflow analyzer (testdata packages are always in
// the deterministic scope). The laundered helper-call case that the
// syntactic nondeterminism analyzer cannot see lives in laundered.go.
package detflow

import (
	"sort"
	"unsafe"

	"p2plb/internal/metrics"
	"p2plb/internal/sim"
)

// badSend builds a slice in map order and sends it: the receiving
// goroutine observes a run-dependent element order.
func badSend(m map[string]int, ch chan []string) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	ch <- out // want "sends a value built in map-iteration order"
}

// goodSendSorted sorts before sending.
func goodSendSorted(m map[string]int, ch chan []string) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	ch <- out
}

// badSchedule feeds a map-order-derived delay into the event engine:
// same-tick events then pop in insertion order, which is map order.
func badSchedule(e *sim.Engine, m map[string]int) {
	for _, v := range m {
		d := v
		e.Schedule(sim.Time(d), func() {}) // want "sim.Engine.Schedule"
	}
}

// goodScheduleSorted iterates a sorted snapshot of the map.
func goodScheduleSorted(e *sim.Engine, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Schedule(sim.Time(m[k]), func() {})
	}
}

// badMetric keys a counter by map-iteration order: the registry's
// get-or-create order (and any first-wins labelling) becomes
// run-dependent.
func badMetric(reg *metrics.Registry, m map[string]int) {
	for name := range m {
		if reg != nil {
			reg.Counter(name).Inc() // want "metrics call Counter"
		}
	}
}

// goodIntSum reduces map values commutatively: integer addition is
// exact, so iteration order cannot leak into the result.
func goodIntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// badStringConcat accumulates a string in map order: concatenation is
// order-sensitive even though each piece is deterministic.
func badStringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s // want "concatenated in map-iteration order"
}

type node struct{ id int }

// badPtrOrder records pointer identities: addresses vary run to run,
// so the returned values (not just their order) are nondeterministic.
func badPtrOrder(ps []*node) []uintptr {
	var out []uintptr
	for _, p := range ps {
		out = append(out, uintptr(unsafe.Pointer(p)))
	}
	return out // want "pointer identity"
}

// goodPtrLocal observes a pointer identity but keeps it local (a
// debug-only comparison that never escapes).
func goodPtrLocal(a, b *node) bool {
	return uintptr(unsafe.Pointer(a)) == uintptr(unsafe.Pointer(b))
}

// goodReassigned shows the strong update: a tainted variable
// wholesale-reassigned from a clean source is clean again.
func goodReassigned(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	out = []string{"fixed"}
	return out
}

// badBranchJoin taints only one branch; the join keeps the taint (may
// analysis), so the return is still flagged.
func badBranchJoin(m map[string]int, pick bool) []string {
	var out []string
	if pick {
		for k := range m {
			out = append(out, k)
		}
	} else {
		out = append(out, "stable")
	}
	return out // want "map-iteration order"
}

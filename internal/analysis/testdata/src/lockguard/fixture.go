// Fixture for the lockguard analyzer: guarded-field inference over
// named mutexes, RWMutexes and embedded mutexes.
package lockguard

import "sync"

// counter guards n with mu; label is lock-free by design (written
// before the goroutines start, never under the lock).
type counter struct {
	mu    sync.Mutex
	n     int
	label string
}

// inc writes n under the lock: this is what infers the guard.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// badRead reads the guarded field without the lock.
func (c *counter) badRead() int {
	return c.n // want "counter.n is read without holding mu"
}

// goodRead holds the lock (deferred unlock holds to function end).
func goodRead(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// badCross holds a's lock but touches b's field: locking one instance
// does not excuse another.
func badCross(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want "counter.n is read without holding mu"
}

// goodLabel touches the unguarded field; no lock is required because no
// write to label ever happens under one.
func goodLabel(c *counter) string {
	return c.label
}

// table guards its map header with a RWMutex: writers take Lock,
// readers RLock.
type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// reset swaps the map under the write lock: infers the guard on m.
func (t *table) reset() {
	t.mu.Lock()
	t.m = make(map[string]int)
	t.mu.Unlock()
}

// goodGet reads under RLock: a read lock satisfies the access side.
func goodGet(t *table, k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// badGet reads the guarded map without any lock.
func badGet(t *table, k string) int {
	return t.m[k] // want "table.m is read without holding mu"
}

// box embeds its mutex and locks through the struct itself.
type box struct {
	sync.Mutex
	v int
}

func (b *box) put(v int) {
	b.Lock()
	b.v = v
	b.Unlock()
}

// badPeek reads the embedded-mutex-guarded field without locking.
func (b *box) badPeek() int {
	return b.v // want "box.v is read without holding the embedded mutex"
}

// goodPeek locks through the embedded mutex.
func goodPeek(b *box) int {
	b.Lock()
	defer b.Unlock()
	return b.v
}

// badWrite shows the write side: an unlocked write to a guarded field
// is flagged too.
func badWrite(c *counter) {
	c.n = 0 // want "counter.n is written without holding mu"
}

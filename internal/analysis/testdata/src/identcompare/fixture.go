// Fixture for the identcompare analyzer.
package identcompare

import "p2plb/internal/ident"

// badLess orders identifiers with <, which inverts across the wrap.
func badLess(a, b ident.ID) bool {
	return a < b // want "wraps incorrectly"
}

// badGreaterEq mixes an ID with a converted bound.
func badGreaterEq(a ident.ID) bool {
	return a >= ident.ID(100) // want "wraps incorrectly"
}

// badSub computes a raw difference instead of a clockwise distance.
func badSub(a, b ident.ID) ident.ID {
	return a - b // want "wraps incorrectly"
}

// goodDist uses the wrap-aware clockwise distance.
func goodDist(a, b ident.ID) uint64 { return a.Dist(b) }

// goodBetween uses the wrap-aware arc-membership test.
func goodBetween(a, s, e ident.ID) bool { return a.Between(s, e) }

// goodEqual: equality carries no order and is always safe.
func goodEqual(a, b ident.ID) bool { return a == b }

// goodUint64 compares plain integers, not IDs.
func goodUint64(a, b uint64) bool { return a < b }

// sortKey is a deliberate, annotated total-order use: suppressed.
func sortKey(a, b ident.ID) bool {
	return a < b //lbvet:ignore identcompare canonical total order for sorting, not ring arithmetic
}

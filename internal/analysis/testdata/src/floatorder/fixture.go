// Fixture for the floatorder analyzer: shared float accumulators
// updated from goroutines or par worker callbacks sum in
// worker-completion order.
package floatorder

import "p2plb/internal/par"

// badGoSum accumulates into a captured float from a goroutine.
func badGoSum(xs []float64) float64 {
	var sum float64
	done := make(chan struct{})
	go func() {
		for _, v := range xs {
			sum += v // want "worker-completion order"
		}
		close(done)
	}()
	<-done
	return sum
}

// badParSum accumulates into a captured float from a par callback: the
// racing += merges partial sums in whatever order workers finish.
func badParSum(xs []float64) float64 {
	var sum float64
	par.For(len(xs), 4, func(i int) {
		sum += xs[i] // want "worker-completion order"
	})
	return sum
}

// goodPerTaskSlots is the sanctioned pattern: each task owns its index,
// and the merge folds the slots in task order afterwards.
func goodPerTaskSlots(xs []float64) float64 {
	partial := make([]float64, len(xs))
	par.For(len(xs), 4, func(i int) {
		partial[i] += xs[i]
	})
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// goodChunkLocal accumulates into a region-local variable and writes it
// to an owned slot: local state is worker-private.
func goodChunkLocal(xs []float64, out []float64) {
	par.ForChunked(len(xs), 2, func(lo, hi int) {
		local := 0.0
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		out[lo] = local
	})
}

// goodIntCount shows the type gate: integer accumulation commutes
// exactly, so a racing int counter is a race (caught by -race and
// randcontract's domain) but not a float-ordering problem.
func goodIntCount(xs []float64) int {
	n := 0
	par.For(len(xs), 4, func(i int) {
		if xs[i] > 0 {
			n++ // IncDec, not a float op-assign: out of scope here
		}
	})
	return n
}

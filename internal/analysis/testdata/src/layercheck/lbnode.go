// Fixture for the layercheck analyzer, lbnode half (rule selection is
// by file basename in testdata): the runtime-agnostic protocol core
// (internal/lbnode) must not import executor machinery — sim, faults,
// par, wire — or spawn goroutines. Flagged cases carry a trailing
// want-comment with a message substring; the good* functions are the
// clean half: pure transitions over the shared data model.
package layercheck

import (
	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/faults" // want "internal/faults"
	"p2plb/internal/par"    // want "internal/par"
	"p2plb/internal/sim"    // want "internal/sim"
	"p2plb/internal/wire"   // want "internal/wire"
)

// badEngineClock reads executor virtual time inside the protocol core.
func badEngineClock(eng *sim.Engine) sim.Time { return eng.Now() }

// badInjector consults the transport fault layer inside the core.
func badInjector(in *faults.Injector) int64 { return in.Dropped() }

// badParSweep fans state-machine work out over a worker pool.
func badParSweep(xs []float64) {
	par.For(len(xs), 0, func(i int) { xs[i] = 0 })
}

// badSpawn hides concurrency inside a state transition.
func badSpawn(out chan<- core.LBI, a, b core.LBI) {
	go func() { out <- a.Merge(b) }() // want "go statement"
}

// goodMerge is a pure transition over the shared data model — the only
// kind of work the protocol core does.
func goodMerge(a, b core.LBI) core.LBI { return a.Merge(b) }

// badTransport reaches down into the deployment transport from a state
// machine: machines emit abstract ops; the cluster executor owns the
// sockets.
func badTransport(t *wire.Transport) { t.Close() }

// goodLiveness reads the chord data model: chord and core are state,
// not machinery, and stay importable.
func goodLiveness(n *chord.Node) bool { return n.Alive }

// Fixture for the layercheck analyzer, wire half (rule selection is by
// file basename in testdata): the TCP transport sits below every
// executor and must not import the simulator or the sim-executor —
// but, unlike the protocol core, it owns real concurrency, so its `go`
// statements are clean.
package layercheck

import (
	"p2plb/internal/metrics"
	"p2plb/internal/protocol" // want "internal/protocol"
	"p2plb/internal/sim"      // want "internal/sim"
)

// badVirtualClock stamps frames with simulator time: the transport
// must know nothing of virtual clocks.
func badVirtualClock(eng *sim.Engine) sim.Time { return eng.Now() }

// badRoundSemantics peeks at sim-executor results from inside the
// transport: round semantics live above the frame layer.
func badRoundSemantics(r *protocol.Result) int { return r.Retries }

// goodSpawn: the transport owns sockets and goroutines — concurrency
// here is the clean case, not a violation.
func goodSpawn(work chan<- int) {
	go func() { work <- 1 }()
}

// goodMetrics: the instrumentation layer is shared plumbing, importable
// from the transport.
func goodMetrics(r *metrics.Registry) { r.Counter("wire.sent").Inc() }

package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through the real loader.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("LoadDir(%s): got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// wants extracts the golden expectations: file:line → message
// substrings that must each match exactly one finding on that line.
func collectWants(pkg *Package) map[string][]string {
	out := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], m[1])
				}
			}
		}
	}
	return out
}

// runGolden checks an analyzer against its fixture: every `// want`
// line must produce a matching finding, and no other line may produce
// any (that is the clean-case half of the golden file).
func runGolden(t *testing.T, a *Analyzer) {
	t.Helper()
	pkg := loadFixture(t, a.Name)
	findings := RunAnalyzers(pkg, []*Analyzer{a})
	wants := collectWants(pkg)
	matched := make(map[string]int)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		subs := wants[key]
		ok := false
		for i, sub := range subs {
			if strings.Contains(f.Message, sub) {
				matched[fmt.Sprintf("%s#%d", key, i)]++
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, subs := range wants {
		for i, sub := range subs {
			if matched[fmt.Sprintf("%s#%d", key, i)] == 0 {
				t.Errorf("%s: expected a finding matching %q, got none", key, sub)
			}
		}
	}
}

func TestRandContractGolden(t *testing.T)   { runGolden(t, RandContract) }
func TestNondeterminismGolden(t *testing.T) { runGolden(t, Nondeterminism) }
func TestDetflowGolden(t *testing.T)        { runGolden(t, Detflow) }
func TestIdentCompareGolden(t *testing.T)   { runGolden(t, IdentCompare) }
func TestMetricsGuardGolden(t *testing.T)   { runGolden(t, MetricsGuard) }
func TestLayercheckGolden(t *testing.T)     { runGolden(t, Layercheck) }
func TestLockguardGolden(t *testing.T)      { runGolden(t, Lockguard) }
func TestHotallocGolden(t *testing.T)       { runGolden(t, Hotalloc) }
func TestFloatorderGolden(t *testing.T)     { runGolden(t, Floatorder) }

// TestDetflowCatchesLaunderedFlow is the reason detflow exists: the
// laundered.go case routes a map-range key through a local and an
// in-package helper before the return, which the syntactic
// nondeterminism analyzer (builtin-append-under-range only) cannot
// see. The dataflow analyzer must catch it; the old one must not.
func TestDetflowCatchesLaunderedFlow(t *testing.T) {
	pkg := loadFixture(t, "detflow")
	inLaundered := func(f Finding) bool {
		return strings.HasSuffix(f.Pos.Filename, "laundered.go")
	}
	for _, f := range RunAnalyzers(pkg, []*Analyzer{Nondeterminism}) {
		if inLaundered(f) {
			t.Errorf("nondeterminism unexpectedly sees the laundered flow: %s", f)
		}
	}
	caught := 0
	for _, f := range RunAnalyzers(pkg, []*Analyzer{Detflow}) {
		if inLaundered(f) && strings.Contains(f.Message, "map-iteration order") {
			caught++
		}
	}
	if caught != 1 {
		t.Errorf("detflow findings in laundered.go = %d, want exactly 1 (badLaundered flagged, goodLaunderedCanon clean)", caught)
	}
}

// TestIgnoreDirectives covers the annotation machinery beyond the
// suppression already exercised by the identcompare fixture: a
// reasonless ignore suppresses nothing and is itself reported, and an
// ignore naming an unregistered analyzer (a stale annotation) is
// reported too.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	findings := RunAnalyzers(pkg, []*Analyzer{IdentCompare})
	var identHits, reasonless, stale int
	for _, f := range findings {
		switch f.Analyzer {
		case "identcompare":
			identHits++
		case "lbvet":
			switch {
			case strings.Contains(f.Message, "justification"):
				reasonless++
			case strings.Contains(f.Message, "unknown analyzer"):
				stale++
				if !strings.Contains(f.Message, `"idcompare"`) {
					t.Errorf("stale-name finding should quote the bad name: %s", f)
				}
			default:
				t.Errorf("unexpected lbvet finding: %s", f)
			}
		default:
			t.Errorf("unexpected analyzer %q: %s", f.Analyzer, f)
		}
	}
	// One raw comparison under a reasonless ignore (still reported),
	// one under a reasoned ignore (suppressed), plus the reasonless
	// directive and the stale-name directive themselves.
	if identHits != 1 {
		t.Errorf("identcompare findings = %d, want 1 (reasonless ignore must not suppress)", identHits)
	}
	if reasonless != 1 {
		t.Errorf("reasonless-directive findings = %d, want 1", reasonless)
	}
	if stale != 1 {
		t.Errorf("stale-name findings = %d, want 1", stale)
	}
}

// TestLoadModule smoke-tests the module walker: it must find the
// well-known packages and type-check them without error.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		"p2plb",                   // test-only root package
		"p2plb/internal/sim",      // deterministic core
		"p2plb/internal/analysis", // this package
		"p2plb/cmd/lbvet",         // the driver
	} {
		if !seen[want] {
			t.Errorf("LoadModule missed %s (got %d packages)", want, len(pkgs))
		}
	}
}

// TestByName covers the analyzer-selection flag parsing.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v", len(all), err)
	}
	one, err := ByName("identcompare")
	if err != nil || len(one) != 1 || one[0] != IdentCompare {
		t.Fatalf("ByName(identcompare) = %v, err %v", one, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should error")
	}
}

// assertNoLintIn keeps the fixture wants honest: each fixture must
// contain at least one want (flagged case) and at least one function
// with none (clean case) — guaranteed structurally by runGolden plus
// this sanity check on the fixtures themselves.
func TestFixturesHaveFlaggedAndCleanCases(t *testing.T) {
	for _, a := range All() {
		pkg := loadFixture(t, a.Name)
		wants := collectWants(pkg)
		if len(wants) == 0 {
			t.Errorf("%s fixture has no flagged cases", a.Name)
		}
		cleanFuncs := 0
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if strings.HasPrefix(fd.Name.Name, "good") {
					cleanFuncs++
				}
			}
		}
		if cleanFuncs == 0 {
			t.Errorf("%s fixture has no good* clean cases", a.Name)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// inspectStack walks the file like ast.Inspect but hands the visitor
// the stack of ancestor nodes (outermost first, excluding n itself).
// Returning false skips n's children.
func inspectStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// exprString renders an expression in source-ish form for messages and
// for syntactic guard matching.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// nilCheckOf searches cond for a binary comparison `X op nil` (either
// operand order) and returns X, or nil when absent. The search recurses
// through && and || and parentheses, so `X != nil && y` matches.
func nilCheckOf(cond ast.Expr, op string, accept func(ast.Expr) bool) ast.Expr {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case op:
			if isNilIdent(c.Y) && accept(c.X) {
				return c.X
			}
			if isNilIdent(c.X) && accept(c.Y) {
				return c.Y
			}
		case "&&", "||":
			if x := nilCheckOf(c.X, op, accept); x != nil {
				return x
			}
			return nilCheckOf(c.Y, op, accept)
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// containsNode reports whether outer's subtree contains inner.
func containsNode(outer, inner ast.Node) bool {
	if outer == nil || inner == nil {
		return false
	}
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, or nil at package level.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps a statement list in a function and returns its body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := fmt.Sprintf("package p\nfunc f(c bool, n int) int {\n%s\n}\n", body)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// TestBuildCFG checks the block/edge shape of the builder on the
// control constructs the taint engine depends on.
func TestBuildCFG(t *testing.T) {
	cases := []struct {
		name string
		body string
		// blocks with two or more successors (branch points)
		wantBranchBlocks int
		wantBackEdge     bool
		wantExitPreds    int
	}{
		{
			name:             "straight line",
			body:             "x := 1\n_ = x\nreturn x",
			wantBranchBlocks: 0,
			wantBackEdge:     false,
			wantExitPreds:    1,
		},
		{
			name:             "if else joins",
			body:             "x := 0\nif c {\nx = 1\n} else {\nx = 2\n}\nreturn x",
			wantBranchBlocks: 1,
			wantBackEdge:     false,
			wantExitPreds:    1,
		},
		{
			name:             "if without else falls through",
			body:             "x := 0\nif c {\nx = 1\n}\nreturn x",
			wantBranchBlocks: 1,
			wantBackEdge:     false,
			wantExitPreds:    1,
		},
		{
			name:             "early return reaches exit twice",
			body:             "if c {\nreturn 1\n}\nreturn 0",
			wantBranchBlocks: 1,
			wantBackEdge:     false,
			wantExitPreds:    2,
		},
		{
			name:             "for loop has back edge",
			body:             "x := 0\nfor i := 0; i < n; i++ {\nx += i\n}\nreturn x",
			wantBranchBlocks: 1,
			wantBackEdge:     true,
			wantExitPreds:    1,
		},
		{
			name:             "range loop has back edge",
			body:             "x := 0\nfor i := range n {\nx += i\n}\nreturn x",
			wantBranchBlocks: 1,
			wantBackEdge:     true,
			wantExitPreds:    1,
		},
		{
			name:             "break leaves infinite loop",
			body:             "x := 0\nfor {\nif c {\nbreak\n}\nx++\n}\nreturn x",
			wantBranchBlocks: 1,
			wantBackEdge:     true,
			wantExitPreds:    1,
		},
		{
			name:             "switch fans out and rejoins",
			body:             "x := 0\nswitch n {\ncase 1:\nx = 1\ncase 2:\nx = 2\n}\nreturn x",
			wantBranchBlocks: 1,
			wantBackEdge:     false,
			wantExitPreds:    1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildCFG(parseBody(t, tc.body))

			branches := 0
			for _, b := range g.Blocks {
				if len(b.Succs) >= 2 {
					branches++
				}
			}
			// A back edge is an edge to a block on the DFS stack (an
			// ancestor) — block indices alone can't tell, since join
			// blocks are allocated before the clauses that feed them.
			backEdge := false
			onStack := map[*Block]bool{}
			done := map[*Block]bool{}
			var dfs func(*Block)
			dfs = func(b *Block) {
				onStack[b] = true
				for _, s := range b.Succs {
					if onStack[s] {
						backEdge = true
					} else if !done[s] {
						dfs(s)
					}
				}
				onStack[b] = false
				done[b] = true
			}
			dfs(g.Entry)
			if branches != tc.wantBranchBlocks {
				t.Errorf("branch blocks = %d, want %d", branches, tc.wantBranchBlocks)
			}
			if backEdge != tc.wantBackEdge {
				t.Errorf("back edge = %v, want %v", backEdge, tc.wantBackEdge)
			}
			if got := len(g.Preds(g.Exit)); got != tc.wantExitPreds {
				t.Errorf("exit preds = %d, want %d", got, tc.wantExitPreds)
			}

			// Structural invariants: the entry reaches the exit, and
			// every reachable block's successors are in the graph.
			seen := map[*Block]bool{}
			stack := []*Block{g.Entry}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[b] {
					continue
				}
				seen[b] = true
				stack = append(stack, b.Succs...)
			}
			if !seen[g.Exit] {
				t.Error("exit unreachable from entry")
			}
		})
	}
}

package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestAnalyzersDocumented is the meta-test keeping documentation in
// lockstep with the registry: every analyzer registered in All() must
// be described both in this package's doc comment (as a "name:" list
// entry) and in DESIGN.md's "Enforced invariants (lbvet)" section (as
// a "**name**" bullet). Register a new analyzer and this fails until
// both are written.
func TestAnalyzersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "analysis.go", nil, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		t.Fatal(err)
	}
	if f.Doc == nil {
		t.Fatal("analysis.go has no package doc comment")
	}
	pkgDoc := f.Doc.Text()

	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	const heading = "## Enforced invariants (lbvet)"
	_, section, ok := strings.Cut(string(design), heading)
	if !ok {
		t.Fatalf("DESIGN.md has no %q section", heading)
	}
	if next := strings.Index(section, "\n## "); next >= 0 {
		section = section[:next]
	}

	for _, a := range All() {
		if !strings.Contains(pkgDoc, a.Name+":") {
			t.Errorf("analyzer %q is not described in the package doc of analysis.go", a.Name)
		}
		if !strings.Contains(section, "**"+a.Name+"**") {
			t.Errorf("analyzer %q has no bullet in DESIGN.md %q", a.Name, heading)
		}
	}
}

package analysis

import (
	"go/ast"
	"strconv"
)

// LayerPkgs are the packages under the layering rule, matched by
// import-path suffix: the runtime-agnostic protocol core, whose state
// machines must stay executable from any scheduling discipline.
var LayerPkgs = []string{"internal/lbnode"}

// layerForbidden are the executor-machinery packages the protocol core
// must never import, matched by import-path suffix: the discrete-event
// engine, the fault-injection layer, and the worker pools. chord and
// core are the shared data model and deliberately allowed.
var layerForbidden = []string{"internal/sim", "internal/faults", "internal/par"}

// Layercheck enforces the executor/state-machine layering the lbnode
// refactor established: the protocol core holds pure per-node
// transitions — (state, incoming message) → (state′, outgoing actions)
// — so delivery, retransmission, virtual time, fault plans and
// goroutines all belong to the executors (internal/protocol drives the
// machines through sim.Engine, internal/livenet over channels). An
// import of sim, faults or par, or a `go` statement, inside the core
// would silently re-entangle the layers; this analyzer makes the
// boundary machine-checked instead of comment-enforced.
var Layercheck = &Analyzer{
	Name:  "layercheck",
	Doc:   "keep the runtime-agnostic protocol core (lbnode) free of sim/faults/par imports and goroutines",
	Scope: LayerPkgs,
	Run:   runLayercheck,
}

func runLayercheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, forbidden := range layerForbidden {
				if hasPathSuffix(path, forbidden) {
					pass.Reportf(imp.Pos(), "import of %s in the runtime-agnostic protocol core: delivery, faults and concurrency belong to the executors (internal/protocol, internal/livenet)", path)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "go statement in the runtime-agnostic protocol core: state machines are pure transitions; executors own all concurrency")
			}
			return true
		})
	}
}

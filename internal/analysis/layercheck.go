package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// layerRule is one package's layering contract: the import-path
// suffixes it must never import, and whether it may spawn goroutines.
type layerRule struct {
	// Pkg is the package under the rule, matched by import-path suffix.
	Pkg string
	// Forbidden are the import-path suffixes Pkg must not import.
	Forbidden []string
	// NoGo additionally forbids `go` statements inside Pkg.
	NoGo bool
	// Why is the rationale fragment appended to import diagnostics.
	Why string
}

// layerRules is the layering contract table. Two boundaries are
// machine-checked:
//
//   - internal/lbnode, the runtime-agnostic protocol core, holds pure
//     per-node transitions — (state, incoming message) → (state′,
//     outgoing actions) — so delivery, retransmission, virtual time,
//     fault plans and goroutines all belong to the executors
//     (internal/protocol over sim.Engine, internal/livenet over
//     channels, internal/cluster over TCP). Importing sim, faults, par
//     or wire — or spawning a goroutine — would silently re-entangle
//     the layers.
//   - internal/wire, the TCP transport, sits below every executor: it
//     moves opaque frames and knows nothing of virtual time or round
//     semantics. Importing sim or protocol would invert the stack and
//     drag the simulator into every deployed binary.
//
// chord and core are the shared data model and stay importable from
// both sides.
var layerRules = []layerRule{
	{
		Pkg:       "internal/lbnode",
		Forbidden: []string{"internal/sim", "internal/faults", "internal/par", "internal/wire"},
		NoGo:      true,
		Why:       "delivery, faults and concurrency belong to the executors (internal/protocol, internal/livenet, internal/cluster)",
	},
	{
		Pkg:       "internal/wire",
		Forbidden: []string{"internal/sim", "internal/protocol"},
		Why:       "the transport moves opaque frames below every executor; simulator and round semantics must not link into it",
	},
}

// LayerPkgs are the packages under a layering rule, derived from the
// rule table.
var LayerPkgs = func() []string {
	pkgs := make([]string, len(layerRules))
	for i, r := range layerRules {
		pkgs[i] = r.Pkg
	}
	return pkgs
}()

// Layercheck enforces the layering contract table above. Executors may
// import the layered packages; the layered packages may not reach up.
var Layercheck = &Analyzer{
	Name:  "layercheck",
	Doc:   "enforce the layering rule table: lbnode imports no executor machinery (sim/faults/par/wire) and spawns no goroutines; wire imports no sim/protocol",
	Scope: LayerPkgs,
	Run:   runLayercheck,
}

// rulesForFile selects the rules covering one file. Real packages match
// by import path; testdata fixture files (one package standing in for
// several) match by file basename — lbnode.go carries the lbnode rule,
// wire.go the wire rule — so one golden package exercises every table
// row.
func rulesForFile(pass *Pass, file *ast.File) []*layerRule {
	var out []*layerRule
	inTestdata := strings.Contains(pass.Path, "/testdata/")
	var base string
	if inTestdata {
		base = pass.Fset.Position(file.Pos()).Filename
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
	}
	for i := range layerRules {
		r := &layerRules[i]
		if inTestdata {
			seg := r.Pkg
			if j := strings.LastIndexByte(seg, '/'); j >= 0 {
				seg = seg[j+1:]
			}
			if base == seg+".go" {
				out = append(out, r)
			}
		} else if hasPathSuffix(pass.Path, r.Pkg) {
			out = append(out, r)
		}
	}
	return out
}

func runLayercheck(pass *Pass) {
	for _, file := range pass.Files {
		rules := rulesForFile(pass, file)
		if len(rules) == 0 {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range rules {
				for _, forbidden := range r.Forbidden {
					if hasPathSuffix(path, forbidden) {
						pass.Reportf(imp.Pos(), "import of %s in %s: %s", path, r.Pkg, r.Why)
					}
				}
			}
		}
		noGo := false
		for _, r := range rules {
			noGo = noGo || r.NoGo
		}
		if !noGo {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "go statement in the runtime-agnostic protocol core: state machines are pure transitions; executors own all concurrency")
			}
			return true
		})
	}
}

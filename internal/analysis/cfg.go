package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the dataflow layer: a small
// intra-function CFG over go/ast, precise enough for forward dataflow
// (taint.go) without trying to be a full SSA builder. Statements and
// the expressions evaluated with them (conditions, range operands,
// select comms) are grouped into basic blocks; branches, loops,
// switches and selects produce the expected edges. Deliberate
// coarseness, safe for a may-analysis because it only ever *adds*
// paths: labeled break/continue target the innermost enclosing
// loop/switch, `continue` re-enters the loop head (skipping the post
// statement), and goto simply terminates its block.

// A Block is a straight-line run of statements with its control-flow
// successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry is
// Blocks[0]; Exit is the distinguished sink every return (and the fall
// off the end) reaches.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Preds returns the predecessor blocks of b (computed on demand; CFGs
// are small).
func (g *CFG) Preds(b *Block) []*Block {
	var preds []*Block
	for _, cand := range g.Blocks {
		for _, s := range cand.Succs {
			if s == b {
				preds = append(preds, cand)
				break
			}
		}
	}
	return preds
}

// buildCFG constructs the CFG of a function body (an empty two-block
// graph for bodyless declarations).
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.g.Exit)
	return b.g
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil after a terminator (return/break/continue/goto)

	breaks    []*Block
	continues []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds from→to; a nil from (terminated path) is a no-op.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// use returns the current block, resurrecting a fresh (unreachable)
// one after a terminator so trailing dead code is still represented.
func (b *cfgBuilder) use() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.use()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)
	case *ast.LabeledStmt:
		b.stmt(x.Stmt)
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x)
	case *ast.RangeStmt:
		b.rangeStmt(x)
	case *ast.SwitchStmt:
		b.add(x.Init)
		b.add(x.Tag)
		b.switchBody(x.Body, true)
	case *ast.TypeSwitchStmt:
		b.add(x.Init)
		b.add(x.Assign)
		b.switchBody(x.Body, true)
	case *ast.SelectStmt:
		b.switchBody(x.Body, false)
	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(x)
	default:
		// Assign, Decl, Expr, Send, IncDec, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(x *ast.IfStmt) {
	b.add(x.Init)
	b.add(x.Cond)
	condBlk := b.use()

	thenBlk := b.newBlock()
	b.edge(condBlk, thenBlk)
	b.cur = thenBlk
	b.stmtList(x.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := x.Else != nil
	if hasElse {
		elseBlk := b.newBlock()
		b.edge(condBlk, elseBlk)
		b.cur = elseBlk
		b.stmt(x.Else)
		elseEnd = b.cur
	}

	join := b.newBlock()
	b.edge(thenEnd, join)
	if hasElse {
		b.edge(elseEnd, join)
	} else {
		b.edge(condBlk, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(x *ast.ForStmt) {
	b.add(x.Init)
	head := b.newBlock()
	b.edge(b.use(), head)
	if x.Cond != nil {
		head.Nodes = append(head.Nodes, x.Cond)
	}
	body := b.newBlock()
	b.edge(head, body)
	exit := b.newBlock()
	if x.Cond != nil {
		b.edge(head, exit)
	}
	b.breaks = append(b.breaks, exit)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmtList(x.Body.List)
	b.add(x.Post)
	b.edge(b.cur, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(x *ast.RangeStmt) {
	head := b.newBlock()
	b.edge(b.use(), head)
	// The RangeStmt itself is the head node: evaluating X and binding
	// Key/Value each iteration.
	head.Nodes = append(head.Nodes, x)
	body := b.newBlock()
	b.edge(head, body)
	exit := b.newBlock()
	b.edge(head, exit)
	b.breaks = append(b.breaks, exit)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmtList(x.Body.List)
	b.edge(b.cur, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

// switchBody lowers the clause list shared by switch, type switch and
// select. Every clause begins at the head; `withDefaultEdge` adds the
// head→join edge when no default clause exists (switches can fall
// through all cases; selects always take some clause, but an extra
// edge is harmless for a may-analysis).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, withDefaultEdge bool) {
	head := b.use()
	join := b.newBlock()
	b.breaks = append(b.breaks, join)

	type clause struct {
		blk  *Block
		list []ast.Stmt
		fall bool
	}
	var clauses []clause
	hasDefault := false
	for _, cs := range body.List {
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			for _, e := range c.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			fall := false
			if n := len(c.Body); n > 0 {
				if br, ok := c.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fall = true
				}
			}
			clauses = append(clauses, clause{blk: blk, list: c.Body, fall: fall})
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			if c.Comm != nil {
				blk.Nodes = append(blk.Nodes, c.Comm)
			}
			clauses = append(clauses, clause{blk: blk, list: c.Body})
		}
	}
	for i, c := range clauses {
		b.edge(head, c.blk)
		b.cur = c.blk
		b.stmtList(c.list)
		if c.fall && i+1 < len(clauses) {
			b.edge(b.cur, clauses[i+1].blk)
			b.cur = nil
		}
		b.edge(b.cur, join)
	}
	if withDefaultEdge && !hasDefault {
		b.edge(head, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *cfgBuilder) branchStmt(x *ast.BranchStmt) {
	switch x.Tok {
	case token.BREAK:
		if len(b.breaks) > 0 {
			b.edge(b.cur, b.breaks[len(b.breaks)-1])
		}
		b.cur = nil
	case token.CONTINUE:
		if len(b.continues) > 0 {
			b.edge(b.cur, b.continues[len(b.continues)-1])
		}
		b.cur = nil
	case token.GOTO:
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchBody; stray ones are dead ends.
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RandContract enforces the sim.Engine.Rand single-goroutine contract:
// inside code that runs on another goroutine — the body (and argument
// list) of a `go` statement, or a worker callback handed to
// internal/par — neither the engine RNG nor any *math/rand.Rand
// captured from the enclosing scope may be touched. The same contract
// covers *faults.Injector: its drop/duplicate/jitter streams are plain
// *rand.Rand values behind method calls, so a shared injector consulted
// from a worker is the engine-RNG race wearing a different type. The
// sanctioned pattern is a per-worker engine/RNG/injector seeded from
// the parent before the fan-out, which the analyzer recognises: a
// value declared inside the concurrent region is fine.
var RandContract = &Analyzer{
	Name: "randcontract",
	Doc:  "flag sim.Engine.Rand, captured *rand.Rand and captured *faults.Injector use inside go statements and par worker callbacks",
	Run:  runRandContract,
}

func runRandContract(pass *Pass) {
	for _, file := range pass.Files {
		regions := pass.ConcurrentRegions(file)
		if len(regions) == 0 {
			continue
		}
		reported := make(map[token.Pos]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkEngineRandCall(pass, x, regions, reported)
				checkInjectorCall(pass, x, regions, reported)
			case *ast.Ident, *ast.SelectorExpr:
				checkCapturedRand(pass, x.(ast.Expr), regions, reported)
			}
			return true
		})
	}
}

// checkEngineRandCall flags X.Rand() calls on a sim.Engine that is
// captured from outside the concurrent region.
func checkEngineRandCall(pass *Pass, call *ast.CallExpr, regions []concurrentRegion, reported map[token.Pos]bool) {
	fn := calleeFunc(pass.Info, call)
	if !methodOn(fn, "internal/sim", "Engine", "Rand") {
		return
	}
	region := regionOf(regions, call.Pos())
	if region == nil || reported[call.Pos()] {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if declaredInside(pass, sel.X, region) {
		return // per-worker engine: the sanctioned pattern
	}
	reported[call.Pos()] = true
	pass.Reportf(call.Pos(), "%s.Rand() inside a %s: the engine RNG is single-goroutine; give each worker its own engine/RNG seeded before the fan-out", exprString(sel.X), region.kind)
}

// checkInjectorCall flags method calls on a *faults.Injector captured
// from outside the concurrent region: the injector's fault streams draw
// from plain *rand.Rand values and its counters are unsynchronised, so
// sharing one across workers races exactly like sharing the engine RNG.
func checkInjectorCall(pass *Pass, call *ast.CallExpr, regions []concurrentRegion, reported map[token.Pos]bool) {
	fn := calleeFunc(pass.Info, call)
	if !methodOnType(fn, "internal/faults", "Injector") {
		return
	}
	region := regionOf(regions, call.Pos())
	if region == nil || reported[call.Pos()] {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if declaredInside(pass, sel.X, region) {
		return // per-trial injector: the sanctioned pattern
	}
	reported[call.Pos()] = true
	pass.Reportf(call.Pos(), "%s.%s() on a captured *faults.Injector inside a %s: fault streams are single-goroutine; build one injector per trial engine inside the fan-out", exprString(sel.X), fn.Name(), region.kind)
}

// checkCapturedRand flags reads of *math/rand.Rand values that are
// captured from outside the concurrent region (locals and fields
// alike).
func checkCapturedRand(pass *Pass, e ast.Expr, regions []concurrentRegion, reported map[token.Pos]bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || !isMathRandPtr(tv.Type) {
		return
	}
	// Only uses, not the defining identifier of a worker-local RNG.
	if id, ok := e.(*ast.Ident); ok {
		if pass.Info.Defs[id] != nil {
			return
		}
	}
	region := regionOf(regions, e.Pos())
	if region == nil || reported[e.Pos()] {
		return
	}
	if declaredInside(pass, e, region) {
		return
	}
	reported[e.Pos()] = true
	pass.Reportf(e.Pos(), "captured *rand.Rand %s used inside a %s: RNGs are single-goroutine; create one per worker from a derived seed", exprString(e), region.kind)
}

func isMathRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return (p == "math/rand" || p == "math/rand/v2") && named.Obj().Name() == "Rand"
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockguardPkgs are the packages with real shared-memory concurrency,
// matched by import-path suffix: the channel-based live network, the
// serving daemon, and the metrics registry.
var LockguardPkgs = []string{"internal/livenet", "internal/daemon", "internal/metrics"}

// Lockguard infers guarded fields and checks they stay guarded: a
// struct field written under an exclusive s.mu.Lock() anywhere in the
// package is taken to be protected by that mutex, and every other
// access to the same field — read or write, in any function — must also
// hold it (RLock suffices for the access side). This catches the races
// -race only sees when the schedule cooperates: the one unlocked read
// added months after the locked writer.
//
// Locked intervals are computed syntactically per function: a Lock/RLock
// call opens one, the matching Unlock/RUnlock closes it, and a deferred
// unlock holds to the end of the function. Interval matching is by
// (struct type, mutex field) plus the receiver variable when both sides
// resolve, so locking a.mu does not excuse touching b's fields.
var Lockguard = &Analyzer{
	Name:  "lockguard",
	Doc:   "a field written under a mutex anywhere must be accessed under that mutex everywhere",
	Scope: LockguardPkgs,
	Run:   runLockguard,
}

// lockKey identifies a mutex as "the field named mutexField of struct
// type structType" (empty mutexField means the mutex is embedded and
// locked through the struct itself).
type lockKey struct {
	structType *types.Named
	mutexField string
}

// lockedInterval is one source range during which a mutex is held.
type lockedInterval struct {
	key       lockKey
	rootObj   types.Object // receiver variable, nil if unresolvable
	pos, end  token.Pos
	exclusive bool // Lock, not RLock
}

func (iv *lockedInterval) covers(p token.Pos, root types.Object) bool {
	if p < iv.pos || p >= iv.end {
		return false
	}
	return root == nil || iv.rootObj == nil || root == iv.rootObj
}

// fieldKey identifies a struct field across the package.
type fieldKey struct {
	structType *types.Named
	field      string
}

func runLockguard(pass *Pass) {
	var intervals []*lockedInterval
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				intervals = append(intervals, collectLockIntervals(pass, fd.Body)...)
			}
		}
	}

	// Pass 1: guarded-field inference — fields written under an
	// exclusive lock on their own struct's mutex.
	guarded := make(map[fieldKey]lockKey)
	forEachFieldAccess(pass, func(sel *ast.SelectorExpr, fk fieldKey, root types.Object, write bool) {
		if !write {
			return
		}
		for _, iv := range intervals {
			if iv.exclusive && iv.key.structType == fk.structType && iv.covers(sel.Pos(), root) {
				guarded[fk] = iv.key
			}
		}
	})

	// Pass 2: every access to a guarded field must hold the mutex.
	forEachFieldAccess(pass, func(sel *ast.SelectorExpr, fk fieldKey, root types.Object, write bool) {
		key, ok := guarded[fk]
		if !ok {
			return
		}
		for _, iv := range intervals {
			if iv.key == key && iv.covers(sel.Pos(), root) {
				return
			}
		}
		mu := key.mutexField
		if mu == "" {
			mu = "the embedded mutex"
		}
		verb := "read"
		if write {
			verb = "written"
		}
		pass.Reportf(sel.Sel.Pos(), "%s.%s is %s without holding %s: the field is written under that lock elsewhere in this package, so every access must hold it", fk.structType.Obj().Name(), fk.field, verb, mu)
	})
}

// forEachFieldAccess visits every selector expression that reads or
// writes a field of a package-local named struct, skipping mutex-typed
// fields (the locks themselves) and selectors that only name a method.
func forEachFieldAccess(pass *Pass, visit func(sel *ast.SelectorExpr, fk fieldKey, root types.Object, write bool)) {
	for _, file := range pass.Files {
		writes := collectWrites(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() || isMutexType(obj.Type()) {
				return true
			}
			named := receiverNamed(pass, sel.X)
			if named == nil || named.Obj().Pkg() != pass.Pkg {
				return true
			}
			// The field must actually belong to (or embed into) the
			// receiver's struct; selections through interfaces don't
			// reach here because obj is a field.
			fk := fieldKey{structType: named, field: obj.Name()}
			root := rootObjOf(pass, sel.X)
			visit(sel, fk, root, writes[sel])
			return true
		})
	}
}

// collectWrites marks the selector expressions a file writes through:
// assignment and range lvalues, inc/dec operands, and unary & (a taken
// address may be written through; treating it as a write keeps the
// inference conservative in the right direction).
func collectWrites(file *ast.File) map[ast.Expr]bool {
	writes := make(map[ast.Expr]bool)
	mark := func(e ast.Expr) {
		if e != nil {
			writes[ast.Unparen(e)] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.RangeStmt:
			mark(x.Key)
			mark(x.Value)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		}
		return true
	})
	return writes
}

// collectLockIntervals walks one function body in source order pairing
// Lock/RLock calls with their Unlock/RUnlock (deferred unlocks hold to
// the end of the body). Unmatched locks also hold to the end.
func collectLockIntervals(pass *Pass, body *ast.BlockStmt) []*lockedInterval {
	var out []*lockedInterval
	var open []*lockedInterval
	handleCall := func(call *ast.CallExpr, deferred bool) {
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch fn.Name() {
		case "Lock", "RLock":
			key, root, ok := lockRecv(pass, sel.X)
			if !ok {
				return
			}
			iv := &lockedInterval{
				key:       key,
				rootObj:   root,
				pos:       call.End(),
				end:       body.End(), // until matched
				exclusive: fn.Name() == "Lock",
			}
			out = append(out, iv)
			open = append(open, iv)
		case "Unlock", "RUnlock":
			if deferred {
				return // holds to function end
			}
			key, root, ok := lockRecv(pass, sel.X)
			if !ok {
				return
			}
			for i := len(open) - 1; i >= 0; i-- {
				iv := open[i]
				if iv.key == key && iv.rootObj == root && iv.end == body.End() {
					iv.end = call.Pos()
					open = append(open[:i], open[i+1:]...)
					break
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			handleCall(x.Call, true)
			// Don't descend: the deferred unlock call must not be
			// re-seen as an immediate one.
			return false
		case *ast.CallExpr:
			handleCall(x, false)
		}
		return true
	})
	return out
}

// lockRecv resolves the receiver of a Lock/Unlock call — `s.mu` or `s`
// for an embedded mutex — to its lock key and root variable.
func lockRecv(pass *Pass, recv ast.Expr) (lockKey, types.Object, bool) {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if fv, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && fv.IsField() && isMutexType(fv.Type()) {
			if named := receiverNamed(pass, sel.X); named != nil {
				return lockKey{structType: named, mutexField: fv.Name()}, rootObjOf(pass, sel.X), true
			}
		}
		return lockKey{}, nil, false
	}
	// Embedded mutex locked through the struct itself.
	if named := receiverNamed(pass, recv); named != nil {
		return lockKey{structType: named, mutexField: ""}, rootObjOf(pass, recv), true
	}
	return lockKey{}, nil, false
}

// receiverNamed resolves the static type of a receiver expression to
// its named struct type, looking through pointers.
func receiverNamed(pass *Pass, e ast.Expr) *types.Named {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return named
}

// rootObjOf resolves the leftmost identifier of a receiver chain to its
// object (nil when the chain roots in a call or literal).
func rootObjOf(pass *Pass, e ast.Expr) types.Object {
	root := rootIdent(ast.Unparen(e))
	if root == nil {
		return nil
	}
	if obj := pass.Info.Uses[root]; obj != nil {
		return obj
	}
	return pass.Info.Defs[root]
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

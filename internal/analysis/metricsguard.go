package analysis

import (
	"go/ast"
	"go/types"
)

// MetricsGuard enforces the nil-registry guard pattern the metrics
// layer established: a simulation runs with no registry attached by
// default, so every metric call on a maybe-nil value — the result of
// sim.Engine.Metrics(), a cached metric field, a registry handed in
// from outside — must sit behind a nil check. Recognised guards:
//
//	if reg != nil { reg.Counter("x").Inc() }         // enclosing if
//	if reg := e.Metrics(); reg != nil { … }          // if-with-init
//	reg := e.Metrics(); if reg == nil { return }; …  // early return
//	if b.mHist == nil { …populate or bail… }; …      // populate-once
//
// Values that are provably non-nil — results of metrics-package
// constructors and Registry get-or-create methods, or variables
// initialised from them — need no guard.
var MetricsGuard = &Analyzer{
	Name: "metricsguard",
	Doc:  "require the nil-registry guard pattern around metric calls on hot paths",
	// The metrics package owns its own internals.
	Exclude: []string{"internal/metrics"},
	Run:     runMetricsGuard,
}

func runMetricsGuard(pass *Pass) {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := sel.X
			tv, ok := pass.Info.Types[recv]
			if !ok || !isMetricType(tv.Type) {
				return true
			}
			if definitelyNonNil(pass, recv) || nilGuarded(pass, recv, call, stack) {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s on a maybe-nil metric value: hot paths run without a registry attached; guard with `if %s != nil { … }` or an early `if … == nil { return }` (see the nil-registry pattern in internal/sim)", exprString(recv), sel.Sel.Name, exprString(recv))
			return true
		})
	}
}

// isMetricType reports whether t is a pointer to any named type of
// internal/metrics (Registry, Counter, Histogram, Series, …).
func isMetricType(t types.Type) bool {
	return isPtrToPkgType(t, "internal/metrics", "")
}

// definitelyNonNil recognises receiver expressions that cannot be nil:
// direct results of metrics-package functions or Registry/metric
// methods (get-or-create never returns nil), address-of expressions,
// and local variables initialised from either.
func definitelyNonNil(pass *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass.Info, x)
		return fn != nil && fn.Pkg() != nil && hasPathSuffix(fn.Pkg().Path(), "internal/metrics")
	case *ast.UnaryExpr:
		return x.Op.String() == "&"
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			return false
		}
		if init := initializerOf(pass, obj); init != nil {
			return definitelyNonNil(pass, init)
		}
	}
	return false
}

// initializerOf finds the expression a variable was defined with
// (`x := expr`, `var x = expr`), or nil when there is none or the
// object is not a local variable.
func initializerOf(pass *Pass, obj types.Object) ast.Expr {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	for id, def := range pass.Info.Defs {
		if def != v {
			continue
		}
		return definedValue(pass, id)
	}
	return nil
}

// definedValue locates the RHS expression paired with a defining
// identifier by scanning the file containing it.
func definedValue(pass *Pass, id *ast.Ident) ast.Expr {
	var file *ast.File
	for _, f := range pass.Files {
		if containsNode(f, id) {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	var out ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if out != nil || n == nil || !containsNode(n, id) {
			return out == nil
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if lhs == ast.Expr(id) && len(x.Rhs) == len(x.Lhs) {
					out = x.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if name == id && len(x.Values) == len(x.Names) {
					out = x.Values[i]
				}
			}
		}
		return true
	})
	return out
}

// nilGuarded reports whether the call sits behind a recognised nil
// check: an enclosing if whose condition nil-tests a metric-typed
// value, or an earlier statement in an enclosing block of the form
// `if <metric> == nil { return/..., or populate the cache }`.
func nilGuarded(pass *Pass, recv ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	metricTyped := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		return ok && isMetricType(tv.Type)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.IfStmt:
			inBody := containsNode(x.Body, call)
			inElse := x.Else != nil && containsNode(x.Else, call)
			if inBody && nilCheckOf(x.Cond, "!=", metricTyped) != nil {
				return true
			}
			if inElse && nilCheckOf(x.Cond, "==", metricTyped) != nil {
				return true
			}
		case *ast.BlockStmt:
			// Earlier sibling statements that bail (or populate the
			// cached metric) when the registry is absent guard the
			// rest of the block.
			for _, stmt := range x.List {
				if stmt.End() > call.Pos() {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || nilCheckOf(ifs.Cond, "==", metricTyped) == nil {
					continue
				}
				if bodyBailsOrAssignsMetric(pass, ifs.Body, metricTyped) {
					return true
				}
			}
		}
	}
	return false
}

// bodyBailsOrAssignsMetric reports whether an `if x == nil` body either
// leaves the function (return/panic/continue — the early-return guard)
// or assigns a metric-typed lvalue (the populate-once cache pattern,
// which leaves the value non-nil on every path that reaches the call).
func bodyBailsOrAssignsMetric(pass *Pass, body *ast.BlockStmt, metricTyped func(ast.Expr) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if metricTyped(lhs) {
					found = true
				}
			}
		case *ast.FuncLit:
			return false // a nested closure's returns don't bail this frame
		}
		return !found
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/token"
)

// concurrentRegion is a source interval whose code executes on a
// goroutine other than the spawner's. Regions are a shared package
// fact: randcontract (RNG capture) and floatorder (completion-order
// float merges) both interpret code against them, through
// Pass.ConcurrentRegions.
type concurrentRegion struct {
	pos, end token.Pos
	kind     string // "go statement" or "par worker callback"
}

func (r concurrentRegion) contains(p token.Pos) bool { return r.pos <= p && p < r.end }

// collectConcurrentRegions finds the intervals of file that execute on
// spawned goroutines: every `go` statement (the spawned call and any
// function literal it runs) and every function-literal argument of a
// call into internal/par (For, ForChunked, Map, MapErr — any exported
// helper that fans callbacks out across workers).
func collectConcurrentRegions(pass *Pass, file *ast.File) []concurrentRegion {
	var regions []concurrentRegion
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			regions = append(regions, concurrentRegion{x.Pos(), x.End(), "go statement"})
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, x)
			if fn == nil || fn.Pkg() == nil || !hasPathSuffix(fn.Pkg().Path(), "internal/par") {
				return true
			}
			for _, arg := range x.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					regions = append(regions, concurrentRegion{lit.Pos(), lit.End(), "par worker callback"})
				}
			}
		}
		return true
	})
	return regions
}

// regionOf returns the region containing p, preferring the innermost
// (latest-starting) match so nested fan-outs report precisely.
func regionOf(regions []concurrentRegion, p token.Pos) *concurrentRegion {
	var best *concurrentRegion
	for i := range regions {
		if regions[i].contains(p) && (best == nil || regions[i].pos > best.pos) {
			best = &regions[i]
		}
	}
	return best
}

// declaredInside reports whether the root identifier of e refers to an
// object declared inside the region — i.e. worker-local state. An
// unresolvable root (call-expression result, literal) counts as
// captured: the value flowed in from outside.
func declaredInside(pass *Pass, e ast.Expr, region *concurrentRegion) bool {
	root := rootIdent(ast.Unparen(e))
	if root == nil {
		return false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	return region.contains(obj.Pos())
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatorder guards the reproducibility of floating-point reductions:
// float addition is not associative, so a shared accumulator updated
// from inside a `go` statement or an internal/par worker callback sums
// in worker-completion order — a schedule-dependent result even when
// every task is deterministic. The fix this codebase standardized on is
// per-task accumulation merged in task order: write each task's partial
// into its own indexed slot (res[i] += …, which this analyzer permits)
// and fold the slots sequentially afterwards.
//
// Flagged: a float compound assignment (+=, -=, *=, /=) inside a
// concurrent region whose target is declared outside that region and is
// not an indexed slot. The regions are the same shared package fact
// randcontract uses.
var Floatorder = &Analyzer{
	Name: "floatorder",
	Doc:  "no shared float accumulators updated from goroutines or par callbacks; accumulate per task, merge in task order",
	Run:  runFloatorder,
}

func runFloatorder(pass *Pass) {
	for _, file := range pass.Files {
		regions := pass.ConcurrentRegions(file)
		if len(regions) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			region := regionOf(regions, as.Pos())
			if region == nil {
				return true
			}
			lhs := ast.Unparen(as.Lhs[0])
			if !isFloatExpr(pass, lhs) {
				return true
			}
			// res[i] += … is the sanctioned per-task-slot pattern: each
			// task owns its index, and the merge happens sequentially.
			if _, indexed := lhs.(*ast.IndexExpr); indexed {
				return true
			}
			if declaredInside(pass, lhs, region) {
				return true
			}
			pass.Reportf(as.Pos(), "float accumulation into %s inside a %s sums in worker-completion order (float addition is not associative); accumulate into a per-task slot and merge in task order", exprString(lhs), region.kind)
			return true
		})
	}
}

// isFloatExpr reports whether e has floating-point (or complex) type.
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

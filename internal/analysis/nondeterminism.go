package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPkgs are the packages whose behaviour must be a pure
// function of the seed: the simulation engine and everything that runs
// on it. Matched by import-path suffix.
var DeterministicPkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/lbnode",
	"internal/protocol",
	"internal/ktree",
	"internal/exp",
	"internal/workload",
	"internal/faults",
	"internal/serve",
}

// Nondeterminism forbids the three ways nondeterminism has crept (or
// would creep) into the deterministic packages:
//
//   - wall-clock reads (time.Now, time.Since) — virtual time comes from
//     sim.Engine.Now. Wall-clock metric spans outside the simulation
//     (cmd/lbbench) live outside these packages; a deliberate wall-clock
//     read inside them must carry a //lbvet:ignore nondeterminism
//     annotation, which is the explicit allowlist.
//   - the global math/rand source (rand.Intn, rand.Shuffle, …) — all
//     randomness must flow from a seeded *rand.Rand (rand.New is fine).
//   - results fed from unordered map iteration: appending to a slice
//     under `range m` without sorting afterwards, accumulating floats
//     (addition isn't associative), or scheduling engine events in map
//     order.
var Nondeterminism = &Analyzer{
	Name:  "nondeterminism",
	Doc:   "forbid wall clocks, global math/rand and order-sensitive map iteration in the deterministic packages",
	Scope: DeterministicPkgs,
	Run:   runNondeterminism,
}

// globalRandAllowed are the math/rand top-level functions that do not
// touch the package-global source.
var globalRandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runNondeterminism(pass *Pass) {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, x)
			case *ast.RangeStmt:
				checkMapRange(pass, x, stack)
			}
			return true
		})
	}
}

// checkForbiddenCall flags wall-clock reads and global math/rand use.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in a deterministic package: use sim.Engine.Now virtual time (annotate deliberate wall-clock metric spans with //lbvet:ignore nondeterminism <reason>)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s uses the global math/rand source: draw from a seeded *rand.Rand (sim.Engine.Rand or rand.New) so runs stay reproducible", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive work done under `range` over a
// map: appends that are never sorted, float accumulation, and engine
// event scheduling.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := enclosingFunc(stack)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, fn, x)
		case *ast.CallExpr:
			cf := calleeFunc(pass.Info, x)
			if methodOn(cf, "internal/sim", "Engine", "Schedule") || methodOn(cf, "internal/sim", "Engine", "Every") {
				pass.Reportf(x.Pos(), "%s inside `range` over a map schedules events in map-iteration order; iterate a sorted key slice instead", cf.Name())
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, fn ast.Node, as *ast.AssignStmt) {
	switch as.Tok.String() {
	case "+=", "-=":
		if t, ok := pass.Info.Types[as.Lhs[0]]; ok {
			if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "float accumulation into %s under `range` over a map: float addition is order-sensitive; iterate a sorted key slice", exprString(as.Lhs[0]))
			}
		}
	case "=", ":=":
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			target := as.Lhs[i]
			if sortedAfter(pass, fn, rng, target) {
				continue
			}
			pass.Reportf(as.Pos(), "append to %s under `range` over a map builds results in map-iteration order; sort %s afterwards or iterate a sorted key slice", exprString(target), exprString(target))
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, after the range loop and inside the same
// function, the appended-to expression is passed through a sort: either
// a sort-package call taking it (sort.Slice(x, …), sort.Strings(x)) or
// a sort-named method/helper rooted at the same variable (v.sort()
// covering v.lights).
func sortedAfter(pass *Pass, fn ast.Node, rng *ast.RangeStmt, target ast.Expr) bool {
	if fn == nil {
		return false
	}
	tstr := exprString(target)
	troot := rootIdent(target)
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found || n == nil || n.End() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cf := calleeFunc(pass.Info, call)
		if cf == nil {
			return true
		}
		isSortPkg := cf.Pkg() != nil && cf.Pkg().Path() == "sort"
		sortNamed := strings.Contains(strings.ToLower(cf.Name()), "sort")
		if !isSortPkg && !sortNamed {
			return true
		}
		for _, arg := range call.Args {
			if exprString(arg) == tstr {
				found = true
				return false
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sortNamed && troot != nil {
			if r := rootIdent(sel.X); r != nil && r.Name == troot.Name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader walks a module with go/build, parses it with go/parser and
// type-checks it with go/types. Module-internal imports are resolved
// recursively from source by the loader itself; everything else
// (stdlib) goes through the compiler's source importer. No go/packages,
// no export data, no subprocesses.
//
// Loading is concurrency-safe: LoadModule type-checks independent
// packages in parallel, module-internal imports deduplicate through a
// shared per-path type-check cache (each dependency's export view is
// checked exactly once, by whichever goroutine gets there first), and
// the stdlib source importer — which is not safe for concurrent use —
// is serialized behind its own mutex.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	ctx build.Context

	stdMu sync.Mutex // the compiler source importer is single-threaded
	std   types.Importer

	mu    sync.Mutex // guards cache
	cache map[string]*importTask
}

// importTask is the shared type-check cache's per-path singleflight
// slot: the first goroutine to request a module-internal import loads
// it and closes done; everyone else blocks on done and shares the
// result.
type importTask struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

// NewLoader locates the module containing dir (by walking up to the
// nearest go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		ctx:        build.Default,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*importTask),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// Import implements types.Importer: module-internal paths load from
// source through the loader (export view, without test files), each
// checked exactly once and shared through the cache; anything else is
// delegated to the (serialized) stdlib source importer. Concurrent
// imports of the same internal path block on the first loader rather
// than duplicating the type-check; the recursive dependency chain runs
// with no lock held, so disjoint subtrees load in parallel.
func (l *Loader) Import(path string) (*types.Package, error) {
	rel, ok := l.moduleRel(path)
	if !ok {
		l.stdMu.Lock()
		defer l.stdMu.Unlock()
		return l.std.Import(path)
	}
	l.mu.Lock()
	task, ok := l.cache[path]
	if ok {
		l.mu.Unlock()
		<-task.done
		return task.pkg, task.err
	}
	task = &importTask{done: make(chan struct{})}
	l.cache[path] = task
	l.mu.Unlock()

	task.pkg, task.err = l.importInternal(path, rel)
	close(task.done)
	return task.pkg, task.err
}

// importInternal loads the export view of one module-internal package.
func (l *Loader) importInternal(path, rel string) (*types.Package, error) {
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	files, err := l.parse(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	return l.check(path, files, nil)
}

// moduleRel maps a module-internal import path to its module-relative
// directory ("" for the root package).
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one set of files as a package. When info is nil a
// bare export-view check is performed (for imports); passing an info
// records the full use/def/type facts analyzers need.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctx.GOARCH),
	}
	return conf.Check(path, l.Fset, files, info)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// LoadDir loads the package in dir for analysis: the package proper
// plus its in-package test files as one unit, and — when present — the
// external test package (pkg_test) as a second unit. Test-only
// directories (only _test.go files) are supported.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(abs, 0)
	if err != nil {
		var noGo *build.NoGoError
		if !errors.As(err, &noGo) {
			return nil, err
		}
		// Test-only packages still analyze; truly empty dirs don't.
		if len(bp.TestGoFiles) == 0 && len(bp.XTestGoFiles) == 0 {
			return nil, nil
		}
	}
	path := l.importPathFor(abs)
	var out []*Package
	if names := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...); len(names) > 0 {
		pkg, err := l.loadUnit(path, abs, names)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(bp.XTestGoFiles) > 0 {
		pkg, err := l.loadUnit(path+"_test", abs, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) loadUnit(path, dir string, names []string) (*Package, error) {
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	tpkg, err := l.check(path, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Fset:  l.Fset,
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPathFor derives the import path of a directory inside the
// module; directories outside it get a synthetic rooted path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "lbvet.test/" + filepath.ToSlash(filepath.Base(abs))
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadModule walks the module tree and loads every package in it,
// skipping vendor, testdata, hidden and underscore-prefixed
// directories — the same pruning the go tool applies. Directories are
// parsed and type-checked in parallel (bounded by GOMAXPROCS); shared
// dependencies deduplicate through the import cache, and the returned
// slice is in deterministic sorted-directory order regardless of which
// goroutine finished first.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "vendor" || name == "testdata" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	perDir := make([][]*Package, len(dirs))
	errs := make([]error, len(dirs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(dirs) {
					return
				}
				perDir[i], errs[i] = l.LoadDir(dirs[i])
			}
		}()
	}
	wg.Wait()
	var out []*Package
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, perDir[i]...)
	}
	return out, nil
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Detflow is the dataflow upgrade of nondeterminism: instead of
// matching forbidden constructs at their use site, it follows values
// with the taint engine (taint.go) over the per-function CFG (cfg.go),
// so nondeterminism laundered through locals and in-package helpers is
// still caught:
//
//	var out []ident.ID
//	for id := range n.objects {        // order taint on id
//		out = push(out, id)            // helper-mediated append:
//	}                                  //   summary says param→result
//	return out                         // sequence-tainted return: flagged
//
// Sources are map-iteration order (range loop variables) and pointer
// identity (uintptr conversions of pointers, reflect Pointer/UnsafePointer).
// Order taint becomes sequence taint only through order-sensitive
// accumulation — append (direct or through a summarized helper), string
// concatenation, float accumulation — so commutative reductions over
// map values stay clean. Sinks: returns and channel sends of
// sequence-tainted values, and sim.Engine scheduling or metrics calls
// whose arguments carry either taint kind. Sorting (sort.*, slices'
// Sort*, or an in-package helper whose name contains "sort" or "canon")
// cleanses.
var Detflow = &Analyzer{
	Name:  "detflow",
	Doc:   "track map-order and pointer-identity taint through locals and helpers to returns, sends, engine events and metrics",
	Scope: DeterministicPkgs,
	Run:   runDetflow,
}

func runDetflow(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pass.taintFunc(fd, taintHooks{
				sourceCall: detflowSource(pass),
				sink:       detflowSink(pass),
			})
		}
	}
}

// detflowSource recognizes fresh taint sources that are calls: pointer
// identity observed through a uintptr conversion or the reflect
// Pointer/UnsafePointer methods. (Map-range order, the other source, is
// introduced by the engine itself at range heads.)
func detflowSource(pass *Pass) func(call *ast.CallExpr) taintFact {
	return func(call *ast.CallExpr) taintFact {
		if pass.isConversion(call) && len(call.Args) == 1 {
			tv, ok := pass.Info.Types[call.Fun]
			if ok {
				if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Kind() == types.Uintptr {
					if at, ok := pass.Info.Types[call.Args[0]]; ok && isPointerish(at.Type) {
						return taintFact{kind: kindOrder, why: "pointer identity (uintptr conversion)"}
					}
				}
			}
			return taintFact{}
		}
		if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "reflect" {
			if fn.Name() == "Pointer" || fn.Name() == "UnsafePointer" {
				return taintFact{kind: kindOrder, why: "pointer identity (reflect." + fn.Name() + ")"}
			}
		}
		return taintFact{}
	}
}

func isPointerish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// detflowSink inspects each CFG node against the taint state in force
// before it and reports sequence-tainted returns and channel sends, and
// tainted arguments (either kind) to engine scheduling and metrics
// calls. Closure interiors are skipped: their bodies execute under a
// different state.
func detflowSink(pass *Pass) func(n ast.Node, state taintState) {
	return func(n ast.Node, state taintState) {
		// The RangeStmt head node contains its whole body; the body
		// statements are sink-checked in their own blocks.
		if rng, ok := n.(*ast.RangeStmt); ok {
			n = rng.X
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if f, tainted := pass.exprTaint(r, state); tainted && f.kind == kindSeq {
						pass.Reportf(r.Pos(), "returns a value %s: the result is nondeterministic; sort (or canonicalize) before returning", f.why)
					}
				}
			case *ast.SendStmt:
				if f, tainted := pass.exprTaint(x.Value, state); tainted && f.kind == kindSeq {
					pass.Reportf(x.Value.Pos(), "sends a value %s: the result is nondeterministic; sort (or canonicalize) before sending", f.why)
				}
			case *ast.CallExpr:
				detflowCheckCall(pass, x, state)
			}
			return true
		})
	}
}

// detflowCheckCall flags tainted arguments reaching the event engine
// (where insertion order breaks same-tick determinism) or a metrics
// method (where outputs become run-dependent).
func detflowCheckCall(pass *Pass, call *ast.CallExpr, state taintState) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	var what string
	switch {
	case methodOn(fn, "internal/sim", "Engine", "Schedule"),
		methodOn(fn, "internal/sim", "Engine", "Every"),
		methodOn(fn, "internal/sim", "Engine", "Deliver"):
		what = "sim.Engine." + fn.Name()
	case fn.Pkg() != nil && hasPathSuffix(fn.Pkg().Path(), "internal/metrics"):
		what = "metrics call " + fn.Name()
	default:
		return
	}
	for _, arg := range call.Args {
		if f, tainted := pass.exprTaint(arg, state); tainted {
			pass.Reportf(arg.Pos(), "argument to %s derived from %s: same-tick event and metric ordering becomes run-dependent; iterate a sorted snapshot instead", what, f.why)
			return
		}
	}
}

package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// taintTestSrc is one package holding every engine test case plus the
// toy helpers: src() is the (hook-recognized) taint source, use()/
// useSlice() are the sinks the test observes, canon() is a sanitizer by
// name, and pass1/drop/viaSort exercise the flow summaries.
const taintTestSrc = `package taintcase

import "sort"

func src() int        { return 1 }
func use(x int)       {}
func useSlice(x []int) {}
func canon(x int)     {}

func pass1(a int) int { return a }
func drop(a int) int  { return 0 }
func viaSort(a []int) []int {
	sort.Ints(a)
	return a
}
func push(dst []int, v int) []int { return append(dst, v) }

func direct(c bool) {
	x := src()
	use(x)
}

func branchJoin(c bool) {
	x := 0
	if c {
		x = src()
	}
	use(x)
}

func branchKillBoth(c bool) {
	x := src()
	if c {
		x = 0
	} else {
		x = 1
	}
	use(x)
}

func loopCarried(n int) {
	x := 0
	for i := 0; i < n; i++ {
		use(x)
		x = src()
	}
}

func shortCircuit(c bool) {
	ok := c || src() > 0
	var x int
	if ok {
		x = src()
	}
	use(x)
}

func sanitized(c bool) {
	x := src()
	canon(x)
	use(x)
}

func strongUpdate(c bool) {
	x := src()
	x = 0
	use(x)
}

func helperFlows(c bool) {
	x := src()
	y := pass1(x)
	use(y)
}

func helperDrops(c bool) {
	x := src()
	y := drop(x)
	use(y)
}

func helperSorts(m map[int]int) {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	out = viaSort(out)
	useSlice(out)
}

func helperBuilds(m map[int]int) {
	var out []int
	for k := range m {
		out = push(out, k)
	}
	useSlice(out)
}

func mapRangeSeq(m map[int]int) {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	useSlice(out)
}

func mapRangeCommutes(m map[int]int) {
	sum := 0
	for _, v := range m {
		sum += v
	}
	use(sum)
}
`

// loadTaintCases parses and type-checks the test package in memory.
func loadTaintCases(t *testing.T) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "taintcase.go", taintTestSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("lbvet.test/taintcase", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var findings []Finding
	return &Pass{
		Analyzer: Detflow,
		Fset:     fset,
		Path:     "lbvet.test/taintcase",
		Files:    []*ast.File{f},
		Pkg:      pkg,
		Info:     info,
		facts:    newFacts(),
		findings: &findings,
	}
}

// TestTaintEngine drives the CFG fixpoint with toy hooks: src() is the
// only source, and a case passes when the use()/useSlice() argument's
// taint matches the table.
func TestTaintEngine(t *testing.T) {
	cases := []struct {
		fn          string
		wantTainted bool
	}{
		{"direct", true},
		{"branchJoin", true},        // may-analysis keeps the tainted branch
		{"branchKillBoth", false},   // both branches strong-update
		{"loopCarried", true},       // taint rides the back edge
		{"shortCircuit", true},      // source inside a short-circuit operand
		{"sanitized", false},        // canon() kills its argument
		{"strongUpdate", false},     // clean reassignment kills
		{"helperFlows", true},       // summary: pass1 param reaches result
		{"helperDrops", false},      // summary: drop's param does not
		{"helperSorts", false},      // summary: viaSort cleanses on the way
		{"helperBuilds", true},      // summary: push launders an append
		{"mapRangeSeq", true},       // order taint escalates through append
		{"mapRangeCommutes", false}, // int accumulation commutes
	}
	pass := loadTaintCases(t)
	byName := make(map[string]*ast.FuncDecl)
	for _, d := range pass.Files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			byName[fd.Name.Name] = fd
		}
	}

	srcHook := func(call *ast.CallExpr) taintFact {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "src" {
			return taintFact{kind: kindOrder, why: "test source"}
		}
		return taintFact{}
	}

	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fd := byName[tc.fn]
			if fd == nil {
				t.Fatalf("no function %s in test source", tc.fn)
			}
			gotTainted := false
			pass.taintFunc(fd, taintHooks{
				sourceCall: srcHook,
				sink: func(n ast.Node, state taintState) {
					ast.Inspect(n, func(m ast.Node) bool {
						call, ok := m.(*ast.CallExpr)
						if !ok {
							return true
						}
						id, ok := ast.Unparen(call.Fun).(*ast.Ident)
						if !ok || !strings.HasPrefix(id.Name, "use") {
							return true
						}
						for _, arg := range call.Args {
							if _, tainted := pass.exprTaint(arg, state); tainted {
								gotTainted = true
							}
						}
						return true
					})
				},
			})
			if gotTainted != tc.wantTainted {
				t.Errorf("%s: use() argument tainted = %v, want %v", tc.fn, gotTainted, tc.wantTainted)
			}
		})
	}
}

// TestFlowSummaries checks the interprocedural half directly: which
// parameters each helper's summary says reach its results.
func TestFlowSummaries(t *testing.T) {
	pass := loadTaintCases(t)
	cases := []struct {
		fn   string
		want []bool
	}{
		{"pass1", []bool{true}},
		{"drop", []bool{false}},
		{"viaSort", []bool{false}},   // sorted on the way out
		{"push", []bool{true, true}}, // both args reach the appended result
		{"src", []bool{}},            // no params
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			obj := pass.Pkg.Scope().Lookup(tc.fn)
			fn, ok := obj.(*types.Func)
			if !ok {
				t.Fatalf("no function %s", tc.fn)
			}
			sum := pass.flowSummary(fn)
			if sum == nil {
				t.Fatalf("no summary for %s", tc.fn)
			}
			if len(sum.flows) != len(tc.want) {
				t.Fatalf("summary len = %d, want %d", len(sum.flows), len(tc.want))
			}
			for i := range tc.want {
				if sum.flows[i] != tc.want[i] {
					t.Errorf("param %d flows = %v, want %v", i, sum.flows[i], tc.want[i])
				}
			}
		})
	}
}

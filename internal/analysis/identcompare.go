package analysis

import (
	"go/ast"
	"go/token"
)

// IdentCompare forbids raw ordering/difference arithmetic on ident.ID
// outside internal/ident. The identifier space is a ring of integers
// mod 2^32: `a < b` and `a - b` silently give the wrong answer when the
// arc between a and b crosses zero, which is exactly the case overlay
// maintenance must survive. Callers should use ident.ID.Dist/Between
// and the Region helpers; deliberate total-order uses (canonical
// sorting, dedup tiebreaks) are annotated, not rewritten.
var IdentCompare = &Analyzer{
	Name: "identcompare",
	Doc:  "flag raw </>/− arithmetic on ident.ID outside internal/ident (breaks at ring wrap-around)",
	// The one package allowed to do raw ID arithmetic.
	Exclude: []string{"internal/ident"},
	Run:     runIdentCompare,
}

func runIdentCompare(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.SUB:
			default:
				return true
			}
			if !isIdentID(pass, be.X) && !isIdentID(pass, be.Y) {
				return true
			}
			verb := "comparison"
			hint := "ident.ID.Dist/Between or Region.Contains"
			if be.Op == token.SUB {
				verb = "subtraction"
				hint = "ident.ID.Dist (clockwise distance)"
			}
			pass.Reportf(be.OpPos, "raw ident.ID %s %q wraps incorrectly at the ring boundary; use %s, or annotate a deliberate total-order use with //lbvet:ignore identcompare <reason>", verb, exprString(be), hint)
			return true
		})
	}
}

func isIdentID(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && isPkgType(tv.Type, "internal/ident", "ID")
}

package ktree

import (
	"math"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/sim"
)

func buildRing(seed int64, nodes, vsPerNode int) *chord.Ring {
	eng := sim.NewEngine(seed)
	r := chord.NewRing(eng, chord.Config{})
	for i := 0; i < nodes; i++ {
		r.AddNode(-1, 100, vsPerNode)
	}
	return r
}

func buildTree(t *testing.T, ring *chord.Ring, k int) *Tree {
	t.Helper()
	tree, err := New(ring, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	tree.CheckInvariants()
	return tree
}

func TestNewValidation(t *testing.T) {
	ring := buildRing(1, 2, 2)
	if _, err := New(ring, 1); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	empty := chord.NewRing(sim.NewEngine(1), chord.Config{})
	tree, _ := New(empty, 2)
	if err := tree.Build(); err == nil {
		t.Fatal("building over empty ring must fail")
	}
	if _, err := tree.Repair(); err == nil {
		t.Fatal("repairing over empty ring must fail")
	}
}

func TestBuildSingleVS(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	ring.AddNodeWithIDs(-1, 10, []ident.ID{12345})
	tree := buildTree(t, ring, 2)
	if !tree.Root().IsLeaf() {
		t.Fatal("single-VS tree should be just a root leaf")
	}
	if tree.NumNodes() != 1 || tree.NumLeaves() != 1 || tree.Height() != 0 {
		t.Fatalf("tree stats %d/%d/%d", tree.NumNodes(), tree.NumLeaves(), tree.Height())
	}
}

func TestEveryVSHostsALeaf(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, k := range []int{2, 8} {
			ring := buildRing(seed, 64, 5)
			tree := buildTree(t, ring, k)
			for _, vs := range ring.VServers() {
				if len(tree.LeavesOf(vs)) == 0 {
					t.Fatalf("seed=%d k=%d: VS %s hosts no leaf", seed, k, vs.ID)
				}
			}
		}
	}
}

func TestLeavesTileTheCircle(t *testing.T) {
	ring := buildRing(4, 32, 4)
	tree := buildTree(t, ring, 2)
	var total uint64
	tree.Walk(func(n *Node) {
		if n.IsLeaf() {
			total += n.Region.Width
		}
	})
	if total != ident.SpaceSize {
		t.Fatalf("leaves cover %d of %d", total, ident.SpaceSize)
	}
}

func TestLeafRegionInsideHostRegion(t *testing.T) {
	ring := buildRing(5, 48, 3)
	tree := buildTree(t, ring, 2)
	tree.Walk(func(n *Node) {
		if n.IsLeaf() && !ring.RegionOf(n.Host).Covers(n.Region) {
			t.Fatalf("leaf %v not inside host %v", n.Region, ring.RegionOf(n.Host))
		}
	})
}

func TestHeightScalesWithK(t *testing.T) {
	ring2 := buildRing(6, 128, 4)
	tree2 := buildTree(t, ring2, 2)
	ring8 := buildRing(6, 128, 4)
	tree8 := buildTree(t, ring8, 8)
	if tree8.Height() >= tree2.Height() {
		t.Errorf("K=8 height %d should be below K=2 height %d", tree8.Height(), tree2.Height())
	}
	// K=2 height is bounded by the identifier bits.
	if tree2.Height() > ident.Bits {
		t.Errorf("K=2 height %d exceeds %d", tree2.Height(), ident.Bits)
	}
	// K=8 splits cut region width by 8 per level.
	if want := int(math.Ceil(float64(ident.Bits)/3)) + 1; tree8.Height() > want {
		t.Errorf("K=8 height %d exceeds %d", tree8.Height(), want)
	}
}

func TestBuildCountsPlantMessages(t *testing.T) {
	ring := buildRing(7, 16, 3)
	eng := ring.Engine()
	tree := buildTree(t, ring, 2)
	if got := eng.MessageCount(MsgPlant); got != int64(tree.NumNodes()) {
		t.Errorf("plant messages %d, want %d", got, tree.NumNodes())
	}
	if eng.MessageCost(MsgPlant) <= 0 {
		t.Error("plant cost not charged")
	}
}

func TestRepairNoChangeIsStable(t *testing.T) {
	ring := buildRing(8, 32, 4)
	tree := buildTree(t, ring, 2)
	nodes, leaves, height := tree.NumNodes(), tree.NumLeaves(), tree.Height()
	changes, err := tree.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if changes != 0 {
		t.Errorf("repair on unchanged ring made %d changes", changes)
	}
	tree.CheckInvariants()
	if tree.NumNodes() != nodes || tree.NumLeaves() != leaves || tree.Height() != height {
		t.Error("repair changed tree shape without ring changes")
	}
}

func TestRepairAfterNodeRemoval(t *testing.T) {
	ring := buildRing(9, 32, 4)
	tree := buildTree(t, ring, 2)
	victims := ring.AliveNodes()[:8]
	for _, v := range victims {
		ring.RemoveNode(v)
	}
	changes, err := tree.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if changes == 0 {
		t.Error("removing a quarter of nodes should change the tree")
	}
	tree.CheckInvariants()
	// Freshly built tree over the same ring must have identical shape.
	fresh, _ := New(ring, 2)
	if err := fresh.Build(); err != nil {
		t.Fatal(err)
	}
	if fresh.NumNodes() != tree.NumNodes() || fresh.NumLeaves() != tree.NumLeaves() {
		t.Errorf("repaired tree shape %d/%d differs from fresh build %d/%d",
			tree.NumNodes(), tree.NumLeaves(), fresh.NumNodes(), fresh.NumLeaves())
	}
}

func TestRepairAfterNodeAddition(t *testing.T) {
	ring := buildRing(10, 16, 4)
	tree := buildTree(t, ring, 2)
	for i := 0; i < 16; i++ {
		ring.AddNode(-1, 100, 4)
	}
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	tree.CheckInvariants()
	for _, vs := range ring.VServers() {
		if len(tree.LeavesOf(vs)) == 0 {
			t.Fatalf("new VS %s has no leaf after repair", vs.ID)
		}
	}
}

func TestRepairAfterTransfer(t *testing.T) {
	ring := buildRing(11, 16, 4)
	tree := buildTree(t, ring, 2)
	nodes := ring.AliveNodes()
	// Move every VS of node 0 to node 1: tree shape is unchanged (the
	// ring structure is the same), only Host owners differ — and Host
	// pointers still point at the same VS objects, so repair sees no
	// structural change.
	for _, vs := range append([]*chord.VServer(nil), nodes[0].VServers()...) {
		ring.Transfer(vs, nodes[1])
	}
	changes, err := tree.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if changes != 0 {
		t.Errorf("transfer must not change tree structure, got %d changes", changes)
	}
	tree.CheckInvariants()
}

func TestRepairQuiescentSendsNothing(t *testing.T) {
	ring := buildRing(12, 16, 4)
	tree := buildTree(t, ring, 2)
	ring.Engine().ResetMessageStats()
	changes, err := tree.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if changes != 0 {
		t.Errorf("quiescent repair made %d changes", changes)
	}
	if hb := ring.Engine().MessageCount(MsgHeartbeat); hb != 0 {
		t.Errorf("quiescent repair sent %d heartbeats, want 0", hb)
	}
	if p := ring.Engine().MessageCount(MsgPlant); p != 0 {
		t.Errorf("quiescent repair sent %d plants, want 0", p)
	}
}

func TestRepairCountsHeartbeats(t *testing.T) {
	ring := buildRing(12, 64, 4)
	tree := buildTree(t, ring, 2)
	edges := int64(tree.NumNodes() - 1)
	ring.Engine().ResetMessageStats()
	ring.RemoveNode(ring.AliveNodes()[0])
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	hb := ring.Engine().MessageCount(MsgHeartbeat)
	if hb == 0 {
		t.Error("repair after churn probed no children")
	}
	// Probes happen only along dirty paths: far fewer than one per
	// parent-child edge of the whole tree.
	if hb >= edges/2 {
		t.Errorf("heartbeats %d not incremental (tree has %d edges)", hb, edges)
	}
	if ring.Engine().MessageCount(MsgPlant) == 0 {
		t.Error("repair after churn planted nothing")
	}
}

// TestRepairHeartbeatUsesCurrentHost is the churn pricing regression: a
// probe must be priced against the child's re-resolved current host,
// not the stale pre-repair host that may have departed. Every latency
// touching the departed node is enormous; if any post-churn probe were
// still priced against a host on it, the heartbeat cost would show it.
func TestRepairHeartbeatUsesCurrentHost(t *testing.T) {
	const farAway = 100000
	eng := sim.NewEngine(21)
	victimIdx := 0
	ring := chord.NewRing(eng, chord.Config{
		Latency: func(a, b *chord.Node) sim.Time {
			if a.Index == victimIdx || b.Index == victimIdx {
				return farAway
			}
			return 1
		},
	})
	for i := 0; i < 16; i++ {
		ring.AddNode(-1, 100, 4)
	}
	tree, err := New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	ring.Engine().ResetMessageStats()
	ring.RemoveNode(ring.Nodes()[victimIdx])
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	hb := ring.Engine().MessageCount(MsgHeartbeat)
	if hb == 0 {
		t.Fatal("repair after churn probed no children")
	}
	// All surviving hosts live on non-victim nodes: every probe costs
	// latency 1 + 1 hop. A single stale-host pricing would add farAway.
	if cost := ring.Engine().MessageCost(MsgHeartbeat); cost != 2*hb {
		t.Errorf("heartbeat cost %d for %d probes; a probe was priced against a departed host", cost, hb)
	}
}

func TestCompressedShape(t *testing.T) {
	ring := buildRing(18, 256, 5) // 1280 VSs
	tree := buildTree(t, ring, 2)
	v := ring.NumVServers()
	// Chain collapse keeps the tree near log2(V) deep instead of the
	// identifier-bits-deep chains a dyadic split produces.
	bound := 2 * int(math.Ceil(math.Log2(float64(v))))
	if tree.Height() > bound {
		t.Errorf("height %d exceeds 2*log2(%d VSs) = %d", tree.Height(), v, bound)
	}
	if tree.NumNodes() > 5*v {
		t.Errorf("%d nodes for %d VSs — compression failed (~4.3/VS expected)", tree.NumNodes(), v)
	}
}

func TestRepairFromScratch(t *testing.T) {
	ring := buildRing(13, 8, 3)
	tree, _ := New(ring, 2)
	changes, err := tree.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if changes != tree.NumNodes() {
		t.Errorf("bootstrap repair reported %d changes, want %d", changes, tree.NumNodes())
	}
	tree.CheckInvariants()
}

func TestRepairMassiveChurnConverges(t *testing.T) {
	ring := buildRing(14, 64, 4)
	tree := buildTree(t, ring, 2)
	// Churn: remove half, add half, repair, and verify a second repair
	// is a no-op (fixed point).
	alive := ring.AliveNodes()
	for i := 0; i < len(alive)/2; i++ {
		ring.RemoveNode(alive[i])
	}
	for i := 0; i < 32; i++ {
		ring.AddNode(-1, 100, 4)
	}
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	tree.CheckInvariants()
	changes, _ := tree.Repair()
	if changes != 0 {
		t.Errorf("second repair made %d changes, want 0", changes)
	}
}

func TestEdgeLatency(t *testing.T) {
	ring := buildRing(15, 16, 3)
	tree := buildTree(t, ring, 2)
	if tree.EdgeLatency(tree.Root()) != 0 {
		t.Error("root edge latency should be 0")
	}
	tree.Walk(func(n *Node) {
		if n.Parent != nil && tree.EdgeLatency(n) < 1 {
			t.Error("child edge latency should be >= 1")
		}
	})
}

func TestWalkVisitsAllNodesOnce(t *testing.T) {
	ring := buildRing(16, 32, 3)
	tree := buildTree(t, ring, 2)
	seen := map[*Node]bool{}
	tree.Walk(func(n *Node) {
		if seen[n] {
			t.Fatal("node visited twice")
		}
		seen[n] = true
	})
	if len(seen) != tree.NumNodes() {
		t.Fatalf("walk visited %d, tree has %d", len(seen), tree.NumNodes())
	}
	// Walk on an unbuilt tree is a no-op.
	empty, _ := New(ring, 2)
	empty.Walk(func(*Node) { t.Fatal("unbuilt tree should not visit") })
}

func TestTreeSizeReasonable(t *testing.T) {
	// The tree should stay near-linear in the number of virtual servers.
	ring := buildRing(17, 256, 5) // 1280 VSs
	tree := buildTree(t, ring, 2)
	v := ring.NumVServers()
	if tree.NumNodes() > v*2*ident.Bits {
		t.Errorf("tree has %d nodes for %d VSs — superlinear blowup", tree.NumNodes(), v)
	}
	if tree.NumLeaves() < v {
		t.Errorf("only %d leaves for %d VSs", tree.NumLeaves(), v)
	}
}

func BenchmarkBuild256x5K2(b *testing.B) {
	ring := buildRing(1, 256, 5)
	tree, _ := New(ring, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairStable(b *testing.B) {
	ring := buildRing(1, 256, 5)
	tree, _ := New(ring, 2)
	tree.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Repair()
	}
}

// Package ktree implements the self-organized, fully distributed K-nary
// tree the paper builds on top of the DHT (§3.1) for load-balancing
// information aggregation/dissemination and virtual server assignment.
//
// Every KT node is responsible for a region of the identifier space; the
// root is responsible for the whole space. A KT node is planted in the
// virtual server that owns the center point of its region (the center is
// its DHT key). A KT node whose region is completely covered by its
// hosting virtual server's region is a leaf; otherwise the region is
// split into K near-equal parts and the partitioning recurses — with two
// compressions that keep the materialized tree near log_K(N) deep and
// ~2 nodes per virtual server instead of the ~22/VS a naive dyadic
// recursion produces:
//
//   - Chain collapse (path compression): when a split leaves exactly one
//     part that still straddles an ownership boundary, no intermediate KT
//     node is materialized for it — the split descends directly into that
//     part, accumulating the covered side-parts as leaves of the current
//     node. A region straddling a single VS boundary therefore costs a
//     handful of leaves instead of a 32-deep single-child chain.
//   - Leaf merging: adjacent sibling leaves owned by the same virtual
//     server coalesce into one leaf with the concatenated region.
//
// Children of an internal node are stored as a dense slice (no nil
// slots) that tiles the node's region in clockwise order; because of the
// compressions a node can have more than K children, but never fewer
// than two. Leaves still tile the identifier circle and a leaf's region
// always lies inside its hosting virtual server's region, so every
// virtual server hosts at least one leaf — the property the reporting
// protocols rely on ("it is guaranteed that a KT leaf node will be
// planted in each virtual server").
//
// Nodes are bump-allocated from chunked arenas (pointer-stable arrays of
// Node plus shared child-pointer blocks), so building a million-VS tree
// performs thousands of allocations instead of millions.
//
// The tree is soft state, maintained incrementally: the tree subscribes
// to its ring as a chord.Listener and records the identifier arcs whose
// ownership changed (joins and departures; VS transfers move a virtual
// server between physical nodes without changing ownership, so they
// dirty nothing). Repair re-decomposes only the subtrees overlapping
// those dirty arcs and splices untouched subtrees back unchanged —
// exactly the paper's periodic per-node region checks, heartbeats and
// pruning, compressed into one deterministic sweep per maintenance
// round. A repair on a quiescent ring sends no messages at all.
//
// Build and the dirty portions of Repair shard across cores per subtree
// (internal/par): the decomposition only reads the ring through
// Successor — a pure binary search with no caches — and all message
// accounting and leaf bookkeeping are accumulated per worker and applied
// serially in deterministic task order, so the sharded sweep needs no
// randomness and produces bit-identical trees regardless of core count.
//
// Planting a KT node costs one DHT lookup; in this simulator the lookup
// is resolved against the consistent ring and charged an estimated
// O(log₂ V) hop cost (the chord package demonstrates routed lookups
// match this).
package ktree

import (
	"fmt"
	"math"
	"sort"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/par"
	"p2plb/internal/sim"
)

// Message kinds counted on the engine.
const (
	MsgPlant     = "ktree.plant"     // planting a KT node (one DHT lookup)
	MsgHeartbeat = "ktree.heartbeat" // parent probing a child during repair
)

// maxPendingArcs bounds the dirty-arc journal. Past this much churn a
// full rebuild is cheaper than tracking, so the journal overflows into
// a whole-tree repair.
const maxPendingArcs = 1 << 16

// nodeChunk and childChunk size the arena blocks: nodes and
// child-pointer slots are carved from blocks this large, so allocation
// count is ~N/4096 instead of ~N.
const (
	nodeChunk  = 4096
	childChunk = 8192
)

// Node is one KT node.
type Node struct {
	Region   ident.Region   // responsible portion of the identifier space
	Key      ident.ID       // center of Region; the DHT key it is planted at
	Host     *chord.VServer // virtual server currently hosting this KT node
	Parent   *Node          // nil for the root
	Children []*Node        // nil for leaves; dense, >= 2 entries, tiling Region clockwise
	Depth    int            // root is 0
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Children == nil }

// Tree is the distributed K-nary tree over a ring.
type Tree struct {
	ring       *chord.Ring
	k          int
	root       *Node
	leavesByVS map[*chord.VServer][]*Node
	numNodes   int
	numLeaves  int
	depthCount []int // depthCount[d] = number of nodes at depth d

	// taskDepth is the depth at which Build/Repair hand subtrees to
	// parallel workers: shallow levels run serially, producing at most
	// ~k^taskDepth independent subtree tasks.
	taskDepth int

	// Dirty-arc journal fed by the ring listener callbacks. overflow
	// means the journal was dropped and the next Repair reconciles the
	// whole tree.
	pending  []ident.Region
	overflow bool
}

// New returns an unbuilt tree of branching factor k (k >= 2) over ring.
// The tree subscribes to the ring so that churn between repairs is
// tracked as dirty identifier arcs.
func New(ring *chord.Ring, k int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("ktree: branching factor %d < 2", k)
	}
	// Aim for ~256 parallel subtree tasks: the smallest d with k^d >= 256.
	d := 0
	for n := 1; n < 256; n *= k {
		d++
	}
	t := &Tree{
		ring:       ring,
		k:          k,
		taskDepth:  d,
		leavesByVS: make(map[*chord.VServer][]*Node),
	}
	ring.Subscribe(t)
	return t, nil
}

// K returns the branching factor.
func (t *Tree) K() int { return t.k }

// Root returns the KT root node (nil before Build).
func (t *Tree) Root() *Node { return t.root }

// NumNodes returns the number of KT nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// NumLeaves returns the number of KT leaf nodes.
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Height returns the maximum depth of any node (root = 0).
func (t *Tree) Height() int {
	for d := len(t.depthCount) - 1; d >= 0; d-- {
		if t.depthCount[d] > 0 {
			return d
		}
	}
	return 0
}

// Ring returns the underlying ring.
func (t *Tree) Ring() *chord.Ring { return t.ring }

// LeavesOf returns the KT leaves planted in vs. The returned slice must
// not be modified.
func (t *Tree) LeavesOf(vs *chord.VServer) []*Node { return t.leavesByVS[vs] }

// VSAdded implements chord.Listener: a join changes ownership exactly on
// the new virtual server's region.
func (t *Tree) VSAdded(vs *chord.VServer) {
	if t.root == nil || t.overflow {
		return // unbuilt trees start from Build, which reconciles everything
	}
	t.markDirty(t.ring.RegionOf(vs))
}

// VSRemoved implements chord.Listener: a departure changes ownership
// exactly on the departed region, which the absorbing successor now
// owns. The successor's post-removal region is a superset of the
// departed arc, so marking it dirty is always safe.
func (t *Tree) VSRemoved(vs *chord.VServer) {
	if t.root == nil || t.overflow {
		return
	}
	succ := t.ring.Successor(vs.ID)
	if succ == nil {
		// Ring emptied out; the next Build/Repair handles it wholesale.
		t.overflow = true
		t.pending = nil
		return
	}
	t.markDirty(t.ring.RegionOf(succ))
}

// VSTransferred implements chord.Listener: moving a virtual server
// between physical nodes changes no key ownership, and Host pointers
// reference the VServer object itself, so the tree structure is
// untouched — nothing becomes dirty.
func (t *Tree) VSTransferred(vs *chord.VServer, from, to *chord.Node) {}

func (t *Tree) markDirty(r ident.Region) {
	if len(t.pending) >= maxPendingArcs {
		t.overflow = true
		t.pending = nil
		return
	}
	t.pending = append(t.pending, r)
}

// plantCost estimates the cost, in latency units, of the DHT lookup that
// plants a KT node: O(log₂ V) overlay hops.
func (t *Tree) plantCost() sim.Time {
	v := t.ring.NumVServers()
	if v < 2 {
		return 1
	}
	return sim.Time(math.Ceil(math.Log2(float64(v))))
}

// heartbeatCost is the latency of one parent→child probe.
func (t *Tree) heartbeatCost(parent, child *Node) sim.Time {
	return t.ring.Latency(parent.Host.Owner, child.Host.Owner) + 1
}

// EdgeLatency returns the one-way message latency between a node and its
// parent, used by the aggregation protocols running over the tree.
func (t *Tree) EdgeLatency(n *Node) sim.Time {
	if n.Parent == nil {
		return 0
	}
	return t.ring.Latency(n.Host.Owner, n.Parent.Host.Owner) + 1
}

// owner returns the virtual server owning id. Ring.Successor is a pure
// binary search (no position-cache writes), so owner is safe to call
// from parallel build workers.
func (t *Tree) owner(id ident.ID) *chord.VServer { return t.ring.Successor(id) }

// coveredBy returns the single virtual server owning every identifier
// of r, or nil if ownership is split. Ownership changes exactly at
// virtual-server identifiers (when more than one exists), so r is
// single-owner iff no VS identifier lies in r short of its last key —
// and Successor(r.Start) is the only candidate. When no boundary cuts
// r, that same successor owns all of it.
func (t *Tree) coveredBy(r ident.Region) *chord.VServer {
	first := t.owner(r.Start)
	if t.ring.NumVServers() > 1 && r.Width > 1 && r.Start.Dist(first.ID) < r.Width-1 {
		return nil
	}
	return first
}

// Build constructs the tree from scratch against the current ring state.
// Each planted node is charged one MsgPlant message.
func (t *Tree) Build() error {
	if t.ring.NumVServers() == 0 {
		return fmt.Errorf("ktree: cannot build over an empty ring")
	}
	t.pending, t.overflow = nil, false
	t.root = nil
	t.leavesByVS = make(map[*chord.VServer][]*Node)
	t.numNodes, t.numLeaves = 0, 0
	t.depthCount = t.depthCount[:0]

	b := t.newBuilder(nil)
	full := ident.Full()
	if host := t.coveredBy(full); host != nil {
		root := b.newLeaf(full, host, nil)
		t.root = root
	} else {
		root := b.newInternal(full, nil)
		t.root = root
		b.process(root, true, 0)
	}
	t.runTasks(b)
	t.apply(b)
	return nil
}

// Repair reconciles the tree with the current ring after membership or
// hosting changes. Only subtrees overlapping the dirty identifier arcs
// recorded since the last Build/Repair are re-decomposed; untouched
// subtrees are spliced back verbatim, so a repair on a quiescent ring
// makes no changes and sends no messages. Along dirty paths every
// surviving child is probed (one MsgHeartbeat, priced against the
// child's re-resolved current host) and every created or re-planted
// node is charged one MsgPlant. It returns the number of KT nodes
// planted, re-planted, or pruned.
func (t *Tree) Repair() (changes int, err error) {
	if t.ring.NumVServers() == 0 {
		return 0, fmt.Errorf("ktree: cannot repair over an empty ring")
	}
	if t.root == nil || t.overflow {
		if err := t.Build(); err != nil {
			return 0, err
		}
		return t.numNodes, nil
	}
	dirty := newDirtySet(t.pending)
	t.pending = nil
	if dirty.empty() {
		return 0, nil
	}
	b := t.newBuilder(dirty)
	full := ident.Full()
	if host := t.coveredBy(full); host != nil {
		// The whole ring has a single owner: the tree is one root leaf.
		if t.root.IsLeaf() && t.root.Host == host {
			return 0, nil
		}
		old := t.root
		t.root = b.newLeaf(full, host, nil)
		b.discardSubtree(old)
	} else {
		if t.root.IsLeaf() {
			// Former single-VS ring grew: the root leaf becomes internal.
			b.removeLeaf(t.root)
			b.changes++ // the root is re-planted as an internal node
		}
		b.process(t.root, false, 0)
	}
	t.runTasks(b)
	return t.apply(b), nil
}

// Walk visits every node in depth-first preorder (clockwise child
// order).
func (t *Tree) Walk(visit func(*Node)) {
	if t.root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.root)
}

// ---------------------------------------------------------------------
// Dirty-arc bookkeeping

// dirtySet is a sorted, disjoint set of linear identifier intervals
// [lo, hi) over [0, SpaceSize); wrap-around arcs are split in two.
type dirtySet struct {
	lo, hi []uint64
}

func newDirtySet(arcs []ident.Region) *dirtySet {
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for _, r := range arcs {
		if r.IsEmpty() {
			continue
		}
		lo := uint64(uint32(r.Start))
		hi := lo + r.Width
		if hi <= ident.SpaceSize {
			ivs = append(ivs, iv{lo, hi})
		} else {
			ivs = append(ivs, iv{lo, ident.SpaceSize}, iv{0, hi - ident.SpaceSize})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	d := &dirtySet{}
	for _, v := range ivs {
		if n := len(d.hi); n > 0 && v.lo <= d.hi[n-1] {
			if v.hi > d.hi[n-1] {
				d.hi[n-1] = v.hi
			}
			continue
		}
		d.lo = append(d.lo, v.lo)
		d.hi = append(d.hi, v.hi)
	}
	return d
}

func (d *dirtySet) empty() bool { return len(d.lo) == 0 }

func (d *dirtySet) overlapsLinear(lo, hi uint64) bool {
	i := sort.Search(len(d.hi), func(i int) bool { return d.hi[i] > lo })
	return i < len(d.lo) && d.lo[i] < hi
}

// overlaps reports whether the region shares an identifier with any
// dirty interval. A nil set (full rebuild) is treated as all-dirty.
//
//lbvet:hotpath
func (d *dirtySet) overlaps(r ident.Region) bool {
	if d == nil {
		return true
	}
	if r.IsEmpty() || d.empty() {
		return false
	}
	lo := uint64(uint32(r.Start))
	hi := lo + r.Width
	if hi <= ident.SpaceSize {
		return d.overlapsLinear(lo, hi)
	}
	return d.overlapsLinear(lo, ident.SpaceSize) || d.overlapsLinear(0, hi-ident.SpaceSize)
}

// ---------------------------------------------------------------------
// Arenas

// arena bump-allocates nodes and child-pointer slices from chunked
// blocks. Chunks never move, so *Node pointers are stable for the
// lifetime of the tree. Each builder (serial phase or parallel worker)
// owns one arena, so allocation takes no locks.
type arena struct {
	nodes []Node
	used  int
	kids  []*Node
	kused int
}

func (a *arena) node() *Node {
	if a.used == len(a.nodes) {
		a.nodes = make([]Node, nodeChunk)
		a.used = 0
	}
	n := &a.nodes[a.used]
	a.used++
	return n
}

// childSlice carves a zero-length slice with capacity n from the
// current child block.
func (a *arena) childSlice(n int) []*Node {
	if a.kused+n > len(a.kids) {
		size := childChunk
		if n > size {
			size = n
		}
		a.kids = make([]*Node, size)
		a.kused = 0
	}
	s := a.kids[a.kused : a.kused : a.kused+n]
	a.kused += n
	return s
}

// ---------------------------------------------------------------------
// Builder: the shared Build/Repair machinery

// piece is one element of a region's compressed decomposition: a leaf
// (host != nil) or a subtree still straddling ownership boundaries.
type piece struct {
	region ident.Region
	host   *chord.VServer
}

// leafEvent interleaves serially created leaves with deferred subtree
// tasks so the final leavesByVS append order is the clockwise DFS
// order, independent of worker count.
type leafEvent struct {
	leaf *Node
	task int // valid when leaf == nil
}

// task is a subtree handed to a parallel worker: expand a fresh node,
// or repair an existing one.
type task struct {
	node  *Node
	fresh bool
}

// builder accumulates one Build/Repair pass's allocations, message
// tallies, and leaf bookkeeping. The serial phase uses one builder;
// each parallel subtree task gets its own, and the results merge in
// deterministic task order.
type builder struct {
	t     *Tree
	ar    arena
	dirty *dirtySet // nil during Build (nothing can be reused)

	// tasks is non-nil only on the serial builder: subtrees rooted at
	// taskDepth are deferred here instead of recursed into.
	tasks []task

	plants  int64
	hbCount int64
	hbCost  sim.Time
	changes int

	nodesDelta  int
	leavesDelta int
	depthDelta  []int

	events     []leafEvent
	removed    []*Node
	taskLeaves [][]leafEvent // per-task leaf events, filled by runTasks

	// Depth-indexed scratch for decompose, so steady-state decomposition
	// allocates nothing.
	bufs  [][]piece
	parts []ident.Region
	hosts []*chord.VServer
	left  []piece
	mid   []piece
	right []piece
}

func (t *Tree) newBuilder(dirty *dirtySet) *builder {
	b := &builder{t: t, dirty: dirty}
	b.tasks = make([]task, 0, 16)
	return b
}

func (b *builder) workerClone() *builder {
	return &builder{t: b.t, dirty: b.dirty}
}

func (b *builder) bumpDepth(d, delta int) {
	for len(b.depthDelta) <= d {
		b.depthDelta = append(b.depthDelta, 0)
	}
	b.depthDelta[d] += delta
}

func (b *builder) newLeaf(r ident.Region, host *chord.VServer, parent *Node) *Node {
	n := b.ar.node()
	n.Region, n.Key, n.Host, n.Parent = r, r.Center(), host, parent
	if parent != nil {
		n.Depth = parent.Depth + 1
	}
	b.plants++
	b.changes++
	b.nodesDelta++
	b.leavesDelta++
	b.bumpDepth(n.Depth, 1)
	b.events = append(b.events, leafEvent{leaf: n})
	return n
}

func (b *builder) newInternal(r ident.Region, parent *Node) *Node {
	n := b.ar.node()
	n.Region, n.Key, n.Parent = r, r.Center(), parent
	n.Host = b.t.owner(n.Key)
	if parent != nil {
		n.Depth = parent.Depth + 1
	}
	b.plants++
	b.changes++
	b.nodesDelta++
	b.bumpDepth(n.Depth, 1)
	return n
}

func (b *builder) removeLeaf(n *Node) {
	b.leavesDelta--
	b.removed = append(b.removed, n)
}

// discardSubtree prunes an entire old subtree: every node counts as one
// change and leaves unregister from leavesByVS.
func (b *builder) discardSubtree(n *Node) {
	b.changes++
	b.nodesDelta--
	b.bumpDepth(n.Depth, -1)
	if n.IsLeaf() {
		b.removeLeaf(n)
		return
	}
	for _, c := range n.Children {
		b.discardSubtree(c)
	}
}

// schedule recurses into a subtree, or defers it as a parallel task
// when the serial phase reaches taskDepth.
func (b *builder) schedule(n *Node, fresh bool, lvl int) {
	if b.tasks != nil && n.Depth >= b.t.taskDepth {
		b.events = append(b.events, leafEvent{task: len(b.tasks)})
		b.tasks = append(b.tasks, task{node: n, fresh: fresh})
		return
	}
	b.process(n, fresh, lvl+1)
}

// process decomposes internal node n and (re)materializes its children.
// fresh marks nodes created during this pass, whose hosts are already
// current; for surviving nodes the host is re-resolved first (a change
// is a re-plant) and the parent's probe is priced against the current
// host (not the possibly departed pre-repair one).
func (b *builder) process(n *Node, fresh bool, lvl int) {
	if !fresh {
		if h := b.t.owner(n.Key); h != n.Host {
			n.Host = h
			b.plants++
			b.changes++
		}
		if n.Parent != nil {
			b.heartbeat(n.Parent, n)
		}
	}
	b.materialize(n, b.decompose(n.Region, lvl), lvl)
}

func (b *builder) heartbeat(parent, child *Node) {
	b.hbCount++
	b.hbCost += b.t.heartbeatCost(parent, child)
}

// decompose computes the compressed child decomposition of a
// non-covered region: K-way splits descend directly through
// single-straddler levels (chain collapse), covered parts become leaf
// pieces, and adjacent same-host leaf pieces merge. The result tiles R
// clockwise and has at least two elements. The returned slice is
// per-recursion-level scratch, valid until the next decompose at the
// same level.
func (b *builder) decompose(R ident.Region, lvl int) []piece {
	k := b.t.k
	if cap(b.parts) < k {
		b.parts = make([]ident.Region, k)
		b.hosts = make([]*chord.VServer, k)
	}
	left, mid, right := b.left[:0], b.mid[:0], b.right[:0]
	cur := R
	for {
		parts := splitInto(cur, k, b.parts[:k])
		ncIdx, ncCount := -1, 0
		for i, p := range parts {
			if p.IsEmpty() {
				b.hosts[i] = nil
				continue
			}
			b.hosts[i] = b.t.coveredBy(p)
			if b.hosts[i] == nil {
				ncCount++
				ncIdx = i
			}
		}
		if ncCount == 1 {
			// Chain collapse: no KT node materializes for the single
			// straddling part — descend into it, keeping the covered
			// side-parts as leaves of the node being decomposed. The
			// right side is a stack (outer levels lie clockwise-after
			// inner ones), so it is pushed reversed and unwound by the
			// reversed append below.
			for i := 0; i < ncIdx; i++ {
				if !parts[i].IsEmpty() {
					left = append(left, piece{region: parts[i], host: b.hosts[i]})
				}
			}
			for i := k - 1; i > ncIdx; i-- {
				if !parts[i].IsEmpty() {
					right = append(right, piece{region: parts[i], host: b.hosts[i]})
				}
			}
			cur = parts[ncIdx]
			continue
		}
		for i, p := range parts {
			if p.IsEmpty() {
				continue
			}
			mid = append(mid, piece{region: p, host: b.hosts[i]})
		}
		break
	}
	b.left, b.mid, b.right = left, mid, right

	for len(b.bufs) <= lvl {
		b.bufs = append(b.bufs, nil)
	}
	out := b.bufs[lvl][:0]
	out = append(out, left...)
	out = append(out, mid...)
	for i := len(right) - 1; i >= 0; i-- {
		out = append(out, right[i])
	}
	// Merge adjacent same-host leaves (internal pieces have nil hosts
	// and never merge). Pieces tile R, so neighbors are adjacent arcs.
	w := 0
	for _, p := range out {
		if w > 0 && p.host != nil && out[w-1].host == p.host {
			out[w-1].region.Width += p.region.Width
			continue
		}
		out[w] = p
		w++
	}
	b.bufs[lvl] = out
	return out[:w]
}

// splitInto is Region.Split into a caller-provided buffer.
func splitInto(r ident.Region, k int, out []ident.Region) []ident.Region {
	base := r.Width / uint64(k)
	rem := r.Width % uint64(k)
	start := r.Start
	for i := 0; i < k; i++ {
		w := base
		if uint64(i) < rem {
			w++
		}
		out[i] = ident.Region{Start: start, Width: w}
		start = start.Add(w)
	}
	return out
}

// materialize builds n's child list from pieces, reusing old children
// that survive unchanged: a leaf with identical region and host, or an
// internal child with identical region (spliced back whole if its
// region is clean, repaired in place if dirty). Old children with no
// surviving counterpart are discarded. Reuse matches by region start in
// a single merge scan — both lists tile n.Region clockwise.
func (b *builder) materialize(n *Node, pieces []piece, lvl int) {
	old := n.Children
	base := n.Region.Start
	kids := b.ar.childSlice(len(pieces))
	j := 0
	for _, p := range pieces {
		off := base.Dist(p.region.Start)
		for j < len(old) && base.Dist(old[j].Region.Start) < off {
			b.discardSubtree(old[j])
			j++
		}
		var c *Node
		if j < len(old) && base.Dist(old[j].Region.Start) == off {
			oc := old[j]
			switch {
			case p.host != nil && oc.IsLeaf() && oc.Region == p.region && oc.Host == p.host:
				c = oc
				j++
				b.heartbeat(n, c)
			case p.host == nil && !oc.IsLeaf() && oc.Region == p.region:
				c = oc
				j++
				if b.dirty.overlaps(p.region) {
					b.schedule(c, false, lvl)
				} else {
					// Clean subtree: splice back whole; its own probe
					// still happens (the parent checks it is alive).
					b.heartbeat(n, c)
				}
			}
		}
		if c == nil {
			if p.host != nil {
				c = b.newLeaf(p.region, p.host, n)
			} else {
				c = b.newInternal(p.region, n)
				b.schedule(c, true, lvl)
			}
		}
		kids = append(kids, c)
	}
	for ; j < len(old); j++ {
		b.discardSubtree(old[j])
	}
	n.Children = kids
}

// runTasks executes the deferred subtree tasks across cores and merges
// each worker's tallies into the serial builder in task order, so the
// result is independent of scheduling and worker count.
func (t *Tree) runTasks(b *builder) {
	if len(b.tasks) == 0 {
		b.taskLeaves = nil
		return
	}
	workers := par.Map(b.tasks, 0, func(tk task) *builder {
		wb := b.workerClone()
		wb.process(tk.node, tk.fresh, 0)
		return wb
	})
	b.taskLeaves = make([][]leafEvent, len(workers))
	for i, wb := range workers {
		b.plants += wb.plants
		b.hbCount += wb.hbCount
		b.hbCost += wb.hbCost
		b.changes += wb.changes
		b.nodesDelta += wb.nodesDelta
		b.leavesDelta += wb.leavesDelta
		for d, delta := range wb.depthDelta {
			if delta != 0 {
				b.bumpDepth(d, delta)
			}
		}
		b.removed = append(b.removed, wb.removed...)
		b.taskLeaves[i] = wb.events
	}
}

// apply commits a finished pass: engine message tallies, node/leaf
// counters, and the leavesByVS updates (removals first, then additions
// in clockwise DFS order). It returns the pass's change count.
func (t *Tree) apply(b *builder) int {
	eng := t.ring.Engine()
	if b.plants > 0 {
		eng.CountMessageN(MsgPlant, b.plants, sim.Time(b.plants)*t.plantCost())
	}
	if b.hbCount > 0 {
		eng.CountMessageN(MsgHeartbeat, b.hbCount, b.hbCost)
	}
	t.numNodes += b.nodesDelta
	t.numLeaves += b.leavesDelta
	for d, delta := range b.depthDelta {
		for len(t.depthCount) <= d {
			t.depthCount = append(t.depthCount, 0)
		}
		t.depthCount[d] += delta
	}
	for _, n := range b.removed {
		t.unregisterLeaf(n)
	}
	var add func(evs []leafEvent)
	add = func(evs []leafEvent) {
		for _, ev := range evs {
			if ev.leaf != nil {
				t.leavesByVS[ev.leaf.Host] = append(t.leavesByVS[ev.leaf.Host], ev.leaf)
				continue
			}
			if b.taskLeaves != nil {
				add(b.taskLeaves[ev.task])
			}
		}
	}
	add(b.events)
	return b.changes
}

func (t *Tree) unregisterLeaf(n *Node) {
	leaves := t.leavesByVS[n.Host]
	for i, l := range leaves {
		if l == n {
			leaves = append(leaves[:i], leaves[i+1:]...)
			break
		}
	}
	if len(leaves) == 0 {
		delete(t.leavesByVS, n.Host)
	} else {
		t.leavesByVS[n.Host] = leaves
	}
}

// CheckInvariants panics if the tree violates its structural
// invariants: the root covers the full space, children are dense,
// partition their parent's region clockwise and are at least two, no
// adjacent sibling leaves share a host (they would have merged), every
// leaf is covered by its host's region, every node's host owns its key,
// internal regions straddle an ownership boundary, leaf bookkeeping and
// the node/leaf/height counters match the tree, and every live virtual
// server hosts at least one leaf.
func (t *Tree) CheckInvariants() {
	if t.root == nil {
		panic("ktree: no root")
	}
	if !t.root.Region.IsFull() {
		panic("ktree: root does not cover the identifier space")
	}
	leaves, nodes, height := 0, 0, 0
	depths := map[int]int{}
	t.Walk(func(n *Node) {
		nodes++
		depths[n.Depth]++
		if n.Depth > height {
			height = n.Depth
		}
		if n.Key != n.Region.Center() {
			panic("ktree: key is not the region center")
		}
		if t.ring.Successor(n.Key) != n.Host {
			panic("ktree: host does not own the node's key")
		}
		covered := t.ring.RegionOf(n.Host).Covers(n.Region)
		if n.IsLeaf() {
			leaves++
			if !covered {
				panic(fmt.Sprintf("ktree: leaf region %v not covered by host region %v",
					n.Region, t.ring.RegionOf(n.Host)))
			}
			found := false
			for _, l := range t.leavesByVS[n.Host] {
				if l == n {
					found = true
					break
				}
			}
			if !found {
				panic("ktree: leaf missing from leavesByVS")
			}
			return
		}
		if covered {
			panic(fmt.Sprintf("ktree: internal node %v is coverable and should be a leaf", n.Region))
		}
		if len(n.Children) < 2 {
			panic("ktree: internal node with fewer than two children")
		}
		at := n.Region.Start
		var total uint64
		for i, c := range n.Children {
			if c == nil {
				panic("ktree: nil child slot")
			}
			if c.Region.Start != at {
				panic("ktree: children do not tile parent region")
			}
			if c.Parent != n || c.Depth != n.Depth+1 {
				panic("ktree: child linkage wrong")
			}
			if i > 0 && c.IsLeaf() && n.Children[i-1].IsLeaf() && c.Host == n.Children[i-1].Host {
				panic("ktree: unmerged adjacent sibling leaves with one host")
			}
			at = c.Region.End()
			total += c.Region.Width
		}
		if total != n.Region.Width {
			panic("ktree: child widths do not sum to parent width")
		}
	})
	if nodes != t.numNodes || leaves != t.numLeaves || height != t.Height() {
		panic(fmt.Sprintf("ktree: bookkeeping mismatch nodes %d/%d leaves %d/%d height %d/%d",
			nodes, t.numNodes, leaves, t.numLeaves, height, t.Height()))
	}
	for d, c := range depths {
		if t.depthCount[d] != c {
			panic(fmt.Sprintf("ktree: depth histogram mismatch at depth %d: %d != %d", d, t.depthCount[d], c))
		}
	}
	registered := 0
	for _, vsLeaves := range t.leavesByVS {
		registered += len(vsLeaves)
	}
	if registered != t.numLeaves {
		panic(fmt.Sprintf("ktree: leavesByVS registers %d leaves, tree has %d", registered, t.numLeaves))
	}
	for _, vs := range t.ring.VServers() {
		if len(t.leavesByVS[vs]) == 0 {
			panic(fmt.Sprintf("ktree: virtual server %s hosts no leaf", vs.ID))
		}
	}
}

// Package ktree implements the self-organized, fully distributed K-nary
// tree the paper builds on top of the DHT (§3.1) for load-balancing
// information aggregation/dissemination and virtual server assignment.
//
// Every KT node is responsible for a region of the identifier space; the
// root is responsible for the whole space. A KT node is planted in the
// virtual server that owns the center point of its region (the center is
// its DHT key). A KT node whose region is completely covered by its
// hosting virtual server's region is a leaf; otherwise its region is
// split into K equal parts, one per child, and the partitioning recurses.
// Because leaves tile the identifier space and a leaf's region always
// lies inside its hosting virtual server's region, every virtual server
// hosts at least one leaf — the property the reporting protocols rely on
// ("it is guaranteed that a KT leaf node will be planted in each virtual
// server").
//
// The tree is soft state: Build constructs it from the current ring and
// Repair reconciles an existing tree with a changed ring (churned
// membership, transferred virtual servers), exactly like the paper's
// periodic per-node region checks, heartbeats and pruning — compressed
// into one deterministic sweep per maintenance round. Planting a KT node
// costs one DHT lookup; in this simulator the lookup is resolved against
// the consistent ring and charged an estimated O(log₂ V) hop cost (the
// chord package demonstrates routed lookups match this).
package ktree

import (
	"fmt"
	"math"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/sim"
)

// Message kinds counted on the engine.
const (
	MsgPlant     = "ktree.plant"     // planting a KT node (one DHT lookup)
	MsgHeartbeat = "ktree.heartbeat" // parent probing a child during repair
)

// Node is one KT node.
type Node struct {
	Region   ident.Region   // responsible portion of the identifier space
	Key      ident.ID       // center of Region; the DHT key it is planted at
	Host     *chord.VServer // virtual server currently hosting this KT node
	Parent   *Node          // nil for the root
	Children []*Node        // nil for leaves; length K with possible nil slots (empty child regions)
	Depth    int            // root is 0
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Children == nil }

// Tree is the distributed K-nary tree over a ring.
type Tree struct {
	ring       *chord.Ring
	k          int
	root       *Node
	leavesByVS map[*chord.VServer][]*Node
	numNodes   int
	numLeaves  int
	height     int
}

// New returns an unbuilt tree of branching factor k (k >= 2) over ring.
func New(ring *chord.Ring, k int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("ktree: branching factor %d < 2", k)
	}
	return &Tree{ring: ring, k: k, leavesByVS: make(map[*chord.VServer][]*Node)}, nil
}

// K returns the branching factor.
func (t *Tree) K() int { return t.k }

// Root returns the KT root node (nil before Build).
func (t *Tree) Root() *Node { return t.root }

// NumNodes returns the number of KT nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// NumLeaves returns the number of KT leaf nodes.
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Height returns the maximum depth of any node (root = 0).
func (t *Tree) Height() int { return t.height }

// Ring returns the underlying ring.
func (t *Tree) Ring() *chord.Ring { return t.ring }

// LeavesOf returns the KT leaves planted in vs. The returned slice must
// not be modified.
func (t *Tree) LeavesOf(vs *chord.VServer) []*Node { return t.leavesByVS[vs] }

// plantCost estimates the cost, in latency units, of the DHT lookup that
// plants a KT node: O(log₂ V) overlay hops.
func (t *Tree) plantCost() sim.Time {
	v := t.ring.NumVServers()
	if v < 2 {
		return 1
	}
	return sim.Time(math.Ceil(math.Log2(float64(v))))
}

// Build constructs the tree from scratch against the current ring state.
// Each planted node is charged one MsgPlant message.
func (t *Tree) Build() error {
	if t.ring.NumVServers() == 0 {
		return fmt.Errorf("ktree: cannot build over an empty ring")
	}
	t.root = nil
	t.leavesByVS = make(map[*chord.VServer][]*Node)
	t.numNodes, t.numLeaves, t.height = 0, 0, 0
	t.root = t.plant(ident.Full(), nil, 0)
	t.grow(t.root)
	return nil
}

// plant creates a KT node for region at the given depth and resolves its
// hosting virtual server.
func (t *Tree) plant(region ident.Region, parent *Node, depth int) *Node {
	key := region.Center()
	host := t.ring.Successor(key)
	t.ring.Engine().CountMessage(MsgPlant, t.plantCost())
	n := &Node{Region: region, Key: key, Host: host, Parent: parent, Depth: depth}
	t.numNodes++
	if depth > t.height {
		t.height = depth
	}
	return n
}

// grow recursively expands n until every branch ends in a leaf.
func (t *Tree) grow(n *Node) {
	if t.coveredByHost(n) {
		t.markLeaf(n)
		return
	}
	parts := n.Region.Split(t.k)
	n.Children = make([]*Node, t.k)
	for i, part := range parts {
		if part.IsEmpty() {
			continue
		}
		child := t.plant(part, n, n.Depth+1)
		n.Children[i] = child
		t.grow(child)
	}
}

func (t *Tree) coveredByHost(n *Node) bool {
	return t.ring.RegionOf(n.Host).Covers(n.Region)
}

func (t *Tree) markLeaf(n *Node) {
	n.Children = nil
	t.numLeaves++
	t.leavesByVS[n.Host] = append(t.leavesByVS[n.Host], n)
}

// Repair reconciles the tree with the current ring after membership or
// hosting changes, in a single top-down sweep: every node's host is
// re-resolved (a changed host is a re-plant), nodes whose region became
// covered are collapsed to leaves (their subtrees pruned), and nodes
// whose region is no longer covered grow fresh children. This mirrors
// the paper's periodic checking: the tree reconstructs top-down in
// O(log_K N) rounds after any failure. It returns the number of KT nodes
// replanted, grown, or pruned, and charges one MsgHeartbeat per
// parent-child probe plus one MsgPlant per re-planted or new node.
func (t *Tree) Repair() (changes int, err error) {
	if t.ring.NumVServers() == 0 {
		return 0, fmt.Errorf("ktree: cannot repair over an empty ring")
	}
	if t.root == nil {
		if err := t.Build(); err != nil {
			return 0, err
		}
		return t.numNodes, nil
	}
	t.leavesByVS = make(map[*chord.VServer][]*Node)
	t.numNodes, t.numLeaves, t.height = 0, 0, 0
	changes = t.repairNode(t.root)
	return changes, nil
}

func (t *Tree) repairNode(n *Node) (changes int) {
	t.numNodes++
	if n.Depth > t.height {
		t.height = n.Depth
	}
	// Re-resolve the host: the old one may have left the ring or lost
	// ownership of the key.
	host := t.ring.Successor(n.Key)
	if host != n.Host {
		n.Host = host
		t.ring.Engine().CountMessage(MsgPlant, t.plantCost())
		changes++
	}
	if t.coveredByHost(n) {
		if n.Children != nil {
			changes += t.countSubtreeNodes(n) - 1 // pruned descendants
			n.Children = nil
		}
		t.numLeaves++
		t.leavesByVS[n.Host] = append(t.leavesByVS[n.Host], n)
		return changes
	}
	if n.Children == nil {
		// A former leaf whose region is no longer covered: grow.
		before := t.numNodes
		t.growRepair(n)
		changes += t.numNodes - before
		return changes
	}
	// Internal node: probe each child (heartbeat), grow missing ones.
	parts := n.Region.Split(t.k)
	for i, part := range parts {
		if part.IsEmpty() {
			n.Children[i] = nil
			continue
		}
		if n.Children[i] == nil {
			child := t.plant(part, n, n.Depth+1)
			n.Children[i] = child
			t.growRepair0(child)
			changes += t.countSubtreeNodes(child)
			continue
		}
		t.ring.Engine().CountMessage(MsgHeartbeat, t.heartbeatCost(n, n.Children[i]))
		changes += t.repairNode(n.Children[i])
	}
	return changes
}

// growRepair expands a former leaf in place during repair.
func (t *Tree) growRepair(n *Node) {
	parts := n.Region.Split(t.k)
	n.Children = make([]*Node, t.k)
	for i, part := range parts {
		if part.IsEmpty() {
			continue
		}
		child := t.plant(part, n, n.Depth+1)
		n.Children[i] = child
		t.growRepair0(child)
	}
}

func (t *Tree) growRepair0(n *Node) {
	if t.coveredByHost(n) {
		t.markLeaf(n)
		return
	}
	t.growRepair(n)
}

func (t *Tree) countSubtreeNodes(n *Node) int {
	count := 1
	for _, c := range n.Children {
		if c != nil {
			count += t.countSubtreeNodes(c)
		}
	}
	return count
}

// heartbeatCost is the latency of one parent→child probe.
func (t *Tree) heartbeatCost(parent, child *Node) sim.Time {
	return t.ring.Latency(parent.Host.Owner, child.Host.Owner) + 1
}

// EdgeLatency returns the one-way message latency between a node and its
// parent, used by the aggregation protocols running over the tree.
func (t *Tree) EdgeLatency(n *Node) sim.Time {
	if n.Parent == nil {
		return 0
	}
	return t.ring.Latency(n.Host.Owner, n.Parent.Host.Owner) + 1
}

// Walk visits every node in depth-first preorder.
func (t *Tree) Walk(visit func(*Node)) {
	if t.root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			if c != nil {
				rec(c)
			}
		}
	}
	rec(t.root)
}

// CheckInvariants panics if the tree violates its structural invariants:
// the root covers the full space, children partition their parent's
// region, every leaf is covered by its host's region, every node's host
// owns its key, leaf bookkeeping matches the tree, and every live
// virtual server hosts at least one leaf.
func (t *Tree) CheckInvariants() {
	if t.root == nil {
		panic("ktree: no root")
	}
	if !t.root.Region.IsFull() {
		panic("ktree: root does not cover the identifier space")
	}
	leaves := 0
	nodes := 0
	t.Walk(func(n *Node) {
		nodes++
		if n.Key != n.Region.Center() {
			panic("ktree: key is not the region center")
		}
		if t.ring.Successor(n.Key) != n.Host {
			panic("ktree: host does not own the node's key")
		}
		if n.IsLeaf() {
			leaves++
			if !t.coveredByHost(n) {
				panic(fmt.Sprintf("ktree: leaf region %v not covered by host region %v",
					n.Region, t.ring.RegionOf(n.Host)))
			}
			found := false
			for _, l := range t.leavesByVS[n.Host] {
				if l == n {
					found = true
					break
				}
			}
			if !found {
				panic("ktree: leaf missing from leavesByVS")
			}
			return
		}
		if len(n.Children) != t.k {
			panic("ktree: internal node with wrong child count")
		}
		parts := n.Region.Split(t.k)
		for i, c := range n.Children {
			if parts[i].IsEmpty() {
				if c != nil {
					panic("ktree: child exists for empty region")
				}
				continue
			}
			if c == nil {
				panic("ktree: missing child for non-empty region")
			}
			if c.Region != parts[i] {
				panic("ktree: child region mismatch")
			}
			if c.Parent != n || c.Depth != n.Depth+1 {
				panic("ktree: child linkage wrong")
			}
		}
	})
	if nodes != t.numNodes || leaves != t.numLeaves {
		panic(fmt.Sprintf("ktree: bookkeeping mismatch nodes %d/%d leaves %d/%d",
			nodes, t.numNodes, leaves, t.numLeaves))
	}
	for _, vs := range t.ring.VServers() {
		if len(t.leavesByVS[vs]) == 0 {
			panic(fmt.Sprintf("ktree: virtual server %s hosts no leaf", vs.ID))
		}
	}
}

package ktree

import (
	"sort"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/sim"
)

// requireTreesEqual walks two trees in lockstep and fails on the first
// structural difference: regions, keys, hosts, depths, child counts,
// the node/leaf/height counters, and the per-VS leaf sets (compared as
// sorted sets — incremental repair appends in discovery order, a fresh
// build in DFS order).
func requireTreesEqual(t *testing.T, repaired, fresh *Tree) {
	t.Helper()
	if repaired.NumNodes() != fresh.NumNodes() ||
		repaired.NumLeaves() != fresh.NumLeaves() ||
		repaired.Height() != fresh.Height() {
		t.Fatalf("bookkeeping differs: repaired %d/%d/%d, fresh %d/%d/%d",
			repaired.NumNodes(), repaired.NumLeaves(), repaired.Height(),
			fresh.NumNodes(), fresh.NumLeaves(), fresh.Height())
	}
	var rec func(a, b *Node)
	rec = func(a, b *Node) {
		if a.Region != b.Region || a.Key != b.Key {
			t.Fatalf("region/key differ: %v/%v vs %v/%v", a.Region, a.Key, b.Region, b.Key)
		}
		if a.Host != b.Host {
			t.Fatalf("host differs at %v: %s vs %s", a.Region, a.Host.ID, b.Host.ID)
		}
		if a.Depth != b.Depth {
			t.Fatalf("depth differs at %v: %d vs %d", a.Region, a.Depth, b.Depth)
		}
		if a.IsLeaf() != b.IsLeaf() || len(a.Children) != len(b.Children) {
			t.Fatalf("shape differs at %v: %d vs %d children", a.Region, len(a.Children), len(b.Children))
		}
		for i := range a.Children {
			rec(a.Children[i], b.Children[i])
		}
	}
	rec(repaired.Root(), fresh.Root())
	leafStarts := func(tr *Tree, vs *chord.VServer) []uint32 {
		var out []uint32
		for _, l := range tr.LeavesOf(vs) {
			out = append(out, uint32(l.Region.Start))
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for _, vs := range repaired.Ring().VServers() {
		a, b := leafStarts(repaired, vs), leafStarts(fresh, vs)
		if len(a) != len(b) {
			t.Fatalf("VS %s leaf count differs: %d vs %d", vs.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("VS %s leaf sets differ", vs.ID)
			}
		}
	}
}

// TestRepairEquivalentToFreshBuild is the Repair ≡ Build property test:
// after arbitrary interleavings of node churn, individual VS removal,
// and VS transfers, an incremental Repair must produce exactly the tree
// a fresh Build over the final ring produces. Setting taskDepth low
// forces the sharded subtree path even at test sizes, so the parallel
// merge is exercised here (and under -race in CI).
func TestRepairEquivalentToFreshBuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, k := range []int{2, 3, 8} {
			eng := sim.NewEngine(seed)
			ring := chord.NewRing(eng, chord.Config{})
			for i := 0; i < 48; i++ {
				ring.AddNode(-1, 100, 4)
			}
			tree, err := New(ring, k)
			if err != nil {
				t.Fatal(err)
			}
			tree.taskDepth = 2 // force parallel subtree tasks on a small tree
			if err := tree.Build(); err != nil {
				t.Fatal(err)
			}
			rng := eng.Rand()
			for round := 0; round < 4; round++ {
				alive := ring.AliveNodes()
				for i := 0; i < 1+rng.Intn(4) && len(alive) > 4; i++ {
					victim := alive[rng.Intn(len(alive))]
					if victim.Alive {
						ring.RemoveNode(victim)
					}
				}
				for i := 0; i < 1+rng.Intn(4); i++ {
					ring.AddNode(-1, 100, 1+rng.Intn(4))
				}
				if vss := ring.VServers(); len(vss) > 8 {
					ring.RemoveVServer(vss[rng.Intn(len(vss))])
				}
				alive = ring.AliveNodes()
				for i := 0; i < 3; i++ {
					vss := ring.VServers()
					ring.Transfer(vss[rng.Intn(len(vss))], alive[rng.Intn(len(alive))])
				}
				if _, err := tree.Repair(); err != nil {
					t.Fatal(err)
				}
				tree.CheckInvariants()

				fresh, err := New(ring, k)
				if err != nil {
					t.Fatal(err)
				}
				fresh.taskDepth = 2
				if err := fresh.Build(); err != nil {
					t.Fatal(err)
				}
				fresh.CheckInvariants()
				requireTreesEqual(t, tree, fresh)
			}
		}
	}
}

// TestRepairJournalOverflowRebuilds drives more churn events than the
// dirty journal tracks and verifies the overflow path (a full rebuild)
// still converges to the fresh-build tree.
func TestRepairJournalOverflowRebuilds(t *testing.T) {
	eng := sim.NewEngine(7)
	ring := chord.NewRing(eng, chord.Config{})
	for i := 0; i < 32; i++ {
		ring.AddNode(-1, 100, 4)
	}
	tree, err := New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	tree.overflow = true // simulate a journal overflow
	ring.AddNode(-1, 100, 4)
	if _, err := tree.Repair(); err != nil {
		t.Fatal(err)
	}
	tree.CheckInvariants()
	fresh, _ := New(ring, 2)
	if err := fresh.Build(); err != nil {
		t.Fatal(err)
	}
	requireTreesEqual(t, tree, fresh)
}

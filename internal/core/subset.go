package core

import (
	"sort"

	"p2plb/internal/chord"
)

// SubsetStrategy selects the algorithm a heavy node uses to pick the
// virtual servers it sheds (§3.4): choose the subset with minimal total
// load whose removal brings the node to or under its target, i.e.
// minimize Σ L_{i,k} subject to Σ L_{i,k} >= excess.
type SubsetStrategy int

// Strategies.
const (
	// SubsetAuto uses the exact solver for small VS counts and the
	// greedy one beyond exactLimit.
	SubsetAuto SubsetStrategy = iota
	// SubsetExact enumerates subsets (exponential; only for small counts).
	SubsetExact
	// SubsetGreedy takes loads in descending order until the excess is
	// covered, then prunes and improves with single swaps.
	SubsetGreedy
)

// exactLimit is the VS count up to which SubsetAuto enumerates exactly
// (2^16 subsets at most).
const exactLimit = 16

// chooseShedSubset picks the virtual servers to shed. The returned
// slice is ordered by descending load; ops counts candidate evaluations
// (the work metric instrumentation reports as core.subset.cost). It
// returns nil when excess <= 0.
func chooseShedSubset(vss []*chord.VServer, excess float64, strategy SubsetStrategy) (subset []*chord.VServer, ops int64) {
	if excess <= 0 || len(vss) == 0 {
		return nil, 0
	}
	sorted := append([]*chord.VServer(nil), vss...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Load != sorted[j].Load {
			return sorted[i].Load > sorted[j].Load
		}
		return sorted[i].ID < sorted[j].ID //lbvet:ignore identcompare deterministic tiebreak wants a total order, not ring distance
	})
	switch strategy {
	case SubsetExact:
		return exactSubset(sorted, excess)
	case SubsetGreedy:
		return greedySubset(sorted, excess)
	default:
		if len(sorted) <= exactLimit {
			return exactSubset(sorted, excess)
		}
		return greedySubset(sorted, excess)
	}
}

// exactSubset enumerates all subsets and returns the one with minimal
// total load >= excess, preferring fewer virtual servers on ties.
// Input must be sorted by descending load.
func exactSubset(sorted []*chord.VServer, excess float64) ([]*chord.VServer, int64) {
	n := len(sorted)
	bestSum := -1.0
	bestMask := uint32(0)
	bestCount := n + 1
	ops := int64(1)<<uint(n) - 1 // candidate subsets examined
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		var sum float64
		count := 0
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				sum += sorted[i].Load
				count++
			}
		}
		if sum < excess {
			continue
		}
		if bestSum < 0 || sum < bestSum || (sum == bestSum && count < bestCount) {
			bestSum, bestMask, bestCount = sum, mask, count
		}
	}
	if bestSum < 0 {
		// Even shedding everything cannot reach the excess (impossible
		// when excess = load − target <= load, but guard anyway): shed all.
		return sorted, ops
	}
	out := make([]*chord.VServer, 0, bestCount)
	for i := 0; i < n; i++ {
		if bestMask>>uint(i)&1 == 1 {
			out = append(out, sorted[i])
		}
	}
	return out, ops
}

// greedySubset covers the excess with loads in descending order, then
// (1) drops any member whose removal keeps the excess covered, smallest
// first, and (2) repeatedly swaps a chosen VS for a smaller unchosen one
// while feasibility holds. Input must be sorted by descending load.
func greedySubset(sorted []*chord.VServer, excess float64) ([]*chord.VServer, int64) {
	chosen := make([]bool, len(sorted))
	var sum float64
	var ops int64
	for i, vs := range sorted {
		ops++
		if sum >= excess {
			break
		}
		chosen[i] = true
		sum += vs.Load
	}
	if sum < excess {
		return append([]*chord.VServer(nil), sorted...), ops
	}
	// Drop pass: smallest chosen first (slice is descending, iterate
	// from the end).
	for i := len(sorted) - 1; i >= 0; i-- {
		ops++
		if chosen[i] && sum-sorted[i].Load >= excess {
			chosen[i] = false
			sum -= sorted[i].Load
		}
	}
	// Swap pass: replace a chosen VS with a smaller unchosen one when
	// that lowers the total while staying feasible.
	improved := true
	for improved {
		improved = false
		for i := range sorted {
			if !chosen[i] {
				continue
			}
			for j := i + 1; j < len(sorted); j++ {
				ops++
				if chosen[j] || sorted[j].Load >= sorted[i].Load {
					continue
				}
				if sum-sorted[i].Load+sorted[j].Load >= excess {
					chosen[i], chosen[j] = false, true
					sum += sorted[j].Load - sorted[i].Load
					improved = true
					break
				}
			}
		}
	}
	var out []*chord.VServer
	for i, vs := range sorted {
		if chosen[i] {
			out = append(out, vs)
		}
	}
	return out, ops
}

// subsetLoad sums the loads of a subset.
func subsetLoad(vss []*chord.VServer) float64 {
	var s float64
	for _, vs := range vss {
		s += vs.Load
	}
	return s
}

package core

import (
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
)

func mkNode(idx int) *chord.Node {
	return &chord.Node{Index: idx, Alive: true}
}

func mkLists(deficits []float64, loads []float64) *vsaLists {
	v := &vsaLists{}
	for i, d := range deficits {
		v.lights = append(v.lights, lightEntry{deficit: d, node: mkNode(i)})
	}
	for i, l := range loads {
		v.offers = append(v.offers, offerEntry{
			load: l,
			vs:   &chord.VServer{ID: ident.ID(1000 + i), Load: l},
			node: mkNode(100 + i),
		})
	}
	v.sort()
	return v
}

func TestPairAllBestFit(t *testing.T) {
	// Offers 8, 5; lights 6, 9, 20.
	// Heaviest offer 8 → best fit is 9 (smallest deficit >= 8).
	// Next offer 5 → best fit is 6.
	v := mkLists([]float64{6, 9, 20}, []float64{8, 5})
	pairs := v.pairAll(1)
	if len(pairs) != 2 {
		t.Fatalf("paired %d, want 2", len(pairs))
	}
	if pairs[0].offer.load != 8 {
		t.Errorf("first pairing should take the heaviest offer, got %v", pairs[0].offer.load)
	}
	if len(v.offers) != 0 {
		t.Errorf("offers left: %d", len(v.offers))
	}
	// Lights left: 20, plus residuals 9-8=1 (>=Lmin) and 6-5=1.
	if len(v.lights) != 3 {
		t.Errorf("lights left: %d, want 3 (one untouched + two residuals)", len(v.lights))
	}
}

func TestPairAllResidualBelowLmin(t *testing.T) {
	// Light 10 takes offer 9, residual 1 < Lmin 2 → no re-insert.
	v := mkLists([]float64{10}, []float64{9})
	pairs := v.pairAll(2)
	if len(pairs) != 1 {
		t.Fatalf("paired %d", len(pairs))
	}
	if len(v.lights) != 0 {
		t.Fatalf("residual below Lmin must not re-insert, lights=%v", v.lights)
	}
}

func TestPairAllResidualReinserted(t *testing.T) {
	// Light 10 takes offer 3, residual 7 >= Lmin 2 → re-insert; then the
	// residual absorbs offer 2 as well.
	v := mkLists([]float64{10}, []float64{3, 2})
	pairs := v.pairAll(2)
	if len(pairs) != 2 {
		t.Fatalf("paired %d, want 2 (residual reused)", len(pairs))
	}
	if pairs[0].to != pairs[1].to {
		t.Error("both offers should land on the same light node via residual")
	}
	// Final residual 10-3-2 = 5 >= 2 → still listed.
	if len(v.lights) != 1 || v.lights[0].deficit != 5 {
		t.Fatalf("final lights = %+v", v.lights)
	}
}

func TestPairAllUnpairedPropagate(t *testing.T) {
	// Offer 50 fits nobody; offer 4 fits light 5.
	v := mkLists([]float64{5}, []float64{50, 4})
	pairs := v.pairAll(1)
	if len(pairs) != 1 || pairs[0].offer.load != 4 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if len(v.offers) != 1 || v.offers[0].load != 50 {
		t.Fatalf("unpaired offers = %+v", v.offers)
	}
}

func TestPairAllEmptyLists(t *testing.T) {
	v := mkLists(nil, nil)
	if pairs := v.pairAll(1); len(pairs) != 0 {
		t.Fatal("empty lists should pair nothing")
	}
	v = mkLists([]float64{3, 4}, nil)
	if pairs := v.pairAll(1); len(pairs) != 0 || len(v.lights) != 2 {
		t.Fatal("no offers: lights must remain")
	}
	v = mkLists(nil, []float64{3, 4})
	if pairs := v.pairAll(1); len(pairs) != 0 || len(v.offers) != 2 {
		t.Fatal("no lights: offers must remain")
	}
}

func TestPairAllKeepsOffersSorted(t *testing.T) {
	v := mkLists([]float64{1}, []float64{9, 7, 5, 3})
	v.pairAll(1)
	for i := 1; i < len(v.offers); i++ {
		if v.offers[i].load < v.offers[i-1].load {
			t.Fatalf("offers no longer ascending: %+v", v.offers)
		}
	}
}

func TestPairAllExactFit(t *testing.T) {
	// Deficit exactly equals load: pair, residual 0, never re-inserted.
	v := mkLists([]float64{7}, []float64{7})
	pairs := v.pairAll(0)
	if len(pairs) != 1 || len(v.lights) != 0 || len(v.offers) != 0 {
		t.Fatalf("exact fit mishandled: pairs=%d lights=%d offers=%d",
			len(pairs), len(v.lights), len(v.offers))
	}
}

func TestInsertLightKeepsOrder(t *testing.T) {
	v := mkLists([]float64{2, 8}, nil)
	v.insertLight(lightEntry{deficit: 5, node: mkNode(9)})
	v.insertLight(lightEntry{deficit: 1, node: mkNode(10)})
	v.insertLight(lightEntry{deficit: 99, node: mkNode(11)})
	want := []float64{1, 2, 5, 8, 99}
	for i, w := range want {
		if v.lights[i].deficit != w {
			t.Fatalf("lights order: %+v", v.lights)
		}
	}
}

func TestMergeAndSize(t *testing.T) {
	a := mkLists([]float64{1}, []float64{2, 3})
	b := mkLists([]float64{4, 5}, []float64{6})
	a.merge(*b)
	if a.size() != 6 {
		t.Fatalf("size = %d, want 6", a.size())
	}
}

func TestLBIMerge(t *testing.T) {
	a := LBI{L: 10, C: 5, Lmin: 2, ok: true}
	b := LBI{L: 20, C: 15, Lmin: 1, ok: true}
	m := a.Merge(b)
	if m.L != 30 || m.C != 20 || m.Lmin != 1 || !m.Valid() {
		t.Fatalf("merge = %+v", m)
	}
	// Identity element.
	if got := (LBI{}).Merge(a); got != a {
		t.Fatalf("zero merge = %+v", got)
	}
	if got := a.Merge(LBI{}); got != a {
		t.Fatalf("merge zero = %+v", got)
	}
	if (LBI{}).Valid() {
		t.Fatal("zero LBI should be invalid")
	}
	// Commutative.
	if x, y := a.Merge(b), b.Merge(a); x != y {
		t.Fatal("merge not commutative")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Epsilon: -0.1}).Validate(); err == nil {
		t.Error("negative epsilon should fail")
	}
	if err := (Config{Mode: ProximityAware}).Validate(); err == nil {
		t.Error("aware mode without mapper should fail")
	}
	if err := (Config{Mode: Mode(7)}).Validate(); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestThresholdDefault(t *testing.T) {
	if (Config{}).threshold() != DefaultRendezvousThreshold {
		t.Error("zero threshold should default to 30")
	}
	if (Config{RendezvousThreshold: 5}).threshold() != 5 {
		t.Error("explicit threshold ignored")
	}
	if (Config{RendezvousThreshold: -1}).threshold() != -1 {
		t.Error("negative (root-only) threshold ignored")
	}
}

func TestStringers(t *testing.T) {
	if ProximityAware.String() != "proximity-aware" || ProximityIgnorant.String() != "proximity-ignorant" {
		t.Error("mode strings wrong")
	}
	if Heavy.String() != "heavy" || Light.String() != "light" || Neutral.String() != "neutral" {
		t.Error("class strings wrong")
	}
}

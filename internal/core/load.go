package core

import (
	"math/rand"

	"p2plb/internal/chord"
	"p2plb/internal/workload"
)

// LoadSource is where the balancer's per-VS loads come from. Historically
// vs.Load was a scalar sampled once from a workload.LoadModel at build
// time; the serving layer instead *observes* load as a decayed request
// rate that drifts between rounds (Mirrezaei–Shahparian's regime). The
// abstraction keeps both: a Balancer whose Config carries a LoadSource
// calls Refresh at the top of every round so classification sees the
// source's current view; a nil LoadSource means vs.Load is maintained
// externally, exactly the pre-refactor contract.
//
// Refresh must be deterministic given the source's own state: it runs
// on the engine goroutine and may only iterate the ring in its
// canonical VServers order.
type LoadSource interface {
	// Refresh brings every virtual server's Load field up to date with
	// the source's current view, before classification reads it.
	Refresh(ring *chord.Ring)
	// Name identifies the source in reports.
	Name() string
}

// SampledLoads is the classic one-shot model: the first Refresh assigns
// each virtual server a load drawn from Model, in ring order, from Rng —
// byte-for-byte the draws the old exp.Build assignment loop made — and
// later Refreshes are no-ops (the sample does not drift; transfers move
// the sampled values around, and re-sampling mid-experiment would
// destroy the figures' meaning).
type SampledLoads struct {
	Model workload.LoadModel
	Rng   *rand.Rand
	done  bool
}

// Refresh implements LoadSource.
func (s *SampledLoads) Refresh(ring *chord.Ring) {
	if s.done {
		return
	}
	s.done = true
	for _, vs := range ring.VServers() {
		vs.Load = s.Model.Load(s.Rng, ring.RegionOf(vs).Fraction())
	}
}

// Name implements LoadSource.
func (s *SampledLoads) Name() string { return "sampled/" + s.Model.Name() }

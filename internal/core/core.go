// Package core implements the paper's load-balancing scheme: the four
// phases of §1.2 — load-balancing information (LBI) aggregation, node
// classification, virtual server assignment (VSA) and virtual server
// transferring (VST) — over the distributed K-nary tree, in both the
// proximity-ignorant (§3) and the proximity-aware (§4) variants.
//
// A Balancer owns a ring, its K-nary tree and a configuration, and runs
// complete load-balancing rounds. Each phase both produces its result
// and accounts for its distributed cost: protocol messages are counted
// on the simulation engine, and phase completion times are computed with
// max-plus recursions over the tree (a converge-cast finishes when the
// slowest child chain finishes), which is exactly what an event-driven
// execution of the same message flow would measure.
package core

import (
	"fmt"
	"math"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/ktree"
	"p2plb/internal/metrics"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
	"p2plb/internal/topology"
)

// Message kinds counted on the engine.
const (
	MsgLBIReport   = "core.lbi-report"   // child → parent LBI aggregation
	MsgLBIDisperse = "core.lbi-disperse" // parent → child dissemination
	MsgVSAPublish  = "core.vsa-publish"  // DHT put of VSA info at a Hilbert key (aware mode)
	MsgVSAReport   = "core.vsa-report"   // child → parent unpaired VSA info
	MsgVSAAssign   = "core.vsa-assign"   // rendezvous → heavy/light node pair notification
	MsgVSTTransfer = "core.vst-transfer" // the virtual server movement itself
)

// KeyMapper maps an underlay position to the DHT key under which a node
// publishes its VSA information in proximity-aware mode. Physically
// close nodes should map to nearby keys.
type KeyMapper interface {
	Key(n topology.NodeID) ident.ID
}

// CellMapper is an optional refinement of KeyMapper: Cell returns the
// full-resolution proximity cell identity (the untruncated Hilbert
// number). When available, the VSA pairing groups entries by cell
// instead of by the 32-bit key, which preserves grid resolution beyond
// what the identifier width can carry. Cells must refine keys: equal
// cells imply equal keys.
type CellMapper interface {
	KeyMapper
	Cell(n topology.NodeID) uint64
}

// Mode selects between the paper's two VSA variants.
type Mode int

// Modes.
const (
	// ProximityIgnorant enters VSA information into the tree at the
	// reporting node's own (random) virtual server, so rendezvous is
	// identifier-space based only (§3.4).
	ProximityIgnorant Mode = iota
	// ProximityAware publishes VSA information into the DHT under the
	// node's Hilbert-number key, so information from physically close
	// nodes meets at low tree levels (§4.3).
	ProximityAware
)

func (m Mode) String() string {
	if m == ProximityAware {
		return "proximity-aware"
	}
	return "proximity-ignorant"
}

// Class is a node's load classification (§3.3).
type Class int

// Classes.
const (
	Neutral Class = iota
	Heavy
	Light
)

func (c Class) String() string {
	switch c {
	case Heavy:
		return "heavy"
	case Light:
		return "light"
	default:
		return "neutral"
	}
}

// LBI is the load-balancing information tuple <L, C, Lmin>: total load,
// total capacity, and the minimum virtual-server load within the scope
// that produced it (one node, one subtree, or the whole system).
type LBI struct {
	L    float64
	C    float64
	Lmin float64
	// ok distinguishes "no data yet" from real zeros during merging.
	ok bool
}

// Merge combines two LBI values: loads and capacities add, the minimum
// VS load is the smaller of the two.
func (a LBI) Merge(b LBI) LBI {
	if !a.ok {
		return b
	}
	if !b.ok {
		return a
	}
	min := a.Lmin
	if b.Lmin < min {
		min = b.Lmin
	}
	return LBI{L: a.L + b.L, C: a.C + b.C, Lmin: min, ok: true}
}

// Valid reports whether the LBI carries any data.
func (a LBI) Valid() bool { return a.ok }

// MakeLBI builds a valid LBI tuple from its components. Executors that
// move tuples across a process boundary (the wire protocol) use it to
// reconstruct the value a remote machine produced; in-process executors
// always obtain tuples from NodeLBI or Merge.
func MakeLBI(l, c, lmin float64) LBI { return LBI{L: l, C: c, Lmin: lmin, ok: true} }

// Config parameterizes a Balancer.
type Config struct {
	// Mode selects proximity-ignorant or proximity-aware VSA.
	Mode Mode
	// Epsilon is the slack in the target load T_i = (1+ε)·C_i·(L/C).
	// Ideally 0 (perfect proportionality); a small positive value trades
	// balance quality for less load movement.
	Epsilon float64
	// RendezvousThreshold is the combined list length at which a non-root
	// KT node starts pairing (the paper suggests 30). The root always
	// pairs. Zero means the default of 30; negative disables intermediate
	// rendezvous entirely (pairing happens only at the root).
	RendezvousThreshold int
	// Mapper supplies the DHT key a node publishes its VSA information
	// under in proximity-aware mode; required for ProximityAware,
	// ignored otherwise. proximity.Mapper (landmark vectors through a
	// Hilbert curve) is the paper's instantiation.
	Mapper KeyMapper
	// Subset selects how heavy nodes choose which virtual servers to
	// shed. Zero value is SubsetAuto.
	Subset SubsetStrategy
	// TransferCost reports the transfer distance between two nodes in
	// the units the experiment plots (the paper's hop convention:
	// interdomain hop = 3, intradomain hop = 1). nil falls back to the
	// ring's message-latency model. Timing always uses the latency
	// model; this only affects the reported Assignment.Hops and the
	// moved-load histogram.
	TransferCost func(from, to *chord.Node) int
	// Loads, when set, is Refreshed at the top of every round so the
	// balancer classifies against the source's current view of per-VS
	// load (an observed request rate, a drifting model, ...). nil means
	// vs.Load is maintained externally — the classic assigned-scalar
	// contract.
	Loads LoadSource
}

// DefaultRendezvousThreshold is the paper's suggested rendezvous
// threshold.
const DefaultRendezvousThreshold = 30

func (c Config) threshold() int {
	if c.RendezvousThreshold == 0 {
		return DefaultRendezvousThreshold
	}
	return c.RendezvousThreshold
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Epsilon < 0 {
		return fmt.Errorf("core: negative epsilon %v", c.Epsilon)
	}
	if c.Mode == ProximityAware && c.Mapper == nil {
		return fmt.Errorf("core: proximity-aware mode requires a Mapper")
	}
	if c.Mode != ProximityAware && c.Mode != ProximityIgnorant {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	return nil
}

// NodeState is one node's view after classification.
type NodeState struct {
	Node    *chord.Node
	Class   Class
	Load    float64 // L_i at classification time
	Target  float64 // T_i = (1+ε)·C_i·(L/C)
	Deficit float64 // T_i − L_i (meaningful for light nodes)
	// Offers is the subset of virtual servers a heavy node sheds to
	// become light (nil otherwise).
	Offers []*chord.VServer
}

// Balancer runs load-balancing rounds over a ring and its K-nary tree.
type Balancer struct {
	ring *chord.Ring
	tree *ktree.Tree
	cfg  Config

	// Cached metric handle (lazily resolved from the engine's registry).
	mSubsetCost *metrics.Histogram
}

// NewBalancer returns a Balancer. The tree must belong to the ring.
func NewBalancer(ring *chord.Ring, tree *ktree.Tree, cfg Config) (*Balancer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tree.Ring() != ring {
		return nil, fmt.Errorf("core: tree is built over a different ring")
	}
	return &Balancer{ring: ring, tree: tree, cfg: cfg}, nil
}

// Ring returns the balancer's ring.
func (b *Balancer) Ring() *chord.Ring { return b.ring }

// observeSubsetCost records the candidate-evaluation count of one
// shed-subset selection as core.subset.cost. It is a no-op on a
// ring-less Balancer (ClassifyNode's standalone path) or when the
// engine has no metrics registry.
func (b *Balancer) observeSubsetCost(ops int64) {
	if b.mSubsetCost == nil {
		if b.ring == nil {
			return
		}
		reg := b.ring.Engine().Metrics()
		if reg == nil {
			return
		}
		b.mSubsetCost = reg.Histogram("core.subset.cost")
	}
	b.mSubsetCost.Observe(ops)
}

// transferCost returns the reported transfer distance between two nodes.
func (b *Balancer) transferCost(from, to *chord.Node) int {
	if b.cfg.TransferCost != nil {
		return b.cfg.TransferCost(from, to)
	}
	return int(b.ring.Latency(from, to))
}

// Tree returns the balancer's K-nary tree.
func (b *Balancer) Tree() *ktree.Tree { return b.tree }

// Config returns the balancer's configuration.
func (b *Balancer) Config() Config { return b.cfg }

// Assignment is one VSA pairing: virtual server VS moves from heavy node
// From to light node To.
type Assignment struct {
	VS   *chord.VServer
	From *chord.Node
	To   *chord.Node
	Load float64
	// Hops is the underlay transfer distance between From and To in
	// latency units (the ring's latency model).
	Hops int
	// AssignedAt is the virtual time the rendezvous point emitted the
	// pairing; Depth is the tree depth of that rendezvous point.
	AssignedAt sim.Time
	Depth      int
}

// Result reports one complete load-balancing round.
type Result struct {
	Mode   Mode
	Global LBI // the <L, C, Lmin> the root disseminated

	// Classification censuses before and after the round (the "after"
	// census re-evaluates against the same Global LBI).
	HeavyBefore, LightBefore, NeutralBefore int
	HeavyAfter, LightAfter, NeutralAfter    int

	Assignments []Assignment
	// UnassignedOffers counts offered virtual servers no light node
	// could accept; UnassignedLoad is their total load.
	UnassignedOffers int
	UnassignedLoad   float64

	// MovedLoad is the total load transferred; MovedByHops histograms it
	// by underlay transfer distance (the Figure 7/8 data).
	MovedLoad   float64
	MovedByHops *stats.WeightedHistogram

	// Phase completion times (virtual time relative to round start).
	TimeLBIAggregate   sim.Time // bottom-up converge-cast reaches the root
	TimeLBIDisseminate sim.Time // top-down <L,C,Lmin> reaches the last leaf
	TimePublish        sim.Time // aware mode: VSA info published into the DHT
	TimeVSAComplete    sim.Time // last rendezvous (root) finishes pairing
	TimeVSTComplete    sim.Time // last transfer finishes

	// TreeHeight at round time, for the O(log_K N) bound checks.
	TreeHeight int
}

// lg2 returns ceil(log2(v)) with a floor of 1, used for estimated DHT
// lookup hop counts.
func lg2(v int) sim.Time {
	if v < 2 {
		return 1
	}
	return sim.Time(math.Ceil(math.Log2(float64(v))))
}

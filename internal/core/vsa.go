package core

import (
	"sort"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/ktree"
	"p2plb/internal/sim"
)

// lightEntry is a light node's advertisement <ΔL_j, ip_addr(j)>.
// group is the Hilbert-number key the entry was published under in
// proximity-aware mode (0 in ignorant mode): entries with equal groups
// come from the same landmark-space grid cell, i.e. physically close
// nodes.
type lightEntry struct {
	deficit float64
	node    *chord.Node
	group   uint64
}

// offerEntry is one shed virtual server <L_{i,k}, v_{i,k}, ip_addr(i)>.
type offerEntry struct {
	load  float64
	vs    *chord.VServer
	node  *chord.Node
	group uint64
}

// vsaLists are the two sorted lists a rendezvous KT node maintains:
// lights ascending by deficit, offers ascending by load (§3.4).
type vsaLists struct {
	lights []lightEntry
	offers []offerEntry
}

func (v *vsaLists) size() int { return len(v.lights) + len(v.offers) }

// sortLists establishes the canonical orders with deterministic
// tiebreaks.
func (v *vsaLists) sort() {
	sort.Slice(v.lights, func(i, j int) bool {
		if v.lights[i].deficit != v.lights[j].deficit {
			return v.lights[i].deficit < v.lights[j].deficit
		}
		return v.lights[i].node.Index < v.lights[j].node.Index
	})
	sort.Slice(v.offers, func(i, j int) bool {
		if v.offers[i].load != v.offers[j].load {
			return v.offers[i].load < v.offers[j].load
		}
		return v.offers[i].vs.ID < v.offers[j].vs.ID //lbvet:ignore identcompare deterministic tiebreak wants a total order, not ring distance
	})
}

// merge absorbs o's entries (both lists stay unsorted until sort()).
func (v *vsaLists) merge(o vsaLists) {
	v.lights = append(v.lights, o.lights...)
	v.offers = append(v.offers, o.offers...)
}

// insertLight re-inserts a residual deficit, keeping lights sorted.
func (v *vsaLists) insertLight(e lightEntry) {
	pos := sort.Search(len(v.lights), func(i int) bool {
		if v.lights[i].deficit != e.deficit {
			return v.lights[i].deficit > e.deficit
		}
		return v.lights[i].node.Index >= e.node.Index
	})
	v.lights = append(v.lights, lightEntry{})
	copy(v.lights[pos+1:], v.lights[pos:])
	v.lights[pos] = e
}

// pairing is an Assignment before timing/cost annotation.
type pairing struct {
	offer offerEntry
	to    *chord.Node
}

// pairLocal pairs entries cell by cell: offers are matched only against
// light nodes from the same landmark-space grid cell (equal group).
// This implements the proximity-aware goal of §4.2 — "guide heavy nodes
// to assign as many virtual servers as possible to those physically
// close light nodes (if any) ... until no further appropriate virtual
// server assignment can be achieved" — before any cross-cell pooling.
// Leftovers of all groups remain in v (sorted) for pairAll. In
// proximity-ignorant mode every entry has group 0, so pairLocal reduces
// to pairAll and the combined behaviour is unchanged.
func (v *vsaLists) pairLocal(lmin float64) []pairing {
	// Partition both lists by group.
	lightsBy := make(map[uint64][]lightEntry)
	for _, l := range v.lights {
		lightsBy[l.group] = append(lightsBy[l.group], l)
	}
	offersBy := make(map[uint64][]offerEntry)
	for _, o := range v.offers {
		offersBy[o.group] = append(offersBy[o.group], o)
	}
	groups := make([]uint64, 0, len(offersBy))
	for g := range offersBy {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	var pairs []pairing
	v.lights = v.lights[:0]
	v.offers = v.offers[:0]
	// Pair within each offer group; groups without offers keep their
	// lights untouched.
	for _, g := range groups {
		sub := vsaLists{lights: lightsBy[g], offers: offersBy[g]}
		delete(lightsBy, g)
		sub.sort()
		pairs = append(pairs, sub.pairAll(lmin)...)
		v.lights = append(v.lights, sub.lights...)
		v.offers = append(v.offers, sub.offers...)
	}
	for _, lights := range lightsBy {
		v.lights = append(v.lights, lights...)
	}
	v.sort()
	return pairs
}

// pairAll runs the paper's pairing loop on sorted lists: repeatedly take
// the heaviest offered VS, match it to the light node with the smallest
// deficit that still fits (ΔL_j >= L_{i,k}), and re-insert the residual
// deficit if it is at least lmin. Offers that fit no light node are left
// in v.offers (to be propagated upward). Lists must be sorted; they
// remain sorted on return.
func (v *vsaLists) pairAll(lmin float64) []pairing {
	var pairs []pairing
	var unpaired []offerEntry
	for len(v.offers) > 0 {
		// Heaviest remaining offer.
		o := v.offers[len(v.offers)-1]
		v.offers = v.offers[:len(v.offers)-1]
		// Feasible light nodes: deficit >= o.load (a suffix of the
		// deficit-sorted list).
		pos := sort.Search(len(v.lights), func(i int) bool {
			return v.lights[i].deficit >= o.load
		})
		if pos == len(v.lights) {
			unpaired = append(unpaired, o)
			continue
		}
		// Among feasible lights, prefer the one whose publication group
		// (Hilbert number) is nearest the offer's — physically closest
		// first (§4.2) — breaking ties by smallest deficit (§3.4). With
		// ungrouped entries every group distance is 0, so this is
		// exactly the paper's best-fit rule.
		for i := pos + 1; i < len(v.lights); i++ {
			if groupDist(v.lights[i].group, o.group) < groupDist(v.lights[pos].group, o.group) {
				pos = i
			}
		}
		l := v.lights[pos]
		v.lights = append(v.lights[:pos], v.lights[pos+1:]...)
		pairs = append(pairs, pairing{offer: o, to: l.node})
		if residual := l.deficit - o.load; residual >= lmin && residual > 0 {
			v.insertLight(lightEntry{deficit: residual, node: l.node})
		}
	}
	// unpaired was built from heaviest to lightest; restore ascending.
	for i, j := 0, len(unpaired)-1; i < j; i, j = i+1, j-1 {
		unpaired[i], unpaired[j] = unpaired[j], unpaired[i]
	}
	v.offers = unpaired
	return pairs
}

// groupDist is the distance between two publication groups (Hilbert
// numbers scaled into the key space): smaller means physically closer.
func groupDist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// vsaOutcome carries the results of the VSA phase.
type vsaOutcome struct {
	assignments     []Assignment
	unassigned      []offerEntry
	unmatchedLights []lightEntry
	publishTime     sim.Time
	completeTime    sim.Time
}

// runVSA performs the virtual server assignment sweep. states is the
// classification census; start is the virtual time at which nodes know
// their class (end of LBI dissemination).
func (b *Balancer) runVSA(states []*NodeState, global LBI, start sim.Time) vsaOutcome {
	eng := b.ring.Engine()
	inbox, publishEnd := b.buildVSAInboxes(states, start)

	var out vsaOutcome
	out.publishTime = publishEnd

	threshold := b.cfg.threshold()
	var up func(n *ktree.Node) (vsaLists, sim.Time)
	up = func(n *ktree.Node) (vsaLists, sim.Time) {
		var lists vsaLists
		ready := publishEnd
		lists.merge(inbox[n])
		for _, c := range n.Children {
			childLists, childReady := up(c)
			// Every child sends one (possibly empty) epoch report; empty
			// reports still synchronize the converge-cast.
			edge := b.tree.EdgeLatency(c)
			eng.CountMessage(MsgVSAReport, edge)
			if t := childReady + edge; t > ready {
				ready = t
			}
			lists.merge(childLists)
		}
		isRoot := n.Parent == nil
		if lists.size() == 0 {
			return lists, ready
		}
		if isRoot || (threshold > 0 && lists.size() >= threshold) {
			lists.sort()
			// Physically close pairs first (same landmark grid cell),
			// then the pooled identifier-space pairing of §3.4. Pooled
			// pairing at intermediate rendezvous points would marry
			// leftovers of unrelated cells long before all candidates
			// from nearby cells have merged, so cross-cell leftovers
			// pair at the root, preferring the nearest cell (§4.2's
			// "as many virtual servers as possible to physically close
			// light nodes").
			pairs := lists.pairLocal(global.Lmin)
			pairs = append(pairs, lists.pairAll(global.Lmin)...)
			for _, p := range pairs {
				// Rendezvous notifies both endpoints directly.
				costFrom := b.ring.Latency(n.Host.Owner, p.offer.node) + 1
				costTo := b.ring.Latency(n.Host.Owner, p.to) + 1
				eng.CountMessage(MsgVSAAssign, costFrom)
				eng.CountMessage(MsgVSAAssign, costTo)
				out.assignments = append(out.assignments, Assignment{
					VS:         p.offer.vs,
					From:       p.offer.node,
					To:         p.to,
					Load:       p.offer.load,
					AssignedAt: ready,
					Depth:      n.Depth,
				})
			}
		}
		return lists, ready
	}
	rootLists, rootReady := up(b.tree.Root())
	out.completeTime = rootReady
	out.unassigned = rootLists.offers
	out.unmatchedLights = rootLists.lights
	return out
}

// buildVSAInboxes routes each heavy/light node's VSA information to the
// KT leaf where it enters the tree, per the configured mode. It returns
// the per-leaf inboxes and the virtual time at which the slowest publish
// finished (equal to start in ignorant mode, which publishes nothing).
func (b *Balancer) buildVSAInboxes(states []*NodeState, start sim.Time) (map[*ktree.Node]vsaLists, sim.Time) {
	eng := b.ring.Engine()
	inbox := make(map[*ktree.Node]vsaLists)
	publishEnd := start

	// "the virtual server reports the VSA information to only one of its
	// KT leaf nodes to avoid sending redundant information" (§4.3): all
	// of a virtual server's entries enter the tree at a single leaf,
	// chosen once per round.
	leafOf := make(map[*chord.VServer]*ktree.Node)
	deliver := func(vs *chord.VServer, add func(*vsaLists)) {
		leaf, ok := leafOf[vs]
		if !ok {
			leaves := b.tree.LeavesOf(vs)
			leaf = leaves[eng.Rand().Intn(len(leaves))]
			leafOf[vs] = leaf
		}
		l := inbox[leaf]
		add(&l)
		inbox[leaf] = l
	}

	for _, st := range states {
		if st.Class == Neutral {
			continue
		}
		var entryVS *chord.VServer
		var group uint64
		switch b.cfg.Mode {
		case ProximityIgnorant:
			// The node reports through one of its own (randomly chosen)
			// virtual servers: its position in the sweep is its random
			// location in the identifier space (§3.4 footnote). A node
			// with no virtual servers left reports through an arbitrary
			// ring participant.
			entryVS = st.Node.RandomVS(eng.Rand())
			if entryVS == nil {
				all := b.ring.VServers()
				entryVS = all[eng.Rand().Intn(len(all))]
			}
		case ProximityAware:
			// The node publishes its VSA information into the DHT under
			// its Hilbert-number key (§4.3): one put message routed in
			// O(log V) hops; the owning virtual server reports the
			// entries to one of its KT leaves.
			key := b.cfg.Mapper.Key(st.Node.Underlay)
			if cm, ok := b.cfg.Mapper.(CellMapper); ok {
				group = cm.Cell(st.Node.Underlay)
			} else {
				group = uint64(key)
			}
			entryVS = b.ring.Successor(key)
			cost := lg2(b.ring.NumVServers()) + b.ring.Latency(st.Node, entryVS.Owner)
			eng.CountMessage(MsgVSAPublish, cost)
			if t := start + cost; t > publishEnd {
				publishEnd = t
			}
		}
		st := st
		deliver(entryVS, func(l *vsaLists) {
			switch st.Class {
			case Light:
				l.lights = append(l.lights, lightEntry{deficit: st.Deficit, node: st.Node, group: group})
			case Heavy:
				for _, vs := range st.Offers {
					l.offers = append(l.offers, offerEntry{load: vs.Load, vs: vs, node: st.Node, group: group})
				}
			}
		})
	}
	return inbox, publishEnd
}

// hilbertKeyOf exposes the key a node publishes under (tests).
func (b *Balancer) hilbertKeyOf(n *chord.Node) ident.ID {
	return b.cfg.Mapper.Key(n.Underlay)
}

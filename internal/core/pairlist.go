package core

import (
	"p2plb/internal/chord"
)

// This file exports the rendezvous-pairing and classification
// primitives so that other executions of the same scheme — notably the
// event-driven message-level runner in internal/protocol — share one
// implementation with the Balancer instead of re-deriving the rules.

// NodeLBI returns the LBI report a node submits during aggregation:
// <L_i, C_i, L_{i,min}> (§3.2).
func NodeLBI(n *chord.Node) LBI { return nodeLBI(n) }

// ClassifyNode classifies one node against a global LBI tuple using the
// given slack and shed-subset strategy (§3.3, §3.4).
func ClassifyNode(n *chord.Node, global LBI, epsilon float64, strategy SubsetStrategy) *NodeState {
	b := &Balancer{cfg: Config{Epsilon: epsilon, Subset: strategy}}
	return b.classifyNode(n, global)
}

// Pair is one emitted pairing: virtual server VS moves from heavy node
// From to light node To.
type Pair struct {
	VS   *chord.VServer
	From *chord.Node
	To   *chord.Node
	Load float64
}

// PairList is the pair of sorted lists a rendezvous KT node maintains
// (§3.4): light-node deficits and offered virtual servers. The zero
// value is an empty list.
type PairList struct {
	lists vsaLists
}

// AddLight records a light node's advertisement <ΔL_j, ip_addr(j)>.
// group is the proximity cell the entry was published under (0 when
// proximity-ignorant).
func (p *PairList) AddLight(deficit float64, node *chord.Node, group uint64) {
	p.lists.lights = append(p.lists.lights, lightEntry{deficit: deficit, node: node, group: group})
}

// AddOffer records one shed virtual server <L_{i,k}, v_{i,k}, ip_addr(i)>.
func (p *PairList) AddOffer(vs *chord.VServer, node *chord.Node, group uint64) {
	p.lists.offers = append(p.lists.offers, offerEntry{load: vs.Load, vs: vs, node: node, group: group})
}

// Merge absorbs o's entries; o must not be used afterwards.
func (p *PairList) Merge(o *PairList) { p.lists.merge(o.lists) }

// Size returns the combined length of the two lists (the rendezvous
// threshold quantity).
func (p *PairList) Size() int { return p.lists.size() }

// Lights returns the number of light entries currently held.
func (p *PairList) Lights() int { return len(p.lists.lights) }

// Offers returns the number of offered virtual servers currently held.
func (p *PairList) Offers() int { return len(p.lists.offers) }

// OfferLoad sums the loads of the held offers.
func (p *PairList) OfferLoad() float64 {
	var s float64
	for _, o := range p.lists.offers {
		s += o.load
	}
	return s
}

// LightEntry is one held light-node advertisement, exposed for
// executors that must serialize a PairList across a process boundary.
type LightEntry struct {
	Deficit float64
	Node    *chord.Node
	Group   uint64
}

// OfferEntry is one held shed-VS offer, exposed for serialization.
type OfferEntry struct {
	VS    *chord.VServer
	Node  *chord.Node
	Group uint64
}

// Entries returns copies of the currently held advertisements — the
// payload a wire executor ships to the parent KT node. The list itself
// is not consumed.
func (p *PairList) Entries() ([]LightEntry, []OfferEntry) {
	lights := make([]LightEntry, len(p.lists.lights))
	for i, l := range p.lists.lights {
		lights[i] = LightEntry{Deficit: l.deficit, Node: l.node, Group: l.group}
	}
	offers := make([]OfferEntry, len(p.lists.offers))
	for i, o := range p.lists.offers {
		offers[i] = OfferEntry{VS: o.vs, Node: o.node, Group: o.group}
	}
	return lights, offers
}

// Pair runs the rendezvous pairing: proximity-local pairing first
// (same publication cell), then the paper's pooled heaviest-offer ×
// best-fit rule, re-inserting residual deficits of at least lmin.
// Unpaired entries remain held for propagation to the parent.
func (p *PairList) Pair(lmin float64) []Pair {
	p.lists.sort()
	pairs := p.lists.pairLocal(lmin)
	pairs = append(pairs, p.lists.pairAll(lmin)...)
	out := make([]Pair, len(pairs))
	for i, pr := range pairs {
		out[i] = Pair{VS: pr.offer.vs, From: pr.offer.node, To: pr.to, Load: pr.offer.load}
	}
	return out
}

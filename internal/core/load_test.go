package core

import (
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

// SampledLoads is one-shot: the first Refresh draws exactly the loads
// the historical assignment loop drew, and later Refreshes (every
// balancing round calls one) must not re-sample.
func TestSampledLoadsOneShot(t *testing.T) {
	build := func() (*chord.Ring, *rand.Rand) {
		eng := sim.NewEngine(1)
		ring := chord.NewRing(eng, chord.Config{})
		for i := 0; i < 16; i++ {
			ring.AddNode(-1, 1, 4)
		}
		return ring, eng.Rand()
	}

	ringA, rngA := build()
	model := workload.Gaussian{Mu: 100, Sigma: 20}
	for _, vs := range ringA.VServers() {
		vs.Load = model.Load(rngA, ringA.RegionOf(vs).Fraction())
	}

	ringB, rngB := build()
	src := &SampledLoads{Model: model, Rng: rngB}
	src.Refresh(ringB)

	va, vb := ringA.VServers(), ringB.VServers()
	for i := range va {
		if va[i].Load != vb[i].Load {
			t.Fatalf("VS %d: SampledLoads drew %v, assignment loop drew %v", i, vb[i].Load, va[i].Load)
		}
	}

	before := make([]float64, len(vb))
	for i, vs := range vb {
		before[i] = vs.Load
	}
	src.Refresh(ringB)
	for i, vs := range vb {
		if vs.Load != before[i] {
			t.Fatalf("second Refresh re-sampled VS %d: %v -> %v", i, before[i], vs.Load)
		}
	}
	if src.Name() != "sampled/gaussian" {
		t.Fatalf("Name = %q", src.Name())
	}
}

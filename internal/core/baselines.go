package core

import (
	"fmt"

	"p2plb/internal/chord"
	"p2plb/internal/stats"
)

// This file implements the comparison schemes discussed in the paper's
// related-work section (§1.1, §6):
//
//   - RunRandomMatching: virtual servers move from heavy to light nodes
//     with no regard for identifier-space or physical proximity — the
//     "blind transfer" behaviour the paper attributes to Rao et al.'s
//     directory-based schemes. It uses the same classification and shed
//     subsets as the tree-based scheme, so differences in transfer
//     distance isolate the effect of rendezvous strategy.
//
//   - RunCFSShedding: CFS's approach, where an overloaded node simply
//     deletes virtual servers and lets ring successors absorb their
//     regions. As [5] observes, this can make *other* nodes overloaded
//     in turn — load thrashing — which the outcome quantifies.

// RunRandomMatching performs one load-balancing round where each offered
// virtual server is assigned to a uniformly random light node able to
// accept it. The result's timing fields cover only LBI (there is no
// tree sweep; matching is assumed to happen at a central directory).
func (b *Balancer) RunRandomMatching() (*Result, error) {
	if b.ring.NumVServers() == 0 {
		return nil, fmt.Errorf("core: ring has no virtual servers")
	}
	if b.tree.Root() == nil {
		if err := b.tree.Build(); err != nil {
			return nil, err
		}
	}
	eng := b.ring.Engine()
	res := &Result{
		Mode:        ProximityIgnorant,
		MovedByHops: &stats.WeightedHistogram{},
		TreeHeight:  b.tree.Height(),
	}
	lbi := b.aggregateLBI()
	if !lbi.global.Valid() {
		return nil, fmt.Errorf("core: no node reported LBI")
	}
	res.Global = lbi.global
	res.TimeLBIAggregate = lbi.aggregateTime
	res.TimeLBIDisseminate = lbi.disperseTime

	states := b.classify(lbi.global)
	res.HeavyBefore, res.LightBefore, res.NeutralBefore = census(states)

	// Gather offers and light candidates.
	var offers []offerEntry
	var lights []lightEntry
	for _, st := range states {
		switch st.Class {
		case Heavy:
			for _, vs := range st.Offers {
				offers = append(offers, offerEntry{load: vs.Load, vs: vs, node: st.Node})
			}
		case Light:
			lights = append(lights, lightEntry{deficit: st.Deficit, node: st.Node})
		}
	}
	// Shuffle offers, then give each a random fitting light node.
	eng.Rand().Shuffle(len(offers), func(i, j int) { offers[i], offers[j] = offers[j], offers[i] })
	for _, o := range offers {
		// Collect indices of lights that fit; pick one uniformly.
		var fits []int
		for i := range lights {
			if lights[i].deficit >= o.load {
				fits = append(fits, i)
			}
		}
		if len(fits) == 0 {
			res.UnassignedOffers++
			res.UnassignedLoad += o.load
			continue
		}
		pick := fits[eng.Rand().Intn(len(fits))]
		to := lights[pick].node
		lights[pick].deficit -= o.load
		if lights[pick].deficit < lbi.global.Lmin {
			lights[pick] = lights[len(lights)-1]
			lights = lights[:len(lights)-1]
		}
		res.Assignments = append(res.Assignments, Assignment{
			VS: o.vs, From: o.node, To: to, Load: o.load,
		})
	}
	for i := range res.Assignments {
		a := &res.Assignments[i]
		a.Hops = b.transferCost(a.From, a.To)
		eng.CountMessage(MsgVSTTransfer, b.ring.Latency(a.From, a.To)+1)
		b.ring.Transfer(a.VS, a.To)
		res.MovedLoad += a.Load
		res.MovedByHops.Add(a.Hops, a.Load)
	}
	after := b.classify(lbi.global)
	res.HeavyAfter, res.LightAfter, res.NeutralAfter = census(after)
	if _, err := b.tree.Repair(); err != nil {
		return nil, err
	}
	return res, nil
}

// CFSOutcome reports a CFS-style shedding run.
type CFSOutcome struct {
	// Rounds is how many shedding sweeps ran before convergence or the
	// round cap.
	Rounds int
	// Shed counts deleted virtual servers.
	Shed int
	// ThrashEvents counts nodes that were not heavy at the start of a
	// sweep but became heavy because a shed region landed on them.
	ThrashEvents int
	// Converged is true when a sweep ended with no heavy nodes.
	Converged bool
	// HeavyAtEnd is the number of heavy nodes when the run stopped.
	HeavyAtEnd int
}

// RunCFSShedding applies CFS-style load shedding rounds until no node is
// heavy or maxRounds is reached: in each round every heavy node deletes
// its lightest virtual servers (their regions fall to ring successors)
// until it is at or below target. Returns the outcome, including how
// much thrashing the region hand-offs caused. Epsilon plays the same
// role as in Config. Nodes never delete their last virtual server (they
// must keep participating in the ring).
func RunCFSShedding(ring *chord.Ring, epsilon float64, maxRounds int) (CFSOutcome, error) {
	if ring.NumVServers() == 0 {
		return CFSOutcome{}, fmt.Errorf("core: ring has no virtual servers")
	}
	if epsilon < 0 {
		return CFSOutcome{}, fmt.Errorf("core: negative epsilon %v", epsilon)
	}
	var out CFSOutcome
	for out.Rounds = 0; out.Rounds < maxRounds; out.Rounds++ {
		global := centralLBI(ring)
		heavySet := map[*chord.Node]bool{}
		var heavies []*chord.Node
		for _, n := range ring.Nodes() {
			if !n.Alive || len(n.VServers()) == 0 {
				continue
			}
			if n.TotalLoad() > target(n, global, epsilon) {
				heavySet[n] = true
				heavies = append(heavies, n)
			}
		}
		if len(heavies) == 0 {
			out.Converged = true
			return out, nil
		}
		for _, n := range heavies {
			for len(n.VServers()) > 1 && n.TotalLoad() > target(n, global, epsilon) {
				// Shed the lightest VS (smallest collateral move).
				var lightest *chord.VServer
				for _, vs := range n.VServers() {
					if lightest == nil || vs.Load < lightest.Load {
						lightest = vs
					}
				}
				receiverBefore := successorNodeAfterRemoval(ring, lightest)
				wasHeavy := receiverBefore != nil &&
					receiverBefore.TotalLoad() > target(receiverBefore, global, epsilon)
				ring.RemoveVServer(lightest)
				out.Shed++
				if receiverBefore != nil && !wasHeavy && !heavySet[receiverBefore] &&
					receiverBefore.TotalLoad() > target(receiverBefore, global, epsilon) {
					out.ThrashEvents++
				}
			}
		}
	}
	global := centralLBI(ring)
	for _, n := range ring.Nodes() {
		if n.Alive && len(n.VServers()) > 0 && n.TotalLoad() > target(n, global, epsilon) {
			out.HeavyAtEnd++
		}
	}
	return out, nil
}

// successorNodeAfterRemoval returns the node that will absorb vs's
// region when vs leaves the ring (nil if vs is the last VS).
func successorNodeAfterRemoval(ring *chord.Ring, vs *chord.VServer) *chord.Node {
	vss := ring.VServers()
	if len(vss) < 2 {
		return nil
	}
	for i, v := range vss {
		if v == vs {
			return vss[(i+1)%len(vss)].Owner
		}
	}
	return nil
}

// centralLBI computes the global <L, C, Lmin> directly (omniscient
// observer), for baselines that do not run the tree protocol.
func centralLBI(ring *chord.Ring) LBI {
	var global LBI
	for _, n := range ring.Nodes() {
		if !n.Alive {
			continue
		}
		global = global.Merge(nodeLBI(n))
	}
	return global
}

// target is T_i for a node under a given global tuple and epsilon.
func target(n *chord.Node, global LBI, epsilon float64) float64 {
	if global.C <= 0 {
		return 0
	}
	return (1 + epsilon) * n.Capacity * (global.L / global.C)
}

package core

import (
	"math"
	"p2plb/internal/chord"
	"p2plb/internal/ktree"
	"p2plb/internal/sim"
)

// nodeLBI builds the report a DHT node submits during LBI aggregation:
// <L_i, C_i, L_{i,min}> (§3.2). A node that currently hosts no virtual
// servers (it shed them all in an earlier round) still reports its
// capacity; its "minimum VS load" is +Inf so it never defines the global
// Lmin.
func nodeLBI(n *chord.Node) LBI {
	min, ok := n.MinVSLoad()
	if !ok {
		return LBI{L: 0, C: n.Capacity, Lmin: math.Inf(1), ok: true}
	}
	return LBI{L: n.TotalLoad(), C: n.Capacity, Lmin: min, ok: true}
}

// lbiOutcome carries the result of the aggregation phase.
type lbiOutcome struct {
	global        LBI
	aggregateTime sim.Time // converge-cast completion at the root
	disperseTime  sim.Time // dissemination completion at the last leaf
}

// aggregateLBI runs the LBI aggregation and dissemination over the tree.
//
// Every alive DHT node reports its LBI through one randomly chosen
// hosted virtual server to one KT leaf planted in it (both local,
// cost-free interactions). The tree then performs a bottom-up
// converge-cast — each KT node merges its children's tuples and forwards
// one report to its parent — followed by a top-down dissemination of the
// global tuple. One message per tree edge in each direction; completion
// times follow the slowest root-to-leaf chain.
func (b *Balancer) aggregateLBI() lbiOutcome {
	eng := b.ring.Engine()
	// Leaf inboxes: which leaves receive which node reports.
	inbox := make(map[*ktree.Node][]LBI)
	for _, n := range b.ring.Nodes() {
		if !n.Alive {
			continue
		}
		vs := n.RandomVS(eng.Rand())
		if vs == nil {
			// A node hosting no virtual servers reports through an
			// arbitrary ring participant it knows of.
			all := b.ring.VServers()
			vs = all[eng.Rand().Intn(len(all))]
		}
		leaves := b.tree.LeavesOf(vs)
		leaf := leaves[eng.Rand().Intn(len(leaves))]
		inbox[leaf] = append(inbox[leaf], nodeLBI(n))
	}

	var up func(n *ktree.Node) (LBI, sim.Time)
	up = func(n *ktree.Node) (LBI, sim.Time) {
		var agg LBI
		var ready sim.Time
		for _, r := range inbox[n] {
			agg = agg.Merge(r)
		}
		for _, c := range n.Children {
			childAgg, childReady := up(c)
			edge := b.tree.EdgeLatency(c)
			eng.CountMessage(MsgLBIReport, edge)
			agg = agg.Merge(childAgg)
			if t := childReady + edge; t > ready {
				ready = t
			}
		}
		return agg, ready
	}
	global, aggTime := up(b.tree.Root())

	var down func(n *ktree.Node, t sim.Time) sim.Time
	down = func(n *ktree.Node, t sim.Time) sim.Time {
		last := t
		for _, c := range n.Children {
			edge := b.tree.EdgeLatency(c)
			eng.CountMessage(MsgLBIDisperse, edge)
			if end := down(c, t+edge); end > last {
				last = end
			}
		}
		return last
	}
	dispTime := down(b.tree.Root(), aggTime)

	return lbiOutcome{global: global, aggregateTime: aggTime, disperseTime: dispTime}
}

// classify evaluates every alive node against the global LBI (§3.3):
// T_i = (1+ε)·C_i·(L/C); heavy if L_i > T_i; light if T_i − L_i ≥ Lmin;
// neutral otherwise. Heavy nodes also select their shed subset.
func (b *Balancer) classify(global LBI) []*NodeState {
	var out []*NodeState
	for _, n := range b.ring.Nodes() {
		if !n.Alive {
			continue
		}
		out = append(out, b.classifyNode(n, global))
	}
	return out
}

// classifyNode classifies a single node.
func (b *Balancer) classifyNode(n *chord.Node, global LBI) *NodeState {
	st := &NodeState{Node: n, Load: n.TotalLoad()}
	if global.C <= 0 {
		st.Class = Neutral
		return st
	}
	st.Target = (1 + b.cfg.Epsilon) * n.Capacity * (global.L / global.C)
	gap := st.Target - st.Load
	switch {
	case st.Load > st.Target:
		st.Class = Heavy
		var ops int64
		st.Offers, ops = chooseShedSubset(n.VServers(), st.Load-st.Target, b.cfg.Subset)
		b.observeSubsetCost(ops)
	case gap >= global.Lmin:
		st.Class = Light
		st.Deficit = gap
	default:
		st.Class = Neutral
	}
	return st
}

// census counts classes.
func census(states []*NodeState) (heavy, light, neutral int) {
	for _, s := range states {
		switch s.Class {
		case Heavy:
			heavy++
		case Light:
			light++
		default:
			neutral++
		}
	}
	return
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
)

// buildPairList constructs a PairList from raw deficit/load values.
func buildPairList(deficits, loads []float64, groups []uint64) (*PairList, float64, float64) {
	pl := &PairList{}
	var totalDeficit, totalOffer float64
	for i, d := range deficits {
		pl.AddLight(d, &chord.Node{Index: i, Alive: true}, groupAt(groups, i))
		totalDeficit += d
	}
	for i, l := range loads {
		vs := &chord.VServer{ID: ident.ID(10000 + i), Load: l}
		pl.AddOffer(vs, &chord.Node{Index: 1000 + i, Alive: true}, groupAt(groups, i))
		totalOffer += l
	}
	return pl, totalDeficit, totalOffer
}

func groupAt(groups []uint64, i int) uint64 {
	if len(groups) == 0 {
		return 0
	}
	return groups[i%len(groups)]
}

// TestPairListConservation checks the fundamental pairing invariants on
// random instances:
//  1. every offer is either paired or still held (none vanish);
//  2. a paired offer's load never exceeds the deficit of the light node
//     it was assigned to at assignment time — equivalently, the total
//     load assigned to any one light node never exceeds its deficit;
//  3. unpaired offers genuinely fit no remaining light node.
func TestPairListConservation(t *testing.T) {
	f := func(rawDeficits, rawLoads []uint16, rawGroups []uint64, lminRaw uint8) bool {
		deficits := make([]float64, 0, len(rawDeficits))
		for _, d := range rawDeficits {
			deficits = append(deficits, float64(d%1000))
		}
		loads := make([]float64, 0, len(rawLoads))
		for _, l := range rawLoads {
			loads = append(loads, float64(l%500)+1)
		}
		groups := make([]uint64, len(rawGroups))
		for i, g := range rawGroups {
			groups[i] = g % 4 // few groups so grouping actually kicks in
		}
		lmin := float64(lminRaw % 16)

		pl, _, totalOffer := buildPairList(deficits, loads, groups)
		offersBefore := pl.Offers()
		pairs := pl.Pair(lmin)

		// (1) conservation of offers.
		if len(pairs)+pl.Offers() != offersBefore {
			return false
		}
		// (2) per-light assigned load <= original deficit.
		assigned := map[int]float64{}
		for _, p := range pairs {
			assigned[p.To.Index] += p.Load
		}
		for idx, sum := range assigned {
			if idx >= len(deficits) || sum > deficits[idx]+1e-9 {
				return false
			}
		}
		// Moved load accounted exactly.
		var movedSum float64
		for _, p := range pairs {
			movedSum += p.Load
		}
		if movedSum+pl.OfferLoad() > totalOffer+1e-6 ||
			movedSum+pl.OfferLoad() < totalOffer-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPairListUnpairedTrulyUnfit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nd, nl := rng.Intn(20), rng.Intn(20)
		deficits := make([]float64, nd)
		for i := range deficits {
			deficits[i] = rng.Float64() * 100
		}
		loads := make([]float64, nl)
		for i := range loads {
			loads[i] = rng.Float64()*150 + 1
		}
		pl, _, _ := buildPairList(deficits, loads, nil)
		lmin := rng.Float64() * 10
		pairs := pl.Pair(lmin)
		_ = pairs
		// After pairing completes, no remaining offer can fit any
		// remaining light's deficit — otherwise "no more appropriate
		// VSA can be achieved" would be false.
		remOffers := pl.Offers()
		remLights := pl.Lights()
		if remOffers == 0 || remLights == 0 {
			continue
		}
		// Re-pair must produce nothing new.
		if extra := pl.Pair(lmin); len(extra) != 0 {
			t.Fatalf("trial %d: second Pair produced %d extra pairs — first pass incomplete",
				trial, len(extra))
		}
	}
}

func TestPairListMergePreservesEntries(t *testing.T) {
	a, _, _ := buildPairList([]float64{5, 10}, []float64{3}, nil)
	b, _, _ := buildPairList([]float64{7}, []float64{4, 8}, nil)
	a.Merge(b)
	if a.Lights() != 3 || a.Offers() != 3 || a.Size() != 6 {
		t.Fatalf("merge lost entries: %d lights, %d offers", a.Lights(), a.Offers())
	}
	if a.OfferLoad() != 15 {
		t.Fatalf("OfferLoad = %v, want 15", a.OfferLoad())
	}
}

func TestPairListGroupingPrefersLocal(t *testing.T) {
	// Two cells: each with one offer and one fitting light. Grouped
	// pairing must match within cells even when the cross-cell match
	// would be the global best fit.
	pl := &PairList{}
	lightA := &chord.Node{Index: 1, Alive: true}
	lightB := &chord.Node{Index: 2, Alive: true}
	// Cell 1: offer load 10, light deficit 50 (loose fit).
	// Cell 2: offer load 40, light deficit 41 (tight fit).
	vs1 := &chord.VServer{ID: 100, Load: 10}
	vs2 := &chord.VServer{ID: 200, Load: 40}
	pl.AddLight(50, lightA, 1)
	pl.AddOffer(vs1, &chord.Node{Index: 3, Alive: true}, 1)
	pl.AddLight(41, lightB, 2)
	pl.AddOffer(vs2, &chord.Node{Index: 4, Alive: true}, 2)
	pairs := pl.Pair(1)
	if len(pairs) != 2 {
		t.Fatalf("paired %d, want 2", len(pairs))
	}
	for _, p := range pairs {
		if p.VS == vs1 && p.To != lightA {
			t.Error("cell-1 offer left its cell (global best-fit would pick deficit 41)")
		}
		if p.VS == vs2 && p.To != lightB {
			t.Error("cell-2 offer left its cell")
		}
	}
}

func TestNodeLBIExported(t *testing.T) {
	n := &chord.Node{Capacity: 50, Alive: true}
	lbi := NodeLBI(n)
	if !lbi.Valid() || lbi.C != 50 || lbi.L != 0 {
		t.Fatalf("VS-less NodeLBI = %+v", lbi)
	}
}

func TestClassifyNodeExported(t *testing.T) {
	n := &chord.Node{Capacity: 10, Alive: true}
	global := LBI{L: 100, C: 100, Lmin: 1, ok: true}
	st := ClassifyNode(n, global, 0, SubsetAuto)
	if st.Class != Light || st.Deficit != 10 {
		t.Fatalf("VS-less node should be maximally light: %+v", st)
	}
}

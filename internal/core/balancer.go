package core

import (
	"fmt"

	"p2plb/internal/stats"
)

// RunRound executes one complete load-balancing round: LBI aggregation
// and dissemination, node classification, virtual server assignment, and
// virtual server transferring. It mutates the ring (transfers re-home
// virtual servers) and returns the round's results and cost accounting.
//
// VSA and VST overlap (§3.5): each transfer starts the moment its
// rendezvous point emits the pairing, not after the whole sweep ends.
func (b *Balancer) RunRound() (*Result, error) {
	if b.ring.NumVServers() == 0 {
		return nil, fmt.Errorf("core: ring has no virtual servers")
	}
	if b.tree.Root() == nil {
		if err := b.tree.Build(); err != nil {
			return nil, err
		}
	}
	if b.cfg.Loads != nil {
		b.cfg.Loads.Refresh(b.ring)
	}

	res := &Result{
		Mode:        b.cfg.Mode,
		MovedByHops: &stats.WeightedHistogram{},
		TreeHeight:  b.tree.Height(),
	}

	// Phase 1: LBI aggregation and dissemination.
	lbi := b.aggregateLBI()
	if !lbi.global.Valid() {
		return nil, fmt.Errorf("core: no node reported LBI")
	}
	res.Global = lbi.global
	res.TimeLBIAggregate = lbi.aggregateTime
	res.TimeLBIDisseminate = lbi.disperseTime

	// Phase 2: classification (and shed-subset selection on heavy nodes).
	states := b.classify(lbi.global)
	res.HeavyBefore, res.LightBefore, res.NeutralBefore = census(states)

	// Phase 3: VSA sweep.
	vsa := b.runVSA(states, lbi.global, lbi.disperseTime)
	res.TimePublish = vsa.publishTime
	res.TimeVSAComplete = vsa.completeTime
	res.Assignments = vsa.assignments
	res.UnassignedOffers = len(vsa.unassigned)
	for _, o := range vsa.unassigned {
		res.UnassignedLoad += o.load
	}

	// Phase 4: VST — apply transfers, charge their cost, record the
	// moved-load-by-distance distribution.
	eng := b.ring.Engine()
	for i := range res.Assignments {
		a := &res.Assignments[i]
		a.Hops = b.transferCost(a.From, a.To)
		cost := b.ring.Latency(a.From, a.To) + 1
		eng.CountMessage(MsgVSTTransfer, cost)
		b.ring.Transfer(a.VS, a.To)
		res.MovedLoad += a.Load
		res.MovedByHops.Add(a.Hops, a.Load)
		if done := a.AssignedAt + cost; done > res.TimeVSTComplete {
			res.TimeVSTComplete = done
		}
	}
	if res.TimeVSTComplete < vsa.completeTime {
		res.TimeVSTComplete = vsa.completeTime
	}

	// Post-round census against the same global tuple.
	after := b.classify(lbi.global)
	res.HeavyAfter, res.LightAfter, res.NeutralAfter = census(after)

	// Transferring virtual servers migrates the KT nodes planted in them
	// (lazy migration, §3.5): reconcile the tree once the round is over.
	if _, err := b.tree.Repair(); err != nil {
		return nil, err
	}
	b.recordRound(res)
	return res, nil
}

// recordRound publishes one round's outcome to the engine's metrics
// registry (no-op without one): per-phase durations in virtual latency
// units, pairing outcomes, and moved load.
func (b *Balancer) recordRound(res *Result) {
	reg := b.ring.Engine().Metrics()
	if reg == nil {
		return
	}
	reg.Counter("core.rounds").Inc()
	reg.Histogram("core.phase.lbi_aggregate").Observe(int64(res.TimeLBIAggregate))
	reg.Histogram("core.phase.lbi_disseminate").Observe(int64(res.TimeLBIDisseminate - res.TimeLBIAggregate))
	if res.TimePublish > 0 {
		reg.Histogram("core.phase.publish").Observe(int64(res.TimePublish - res.TimeLBIDisseminate))
	}
	reg.Histogram("core.phase.vsa").Observe(int64(res.TimeVSAComplete))
	reg.Histogram("core.phase.vst").Observe(int64(res.TimeVSTComplete))
	reg.Counter("core.pairs.assigned").Add(int64(len(res.Assignments)))
	reg.Counter("core.pairs.unassigned").Add(int64(res.UnassignedOffers))
	reg.Float("core.moved_load").Add(res.MovedLoad)
	reg.Float("core.unassigned_load").Add(res.UnassignedLoad)
	hops := reg.Histogram("core.transfer.hops")
	for i := range res.Assignments {
		hops.Observe(int64(res.Assignments[i].Hops))
	}
}

// UnitLoads returns load/capacity for every alive node, in ring node
// order — the y-axis of the paper's Figure 4 scatterplots. A node that
// shed all its virtual servers contributes 0.
func (b *Balancer) UnitLoads() []float64 {
	var out []float64
	for _, n := range b.ring.Nodes() {
		if !n.Alive {
			continue
		}
		out = append(out, n.TotalLoad()/n.Capacity)
	}
	return out
}

// LoadByCapacityClass aggregates per-node loads grouped by node capacity
// — the data behind Figures 5 and 6.
func (b *Balancer) LoadByCapacityClass() *stats.GroupedSum {
	g := stats.NewGroupedSum()
	for _, n := range b.ring.Nodes() {
		if !n.Alive {
			continue
		}
		g.Add(n.Capacity, n.TotalLoad())
	}
	return g
}

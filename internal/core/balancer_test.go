package core

import (
	"math"
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/ktree"
	"p2plb/internal/proximity"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
	"p2plb/internal/workload"
)

// buildLoadedRing creates a heterogeneous ring with Gaussian loads, the
// standard small-scale test fixture.
func buildLoadedRing(seed int64, nodes, vsPer int) (*chord.Ring, *ktree.Tree) {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), vsPer)
	}
	mu := float64(nodes) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		panic(err)
	}
	if err := tree.Build(); err != nil {
		panic(err)
	}
	return ring, tree
}

func TestRunRoundEliminatesHeavyNodes(t *testing.T) {
	ring, tree := buildLoadedRing(1, 256, 5)
	b, err := NewBalancer(ring, tree, Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyBefore < 256/2 {
		t.Fatalf("fixture too tame: only %d/256 heavy before", res.HeavyBefore)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("%d nodes still heavy after the round (before: %d, unassigned offers: %d)",
			res.HeavyAfter, res.HeavyBefore, res.UnassignedOffers)
	}
	if res.MovedLoad <= 0 || len(res.Assignments) == 0 {
		t.Fatal("round moved nothing")
	}
	ring.CheckInvariants()
	tree.CheckInvariants()
}

func TestRunRoundAccounting(t *testing.T) {
	ring, tree := buildLoadedRing(2, 128, 5)
	eng := ring.Engine()
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
	res, err := b.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	// Histogram total must equal moved load.
	if math.Abs(res.MovedByHops.Total()-res.MovedLoad) > 1e-6 {
		t.Errorf("histogram total %v != moved load %v", res.MovedByHops.Total(), res.MovedLoad)
	}
	var sum float64
	for _, a := range res.Assignments {
		sum += a.Load
		if a.Load != a.VS.Load {
			t.Error("assignment load diverges from VS load")
		}
		if a.VS.Owner != a.To {
			t.Error("VS not transferred to its assignee")
		}
		if a.From == a.To {
			t.Error("self transfer")
		}
	}
	if math.Abs(sum-res.MovedLoad) > 1e-6 {
		t.Errorf("assignment sum %v != moved %v", sum, res.MovedLoad)
	}
	// Message accounting: every phase must have produced traffic.
	for _, kind := range []string{MsgLBIReport, MsgLBIDisperse, MsgVSAReport, MsgVSAAssign, MsgVSTTransfer} {
		if eng.MessageCount(kind) == 0 {
			t.Errorf("no %s messages counted", kind)
		}
	}
	if got := eng.MessageCount(MsgVSAAssign); got != 2*int64(len(res.Assignments)) {
		t.Errorf("assign notifications %d, want %d", got, 2*len(res.Assignments))
	}
	// Phase times must be ordered.
	if !(res.TimeLBIAggregate <= res.TimeLBIDisseminate &&
		res.TimeLBIDisseminate <= res.TimeVSAComplete &&
		res.TimeVSAComplete <= res.TimeVSTComplete) {
		t.Errorf("phase times out of order: %d %d %d %d", res.TimeLBIAggregate,
			res.TimeLBIDisseminate, res.TimeVSAComplete, res.TimeVSTComplete)
	}
}

func TestRunRoundDeterministic(t *testing.T) {
	run := func() *Result {
		ring, tree := buildLoadedRing(3, 96, 5)
		b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
		res, err := b.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MovedLoad != b.MovedLoad || len(a.Assignments) != len(b.Assignments) ||
		a.HeavyBefore != b.HeavyBefore || a.TimeVSAComplete != b.TimeVSAComplete {
		t.Fatalf("nondeterministic rounds: %+v vs %+v", a, b)
	}
	for i := range a.Assignments {
		if a.Assignments[i].VS.ID != b.Assignments[i].VS.ID ||
			a.Assignments[i].To.Index != b.Assignments[i].To.Index {
			t.Fatal("assignment sequences differ")
		}
	}
}

func TestSecondRoundMovesLess(t *testing.T) {
	ring, tree := buildLoadedRing(4, 192, 5)
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
	first, err := b.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if second.MovedLoad > first.MovedLoad/5 {
		t.Errorf("second round moved %v, first %v — balance did not stick",
			second.MovedLoad, first.MovedLoad)
	}
}

func TestLoadProportionalToCapacityAfterRound(t *testing.T) {
	ring, tree := buildLoadedRing(5, 512, 5)
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
	if _, err := b.RunRound(); err != nil {
		t.Fatal(err)
	}
	g := b.LoadByCapacityClass()
	classes := g.Classes()
	if len(classes) < 4 {
		t.Skip("capacity profile under-sampled")
	}
	// After balancing, mean load per class should scale roughly with
	// capacity for the mid classes (granularity limits the smallest).
	m10 := g.Mean(10)
	m100 := g.Mean(100)
	m1000 := g.Mean(1000)
	if m100 < 3*m10 || m100 > 30*m10 {
		t.Errorf("class 100 mean %v not ~10x class 10 mean %v", m100, m10)
	}
	if m1000 < 3*m100 || m1000 > 30*m100 {
		t.Errorf("class 1000 mean %v not ~10x class 100 mean %v", m1000, m100)
	}
}

func TestUnitLoadsShape(t *testing.T) {
	ring, tree := buildLoadedRing(6, 128, 5)
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
	before := b.UnitLoads()
	if len(before) != 128 {
		t.Fatalf("UnitLoads returned %d entries", len(before))
	}
	if _, err := b.RunRound(); err != nil {
		t.Fatal(err)
	}
	after := b.UnitLoads()
	// Unit-load spread must shrink dramatically.
	varOf := func(xs []float64) float64 {
		var mean, ss float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return ss / float64(len(xs))
	}
	if varOf(after) > varOf(before)/4 {
		t.Errorf("unit-load variance only dropped from %v to %v", varOf(before), varOf(after))
	}
}

// topoFixture builds a ring embedded in a transit-stub underlay with a
// proximity mapper, shared by the aware/ignorant comparisons.
func topoFixture(t *testing.T, seed int64, nodes int) (*chord.Ring, *ktree.Tree, *proximity.Mapper) {
	t.Helper()
	g, err := topology.Generate(topology.Params{
		TransitDomains:        3,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   3,
		StubDomainSizeMean:    45,
		TransitEdgeProb:       0.6,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.42,
		Seed:                  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := topology.NewDistances(g)
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{Latency: chord.TopologyLatency(dist)})
	profile := workload.GnutellaProfile()
	underlays := g.SampleStubNodes(eng.Rand(), nodes)
	for i := 0; i < nodes; i++ {
		ring.AddNode(underlays[i], profile.Sample(eng.Rand()), 5)
	}
	mu := float64(nodes) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	lm, err := proximity.ChooseSpread(g, dist, rand.New(rand.NewSource(seed)), proximity.DefaultLandmarkCount)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := proximity.NewMapper(lm, proximity.DefaultBitsPerDimension)
	if err != nil {
		t.Fatal(err)
	}
	return ring, tree, mapper
}

func meanHops(res *Result) float64 {
	if len(res.Assignments) == 0 {
		return 0
	}
	var w, hw float64
	for _, a := range res.Assignments {
		w += a.Load
		hw += a.Load * float64(a.Hops)
	}
	return hw / w
}

func TestAwareMovesLoadCloserThanIgnorant(t *testing.T) {
	ring1, tree1, mapper := topoFixture(t, 10, 384)
	aware, _ := NewBalancer(ring1, tree1, Config{
		Mode: ProximityAware, Mapper: mapper, Epsilon: 0.05,
	})
	resAware, err := aware.RunRound()
	if err != nil {
		t.Fatal(err)
	}

	ring2, tree2, _ := topoFixture(t, 10, 384)
	ignorant, _ := NewBalancer(ring2, tree2, Config{Epsilon: 0.05})
	resIgnorant, err := ignorant.RunRound()
	if err != nil {
		t.Fatal(err)
	}

	if resAware.HeavyAfter != 0 || resIgnorant.HeavyAfter != 0 {
		t.Errorf("rounds left heavy nodes: aware %d, ignorant %d",
			resAware.HeavyAfter, resIgnorant.HeavyAfter)
	}
	ha, hi := meanHops(resAware), meanHops(resIgnorant)
	t.Logf("mean hops: aware %.2f ignorant %.2f; within-2: aware %.2f ignorant %.2f; within-10: aware %.2f ignorant %.2f",
		ha, hi,
		resAware.MovedByHops.FractionWithin(2), resIgnorant.MovedByHops.FractionWithin(2),
		resAware.MovedByHops.FractionWithin(10), resIgnorant.MovedByHops.FractionWithin(10))
	// At this small scale many domains lack local light capacity, so the
	// mean gap is modest; the full-scale experiment reproduces the
	// paper's figures. Require a clear ordering here.
	if ha >= hi*0.85 {
		t.Errorf("aware mean transfer distance %.2f not clearly below ignorant %.2f", ha, hi)
	}
	// The aware CDF at small distances must dominate the ignorant one.
	fa := resAware.MovedByHops.FractionWithin(4)
	fi := resIgnorant.MovedByHops.FractionWithin(4)
	if fa < 2*fi {
		t.Errorf("aware moved %.0f%% within 4 units vs ignorant %.0f%% — too close",
			fa*100, fi*100)
	}
	if resAware.TimePublish <= resAware.TimeLBIDisseminate {
		t.Error("aware mode should spend time publishing")
	}
	if ring1.Engine().MessageCount(MsgVSAPublish) == 0 {
		t.Error("aware mode must publish VSA info")
	}
	if ring2.Engine().MessageCount(MsgVSAPublish) != 0 {
		t.Error("ignorant mode must not publish")
	}
}

func TestVSACompletionScalesWithTreeHeight(t *testing.T) {
	times := map[int]sim.Time{}
	heights := map[int]int{}
	for _, n := range []int{64, 512} {
		ring, tree := buildLoadedRing(11, n, 5)
		b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
		res, err := b.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		times[n] = res.TimeVSAComplete
		heights[n] = res.TreeHeight
	}
	// An 8x node increase should grow VSA time roughly like the tree
	// height (logarithmic), not linearly.
	ratio := float64(times[512]) / float64(times[64])
	if ratio > 3 {
		t.Errorf("VSA time grew %.1fx for 8x nodes (heights %d -> %d) — not logarithmic",
			ratio, heights[64], heights[512])
	}
}

func TestRootOnlyRendezvousStillBalances(t *testing.T) {
	ring, tree := buildLoadedRing(12, 128, 5)
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05, RendezvousThreshold: -1})
	res, err := b.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("root-only rendezvous left %d heavy", res.HeavyAfter)
	}
	for _, a := range res.Assignments {
		if a.Depth != 0 {
			t.Fatal("with threshold<0 all pairings must happen at the root")
		}
	}
}

func TestLowThresholdPairsDeepInTree(t *testing.T) {
	ring, tree := buildLoadedRing(13, 256, 5)
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05, RendezvousThreshold: 2})
	res, err := b.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	deep := 0
	for _, a := range res.Assignments {
		if a.Depth > 0 {
			deep++
		}
	}
	if deep == 0 {
		t.Error("threshold 2 should produce sub-root rendezvous pairings")
	}
}

func TestRunRandomMatchingBaseline(t *testing.T) {
	ring, tree := buildLoadedRing(14, 128, 5)
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0.05})
	res, err := b.RunRandomMatching()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("random matching left %d heavy nodes", res.HeavyAfter)
	}
	if res.MovedLoad <= 0 {
		t.Fatal("random matching moved nothing")
	}
	ring.CheckInvariants()
}

func TestCFSSheddingThrashes(t *testing.T) {
	ring, _ := buildLoadedRing(15, 192, 5)
	out, err := RunCFSShedding(ring, 0.05, 50)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shed == 0 {
		t.Fatal("CFS shedding removed nothing")
	}
	if out.ThrashEvents == 0 {
		t.Error("expected load thrashing (shed regions overloading successors)")
	}
	ring.CheckInvariants()
	t.Logf("CFS: rounds=%d shed=%d thrash=%d converged=%v heavyAtEnd=%d",
		out.Rounds, out.Shed, out.ThrashEvents, out.Converged, out.HeavyAtEnd)
}

func TestCFSSheddingErrors(t *testing.T) {
	empty := chord.NewRing(sim.NewEngine(1), chord.Config{})
	if _, err := RunCFSShedding(empty, 0.1, 5); err == nil {
		t.Error("empty ring should fail")
	}
	ring, _ := buildLoadedRing(16, 16, 3)
	if _, err := RunCFSShedding(ring, -1, 5); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestNewBalancerErrors(t *testing.T) {
	ring, tree := buildLoadedRing(17, 8, 2)
	otherRing, _ := buildLoadedRing(18, 8, 2)
	if _, err := NewBalancer(otherRing, tree, Config{}); err == nil {
		t.Error("mismatched ring/tree should fail")
	}
	if _, err := NewBalancer(ring, tree, Config{Epsilon: -1}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRunRoundEmptyRing(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	tree, _ := ktree.New(ring, 2)
	b, _ := NewBalancer(ring, tree, Config{})
	if _, err := b.RunRound(); err == nil {
		t.Fatal("empty ring round should fail")
	}
}

func TestClassifyRules(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	// Three nodes, capacity 10 each; total load 30 → fair share 10.
	nodes := make([]*chord.Node, 3)
	var err error
	ids := [][]uint32{{100, 200}, {1000, 2000}, {30000, 40000}}
	loads := [][]float64{{14, 4}, {5, 5}, {1, 1}} // 18 heavy, 10 neutral-ish, 2 light
	for i := range nodes {
		nodes[i], err = ring.AddNodeWithIDs(-1, 10, []ident.ID{ident.ID(ids[i][0]), ident.ID(ids[i][1])})
		if err != nil {
			t.Fatal(err)
		}
		for j, vs := range nodes[i].VServers() {
			vs.Load = loads[i][j]
		}
	}
	tree, _ := ktree.New(ring, 2)
	tree.Build()
	b, _ := NewBalancer(ring, tree, Config{Epsilon: 0})
	global := centralLBI(ring)
	if global.L != 30 || global.C != 30 || global.Lmin != 1 {
		t.Fatalf("global = %+v", global)
	}
	st0 := b.classifyNode(nodes[0], global)
	if st0.Class != Heavy || len(st0.Offers) == 0 {
		t.Fatalf("node0 = %+v", st0)
	}
	// Minimal shed: excess = 8; subset {14} overshoots less than {14,4};
	// {4} is infeasible → want {14}? No: minimize sum >= 8 → {14} sum 14
	// vs {4} sum 4 < 8 infeasible → {14}.
	if subsetLoad(st0.Offers) != 14 {
		t.Errorf("node0 sheds %v, want 14", subsetLoad(st0.Offers))
	}
	st1 := b.classifyNode(nodes[1], global)
	if st1.Class != Neutral {
		t.Errorf("node1 = %v, want neutral (gap 0 < Lmin)", st1.Class)
	}
	st2 := b.classifyNode(nodes[2], global)
	if st2.Class != Light || st2.Deficit != 8 {
		t.Errorf("node2 = %+v, want light with deficit 8", st2)
	}
}

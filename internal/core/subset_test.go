package core

import (
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
)

// mkVSs builds bare virtual servers with the given loads (no ring).
func mkVSs(loads ...float64) []*chord.VServer {
	out := make([]*chord.VServer, len(loads))
	for i, l := range loads {
		out[i] = &chord.VServer{ID: ident.ID(i + 1), Load: l}
	}
	return out
}

func loadsOf(vss []*chord.VServer) []float64 {
	out := make([]float64, len(vss))
	for i, vs := range vss {
		out[i] = vs.Load
	}
	return out
}

// shed calls chooseShedSubset and discards the ops count.
func shed(vss []*chord.VServer, excess float64, s SubsetStrategy) []*chord.VServer {
	subset, _ := chooseShedSubset(vss, excess, s)
	return subset
}

func TestChooseShedSubsetZeroExcess(t *testing.T) {
	if got := shed(mkVSs(1, 2, 3), 0, SubsetAuto); got != nil {
		t.Fatalf("zero excess should shed nothing, got %v", loadsOf(got))
	}
	if got := shed(mkVSs(1, 2, 3), -5, SubsetAuto); got != nil {
		t.Fatal("negative excess should shed nothing")
	}
	if got := shed(nil, 5, SubsetAuto); got != nil {
		t.Fatal("no virtual servers, nothing to shed")
	}
}

func TestExactSubsetKnownCases(t *testing.T) {
	cases := []struct {
		loads  []float64
		excess float64
		want   float64 // minimal feasible sum
	}{
		{[]float64{5, 4, 3, 2, 1}, 6, 6},   // 4+2 or 5+1: sum 6
		{[]float64{5, 4, 3, 2, 1}, 5, 5},   // exactly 5
		{[]float64{5, 4, 3, 2, 1}, 14, 14}, // 5+4+3+2
		{[]float64{5, 4, 3, 2, 1}, 15, 15}, // everything
		{[]float64{10, 10, 10}, 1, 10},     // single item overshoot
		{[]float64{7}, 3, 7},               // only option
		{[]float64{2, 2, 2}, 3, 4},         // two items
	}
	for _, c := range cases {
		got := shed(mkVSs(c.loads...), c.excess, SubsetExact)
		if sum := subsetLoad(got); sum != c.want {
			t.Errorf("exact(%v, %v) shed %v (sum %v), want sum %v",
				c.loads, c.excess, loadsOf(got), sum, c.want)
		}
		if sum := subsetLoad(got); sum < c.excess {
			t.Errorf("exact result infeasible: %v < %v", sum, c.excess)
		}
	}
}

func TestExactPrefersFewerVSsOnTies(t *testing.T) {
	// Sum 6 reachable as {6} or {4,2}: prefer the single VS.
	got := shed(mkVSs(6, 4, 2), 6, SubsetExact)
	if len(got) != 1 || got[0].Load != 6 {
		t.Fatalf("want single VS of load 6, got %v", loadsOf(got))
	}
}

func TestGreedyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(12)
		loads := make([]float64, n)
		var total float64
		for i := range loads {
			loads[i] = float64(rng.Intn(100)) / 4
			total += loads[i]
		}
		excess := rng.Float64() * total
		if excess == 0 {
			continue
		}
		got := shed(mkVSs(loads...), excess, SubsetGreedy)
		if sum := subsetLoad(got); sum < excess {
			t.Fatalf("greedy infeasible: loads=%v excess=%v shed=%v",
				loads, excess, loadsOf(got))
		}
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// Greedy (with its drop and swap passes) should land within 25% of
	// the exact optimum on random instances, and exact must never be
	// worse than greedy.
	rng := rand.New(rand.NewSource(2))
	var ratioSum float64
	trials := 500
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(10)
		loads := make([]float64, n)
		var total float64
		for i := range loads {
			loads[i] = 1 + rng.Float64()*20
			total += loads[i]
		}
		excess := rng.Float64() * total * 0.8
		exact := subsetLoad(shed(mkVSs(loads...), excess, SubsetExact))
		greedy := subsetLoad(shed(mkVSs(loads...), excess, SubsetGreedy))
		if greedy < exact-1e-9 {
			t.Fatalf("greedy %v beat exact %v — exact is not optimal", greedy, exact)
		}
		ratioSum += greedy / exact
	}
	if avg := ratioSum / float64(trials); avg > 1.25 {
		t.Errorf("greedy averages %.3fx the optimum, want <= 1.25x", avg)
	}
}

func TestAutoStrategyDispatch(t *testing.T) {
	// <= exactLimit VSs: auto must match exact.
	loads := []float64{9, 7, 5, 3, 1}
	auto := subsetLoad(shed(mkVSs(loads...), 8, SubsetAuto))
	exact := subsetLoad(shed(mkVSs(loads...), 8, SubsetExact))
	if auto != exact {
		t.Fatalf("auto %v != exact %v for small instance", auto, exact)
	}
	// > exactLimit VSs: auto must still be feasible (greedy path).
	big := make([]float64, exactLimit+5)
	for i := range big {
		big[i] = float64(i + 1)
	}
	got := shed(mkVSs(big...), 40, SubsetAuto)
	if subsetLoad(got) < 40 {
		t.Fatal("auto infeasible on large instance")
	}
}

func TestSubsetDeterministic(t *testing.T) {
	loads := []float64{4, 4, 4, 4}
	a := shed(mkVSs(loads...), 7, SubsetExact)
	b := shed(mkVSs(loads...), 7, SubsetExact)
	if len(a) != len(b) {
		t.Fatal("nondeterministic subset size")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("nondeterministic subset choice")
		}
	}
}

func TestSubsetOrderedByDescendingLoad(t *testing.T) {
	got := shed(mkVSs(1, 9, 5, 7, 3), 20, SubsetExact)
	for i := 1; i < len(got); i++ {
		if got[i].Load > got[i-1].Load {
			t.Fatalf("subset not descending: %v", loadsOf(got))
		}
	}
}

func BenchmarkExactSubset12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	loads := make([]float64, 12)
	for i := range loads {
		loads[i] = rng.Float64() * 100
	}
	vss := mkVSs(loads...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shed(vss, 150, SubsetExact)
	}
}

func BenchmarkGreedySubset64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	loads := make([]float64, 64)
	for i := range loads {
		loads[i] = rng.Float64() * 100
	}
	vss := mkVSs(loads...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shed(vss, 900, SubsetGreedy)
	}
}

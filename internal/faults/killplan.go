package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"p2plb/internal/sim"
)

// A KillPlan is a seed-derived process-kill schedule shared by the two
// fault backends: the simulator's crash injector (via Crashes, which
// lowers the round-denominated events to absolute virtual times) and
// the multi-process cluster supervisor (which consumes the events
// directly, pacing them by real wall-clock rounds). Deriving both from
// one plan means a chaos scenario reproduced in the simulator kills the
// same victims in the same rounds as the live cluster run, and the plan
// itself is byte-reproducible for a given (seed, config).
type KillPlan struct {
	Seed   int64       `json:"seed"`
	Events []KillEvent `json:"events"`
}

// KillEvent is one scheduled SIGKILL: the victim dies during round
// Round and is allowed to restart RestartAfter rounds later
// (RestartAfter ≥ 1 — a kill with instant restart would not be
// observable by the protocol).
type KillEvent struct {
	Round        int `json:"round"`
	Victim       int `json:"victim"`
	RestartAfter int `json:"restart_after"`
}

// KillPlanConfig bounds the schedule.
type KillPlanConfig struct {
	// Rounds is the horizon: every kill lands in rounds [1, Rounds-2] so
	// the final rounds always observe a fully-recovered system.
	Rounds int
	// Procs is the process count; victims are drawn from [0, Procs).
	Procs int
	// Kills is the number of kill events to schedule.
	Kills int
	// Protect lists ranks that are never killed (e.g. the KT root when
	// the harness wants guaranteed round triggers, or rank 0 when it
	// doubles as a coordinator).
	Protect []int
	// MaxRestartRounds caps RestartAfter (default 2).
	MaxRestartRounds int
}

// NewKillPlan draws a deterministic schedule from the seed. Events are
// sorted by (Round, Victim) and no victim is killed twice in the same
// round. It returns an error when the config leaves no legal victims or
// no legal rounds.
func NewKillPlan(seed int64, cfg KillPlanConfig) (*KillPlan, error) {
	if cfg.Rounds < 4 {
		return nil, fmt.Errorf("faults: kill plan needs at least 4 rounds, got %d", cfg.Rounds)
	}
	if cfg.MaxRestartRounds <= 0 {
		cfg.MaxRestartRounds = 2
	}
	protected := make(map[int]bool, len(cfg.Protect))
	for _, r := range cfg.Protect {
		protected[r] = true
	}
	var victims []int
	for r := 0; r < cfg.Procs; r++ {
		if !protected[r] {
			victims = append(victims, r)
		}
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("faults: kill plan has no unprotected ranks among %d", cfg.Procs)
	}
	rng := rand.New(rand.NewSource(deriveSeed(seed, "killplan")))
	plan := &KillPlan{Seed: seed}
	used := make(map[[2]int]bool) // (round, victim) pairs already taken
	lastRound := cfg.Rounds - 2
	for i := 0; i < cfg.Kills; i++ {
		ev := KillEvent{
			Round:        1 + rng.Intn(lastRound),
			Victim:       victims[rng.Intn(len(victims))],
			RestartAfter: 1 + rng.Intn(cfg.MaxRestartRounds),
		}
		key := [2]int{ev.Round, ev.Victim}
		if used[key] {
			// Redraw collisions rather than skipping so Kills is exact;
			// bail out if the space is saturated.
			if len(used) >= lastRound*len(victims) {
				return nil, fmt.Errorf("faults: kill plan cannot place %d kills in %d rounds × %d victims",
					cfg.Kills, lastRound, len(victims))
			}
			i--
			continue
		}
		used[key] = true
		plan.Events = append(plan.Events, ev)
	}
	sort.Slice(plan.Events, func(i, j int) bool {
		a, b := plan.Events[i], plan.Events[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Victim < b.Victim
	})
	return plan, nil
}

// Crashes lowers the plan to the simulator's absolute-time crash list:
// round r spans [r·interval, (r+1)·interval), a kill lands mid-round
// and the restart at the start of round r+RestartAfter. The result
// plugs straight into Plan.Crashes.
func (p *KillPlan) Crashes(interval sim.Time) []Crash {
	out := make([]Crash, len(p.Events))
	for i, ev := range p.Events {
		out[i] = Crash{
			At:      sim.Time(ev.Round)*interval + interval/2,
			Node:    ev.Victim,
			Restart: sim.Time(ev.Round+ev.RestartAfter) * interval,
		}
	}
	return out
}

// Package faults is the deterministic fault-injection layer: it decides
// the fate of every message the simulation offers to sim.Engine.Deliver
// — dropped, duplicated, delayed — and executes scheduled node
// crash/restart plans and underlay partitions, all as a pure function of
// (seed, Plan).
//
// Determinism is the load-bearing property. Every fault family draws
// from its own derived-seed RNG stream (drop decisions, duplication
// decisions, latency jitter, restart identifier draws), so a given
// (seed, Plan) replays byte-identically, and none of the streams touch
// the engine RNG: attaching an Injector with an empty Plan perturbs
// nothing — the run stays byte-identical to one without a fault layer,
// composing with the ring's BulkAddNodes determinism. The injector, like
// the engine it filters, is single-goroutine: multi-trial sweeps build
// one injector per trial engine (the randcontract analyzer enforces
// this, exactly as it does for Engine.Rand).
//
// What can be injected:
//
//   - per-kind (or uniform) message drop and duplication probabilities
//   - extra per-copy latency jitter, uniform in [0, JitterMax]
//   - scheduled node crashes with optional restarts (the restarted node
//     rejoins as a fresh ring member with the crashed node's underlay
//     position, capacity and virtual-server count)
//   - underlay partitions: an arbitrary node bipartition, or a transit
//     domain cut computed by DomainCut, active for a time window —
//     messages crossing the cut are dropped in both directions
//
// The layers above (internal/protocol's acks/retries and two-phase VST
// handoff) are hardened to keep load conserved under any of these; the
// chord.Ring.CheckConservation checker verifies it after every round in
// the fault tests.
package faults

import (
	"fmt"
	"math/rand"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/metrics"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
)

// Partition isolates a set of nodes for a window of virtual time:
// while From <= now < Until, messages between a node in Side and a node
// outside it are dropped (both directions). Side holds physical-node
// indexes (chord.Node.Index); nodes created after the plan was written
// (restarts, joins) have fresh indexes and therefore sit outside Side.
type Partition struct {
	From, Until sim.Time
	Side        []int
}

// Crash schedules one node failure: node Node (a chord.Node.Index)
// crashes at time At; if Restart is nonzero it must be later than At,
// and a replacement node rejoins then with the crashed node's underlay
// position, capacity and virtual-server count (fresh identifiers drawn
// from the injector's restart stream — a restart is a re-join, not a
// resurrection, so the replacement has a fresh index).
type Crash struct {
	At      sim.Time
	Node    int
	Restart sim.Time
}

// Plan declares what to inject. The zero value injects nothing.
type Plan struct {
	// Drop is the uniform per-message drop probability; DropByKind
	// overrides it for specific message kinds.
	Drop       float64
	DropByKind map[string]float64
	// Duplicate is the per-message duplication probability (a duplicated
	// message is delivered twice); DuplicateByKind overrides per kind.
	Duplicate       float64
	DuplicateByKind map[string]float64
	// JitterMax adds uniform extra latency in [0, JitterMax] to every
	// delivered copy. 0 disables jitter.
	JitterMax sim.Time
	// Partitions and Crashes are executed on attach; windows and times
	// are absolute virtual times.
	Partitions []Partition
	Crashes    []Crash
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return p.Drop == 0 && len(p.DropByKind) == 0 &&
		p.Duplicate == 0 && len(p.DuplicateByKind) == 0 &&
		p.JitterMax == 0 && len(p.Partitions) == 0 && len(p.Crashes) == 0
}

// Validate checks the plan's ranges.
func (p Plan) Validate() error {
	checkRate := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", name, v)
		}
		return nil
	}
	if err := checkRate("drop", p.Drop); err != nil {
		return err
	}
	if err := checkRate("duplicate", p.Duplicate); err != nil {
		return err
	}
	for k, v := range p.DropByKind {
		if err := checkRate("drop["+k+"]", v); err != nil {
			return err
		}
	}
	for k, v := range p.DuplicateByKind {
		if err := checkRate("duplicate["+k+"]", v); err != nil {
			return err
		}
	}
	if p.JitterMax < 0 {
		return fmt.Errorf("faults: negative jitter %d", p.JitterMax)
	}
	for i, w := range p.Partitions {
		if w.Until <= w.From {
			return fmt.Errorf("faults: partition %d window [%d,%d) is empty", i, w.From, w.Until)
		}
		if len(w.Side) == 0 {
			return fmt.Errorf("faults: partition %d has an empty side", i)
		}
	}
	for i, c := range p.Crashes {
		if c.At < 0 || c.Node < 0 {
			return fmt.Errorf("faults: crash %d has negative time or node", i)
		}
		if c.Restart != 0 && c.Restart <= c.At {
			return fmt.Errorf("faults: crash %d restarts at %d, not after crash at %d", i, c.Restart, c.At)
		}
	}
	return nil
}

// deriveSeed derives an independent RNG stream seed from the base seed
// and a stream tag (FNV-1a over the tag, mixed with the seed), so each
// fault family replays identically regardless of how often the others
// draw.
func deriveSeed(seed int64, stream string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime
	}
	return int64(uint64(seed)*0x9E3779B97F4A7C15 ^ h)
}

// Injector implements sim.MessageFilter for one engine. Like the engine
// it filters, it is single-goroutine; per-trial sweeps create one per
// trial.
type Injector struct {
	plan Plan
	ring *chord.Ring
	eng  *sim.Engine

	drop, dup, jitter, ids *rand.Rand
	sides                  []map[int]bool
	scratch                [2]sim.Time

	dropped    int64
	duplicated int64
	crashed    int
	restarted  int

	mDropped, mDuplicated *metrics.Counter
}

// New returns an unattached injector for the plan. The seed is the
// fault layer's own base seed — conventionally the engine seed, but any
// value works; it only has to be fixed for reproducibility.
func New(seed int64, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:   plan,
		drop:   rand.New(rand.NewSource(deriveSeed(seed, "drop"))),
		dup:    rand.New(rand.NewSource(deriveSeed(seed, "duplicate"))),
		jitter: rand.New(rand.NewSource(deriveSeed(seed, "jitter"))),
		ids:    rand.New(rand.NewSource(deriveSeed(seed, "restart-ids"))),
	}
	for _, w := range plan.Partitions {
		side := make(map[int]bool, len(w.Side))
		for _, idx := range w.Side {
			side[idx] = true
		}
		in.sides = append(in.sides, side)
	}
	return in, nil
}

// Attach installs the injector as the ring engine's message filter and
// schedules the plan's crash/restart events (absolute times; events in
// the past fire immediately). Attach once, before the simulation runs.
func (in *Injector) Attach(ring *chord.Ring) error {
	if in.ring != nil {
		return fmt.Errorf("faults: injector already attached")
	}
	in.ring = ring
	in.eng = ring.Engine()
	in.eng.SetFilter(in)
	if reg := in.eng.Metrics(); reg != nil {
		in.mDropped = reg.Counter("faults.dropped")
		in.mDuplicated = reg.Counter("faults.duplicated")
	}
	for _, c := range in.plan.Crashes {
		c := c
		delay := c.At - in.eng.Now()
		if delay < 0 {
			delay = 0
		}
		in.eng.Schedule(delay, func() { in.crash(c) })
	}
	return nil
}

// Detach removes the injector from its engine; scheduled crash events
// already queued still fire.
func (in *Injector) Detach() {
	if in.eng != nil {
		in.eng.SetFilter(nil)
	}
}

// Dropped returns how many messages the injector dropped (loss and
// partition cuts combined).
func (in *Injector) Dropped() int64 { return in.dropped }

// Duplicated returns how many messages were delivered twice.
func (in *Injector) Duplicated() int64 { return in.duplicated }

// Crashes returns how many scheduled crashes have executed.
func (in *Injector) Crashes() int { return in.crashed }

// Restarts returns how many crashed nodes have rejoined.
func (in *Injector) Restarts() int { return in.restarted }

// Deliveries implements sim.MessageFilter: partition cuts first (no
// randomness), then one drop draw, one duplication draw (only when the
// kind has a nonzero rate — rates of zero consume nothing, keeping an
// empty plan's streams untouched), then one jitter draw per copy.
func (in *Injector) Deliveries(kind string, src, dst int, now, cost sim.Time) []sim.Time {
	if in.cut(src, dst, now) {
		in.countDrop()
		return nil
	}
	if rate := rateFor(in.plan.Drop, in.plan.DropByKind, kind); rate > 0 && in.drop.Float64() < rate {
		in.countDrop()
		return nil
	}
	copies := 1
	if rate := rateFor(in.plan.Duplicate, in.plan.DuplicateByKind, kind); rate > 0 && in.dup.Float64() < rate {
		copies = 2
		in.duplicated++
		if in.mDuplicated != nil {
			in.mDuplicated.Inc()
		}
	}
	out := in.scratch[:0]
	for i := 0; i < copies; i++ {
		var extra sim.Time
		if in.plan.JitterMax > 0 {
			extra = sim.Time(in.jitter.Int63n(int64(in.plan.JitterMax) + 1))
		}
		out = append(out, extra)
	}
	return out
}

func (in *Injector) countDrop() {
	in.dropped++
	if in.mDropped != nil {
		in.mDropped.Inc()
	}
}

// cut reports whether an active partition separates src and dst.
// Messages without both endpoints (sim.NoNode) cannot cross a cut.
func (in *Injector) cut(src, dst int, now sim.Time) bool {
	if src < 0 || dst < 0 {
		return false
	}
	for i, w := range in.plan.Partitions {
		if now >= w.From && now < w.Until && in.sides[i][src] != in.sides[i][dst] {
			return true
		}
	}
	return false
}

func rateFor(base float64, byKind map[string]float64, kind string) float64 {
	if v, ok := byKind[kind]; ok {
		return v
	}
	return base
}

// crash executes one scheduled failure. Out-of-range or already-dead
// targets are skipped — a plan may outlive the membership it was
// written against.
func (in *Injector) crash(c Crash) {
	nodes := in.ring.Nodes()
	if c.Node >= len(nodes) {
		return
	}
	n := nodes[c.Node]
	if !n.Alive {
		return
	}
	underlay, capacity, numVS := n.Underlay, n.Capacity, len(n.VServers())
	in.ring.RemoveNode(n)
	in.crashed++
	if reg := in.eng.Metrics(); reg != nil {
		reg.Counter("faults.crashes").Inc()
	}
	if c.Restart == 0 {
		return
	}
	in.eng.Schedule(c.Restart-c.At, func() {
		in.restart(underlay, capacity, numVS)
	})
}

// restart rejoins a crashed node's replacement: same underlay position
// and capacity, the same number of virtual servers, identifiers drawn
// from the injector's restart stream (never the engine RNG, so restarts
// do not shift the simulation's own draws).
func (in *Injector) restart(underlay topology.NodeID, capacity float64, numVS int) {
	ids := make([]ident.ID, 0, numVS)
	seen := make(map[ident.ID]bool, numVS)
	for len(ids) < numVS {
		id := ident.ID(in.ids.Uint32())
		if seen[id] {
			continue
		}
		if vs := in.ring.Successor(id); vs != nil && vs.ID == id {
			continue // occupied on the ring
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if _, err := in.ring.AddNodeWithIDs(underlay, capacity, ids); err != nil {
		// Identifiers were checked free just above on the same
		// single-goroutine engine; a failure here is a programming error.
		panic(fmt.Sprintf("faults: restart join failed: %v", err))
	}
	in.restarted++
	if reg := in.eng.Metrics(); reg != nil {
		reg.Counter("faults.restarts").Inc()
	}
}

// DomainCut computes the partition side created by the failure of one
// underlay domain: with the domain's nodes gone, it floods the topology
// from every surviving transit node and returns the indexes of ring
// nodes whose underlay position is in the failed domain or unreachable
// from the surviving transit core. Cutting a transit domain this way
// severs its attached stub domains from the rest of the network — the
// paper's "lost a region of the underlay" scenario.
func DomainCut(g *topology.Graph, ring *chord.Ring, domain int) []int {
	reachable := make([]bool, g.NumNodes())
	var queue []topology.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		nid := topology.NodeID(id)
		node := g.Node(nid)
		if node.Kind == topology.Transit && node.Domain != domain {
			reachable[id] = true
			queue = append(queue, nid)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(cur) {
			if reachable[e.To] || g.Node(e.To).Domain == domain {
				continue
			}
			reachable[e.To] = true
			queue = append(queue, e.To)
		}
	}
	var side []int
	for _, n := range ring.Nodes() {
		if n.Underlay < 0 {
			continue
		}
		if g.Node(n.Underlay).Domain == domain || !reachable[n.Underlay] {
			side = append(side, n.Index)
		}
	}
	return side
}

package faults

import (
	"sync"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Drop: -0.1},
		{Drop: 1.5},
		{Duplicate: 2},
		{DropByKind: map[string]float64{"x": -1}},
		{DuplicateByKind: map[string]float64{"x": 7}},
		{JitterMax: -3},
		{Partitions: []Partition{{From: 10, Until: 10, Side: []int{0}}}},
		{Partitions: []Partition{{From: 0, Until: 5}}},
		{Crashes: []Crash{{At: -1, Node: 0}}},
		{Crashes: []Crash{{At: 5, Node: -2}}},
		{Crashes: []Crash{{At: 5, Node: 0, Restart: 5}}},
	}
	for i, p := range bad {
		if _, err := New(1, p); err == nil {
			t.Errorf("plan %d: expected validation error, got none", i)
		}
	}
	if _, err := New(1, Plan{Drop: 0.3, JitterMax: 4}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
	if (Plan{JitterMax: 1}).Empty() {
		t.Error("jittering plan reported Empty")
	}
}

// TestDeterminism replays an identical offer sequence through two
// injectors with the same (seed, plan) and requires identical fates.
func TestDeterminism(t *testing.T) {
	plan := Plan{
		Drop:       0.2,
		DropByKind: map[string]float64{"b": 0.5},
		Duplicate:  0.3,
		JitterMax:  7,
	}
	run := func() ([]int, []sim.Time) {
		in, err := New(42, plan)
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		var extras []sim.Time
		for i := 0; i < 2000; i++ {
			kind := "a"
			if i%3 == 0 {
				kind = "b"
			}
			out := in.Deliveries(kind, i%10, (i+1)%10, sim.Time(i), 5)
			counts = append(counts, len(out))
			extras = append(extras, append([]sim.Time(nil), out...)...)
		}
		return counts, extras
	}
	c1, e1 := run()
	c2, e2 := run()
	if len(c1) != len(c2) || len(e1) != len(e2) {
		t.Fatal("replay produced different shapes")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("offer %d: %d copies vs %d", i, c1[i], c2[i])
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("extra %d: %d vs %d", i, e1[i], e2[i])
		}
	}
}

// TestEmptyPlanPassthrough attaches an empty-plan injector and requires
// the run to stay byte-identical to one with no fault layer at all:
// same counts, same costs, same clock, and an untouched engine RNG.
func TestEmptyPlanPassthrough(t *testing.T) {
	runRing := func(attach bool) (*sim.Engine, int64) {
		eng := sim.NewEngine(7)
		r := chord.NewRing(eng, chord.Config{})
		for i := 0; i < 4; i++ {
			r.AddNode(-1, 100, 3)
		}
		if attach {
			in, err := New(7, Plan{})
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Attach(r); err != nil {
				t.Fatal(err)
			}
		}
		var delivered int64
		for i := 0; i < 50; i++ {
			i := i
			eng.Deliver("k", i%4, (i+1)%4, sim.Time(1+i%5), func() { delivered++ })
		}
		eng.Run()
		return eng, delivered
	}
	engA, dA := runRing(false)
	engB, dB := runRing(true)
	if dA != dB {
		t.Fatalf("delivered %d without filter, %d with empty plan", dA, dB)
	}
	if engA.MessageCount("k") != engB.MessageCount("k") || engA.MessageCost("k") != engB.MessageCost("k") {
		t.Fatal("message accounting diverged under empty plan")
	}
	if engA.Now() != engB.Now() {
		t.Fatalf("clock diverged: %d vs %d", engA.Now(), engB.Now())
	}
	if engB.DroppedTotal() != 0 {
		t.Fatalf("empty plan dropped %d messages", engB.DroppedTotal())
	}
	if a, b := engA.Rand().Int63(), engB.Rand().Int63(); a != b {
		t.Fatal("engine RNG stream shifted by the fault layer")
	}
}

func TestDropRateAndAccounting(t *testing.T) {
	in, err := New(3, Plan{Drop: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	const offers = 20000
	delivered := 0
	for i := 0; i < offers; i++ {
		if len(in.Deliveries("k", 0, 1, 0, 1)) > 0 {
			delivered++
		}
	}
	frac := float64(offers-delivered) / offers
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("drop fraction %.3f far from 0.3", frac)
	}
	if got := in.Dropped(); got != int64(offers-delivered) {
		t.Fatalf("Dropped() = %d, want %d", got, offers-delivered)
	}
}

func TestDropByKindOverride(t *testing.T) {
	in, err := New(3, Plan{DropByKind: map[string]float64{"doomed": 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if len(in.Deliveries("doomed", 0, 1, 0, 1)) != 0 {
			t.Fatal("kind with rate 1 survived")
		}
		if len(in.Deliveries("fine", 0, 1, 0, 1)) != 1 {
			t.Fatal("kind with base rate 0 was dropped or duplicated")
		}
	}
}

func TestDuplicationAndJitter(t *testing.T) {
	in, err := New(9, Plan{Duplicate: 1, JitterMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	sawNonzero := false
	for i := 0; i < 500; i++ {
		out := in.Deliveries("k", 0, 1, 0, 1)
		if len(out) != 2 {
			t.Fatalf("Duplicate=1 produced %d copies", len(out))
		}
		for _, extra := range out {
			if extra < 0 || extra > 5 {
				t.Fatalf("jitter %d outside [0,5]", extra)
			}
			if extra > 0 {
				sawNonzero = true
			}
		}
	}
	if !sawNonzero {
		t.Fatal("JitterMax=5 never produced nonzero jitter")
	}
	if in.Duplicated() != 500 {
		t.Fatalf("Duplicated() = %d, want 500", in.Duplicated())
	}
}

func TestPartitionWindow(t *testing.T) {
	in, err := New(1, Plan{Partitions: []Partition{{From: 10, Until: 20, Side: []int{0, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src, dst int
		now      sim.Time
		want     int
	}{
		{0, 1, 15, 0},          // cross-cut, inside window
		{1, 0, 15, 0},          // cut is bidirectional
		{0, 2, 15, 1},          // same side
		{1, 3, 15, 1},          // both outside the side
		{0, 1, 5, 1},           // before the window
		{0, 1, 20, 1},          // window is half-open
		{sim.NoNode, 1, 15, 1}, // no src identity: passes
		{0, sim.NoNode, 15, 1}, // no dst identity: passes
	}
	for i, c := range cases {
		if got := len(in.Deliveries("k", c.src, c.dst, c.now, 1)); got != c.want {
			t.Errorf("case %d (%d->%d at %d): %d copies, want %d", i, c.src, c.dst, c.now, got, c.want)
		}
	}
}

// TestCrashRestart crashes a node mid-run and requires its replacement
// to rejoin with the same underlay position, capacity and VS count,
// with ring invariants intact throughout.
func TestCrashRestart(t *testing.T) {
	eng := sim.NewEngine(5)
	r := chord.NewRing(eng, chord.Config{})
	for i := 0; i < 4; i++ {
		r.AddNode(-1, 50+float64(i), 4)
	}
	in, err := New(5, Plan{Crashes: []Crash{
		{At: 100, Node: 1, Restart: 250},
		{At: 120, Node: 3}, // stays down
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(r); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(150)
	alive := 0
	for _, n := range r.Nodes() {
		if n.Alive {
			alive++
		}
	}
	if alive != 2 {
		t.Fatalf("after crashes: %d alive nodes, want 2", alive)
	}
	if in.Crashes() != 2 || in.Restarts() != 0 {
		t.Fatalf("mid-run: crashes=%d restarts=%d", in.Crashes(), in.Restarts())
	}
	eng.Run()
	if in.Restarts() != 1 {
		t.Fatalf("restarts=%d, want 1", in.Restarts())
	}
	nodes := r.Nodes()
	reborn := nodes[len(nodes)-1]
	if !reborn.Alive || reborn.Capacity != 51 || reborn.Underlay != -1 {
		t.Fatalf("replacement node wrong: alive=%v capacity=%v underlay=%v",
			reborn.Alive, reborn.Capacity, reborn.Underlay)
	}
	if got := len(reborn.VServers()); got != 4 {
		t.Fatalf("replacement hosts %d VSs, want 4", got)
	}
	r.CheckInvariants()

	// Crashing an index that no longer exists or is already dead is a
	// no-op, not a panic.
	in2, err := New(6, Plan{Crashes: []Crash{{At: 1, Node: 99}, {At: 2, Node: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := r.Engine()
	_ = eng2
	in.Detach()
	if err := in2.Attach(r); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if in2.Crashes() != 0 {
		t.Fatalf("stale crash plan executed %d crashes, want 0", in2.Crashes())
	}
}

func TestDomainCut(t *testing.T) {
	g, err := topology.Generate(topology.TS5kSmall(11))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(11)
	r := chord.NewRing(eng, chord.Config{})
	stubs := g.StubNodes()
	for i := 0; i < 40; i++ {
		r.AddNode(stubs[(i*37)%len(stubs)], 100, 2)
	}
	side := DomainCut(g, r, 0)
	if len(side) == 0 {
		t.Fatal("cutting transit domain 0 isolated nobody")
	}
	inSide := make(map[int]bool, len(side))
	for _, idx := range side {
		inSide[idx] = true
	}
	for _, n := range r.Nodes() {
		if g.Node(n.Underlay).Domain == 0 && !inSide[n.Index] {
			t.Fatalf("node %d sits in the failed domain but is not on the cut side", n.Index)
		}
	}
	if len(side) == len(r.Nodes()) {
		t.Fatal("cut swallowed the whole ring — no surviving side")
	}
}

// TestInjectorPerTrialRace exercises the documented deployment pattern
// under -race: one engine + one injector per goroutine, no sharing.
func TestInjectorPerTrialRace(t *testing.T) {
	var wg sync.WaitGroup
	for trial := 0; trial < 4; trial++ {
		trial := trial
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := sim.NewEngine(int64(trial))
			r := chord.NewRing(eng, chord.Config{})
			for i := 0; i < 3; i++ {
				r.AddNode(-1, 100, 2)
			}
			in, err := New(int64(trial), Plan{Drop: 0.1, JitterMax: 3})
			if err != nil {
				t.Error(err)
				return
			}
			if err := in.Attach(r); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				eng.Deliver("k", i%3, (i+1)%3, 2, func() {})
			}
			eng.Run()
		}()
	}
	wg.Wait()
}

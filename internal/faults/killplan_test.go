package faults

import (
	"encoding/json"
	"testing"

	"p2plb/internal/sim"
)

func TestKillPlanDeterministic(t *testing.T) {
	cfg := KillPlanConfig{Rounds: 12, Procs: 8, Kills: 5, Protect: []int{0}}
	a, err := NewKillPlan(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKillPlan(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same (seed, config) produced different plans:\n%s\n%s", ja, jb)
	}
	c, err := NewKillPlan(43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestKillPlanRespectsBounds(t *testing.T) {
	cfg := KillPlanConfig{Rounds: 10, Procs: 6, Kills: 12, Protect: []int{0, 3}, MaxRestartRounds: 2}
	p, err := NewKillPlan(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != cfg.Kills {
		t.Fatalf("got %d events, want %d", len(p.Events), cfg.Kills)
	}
	seen := make(map[[2]int]bool)
	for _, ev := range p.Events {
		if ev.Victim == 0 || ev.Victim == 3 {
			t.Fatalf("protected rank %d was killed", ev.Victim)
		}
		if ev.Victim < 0 || ev.Victim >= cfg.Procs {
			t.Fatalf("victim %d outside [0,%d)", ev.Victim, cfg.Procs)
		}
		if ev.Round < 1 || ev.Round > cfg.Rounds-2 {
			t.Fatalf("round %d outside [1,%d]", ev.Round, cfg.Rounds-2)
		}
		if ev.RestartAfter < 1 || ev.RestartAfter > cfg.MaxRestartRounds {
			t.Fatalf("restart-after %d outside [1,%d]", ev.RestartAfter, cfg.MaxRestartRounds)
		}
		key := [2]int{ev.Round, ev.Victim}
		if seen[key] {
			t.Fatalf("victim %d killed twice in round %d", ev.Victim, ev.Round)
		}
		seen[key] = true
	}
	for i := 1; i < len(p.Events); i++ {
		a, b := p.Events[i-1], p.Events[i]
		if a.Round > b.Round || (a.Round == b.Round && a.Victim >= b.Victim) {
			t.Fatal("events not sorted by (round, victim)")
		}
	}
}

func TestKillPlanRejectsImpossible(t *testing.T) {
	if _, err := NewKillPlan(1, KillPlanConfig{Rounds: 3, Procs: 4, Kills: 1}); err == nil {
		t.Fatal("accepted a 3-round horizon")
	}
	if _, err := NewKillPlan(1, KillPlanConfig{Rounds: 8, Procs: 2, Kills: 1, Protect: []int{0, 1}}); err == nil {
		t.Fatal("accepted a fully protected cluster")
	}
	if _, err := NewKillPlan(1, KillPlanConfig{Rounds: 4, Procs: 2, Kills: 9, Protect: []int{0}}); err == nil {
		t.Fatal("accepted more kills than (round, victim) slots")
	}
}

// TestKillPlanCrashAdapter checks the lowering into the simulator's
// absolute-time crash schedule and that the result drives the existing
// injector end to end.
func TestKillPlanCrashAdapter(t *testing.T) {
	p, err := NewKillPlan(42, KillPlanConfig{Rounds: 12, Procs: 8, Kills: 4, Protect: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	const interval = sim.Time(1000)
	crashes := p.Crashes(interval)
	if len(crashes) != len(p.Events) {
		t.Fatalf("got %d crashes, want %d", len(crashes), len(p.Events))
	}
	for i, c := range crashes {
		ev := p.Events[i]
		if c.Node != ev.Victim {
			t.Fatalf("crash %d targets %d, want %d", i, c.Node, ev.Victim)
		}
		wantAt := sim.Time(ev.Round)*interval + interval/2
		if c.At != wantAt {
			t.Fatalf("crash %d at %d, want %d", i, c.At, wantAt)
		}
		wantRestart := sim.Time(ev.Round+ev.RestartAfter) * interval
		if c.Restart != wantRestart {
			t.Fatalf("crash %d restarts at %d, want %d", i, c.Restart, wantRestart)
		}
		if c.Restart <= c.At {
			t.Fatalf("crash %d restart %d not after kill %d", i, c.Restart, c.At)
		}
	}
}

package rao

import (
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

func fixture(seed int64, nodes, vsPer int) *chord.Ring {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), vsPer)
	}
	mu := float64(nodes) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	return ring
}

func TestValidation(t *testing.T) {
	ring := fixture(1, 16, 3)
	if _, err := Run(ring, Config{Epsilon: -1}, 5); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := Run(ring, Config{Scheme: Scheme(9)}, 5); err == nil {
		t.Error("unknown scheme should fail")
	}
	if _, err := Run(ring, Config{}, 0); err == nil {
		t.Error("zero rounds should fail")
	}
	empty := chord.NewRing(sim.NewEngine(1), chord.Config{})
	if _, err := Run(empty, Config{}, 5); err == nil {
		t.Error("empty ring should fail")
	}
	if _, err := Run(ring, Config{ProbesPerLight: -1}, 5); err == nil {
		t.Error("negative probes should fail")
	}
}

func TestSchemeStrings(t *testing.T) {
	if OneToOne.String() != "one-to-one" || OneToMany.String() != "one-to-many" ||
		ManyToMany.String() != "many-to-many" {
		t.Fatal("scheme strings wrong")
	}
}

func TestManyToManyConvergesFast(t *testing.T) {
	ring := fixture(2, 192, 5)
	res, err := Run(ring, Config{Scheme: ManyToMany, Epsilon: 0.05}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyStart < 96 {
		t.Fatalf("fixture too tame: %d heavy", res.HeavyStart)
	}
	if !res.Converged {
		t.Errorf("many-to-many did not converge: %d heavy after %d rounds",
			res.HeavyEnd, res.Rounds)
	}
	if res.Rounds > 3 {
		t.Errorf("many-to-many needed %d rounds, want <= 3 (global matching)", res.Rounds)
	}
	if res.MovedLoad <= 0 || res.MovedByHops.Total() != res.MovedLoad {
		t.Error("moved-load accounting inconsistent")
	}
	ring.CheckInvariants()
}

func TestOneToManyConverges(t *testing.T) {
	ring := fixture(3, 160, 5)
	res, err := Run(ring, Config{Scheme: OneToMany, Epsilon: 0.05, Directories: 8}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyEnd > res.HeavyStart/10 {
		t.Errorf("one-to-many barely progressed: %d -> %d heavy", res.HeavyStart, res.HeavyEnd)
	}
	if ring.Engine().MessageCount(MsgRegister) == 0 || ring.Engine().MessageCount(MsgQuery) == 0 {
		t.Error("directory traffic not accounted")
	}
	ring.CheckInvariants()
}

func TestOneToOneProgressesSlowly(t *testing.T) {
	ring := fixture(4, 160, 5)
	res, err := Run(ring, Config{Scheme: OneToOne, Epsilon: 0.05, ProbesPerLight: 8}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes == 0 {
		t.Fatal("no probes issued")
	}
	if res.ProbeHits == 0 {
		t.Fatal("no probe ever hit a heavy node (most nodes are heavy!)")
	}
	if res.MovedLoad <= 0 {
		t.Fatal("one-to-one moved nothing")
	}
	if res.HeavyEnd >= res.HeavyStart {
		t.Errorf("no progress: %d -> %d heavy", res.HeavyStart, res.HeavyEnd)
	}
	ring.CheckInvariants()
}

func TestSchemeOrdering(t *testing.T) {
	// For the same budget of rounds, the schemes should order
	// many-to-many <= one-to-many <= one-to-one in residual heavy nodes
	// (the ordering Rao et al. report).
	rounds := 4
	residual := map[Scheme]int{}
	for _, s := range []Scheme{OneToOne, OneToMany, ManyToMany} {
		ring := fixture(5, 192, 5)
		res, err := Run(ring, Config{Scheme: s, Epsilon: 0.05}, rounds)
		if err != nil {
			t.Fatal(err)
		}
		residual[s] = res.HeavyEnd
	}
	t.Logf("residual heavy after %d rounds: 1-1=%d 1-M=%d M-M=%d",
		rounds, residual[OneToOne], residual[OneToMany], residual[ManyToMany])
	if residual[ManyToMany] > residual[OneToMany] {
		t.Errorf("many-to-many (%d) worse than one-to-many (%d)",
			residual[ManyToMany], residual[OneToMany])
	}
	if residual[OneToMany] > residual[OneToOne] {
		t.Errorf("one-to-many (%d) worse than one-to-one (%d)",
			residual[OneToMany], residual[OneToOne])
	}
}

func TestDeterministic(t *testing.T) {
	run := func() *Result {
		ring := fixture(6, 96, 4)
		res, err := Run(ring, Config{Scheme: OneToOne, Epsilon: 0.05}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MovedLoad != b.MovedLoad || a.Probes != b.Probes || a.Transfers != b.Transfers {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBestShedVS(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	n := ring.AddNode(-1, 10, 4)
	loads := []float64{5, 12, 7, 0}
	for i, vs := range n.VServers() {
		vs.Load = loads[i]
	}
	if vs := bestShedVS(n, 8); vs == nil || vs.Load != 7 {
		t.Fatalf("bestShedVS(8) = %v, want load 7", vs)
	}
	if vs := bestShedVS(n, 100); vs == nil || vs.Load != 12 {
		t.Fatalf("bestShedVS(100) = %v, want load 12", vs)
	}
	if vs := bestShedVS(n, 3); vs != nil {
		t.Fatalf("bestShedVS(3) = %v, want nil", vs)
	}
}

// Package rao implements the three virtual-server load-balancing
// schemes of Rao, Lakshminarayanan, Surana, Karp and Stoica ("Load
// Balancing in Structured P2P Systems", IPTPS 2003) — the prior work
// the paper extends (§1.1). They move load heavy→light in units of
// virtual servers, like the paper's scheme, but rendezvous differently
// and ignore physical proximity entirely:
//
//   - OneToOne: each light node probes random DHT keys; when a probe
//     lands on a heavy node, one virtual server moves to the prober.
//   - OneToMany: light nodes register with random directory nodes;
//     each heavy node queries one directory and sheds to the best-fit
//     registered light nodes.
//   - ManyToMany: directories aggregate many heavy and light nodes and
//     run a global best-fit matching (the strongest of the three).
//
// Running them over the same ring, workload and target definition as
// internal/core isolates exactly what the paper's tree rendezvous and
// proximity guidance add: compare convergence rounds, probe traffic,
// and the moved-load-versus-distance histograms.
package rao

import (
	"fmt"
	"math"
	"sort"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ident"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// Scheme selects one of the three Rao et al. schemes.
type Scheme int

// Schemes.
const (
	OneToOne Scheme = iota
	OneToMany
	ManyToMany
)

func (s Scheme) String() string {
	switch s {
	case OneToOne:
		return "one-to-one"
	case OneToMany:
		return "one-to-many"
	default:
		return "many-to-many"
	}
}

// Message kinds counted on the engine.
const (
	MsgProbe    = "rao.probe"    // a light node's random probe (routed lookup)
	MsgRegister = "rao.register" // light node → directory registration
	MsgQuery    = "rao.query"    // heavy node → directory query
	MsgTransfer = "rao.transfer" // virtual server movement
)

// Config parameterizes a run.
type Config struct {
	Scheme Scheme
	// Epsilon is the target slack, as in core.Config.
	Epsilon float64
	// ProbesPerLight is how many random probes each light node issues
	// per round (OneToOne). Default 16.
	ProbesPerLight int
	// Directories is the number of directory nodes (OneToMany,
	// ManyToMany). Default 16.
	Directories int
	// TransferCost reports transfer distance for the histogram (same
	// semantics as core.Config.TransferCost). nil uses ring latency.
	TransferCost func(from, to *chord.Node) int
}

func (c *Config) fill() {
	if c.ProbesPerLight == 0 {
		c.ProbesPerLight = 16
	}
	if c.Directories == 0 {
		c.Directories = 16
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Epsilon < 0 {
		return fmt.Errorf("rao: negative epsilon %v", c.Epsilon)
	}
	if c.Scheme < OneToOne || c.Scheme > ManyToMany {
		return fmt.Errorf("rao: unknown scheme %d", int(c.Scheme))
	}
	if c.ProbesPerLight < 0 || c.Directories < 0 {
		return fmt.Errorf("rao: negative probe/directory count")
	}
	return nil
}

// Result reports a run.
type Result struct {
	Scheme Scheme
	// Rounds executed before convergence (no heavy nodes) or the cap.
	Rounds    int
	Converged bool
	// Probes counts OneToOne random probes; ProbeHits how many landed
	// on a heavy node.
	Probes    int
	ProbeHits int
	// Transfers and MovedLoad mirror core.Result.
	Transfers   int
	MovedLoad   float64
	MovedByHops *stats.WeightedHistogram
	HeavyStart  int
	HeavyEnd    int
}

// Run executes rounds of the chosen scheme until no node is heavy or
// maxRounds is reached.
func Run(ring *chord.Ring, cfg Config, maxRounds int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	if ring.NumVServers() == 0 {
		return nil, fmt.Errorf("rao: ring has no virtual servers")
	}
	if maxRounds < 1 {
		return nil, fmt.Errorf("rao: need at least one round")
	}
	r := &runner{ring: ring, cfg: cfg, eng: ring.Engine()}
	res := &Result{Scheme: cfg.Scheme, MovedByHops: &stats.WeightedHistogram{}}
	res.HeavyStart = len(r.heavyNodes())
	for res.Rounds = 0; res.Rounds < maxRounds; res.Rounds++ {
		if len(r.heavyNodes()) == 0 {
			res.Converged = true
			break
		}
		switch cfg.Scheme {
		case OneToOne:
			r.oneToOneRound(res)
		case OneToMany:
			r.oneToManyRound(res)
		case ManyToMany:
			r.manyToManyRound(res)
		}
	}
	res.HeavyEnd = len(r.heavyNodes())
	res.Converged = res.Converged || res.HeavyEnd == 0
	return res, nil
}

type runner struct {
	ring *chord.Ring
	cfg  Config
	eng  *sim.Engine
}

// global computes the <L, C, Lmin> tuple the targets derive from.
func (r *runner) global() core.LBI {
	var g core.LBI
	for _, n := range r.ring.Nodes() {
		if n.Alive {
			g = g.Merge(core.NodeLBI(n))
		}
	}
	return g
}

func (r *runner) target(n *chord.Node, g core.LBI) float64 {
	if g.C <= 0 {
		return 0
	}
	return (1 + r.cfg.Epsilon) * n.Capacity * (g.L / g.C)
}

func (r *runner) heavyNodes() []*chord.Node {
	g := r.global()
	var out []*chord.Node
	for _, n := range r.ring.Nodes() {
		if n.Alive && n.TotalLoad() > r.target(n, g) {
			out = append(out, n)
		}
	}
	return out
}

func (r *runner) lightNodes(g core.LBI) []*chord.Node {
	var out []*chord.Node
	for _, n := range r.ring.Nodes() {
		if !n.Alive {
			continue
		}
		if gap := r.target(n, g) - n.TotalLoad(); gap >= g.Lmin && gap > 0 {
			out = append(out, n)
		}
	}
	return out
}

// transfer moves vs to the light node and records it.
func (r *runner) transfer(vs *chord.VServer, to *chord.Node, res *Result) {
	from := vs.Owner
	hops := 0
	if r.cfg.TransferCost != nil {
		hops = r.cfg.TransferCost(from, to)
	} else {
		hops = int(r.ring.Latency(from, to))
	}
	r.eng.CountMessage(MsgTransfer, r.ring.Latency(from, to)+1)
	r.ring.Transfer(vs, to)
	res.Transfers++
	res.MovedLoad += vs.Load
	res.MovedByHops.Add(hops, vs.Load)
}

// bestShedVS returns the heaviest virtual server of the heavy node that
// fits within the light node's deficit (Rao et al.: "transfer the
// heaviest virtual server that would not overload the light node"), or
// nil if none fits.
func bestShedVS(heavy *chord.Node, deficit float64) *chord.VServer {
	var best *chord.VServer
	for _, vs := range heavy.VServers() {
		if vs.Load <= deficit && vs.Load > 0 && (best == nil || vs.Load > best.Load) {
			best = vs
		}
	}
	return best
}

// oneToOneRound: each light node issues random probes; probes landing
// on heavy nodes trigger one transfer each.
func (r *runner) oneToOneRound(res *Result) {
	g := r.global()
	probeCost := sim.Time(math.Ceil(math.Log2(float64(r.ring.NumVServers() + 1))))
	for _, light := range r.lightNodes(g) {
		deficit := r.target(light, g) - light.TotalLoad()
		for p := 0; p < r.cfg.ProbesPerLight && deficit >= g.Lmin; p++ {
			res.Probes++
			r.eng.CountMessage(MsgProbe, probeCost)
			key := ident.ID(r.eng.Rand().Uint32())
			owner := r.ring.Successor(key).Owner
			if owner == light || owner.TotalLoad() <= r.target(owner, g) {
				continue
			}
			res.ProbeHits++
			vs := bestShedVS(owner, deficit)
			if vs == nil {
				continue
			}
			r.transfer(vs, light, res)
			deficit -= vs.Load
		}
	}
}

// directories picks the directory-hosting nodes for this round
// (deterministically random distinct alive nodes).
func (r *runner) directories() []*chord.Node {
	alive := r.ring.AliveNodes()
	k := r.cfg.Directories
	if k > len(alive) {
		k = len(alive)
	}
	perm := r.eng.Rand().Perm(len(alive))
	out := make([]*chord.Node, k)
	for i := 0; i < k; i++ {
		out[i] = alive[perm[i]]
	}
	return out
}

// oneToManyRound: light nodes register at one random directory; each
// heavy node queries one random directory and sheds its excess to the
// best-fitting registered lights.
func (r *runner) oneToManyRound(res *Result) {
	g := r.global()
	dirs := r.directories()
	if len(dirs) == 0 {
		return
	}
	type reg struct {
		node    *chord.Node
		deficit float64
	}
	regs := make([][]reg, len(dirs))
	for _, light := range r.lightNodes(g) {
		d := r.eng.Rand().Intn(len(dirs))
		r.eng.CountMessage(MsgRegister, r.ring.Latency(light, dirs[d])+1)
		regs[d] = append(regs[d], reg{light, r.target(light, g) - light.TotalLoad()})
	}
	for d := range regs {
		sort.Slice(regs[d], func(i, j int) bool {
			if regs[d][i].deficit != regs[d][j].deficit {
				return regs[d][i].deficit < regs[d][j].deficit
			}
			return regs[d][i].node.Index < regs[d][j].node.Index
		})
	}
	for _, heavy := range r.heavyNodes() {
		d := r.eng.Rand().Intn(len(dirs))
		r.eng.CountMessage(MsgQuery, r.ring.Latency(heavy, dirs[d])+1)
		excess := heavy.TotalLoad() - r.target(heavy, g)
		for excess > 0 {
			// Shed the heaviest VS that fits some registered light.
			var vs *chord.VServer
			pick := -1
			for _, cand := range heavy.VServers() {
				if cand.Load <= 0 {
					continue
				}
				i := sort.Search(len(regs[d]), func(i int) bool {
					return regs[d][i].deficit >= cand.Load
				})
				if i == len(regs[d]) {
					continue
				}
				if vs == nil || cand.Load > vs.Load {
					vs, pick = cand, i
				}
			}
			if vs == nil {
				break
			}
			light := regs[d][pick]
			r.transfer(vs, light.node, res)
			excess -= vs.Load
			regs[d] = append(regs[d][:pick], regs[d][pick+1:]...)
			if rest := light.deficit - vs.Load; rest >= g.Lmin {
				i := sort.Search(len(regs[d]), func(i int) bool { return regs[d][i].deficit >= rest })
				regs[d] = append(regs[d], reg{})
				copy(regs[d][i+1:], regs[d][i:])
				regs[d][i] = reg{light.node, rest}
			}
		}
	}
}

// manyToManyRound: all heavy offers and light deficits meet in a global
// pool (the idealized many-to-many directory) and run the shared
// best-fit pairing.
func (r *runner) manyToManyRound(res *Result) {
	g := r.global()
	pl := &core.PairList{}
	dirs := r.directories()
	dir := dirs[0]
	for _, light := range r.lightNodes(g) {
		r.eng.CountMessage(MsgRegister, r.ring.Latency(light, dir)+1)
		pl.AddLight(r.target(light, g)-light.TotalLoad(), light, 0)
	}
	for _, heavy := range r.heavyNodes() {
		r.eng.CountMessage(MsgQuery, r.ring.Latency(heavy, dir)+1)
		st := core.ClassifyNode(heavy, g, r.cfg.Epsilon, core.SubsetAuto)
		for _, vs := range st.Offers {
			pl.AddOffer(vs, heavy, 0)
		}
	}
	for _, p := range pl.Pair(g.Lmin) {
		r.transfer(p.VS, p.To, res)
	}
}

package sim

import "math/bits"

// The event queue is a bucketed timer wheel (calendar queue) keyed on
// the integer virtual clock, replacing the original container/heap of
// boxed closures:
//
//   - Events with at < now+wheelSize land in per-tick buckets — plain
//     []event arenas appended in Schedule order, so the (at, seq)
//     firing order of the old heap degenerates to FIFO within a bucket
//     and costs O(1) per push with no interface boxing and no sift.
//     Same-(dst, tick) Deliver callbacks therefore coalesce into one
//     contiguous bucket run instead of paying one heap op each.
//   - Events at or beyond the wheel horizon park in a far min-heap
//     (manual, concrete-typed) ordered by (at, seq). Every clock
//     advance eagerly migrates far events that entered the horizon
//     into their buckets. Migration pops in (at, seq) order and any
//     direct bucket push for a tick T can only happen after the clock
//     crossed T−wheelSize (when migration for T already ran), so
//     bucket order remains globally seq-ordered per tick.
//   - Cancelable timers (After/Cancel) live in a slot arena with
//     generation counters. A parked far timer is removed from the heap
//     eagerly on cancel (the arena tracks its heap index); a bucketed
//     timer is released in place and its event skipped as stale at pop
//     time via the generation check.
//   - Every vacated slot — bucket cursor advances, far-heap tail after
//     a pop or removal — is zeroed so dead closures are not pinned for
//     the life of the run (the old eventHeap.Pop leaked its tail).
//
// The wheel itself is allocated lazily on first push: engines that only
// seed RNGs (livenet fixtures) never pay for it.
const (
	wheelBits = 16
	wheelSize = 1 << wheelBits // ticks covered by the near wheel
	wheelMask = wheelSize - 1
)

// event is one scheduled callback slot. Plain events carry a closure in
// fn or an object in ev (exactly one is set); timer-backed events (both
// nil) resolve through the timer arena, where slot/gen decide at pop
// time whether the timer is still armed.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	ev   Eventer
	slot int32 // timer arena index, -1 for plain events
	gen  uint32
}

// fire runs the event callback, whichever form it took.
//
//lbvet:hotpath
func (e *event) fire() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.ev.RunEvent()
}

// bucket holds all queued events of one tick, in seq order. next is the
// read cursor; slots behind it are zeroed.
type bucket struct {
	evs  []event
	next int
}

// timerSlot is one arena entry backing a cancelable timer.
type timerSlot struct {
	fn      func()
	ev      Eventer
	gen     uint32
	armed   bool
	heapIdx int32 // position in the far heap while parked there, else -1
	free    int32 // freelist link (index+1, 0 = end), meaningful only when !armed
}

// eventQueue is the timer wheel plus far heap plus timer arena. It has
// the same single-goroutine contract as the Engine that owns it.
type eventQueue struct {
	now     Time
	seq     uint64
	pending int // live (unfired, uncanceled) events

	buckets  []bucket // wheelSize ticks, lazily allocated
	occ      []uint64 // occupancy bitmap, one bit per bucket
	occSum   []uint64 // summary bitmap, one bit per occ word
	nearPhys int      // events physically parked in buckets (incl. stale)

	// spares recycles drained buckets' arrays. A run's events typically
	// span fewer ticks than the wheel covers, so each bucket index is
	// touched once and capacity retained in place would never be reused;
	// draining instead donates the (fully zeroed) array forward to
	// whichever bucket outgrows its capacity next. Pool entries are
	// always zero over their full capacity.
	spares [][]event

	far []event // min-heap by (at, seq); never holds canceled timers

	timers    []timerSlot
	freeTimer int32 // freelist head (index+1), 0 when empty
}

func (q *eventQueue) init() {
	q.buckets = make([]bucket, wheelSize)
	q.occ = make([]uint64, wheelSize/64)
	q.occSum = make([]uint64, wheelSize/64/64)
}

// push enqueues a callback at absolute time at. Exactly one of fn /
// (slot, gen) identifies the work: fn != nil for plain events, slot >= 0
// for arena-backed timers.
//
//lbvet:hotpath
func (q *eventQueue) push(at Time, fn func(), obj Eventer, slot int32, gen uint32) {
	if q.buckets == nil {
		q.init()
	}
	q.seq++
	ev := event{at: at, seq: q.seq, fn: fn, ev: obj, slot: slot, gen: gen}
	if at < q.now+wheelSize {
		q.pushNear(ev)
	} else {
		q.farPush(ev)
	}
	q.pending++
}

//lbvet:hotpath
func (q *eventQueue) pushNear(ev event) {
	idx := int(ev.at) & wheelMask
	b := &q.buckets[idx]
	if len(b.evs) == cap(b.evs) {
		q.grow(b)
	}
	n := len(b.evs)
	b.evs = b.evs[:n+1]
	b.evs[n] = ev
	q.nearPhys++
	q.occ[idx>>6] |= 1 << uint(idx&63)
	q.occSum[idx>>12] |= 1 << uint((idx>>6)&63)
}

// spareMin is the smallest array worth pooling; maxSpares bounds the
// pool so a pathological burst cannot pin unbounded memory.
const (
	spareMin  = 64
	maxSpares = 64
)

// grow is the cold half of pushNear: bucket capacity doubles off the
// hot path so the push itself never calls append. A recycled spare
// array (the largest that fits) is preferred over a fresh allocation —
// hot ticks move forward through the wheel, so the arrays drained
// behind the clock serve the buckets filling ahead of it. The outgrown
// array is discarded (it holds live copies, so it is not zero and must
// not enter the pool); the drain path donates the final array instead.
func (q *eventQueue) grow(b *bucket) {
	need := cap(b.evs) * 2
	if need < 8 {
		need = 8
	}
	best := -1
	if need >= spareMin {
		// Best fit: the smallest pooled array that suffices, so big
		// arrays stay available for the buckets that actually need
		// them. Small grows below spareMin never consult the pool.
		for i, sp := range q.spares {
			if cap(sp) >= need && (best < 0 || cap(sp) < cap(q.spares[best])) {
				best = i
			}
		}
	}
	if best >= 0 {
		evs := q.spares[best][:len(b.evs)]
		n := len(q.spares) - 1
		q.spares[best] = q.spares[n]
		q.spares[n] = nil
		q.spares = q.spares[:n]
		copy(evs, b.evs)
		b.evs = evs
		return
	}
	evs := make([]event, len(b.evs), need)
	copy(evs, b.evs)
	b.evs = evs
}

// donate is the cold drain path of consumeFront: the bucket's array —
// fully zeroed, every slot was consumed — moves into the spare pool.
func (q *eventQueue) donate(b *bucket) {
	q.spares = append(q.spares, b.evs[:0])
	b.evs = nil
}

// consumeFront vacates the bucket's cursor slot (zeroing it) and
// recycles the bucket when it drains: large arrays are donated to the
// spare pool, small ones keep their capacity in place.
//
//lbvet:hotpath
func (q *eventQueue) consumeFront(b *bucket, idx int) {
	b.evs[b.next] = event{}
	b.next++
	q.nearPhys--
	if b.next == len(b.evs) {
		if cap(b.evs) >= spareMin && len(q.spares) < maxSpares {
			q.donate(b)
		} else {
			b.evs = b.evs[:0]
		}
		b.next = 0
		w := idx >> 6
		q.occ[w] &^= 1 << uint(idx&63)
		if q.occ[w] == 0 {
			q.occSum[w>>6] &^= 1 << uint(w&63)
		}
	}
}

// nearTick returns the earliest occupied tick in [now, now+wheelSize).
// The caller guarantees nearPhys > 0.
//
//lbvet:hotpath
func (q *eventQueue) nearTick() Time {
	pos := int(q.now) & wheelMask
	if b := q.occ[pos>>6] >> uint(pos&63); b != 0 {
		return q.now + Time(bits.TrailingZeros64(b))
	}
	if i, ok := q.scanWords(pos>>6+1, len(q.occ)); ok {
		return q.now + Time(i-pos)
	}
	i, _ := q.scanWords(0, pos>>6+1)
	return q.now + Time(wheelSize-pos+i)
}

// scanWords returns the index of the first set occupancy bit whose word
// lies in [lo, hi), using the summary bitmap to skip empty words.
//
//lbvet:hotpath
func (q *eventQueue) scanWords(lo, hi int) (int, bool) {
	if lo >= hi {
		return 0, false
	}
	sw := lo >> 6
	s := q.occSum[sw] &^ (1<<uint(lo&63) - 1)
	for {
		if s != 0 {
			w := sw<<6 + bits.TrailingZeros64(s)
			if w >= hi {
				return 0, false
			}
			return w<<6 + bits.TrailingZeros64(q.occ[w]), true
		}
		sw++
		if sw<<6 >= hi {
			return 0, false
		}
		s = q.occSum[sw]
	}
}

// peek returns the firing time of the next live event without advancing
// the clock. Stale (canceled-timer) events at the front of the wheel are
// physically discarded on the way; the far heap never holds stale
// entries, so when the wheel is empty its top is the answer directly.
//
//lbvet:hotpath
func (q *eventQueue) peek() (Time, bool) {
	for q.nearPhys > 0 {
		t := q.nearTick()
		idx := int(t) & wheelMask
		b := &q.buckets[idx]
		ev := &b.evs[b.next]
		if ev.slot >= 0 {
			s := &q.timers[ev.slot]
			if !s.armed || s.gen != ev.gen {
				q.consumeFront(b, idx)
				continue
			}
		}
		return t, true
	}
	if len(q.far) > 0 {
		return q.far[0].at, true
	}
	return 0, false
}

// pop removes and returns the next live event's callback, advancing the
// clock to its timestamp (which migrates newly in-horizon far events
// into the wheel first).
//
//lbvet:hotpath
func (q *eventQueue) pop() (event, bool) {
	t, ok := q.peek()
	if !ok {
		return event{}, false
	}
	if t > q.now {
		q.advanceTo(t)
	}
	idx := int(t) & wheelMask
	b := &q.buckets[idx]
	ev := b.evs[b.next]
	q.consumeFront(b, idx)
	if ev.slot >= 0 {
		s := &q.timers[ev.slot]
		ev.fn, ev.ev = s.fn, s.ev
		q.releaseTimer(ev.slot)
	}
	q.pending--
	return ev, true
}

// advanceTo moves the clock to t (monotonically) and migrates every far
// event that entered the wheel horizon into its bucket. Migration pops
// the far heap in (at, seq) order, so per-tick FIFO order is preserved:
// direct pushes for those ticks can only happen after this migration.
//
//lbvet:hotpath
func (q *eventQueue) advanceTo(t Time) {
	q.now = t
	horizon := t + wheelSize
	for len(q.far) > 0 && q.far[0].at < horizon {
		ev := q.far[0]
		q.farRemove(0)
		q.pushNear(ev)
	}
}

// Far heap: a manual concrete-typed min-heap by (at, seq). The timer
// arena mirrors each parked timer's heap index so Cancel can remove it
// eagerly instead of leaving a stale entry to sift through later.

//lbvet:hotpath
func (q *eventQueue) farLess(i, j int) bool {
	a, b := &q.far[i], &q.far[j]
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

//lbvet:hotpath
func (q *eventQueue) farSwap(i, j int) {
	q.far[i], q.far[j] = q.far[j], q.far[i]
	if s := q.far[i].slot; s >= 0 {
		q.timers[s].heapIdx = int32(i)
	}
	if s := q.far[j].slot; s >= 0 {
		q.timers[s].heapIdx = int32(j)
	}
}

//lbvet:hotpath
func (q *eventQueue) farUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.farLess(i, p) {
			break
		}
		q.farSwap(i, p)
		i = p
	}
}

//lbvet:hotpath
func (q *eventQueue) farDown(i int) {
	n := len(q.far)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.farLess(r, l) {
			m = r
		}
		if !q.farLess(m, i) {
			return
		}
		q.farSwap(i, m)
		i = m
	}
}

//lbvet:hotpath
func (q *eventQueue) farPush(ev event) {
	if len(q.far) == cap(q.far) {
		q.growFar()
	}
	n := len(q.far)
	q.far = q.far[:n+1]
	q.far[n] = ev
	if ev.slot >= 0 {
		q.timers[ev.slot].heapIdx = int32(n)
	}
	q.farUp(n)
}

// growFar is the cold half of farPush.
func (q *eventQueue) growFar() {
	c := cap(q.far) * 2
	if c < 16 {
		c = 16
	}
	far := make([]event, len(q.far), c)
	copy(far, q.far)
	q.far = far
}

// farRemove deletes the heap entry at index i, zeroing the vacated tail
// slot so dead closures are not pinned.
//
//lbvet:hotpath
func (q *eventQueue) farRemove(i int) {
	n := len(q.far) - 1
	if i != n {
		q.farSwap(i, n)
	}
	if s := q.far[n].slot; s >= 0 {
		q.timers[s].heapIdx = -1
	}
	q.far[n] = event{}
	q.far = q.far[:n]
	if i != n {
		q.farDown(i)
		q.farUp(i)
	}
}

// allocTimer arms a fresh arena slot holding the callback (closure or
// object form) and returns its index.
func (q *eventQueue) allocTimer(fn func(), ev Eventer) int32 {
	slot := q.freeTimer - 1
	if slot >= 0 {
		q.freeTimer = q.timers[slot].free
	} else {
		q.timers = append(q.timers, timerSlot{})
		slot = int32(len(q.timers) - 1)
	}
	s := &q.timers[slot]
	s.fn = fn
	s.ev = ev
	s.armed = true
	s.heapIdx = -1
	return slot
}

// releaseTimer disarms a slot and bumps its generation, so any event
// still referencing the old generation (a canceled timer parked in a
// bucket) is skipped as stale, even if the slot is reused meanwhile.
//
//lbvet:hotpath
func (q *eventQueue) releaseTimer(slot int32) {
	s := &q.timers[slot]
	s.fn = nil
	s.ev = nil
	s.armed = false
	s.gen++
	s.heapIdx = -1
	s.free = q.freeTimer
	q.freeTimer = slot + 1
}

package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refQueue is a reference implementation of the engine's
// firing contract — a straight container/heap ordered by (at, seq) with
// canceled entries skipped at pop — used by the property test to check
// the timer wheel against an independently implemented oracle.
type refEvent struct {
	at       Time
	seq      uint64
	id       int
	canceled *bool
}

type refQueue []refEvent

func (h refQueue) Len() int { return len(h) }
func (h refQueue) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refQueue) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refQueue) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refQueue) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = refEvent{}
	*h = old[:n-1]
	return x
}

// popLive removes and returns the next non-canceled event.
func (h *refQueue) popLive() (refEvent, bool) {
	for h.Len() > 0 {
		ev := heap.Pop(h).(refEvent)
		if ev.canceled == nil || !*ev.canceled {
			return ev, true
		}
	}
	return refEvent{}, false
}

func (h *refQueue) liveLen() int {
	n := 0
	for _, ev := range *h {
		if ev.canceled == nil || !*ev.canceled {
			n++
		}
	}
	return n
}

// TestQueuePropertyVsReferenceHeap drives the wheel/far-heap queue and
// the reference heap with identical random schedule/cancel/step
// sequences and asserts identical firing order — including FIFO order
// among equal timestamps — identical firing times, and agreeing Cancel
// outcomes. Delays are drawn across three regimes (same-tick, in-wheel,
// beyond the wheel horizon) so migration and the far heap are exercised.
func TestQueuePropertyVsReferenceHeap(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		e := NewEngine(1)
		ref := &refQueue{}
		var refSeq uint64
		nextID := 0
		var got []int // ids in engine firing order

		type liveTimer struct {
			timer           Timer
			canceled, fired *bool
		}
		var timers []liveTimer

		schedule := func() {
			var delay Time
			switch r.Intn(3) {
			case 0:
				delay = Time(r.Intn(4)) // same/near tick: FIFO ties
			case 1:
				delay = Time(r.Intn(wheelSize - 1)) // in the wheel
			default:
				delay = Time(r.Intn(3*wheelSize) + wheelSize) // far heap
			}
			id := nextID
			nextID++
			refSeq++
			if r.Intn(2) == 0 {
				canceled, fired := false, false
				tm := e.After(delay, func() { got = append(got, id); fired = true })
				heap.Push(ref, refEvent{at: e.Now() + delay, seq: refSeq, id: id, canceled: &canceled})
				timers = append(timers, liveTimer{timer: tm, canceled: &canceled, fired: &fired})
			} else {
				e.Schedule(delay, func() { got = append(got, id) })
				heap.Push(ref, refEvent{at: e.Now() + delay, seq: refSeq, id: id})
			}
		}

		cancel := func() {
			if len(timers) == 0 {
				return
			}
			i := r.Intn(len(timers))
			lt := timers[i]
			wantOK := !*lt.canceled && !*lt.fired
			*lt.canceled = true
			if gotOK := e.Cancel(lt.timer); gotOK != wantOK {
				t.Fatalf("trial %d: Cancel = %v, reference says %v", trial, gotOK, wantOK)
			}
			timers[i] = timers[len(timers)-1]
			timers = timers[:len(timers)-1]
		}

		step := func() {
			before := len(got)
			ok := e.Step()
			want, wantOK := ref.popLive()
			if ok != wantOK {
				t.Fatalf("trial %d: Step = %v, reference %v", trial, ok, wantOK)
			}
			if !ok {
				return
			}
			// Timer callbacks fired by Step appended exactly one id.
			if len(got) != before+1 || got[len(got)-1] != want.id {
				t.Fatalf("trial %d: fired id %v, reference expects %d", trial, got[before:], want.id)
			}
			if e.Now() != want.at {
				t.Fatalf("trial %d: fired at %d, reference expects %d", trial, e.Now(), want.at)
			}
		}

		for op := 0; op < 3000; op++ {
			switch x := r.Intn(10); {
			case x < 5:
				schedule()
			case x < 6:
				cancel()
			default:
				step()
			}
			if e.Pending() != ref.liveLen() {
				t.Fatalf("trial %d: Pending = %d, reference %d", trial, e.Pending(), ref.liveLen())
			}
		}
		// Drain both completely.
		for {
			want, wantOK := ref.popLive()
			if !wantOK {
				break
			}
			before := len(got)
			if !e.Step() {
				t.Fatalf("trial %d: engine drained early, reference still has id %d", trial, want.id)
			}
			if got[before] != want.id || e.Now() != want.at {
				t.Fatalf("trial %d: drain fired id %d at %d, want id %d at %d",
					trial, got[before], e.Now(), want.id, want.at)
			}
		}
		if e.Step() {
			t.Fatalf("trial %d: engine has events after reference drained", trial)
		}
	}
}

// TestFarMigrationPreservesSeqOrder pins the tie-break across the
// far→wheel migration boundary: an event scheduled for tick T while T
// was beyond the horizon must fire before an event scheduled directly
// into T's bucket later (smaller seq first), matching the heap
// semantics.
func TestFarMigrationPreservesSeqOrder(t *testing.T) {
	e := NewEngine(1)
	target := Time(wheelSize + 100)
	var order []int
	e.Schedule(target, func() { order = append(order, 1) }) // parks far
	e.Schedule(200, func() {
		// Clock is at 200: target is now inside the horizon, so this
		// lands in the same bucket behind the migrated event.
		e.Schedule(target-200, func() { order = append(order, 2) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("cross-horizon same-tick order = %v, want [1 2]", order)
	}
}

// TestQueueZeroesVacatedSlots is the white-box half of the old
// eventHeap.Pop leak fix: after events fire (or timers are canceled),
// every vacated bucket slot, far-heap slot and timer-arena slot must be
// zeroed so dead closures are not pinned for the life of the run.
func TestQueueZeroesVacatedSlots(t *testing.T) {
	e := NewEngine(1)
	// Near events, several per tick, plus far events and canceled
	// timers in both regions.
	var obj nopEventer
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i%7), func() {})
		e.Schedule(Time(wheelSize+i), func() {})
		e.ScheduleEv(Time(i%5), &obj)
	}
	nearT := e.After(3, func() {})
	farT := e.After(wheelSize+5000, func() {})
	nearTE := e.AfterEv(4, &obj)
	e.Cancel(nearT)
	e.Cancel(farT)
	e.Cancel(nearTE)
	e.Run()

	q := &e.q
	for i := range q.buckets {
		b := &q.buckets[i]
		if len(b.evs) != 0 || b.next != 0 {
			t.Fatalf("bucket %d not recycled: len=%d next=%d", i, len(b.evs), b.next)
		}
		full := b.evs[:cap(b.evs)]
		for j := range full {
			if full[j].fn != nil || full[j].ev != nil || full[j].at != 0 || full[j].seq != 0 || full[j].slot != 0 {
				t.Fatalf("bucket %d slot %d not zeroed: %+v", i, j, full[j])
			}
		}
	}
	if len(q.far) != 0 {
		t.Fatalf("far heap not drained: %d", len(q.far))
	}
	farFull := q.far[:cap(q.far)]
	for j := range farFull {
		if farFull[j].fn != nil || farFull[j].ev != nil || farFull[j].at != 0 || farFull[j].seq != 0 {
			t.Fatalf("far slot %d not zeroed: %+v", j, farFull[j])
		}
	}
	for i := range q.timers {
		s := &q.timers[i]
		if s.armed || s.fn != nil || s.ev != nil {
			t.Fatalf("timer slot %d still armed/pinning: %+v", i, s)
		}
	}
}

// nopEventer is a trivial sim.Eventer for scheduling-path tests.
type nopEventer struct{ fired int }

func (n *nopEventer) RunEvent() { n.fired++ }

// TestEventerOrdering checks the object-form schedulers share the
// closure form's FIFO tie-break: at one instant, events fire in
// scheduling order regardless of which form enqueued them.
func TestEventerOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	rec := func(i int) func() { return func() { order = append(order, i) } }
	e.Schedule(5, rec(0))
	e.ScheduleEv(5, eventerFunc(rec(1)))
	e.Schedule(5, rec(2))
	e.AfterEv(5, eventerFunc(rec(3)))
	e.ScheduleEv(5, eventerFunc(rec(4)))
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("interleaved Schedule/ScheduleEv/AfterEv order = %v, want 0..4 in place", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d of 5 events", len(order))
	}
}

type eventerFunc func()

func (f eventerFunc) RunEvent() { f() }

func TestAfterCancelSemantics(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := e.After(10, func() { fired++ })
	if !e.Cancel(tm) {
		t.Fatal("first Cancel of a pending timer must report true")
	}
	if e.Cancel(tm) {
		t.Fatal("second Cancel must report false")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel, want 0", e.Pending())
	}
	e.Run()
	if fired != 0 {
		t.Fatal("canceled timer fired")
	}

	// Cancel after fire reports false; zero Timer is a no-op.
	tm = e.After(5, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if e.Cancel(tm) {
		t.Fatal("Cancel after fire must report false")
	}
	if e.Cancel(Timer{}) {
		t.Fatal("Cancel of zero Timer must report false")
	}

	// Slot reuse must not resurrect old handles: the recycled slot's
	// generation differs, so the stale handle cancels nothing.
	stale := e.After(10, func() {})
	e.Cancel(stale)
	ran := false
	fresh := e.After(10, func() { ran = true })
	if e.Cancel(stale) {
		t.Fatal("stale handle must not cancel the recycled slot")
	}
	e.Run()
	if !ran {
		t.Fatal("fresh timer on recycled slot did not fire")
	}
	_ = fresh
}

// TestCancelFarTimer pins eager removal from the far heap: canceling a
// timer parked beyond the wheel horizon drops it from the queue
// immediately (Pending) and it never fires.
func TestCancelFarTimer(t *testing.T) {
	e := NewEngine(1)
	fired := []int{}
	keep := func(id int) func() { return func() { fired = append(fired, id) } }
	t1 := e.After(wheelSize+10, keep(1))
	_ = e.After(wheelSize+20, keep(2))
	t3 := e.After(3*wheelSize+7, keep(3))
	e.Cancel(t1)
	e.Cancel(t3)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
	if e.Now() != wheelSize+20 {
		t.Fatalf("Now = %d", e.Now())
	}
}

// TestResetMessageStatsClearsDropped is the regression test for the
// drop-count leak: ResetMessageStats cleared msgCount/msgCost but not
// dropped, so experiment phases double-reported drops.
func TestResetMessageStatsClearsDropped(t *testing.T) {
	e := NewEngine(1)
	e.SetFilter(&recordingFilter{script: map[string][]Time{"drop": nil}})
	e.Deliver("drop", 0, 1, 2, func() {})
	e.Deliver("drop", 0, 1, 2, func() {})
	if e.DroppedTotal() != 2 || e.DroppedCount("drop") != 2 {
		t.Fatalf("pre-reset drops = %d/%d", e.DroppedTotal(), e.DroppedCount("drop"))
	}
	e.ResetMessageStats()
	if e.DroppedTotal() != 0 || e.DroppedCount("drop") != 0 {
		t.Fatalf("ResetMessageStats leaked drop counts: total=%d kind=%d",
			e.DroppedTotal(), e.DroppedCount("drop"))
	}
	// Accounting keeps working after the reset.
	e.Deliver("drop", 0, 1, 2, func() {})
	if e.DroppedTotal() != 1 {
		t.Fatalf("post-reset drops = %d, want 1", e.DroppedTotal())
	}
}

func TestEveryCancelReleasesTimer(t *testing.T) {
	e := NewEngine(1)
	count := 0
	cancel := e.Every(10, func() { count++ })
	e.RunUntil(35)
	cancel()
	if e.Pending() != 0 {
		t.Fatalf("canceled Every left %d pending events", e.Pending())
	}
	e.RunUntil(1000)
	if count != 3 {
		t.Fatalf("Every fired %d times, want 3", count)
	}
}

func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%64), fn)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkStep(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%64), fn)
	}
	b.ResetTimer()
	for e.Step() {
	}
}

func BenchmarkScheduleFar(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(wheelSize+i%5000), fn)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkAfterCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(Time(100+i%64), fn)
		e.Cancel(tm)
	}
}

func BenchmarkDeliver(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Deliver("bench", 0, 1, Time(i%8), fn)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

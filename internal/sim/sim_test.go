package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(10, func() { order = append(order, 3) })
	e.Schedule(5, func() { order = append(order, 2) })
	e.Schedule(0, func() { order = append(order, 1) })
	n := e.Run()
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("final time = %d, want 10", e.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
			e.Schedule(0, func() { times = append(times, e.Now()) })
		})
	})
	e.Run()
	want := []Time{1, 3, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestZeroDelayRunsAfterCurrentInstant(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(0, func() {
		order = append(order, 1)
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.Schedule(0, func() { order = append(order, 2) })
	e.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	NewEngine(1).Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	fired := map[Time]bool{}
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired[d] = true })
	}
	e.RunUntil(12)
	if !fired[5] || !fired[10] || fired[15] || fired[20] {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if !fired[15] || !fired[20] || e.Pending() != 0 {
		t.Fatal("remaining events not drained")
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var cancel func()
	cancel = e.Every(10, func() {
		count++
		if count == 5 {
			cancel()
		}
	})
	e.RunUntil(1000)
	if count != 5 {
		t.Fatalf("periodic fired %d times, want 5 (cancel failed?)", count)
	}
	if e.Now() != 1000 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestEveryInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) should panic")
		}
	}()
	NewEngine(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, int64(e.Now()))
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := Time(e.Rand().Intn(10))
				e.Schedule(d, func() { spawn(depth - 1) })
			}
		}
		e.Schedule(0, func() { spawn(4) })
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMessageAccounting(t *testing.T) {
	e := NewEngine(1)
	e.CountMessage("lookup", 3)
	e.CountMessage("lookup", 5)
	e.CountMessage("heartbeat", 1)
	if e.MessageCount("lookup") != 2 || e.MessageCost("lookup") != 8 {
		t.Fatalf("lookup stats: %d/%d", e.MessageCount("lookup"), e.MessageCost("lookup"))
	}
	if e.TotalMessages() != 3 {
		t.Fatalf("TotalMessages = %d", e.TotalMessages())
	}
	kinds := e.MessageKinds()
	if len(kinds) != 2 || kinds[0] != "heartbeat" || kinds[1] != "lookup" {
		t.Fatalf("kinds = %v", kinds)
	}
	e.ResetMessageStats()
	if e.TotalMessages() != 0 || e.MessageCount("lookup") != 0 {
		t.Fatal("reset failed")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.Executed() != 0 {
		t.Fatal("Executed before run should be 0")
	}
	e.Run()
	if e.Executed() != 10 {
		t.Fatalf("Executed = %d", e.Executed())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%64), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// recordingFilter scripts Deliveries outcomes and records offers.
type recordingFilter struct {
	script map[string][]Time // per-kind copies; missing kind = one clean copy
	offers []string
}

func (f *recordingFilter) Deliveries(kind string, src, dst int, now, cost Time) []Time {
	f.offers = append(f.offers, kind)
	if copies, ok := f.script[kind]; ok {
		return copies
	}
	return []Time{0}
}

func TestDeliverWithoutFilterMatchesCountPlusSchedule(t *testing.T) {
	// The two engines must produce identical event order, counts and
	// costs: Deliver with no filter IS the CountMessage+Schedule pair.
	a, b := NewEngine(1), NewEngine(1)
	var orderA, orderB []int
	for i := 0; i < 5; i++ {
		i := i
		a.CountMessage("k", Time(3+i))
		a.Schedule(Time(3+i), func() { orderA = append(orderA, i) })
		b.Deliver("k", 0, 1, Time(3+i), func() { orderB = append(orderB, i) })
	}
	a.Run()
	b.Run()
	if len(orderA) != len(orderB) {
		t.Fatalf("event counts differ: %d vs %d", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("event order differs at %d: %v vs %v", i, orderA, orderB)
		}
	}
	if a.MessageCount("k") != b.MessageCount("k") || a.MessageCost("k") != b.MessageCost("k") {
		t.Fatal("message accounting differs")
	}
	if b.DroppedTotal() != 0 {
		t.Fatal("no filter, nothing may be dropped")
	}
}

func TestDeliverDropDupJitter(t *testing.T) {
	e := NewEngine(1)
	f := &recordingFilter{script: map[string][]Time{
		"drop": nil,
		"dup":  {0, 0},
		"jit":  {7},
	}}
	e.SetFilter(f)
	ran := map[string]int{}
	at := map[string]Time{}
	for _, k := range []string{"drop", "dup", "jit", "clean"} {
		k := k
		e.Deliver(k, 0, 1, 2, func() { ran[k]++; at[k] = e.Now() })
	}
	e.Run()
	if ran["drop"] != 0 || e.DroppedCount("drop") != 1 || e.MessageCount("drop") != 0 {
		t.Errorf("drop: ran=%d dropped=%d counted=%d", ran["drop"], e.DroppedCount("drop"), e.MessageCount("drop"))
	}
	if ran["dup"] != 2 || e.MessageCount("dup") != 2 {
		t.Errorf("dup: ran=%d counted=%d", ran["dup"], e.MessageCount("dup"))
	}
	if ran["jit"] != 1 || at["jit"] != 9 || e.MessageCost("jit") != 9 {
		t.Errorf("jit: ran=%d at=%d cost=%d", ran["jit"], at["jit"], e.MessageCost("jit"))
	}
	if ran["clean"] != 1 || at["clean"] != 2 {
		t.Errorf("clean: ran=%d at=%d", ran["clean"], at["clean"])
	}
	if got := len(f.offers); got != 4 {
		t.Errorf("filter saw %d offers, want 4", got)
	}
	if e.DroppedTotal() != 1 {
		t.Errorf("DroppedTotal = %d", e.DroppedTotal())
	}
}

func TestDeliverNegativeExtraClamped(t *testing.T) {
	e := NewEngine(1)
	e.SetFilter(&recordingFilter{script: map[string][]Time{"k": {-5}}})
	var fired Time = -1
	e.Deliver("k", 0, 1, 4, func() { fired = e.Now() })
	e.Run()
	if fired != 4 {
		t.Fatalf("negative extra latency must clamp to 0: fired at %d", fired)
	}
}

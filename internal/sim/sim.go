// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate of the deterministic executor: Chord
// lookups, K-nary tree maintenance, heartbeats, and internal/protocol's
// message-level rounds (which drive the runtime-agnostic state machines
// of internal/lbnode) all run as events on it, with delivery, loss and
// retransmission expressed through Deliver and an optional
// MessageFilter. The concurrent executor (internal/livenet) runs the
// same lbnode machines without the engine — it has no virtual clock and
// no fault layer; the engine's only role there is seeding the ring
// builder's RNG.
//
// Virtual time is measured in the same latency units as topology
// distances (an intradomain underlay hop is 1 unit). Events with equal
// timestamps fire in scheduling order, so a run is a pure function of
// the seed and the initial event set.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"p2plb/internal/metrics"
)

// Time is a point in virtual time, in latency units.
type Time int64

// Engine is a deterministic event queue with virtual time, a seeded RNG
// and per-kind message accounting. It is not safe for concurrent use;
// each simulation instance owns one engine (multi-trial experiments run
// one engine per goroutine). Events live in a bucketed timer wheel with
// a far-horizon overflow heap (see queue.go); firing order is (at, seq),
// i.e. equal timestamps fire in scheduling order.
type Engine struct {
	q        eventQueue
	seed     int64
	rng      *rand.Rand
	msgStats map[string]*msgStat
	executed uint64

	// Optional metrics sink. Per-kind counters are cached (one map
	// lookup per message) so the per-message hot path never takes the
	// registry lock.
	reg        *metrics.Registry
	mMsg       map[string]msgCounters
	queueDepth *metrics.Histogram

	// Optional fault layer. nil means every Deliver call transmits
	// exactly one copy with no extra latency.
	filter  MessageFilter
	dropped map[string]int64
}

// msgCounters pairs the registry counters for one message kind.
type msgCounters struct {
	count, cost *metrics.Counter
}

// msgStat is the per-kind accounting cell: one map lookup per message
// updates both the count and the cost.
type msgStat struct {
	count, cost int64
}

// NoNode marks a Deliver endpoint with no physical-node identity (setup
// paths, broadcasts). Filters must pass such messages through verbatim —
// they cannot place them on either side of a partition.
const NoNode = -1

// A MessageFilter decides the fate of every message offered to Deliver:
// it returns the extra latency of each transmitted copy (empty means the
// message is dropped; a reliable network returns one zero entry). The
// engine owns the filter — implementations follow the engine's
// single-goroutine contract, like Rand.
type MessageFilter interface {
	Deliveries(kind string, src, dst int, now, cost Time) []Time
}

// NewEngine returns an engine at time 0 with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		msgStats: make(map[string]*msgStat),
	}
}

// Seed returns the seed this engine was constructed with. Fan-out
// layers derive per-worker engine seeds from it without consuming the
// engine's own RNG stream (a draw would perturb every later draw and
// break equivalence with a sequential run).
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.q.now }

// Rand returns the engine's RNG. All randomness in a simulation must come
// from here to keep runs reproducible.
//
// The returned *rand.Rand is NOT safe for concurrent use, like the
// engine itself: an engine and everything hanging off it belong to one
// goroutine. Code that fans work out across goroutines (livenet's
// parallel sweeps, exp's multi-trial runs) must either consume all
// randomness sequentially before the fan-out or give each worker its
// own engine/RNG seeded from the parent — never share this one.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetMetrics attaches a metrics registry; nil detaches. Attach before
// the simulation starts (message counts recorded earlier are not
// replayed into the registry). The registry may be shared by several
// engines running on different goroutines — its primitives are
// concurrency-safe — but SetMetrics itself follows the engine's
// single-goroutine contract.
func (e *Engine) SetMetrics(r *metrics.Registry) {
	e.reg = r
	e.mMsg, e.queueDepth = nil, nil
	if r != nil {
		e.mMsg = make(map[string]msgCounters)
		e.queueDepth = r.Histogram("sim.queue.depth")
	}
}

// Metrics returns the attached registry (nil when none).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Eventer is the object form of an event callback: ScheduleEv,
// DeliverEv and AfterEv enqueue it without materializing a closure, so
// hot senders can embed small adapter structs in a pooled object and
// schedule interior pointers at zero allocations. RunEvent fires when
// the event's virtual time arrives.
type Eventer interface {
	RunEvent()
}

// Schedule runs fn after delay units of virtual time. A zero delay runs
// fn after all events already scheduled for the current instant.
// Negative delays panic.
//
//lbvet:hotpath
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		//lbvet:ignore hotalloc panic guard, never taken on correct runs
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.q.push(e.q.now+delay, fn, nil, -1, 0)
	if e.queueDepth != nil {
		e.queueDepth.Observe(int64(e.q.pending))
	}
}

// ScheduleEv is Schedule for an Eventer callback.
//
//lbvet:hotpath
func (e *Engine) ScheduleEv(delay Time, ev Eventer) {
	if delay < 0 {
		//lbvet:ignore hotalloc panic guard, never taken on correct runs
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.q.push(e.q.now+delay, nil, ev, -1, 0)
	if e.queueDepth != nil {
		e.queueDepth.Observe(int64(e.q.pending))
	}
}

// Timer is a handle to a cancelable callback scheduled with After. The
// zero Timer is invalid; Cancel on it is a no-op.
type Timer struct {
	id  int32 // arena slot + 1; 0 = invalid
	gen uint32
}

// Zero reports whether t is the zero Timer — never armed. A fired or
// canceled timer's handle is non-zero but stale; Cancel distinguishes
// those by generation.
func (t Timer) Zero() bool { return t.id == 0 }

// After schedules fn to run after delay units of virtual time, like
// Schedule, and returns a handle that Cancel accepts. Use it for
// timeout/retransmission timers that are usually canceled before they
// fire: a canceled timer is removed from the queue (or skipped) instead
// of firing into a dead check.
//
//lbvet:hotpath
func (e *Engine) After(delay Time, fn func()) Timer {
	if delay < 0 {
		//lbvet:ignore hotalloc panic guard, never taken on correct runs
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	slot := e.q.allocTimer(fn, nil)
	gen := e.q.timers[slot].gen
	e.q.push(e.q.now+delay, nil, nil, slot, gen)
	if e.queueDepth != nil {
		e.queueDepth.Observe(int64(e.q.pending))
	}
	return Timer{id: slot + 1, gen: gen}
}

// AfterEv is After for an Eventer callback.
//
//lbvet:hotpath
func (e *Engine) AfterEv(delay Time, ev Eventer) Timer {
	if delay < 0 {
		//lbvet:ignore hotalloc panic guard, never taken on correct runs
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	slot := e.q.allocTimer(nil, ev)
	gen := e.q.timers[slot].gen
	e.q.push(e.q.now+delay, nil, nil, slot, gen)
	if e.queueDepth != nil {
		e.queueDepth.Observe(int64(e.q.pending))
	}
	return Timer{id: slot + 1, gen: gen}
}

// Cancel revokes a timer scheduled with After. It reports whether the
// timer was still pending: false means it already fired, was already
// canceled, or the handle is zero. Canceling is idempotent and cheap —
// the callback is released immediately, never fires, and the queue slot
// is reclaimed.
//
//lbvet:hotpath
func (e *Engine) Cancel(t Timer) bool {
	if t.id == 0 {
		return false
	}
	slot := t.id - 1
	s := &e.q.timers[slot]
	if !s.armed || s.gen != t.gen {
		return false
	}
	if s.heapIdx >= 0 {
		e.q.farRemove(int(s.heapIdx))
	}
	e.q.releaseTimer(slot)
	e.q.pending--
	return true
}

// Every schedules fn to run now+interval, now+2·interval, … until the
// returned cancel function is called. The interval must be positive.
func (e *Engine) Every(interval Time, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %d", interval))
	}
	stopped := false
	var t Timer
	var tick func()
	tick = func() {
		fn()
		if !stopped {
			t = e.After(interval, tick)
		}
	}
	t = e.After(interval, tick)
	return func() {
		if !stopped {
			stopped = true
			e.Cancel(t)
		}
	}
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
//
//lbvet:hotpath
func (e *Engine) Step() bool {
	ev, ok := e.q.pop()
	if !ok {
		return false
	}
	e.executed++
	ev.fire()
	return true
}

// Run executes events until the queue is empty and returns the number of
// events executed. Do not call it while periodic timers are active — the
// queue never drains; use RunUntil instead.
func (e *Engine) Run() uint64 {
	start := e.executed
	for e.Step() {
	}
	return e.executed - start
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for {
		t, ok := e.q.peek()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
	if e.q.now < deadline {
		e.q.advanceTo(deadline)
	}
}

// Pending returns the number of queued events (canceled timers are not
// counted).
func (e *Engine) Pending() int { return e.q.pending }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// CountMessage records one protocol message of the given kind with the
// given delivery cost (latency units). Protocol code calls this once per
// simulated message so experiments can report per-phase message and
// bandwidth-proxy totals.
//
//lbvet:hotpath
func (e *Engine) CountMessage(kind string, cost Time) {
	s := e.msgStats[kind]
	if s == nil {
		s = e.newMsgStat(kind)
	}
	s.count++
	s.cost += int64(cost)
	if e.reg != nil {
		mc, ok := e.mMsg[kind]
		if !ok {
			mc = msgCounters{
				count: e.reg.Counter("msg." + kind + ".count"),
				cost:  e.reg.Counter("msg." + kind + ".cost"),
			}
			e.mMsg[kind] = mc
		}
		mc.count.Inc()
		mc.cost.Add(int64(cost))
	}
}

// CountMessageN records n messages of kind with combined cost total, as
// if CountMessage had been called n times. Bulk layers (the K-nary
// tree's sharded build) accumulate per-worker tallies and commit them
// through here in one deterministic step.
func (e *Engine) CountMessageN(kind string, n int64, total Time) {
	if n <= 0 {
		return
	}
	s := e.msgStats[kind]
	if s == nil {
		s = e.newMsgStat(kind)
	}
	s.count += n
	s.cost += int64(total)
	if e.reg != nil {
		mc, ok := e.mMsg[kind]
		if !ok {
			mc = msgCounters{
				count: e.reg.Counter("msg." + kind + ".count"),
				cost:  e.reg.Counter("msg." + kind + ".cost"),
			}
			e.mMsg[kind] = mc
		}
		mc.count.Add(n)
		mc.cost.Add(int64(total))
	}
}

// SetFilter installs a message filter (nil detaches). Install before
// the simulation starts; swapping filters mid-run changes the fate of
// messages sent afterwards, never of copies already scheduled.
func (e *Engine) SetFilter(f MessageFilter) { e.filter = f }

// Filter returns the installed message filter (nil when none).
func (e *Engine) Filter() MessageFilter { return e.filter }

// Deliver transmits one protocol message of the given kind from node
// src to node dst (physical-node indexes, NoNode when inapplicable):
// each transmitted copy is counted like CountMessage and its callback
// scheduled after cost plus the copy's extra latency. Without a filter
// exactly one copy is sent with no extra latency, so fault-free runs
// stay deterministic down to the event sequence. With a filter, the
// filter decides: no copies means the message is dropped (counted per
// kind in DroppedCount, fn never runs), several copies model
// duplication, extra latency models jitter. Delivery, loss and retry
// are executor concerns — the lbnode state machines this transports
// messages for never see the engine.
//
//lbvet:hotpath
func (e *Engine) Deliver(kind string, src, dst int, cost Time, fn func()) {
	if e.filter == nil {
		e.CountMessage(kind, cost)
		e.Schedule(cost, fn)
		return
	}
	copies := e.filter.Deliveries(kind, src, dst, e.q.now, cost)
	if len(copies) == 0 {
		if e.dropped == nil {
			//lbvet:ignore hotalloc lazy once-per-engine init on the drop path, only reached under fault plans
			e.dropped = make(map[string]int64)
		}
		e.dropped[kind]++
		return
	}
	for _, extra := range copies {
		if extra < 0 {
			extra = 0
		}
		e.CountMessage(kind, cost+extra)
		e.Schedule(cost+extra, fn)
	}
}

// DeliverEv is Deliver for an Eventer callback: same counting, fault
// filtering and latency semantics, object-form scheduling.
//
//lbvet:hotpath
func (e *Engine) DeliverEv(kind string, src, dst int, cost Time, ev Eventer) {
	if e.filter == nil {
		e.CountMessage(kind, cost)
		e.ScheduleEv(cost, ev)
		return
	}
	copies := e.filter.Deliveries(kind, src, dst, e.q.now, cost)
	if len(copies) == 0 {
		if e.dropped == nil {
			//lbvet:ignore hotalloc lazy once-per-engine init on the drop path, only reached under fault plans
			e.dropped = make(map[string]int64)
		}
		e.dropped[kind]++
		return
	}
	for _, extra := range copies {
		if extra < 0 {
			extra = 0
		}
		e.CountMessage(kind, cost+extra)
		e.ScheduleEv(cost+extra, ev)
	}
}

// DroppedCount returns how many messages of kind the filter dropped.
func (e *Engine) DroppedCount(kind string) int64 { return e.dropped[kind] }

// DroppedTotal returns the count of all dropped messages of every kind.
func (e *Engine) DroppedTotal() int64 {
	var n int64
	for _, c := range e.dropped {
		n += c
	}
	return n
}

// newMsgStat is the cold first-use path of the message counters.
func (e *Engine) newMsgStat(kind string) *msgStat {
	s := &msgStat{}
	e.msgStats[kind] = s
	return s
}

// MessageCount returns how many messages of kind were counted.
func (e *Engine) MessageCount(kind string) int64 {
	if s := e.msgStats[kind]; s != nil {
		return s.count
	}
	return 0
}

// MessageCost returns the total delivery cost of messages of kind.
func (e *Engine) MessageCost(kind string) int64 {
	if s := e.msgStats[kind]; s != nil {
		return s.cost
	}
	return 0
}

// MessageKinds returns all message kinds seen, sorted.
func (e *Engine) MessageKinds() []string {
	kinds := make([]string, 0, len(e.msgStats))
	for k := range e.msgStats {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// TotalMessages returns the count of all messages of every kind.
func (e *Engine) TotalMessages() int64 {
	var n int64
	for _, s := range e.msgStats {
		n += s.count
	}
	return n
}

// ResetMessageStats clears message accounting, including drop counts
// (used between experiment phases so each phase reports its own
// traffic — without the drop reset, fault-sweep phases double-report).
func (e *Engine) ResetMessageStats() {
	e.msgStats = make(map[string]*msgStat)
	e.dropped = nil
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate of the deterministic executor: Chord
// lookups, K-nary tree maintenance, heartbeats, and internal/protocol's
// message-level rounds (which drive the runtime-agnostic state machines
// of internal/lbnode) all run as events on it, with delivery, loss and
// retransmission expressed through Deliver and an optional
// MessageFilter. The concurrent executor (internal/livenet) runs the
// same lbnode machines without the engine — it has no virtual clock and
// no fault layer; the engine's only role there is seeding the ring
// builder's RNG.
//
// Virtual time is measured in the same latency units as topology
// distances (an intradomain underlay hop is 1 unit). Events with equal
// timestamps fire in scheduling order, so a run is a pure function of
// the seed and the initial event set.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"p2plb/internal/metrics"
)

// Time is a point in virtual time, in latency units.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine is a deterministic event queue with virtual time, a seeded RNG
// and per-kind message accounting. It is not safe for concurrent use;
// each simulation instance owns one engine (multi-trial experiments run
// one engine per goroutine).
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	rng      *rand.Rand
	msgCount map[string]int64
	msgCost  map[string]int64
	executed uint64

	// Optional metrics sink. Per-kind counters are cached (one map
	// lookup per message) so the per-message hot path never takes the
	// registry lock.
	reg        *metrics.Registry
	mMsg       map[string]msgCounters
	queueDepth *metrics.Histogram

	// Optional fault layer. nil means every Deliver call transmits
	// exactly one copy with no extra latency.
	filter  MessageFilter
	dropped map[string]int64
}

// msgCounters pairs the registry counters for one message kind.
type msgCounters struct {
	count, cost *metrics.Counter
}

// NoNode marks a Deliver endpoint with no physical-node identity (setup
// paths, broadcasts). Filters must pass such messages through verbatim —
// they cannot place them on either side of a partition.
const NoNode = -1

// A MessageFilter decides the fate of every message offered to Deliver:
// it returns the extra latency of each transmitted copy (empty means the
// message is dropped; a reliable network returns one zero entry). The
// engine owns the filter — implementations follow the engine's
// single-goroutine contract, like Rand.
type MessageFilter interface {
	Deliveries(kind string, src, dst int, now, cost Time) []Time
}

// NewEngine returns an engine at time 0 with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:      rand.New(rand.NewSource(seed)),
		msgCount: make(map[string]int64),
		msgCost:  make(map[string]int64),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's RNG. All randomness in a simulation must come
// from here to keep runs reproducible.
//
// The returned *rand.Rand is NOT safe for concurrent use, like the
// engine itself: an engine and everything hanging off it belong to one
// goroutine. Code that fans work out across goroutines (livenet's
// parallel sweeps, exp's multi-trial runs) must either consume all
// randomness sequentially before the fan-out or give each worker its
// own engine/RNG seeded from the parent — never share this one.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetMetrics attaches a metrics registry; nil detaches. Attach before
// the simulation starts (message counts recorded earlier are not
// replayed into the registry). The registry may be shared by several
// engines running on different goroutines — its primitives are
// concurrency-safe — but SetMetrics itself follows the engine's
// single-goroutine contract.
func (e *Engine) SetMetrics(r *metrics.Registry) {
	e.reg = r
	e.mMsg, e.queueDepth = nil, nil
	if r != nil {
		e.mMsg = make(map[string]msgCounters)
		e.queueDepth = r.Histogram("sim.queue.depth")
	}
}

// Metrics returns the attached registry (nil when none).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Schedule runs fn after delay units of virtual time. A zero delay runs
// fn after all events already scheduled for the current instant.
// Negative delays panic.
//
//lbvet:hotpath
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		//lbvet:ignore hotalloc panic guard, never taken on correct runs
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.seq++
	//lbvet:ignore hotalloc container/heap boxes each event; the arena/index-heap rework is a ROADMAP item
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
	if e.queueDepth != nil {
		e.queueDepth.Observe(int64(len(e.events)))
	}
}

// Every schedules fn to run now+interval, now+2·interval, … until the
// returned cancel function is called. The interval must be positive.
func (e *Engine) Every(interval Time, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %d", interval))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		e.Schedule(interval, tick)
	}
	e.Schedule(interval, tick)
	return func() { stopped = true }
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
//
//lbvet:hotpath
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the number of
// events executed. Do not call it while periodic timers are active — the
// queue never drains; use RunUntil instead.
func (e *Engine) Run() uint64 {
	start := e.executed
	for e.Step() {
	}
	return e.executed - start
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// CountMessage records one protocol message of the given kind with the
// given delivery cost (latency units). Protocol code calls this once per
// simulated message so experiments can report per-phase message and
// bandwidth-proxy totals.
//
//lbvet:hotpath
func (e *Engine) CountMessage(kind string, cost Time) {
	e.msgCount[kind]++
	e.msgCost[kind] += int64(cost)
	if e.reg != nil {
		mc, ok := e.mMsg[kind]
		if !ok {
			mc = msgCounters{
				count: e.reg.Counter("msg." + kind + ".count"),
				cost:  e.reg.Counter("msg." + kind + ".cost"),
			}
			e.mMsg[kind] = mc
		}
		mc.count.Inc()
		mc.cost.Add(int64(cost))
	}
}

// CountMessageN records n messages of kind with combined cost total, as
// if CountMessage had been called n times. Bulk layers (the K-nary
// tree's sharded build) accumulate per-worker tallies and commit them
// through here in one deterministic step.
func (e *Engine) CountMessageN(kind string, n int64, total Time) {
	if n <= 0 {
		return
	}
	e.msgCount[kind] += n
	e.msgCost[kind] += int64(total)
	if e.reg != nil {
		mc, ok := e.mMsg[kind]
		if !ok {
			mc = msgCounters{
				count: e.reg.Counter("msg." + kind + ".count"),
				cost:  e.reg.Counter("msg." + kind + ".cost"),
			}
			e.mMsg[kind] = mc
		}
		mc.count.Add(n)
		mc.cost.Add(int64(total))
	}
}

// SetFilter installs a message filter (nil detaches). Install before
// the simulation starts; swapping filters mid-run changes the fate of
// messages sent afterwards, never of copies already scheduled.
func (e *Engine) SetFilter(f MessageFilter) { e.filter = f }

// Filter returns the installed message filter (nil when none).
func (e *Engine) Filter() MessageFilter { return e.filter }

// Deliver transmits one protocol message of the given kind from node
// src to node dst (physical-node indexes, NoNode when inapplicable):
// each transmitted copy is counted like CountMessage and its callback
// scheduled after cost plus the copy's extra latency. Without a filter
// exactly one copy is sent with no extra latency, so fault-free runs
// stay deterministic down to the event sequence. With a filter, the
// filter decides: no copies means the message is dropped (counted per
// kind in DroppedCount, fn never runs), several copies model
// duplication, extra latency models jitter. Delivery, loss and retry
// are executor concerns — the lbnode state machines this transports
// messages for never see the engine.
//
//lbvet:hotpath
func (e *Engine) Deliver(kind string, src, dst int, cost Time, fn func()) {
	if e.filter == nil {
		e.CountMessage(kind, cost)
		e.Schedule(cost, fn)
		return
	}
	copies := e.filter.Deliveries(kind, src, dst, e.now, cost)
	if len(copies) == 0 {
		if e.dropped == nil {
			//lbvet:ignore hotalloc lazy once-per-engine init on the drop path, only reached under fault plans
			e.dropped = make(map[string]int64)
		}
		e.dropped[kind]++
		return
	}
	for _, extra := range copies {
		if extra < 0 {
			extra = 0
		}
		e.CountMessage(kind, cost+extra)
		e.Schedule(cost+extra, fn)
	}
}

// DroppedCount returns how many messages of kind the filter dropped.
func (e *Engine) DroppedCount(kind string) int64 { return e.dropped[kind] }

// DroppedTotal returns the count of all dropped messages of every kind.
func (e *Engine) DroppedTotal() int64 {
	var n int64
	for _, c := range e.dropped {
		n += c
	}
	return n
}

// MessageCount returns how many messages of kind were counted.
func (e *Engine) MessageCount(kind string) int64 { return e.msgCount[kind] }

// MessageCost returns the total delivery cost of messages of kind.
func (e *Engine) MessageCost(kind string) int64 { return e.msgCost[kind] }

// MessageKinds returns all message kinds seen, sorted.
func (e *Engine) MessageKinds() []string {
	kinds := make([]string, 0, len(e.msgCount))
	for k := range e.msgCount {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// TotalMessages returns the count of all messages of every kind.
func (e *Engine) TotalMessages() int64 {
	var n int64
	for _, c := range e.msgCount {
		n += c
	}
	return n
}

// ResetMessageStats clears message accounting (used between experiment
// phases so each phase reports its own traffic).
func (e *Engine) ResetMessageStats() {
	e.msgCount = make(map[string]int64)
	e.msgCost = make(map[string]int64)
}

// Cross-executor equivalence: the same ring, seed and config run
// through the closed-form reference (core.Balancer), the
// deterministic-sim executor (internal/protocol) and the concurrent
// executor (internal/livenet) must produce the identical pair set and
// the same final unit-load Gini — all three now drive the lbnode state
// machines (or, for the Balancer, the same core primitives beneath
// them), so any divergence is an executor bug, not an algorithm fork.
//
// The three-way cases pin RendezvousThreshold to -1 (pairing only at
// the root) because core.Balancer has no placement notion: root-only
// pooling is the projection of the scheme that does not depend on entry
// placement, so it is the strongest claim the closed-form reference can
// join. Between the two message-driven executors the claim is stronger:
// both consume the canonical placement pre-pass (lbnode.PlaceRound), so
// WHERE each advertisement enters the tree — and therefore which
// intermediate rendezvous point pools it — is identical by
// construction, and TestIntermediateRendezvousEquivalence pins exact
// transfer-set equality at the paper-default threshold too.
package lbnode_test

import (
	"fmt"
	"math"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/faults"
	"p2plb/internal/ktree"
	"p2plb/internal/livenet"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
	"p2plb/internal/workload"
)

// buildRing constructs the shared fixture: a loaded heterogeneous ring
// and its KT tree on a fresh engine, identical for a given seed.
func buildRing(t *testing.T, seed int64, nodes, vsPer int) (*chord.Ring, *ktree.Tree) {
	t.Helper()
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), vsPer)
	}
	mu := float64(nodes) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	return ring, tree
}

// outcome is the executor-invariant projection of a round.
type outcome struct {
	global     core.LBI
	pairs      map[string]float64 // pair identity → transferred load
	unassigned int
	gini       float64
}

// pairKey identifies a pairing across ring instances by value: rings
// built from the same seed assign the same IDs and indices.
func pairKey(vs *chord.VServer, from, to *chord.Node) string {
	return fmt.Sprintf("%v:%d->%d", vs.ID, from.Index, to.Index)
}

func runBalancer(t *testing.T, seed int64, nodes, vsPer int, cfg core.Config) outcome {
	t.Helper()
	ring, tree := buildRing(t, seed, nodes, vsPer)
	bal, err := core.NewBalancer(ring, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bal.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make(map[string]float64)
	for _, a := range res.Assignments {
		pairs[pairKey(a.VS, a.From, a.To)] = a.Load
	}
	return outcome{global: res.Global, pairs: pairs, unassigned: res.UnassignedOffers, gini: livenet.UnitLoadGini(ring)}
}

func runProtocol(t *testing.T, seed int64, nodes, vsPer int, cfg core.Config, withEmptyFaultPlan bool) outcome {
	t.Helper()
	ring, tree := buildRing(t, seed, nodes, vsPer)
	if withEmptyFaultPlan {
		// An empty plan must be a byte-identical passthrough: same
		// events, same RNG draws, same outcome.
		in, err := faults.New(seed, faults.Plan{})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Attach(ring); err != nil {
			t.Fatal(err)
		}
	}
	r, err := protocol.NewRunner(ring, tree, protocol.Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var res *protocol.Result
	var resErr error
	if err := r.StartRound(func(out *protocol.Result, err error) { res, resErr = out, err }); err != nil {
		t.Fatal(err)
	}
	ring.Engine().Run()
	if resErr != nil {
		t.Fatal(resErr)
	}
	if res == nil {
		t.Fatal("protocol round never completed")
	}
	if res.TimedOutChildren != 0 || res.AbortedTransfers != 0 || res.Retries != 0 {
		t.Fatalf("lossless round reported failures: %+v", res)
	}
	pairs := make(map[string]float64)
	for _, a := range res.Assignments {
		pairs[pairKey(a.VS, a.From, a.To)] = a.Load
	}
	return outcome{global: res.Global, pairs: pairs, unassigned: res.UnassignedOffers, gini: livenet.UnitLoadGini(ring)}
}

func runLivenet(t *testing.T, seed int64, nodes, vsPer int, cfg core.Config) outcome {
	t.Helper()
	ring, tree := buildRing(t, seed, nodes, vsPer)
	res, err := livenet.RunRound(ring, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make(map[string]float64)
	for _, p := range res.Assignments {
		pairs[pairKey(p.VS, p.From, p.To)] = p.Load
	}
	return outcome{global: res.Global, pairs: pairs, unassigned: res.UnassignedOffers, gini: livenet.UnitLoadGini(ring)}
}

// comparePairs requires the exact same pair set (same VS, same
// endpoints, same load) from two executors.
func comparePairs(t *testing.T, label string, ref, got outcome) {
	t.Helper()
	// L and C are converge-cast float sums: each executor's randomized
	// report placement shapes the merge tree, so the totals agree only
	// up to summation rounding. Lmin is a min — exact everywhere.
	if d := math.Abs(got.global.L - ref.global.L); d > 1e-9*math.Abs(ref.global.L) {
		t.Errorf("%s: global L %v, want %v", label, got.global.L, ref.global.L)
	}
	if d := math.Abs(got.global.C - ref.global.C); d > 1e-9*math.Abs(ref.global.C) {
		t.Errorf("%s: global C %v, want %v", label, got.global.C, ref.global.C)
	}
	if got.global.Lmin != ref.global.Lmin {
		t.Errorf("%s: global Lmin %v, want %v", label, got.global.Lmin, ref.global.Lmin)
	}
	if len(got.pairs) != len(ref.pairs) {
		t.Errorf("%s: %d pairs, want %d", label, len(got.pairs), len(ref.pairs))
	}
	for k, load := range ref.pairs {
		gl, ok := got.pairs[k]
		if !ok {
			t.Errorf("%s: missing pair %s", label, k)
			continue
		}
		if gl != load {
			t.Errorf("%s: pair %s load %v, want %v", label, k, gl, load)
		}
	}
	for k := range got.pairs {
		if _, ok := ref.pairs[k]; !ok {
			t.Errorf("%s: extra pair %s", label, k)
		}
	}
	if got.unassigned != ref.unassigned {
		t.Errorf("%s: %d unassigned offers, want %d", label, got.unassigned, ref.unassigned)
	}
	// The final per-node loads are identical (same transfers applied),
	// but executors apply them in different orders, so each node's VS
	// slice — and hence the float summation order inside TotalLoad —
	// can differ. Equality up to summation rounding is the exact claim.
	if d := math.Abs(got.gini - ref.gini); d > 1e-9 {
		t.Errorf("%s: final unit-load gini %v, want %v (Δ=%g)", label, got.gini, ref.gini, d)
	}
}

func TestCrossExecutorEquivalence(t *testing.T) {
	cases := []struct {
		name         string
		seed         int64
		nodes, vsPer int
		eps          float64
	}{
		{"small-tight", 11, 96, 4, 0},
		{"medium", 12, 192, 5, 0.05},
		{"loose-slack", 13, 128, 3, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{Epsilon: tc.eps, RendezvousThreshold: -1}
			ref := runBalancer(t, tc.seed, tc.nodes, tc.vsPer, cfg)
			if len(ref.pairs) == 0 {
				t.Fatalf("fixture too tame: reference round paired nothing")
			}
			comparePairs(t, "protocol", ref, runProtocol(t, tc.seed, tc.nodes, tc.vsPer, cfg, false))
			comparePairs(t, "protocol+empty-fault-plan", ref, runProtocol(t, tc.seed, tc.nodes, tc.vsPer, cfg, true))
			comparePairs(t, "livenet", ref, runLivenet(t, tc.seed, tc.nodes, tc.vsPer, cfg))
		})
	}
}

// buildBenchRing is the lbbench runtime-fixture shape (bulk-added
// nodes, 5 VSs each, tight Gaussian): the shape where the pre-fix
// executors diverged under intermediate rendezvous — at 8000 VSs and
// the default threshold, 3656 of 3833 transfers differed between
// protocol and livenet even though the counts happened to match.
func buildBenchRing(t *testing.T, seed int64, vsCount int) (*chord.Ring, *ktree.Tree) {
	t.Helper()
	const vsPerNode = 5
	n := vsCount / vsPerNode
	profile := workload.GnutellaProfile()
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	ring.BulkAddNodes(n, vsPerNode,
		func(int) topology.NodeID { return -1 },
		func(int) float64 { return profile.Sample(eng.Rand()) })
	mu := float64(n) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 200}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	return ring, tree
}

// TestIntermediateRendezvousEquivalence pins the fix for the
// cross-executor transfer divergence: with intermediate rendezvous
// enabled (threshold 0 → the paper default of 30), which entries pool
// at which interior KT node is decided entirely by report placement.
// Before the canonical placement pre-pass each executor drew placements
// from its own RNG stream, so the transfer SETS diverged wholesale
// while the counts coincidentally matched at this size (and stopped
// matching at 256k). The claim here is exact set equality — same VSs,
// same endpoints, same loads — plus a bit-identical global tuple (the
// indexed LBICollect fold fixes the float parenthesization).
func TestIntermediateRendezvousEquivalence(t *testing.T) {
	const seed, vsCount = 1, 8000
	cfg := core.Config{Epsilon: 0.05} // RendezvousThreshold 0 → default 30

	ring, tree := buildBenchRing(t, seed, vsCount)
	r, err := protocol.NewRunner(ring, tree, protocol.Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var res *protocol.Result
	var resErr error
	if err := r.StartRound(func(out *protocol.Result, err error) { res, resErr = out, err }); err != nil {
		t.Fatal(err)
	}
	ring.Engine().Run()
	if resErr != nil {
		t.Fatal(resErr)
	}
	if res == nil {
		t.Fatal("protocol round never completed")
	}
	proto := outcome{global: res.Global, pairs: make(map[string]float64), unassigned: res.UnassignedOffers, gini: livenet.UnitLoadGini(ring)}
	for _, a := range res.Assignments {
		proto.pairs[pairKey(a.VS, a.From, a.To)] = a.Load
	}

	ring2, tree2 := buildBenchRing(t, seed, vsCount)
	lres, err := livenet.RunRound(ring2, tree2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := outcome{global: lres.Global, pairs: make(map[string]float64), unassigned: lres.UnassignedOffers, gini: livenet.UnitLoadGini(ring2)}
	for _, p := range lres.Assignments {
		live.pairs[pairKey(p.VS, p.From, p.To)] = p.Load
	}

	if len(proto.pairs) == 0 {
		t.Fatal("fixture too tame: protocol round paired nothing")
	}
	// Exact global tuple, not tolerance: both executors fold the same
	// placement through the same index-ordered merge tree.
	if proto.global != live.global {
		t.Errorf("global tuple diverged: protocol %+v, livenet %+v", proto.global, live.global)
	}
	comparePairs(t, "intermediate-rendezvous", proto, live)
}

// TestEmptyFaultPlanIsPassthrough pins the stronger protocol-level
// claim: attaching an empty fault plan changes nothing at all — the
// two runs' outcomes match field for field, not just as pair sets.
func TestEmptyFaultPlanIsPassthrough(t *testing.T) {
	cfg := core.Config{Epsilon: 0.05, RendezvousThreshold: -1}
	plain := runProtocol(t, 21, 128, 4, cfg, false)
	faulty := runProtocol(t, 21, 128, 4, cfg, true)
	if plain.global != faulty.global || plain.unassigned != faulty.unassigned || plain.gini != faulty.gini {
		t.Fatalf("empty plan diverged: %+v vs %+v", plain, faulty)
	}
	comparePairs(t, "empty-plan", plain, faulty)
}

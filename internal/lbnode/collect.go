package lbnode

import "p2plb/internal/core"

// LBICollect is the LBI converge-cast epoch at one KT node: the local
// reports merge at construction, each child subtree's reply is buffered
// under its child index as it arrives, and the epoch closes exactly
// once — when the last child replies, or when the executor's timer
// expires it with partial data. Replies after the close are absorbed
// without effect (the executor still acknowledges them so the sender
// stops retransmitting).
//
// Buffering instead of merging on arrival is what makes the aggregate
// executor-independent: LBI merging adds floats, so the parenthesization
// matters in the last ulp. Aggregate folds locals first, then children
// in child-index order, no matter in which order the replies physically
// arrived — the sim executor (replies land in message order) and the
// concurrent executor (replies land in completion order) produce the
// bit-identical global tuple.
type LBICollect struct {
	local   core.LBI
	subs    []core.LBI
	got     []bool
	pending int
	closed  bool
}

// NewLBICollect starts an epoch over the node's deposited reports and
// the number of child subtrees it will query. With no children (a leaf,
// or an internal node whose slots are all empty) the epoch is complete
// immediately.
func NewLBICollect(reports []core.LBI, children int) *LBICollect {
	c := MakeLBICollect(reports, children)
	return &c
}

// MakeLBICollect is NewLBICollect in value form, for embedding the
// machine inside a caller-owned walk object (or, for a leaf that
// completes immediately, on the caller's stack) instead of a separate
// heap allocation per tree node.
func MakeLBICollect(reports []core.LBI, children int) LBICollect {
	c := LBICollect{pending: children}
	for _, rep := range reports {
		c.local = c.local.Merge(rep)
	}
	if children > 0 {
		c.subs = make([]core.LBI, children)
		c.got = make([]bool, children)
	} else {
		c.closed = true
	}
	return c
}

// ChildReply buffers the aggregate of the child subtree at index idx.
// It returns true when this reply completes the epoch; a reply after
// the epoch closed, or a duplicate for an index already answered, is
// absorbed and returns false.
func (c *LBICollect) ChildReply(idx int, sub core.LBI) bool {
	if c.closed || c.got[idx] {
		return false
	}
	c.subs[idx] = sub
	c.got[idx] = true
	c.pending--
	if c.pending == 0 {
		c.closed = true
		return true
	}
	return false
}

// Expire closes a still-open epoch with partial data, returning how
// many children never replied. An already-closed epoch reports
// (0, false) — the timer lost the race and must not act.
func (c *LBICollect) Expire() (timedOut int, expired bool) {
	if c.closed {
		return 0, false
	}
	c.closed = true
	return c.pending, true
}

// Done reports whether the epoch has closed.
func (c *LBICollect) Done() bool { return c.closed }

// Aggregate folds the merged LBI gathered so far — locals first, then
// the buffered child replies in child-index order (missing children,
// after an expiry, are skipped). Meaningful once the epoch closed.
func (c *LBICollect) Aggregate() core.LBI {
	agg := c.local
	for i, sub := range c.subs {
		if c.got[i] {
			agg = agg.Merge(sub)
		}
	}
	return agg
}

// VSACollect is the VSA converge-cast epoch at one KT node: the node's
// own inbox of advertisements seeds the list, children's unpaired lists
// merge as they arrive, and the epoch closes exactly once. After the
// close the node may act as a rendezvous point (Rendezvous) and hands
// whatever remains unpaired to its parent (Lists).
type VSACollect struct {
	lists   *core.PairList
	pending int
	closed  bool
}

// NewVSACollect starts an epoch over the node's deposited advertisement
// list (nil means none) and the number of child subtrees it will query.
// The inbox PairList is consumed: pairing and upward propagation mutate
// it in place.
func NewVSACollect(inbox *core.PairList, children int) *VSACollect {
	c := MakeVSACollect(inbox, children)
	return &c
}

// MakeVSACollect is NewVSACollect in value form — see MakeLBICollect.
func MakeVSACollect(inbox *core.PairList, children int) VSACollect {
	if inbox == nil {
		inbox = &core.PairList{}
	}
	c := VSACollect{lists: inbox, pending: children}
	if c.pending == 0 {
		c.closed = true
	}
	return c
}

// ChildReply merges one child subtree's unpaired list (which is consumed
// — §3.4's upward flow). It returns true when this reply completes the
// epoch; a reply after the close is absorbed and returns false.
func (c *VSACollect) ChildReply(sub *core.PairList) bool {
	if c.closed {
		return false
	}
	c.lists.Merge(sub)
	c.pending--
	if c.pending == 0 {
		c.closed = true
		return true
	}
	return false
}

// Expire closes a still-open epoch with partial data, returning how
// many children never replied; (0, false) if already closed.
func (c *VSACollect) Expire() (timedOut int, expired bool) {
	if c.closed {
		return 0, false
	}
	c.closed = true
	return c.pending, true
}

// Done reports whether the epoch has closed.
func (c *VSACollect) Done() bool { return c.closed }

// Rendezvous runs the §3.4 rendezvous rule on the closed epoch's list:
// a node pairs when it holds any entries and is the root, or its
// combined list length reaches the threshold (zero means the paper's
// default of 30; negative disables intermediate rendezvous so pairing
// happens only at the root). It returns the emitted pairings; unpaired
// entries stay held for the parent.
func (c *VSACollect) Rendezvous(isRoot bool, threshold int, lmin float64) []core.Pair {
	if threshold == 0 {
		threshold = core.DefaultRendezvousThreshold
	}
	if c.lists.Size() > 0 && (isRoot || (threshold > 0 && c.lists.Size() >= threshold)) {
		return c.lists.Pair(lmin)
	}
	return nil
}

// Lists returns the list of entries still held (after Rendezvous: the
// unpaired remainder that flows to the parent).
func (c *VSACollect) Lists() *core.PairList { return c.lists }

package lbnode

import "p2plb/internal/core"

// HandoffPhase is a Handoff machine's position in the two-phase
// virtual-server transfer.
type HandoffPhase int

// Handoff phases.
const (
	// PhaseAssigning: the rendezvous point's assignment notification is
	// on its way to the heavy endpoint.
	PhaseAssigning HandoffPhase = iota
	// PhasePreparing: the heavy endpoint is reserving the move at the
	// light endpoint.
	PhasePreparing
	// PhaseCommitting: the reservation is confirmed; the transfer copy
	// is on its way.
	PhaseCommitting
	// PhaseDone: the first commit copy arrived and the transfer was
	// applied.
	PhaseDone
	// PhaseAborted: an endpoint was found dead or no longer owning the
	// VS, or a phase exhausted its retries; no ring state changed.
	PhaseAborted
)

// HandoffOp is the outgoing action a Handoff transition asks its
// executor to perform.
type HandoffOp int

// Handoff executor actions.
const (
	// OpNone: nothing to do (duplicate, late or already-settled input).
	OpNone HandoffOp = iota
	// OpPrepare: send the prepare/reservation message heavy → light.
	OpPrepare
	// OpCommit: send the commit/transfer message heavy → light.
	OpCommit
	// OpAbort: settle the pairing as aborted and release its resources.
	OpAbort
)

// Handoff is the two-phase virtual-server transfer machine for one
// pairing (§3.4 VST):
//
//	assign:  the rendezvous point notifies the heavy endpoint; on
//	         (deduplicated) arrival the endpoints are validated and the
//	         reservation starts.
//	prepare: From reserves the move at To; acceptance is the ack. No
//	         state changes yet.
//	commit:  From ships the VS; the FIRST commit copy to arrive applies
//	         the transfer (TransferReceived returns true exactly once),
//	         so the VS moves exactly once and is never double-hosted.
//	abort:   any phase failing — retries exhausted, or an endpoint dead
//	         or no longer owning the VS — settles the pairing aborted;
//	         nothing was touched before commit, so the VS stays with its
//	         sender and load is conserved.
//
// The machine holds no transport state: the executor owns delivery,
// acknowledgement, retransmission and timing, feeds arrivals and
// failures in, and performs the returned HandoffOp. A machine settles
// exactly once (PhaseDone or PhaseAborted); every transition after that
// returns OpNone.
type Handoff struct {
	// Pair is the pairing under transfer.
	Pair  core.Pair
	phase HandoffPhase
}

// NewHandoff starts the machine for one emitted pairing.
func NewHandoff(p core.Pair) *Handoff { return &Handoff{Pair: p} }

// Phase returns the machine's current phase.
func (h *Handoff) Phase() HandoffPhase { return h.phase }

// Settled reports whether the handoff has reached a terminal phase.
func (h *Handoff) Settled() bool {
	return h.phase == PhaseDone || h.phase == PhaseAborted
}

// AssignReceived runs at the heavy endpoint when the assignment
// notification first arrives. ack=false means the endpoint is dead and
// stays silent (no acknowledgement at all); otherwise the arrival is
// acknowledged and op is the follow-up: OpPrepare to start the
// reservation, OpAbort when an endpoint is already invalid, OpNone for
// a copy that lost a race with settlement.
func (h *Handoff) AssignReceived() (ack bool, op HandoffOp) {
	if !h.Pair.From.Alive {
		return false, OpNone
	}
	if h.Settled() {
		return true, OpNone
	}
	if h.Pair.VS.Owner != h.Pair.From || !h.Pair.To.Alive {
		h.phase = PhaseAborted
		return true, OpAbort
	}
	h.phase = PhasePreparing
	return true, OpPrepare
}

// Fail records that the current phase's delivery exhausted its retries
// (assign, prepare or commit). It aborts an unsettled handoff; a
// settled one is left alone.
func (h *Handoff) Fail() HandoffOp {
	if h.Settled() {
		return OpNone
	}
	h.phase = PhaseAborted
	return OpAbort
}

// PrepareReceived runs at the light endpoint when a prepare copy
// arrives: the reservation is accepted (acknowledged) only while the
// receiver is alive and the pairing can still commit. A dead receiver
// is silent, draining the sender's retries into an abort.
func (h *Handoff) PrepareReceived() bool {
	return h.Pair.To.Alive && !h.Settled()
}

// PrepareAcked runs at the heavy endpoint once the reservation is
// confirmed: re-validate the sender side and move to commit, or abort
// if the sender died (its VSs were absorbed by ring successors) or lost
// the VS between prepare and commit.
func (h *Handoff) PrepareAcked() HandoffOp {
	if h.Settled() {
		return OpNone
	}
	if !h.Pair.From.Alive || h.Pair.VS.Owner != h.Pair.From {
		h.phase = PhaseAborted
		return OpAbort
	}
	h.phase = PhaseCommitting
	return OpCommit
}

// TransferReceived runs at the light endpoint when a commit copy
// arrives. It returns true exactly once — for the first copy that finds
// the pairing still valid — and the executor must then apply the
// transfer (the single point where ring state changes hands). Late,
// duplicate or invalid copies return false and must not be
// acknowledged.
func (h *Handoff) TransferReceived() bool {
	if h.Settled() || !h.Pair.To.Alive || h.Pair.VS.Owner != h.Pair.From {
		return false
	}
	h.phase = PhaseDone
	return true
}

// External-package tests: lbnode's own test fixtures are free to build
// rings and engines, which the layercheck analyzer forbids inside the
// package itself.
package lbnode_test

import (
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/lbnode"
	"p2plb/internal/sim"
)

// lbi builds a valid LBI report <sum(loads), capacity, min(loads)>
// through a throwaway one-node ring (the ok flag inside core.LBI is
// deliberately unexported).
func lbi(capacity float64, loads ...float64) core.LBI {
	ring := chord.NewRing(sim.NewEngine(1), chord.Config{})
	n := ring.AddNode(-1, capacity, len(loads))
	for i, vs := range n.VServers() {
		vs.Load = loads[i]
	}
	return core.NodeLBI(n)
}

func TestLBICollectLifecycle(t *testing.T) {
	reports := []core.LBI{lbi(2, 5, 5), lbi(1, 3, 3)} // L=10 Lmin=5; L=6 Lmin=3
	col := lbnode.NewLBICollect(reports, 2)
	if col.Done() {
		t.Fatal("epoch with pending children closed early")
	}
	// Replies arrive out of child order; the machine buffers them and
	// folds in index order.
	if done := col.ChildReply(1, lbi(1, 2, 2)); done { // L=4 Lmin=2
		t.Fatal("first of two replies completed the epoch")
	}
	// A duplicate for an already-answered index is absorbed.
	if done := col.ChildReply(1, lbi(50, 50)); done {
		t.Fatal("duplicate reply completed the epoch")
	}
	if done := col.ChildReply(0, lbi(2, 1, 7)); !done { // L=8 Lmin=1
		t.Fatal("last reply did not complete the epoch")
	}
	agg := col.Aggregate()
	if agg.L != 28 || agg.C != 6 || agg.Lmin != 1 {
		t.Fatalf("aggregate = %+v, want L=28 C=6 Lmin=1", agg)
	}
	// Replies after the close are absorbed; the expiry timer lost.
	if col.ChildReply(0, lbi(100, 100)) {
		t.Error("reply after close reported completion")
	}
	if agg := col.Aggregate(); agg.L != 28 {
		t.Errorf("late reply mutated the aggregate: %+v", agg)
	}
	if _, expired := col.Expire(); expired {
		t.Error("Expire on a completed epoch claimed to expire it")
	}
}

func TestLBICollectLeafAndExpiry(t *testing.T) {
	leaf := lbnode.NewLBICollect([]core.LBI{lbi(1, 3)}, 0)
	if !leaf.Done() {
		t.Fatal("childless epoch should be complete at construction")
	}
	col := lbnode.NewLBICollect(nil, 3)
	col.ChildReply(2, lbi(1, 1))
	timedOut, expired := col.Expire()
	if !expired || timedOut != 2 {
		t.Fatalf("Expire = (%d, %v), want (2, true)", timedOut, expired)
	}
	if !col.Done() {
		t.Error("expired epoch should be closed")
	}
	if agg := col.Aggregate(); agg.L != 1 {
		t.Errorf("partial aggregate = %+v, want the one reply that arrived", agg)
	}
	if col.ChildReply(0, lbi(9, 9)) {
		t.Error("reply after expiry reported completion")
	}
}

func TestVSACollectRendezvousRules(t *testing.T) {
	heavy := &chord.Node{Index: 0, Alive: true}
	light := &chord.Node{Index: 1, Alive: true}
	mkList := func(entries int) *core.PairList {
		pl := &core.PairList{}
		for i := 0; i < entries; i++ {
			vs := &chord.VServer{Owner: heavy, Load: 4}
			pl.AddOffer(vs, heavy, 0)
			pl.AddLight(5, light, 0)
		}
		return pl
	}

	// Below threshold, not root: hold everything.
	col := lbnode.NewVSACollect(mkList(2), 0)
	if pairs := col.Rendezvous(false, 30, 0.1); pairs != nil {
		t.Fatalf("below-threshold rendezvous paired %d", len(pairs))
	}
	if col.Lists().Size() != 4 {
		t.Fatalf("held size = %d, want 4", col.Lists().Size())
	}

	// Threshold reached at a non-root node: pair.
	col = lbnode.NewVSACollect(mkList(2), 0)
	if pairs := col.Rendezvous(false, 4, 0.1); len(pairs) == 0 {
		t.Fatal("threshold-reached rendezvous paired nothing")
	}

	// The root always pairs, and zero threshold means the default.
	col = lbnode.NewVSACollect(mkList(1), 0)
	if pairs := col.Rendezvous(true, 0, 0.1); len(pairs) == 0 {
		t.Fatal("root rendezvous paired nothing")
	}

	// Negative threshold: only the root pairs.
	col = lbnode.NewVSACollect(mkList(20), 0)
	if pairs := col.Rendezvous(false, -1, 0.1); pairs != nil {
		t.Fatal("negative threshold paired at a non-root node")
	}

	// An empty epoch never pairs, even at the root.
	col = lbnode.NewVSACollect(nil, 0)
	if pairs := col.Rendezvous(true, 0, 0.1); pairs != nil {
		t.Fatal("empty root epoch paired")
	}
}

func TestVSACollectEpoch(t *testing.T) {
	heavy := &chord.Node{Index: 0, Alive: true}
	sub := &core.PairList{}
	sub.AddOffer(&chord.VServer{Owner: heavy, Load: 2}, heavy, 0)
	col := lbnode.NewVSACollect(nil, 2)
	if col.Done() {
		t.Fatal("pending epoch closed early")
	}
	if col.ChildReply(sub) {
		t.Fatal("first of two replies completed the epoch")
	}
	timedOut, expired := col.Expire()
	if !expired || timedOut != 1 {
		t.Fatalf("Expire = (%d, %v), want (1, true)", timedOut, expired)
	}
	if col.Lists().Size() != 1 {
		t.Fatalf("partial epoch holds %d entries, want 1", col.Lists().Size())
	}
	late := &core.PairList{}
	late.AddLight(3, heavy, 0)
	if col.ChildReply(late) {
		t.Error("reply after expiry reported completion")
	}
	if col.Lists().Size() != 1 {
		t.Error("late reply merged into a closed epoch")
	}
}

func TestRosterClassifiesOnce(t *testing.T) {
	global := lbi(10, 50, 50) // L=100 C=10 Lmin=50
	n := &chord.Node{Alive: true, Capacity: 1}
	dead := &chord.Node{Alive: false, Capacity: 1}
	ro := lbnode.NewRoster(nil)
	st, ok := ro.Classify(n, global, 0, core.SubsetAuto)
	if !ok || st == nil {
		t.Fatal("first delivery did not classify")
	}
	if _, ok := ro.Classify(n, global, 0, core.SubsetAuto); ok {
		t.Error("duplicate delivery classified again")
	}
	if _, ok := ro.Classify(dead, global, 0, core.SubsetAuto); ok {
		t.Error("dead node classified")
	}
	h, l, u := ro.Census()
	if h+l+u != 1 {
		t.Errorf("census = %d/%d/%d, want exactly one node", h, l, u)
	}
}

func handoffFixture() (*lbnode.Handoff, *chord.Node, *chord.Node, *chord.VServer) {
	from := &chord.Node{Index: 0, Alive: true}
	to := &chord.Node{Index: 1, Alive: true}
	vs := &chord.VServer{Owner: from, Load: 7}
	return lbnode.NewHandoff(core.Pair{VS: vs, From: from, To: to, Load: vs.Load}), from, to, vs
}

func TestHandoffHappyPath(t *testing.T) {
	h, _, _, _ := handoffFixture()
	ack, op := h.AssignReceived()
	if !ack || op != lbnode.OpPrepare {
		t.Fatalf("assign = (%v, %v), want (true, OpPrepare)", ack, op)
	}
	if h.Phase() != lbnode.PhasePreparing {
		t.Fatalf("phase = %v, want PhasePreparing", h.Phase())
	}
	if !h.PrepareReceived() {
		t.Fatal("live receiver rejected the reservation")
	}
	if op := h.PrepareAcked(); op != lbnode.OpCommit {
		t.Fatalf("prepare-ack op = %v, want OpCommit", op)
	}
	if !h.TransferReceived() {
		t.Fatal("first commit copy rejected")
	}
	if h.Phase() != lbnode.PhaseDone || !h.Settled() {
		t.Fatalf("phase = %v, want PhaseDone", h.Phase())
	}
	// Exactly-once: a duplicated or retransmitted commit is refused.
	if h.TransferReceived() {
		t.Error("duplicate commit copy accepted")
	}
	// And a late failure signal cannot un-settle the transfer.
	if op := h.Fail(); op != lbnode.OpNone {
		t.Errorf("Fail after Done = %v, want OpNone", op)
	}
}

func TestHandoffDeadEndpoints(t *testing.T) {
	// A dead heavy endpoint is silent: no ack at all.
	h, from, _, _ := handoffFixture()
	from.Alive = false
	if ack, op := h.AssignReceived(); ack || op != lbnode.OpNone {
		t.Fatalf("dead From: assign = (%v, %v), want (false, OpNone)", ack, op)
	}

	// A dead light endpoint aborts at validation.
	h, _, to, _ := handoffFixture()
	to.Alive = false
	if ack, op := h.AssignReceived(); !ack || op != lbnode.OpAbort {
		t.Fatalf("dead To: assign = (%v, %v), want (true, OpAbort)", ack, op)
	}
	if h.Phase() != lbnode.PhaseAborted {
		t.Fatalf("phase = %v, want PhaseAborted", h.Phase())
	}

	// A VS that changed owner before the assignment arrived aborts.
	h, _, _, vs := handoffFixture()
	vs.Owner = &chord.Node{Index: 9, Alive: true}
	if _, op := h.AssignReceived(); op != lbnode.OpAbort {
		t.Fatalf("moved VS: op = %v, want OpAbort", op)
	}
}

func TestHandoffMidFlightFailures(t *testing.T) {
	// Retry exhaustion in the prepare phase aborts.
	h, _, _, _ := handoffFixture()
	h.AssignReceived()
	if op := h.Fail(); op != lbnode.OpAbort {
		t.Fatalf("prepare failure = %v, want OpAbort", op)
	}
	if op := h.Fail(); op != lbnode.OpNone {
		t.Errorf("second failure = %v, want OpNone (already settled)", op)
	}

	// The receiver refuses reservations once the pairing settled.
	if h.PrepareReceived() {
		t.Error("aborted handoff accepted a reservation")
	}

	// Sender loses the VS between prepare and commit.
	h, _, _, vs := handoffFixture()
	h.AssignReceived()
	vs.Owner = &chord.Node{Index: 9, Alive: true}
	if op := h.PrepareAcked(); op != lbnode.OpAbort {
		t.Fatalf("lost VS at commit = %v, want OpAbort", op)
	}

	// Receiver dies before the commit copy lands: the copy is refused
	// (silent), so the sender's retries will drain into an abort.
	h, _, to, _ := handoffFixture()
	h.AssignReceived()
	h.PrepareAcked()
	to.Alive = false
	if h.TransferReceived() {
		t.Error("commit accepted at a dead receiver")
	}
	if op := h.Fail(); op != lbnode.OpAbort {
		t.Fatalf("commit failure = %v, want OpAbort", op)
	}
}

func TestDepositVSA(t *testing.T) {
	heavy := &chord.Node{Index: 0, Alive: true}
	offers := []*chord.VServer{
		{Owner: heavy, Load: 3},
		{Owner: heavy, Load: 4},
	}
	pl := &core.PairList{}
	lbnode.DepositVSA(pl, &core.NodeState{Node: heavy, Class: core.Heavy, Offers: offers}, 0)
	if pl.Offers() != 2 || pl.OfferLoad() != 7 {
		t.Fatalf("heavy deposit: %d offers, load %.1f; want 2, 7", pl.Offers(), pl.OfferLoad())
	}
	light := &chord.Node{Index: 1, Alive: true}
	lbnode.DepositVSA(pl, &core.NodeState{Node: light, Class: core.Light, Deficit: 5}, 0)
	if pl.Lights() != 1 {
		t.Fatalf("light deposit: %d lights, want 1", pl.Lights())
	}
	lbnode.DepositVSA(pl, &core.NodeState{Node: light, Class: core.Neutral}, 0)
	if pl.Size() != 3 {
		t.Fatalf("neutral deposit changed the list: size %d, want 3", pl.Size())
	}
}

func TestTally(t *testing.T) {
	states := []*core.NodeState{
		{Class: core.Heavy}, {Class: core.Light}, {Class: core.Light},
		{Class: core.Neutral}, nil,
	}
	h, l, n := lbnode.Tally(states)
	if h != 1 || l != 2 || n != 1 {
		t.Fatalf("Tally = %d/%d/%d, want 1/2/1", h, l, n)
	}
}

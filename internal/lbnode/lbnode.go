// Package lbnode is the runtime-agnostic protocol core: the per-KT-node
// state machines of the paper's load-balancing scheme, written as pure
// transitions — (state, incoming message) → (state′, outgoing actions) —
// with no notion of time, delivery, retransmission or concurrency.
//
// One round of the scheme decomposes into per-node machines:
//
//   - LBICollect — the LBI converge-cast epoch at one KT node: deposit
//     the local reports, merge each child subtree's reply as it arrives,
//     and close (complete or expired) exactly once (§3.2).
//   - Roster — the dissemination endpoint: classify each physical node
//     against the global tuple the first time a copy reaches it,
//     duplicates are idempotent (§3.3).
//   - DepositVSA — a classified node's advertisement: a light node's
//     deficit entry or a heavy node's shed-VS offers (§3.4).
//   - VSACollect — the VSA converge-cast epoch: merge children's
//     unpaired lists, then pair at rendezvous points via Rendezvous
//     (threshold reached, or the root) and hand leftovers upward (§3.4).
//   - Handoff — the two-phase virtual-server transfer for one pairing:
//     assign → prepare/reserve → commit, with abort on invalid or
//     failed endpoints; the commit applies exactly once (§3.4 VST).
//
// Executors own everything else: internal/protocol drives these
// machines through sim.Engine events (acks, retries, epoch timers,
// fault injection are transport concerns), internal/livenet drives the
// same machines over channels with one goroutine per subtree, and
// core.Balancer remains the closed-form sequential reference. Because
// the machines are pure and single-threaded per node, an executor may
// call them from any scheduling discipline; the lbvet layercheck
// analyzer enforces that this package never imports sim, faults or par
// and never spawns goroutines.
package lbnode

import (
	"p2plb/internal/chord"
	"p2plb/internal/core"
)

// Classify runs the §3.3 classification rule for one node against the
// disseminated global tuple. It is a thin alias for core.ClassifyNode so
// executors take the classification phase from this package alongside
// the other machines.
func Classify(n *chord.Node, global core.LBI, epsilon float64, strategy core.SubsetStrategy) *core.NodeState {
	return core.ClassifyNode(n, global, epsilon, strategy)
}

// DepositVSA records one classified node's VSA advertisement in pl, the
// PairList at its reporting leaf: a light node contributes its deficit
// entry <ΔL_j, ip_addr(j)>, a heavy node one offer per shed virtual
// server. Neutral nodes deposit nothing. group is the proximity cell the
// advertisement was published under (0 when proximity-ignorant).
func DepositVSA(pl *core.PairList, st *core.NodeState, group uint64) {
	switch st.Class {
	case core.Light:
		pl.AddLight(st.Deficit, st.Node, group)
	case core.Heavy:
		for _, vs := range st.Offers {
			pl.AddOffer(vs, st.Node, group)
		}
	}
}

// Roster tracks which physical nodes have received the disseminated
// global tuple — the receiver-side state of the dissemination phase.
// Duplicate copies classify a node only once, and dead nodes are
// ignored.
type Roster struct {
	states map[*chord.Node]*core.NodeState
}

// NewRoster wraps states as the roster's backing store so executors can
// recycle the map across rounds; nil allocates a fresh one. The map must
// be empty.
func NewRoster(states map[*chord.Node]*core.NodeState) *Roster {
	if states == nil {
		states = make(map[*chord.Node]*core.NodeState)
	}
	return &Roster{states: states}
}

// Classify classifies node on the first delivery of the global tuple
// and records its state. It returns (nil, false) for a duplicate
// delivery or a dead node — the copy is absorbed without effect.
func (ro *Roster) Classify(node *chord.Node, global core.LBI, epsilon float64, strategy core.SubsetStrategy) (*core.NodeState, bool) {
	if _, ok := ro.states[node]; ok || !node.Alive {
		return nil, false
	}
	st := Classify(node, global, epsilon, strategy)
	ro.states[node] = st
	return st, true
}

// Census tallies the classes of every node classified so far.
func (ro *Roster) Census() (heavy, light, neutral int) {
	for _, st := range ro.states {
		switch st.Class {
		case core.Heavy:
			heavy++
		case core.Light:
			light++
		default:
			neutral++
		}
	}
	return heavy, light, neutral
}

// Tally counts classes over a slice of node states (nil entries are
// skipped) — the before-census of an executor that classified into a
// slice rather than through a Roster.
func Tally(states []*core.NodeState) (heavy, light, neutral int) {
	for _, st := range states {
		if st == nil {
			continue
		}
		switch st.Class {
		case core.Heavy:
			heavy++
		case core.Light:
			light++
		default:
			neutral++
		}
	}
	return heavy, light, neutral
}

// Census classifies every alive node afresh against the global tuple
// and tallies the classes — the end-of-round census both executors
// report after transfers have been applied.
func Census(nodes []*chord.Node, global core.LBI, epsilon float64, strategy core.SubsetStrategy) (heavy, light, neutral int) {
	for _, n := range nodes {
		if !n.Alive {
			continue
		}
		switch Classify(n, global, epsilon, strategy).Class {
		case core.Heavy:
			heavy++
		case core.Light:
			light++
		default:
			neutral++
		}
	}
	return heavy, light, neutral
}

package lbnode

import (
	"math/rand"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
)

// Placement is the canonical randomized placement of one balancing
// round: which KT leaf receives each alive node's LBI report, and which
// leaf receives its VSA advertisement should the node classify
// non-neutral. Both executors draw it from the same RNG in the same
// order — a single pre-pass over the ring before any messages flow — so
// the per-leaf inboxes are identical sequences across executors by
// construction. This is what makes intermediate rendezvous (threshold
// pairing below the root) agree: which entries pool at which interior
// node is purely a function of placement, so divergent draws used to
// produce divergent transfer sets even on a lossless network.
//
// The VSA leaf is drawn for every alive node, not just the eventually
// non-neutral ones: at placement time classification hasn't happened
// yet (it needs the global tuple), and skipping neutral nodes would
// make the draw sequence depend on execution order again.
type Placement struct {
	// Nodes lists the alive nodes in ring order.
	Nodes []*chord.Node
	// LBILeaf is aligned with Nodes: where each node's LBI report
	// lands. nil means the chosen virtual server has no leaf yet (a
	// fresh joiner between repairs) and the node sits the round out.
	LBILeaf []*ktree.Node
	// VSALeaf is where each alive node's advertisement lands if it
	// turns out heavy or light. Nodes whose chosen VS has no leaf are
	// absent.
	VSALeaf map[*chord.Node]*ktree.Node
	// LeafOf is the per-VS reporting-leaf cache the draws above went
	// through: one leaf per virtual server per round. Executors that
	// make additional lazy draws (routed proximity-aware publication)
	// share it so a VS never reports through two different leaves.
	LeafOf map[*chord.VServer]*ktree.Node
}

// PlaceRound draws the round's canonical placement from rng: for every
// alive node, in ring order, a random virtual server and a random leaf
// of that server — first the LBI pass, then the VSA pass. leafOf is the
// per-VS leaf cache to fill (it may carry capacity from a recycled
// round but must be empty).
func PlaceRound(ring *chord.Ring, tree *ktree.Tree, rng *rand.Rand, leafOf map[*chord.VServer]*ktree.Node) *Placement {
	if leafOf == nil {
		leafOf = make(map[*chord.VServer]*ktree.Node)
	}
	p := &Placement{LeafOf: leafOf}
	for _, n := range ring.Nodes() {
		if n.Alive {
			p.Nodes = append(p.Nodes, n)
		}
	}
	p.LBILeaf = make([]*ktree.Node, len(p.Nodes))
	p.VSALeaf = make(map[*chord.Node]*ktree.Node, len(p.Nodes))
	draw := func(n *chord.Node) *ktree.Node {
		vs := n.RandomVS(rng)
		if vs == nil {
			all := ring.VServers()
			vs = all[rng.Intn(len(all))]
		}
		leaf, ok := leafOf[vs]
		if !ok {
			if leaves := tree.LeavesOf(vs); len(leaves) > 0 {
				leaf = leaves[rng.Intn(len(leaves))]
			}
			leafOf[vs] = leaf
		}
		return leaf
	}
	for i, n := range p.Nodes {
		p.LBILeaf[i] = draw(n)
	}
	for _, n := range p.Nodes {
		if leaf := draw(n); leaf != nil {
			p.VSALeaf[n] = leaf
		}
	}
	return p
}

// DepositReports fills inbox with each placed node's LBI report —
// LBILeaf[i] receives core.NodeLBI(Nodes[i]) in ring order, the exact
// sequence both executors must aggregate.
func (p *Placement) DepositReports(inbox map[*ktree.Node][]core.LBI) {
	for i, n := range p.Nodes {
		leaf := p.LBILeaf[i]
		if leaf == nil {
			continue // fresh joiner: no leaf until the next repair
		}
		inbox[leaf] = append(inbox[leaf], core.NodeLBI(n))
	}
}

package daemon

import (
	"testing"

	"p2plb/internal/core"
	"p2plb/internal/protocol"
)

// TestStopGuard: a round tick that fires after Stop (an event already
// in the engine queue, or a direct call from a stale timer) must not
// run a round or the BeforeRound hook against a stopped daemon.
func TestStopGuard(t *testing.T) {
	ring, tree, _, _ := fixture(41, 64, 2000)
	hooked := 0
	d, err := New(ring, tree, Config{
		Protocol:      protocol.Config{Core: core.Config{Epsilon: 0.05}},
		RoundInterval: 1000,
		BeforeRound:   func() { hooked++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	ring.Engine().RunUntil(3500)
	rounds := len(d.History())
	if rounds == 0 || hooked == 0 {
		t.Fatalf("daemon never ran (%d rounds, %d hooks)", rounds, hooked)
	}
	d.Stop()

	// A stale tick firing post-Stop is a no-op.
	hookedAtStop := hooked
	d.runRound()
	if len(d.History()) != rounds {
		t.Fatalf("post-Stop tick appended history: %d -> %d", rounds, len(d.History()))
	}
	if hooked != hookedAtStop {
		t.Fatal("post-Stop tick ran the BeforeRound hook")
	}

	// And the engine queue holds nothing that revives it.
	ring.Engine().Run()
	if len(d.History()) != rounds || hooked != hookedAtStop {
		t.Fatal("daemon kept running after Stop")
	}

	// Stop is idempotent.
	d.Stop()
}

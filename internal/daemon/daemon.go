// Package daemon runs the load balancer as a long-lived service on the
// simulation engine: periodic tree maintenance (the paper's soft-state
// repair), periodic message-level balancing rounds, and bookkeeping of
// the system's imbalance over time.
//
// The paper evaluates single rounds on a frozen workload; the daemon is
// the operational regime a deployment would actually run — load drifts
// between rounds (objects come and go, nodes join and leave) and each
// round re-balances whatever the interval accumulated. The recorded
// history gives imbalance-versus-time series, from which the drift
// experiments measure how well periodic balancing contains a moving
// workload.
package daemon

import (
	"fmt"

	"p2plb/internal/chord"
	"p2plb/internal/ktree"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/stats"
)

// Config parameterizes the daemon.
type Config struct {
	// Protocol configures the message-level rounds.
	Protocol protocol.Config
	// RoundInterval is the time between balancing rounds (must be
	// positive).
	RoundInterval sim.Time
	// RepairInterval is the time between tree maintenance sweeps
	// (0 disables periodic repair; rounds still repair lazily).
	RepairInterval sim.Time
	// BeforeRound, when set, runs right before each round starts —
	// the hook drift experiments use to mutate the workload and/or
	// membership. The daemon repairs the tree after the hook.
	BeforeRound func()
}

// RoundRecord is one completed (or failed) round.
type RoundRecord struct {
	StartedAt sim.Time
	// GiniBefore/GiniAfter are the Gini coefficients of per-node unit
	// load around the round.
	GiniBefore, GiniAfter float64
	Result                *protocol.Result // nil if the round failed
	Err                   error
}

// Daemon drives periodic balancing over one ring/tree.
type Daemon struct {
	ring   *chord.Ring
	tree   *ktree.Tree
	runner *protocol.Runner
	cfg    Config
	eng    *sim.Engine

	history      []RoundRecord
	cancelRound  func()
	cancelRepair func()
	running      bool
	repairs      int
	retries      int

	// Repair-latency bookkeeping: failedSince marks the first round
	// failure not yet followed by a successful repair, so the histogram
	// records how long the system ran on a broken tree.
	failedPending bool
	failedSince   sim.Time
}

// New returns a stopped daemon.
func New(ring *chord.Ring, tree *ktree.Tree, cfg Config) (*Daemon, error) {
	if cfg.RoundInterval <= 0 {
		return nil, fmt.Errorf("daemon: non-positive round interval")
	}
	if cfg.RepairInterval < 0 {
		return nil, fmt.Errorf("daemon: negative repair interval")
	}
	runner, err := protocol.NewRunner(ring, tree, cfg.Protocol)
	if err != nil {
		return nil, err
	}
	return &Daemon{
		ring:   ring,
		tree:   tree,
		runner: runner,
		cfg:    cfg,
		eng:    ring.Engine(),
	}, nil
}

// Start schedules the periodic work. It may be called once.
func (d *Daemon) Start() error {
	if d.running {
		return fmt.Errorf("daemon: already running")
	}
	d.running = true
	d.cancelRound = d.eng.Every(d.cfg.RoundInterval, d.runRound)
	if d.cfg.RepairInterval > 0 {
		d.cancelRepair = d.eng.Every(d.cfg.RepairInterval, func() {
			if !d.running {
				return
			}
			if _, err := d.tree.Repair(); err == nil {
				d.repairs++
				if reg := d.eng.Metrics(); reg != nil {
					reg.Counter("daemon.repairs").Inc()
				}
				d.repaired()
			}
		})
	}
	return nil
}

// Stop cancels the periodic work; in-flight rounds still complete.
func (d *Daemon) Stop() {
	if !d.running {
		return
	}
	d.running = false
	d.cancelRound()
	if d.cancelRepair != nil {
		d.cancelRepair()
	}
}

// History returns the completed round records. The returned slice must
// not be modified.
func (d *Daemon) History() []RoundRecord { return d.history }

// Repairs returns how many periodic maintenance sweeps succeeded.
func (d *Daemon) Repairs() int { return d.repairs }

// Retries returns the total reliable-delivery retransmissions across
// all completed rounds.
func (d *Daemon) Retries() int { return d.retries }

// roundFailed records one failed round: the counter that used to be
// invisible in -metrics snapshots, plus the start of the repair-latency
// window when this is the first failure since the last good repair.
func (d *Daemon) roundFailed() {
	if reg := d.eng.Metrics(); reg != nil {
		reg.Counter("daemon.rounds_failed").Inc()
	}
	if !d.failedPending {
		d.failedPending = true
		d.failedSince = d.eng.Now()
	}
}

// repaired closes an open repair-latency window: the virtual time from
// the first post-repair round failure to the successful repair.
func (d *Daemon) repaired() {
	if !d.failedPending {
		return
	}
	d.failedPending = false
	if reg := d.eng.Metrics(); reg != nil {
		reg.Histogram("daemon.repair.latency").Observe(int64(d.eng.Now() - d.failedSince))
	}
}

// unitLoadGini computes the Gini coefficient of per-node unit load.
func (d *Daemon) unitLoadGini() float64 {
	var units []float64
	for _, n := range d.ring.Nodes() {
		if n.Alive {
			units = append(units, n.TotalLoad()/n.Capacity)
		}
	}
	return stats.Gini(units)
}

func (d *Daemon) runRound() {
	// Stop guard: a tick already sitting in the engine queue when Stop
	// cancelled the interval still fires; it must not start a round (or
	// run the BeforeRound hook) against a daemon the caller believes is
	// quiescent.
	if !d.running {
		return
	}
	if d.cfg.BeforeRound != nil {
		d.cfg.BeforeRound()
	}
	// A consistent tree before the round (membership/hosting may have
	// changed since the last repair).
	if _, err := d.tree.Repair(); err != nil {
		d.history = append(d.history, RoundRecord{StartedAt: d.eng.Now(), Err: err})
		d.roundFailed()
		return
	}
	d.repaired()
	rec := RoundRecord{StartedAt: d.eng.Now(), GiniBefore: d.unitLoadGini()}
	if reg := d.eng.Metrics(); reg != nil {
		reg.Series("daemon.gini.before").Append(float64(rec.StartedAt), rec.GiniBefore)
	}
	err := d.runner.StartRound(func(res *protocol.Result, err error) {
		rec.Result = res
		rec.Err = err
		rec.GiniAfter = d.unitLoadGini()
		d.history = append(d.history, rec)
		if res != nil {
			d.retries += res.Retries
		}
		if reg := d.eng.Metrics(); reg != nil {
			reg.Counter("daemon.rounds").Inc()
			if err != nil {
				reg.Counter("daemon.round_errors").Inc()
			}
			if res != nil {
				reg.Counter("daemon.retries").Add(int64(res.Retries))
			}
			reg.Series("daemon.gini.after").Append(float64(d.eng.Now()), rec.GiniAfter)
		}
		if err != nil {
			d.roundFailed()
		}
	})
	if err != nil {
		// A previous round is still running (interval shorter than the
		// round) — skip this tick.
		rec.Err = err
		d.history = append(d.history, rec)
		d.roundFailed()
	}
}

// Summary aggregates a daemon run.
type Summary struct {
	Rounds       int
	Failed       int
	TotalMoved   float64
	TotalRetries int
	MeanGiniPre  float64
	MeanGiniPost float64
}

// Summarize folds the history into a Summary.
func (d *Daemon) Summarize() Summary {
	var s Summary
	s.TotalRetries = d.retries
	for _, rec := range d.history {
		s.Rounds++
		if rec.Err != nil {
			s.Failed++
			continue
		}
		s.TotalMoved += rec.Result.MovedLoad
		s.MeanGiniPre += rec.GiniBefore
		s.MeanGiniPost += rec.GiniAfter
	}
	if ok := s.Rounds - s.Failed; ok > 0 {
		s.MeanGiniPre /= float64(ok)
		s.MeanGiniPost /= float64(ok)
	}
	return s
}

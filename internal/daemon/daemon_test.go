package daemon

import (
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/faults"
	"p2plb/internal/ktree"
	"p2plb/internal/metrics"
	"p2plb/internal/objects"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

// fixture: object-backed heterogeneous ring + tree + store.
func fixture(seed int64, nodes, objCount int) (*chord.Ring, *ktree.Tree, *objects.Store, *rand.Rand) {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), 5)
	}
	store := objects.NewStore(ring)
	rng := rand.New(rand.NewSource(seed))
	if err := store.Populate(rng, objCount, func(r *rand.Rand) float64 { return r.Float64() * 2 }); err != nil {
		panic(err)
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		panic(err)
	}
	if err := tree.Build(); err != nil {
		panic(err)
	}
	return ring, tree, store, rng
}

func TestNewValidation(t *testing.T) {
	ring, tree, _, _ := fixture(1, 16, 500)
	if _, err := New(ring, tree, Config{}); err == nil {
		t.Error("zero round interval should fail")
	}
	if _, err := New(ring, tree, Config{RoundInterval: 10, RepairInterval: -1}); err == nil {
		t.Error("negative repair interval should fail")
	}
	if _, err := New(ring, tree, Config{
		RoundInterval: 10,
		Protocol:      protocol.Config{Core: core.Config{Epsilon: -1}},
	}); err == nil {
		t.Error("invalid protocol config should fail")
	}
}

func TestPeriodicRoundsRun(t *testing.T) {
	ring, tree, _, _ := fixture(2, 96, 20000)
	d, err := New(ring, tree, Config{
		RoundInterval:  5000,
		RepairInterval: 1000,
		Protocol:       protocol.Config{Core: core.Config{Epsilon: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Fatal("double start must fail")
	}
	ring.Engine().RunUntil(26000)
	d.Stop()
	d.Stop() // idempotent
	ring.Engine().Run()
	hist := d.History()
	if len(hist) < 4 {
		t.Fatalf("expected >= 4 rounds, got %d", len(hist))
	}
	for i, rec := range hist {
		if rec.Err != nil {
			t.Fatalf("round %d failed: %v", i, rec.Err)
		}
		if rec.GiniAfter > rec.GiniBefore+1e-9 {
			t.Errorf("round %d worsened imbalance: %v -> %v", i, rec.GiniBefore, rec.GiniAfter)
		}
	}
	// First round does the heavy lifting; later ones find balance.
	if hist[0].Result.MovedLoad == 0 {
		t.Error("first round moved nothing")
	}
	if last := hist[len(hist)-1]; last.Result.MovedLoad > hist[0].Result.MovedLoad/4 {
		t.Errorf("no convergence: first moved %v, last %v",
			hist[0].Result.MovedLoad, last.Result.MovedLoad)
	}
	if d.Repairs() == 0 {
		t.Error("periodic repair never ran")
	}
}

func TestDriftingWorkloadStaysBalanced(t *testing.T) {
	ring, tree, store, rng := fixture(3, 96, 20000)
	loadFn := func(r *rand.Rand) float64 { return r.Float64() * 2 }
	d, err := New(ring, tree, Config{
		RoundInterval: 5000,
		Protocol:      protocol.Config{Core: core.Config{Epsilon: 0.05}},
		BeforeRound: func() {
			// 10% of the object population churns between rounds.
			if err := store.Drift(rng, 2000, loadFn); err != nil {
				t.Error(err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ring.Engine().RunUntil(60000)
	d.Stop()
	ring.Engine().Run()

	sum := d.Summarize()
	if sum.Rounds < 8 || sum.Failed > 0 {
		t.Fatalf("rounds=%d failed=%d", sum.Rounds, sum.Failed)
	}
	hist := d.History()
	// The very first round faces the raw unbalanced workload.
	if hist[0].GiniBefore < 0.6 {
		t.Fatalf("fixture too tame: initial Gini %v", hist[0].GiniBefore)
	}
	// Containment: with 10%% of objects churning between rounds, the
	// pre-round imbalance must never climb back anywhere near the
	// initial level (capacity granularity keeps a floor of ~0.3 —
	// capacity-1 nodes cannot hold a proportional share — so the
	// meaningful signal is distance from the unbalanced state, not 0).
	for i := 2; i < len(hist); i++ {
		if hist[i].GiniBefore > hist[0].GiniBefore*0.7 {
			t.Errorf("round %d saw pre-Gini %v, drift not contained (initial %v)",
				i, hist[i].GiniBefore, hist[0].GiniBefore)
		}
		if hist[i].Result.MovedLoad > hist[0].Result.MovedLoad {
			t.Errorf("round %d moved more than the initial round", i)
		}
	}
	// Rounds must keep improving on the drift they absorb.
	if sum.MeanGiniPost >= sum.MeanGiniPre {
		t.Errorf("rounds do not improve imbalance: %v -> %v", sum.MeanGiniPre, sum.MeanGiniPost)
	}
	if err := store.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
	ring.CheckInvariants()
	tree.CheckInvariants()
}

func TestMembershipChurnBetweenRounds(t *testing.T) {
	ring, tree, store, rng := fixture(4, 96, 10000)
	eng := ring.Engine()
	profile := workload.GnutellaProfile()
	d, err := New(ring, tree, Config{
		RoundInterval:  6000,
		RepairInterval: 1500,
		Protocol:       protocol.Config{Core: core.Config{Epsilon: 0.05}},
		BeforeRound: func() {
			// One node dies and one joins before every round; the
			// store re-derives loads from object ownership.
			alive := ring.AliveNodes()
			if len(alive) > 16 {
				ring.RemoveNode(alive[rng.Intn(len(alive))])
			}
			ring.AddNode(-1, profile.Sample(eng.Rand()), 5)
			store.SyncLoads()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunUntil(40000)
	d.Stop()
	eng.Run()
	sum := d.Summarize()
	if sum.Failed > 0 {
		t.Fatalf("%d rounds failed under churn", sum.Failed)
	}
	if sum.Rounds < 5 {
		t.Fatalf("only %d rounds ran", sum.Rounds)
	}
	if err := store.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
	ring.CheckInvariants()
	tree.CheckInvariants()
}

func TestRoundIntervalShorterThanRoundSkips(t *testing.T) {
	// With an absurdly short interval, the second tick fires while the
	// first round is still running; the daemon records the skip and
	// continues.
	ring, tree, _, _ := fixture(5, 64, 5000)
	d, err := New(ring, tree, Config{
		RoundInterval: 1,
		Protocol:      protocol.Config{Core: core.Config{Epsilon: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ring.Engine().RunUntil(50)
	d.Stop()
	ring.Engine().Run()
	skipped := 0
	completed := 0
	for _, rec := range d.History() {
		if rec.Err != nil {
			skipped++
		} else {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("no round completed")
	}
	if skipped == 0 {
		t.Fatal("expected skipped ticks with interval 1")
	}
}

// TestRetriesSurfacedInMetrics runs the daemon under packet loss and
// requires the retransmission totals to show up in both the registry
// and the summary (before this, lost messages were retried silently).
func TestRetriesSurfacedInMetrics(t *testing.T) {
	ring, tree, _, _ := fixture(6, 96, 10000)
	reg := metrics.NewRegistry()
	ring.Engine().SetMetrics(reg)
	in, err := faults.New(6, faults.Plan{Drop: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Attach(ring); err != nil {
		t.Fatal(err)
	}
	d, err := New(ring, tree, Config{
		RoundInterval: 5000,
		Protocol:      protocol.Config{Core: core.Config{Epsilon: 0.05}, ChildTimeout: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ring.Engine().RunUntil(30000)
	d.Stop()
	ring.Engine().Run()

	if d.Retries() == 0 {
		t.Fatal("10% loss produced no retransmissions")
	}
	if got := reg.Counter("daemon.retries").Value(); got != int64(d.Retries()) {
		t.Errorf("daemon.retries counter %d, want %d", got, d.Retries())
	}
	if got := d.Summarize().TotalRetries; got != d.Retries() {
		t.Errorf("Summary.TotalRetries %d, want %d", got, d.Retries())
	}
}

// TestFailedRoundsAndRepairLatencySurfaced drives the skip path (round
// interval shorter than a round) with a registry attached: every failed
// tick must count, and the failure→successful-repair window must land
// in the repair-latency histogram.
func TestFailedRoundsAndRepairLatencySurfaced(t *testing.T) {
	ring, tree, _, _ := fixture(7, 64, 5000)
	reg := metrics.NewRegistry()
	ring.Engine().SetMetrics(reg)
	d, err := New(ring, tree, Config{
		RoundInterval: 1,
		Protocol:      protocol.Config{Core: core.Config{Epsilon: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ring.Engine().RunUntil(50)
	d.Stop()
	ring.Engine().Run()

	failed := 0
	for _, rec := range d.History() {
		if rec.Err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("expected skipped ticks with interval 1")
	}
	if got := reg.Counter("daemon.rounds_failed").Value(); got != int64(failed) {
		t.Errorf("daemon.rounds_failed %d, want %d", got, failed)
	}
	h := reg.Histogram("daemon.repair.latency")
	if h.Count() == 0 {
		t.Error("no repair-latency window closed despite failures followed by repairs")
	}
	if h.Sum() <= 0 {
		t.Errorf("repair latency sum %d, want positive virtual time", h.Sum())
	}
}

// Package par provides small parallel-execution helpers used across the
// simulator: bounded parallel for-loops over index ranges and work items,
// and a map helper that preserves result order. They exist so that the
// embarrassingly parallel parts of the reproduction — per-source shortest
// paths, per-node workload generation, multi-graph experiment trials —
// saturate the available cores without each call site re-implementing a
// worker pool.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes a
// non-positive count: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n) using up to workers goroutines
// (DefaultWorkers if workers <= 0). Iterations are handed out dynamically
// (atomic counter), so uneven per-iteration cost still balances. For
// blocks until every iteration completes. It is a no-op for n <= 0.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked runs fn(lo, hi) over contiguous chunks that partition [0, n),
// using up to workers goroutines. It suits loops whose per-element cost is
// tiny and uniform, where the atomic handout of For would dominate.
// Chunks are sized so each worker receives a few, preserving some dynamic
// balance. It blocks until all chunks complete.
func ForChunked(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	// 4 chunks per worker keeps stragglers short without excess handouts.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every element of in, in parallel, and returns the
// results in input order.
func Map[T, U any](in []T, workers int, fn func(T) U) []U {
	out := make([]U, len(in))
	For(len(in), workers, func(i int) {
		out[i] = fn(in[i])
	})
	return out
}

// MapErr applies fn to every element of in, in parallel. If any call
// returns a non-nil error, MapErr returns the error of the
// lowest-indexed failing element (deterministic) along with the partial
// results; fn is still invoked for every element.
func MapErr[T, U any](in []T, workers int, fn func(T) (U, error)) ([]U, error) {
	out := make([]U, len(in))
	errs := make([]error, len(in))
	For(len(in), workers, func(i int) {
		out[i], errs[i] = fn(in[i])
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, workers := range []int{0, 1, 2, 16, 2000} {
			counts := make([]atomic.Int32, n)
			For(n, workers, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestForNegativeN(t *testing.T) {
	called := false
	For(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("For(-5) must not call fn")
	}
}

func TestForChunkedCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 999} {
		for _, workers := range []int{0, 1, 3, 32} {
			counts := make([]atomic.Int32, n)
			ForChunked(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	out := Map(in, 8, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := Map([]int(nil), 4, func(x int) int { return x })
	if len(out) != 0 {
		t.Fatalf("Map(nil) returned %d elements", len(out))
	}
}

func TestMapErrFirstError(t *testing.T) {
	in := []int{0, 1, 2, 3, 4, 5}
	errOdd := errors.New("odd")
	var calls atomic.Int32
	out, err := MapErr(in, 3, func(x int) (int, error) {
		calls.Add(1)
		if x%2 == 1 {
			return 0, errOdd
		}
		return x * 10, nil
	})
	if err != errOdd {
		t.Fatalf("err = %v, want errOdd", err)
	}
	if calls.Load() != int32(len(in)) {
		t.Fatalf("fn called %d times, want %d", calls.Load(), len(in))
	}
	if out[0] != 0 || out[2] != 20 || out[4] != 40 {
		t.Fatalf("partial results wrong: %v", out)
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr([]string{"a", "bb"}, 2, func(s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("out = %v", out)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sum atomic.Int64
		For(256, 0, func(i int) { sum.Add(int64(i)) })
	}
}

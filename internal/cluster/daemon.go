package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"time"

	"sync"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ident"
	"p2plb/internal/lbnode"
	"p2plb/internal/metrics"
	"p2plb/internal/wire"
)

// DaemonConfig parameterizes one lbd process (or in-process daemon in
// tests).
type DaemonConfig struct {
	Spec    *Spec
	Rank    int
	DataDir string // holds the WAL; must exist
	// OnPhase is a test hook observing handoff progress; phases are
	// "assign", "prepare", "prepare-acked", "escrow", "commit-dup",
	// "apply", "commit-acked", "abort". It runs with the daemon lock
	// held — hooks must not call back into the same daemon.
	OnPhase func(pair, phase string)
}

// Status is a daemon's control-channel self-report.
type Status struct {
	Rank       int     `json:"rank"`
	Started    uint64  `json:"started"` // highest round entered
	Done       uint64  `json:"done"`    // highest round whose local tree work finished
	Capacity   float64 `json:"capacity"`
	Total      float64 `json:"total"`
	DriftRound uint64  `json:"drift_round"`
	DriftSum   float64 `json:"drift_sum"`
	Pending    int     `json:"pending"` // open sender-side escrows
	Active     int     `json:"active"`  // unsettled handoff machines
	VSs        []VSRec `json:"vss"`
}

// Wire message bodies. LBI tuples travel as their three components and
// are rebuilt with core.MakeLBI on arrival.
type lbiBody struct {
	Child   int     `json:"child"`
	L       float64 `json:"l"`
	C       float64 `json:"c"`
	Lmin    float64 `json:"lmin"`
	Invalid bool    `json:"invalid,omitempty"`
}

type wireLight struct {
	Deficit float64 `json:"deficit"`
	Rank    int     `json:"rank"`
	Group   uint64  `json:"group"`
}

type wireOffer struct {
	ID    ident.ID `json:"id"`
	Load  float64  `json:"load"`
	Rank  int      `json:"rank"`
	Group uint64   `json:"group"`
}

type vsaBody struct {
	Child  int         `json:"child"`
	Lights []wireLight `json:"lights"`
	Offers []wireOffer `json:"offers"`
}

type assignBody struct {
	Pair string   `json:"pair"`
	ID   ident.ID `json:"id"`
	Load float64  `json:"load"`
	From int      `json:"from"`
	To   int      `json:"to"`
}

type transferBody struct {
	Pair string   `json:"pair"`
	ID   ident.ID `json:"id"`
	Load float64  `json:"load"`
	From int      `json:"from"`
	To   int      `json:"to"`
}

type roundBody struct {
	Round uint64 `json:"round"`
}

// roundState is one balancing round's soft state at this daemon. It is
// rebuilt from scratch (and re-fed by retransmissions and re-issued
// triggers) after a restart — only the transfer escrows are durable.
type roundState struct {
	r          uint64
	lbi        *lbnode.LBICollect
	lbiSeen    map[int]bool
	lbiUp      bool
	global     core.LBI
	haveGlobal bool
	vsa        *lbnode.VSACollect
	vsaSeen    map[int]bool
	vsaBuf     []vsaBody // child replies arriving before the global LBI
	vsaUp      bool
	lbiTimer   *time.Timer
	vsaTimer   *time.Timer
}

// handoffState wraps the lbnode two-phase machine with the executor's
// settlement bookkeeping.
type handoffState struct {
	h       *lbnode.Handoff
	id      ident.ID
	to      int
	settled bool
}

// Daemon hosts one physical node of the cluster: its virtual-server
// store, its KT-subtree state machines, the wire transport, the WAL and
// the /metrics endpoint.
type Daemon struct {
	cfg      DaemonConfig
	spec     *Spec
	rank     int
	parent   int
	children []int

	tr  *wire.Transport
	wal *WAL
	reg *metrics.Registry

	httpLn  net.Listener
	httpSrv *http.Server

	mu         sync.Mutex
	closed     bool
	capacity   float64
	store      map[ident.ID]float64
	applied    map[string]bool
	pending    map[string]PendingCommit
	driftRound uint64
	driftSum   float64
	rounds     map[uint64]*roundState
	handoffs   map[string]*handoffState
	active     int
	started    uint64
	done       uint64

	quitCh   chan struct{}
	quitOnce sync.Once

	cRounds, cHandoffs, cAborts, cApplies, cEscrows *metrics.Counter
}

// NewDaemon recovers state from the WAL (deriving the initial inventory
// when the log is fresh), starts the wire transport and the metrics
// endpoint, and resumes any escrowed commits that were cut off by a
// crash.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	spec := cfg.Spec
	spec.withDefaults()
	if cfg.Rank < 0 || cfg.Rank >= spec.Procs {
		return nil, fmt.Errorf("cluster: rank %d outside 0..%d", cfg.Rank, spec.Procs-1)
	}
	wal, st, err := OpenWAL(filepath.Join(cfg.DataDir, fmt.Sprintf("lbd-%d.wal", cfg.Rank)))
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:      cfg,
		spec:     spec,
		rank:     cfg.Rank,
		parent:   spec.Parent(cfg.Rank),
		children: spec.Children(cfg.Rank),
		wal:      wal,
		rounds:   make(map[uint64]*roundState),
		handoffs: make(map[string]*handoffState),
		quitCh:   make(chan struct{}),
	}
	reg := metrics.NewRegistry()
	d.reg = reg
	d.cRounds = reg.Counter("cluster.rounds")
	d.cHandoffs = reg.Counter("cluster.handoffs")
	d.cAborts = reg.Counter("cluster.aborts")
	d.cApplies = reg.Counter("cluster.applies")
	d.cEscrows = reg.Counter("cluster.escrows")

	if st.HasSnap {
		d.capacity = st.Capacity
		d.store = st.Store
		d.applied = st.Applied
		d.pending = st.Pending
		d.driftRound = st.DriftRound
		d.driftSum = st.DriftSum
	} else {
		inv := DeriveInventories(spec.Seed, spec.Procs, spec.VSPerNode)[cfg.Rank]
		d.capacity = inv.Capacity
		d.store = make(map[ident.ID]float64, len(inv.VSs))
		for _, vs := range inv.VSs {
			d.store[vs.ID] = vs.Load
		}
		d.applied = make(map[string]bool)
		d.pending = make(map[string]PendingCommit)
		if err := d.appendSnap(); err != nil {
			wal.Close()
			return nil, err
		}
	}

	d.tr, err = wire.NewTransport(wire.Config{
		Rank:        cfg.Rank,
		Addrs:       spec.Addrs,
		ClusterID:   spec.ClusterID,
		Handler:     d.handle,
		Request:     d.serveReq,
		RetryBase:   spec.RetryBase,
		RetryCap:    spec.RetryCap,
		MaxAttempts: spec.MaxAttempts,
		Seed:        spec.Seed,
		Metrics:     d.reg,
	})
	if err != nil {
		wal.Close()
		return nil, err
	}

	if len(spec.HTTPAddrs) == spec.Procs {
		ln, err := net.Listen("tcp", spec.HTTPAddrs[cfg.Rank])
		if err != nil {
			d.tr.Close()
			wal.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if reg := d.reg; reg != nil {
				reg.Snapshot().WriteJSON(w)
			}
		})
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: mux}
		go d.httpSrv.Serve(ln)
	}

	// Crash recovery: every open escrow resumes its unbounded commit.
	// The receiver's applied-set absorbs re-deliveries, so resuming is
	// always safe — this is the half of exactly-once the WAL buys.
	d.mu.Lock()
	for pair, pc := range d.pending {
		d.sendCommit(pair, pc)
	}
	d.mu.Unlock()
	return d, nil
}

// Addr returns the daemon's bound wire address.
func (d *Daemon) Addr() string { return d.tr.Addr() }

// Done returns a channel closed when the daemon was asked to quit.
func (d *Daemon) Done() <-chan struct{} { return d.quitCh }

// Registry exposes the daemon's metrics registry.
func (d *Daemon) Registry() *metrics.Registry { return d.reg }

// Close stops the transport, the metrics endpoint and the timers. It
// writes nothing: all durable state is already in the WAL, so Close is
// deliberately indistinguishable from SIGKILL as far as recovery is
// concerned.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for _, rs := range d.rounds {
		if rs.lbiTimer != nil {
			rs.lbiTimer.Stop()
		}
		if rs.vsaTimer != nil {
			rs.vsaTimer.Stop()
		}
	}
	d.mu.Unlock()
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	d.tr.Close()
	d.wal.Close()
	d.quitOnce.Do(func() { close(d.quitCh) })
}

func (d *Daemon) hook(pair, phase string) {
	if d.cfg.OnPhase != nil {
		d.cfg.OnPhase(pair, phase)
	}
}

func (d *Daemon) appendSnap() error {
	snap := &walSnap{
		Capacity:   d.capacity,
		DriftRound: d.driftRound,
		DriftSum:   d.driftSum,
	}
	for id, load := range d.store {
		snap.VSs = append(snap.VSs, VSRec{ID: id, Load: load})
	}
	sort.Slice(snap.VSs, func(i, j int) bool { return snap.VSs[i].ID < snap.VSs[j].ID }) //lbvet:ignore identcompare canonical serialization order, not a ring-distance comparison
	for p := range d.applied {
		snap.Applied = append(snap.Applied, p)
	}
	sort.Strings(snap.Applied)
	for _, pc := range d.pending {
		snap.Pending = append(snap.Pending, pc)
	}
	sort.Slice(snap.Pending, func(i, j int) bool { return snap.Pending[i].Pair < snap.Pending[j].Pair })
	return d.wal.Append(walRec{T: "snap", Snap: snap})
}

// standaloneNode materializes the current store as a chord node for the
// runtime-agnostic classification code. The node index is the rank, so
// emitted pairs carry ranks in their endpoint indexes.
func (d *Daemon) standaloneNode() *chord.Node {
	vss := make([]*chord.VServer, 0, len(d.store))
	for id, load := range d.store {
		vss = append(vss, &chord.VServer{ID: id, Load: load})
	}
	sort.Slice(vss, func(i, j int) bool { return vss[i].ID < vss[j].ID }) //lbvet:ignore identcompare deterministic shed-subset input order, not a ring-distance comparison
	return chord.NewStandaloneNode(d.rank, d.capacity, vss)
}

func (d *Daemon) totalLoad() float64 {
	var t float64
	for _, l := range d.store {
		t += l
	}
	return t
}

// ---- control channel ----

func (d *Daemon) serveReq(kind string, body json.RawMessage) (any, error) {
	switch kind {
	case "ping":
		return map[string]int{"rank": d.rank}, nil
	case "round":
		var rb roundBody
		if err := json.Unmarshal(body, &rb); err != nil {
			return nil, err
		}
		d.mu.Lock()
		d.startRound(rb.Round)
		d.mu.Unlock()
		return map[string]bool{"ok": true}, nil
	case "status":
		d.mu.Lock()
		st := Status{
			Rank:       d.rank,
			Started:    d.started,
			Done:       d.done,
			Capacity:   d.capacity,
			Total:      d.totalLoad(),
			DriftRound: d.driftRound,
			DriftSum:   d.driftSum,
			Pending:    len(d.pending),
			Active:     d.active,
		}
		for id, load := range d.store {
			st.VSs = append(st.VSs, VSRec{ID: id, Load: load})
		}
		d.mu.Unlock()
		sort.Slice(st.VSs, func(i, j int) bool { return st.VSs[i].ID < st.VSs[j].ID }) //lbvet:ignore identcompare stable status output order, not a ring-distance comparison
		return st, nil
	case "quit":
		d.quitOnce.Do(func() { close(d.quitCh) })
		return map[string]bool{"ok": true}, nil
	}
	return nil, fmt.Errorf("cluster: unknown control request %q", kind)
}

// ---- peer messages ----

func (d *Daemon) handle(m wire.Msg) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	switch m.Kind {
	case "start":
		d.startRound(m.Round)
	case "lbi":
		var b lbiBody
		if json.Unmarshal(m.Body, &b) == nil {
			d.onLBI(m.Round, b)
		}
	case "global":
		var b lbiBody
		if json.Unmarshal(m.Body, &b) == nil {
			d.onGlobal(m.Round, b)
		}
	case "vsa":
		var b vsaBody
		if json.Unmarshal(m.Body, &b) == nil {
			d.onVSA(m.Round, b)
		}
	case "assign":
		var b assignBody
		if json.Unmarshal(m.Body, &b) == nil {
			d.onAssign(m.Round, b)
		}
	case "prepare":
		var b transferBody
		if json.Unmarshal(m.Body, &b) == nil {
			// The reservation itself is the transport acknowledgement: a
			// live receiver acks, a dead one is silent and the sender's
			// bounded retries drain into an abort (lbnode.Handoff.Fail).
			d.hook(b.Pair, "prepare")
		}
	case "commit":
		var b transferBody
		if json.Unmarshal(m.Body, &b) == nil {
			d.onCommit(b)
		}
	}
}

func encodeLBI(child int, lbi core.LBI) lbiBody {
	if !lbi.Valid() {
		return lbiBody{Child: child, Invalid: true}
	}
	return lbiBody{Child: child, L: lbi.L, C: lbi.C, Lmin: lbi.Lmin}
}

func decodeLBI(b lbiBody) core.LBI {
	if b.Invalid {
		return core.LBI{}
	}
	return core.MakeLBI(b.L, b.C, b.Lmin)
}

// startRound enters (or re-enters) round r. A re-entry — from a
// re-issued supervisor trigger or a parent's re-forwarded start —
// re-forwards the trigger down the tree and re-sends whatever this
// daemon already produced upward, so restarted ancestors are re-fed.
// All sends are idempotent at the receiver (epoch dedup per child).
func (d *Daemon) startRound(r uint64) {
	if rs, ok := d.rounds[r]; ok {
		d.refeed(rs)
		return
	}
	if r > d.started {
		d.started = r
	}
	if d.cRounds != nil {
		d.cRounds.Inc()
	}
	d.applyDrift(r)
	// Drop soft state two rounds back; stragglers for pruned rounds are
	// absorbed (and acked) without effect.
	for old, rs := range d.rounds {
		if old+2 <= r {
			if rs.lbiTimer != nil {
				rs.lbiTimer.Stop()
			}
			if rs.vsaTimer != nil {
				rs.vsaTimer.Stop()
			}
			delete(d.rounds, old)
		}
	}
	local := core.NodeLBI(d.standaloneNode())
	rs := &roundState{
		r:       r,
		lbi:     lbnode.NewLBICollect([]core.LBI{local}, len(d.children)),
		lbiSeen: make(map[int]bool),
		vsaSeen: make(map[int]bool),
	}
	d.rounds[r] = rs
	for _, c := range d.children {
		d.tr.Send(c, "start", r, nil, wire.SendOpts{})
	}
	if rs.lbi.Done() {
		d.lbiComplete(rs)
	} else {
		rs.lbiTimer = time.AfterFunc(d.spec.EpochTimeout, func() { d.expireLBI(r) })
	}
}

func (d *Daemon) refeed(rs *roundState) {
	for _, c := range d.children {
		d.tr.Send(c, "start", rs.r, nil, wire.SendOpts{})
	}
	if rs.haveGlobal {
		for _, c := range d.children {
			d.tr.Send(c, "global", rs.r, encodeLBI(d.rank, rs.global), wire.SendOpts{})
		}
	}
	if rs.lbiUp && d.parent >= 0 {
		d.tr.Send(d.parent, "lbi", rs.r, encodeLBI(d.rank, rs.lbi.Aggregate()), wire.SendOpts{})
	}
	if rs.vsaUp && d.parent >= 0 {
		d.sendVSAUp(rs)
	}
}

func (d *Daemon) expireLBI(r uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	rs, ok := d.rounds[r]
	if !ok {
		return
	}
	if _, expired := rs.lbi.Expire(); expired {
		d.lbiComplete(rs)
	}
}

func (d *Daemon) onLBI(r uint64, b lbiBody) {
	rs := d.ensureRound(r)
	if rs == nil || rs.lbiSeen[b.Child] {
		return
	}
	rs.lbiSeen[b.Child] = true
	idx := d.childIndex(b.Child)
	if idx < 0 {
		return
	}
	if rs.lbi.ChildReply(idx, decodeLBI(b)) {
		d.lbiComplete(rs)
	}
}

// ensureRound returns the round state, creating it (as startRound does)
// when a child's reply outruns the trigger — which happens when this
// daemon restarted mid-round and the child's retransmissions arrive
// before the supervisor re-issues the trigger.
func (d *Daemon) ensureRound(r uint64) *roundState {
	if rs, ok := d.rounds[r]; ok {
		return rs
	}
	d.startRound(r)
	return d.rounds[r]
}

func (d *Daemon) childIndex(rank int) int {
	for i, c := range d.children {
		if c == rank {
			return i
		}
	}
	return -1
}

func (d *Daemon) lbiComplete(rs *roundState) {
	if rs.lbiTimer != nil {
		rs.lbiTimer.Stop()
	}
	rs.lbiUp = true
	agg := rs.lbi.Aggregate()
	if d.rank == 0 {
		d.onGlobal(rs.r, encodeLBI(0, agg))
	} else {
		d.tr.Send(d.parent, "lbi", rs.r, encodeLBI(d.rank, agg), wire.SendOpts{})
	}
}

func (d *Daemon) onGlobal(r uint64, b lbiBody) {
	rs := d.ensureRound(r)
	if rs == nil || rs.haveGlobal {
		return
	}
	rs.global = decodeLBI(b)
	rs.haveGlobal = true
	for _, c := range d.children {
		d.tr.Send(c, "global", r, encodeLBI(d.rank, rs.global), wire.SendOpts{})
	}
	d.startVSA(rs)
}

func (d *Daemon) startVSA(rs *roundState) {
	st := lbnode.Classify(d.standaloneNode(), rs.global, d.spec.Epsilon, core.SubsetAuto)
	pl := &core.PairList{}
	if st != nil {
		lbnode.DepositVSA(pl, st, 0)
	}
	rs.vsa = lbnode.NewVSACollect(pl, len(d.children))
	buf := rs.vsaBuf
	rs.vsaBuf = nil
	for _, b := range buf {
		d.feedVSA(rs, b)
	}
	if rs.vsa.Done() {
		d.vsaComplete(rs)
	} else {
		rs.vsaTimer = time.AfterFunc(d.spec.EpochTimeout, func() { d.expireVSA(rs.r) })
	}
}

func (d *Daemon) expireVSA(r uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	rs, ok := d.rounds[r]
	if !ok || rs.vsa == nil {
		return
	}
	if _, expired := rs.vsa.Expire(); expired {
		d.vsaComplete(rs)
	}
}

func (d *Daemon) onVSA(r uint64, b vsaBody) {
	rs := d.ensureRound(r)
	if rs == nil || rs.vsaSeen[b.Child] {
		return
	}
	rs.vsaSeen[b.Child] = true
	if rs.vsa == nil {
		// The global tuple has not reached this daemon yet (fresh
		// restart); buffer until dissemination catches up.
		rs.vsaBuf = append(rs.vsaBuf, b)
		return
	}
	d.feedVSA(rs, b)
}

func (d *Daemon) feedVSA(rs *roundState, b vsaBody) {
	sub := &core.PairList{}
	for _, l := range b.Lights {
		sub.AddLight(l.Deficit, &chord.Node{Index: l.Rank, Alive: true}, l.Group)
	}
	for _, o := range b.Offers {
		owner := &chord.Node{Index: o.Rank, Alive: true}
		vs := &chord.VServer{ID: o.ID, Owner: owner, Load: o.Load}
		sub.AddOffer(vs, owner, o.Group)
	}
	if rs.vsa.ChildReply(sub) {
		d.vsaComplete(rs)
	}
}

func pairID(r uint64, id ident.ID, from, to int) string {
	return fmt.Sprintf("r%d-%s-%d>%d", r, id, from, to)
}

func (d *Daemon) vsaComplete(rs *roundState) {
	if rs.vsaTimer != nil {
		rs.vsaTimer.Stop()
	}
	pairs := rs.vsa.Rendezvous(d.rank == 0, d.spec.Threshold, rs.global.Lmin)
	for _, p := range pairs {
		b := assignBody{
			Pair: pairID(rs.r, p.VS.ID, p.From.Index, p.To.Index),
			ID:   p.VS.ID,
			Load: p.Load,
			From: p.From.Index,
			To:   p.To.Index,
		}
		d.tr.Send(p.From.Index, "assign", rs.r, b, wire.SendOpts{})
	}
	rs.vsaUp = true
	if d.rank != 0 {
		d.sendVSAUp(rs)
	}
	if rs.r > d.done {
		d.done = rs.r
	}
}

func (d *Daemon) sendVSAUp(rs *roundState) {
	lights, offers := rs.vsa.Lists().Entries()
	b := vsaBody{Child: d.rank}
	for _, l := range lights {
		b.Lights = append(b.Lights, wireLight{Deficit: l.Deficit, Rank: l.Node.Index, Group: l.Group})
	}
	for _, o := range offers {
		b.Offers = append(b.Offers, wireOffer{ID: o.VS.ID, Load: o.VS.Load, Rank: o.Node.Index, Group: o.Group})
	}
	d.tr.Send(d.parent, "vsa", rs.r, b, wire.SendOpts{})
}

// ---- drift ----

// applyDrift scales this node's held loads once per round (skipped
// rounds — the daemon was dead — simply never drift). The summed delta
// is WAL-durable so the supervisor's conservation ledger stays exact
// across any kill/restart interleaving: expected total = Σ initial +
// Σ per-rank DriftSum, and transfers (escrowed loads are deliberately
// not drifted in flight) move load without changing either side.
func (d *Daemon) applyDrift(r uint64) {
	if d.spec.DriftSigma <= 0 || r <= d.driftRound {
		return
	}
	factor := driftFactor(d.spec.Seed, d.rank, r, d.spec.DriftSigma)
	var delta float64
	for id, load := range d.store {
		d.store[id] = load * factor
		delta += load*factor - load
	}
	d.driftRound = r
	d.driftSum += delta
	d.appendSnap()
}

// ---- two-phase transfer, heavy side ----

func (d *Daemon) onAssign(r uint64, b assignBody) {
	if _, dup := d.handoffs[b.Pair]; dup {
		return
	}
	if d.cHandoffs != nil {
		d.cHandoffs.Inc()
	}
	from := &chord.Node{Index: d.rank, Alive: true}
	to := &chord.Node{Index: b.To, Alive: true}
	vs := &chord.VServer{ID: b.ID, Load: b.Load}
	if load, owned := d.store[b.ID]; owned {
		vs.Owner = from
		vs.Load = load
	}
	hs := &handoffState{
		h:  lbnode.NewHandoff(core.Pair{VS: vs, From: from, To: to, Load: vs.Load}),
		id: b.ID,
		to: b.To,
	}
	d.handoffs[b.Pair] = hs
	d.active++
	d.hook(b.Pair, "assign")
	_, op := hs.h.AssignReceived()
	switch op {
	case lbnode.OpPrepare:
		d.sendPrepare(r, b.Pair, hs)
	default:
		d.settleHandoff(b.Pair, hs)
	}
}

func (d *Daemon) sendPrepare(r uint64, pair string, hs *handoffState) {
	b := transferBody{Pair: pair, ID: hs.id, Load: hs.h.Pair.Load, From: d.rank, To: hs.to}
	d.tr.Send(hs.to, "prepare", r, b, wire.SendOpts{
		OnAcked:  func() { d.prepareAcked(r, pair) },
		OnFailed: func() { d.handoffFail(pair) },
	})
}

func (d *Daemon) prepareAcked(r uint64, pair string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	hs, ok := d.handoffs[pair]
	if !ok || hs.settled {
		return
	}
	d.hook(pair, "prepare-acked")
	if op := hs.h.PrepareAcked(); op != lbnode.OpCommit {
		d.settleHandoff(pair, hs)
		return
	}
	load, owned := d.store[hs.id]
	if !owned {
		// Lost the VS between prepare and commit (a racing handoff won
		// the escrow) — abort; nothing durable changed for this pairing.
		hs.h.Fail()
		d.settleHandoff(pair, hs)
		return
	}
	// Escrow: the WAL records the outgoing transfer BEFORE the VS leaves
	// the store and BEFORE the first commit send, so a crash anywhere
	// after this line replays into a resumed commit.
	pc := PendingCommit{Pair: pair, ID: hs.id, Load: load, Dst: hs.to}
	if err := d.wal.Append(walRec{T: "pend", Pair: pair, ID: hs.id, Load: load, Peer: hs.to}); err != nil {
		hs.h.Fail()
		d.settleHandoff(pair, hs)
		return
	}
	delete(d.store, hs.id)
	d.pending[pair] = pc
	if d.cEscrows != nil {
		d.cEscrows.Inc()
	}
	d.hook(pair, "escrow")
	d.sendCommit(pair, pc)
}

// sendCommit drives one escrowed transfer with unbounded retries: a
// commit may already have been applied remotely, so it is never
// abandoned — only acknowledgement (or this process's own death, after
// which recovery resumes it) stops the retransmission.
func (d *Daemon) sendCommit(pair string, pc PendingCommit) {
	b := transferBody{Pair: pair, ID: pc.ID, Load: pc.Load, From: d.rank, To: pc.Dst}
	d.tr.Send(pc.Dst, "commit", 0, b, wire.SendOpts{
		Unbounded: true,
		OnAcked:   func() { d.commitAcked(pair) },
	})
}

func (d *Daemon) commitAcked(pair string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if _, open := d.pending[pair]; !open {
		return
	}
	if err := d.wal.Append(walRec{T: "done", Pair: pair}); err != nil {
		return // retried on next ack or replayed at next boot
	}
	delete(d.pending, pair)
	d.hook(pair, "commit-acked")
	if hs, ok := d.handoffs[pair]; ok {
		d.settleDone(hs)
	}
}

func (d *Daemon) handoffFail(pair string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	hs, ok := d.handoffs[pair]
	if !ok || hs.settled {
		return
	}
	hs.h.Fail()
	d.settleHandoff(pair, hs)
}

// settleHandoff finalizes a non-committed machine (abort or no-op).
func (d *Daemon) settleHandoff(pair string, hs *handoffState) {
	if hs.settled {
		return
	}
	hs.settled = true
	d.active--
	if d.cAborts != nil {
		d.cAborts.Inc()
	}
	d.hook(pair, "abort")
}

// settleDone finalizes a committed machine.
func (d *Daemon) settleDone(hs *handoffState) {
	if hs.settled {
		return
	}
	hs.settled = true
	d.active--
}

// ---- two-phase transfer, light side ----

func (d *Daemon) onCommit(b transferBody) {
	if d.applied[b.Pair] {
		// Retransmission that crossed our restart (the transport's dedup
		// window died with the old process); the WAL's applied-set is the
		// durable second line of defense. The transport still acks it.
		d.hook(b.Pair, "commit-dup")
		return
	}
	if err := d.wal.Append(walRec{T: "apply", Pair: b.Pair, ID: b.ID, Load: b.Load, Peer: b.From}); err != nil {
		return
	}
	d.store[b.ID] = b.Load
	d.applied[b.Pair] = true
	if d.cApplies != nil {
		d.cApplies.Inc()
	}
	d.hook(b.Pair, "apply")
}

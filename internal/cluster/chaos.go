package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"p2plb/internal/faults"
	"p2plb/internal/metrics"
	"p2plb/internal/stats"
)

// ChaosConfig parameterizes one chaos experiment: a live cluster under
// drifting load with SIGKILLs injected from a seed-derived KillPlan,
// measured against a kill-free baseline run of the same seed.
type ChaosConfig struct {
	Bin     string // lbd binary
	DataDir string
	Seed    int64
	Procs   int
	VSPer   int
	Rounds  int
	Kills   int
	// DriftSigma is the per-round load drift (default 0.15).
	DriftSigma float64
	// RoundTimeout bounds one round's settle (default 30s).
	RoundTimeout time.Duration
	// HoldPerRound converts a KillEvent's RestartAfter rounds into a
	// wall-clock restart hold (default 600ms).
	HoldPerRound time.Duration
}

func (c *ChaosConfig) withDefaults() {
	if c.DriftSigma == 0 {
		c.DriftSigma = 0.15
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.HoldPerRound <= 0 {
		c.HoldPerRound = 600 * time.Millisecond
	}
	if c.VSPer <= 0 {
		c.VSPer = 5
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
}

// RoundResult is one settled round's audit.
type RoundResult struct {
	Round    uint64  `json:"round"`
	Gini     float64 `json:"gini"`
	Kills    int     `json:"kills"`
	SettleMS int64   `json:"settle_ms"`
}

// ChaosReport is the experiment's outcome, shaped for lbbench's
// results field.
type ChaosReport struct {
	Procs        int                `json:"procs"`
	Rounds       []RoundResult      `json:"rounds"`
	BaselineGini float64            `json:"baseline_gini"`
	FinalGini    float64            `json:"final_gini"`
	InitialGini  float64            `json:"initial_gini"`
	Kills        int                `json:"kills"`
	Restarts     int                `json:"restarts"`
	Reissues     int                `json:"reissues"`
	Plan         []faults.KillEvent `json:"plan"`
	Metrics      *metrics.Snapshot  `json:"-"`
}

// ReserveAddrs grabs n distinct localhost addresses by binding and
// releasing ephemeral ports.
func ReserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

func unitGini(sts []Status) float64 {
	units := make([]float64, len(sts))
	for i, st := range sts {
		units[i] = st.Total / st.Capacity
	}
	return stats.Gini(units)
}

// RunChaos runs the full experiment: a kill-free baseline to establish
// the no-fault Gini band, then the chaos run with the seed-derived kill
// schedule, checking conservation after every settled round. It errors
// on any conservation violation or a round that never settles.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg.withDefaults()
	var plan *faults.KillPlan
	if cfg.Kills > 0 {
		var err error
		plan, err = faults.NewKillPlan(cfg.Seed, faults.KillPlanConfig{
			Rounds: cfg.Rounds,
			Procs:  cfg.Procs,
			Kills:  cfg.Kills,
			// The root is protected: it is the supervisor's control
			// target for round triggers. Interior and leaf ranks all stay
			// killable, which still exercises every recovery path (subtree
			// expiry, escrow resumption, re-issued triggers).
			Protect: []int{0},
		})
		if err != nil {
			return nil, err
		}
	}
	baseline, err := runChaosOnce(cfg, "baseline", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: baseline run: %w", err)
	}
	report, err := runChaosOnce(cfg, "chaos", plan)
	if err != nil {
		return nil, err
	}
	report.BaselineGini = baseline.FinalGini
	if plan != nil {
		report.Plan = plan.Events
	}
	return report, nil
}

func runChaosOnce(cfg ChaosConfig, name string, plan *faults.KillPlan) (*ChaosReport, error) {
	dir := filepath.Join(cfg.DataDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	addrs, err := ReserveAddrs(cfg.Procs)
	if err != nil {
		return nil, err
	}
	httpAddrs, err := ReserveAddrs(cfg.Procs)
	if err != nil {
		return nil, err
	}
	spec := &Spec{
		ClusterID:  fmt.Sprintf("chaos-%d-%s", cfg.Seed, name),
		Seed:       cfg.Seed,
		Procs:      cfg.Procs,
		VSPerNode:  cfg.VSPer,
		Addrs:      addrs,
		HTTPAddrs:  httpAddrs,
		DriftSigma: cfg.DriftSigma,
	}
	sup, err := NewSupervisor(spec, cfg.Bin, dir)
	if err != nil {
		return nil, err
	}
	if err := sup.Start(); err != nil {
		return nil, err
	}
	defer sup.Stop()

	killsAt := make(map[int][]faults.KillEvent)
	if plan != nil {
		for _, ev := range plan.Events {
			killsAt[ev.Round] = append(killsAt[ev.Round], ev)
		}
	}

	report := &ChaosReport{Procs: cfg.Procs}
	var sts []Status
	for r := uint64(1); r <= uint64(cfg.Rounds); r++ {
		begin := time.Now()
		if err := sup.TriggerRound(r); err != nil {
			return nil, err
		}
		evs := killsAt[int(r)]
		if len(evs) > 0 {
			// Let the round reach mid-flight before pulling the trigger.
			time.Sleep(200 * time.Millisecond)
			for _, ev := range evs {
				hold := time.Duration(ev.RestartAfter) * cfg.HoldPerRound
				if err := sup.Kill(ev.Victim, hold); err != nil {
					return nil, fmt.Errorf("cluster: round %d kill rank %d: %w", r, ev.Victim, err)
				}
			}
		}
		sts, err = sup.Settle(r, cfg.RoundTimeout)
		if err != nil {
			return nil, err
		}
		if err := sup.CheckConservation(sts); err != nil {
			return nil, fmt.Errorf("cluster: after round %d: %w", r, err)
		}
		g := unitGini(sts)
		if r == 1 {
			report.InitialGini = g
		}
		report.Rounds = append(report.Rounds, RoundResult{
			Round:    r,
			Gini:     g,
			Kills:    len(evs),
			SettleMS: time.Since(begin).Milliseconds(),
		})
	}
	report.FinalGini = unitGini(sts)
	snap := sup.MergedMetrics()
	report.Metrics = &snap
	report.Kills, report.Restarts, report.Reissues = sup.Counters()
	return report, nil
}

//go:build !race

package cluster

// raceEnabled gates the heaviest end-to-end tests: the full 8-process
// chaos run spawns dozens of short-lived processes and is wall-clock
// bound, so the -race configuration (which runs in CI alongside this
// one) covers the in-process tests only.
const raceEnabled = false

package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"p2plb/internal/ident"
)

// The write-ahead log makes the two-phase VST exactly-once across
// SIGKILL. It is a JSON-lines file of four record types:
//
//	snap   full daemon state: inventory, applied-transfer set, pending
//	       escrows, drift bookkeeping. Written at first boot and after
//	       every drift application; replay resets to the latest snap and
//	       folds the records after it.
//	pend   sender-side escrow: the VS left the local store and a commit
//	       is (or will be) on the wire. Written BEFORE the first commit
//	       send, so a crash between escrow and send replays into a
//	       resumed commit, never a lost VS.
//	apply  receiver-side transfer application: the VS entered the local
//	       store under this pairing ID. The ID set makes duplicate
//	       commit deliveries (retransmissions crossing a restart, where
//	       the transport's dedup window is empty) idempotent.
//	done   sender-side completion: the commit was acknowledged, the
//	       escrow is closed.
//
// Every append is flushed to the OS before the daemon acts on it, which
// is exactly the durability the deployment needs: the fault model is
// process death (SIGKILL), not machine death, and the page cache
// survives the former. No fsync, no group commit.
type walRec struct {
	T     string   `json:"t"`
	Round uint64   `json:"r,omitempty"`
	Pair  string   `json:"pair,omitempty"`
	ID    ident.ID `json:"id,omitempty"`
	Load  float64  `json:"load,omitempty"`
	Peer  int      `json:"peer,omitempty"`
	Snap  *walSnap `json:"snap,omitempty"`
}

type walSnap struct {
	Capacity   float64         `json:"cap"`
	VSs        []VSRec         `json:"vss"`
	Applied    []string        `json:"applied"`
	Pending    []PendingCommit `json:"pending"`
	DriftRound uint64          `json:"drift_round"`
	DriftSum   float64         `json:"drift_sum"`
}

// PendingCommit is one open sender-side escrow: VS ID left the store
// under pairing Pair and must be driven into rank Dst until
// acknowledged.
type PendingCommit struct {
	Pair string   `json:"pair"`
	ID   ident.ID `json:"id"`
	Load float64  `json:"load"`
	Dst  int      `json:"dst"`
}

// WALState is the daemon state recovered by replay.
type WALState struct {
	HasSnap    bool
	Capacity   float64
	Store      map[ident.ID]float64
	Applied    map[string]bool
	Pending    map[string]PendingCommit
	DriftRound uint64
	DriftSum   float64
}

// WAL is the append side of the log. Appends are serialized and flushed
// before returning.
type WAL struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenWAL opens (creating if absent) the log at path, replays it, and
// returns the recovered state plus the handle for further appends.
func OpenWAL(path string) (*WAL, *WALState, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st := &WALState{
		Store:   make(map[ident.ID]float64),
		Applied: make(map[string]bool),
		Pending: make(map[string]PendingCommit),
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRec
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line (killed mid-append) is expected; anything
			// torn earlier would have failed the flush that follows it.
			continue
		}
		st.apply(rec)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: wal replay %s: %w", path, err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, st, nil
}

func (st *WALState) apply(rec walRec) {
	switch rec.T {
	case "snap":
		if rec.Snap == nil {
			return
		}
		st.HasSnap = true
		st.Capacity = rec.Snap.Capacity
		st.Store = make(map[ident.ID]float64, len(rec.Snap.VSs))
		for _, vs := range rec.Snap.VSs {
			st.Store[vs.ID] = vs.Load
		}
		st.Applied = make(map[string]bool, len(rec.Snap.Applied))
		for _, p := range rec.Snap.Applied {
			st.Applied[p] = true
		}
		st.Pending = make(map[string]PendingCommit, len(rec.Snap.Pending))
		for _, pc := range rec.Snap.Pending {
			st.Pending[pc.Pair] = pc
		}
		st.DriftRound = rec.Snap.DriftRound
		st.DriftSum = rec.Snap.DriftSum
	case "pend":
		delete(st.Store, rec.ID)
		st.Pending[rec.Pair] = PendingCommit{Pair: rec.Pair, ID: rec.ID, Load: rec.Load, Dst: rec.Peer}
	case "done":
		delete(st.Pending, rec.Pair)
	case "apply":
		st.Store[rec.ID] = rec.Load
		st.Applied[rec.Pair] = true
	}
}

// Append writes one record and flushes it to the OS.
func (w *WAL) Append(rec walRec) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(append(raw, '\n')); err != nil {
		return err
	}
	return w.w.Flush()
}

// Close flushes and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.Flush()
	return w.f.Close()
}

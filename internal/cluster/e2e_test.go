package cluster

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// The lbd binary is built once per test-binary run and shared by every
// e2e test.
var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
	lbdBin    string
)

func buildLBD(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "lbd-e2e-")
		if buildErr != nil {
			return
		}
		lbdBin = filepath.Join(buildDir, "lbd")
		cmd := exec.Command("go", "build", "-o", lbdBin, "p2plb/cmd/lbd")
		cmd.Dir = repoRoot(t)
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build lbd: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return lbdBin
}

// repoRoot walks up from the package directory to the module root so
// `go build` resolves the p2plb module regardless of the test cwd.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// TestClusterChaosSmoke is the short-mode gate run by ci.sh: a
// 4-process cluster, 4 rounds, one SIGKILL mid-round. Conservation is
// audited after every settled round inside RunChaos.
func TestClusterChaosSmoke(t *testing.T) {
	bin := buildLBD(t)
	report, err := RunChaos(ChaosConfig{
		Bin:     bin,
		DataDir: t.TempDir(),
		Seed:    401,
		Procs:   4,
		Rounds:  4,
		Kills:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rounds) != 4 {
		t.Fatalf("settled %d rounds, want 4", len(report.Rounds))
	}
	if report.Kills < 1 {
		t.Fatalf("chaos run recorded %d kills, want >= 1", report.Kills)
	}
	if report.Restarts < 1 {
		t.Fatalf("supervisor recorded %d restarts, want >= 1", report.Restarts)
	}
	if report.Metrics == nil || report.Metrics.Counters["cluster.rounds"] == 0 {
		t.Fatal("merged metrics missing round counters")
	}
}

// TestClusterChaosE2E is the acceptance harness: an 8-process cluster
// under drifting load with SIGKILLs rotating across a seed-derived
// subset of ranks mid-round. RunChaos fails on any conservation
// violation or double-hosted virtual server after each recovery; on top
// of that the final imbalance must land back in the no-fault band
// established by the kill-free baseline run of the same seed.
func TestClusterChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run skipped in short mode (see TestClusterChaosSmoke)")
	}
	if raceEnabled {
		t.Skip("full chaos run skipped under the race detector (child processes are not race-instrumented; the smoke test covers the instrumented paths)")
	}
	bin := buildLBD(t)
	report, err := RunChaos(ChaosConfig{
		Bin:     bin,
		DataDir: t.TempDir(),
		Seed:    802,
		Procs:   8,
		Rounds:  8,
		Kills:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Kills < 2 {
		t.Fatalf("chaos run recorded %d kills, want >= 2", report.Kills)
	}
	if report.Restarts < report.Kills {
		t.Fatalf("%d restarts for %d kills — a victim was never re-admitted", report.Restarts, report.Kills)
	}
	// No-fault band: the chaos run's final Gini must come back to the
	// baseline's, within a small absolute slack for the divergent
	// post-kill transfer history.
	if report.FinalGini > report.BaselineGini+0.05 {
		t.Fatalf("final gini %.4f outside no-fault band (baseline %.4f)",
			report.FinalGini, report.BaselineGini)
	}
	t.Logf("chaos e2e: baseline gini %.4f, final gini %.4f, kills %d, restarts %d, reissues %d",
		report.BaselineGini, report.FinalGini, report.Kills, report.Restarts, report.Reissues)
}

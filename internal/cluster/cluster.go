// Package cluster is the multi-process deployment of the load balancer:
// N lbd daemons on one machine, each hosting one physical node's share
// of the K-nary aggregation tree as the runtime-agnostic lbnode state
// machines, speaking the internal/wire protocol to each other, and a
// supervisor that launches the processes, SIGKILLs them on a fault
// schedule, restarts them with exponential backoff and re-admits them
// through the write-ahead-log repair path.
//
// The KT tree is laid directly over process ranks: rank r's parent is
// (r-1)/K and its children are K·r+1 … K·r+K (< N), with rank 0 the
// root. One balancing round is the paper's protocol verbatim — LBI
// converge-cast up the tree, dissemination down, VSA converge-cast with
// threshold rendezvous, two-phase VST between the paired endpoints —
// except that every hop is a retried wire message instead of a
// simulator event, and the two-phase transfer is persisted to a
// per-daemon WAL so a SIGKILL at any phase neither loses nor duplicates
// a virtual server.
package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"p2plb/internal/ident"
)

// Spec is the cluster-wide configuration, written by the supervisor and
// read by every daemon. It is the single source of truth for the rank
// tree, the address table and the deterministic initial inventories.
type Spec struct {
	ClusterID string   `json:"cluster_id"`
	Seed      int64    `json:"seed"`
	Procs     int      `json:"procs"`
	K         int      `json:"k"`
	VSPerNode int      `json:"vs_per_node"`
	Epsilon   float64  `json:"epsilon"`
	Threshold int      `json:"threshold"` // rendezvous threshold; 0 = paper default
	Addrs     []string `json:"addrs"`     // wire address per rank
	HTTPAddrs []string `json:"http_addrs"`
	// DriftSigma is the per-round multiplicative load drift: at the
	// start of round r each daemon scales its node total by
	// exp(σ·N(0,1)) drawn from a (seed, rank, round) stream. 0 disables
	// drift.
	DriftSigma float64 `json:"drift_sigma"`
	// EpochTimeout is how long a KT node waits for child replies before
	// closing an epoch with partial data (the soft-state story: a dead
	// child's subtree simply sits out the round).
	EpochTimeout time.Duration `json:"epoch_timeout"`
	// RetryBase/RetryCap/MaxAttempts tune the wire transport's
	// retransmission ladder; zero values take the wire defaults. Tests
	// shrink these so bounded sends exhaust quickly.
	RetryBase   time.Duration `json:"retry_base,omitempty"`
	RetryCap    time.Duration `json:"retry_cap,omitempty"`
	MaxAttempts int           `json:"max_attempts,omitempty"`
}

func (s *Spec) withDefaults() {
	if s.K <= 0 {
		s.K = 2
	}
	if s.VSPerNode <= 0 {
		s.VSPerNode = 5
	}
	if s.Epsilon == 0 {
		s.Epsilon = 0.1
	}
	if s.EpochTimeout <= 0 {
		s.EpochTimeout = 1500 * time.Millisecond
	}
}

// Parent returns rank r's parent in the KT tree, -1 for the root.
func (s *Spec) Parent(r int) int {
	if r == 0 {
		return -1
	}
	return (r - 1) / s.K
}

// Children returns rank r's children, in rank order.
func (s *Spec) Children(r int) []int {
	var out []int
	for c := s.K*r + 1; c <= s.K*r+s.K && c < s.Procs; c++ {
		out = append(out, c)
	}
	return out
}

// WriteSpec serializes the spec for daemon processes to load.
func WriteSpec(path string, s *Spec) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadSpec reads a spec written by WriteSpec.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &Spec{}
	if err := json.Unmarshal(raw, s); err != nil {
		return nil, fmt.Errorf("cluster: bad spec %s: %w", path, err)
	}
	s.withDefaults()
	if s.Procs < 1 || len(s.Addrs) != s.Procs {
		return nil, fmt.Errorf("cluster: spec has %d addrs for %d procs", len(s.Addrs), s.Procs)
	}
	return s, nil
}

// VSRec is one virtual server in a serialized inventory.
type VSRec struct {
	ID   ident.ID `json:"id"`
	Load float64  `json:"load"`
}

// Inventory is one rank's initial holdings.
type Inventory struct {
	Capacity float64 `json:"capacity"`
	VSs      []VSRec `json:"vss"`
}

// DeriveInventories computes every rank's initial inventory from the
// cluster seed in one deterministic pass: globally unique identifiers,
// log-normal per-VS loads (the paper's skewed workload) and mildly
// heterogeneous capacities. Every daemon and the supervisor derive the
// same table independently, so a freshly restarted daemon with no WAL
// yet knows its holdings without any state exchange.
func DeriveInventories(seed int64, procs, vsPer int) []Inventory {
	rng := rand.New(rand.NewSource(mixSeed(seed, "inventory")))
	seen := make(map[ident.ID]bool, procs*vsPer)
	out := make([]Inventory, procs)
	for r := 0; r < procs; r++ {
		inv := Inventory{Capacity: 400 + 400*rng.Float64()}
		for v := 0; v < vsPer; v++ {
			id := ident.ID(rng.Uint32())
			for seen[id] {
				id = ident.ID(rng.Uint32())
			}
			seen[id] = true
			inv.VSs = append(inv.VSs, VSRec{ID: id, Load: 100 * math.Exp(rng.NormFloat64())})
		}
		out[r] = inv
	}
	return out
}

// mixSeed derives an independent RNG stream from the base seed and a
// label (the same FNV-1a construction internal/faults uses, repeated
// here because the cluster layer must not depend on the fault injector).
func mixSeed(seed int64, stream string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime
	}
	return int64(uint64(seed)*0x9E3779B97F4A7C15 ^ h)
}

// driftFactor draws the round-r load multiplier for one rank.
func driftFactor(seed int64, rank int, round uint64, sigma float64) float64 {
	rng := rand.New(rand.NewSource(mixSeed(seed^int64(rank)<<24^int64(round), "drift")))
	return math.Exp(sigma * rng.NormFloat64())
}

package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"p2plb/internal/ident"
)

func TestWALReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasSnap {
		t.Fatal("fresh WAL reported a snapshot")
	}
	recs := []walRec{
		{T: "snap", Snap: &walSnap{
			Capacity: 500,
			VSs:      []VSRec{{ID: 1, Load: 10}, {ID: 2, Load: 20}, {ID: 3, Load: 30}},
			DriftSum: 1.5, DriftRound: 2,
		}},
		{T: "pend", Pair: "p1", ID: 2, Load: 20, Peer: 4},
		{T: "apply", Pair: "q1", ID: 9, Load: 5, Peer: 3},
		{T: "pend", Pair: "p2", ID: 3, Load: 30, Peer: 5},
		{T: "done", Pair: "p1"},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a kill mid-append: a torn trailing line must be skipped,
	// not fail replay.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"t":"pend","pair":"torn`)
	f.Close()

	w2, st2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !st2.HasSnap || st2.Capacity != 500 {
		t.Fatalf("snapshot not recovered: %+v", st2)
	}
	wantStore := map[uint32]float64{1: 10, 9: 5}
	if len(st2.Store) != len(wantStore) {
		t.Fatalf("store %v, want ids 1 and 9", st2.Store)
	}
	for id, load := range wantStore {
		if st2.Store[ident.ID(id)] != load {
			t.Fatalf("store[%d] = %v, want %v", id, st2.Store[ident.ID(id)], load)
		}
	}
	if len(st2.Pending) != 1 || st2.Pending["p2"].ID != 3 || st2.Pending["p2"].Dst != 5 {
		t.Fatalf("pending %v, want exactly p2 -> dst 5", st2.Pending)
	}
	if _, torn := st2.Pending["torn"]; torn {
		t.Fatal("torn record leaked into state")
	}
	if !st2.Applied["q1"] {
		t.Fatal("applied set lost q1")
	}
	if st2.DriftRound != 2 || st2.DriftSum != 1.5 {
		t.Fatalf("drift ledger %d/%v, want 2/1.5", st2.DriftRound, st2.DriftSum)
	}
}

func TestWALSnapResetsEarlierRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(walRec{T: "pend", Pair: "old", ID: 7, Load: 7, Peer: 1})
	w.Append(walRec{T: "snap", Snap: &walSnap{
		Capacity: 100,
		VSs:      []VSRec{{ID: 5, Load: 50}},
		Pending:  []PendingCommit{{Pair: "kept", ID: 6, Load: 6, Dst: 2}},
		Applied:  []string{"a1"},
	}})
	w.Close()
	_, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, old := st.Pending["old"]; old {
		t.Fatal("snap did not reset pre-snap pending state")
	}
	if _, kept := st.Pending["kept"]; !kept {
		t.Fatal("snap dropped its own pending list")
	}
	if !st.Applied["a1"] || st.Store[ident.ID(5)] != 50 {
		t.Fatalf("snap state not restored: %+v", st)
	}
}

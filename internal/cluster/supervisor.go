package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/metrics"
	"p2plb/internal/sim"
	"p2plb/internal/wire"
)

// Supervisor launches and babysits an N-process lbd cluster: it spawns
// one daemon per rank, restarts crashed processes with exponential
// backoff, injects SIGKILLs on demand (the chaos harness's lever),
// drives balancing rounds through the root's control channel, and
// audits conservation by rebuilding a chord ring from the daemons'
// reported inventories.
type Supervisor struct {
	Spec     *Spec
	Bin      string // path to the lbd binary
	DataDir  string
	specPath string

	mu       sync.Mutex
	procs    []*managed
	stopping bool
	kills    int
	restarts int
	reissues int

	rng *rand.Rand // restart-backoff jitter
}

type managed struct {
	rank int

	mu        sync.Mutex
	cmd       *exec.Cmd
	waited    chan struct{} // closed by the monitor once cmd.Wait returns
	stopping  bool
	holdUntil time.Time // earliest allowed respawn after a Kill
}

// Restart-backoff ladder: first respawn after ~50ms, doubling to a 1s
// cap, with jitter — the same capped-doubling discipline the wire layer
// uses for retransmissions.
const (
	restartBase = 50 * time.Millisecond
	restartCap  = time.Second
)

// NewSupervisor writes the spec into dataDir and prepares (but does not
// start) the cluster.
func NewSupervisor(spec *Spec, bin, dataDir string) (*Supervisor, error) {
	spec.withDefaults()
	specPath := filepath.Join(dataDir, "spec.json")
	if err := WriteSpec(specPath, spec); err != nil {
		return nil, err
	}
	s := &Supervisor{
		Spec:     spec,
		Bin:      bin,
		DataDir:  dataDir,
		specPath: specPath,
		rng:      rand.New(rand.NewSource(mixSeed(spec.Seed, "supervisor"))),
	}
	for r := 0; r < spec.Procs; r++ {
		s.procs = append(s.procs, &managed{rank: r})
	}
	return s, nil
}

// Start spawns every daemon and their monitors.
func (s *Supervisor) Start() error {
	for _, m := range s.procs {
		if err := s.spawn(m); err != nil {
			s.Stop()
			return err
		}
	}
	return nil
}

func (s *Supervisor) spawn(m *managed) error {
	logf, err := os.OpenFile(filepath.Join(s.DataDir, fmt.Sprintf("lbd-%d.log", m.rank)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(s.Bin, "-spec", s.specPath, "-rank", fmt.Sprint(m.rank), "-data", s.DataDir)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return err
	}
	logf.Close() // the child holds its own descriptor
	waited := make(chan struct{})
	m.mu.Lock()
	m.cmd = cmd
	m.waited = waited
	m.mu.Unlock()
	// A Stop that raced this spawn (set stopping between the monitor's
	// pre-spawn check and Start) has already done its kill pass over the
	// previous generation; reap the new process here so it doesn't
	// outlive the supervisor.
	s.mu.Lock()
	stopping := s.stopping
	s.mu.Unlock()
	if stopping {
		cmd.Process.Kill()
	}
	go s.monitor(m, cmd, waited)
	return nil
}

// monitor restarts the process when it dies — unless the supervisor is
// shutting down — honoring any kill-hold window and backing off
// exponentially across rapid consecutive deaths.
// The monitor is the sole caller of cmd.Wait (Wait is once-only);
// everyone else waits on the managed proc's waited channel.
func (s *Supervisor) monitor(m *managed, cmd *exec.Cmd, waited chan struct{}) {
	backoff := restartBase
	for {
		started := time.Now()
		cmd.Wait()
		close(waited)
		s.mu.Lock()
		stopping := s.stopping
		s.mu.Unlock()
		m.mu.Lock()
		hold := time.Until(m.holdUntil)
		mStopping := m.stopping
		m.mu.Unlock()
		if stopping || mStopping {
			return
		}
		if time.Since(started) > 5*time.Second {
			backoff = restartBase
		}
		s.mu.Lock()
		wait := backoff + time.Duration(s.rng.Int63n(int64(backoff/2)+1))
		s.mu.Unlock()
		if hold > wait {
			wait = hold
		}
		time.Sleep(wait)
		if backoff < restartCap {
			backoff *= 2
		}
		s.mu.Lock()
		s.restarts++
		stopping = s.stopping
		s.mu.Unlock()
		if stopping {
			return
		}
		if err := s.spawn(m); err != nil {
			return
		}
		return // the new spawn has its own monitor
	}
}

// Kill SIGKILLs one rank and holds its restart for at least hold.
func (s *Supervisor) Kill(rank int, hold time.Duration) error {
	if rank < 0 || rank >= len(s.procs) {
		return fmt.Errorf("cluster: no rank %d", rank)
	}
	m := s.procs[rank]
	m.mu.Lock()
	m.holdUntil = time.Now().Add(hold)
	cmd := m.cmd
	m.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("cluster: rank %d not running", rank)
	}
	s.mu.Lock()
	s.kills++
	s.mu.Unlock()
	return cmd.Process.Kill()
}

// Stop terminates every daemon (SIGKILL — the WAL makes that safe) and
// disables restarts.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
	for _, m := range s.procs {
		m.mu.Lock()
		m.stopping = true
		cmd := m.cmd
		m.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, m := range s.procs {
		m.mu.Lock()
		waited := m.waited
		m.mu.Unlock()
		if waited != nil {
			<-waited
		}
	}
}

// Counters reports the supervisor's own chaos bookkeeping.
func (s *Supervisor) Counters() (kills, restarts, reissues int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kills, s.restarts, s.reissues
}

// call performs one control request against a rank, retrying across
// transient connection failures (a daemon mid-restart) with the wire
// layer's capped-doubling discipline.
func (s *Supervisor) call(rank int, kind string, body any, deadline time.Duration) (json.RawMessage, error) {
	var lastErr error
	backoff := wire.DefaultRetryBase
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		out, err := wire.Call(s.Spec.Addrs[rank], s.Spec.ClusterID, kind, body, 2*time.Second)
		if err == nil {
			return out, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < wire.DefaultRetryCap {
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("cluster: rank %d %s: %w", rank, kind, lastErr)
}

// TriggerRound asks the root to start round r.
func (s *Supervisor) TriggerRound(r uint64) error {
	_, err := s.call(0, "round", roundBody{Round: r}, 10*time.Second)
	return err
}

// StatusOf queries one rank.
func (s *Supervisor) StatusOf(rank int, deadline time.Duration) (*Status, error) {
	out, err := s.call(rank, "status", nil, deadline)
	if err != nil {
		return nil, err
	}
	st := &Status{}
	if err := json.Unmarshal(out, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Settle waits for round r to quiesce: every rank reachable, every rank
// past its local tree work for r, and no open escrow or unsettled
// handoff anywhere — observed twice in a row, so an assign still in
// flight between two polls cannot fake a quiet cluster. Halfway to the
// timeout the round trigger is re-issued (idempotent at every daemon),
// which re-feeds the tree when the root or an interior rank lost its
// soft state to a kill.
func (s *Supervisor) Settle(r uint64, timeout time.Duration) ([]Status, error) {
	end := time.Now().Add(timeout)
	reissued := false
	clean := 0
	for time.Now().Before(end) {
		sts, ok := s.poll(r)
		if ok {
			clean++
			if clean >= 2 {
				return sts, nil
			}
		} else {
			clean = 0
		}
		if !reissued && time.Now().After(end.Add(-timeout/2)) {
			s.mu.Lock()
			s.reissues++
			s.mu.Unlock()
			s.TriggerRound(r)
			reissued = true
		}
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("cluster: round %d did not settle within %v", r, timeout)
}

func (s *Supervisor) poll(r uint64) ([]Status, bool) {
	sts := make([]Status, 0, s.Spec.Procs)
	ok := true
	for rank := 0; rank < s.Spec.Procs; rank++ {
		st, err := s.StatusOf(rank, 2*time.Second)
		if err != nil {
			return nil, false
		}
		if st.Done < r || st.Pending > 0 || st.Active > 0 {
			ok = false
		}
		sts = append(sts, *st)
	}
	return sts, ok
}

// CheckConservation audits the cluster's books against the spec's
// ledger; see the package-level function.
func (s *Supervisor) CheckConservation(sts []Status) error {
	return CheckConservation(s.Spec, sts)
}

// CheckConservation rebuilds a chord ring from the reported inventories
// and runs the repo's conservation checker against the ledger-expected
// total: Σ initial loads + Σ per-rank drift deltas. AddNodeWithIDs
// rejects duplicate identifiers, so a double-owned virtual server fails
// loudly; set equality against the derived initial identifier set
// catches a lost one.
func CheckConservation(spec *Spec, sts []Status) error {
	if len(sts) != spec.Procs {
		return fmt.Errorf("cluster: conservation check needs all %d ranks, got %d", spec.Procs, len(sts))
	}
	invs := DeriveInventories(spec.Seed, spec.Procs, spec.VSPerNode)
	initial := make(map[ident.ID]bool)
	var expected float64
	for _, inv := range invs {
		for _, vs := range inv.VSs {
			initial[vs.ID] = true
			expected += vs.Load
		}
	}
	ring := chord.NewRing(sim.NewEngine(0), chord.Config{})
	var count int
	for _, st := range sts {
		expected += st.DriftSum
		ids := make([]ident.ID, len(st.VSs))
		loads := make(map[ident.ID]float64, len(st.VSs))
		for i, vs := range st.VSs {
			ids[i] = vs.ID
			loads[vs.ID] = vs.Load
			if !initial[vs.ID] {
				return fmt.Errorf("cluster: rank %d holds unknown vs %s", st.Rank, vs.ID)
			}
			count++
		}
		node, err := ring.AddNodeWithIDs(-1, st.Capacity, ids)
		if err != nil {
			return fmt.Errorf("cluster: rank %d: %w", st.Rank, err)
		}
		for _, vs := range node.VServers() {
			vs.Load = loads[vs.ID]
		}
	}
	if count != len(initial) {
		return fmt.Errorf("cluster: %d virtual servers reported, expected %d (lost or double-hosted)", count, len(initial))
	}
	return ring.CheckConservation(chord.Conservation{TotalLoad: expected, NumVS: len(initial)})
}

// MergedMetrics fetches and merges every daemon's /metrics snapshot.
// Unreachable daemons (mid-restart) are skipped.
func (s *Supervisor) MergedMetrics() metrics.Snapshot {
	var merged metrics.Snapshot
	client := &http.Client{Timeout: 2 * time.Second}
	for _, addr := range s.Spec.HTTPAddrs {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			continue
		}
		snap, err := metrics.ReadJSON(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		merged.Merge(snap)
	}
	return merged
}

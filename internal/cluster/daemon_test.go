package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"p2plb/internal/ident"
	"p2plb/internal/wire"
)

// testSpec builds a spec with fast retry knobs and pre-reserved ports.
func testSpec(t *testing.T, procs int, seed int64) *Spec {
	t.Helper()
	addrs, err := ReserveAddrs(procs)
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		ClusterID:    fmt.Sprintf("t-%s", t.Name()),
		Seed:         seed,
		Procs:        procs,
		VSPerNode:    5,
		Addrs:        addrs,
		EpochTimeout: 900 * time.Millisecond,
		RetryBase:    10 * time.Millisecond,
		RetryCap:     100 * time.Millisecond,
		MaxAttempts:  6,
	}
}

func startDaemon(t *testing.T, spec *Spec, rank int, dir string, hook func(pair, phase string)) *Daemon {
	t.Helper()
	d, err := NewDaemon(DaemonConfig{Spec: spec, Rank: rank, DataDir: dir, OnPhase: hook})
	if err != nil {
		t.Fatalf("rank %d: %v", rank, err)
	}
	return d
}

func statuses(t *testing.T, spec *Spec) []Status {
	t.Helper()
	sts := make([]Status, spec.Procs)
	for r := 0; r < spec.Procs; r++ {
		out, err := wire.Call(spec.Addrs[r], spec.ClusterID, "status", nil, 2*time.Second)
		if err != nil {
			t.Fatalf("status rank %d: %v", r, err)
		}
		if err := json.Unmarshal(out, &sts[r]); err != nil {
			t.Fatal(err)
		}
	}
	return sts
}

// waitQuiesced polls until every daemon finished round r with no open
// escrows or live handoffs — twice in a row, like Supervisor.Settle, so
// an assign still in flight between two polls cannot fake quiescence.
func waitQuiesced(t *testing.T, spec *Spec, r uint64, timeout time.Duration) []Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	clean := 0
	for time.Now().Before(deadline) {
		sts := statuses(t, spec)
		ok := true
		for _, st := range sts {
			if st.Done < r || st.Pending > 0 || st.Active > 0 {
				ok = false
			}
		}
		if ok {
			clean++
			if clean >= 2 {
				return sts
			}
		} else {
			clean = 0
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("round %d did not quiesce within %v", r, timeout)
	return nil
}

// TestInProcessRound: a 7-daemon in-process cluster runs three
// balancing rounds over real TCP; conservation must hold after each.
func TestInProcessRound(t *testing.T) {
	spec := testSpec(t, 7, 11)
	dir := t.TempDir()
	ds := make([]*Daemon, spec.Procs)
	for r := range ds {
		ds[r] = startDaemon(t, spec, r, dir, nil)
		defer ds[r].Close()
	}
	for round := uint64(1); round <= 3; round++ {
		if _, err := wire.Call(spec.Addrs[0], spec.ClusterID, "round", roundBody{Round: round}, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		sts := waitQuiesced(t, spec, round, 15*time.Second)
		if err := CheckConservation(spec, sts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// The skewed initial inventory must have produced actual transfers,
	// or this test proves nothing about the VST path.
	var applies int64
	for _, d := range ds {
		if reg := d.Registry(); reg != nil {
			applies += reg.Snapshot().Counters["cluster.applies"]
		}
	}
	if applies == 0 {
		t.Fatal("three rounds produced zero transfers — inventory not skewed enough to exercise VST")
	}
}

// TestDriftLedger: drift changes loads but the WAL ledger keeps the
// conservation books exact, including across a restart.
func TestDriftLedger(t *testing.T) {
	spec := testSpec(t, 3, 5)
	spec.DriftSigma = 0.3
	dir := t.TempDir()
	ds := make([]*Daemon, spec.Procs)
	for r := range ds {
		ds[r] = startDaemon(t, spec, r, dir, nil)
	}
	for round := uint64(1); round <= 2; round++ {
		if _, err := wire.Call(spec.Addrs[0], spec.ClusterID, "round", roundBody{Round: round}, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		sts := waitQuiesced(t, spec, round, 15*time.Second)
		if err := CheckConservation(spec, sts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// Restart rank 1; its drift ledger must survive via the WAL.
	before := statuses(t, spec)[1]
	if before.DriftSum == 0 {
		t.Fatal("drift never applied at rank 1")
	}
	ds[1].Close()
	ds[1] = startDaemon(t, spec, 1, dir, nil)
	after := statuses(t, spec)[1]
	if after.DriftSum != before.DriftSum || after.DriftRound != before.DriftRound {
		t.Fatalf("drift ledger lost in restart: %v/%d -> %v/%d",
			before.DriftSum, before.DriftRound, after.DriftSum, after.DriftRound)
	}
	if err := CheckConservation(spec, statuses(t, spec)); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		d.Close()
	}
}

// phaseRecorder collects handoff phase transitions for assertions.
type phaseRecorder struct {
	mu     sync.Mutex
	events []string
	waits  map[string]chan struct{}
}

func newPhaseRecorder(waitOn ...string) *phaseRecorder {
	pr := &phaseRecorder{waits: make(map[string]chan struct{})}
	for _, w := range waitOn {
		pr.waits[w] = make(chan struct{})
	}
	return pr
}

func (pr *phaseRecorder) hook(pair, phase string) {
	pr.mu.Lock()
	pr.events = append(pr.events, phase)
	if ch, ok := pr.waits[phase]; ok {
		select {
		case <-ch: // already fired
		default:
			close(ch)
		}
	}
	pr.mu.Unlock()
}

// wait returns the (pre-registered, never-removed) channel for a phase;
// safe to fetch before or after the phase fires.
func (pr *phaseRecorder) wait(t *testing.T, phase string) chan struct{} {
	t.Helper()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	ch := pr.waits[phase]
	if ch == nil {
		t.Fatalf("phase %q was not registered with newPhaseRecorder", phase)
	}
	return ch
}

func (pr *phaseRecorder) count(phase string) int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	n := 0
	for _, e := range pr.events {
		if e == phase {
			n++
		}
	}
	return n
}

func waitCh(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

// injectAssign hands the sender daemon a rendezvous assignment exactly
// as the wire would, picking one VS from its current store.
func injectAssign(t *testing.T, d *Daemon, seq uint64, to int) (string, ident.ID) {
	t.Helper()
	d.mu.Lock()
	var id ident.ID
	var found bool
	for vid := range d.store {
		if !found || vid < id { //lbvet:ignore identcompare deterministic pick of the smallest id, not a ring-distance comparison
			id, found = vid, true
		}
	}
	d.mu.Unlock()
	if !found {
		t.Fatal("sender has no virtual servers")
	}
	pair := pairID(1, id, d.rank, to)
	body, _ := json.Marshal(assignBody{Pair: pair, ID: id, Load: 1, From: d.rank, To: to})
	d.handle(wire.Msg{Seq: seq, Src: to, Kind: "assign", Round: 1, Body: body})
	return pair, id
}

func storeHas(d *Daemon, id ident.ID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.store[id]
	return ok
}

func pendingCount(d *Daemon) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHandoffCrashPhases is the satellite-3 table: a process death at
// each phase of the two-phase wire transfer must neither lose nor
// duplicate the virtual server after WAL-replay recovery.
func TestHandoffCrashPhases(t *testing.T) {
	t.Run("receiver-dead-at-assign", func(t *testing.T) {
		// The receiver is already dead when the assignment arrives: the
		// prepare exhausts its bounded retries and the handoff aborts
		// with the VS still at the sender. Nothing durable changed.
		spec := testSpec(t, 2, 21)
		dir := t.TempDir()
		rec := newPhaseRecorder("abort")
		snd := startDaemon(t, spec, 0, dir, rec.hook)
		defer snd.Close()
		rcv := startDaemon(t, spec, 1, dir, nil)
		rcv.Close() // dead before the assign

		_, id := injectAssign(t, snd, 100, 1)
		waitCh(t, rec.wait(t, "abort"), "abort")
		if !storeHas(snd, id) {
			t.Fatal("aborted handoff lost the VS at the sender")
		}
		if pendingCount(snd) != 0 {
			t.Fatal("aborted handoff left an open escrow")
		}
		rcv2 := startDaemon(t, spec, 1, dir, nil)
		defer rcv2.Close()
		if storeHas(rcv2, id) {
			t.Fatal("receiver restart conjured the VS from nowhere")
		}
	})

	t.Run("receiver-dead-between-prepare-ack-and-commit", func(t *testing.T) {
		// The receiver acks the prepare, then dies before the commit
		// arrives. The sender has escrowed the VS (WAL pend) and drives
		// the commit unboundedly; the restarted receiver applies it
		// exactly once.
		spec := testSpec(t, 2, 22)
		dir := t.TempDir()
		var rcv *Daemon
		rec := newPhaseRecorder("escrow", "commit-acked")
		sndHook := func(pair, phase string) {
			if phase == "escrow" {
				rcv.Close() // dies with the commit still unsent
			}
			rec.hook(pair, phase)
		}
		snd := startDaemon(t, spec, 0, dir, sndHook)
		defer snd.Close()
		rcv = startDaemon(t, spec, 1, dir, nil)

		_, id := injectAssign(t, snd, 100, 1)
		waitCh(t, rec.wait(t, "escrow"), "escrow")
		if storeHas(snd, id) {
			t.Fatal("escrowed VS still in sender store")
		}
		time.Sleep(150 * time.Millisecond) // a few commit retries against the dead receiver
		rcvRec := newPhaseRecorder("apply")
		rcv2 := startDaemon(t, spec, 1, dir, rcvRec.hook)
		defer rcv2.Close()
		waitCh(t, rcvRec.wait(t, "apply"), "apply after restart")
		waitCh(t, rec.wait(t, "commit-acked"), "commit ack")
		if !storeHas(rcv2, id) || storeHas(snd, id) {
			t.Fatal("VS not exactly at the receiver after recovery")
		}
		waitCond(t, "escrow close", func() bool { return pendingCount(snd) == 0 })
		if n := rcvRec.count("apply"); n != 1 {
			t.Fatalf("transfer applied %d times, want 1", n)
		}
	})

	t.Run("both-dead-during-commit", func(t *testing.T) {
		// Receiver dies before the commit lands, then the sender dies
		// too. The sender's restart replays the WAL pend record and
		// resumes the unbounded commit; the receiver's restart applies
		// it. Exactly one copy survives.
		spec := testSpec(t, 2, 23)
		dir := t.TempDir()
		var rcv *Daemon
		rec := newPhaseRecorder("escrow")
		sndHook := func(pair, phase string) {
			if phase == "escrow" {
				rcv.Close()
			}
			rec.hook(pair, phase)
		}
		snd := startDaemon(t, spec, 0, dir, sndHook)
		rcv = startDaemon(t, spec, 1, dir, nil)

		_, id := injectAssign(t, snd, 100, 1)
		waitCh(t, rec.wait(t, "escrow"), "escrow")
		snd.Close() // sender dies with the escrow open

		sndRec := newPhaseRecorder("commit-acked")
		snd2 := startDaemon(t, spec, 0, dir, sndRec.hook)
		defer snd2.Close()
		if pendingCount(snd2) != 1 {
			t.Fatal("WAL replay did not recover the open escrow")
		}
		rcvRec := newPhaseRecorder("apply")
		rcv2 := startDaemon(t, spec, 1, dir, rcvRec.hook)
		defer rcv2.Close()
		waitCh(t, rcvRec.wait(t, "apply"), "apply after double restart")
		waitCh(t, sndRec.wait(t, "commit-acked"), "commit ack after double restart")
		if !storeHas(rcv2, id) || storeHas(snd2, id) {
			t.Fatal("VS not exactly at the receiver after double recovery")
		}
		waitCond(t, "escrow close", func() bool { return pendingCount(snd2) == 0 })
	})

	t.Run("duplicate-commit-after-receiver-restart", func(t *testing.T) {
		// The transfer completed, the receiver restarts (losing the
		// transport's dedup window), and a stale retransmission of the
		// commit arrives. Only the WAL's applied-set stands between that
		// duplicate and a double-hosted VS.
		spec := testSpec(t, 2, 24)
		dir := t.TempDir()
		rec := newPhaseRecorder("commit-acked")
		snd := startDaemon(t, spec, 0, dir, rec.hook)
		defer snd.Close()
		rcvRec := newPhaseRecorder("apply")
		rcv := startDaemon(t, spec, 1, dir, rcvRec.hook)

		pair, id := injectAssign(t, snd, 100, 1)
		waitCh(t, rcvRec.wait(t, "apply"), "apply")
		waitCh(t, rec.wait(t, "commit-acked"), "commit ack")
		rcv.Close()

		rcvRec2 := newPhaseRecorder("commit-dup")
		rcv2 := startDaemon(t, spec, 1, dir, rcvRec2.hook)
		defer rcv2.Close()
		// Replay the commit by hand — a retransmission from before the
		// restart, with a sequence number the new process never saw.
		body, _ := json.Marshal(transferBody{Pair: pair, ID: id, Load: 1, From: 0, To: 1})
		rcv2.handle(wire.Msg{Seq: 999, Src: 0, Kind: "commit", Body: body})
		waitCh(t, rcvRec2.wait(t, "commit-dup"), "duplicate suppression")
		if rcvRec2.count("apply") != 0 {
			t.Fatal("duplicate commit re-applied after restart")
		}
		if !storeHas(rcv2, id) {
			t.Fatal("VS missing at receiver")
		}
	})
}

// TestRoundSurvivesInteriorRestart: an interior daemon is killed
// mid-round and restarted; the supervisor-style re-issued trigger
// re-feeds the tree and the round completes with conservation intact.
func TestRoundSurvivesInteriorRestart(t *testing.T) {
	spec := testSpec(t, 7, 31)
	dir := t.TempDir()
	ds := make([]*Daemon, spec.Procs)
	for r := range ds {
		ds[r] = startDaemon(t, spec, r, dir, nil)
	}
	defer func() {
		for _, d := range ds {
			if d != nil {
				d.Close()
			}
		}
	}()

	// Round 1 cleanly first, so there is state worth disturbing.
	if _, err := wire.Call(spec.Addrs[0], spec.ClusterID, "round", roundBody{Round: 1}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	waitQuiesced(t, spec, 1, 15*time.Second)

	// Kill interior rank 1 (parent of 3 and 4), trigger round 2 while it
	// is down, restart it, re-issue the trigger.
	ds[1].Close()
	if _, err := wire.Call(spec.Addrs[0], spec.ClusterID, "round", roundBody{Round: 2}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	ds[1] = startDaemon(t, spec, 1, dir, nil)
	if _, err := wire.Call(spec.Addrs[0], spec.ClusterID, "round", roundBody{Round: 2}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	sts := waitQuiesced(t, spec, 2, 20*time.Second)
	if err := CheckConservation(spec, sts); err != nil {
		t.Fatal(err)
	}
}

func TestSpecTreeShape(t *testing.T) {
	s := &Spec{Procs: 8, K: 2}
	if p := s.Parent(0); p != -1 {
		t.Fatalf("root parent %d", p)
	}
	cases := []struct {
		rank   int
		parent int
		kids   []int
	}{
		{0, -1, []int{1, 2}},
		{1, 0, []int{3, 4}},
		{2, 0, []int{5, 6}},
		{3, 1, []int{7}},
		{7, 3, nil},
	}
	for _, c := range cases {
		if c.rank != 0 && s.Parent(c.rank) != c.parent {
			t.Fatalf("parent(%d) = %d, want %d", c.rank, s.Parent(c.rank), c.parent)
		}
		kids := s.Children(c.rank)
		if len(kids) != len(c.kids) {
			t.Fatalf("children(%d) = %v, want %v", c.rank, kids, c.kids)
		}
		for i := range kids {
			if kids[i] != c.kids[i] {
				t.Fatalf("children(%d) = %v, want %v", c.rank, kids, c.kids)
			}
		}
	}
}

func TestDeriveInventoriesDeterministic(t *testing.T) {
	a := DeriveInventories(9, 8, 5)
	b := DeriveInventories(9, 8, 5)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("inventory derivation is not deterministic")
	}
	seen := make(map[ident.ID]bool)
	for _, inv := range a {
		if len(inv.VSs) != 5 {
			t.Fatalf("rank has %d VSs, want 5", len(inv.VSs))
		}
		for _, vs := range inv.VSs {
			if seen[vs.ID] {
				t.Fatalf("duplicate id %s across ranks", vs.ID)
			}
			seen[vs.ID] = true
			if vs.Load <= 0 {
				t.Fatalf("non-positive load %v", vs.Load)
			}
		}
	}
}

// Package hilbert implements an m-dimensional Hilbert space-filling curve.
//
// The load balancer uses it to map m-dimensional landmark vectors (the
// proximity coordinates of §4 of the paper) into the one-dimensional DHT
// identifier space while preserving locality: points close in the
// m-dimensional landmark space receive nearby curve indices ("Hilbert
// numbers"), so the VSA information of physically close nodes lands close
// together on the ring.
//
// The conversion uses Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004), which encodes/decodes in
// O(dims·bits) with no tables, for any number of dimensions.
package hilbert

import "fmt"

// Curve is an m-dimensional Hilbert curve over a grid with 2^bits cells
// per dimension. The curve index occupies dims·bits bits.
type Curve struct {
	dims int
	bits int
}

// New returns a Hilbert curve over dims dimensions with bits bits of
// resolution per dimension. dims·bits must fit in a uint64 index and both
// must be positive.
func New(dims, bits int) (*Curve, error) {
	if dims < 1 {
		return nil, fmt.Errorf("hilbert: dims %d < 1", dims)
	}
	if bits < 1 {
		return nil, fmt.Errorf("hilbert: bits %d < 1", bits)
	}
	if dims*bits > 64 {
		return nil, fmt.Errorf("hilbert: dims*bits = %d exceeds 64-bit index", dims*bits)
	}
	return &Curve{dims: dims, bits: bits}, nil
}

// Dims returns the number of dimensions.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-dimension resolution in bits.
func (c *Curve) Bits() int { return c.bits }

// IndexBits returns the total number of bits in a curve index.
func (c *Curve) IndexBits() int { return c.dims * c.bits }

// MaxCoord returns the largest representable coordinate, 2^bits − 1.
func (c *Curve) MaxCoord() uint32 { return uint32(1)<<uint(c.bits) - 1 }

// Encode maps grid coordinates (len == dims, each < 2^bits) to the
// Hilbert curve index. It panics if the slice length or a coordinate is
// out of range — both indicate a programming error at the call site.
func (c *Curve) Encode(coords []uint32) uint64 {
	if len(coords) != c.dims {
		panic(fmt.Sprintf("hilbert: Encode got %d coords, curve has %d dims", len(coords), c.dims))
	}
	x := make([]uint32, c.dims)
	for i, v := range coords {
		if v > c.MaxCoord() {
			panic(fmt.Sprintf("hilbert: coordinate %d out of range (max %d)", v, c.MaxCoord()))
		}
		x[i] = v
	}
	c.axesToTranspose(x)
	return c.interleave(x)
}

// Decode maps a Hilbert curve index back to grid coordinates.
// It panics if index has bits above IndexBits.
func (c *Curve) Decode(index uint64) []uint32 {
	if c.IndexBits() < 64 && index>>uint(c.IndexBits()) != 0 {
		panic(fmt.Sprintf("hilbert: index %d out of range for %d-bit curve", index, c.IndexBits()))
	}
	x := c.deinterleave(index)
	c.transposeToAxes(x)
	return x
}

// axesToTranspose converts coordinates in place into Skilling's
// "transpose" form of the Hilbert index.
func (c *Curve) axesToTranspose(x []uint32) {
	n := c.dims
	m := uint32(1) << uint(c.bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transpose form in place back into
// coordinates.
func (c *Curve) transposeToAxes(x []uint32) {
	n := c.dims
	limit := uint32(2) << uint(c.bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != limit; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transpose form into a single index: the index's
// most-significant bit group is the top bit of each dimension in order.
func (c *Curve) interleave(x []uint32) uint64 {
	var h uint64
	for j := c.bits - 1; j >= 0; j-- {
		for i := 0; i < c.dims; i++ {
			h = h<<1 | uint64(x[i]>>uint(j)&1)
		}
	}
	return h
}

// deinterleave unpacks a single index into transpose form.
func (c *Curve) deinterleave(h uint64) []uint32 {
	x := make([]uint32, c.dims)
	for j := 0; j < c.bits; j++ {
		for i := 0; i < c.dims; i++ {
			shift := uint((c.bits-1-j)*c.dims + (c.dims - 1 - i))
			x[i] = x[i]<<1 | uint32(h>>shift&1)
		}
	}
	return x
}

package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("dims=0 should fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("bits=0 should fail")
	}
	if _, err := New(13, 5); err == nil {
		t.Error("65-bit index should fail")
	}
	c, err := New(16, 4)
	if err != nil {
		t.Fatalf("64-bit index should be allowed: %v", err)
	}
	if c.IndexBits() != 64 || c.Dims() != 16 || c.Bits() != 4 || c.MaxCoord() != 15 {
		t.Fatalf("curve accessors wrong: %+v", c)
	}
}

func TestIndexZeroIsOrigin(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 5, 15} {
		for _, bits := range []int{1, 2, 4} {
			if dims*bits > 64 {
				continue
			}
			c, _ := New(dims, bits)
			coords := c.Decode(0)
			for i, v := range coords {
				if v != 0 {
					t.Errorf("dims=%d bits=%d: Decode(0)[%d] = %d, want 0", dims, bits, i, v)
				}
			}
			if c.Encode(coords) != 0 {
				t.Errorf("dims=%d bits=%d: Encode(origin) != 0", dims, bits)
			}
		}
	}
}

func TestRoundTripSmallCurvesExhaustive(t *testing.T) {
	// For every index of several small curves: Decode then Encode must be
	// the identity, and all decoded points must be distinct (bijectivity).
	configs := []struct{ dims, bits int }{
		{1, 5}, {2, 1}, {2, 4}, {3, 3}, {4, 2}, {5, 2}, {15, 1},
	}
	for _, cfg := range configs {
		c, err := New(cfg.dims, cfg.bits)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(1) << uint(c.IndexBits())
		seen := make(map[string]bool, total)
		for h := uint64(0); h < total; h++ {
			coords := c.Decode(h)
			if got := c.Encode(coords); got != h {
				t.Fatalf("dims=%d bits=%d: Encode(Decode(%d)) = %d", cfg.dims, cfg.bits, h, got)
			}
			key := ""
			for _, v := range coords {
				if v > c.MaxCoord() {
					t.Fatalf("coordinate %d out of range", v)
				}
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("dims=%d bits=%d: point %v visited twice", cfg.dims, cfg.bits, coords)
			}
			seen[key] = true
		}
		if uint64(len(seen)) != total {
			t.Fatalf("dims=%d bits=%d: visited %d points, want %d", cfg.dims, cfg.bits, len(seen), total)
		}
	}
}

func TestAdjacency(t *testing.T) {
	// The defining Hilbert property: consecutive indices decode to grid
	// points at L1 distance exactly 1.
	configs := []struct{ dims, bits int }{
		{2, 4}, {3, 3}, {4, 3}, {15, 2}, {15, 1}, {7, 2},
	}
	for _, cfg := range configs {
		c, err := New(cfg.dims, cfg.bits)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(1) << uint(c.IndexBits())
		limit := total
		step := uint64(1)
		if total > 1<<16 {
			// Sample windows instead of walking the whole curve.
			limit = 1 << 16
			step = total / limit
			if step == 0 {
				step = 1
			}
		}
		prev := c.Decode(0)
		for h := uint64(1); h < limit; h++ {
			cur := c.Decode(h)
			if d := l1(prev, cur); d != 1 {
				t.Fatalf("dims=%d bits=%d: L1(Decode(%d),Decode(%d)) = %d, want 1",
					cfg.dims, cfg.bits, h-1, h, d)
			}
			prev = cur
		}
		// Also check scattered windows for large curves.
		if step > 1 {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 1000; trial++ {
				h := rng.Uint64() % (total - 1)
				a, b := c.Decode(h), c.Decode(h+1)
				if d := l1(a, b); d != 1 {
					t.Fatalf("dims=%d bits=%d: L1 at random h=%d is %d", cfg.dims, cfg.bits, h, d)
				}
			}
		}
	}
}

func l1(a, b []uint32) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += int(a[i] - b[i])
		} else {
			d += int(b[i] - a[i])
		}
	}
	return d
}

func TestRoundTripProperty15D(t *testing.T) {
	// The production configuration: 15 landmarks, 2 bits each (2^30 grids).
	c, err := New(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [15]uint8) bool {
		coords := make([]uint32, 15)
		for i, v := range raw {
			coords[i] = uint32(v) & c.MaxCoord()
		}
		h := c.Encode(coords)
		back := c.Decode(h)
		for i := range coords {
			if back[i] != coords[i] {
				return false
			}
		}
		return h < 1<<30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLocalityPreservation(t *testing.T) {
	// Nearby points in the grid should receive much closer indices than
	// random point pairs on average. This is the property the paper's
	// proximity mapping depends on.
	c, _ := New(3, 5)
	rng := rand.New(rand.NewSource(9))
	max := c.MaxCoord()
	var nearSum, farSum float64
	trials := 5000
	for i := 0; i < trials; i++ {
		p := []uint32{uint32(rng.Intn(int(max))), uint32(rng.Intn(int(max))), uint32(rng.Intn(int(max)))}
		q := append([]uint32(nil), p...)
		q[rng.Intn(3)]++ // L1 neighbor
		r := []uint32{uint32(rng.Intn(int(max + 1))), uint32(rng.Intn(int(max + 1))), uint32(rng.Intn(int(max + 1)))}
		hp, hq, hr := c.Encode(p), c.Encode(q), c.Encode(r)
		nearSum += absDiff(hp, hq)
		farSum += absDiff(hp, hr)
	}
	if nearSum*20 > farSum {
		t.Errorf("locality weak: near mean %.1f vs far mean %.1f",
			nearSum/float64(trials), farSum/float64(trials))
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestEncodePanics(t *testing.T) {
	c, _ := New(2, 2)
	assertPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanic("wrong dims", func() { c.Encode([]uint32{1}) })
	assertPanic("coord out of range", func() { c.Encode([]uint32{4, 0}) })
	assertPanic("index out of range", func() { c.Decode(1 << 10) })
}

func BenchmarkEncode15D2B(b *testing.B) {
	c, _ := New(15, 2)
	coords := []uint32{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(coords)
	}
}

func BenchmarkDecode15D2B(b *testing.B) {
	c, _ := New(15, 2)
	for i := 0; i < b.N; i++ {
		c.Decode(uint64(i) & (1<<30 - 1))
	}
}

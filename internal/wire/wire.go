// Package wire is the stdlib-only TCP wire protocol of the
// multi-process deployment: length-prefixed frames carrying the
// protocol-core messages (LBI reports, dissemination, VSA lists, VST
// assignment/prepare/commit) between lbd daemons, plus a small
// synchronous control channel the supervisor drives rounds and status
// queries over.
//
// Layering: this package is pure transport. It knows nothing about the
// simulation engine or the deterministic protocol driver — the lbvet
// layercheck analyzer enforces that it never imports internal/sim or
// internal/protocol, and conversely that the runtime-agnostic protocol
// core (internal/lbnode) never imports this package. The cluster layer
// (internal/cluster) owns the translation between wire payloads and the
// lbnode machine types.
//
// Frame format (all integers big-endian):
//
//	[4-byte length][1-byte kind][JSON body]
//
// where length counts the kind byte plus the body. Every connection
// opens with a versioned handshake: the dialer sends a Hello frame
// (protocol version, cluster ID, rank, role), the acceptor answers with
// a HelloAck carrying its own version; either side closes on a version
// or cluster mismatch. Every write is guarded by a per-connection write
// deadline, so a peer that stops draining its socket fails the writer
// instead of wedging it.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Version is the wire-protocol version exchanged in the handshake.
// Bump it on any frame- or message-layout change; mismatched peers
// refuse each other at handshake time instead of misparsing frames.
const Version = 1

// maxFrame bounds a frame's payload so a corrupt length prefix cannot
// make a reader allocate unboundedly.
const maxFrame = 16 << 20

// Frame kinds.
const (
	frameHello    byte = 1
	frameHelloAck byte = 2
	frameMsg      byte = 3
	frameAck      byte = 4
	frameReq      byte = 5
	frameResp     byte = 6
)

// Hello is the dialer's handshake frame.
type Hello struct {
	Version   int    `json:"version"`
	ClusterID string `json:"cluster_id"`
	Rank      int    `json:"rank"` // -1 for a control client
	Role      string `json:"role"` // "peer" or "ctl"
}

// HelloAck is the acceptor's handshake answer.
type HelloAck struct {
	Version int `json:"version"`
	Rank    int `json:"rank"`
}

// Msg is one reliable peer message. Seq is a per-sender sequence number
// used for acknowledgement and receiver-side duplicate suppression;
// Kind and Round route the payload to the right state machine at the
// receiving daemon.
type Msg struct {
	Seq   uint64          `json:"seq"`
	Src   int             `json:"src"`
	Kind  string          `json:"kind"`
	Round uint64          `json:"round"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// Ack acknowledges one Msg by sequence number.
type Ack struct {
	Seq uint64 `json:"seq"`
}

// Req is one synchronous control request (supervisor → daemon).
type Req struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Resp answers a Req.
type Resp struct {
	OK   bool            `json:"ok"`
	Err  string          `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// conn wraps a net.Conn with framed, deadline-guarded I/O. Writes are
// serialized by an internal mutex so a retry goroutine and an ack
// writer can share one connection.
type conn struct {
	c       net.Conn
	r       *bufio.Reader
	wmu     sync.Mutex
	w       *bufio.Writer
	timeout time.Duration
}

func newConn(c net.Conn, writeTimeout time.Duration) *conn {
	return &conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), timeout: writeTimeout}
}

// writeFrame marshals v and writes one frame under the connection's
// write deadline.
func (c *conn) writeFrame(kind byte, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body)+1 > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = kind
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.c.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
		return err
	}
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(body); err != nil {
		return err
	}
	return c.w.Flush()
}

// readFrame reads one frame; it blocks until a frame arrives or the
// connection dies.
func (c *conn) readFrame() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

func (c *conn) close() { c.c.Close() }

// handshakeDial runs the dialer's side of the handshake.
func handshakeDial(c *conn, hello Hello) (HelloAck, error) {
	if err := c.writeFrame(frameHello, hello); err != nil {
		return HelloAck{}, err
	}
	kind, body, err := c.readFrame()
	if err != nil {
		return HelloAck{}, err
	}
	if kind != frameHelloAck {
		return HelloAck{}, fmt.Errorf("wire: expected hello-ack, got frame kind %d", kind)
	}
	var ack HelloAck
	if err := json.Unmarshal(body, &ack); err != nil {
		return HelloAck{}, err
	}
	if ack.Version != Version {
		return HelloAck{}, fmt.Errorf("wire: version mismatch: peer speaks v%d, we speak v%d", ack.Version, Version)
	}
	return ack, nil
}

package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Call performs one synchronous control request against a daemon: dial,
// handshake (role "ctl"), one Req frame, one Resp frame. The timeout
// bounds the whole exchange. Callers that need resilience across daemon
// restarts retry Call at their own cadence — control requests are
// designed idempotent (status is a read; round and drift triggers carry
// the round number and are deduplicated by the daemon).
func Call(addr, clusterID, kind string, body any, timeout time.Duration) (json.RawMessage, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	c := newConn(nc, timeout)
	if _, err := handshakeDial(c, Hello{Version: Version, ClusterID: clusterID, Rank: -1, Role: "ctl"}); err != nil {
		return nil, err
	}
	if err := c.writeFrame(frameReq, Req{Kind: kind, Body: raw}); err != nil {
		return nil, err
	}
	fkind, fbody, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if fkind != frameResp {
		return nil, fmt.Errorf("wire: expected response, got frame kind %d", fkind)
	}
	var resp Resp
	if err := json.Unmarshal(fbody, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("wire: %s: %s", kind, resp.Err)
	}
	return resp.Body, nil
}

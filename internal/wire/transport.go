package wire

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"p2plb/internal/metrics"
)

// Defaults for the reliable-delivery knobs. RetryBase mirrors the sim
// executor's 2·cost+2 discipline (internal/protocol): the first
// retransmission fires after roughly two round trips plus slack, and
// every further attempt doubles the wait up to RetryCap, with a jittered
// fraction added so synchronized retry storms decorrelate.
const (
	DefaultRetryBase    = 25 * time.Millisecond
	DefaultRetryCap     = time.Second
	DefaultWriteTimeout = 5 * time.Second
	DefaultMaxAttempts  = 8
)

// Config parameterizes a Transport.
type Config struct {
	// Rank is this daemon's index in Addrs; Addrs[Rank] is the address
	// to listen on (host:port, or host:0 for an ephemeral port).
	Rank  int
	Addrs []string
	// ClusterID guards against cross-cluster connections: handshakes
	// with a different ID are refused.
	ClusterID string
	// Handler is called exactly once per accepted peer message
	// (duplicates from retransmission are absorbed before it runs). It
	// runs on a connection's read goroutine; the acknowledgement is sent
	// after it returns, so a handler that has durably recorded its
	// effect before returning gets at-least-once-with-dedup = exactly
	//-once processing.
	Handler func(m Msg)
	// Request serves one synchronous control request.
	Request func(kind string, body json.RawMessage) (any, error)

	// RetryBase/RetryCap/MaxAttempts shape the per-message
	// retransmission ladder; zero values take the defaults above.
	// WriteTimeout is the per-connection write deadline.
	RetryBase    time.Duration
	RetryCap     time.Duration
	WriteTimeout time.Duration
	MaxAttempts  int

	// Seed feeds the retry-jitter stream (any fixed value; jitter only
	// decorrelates timers, it carries no protocol meaning).
	Seed int64
	// Metrics, when set, receives wire.* counters.
	Metrics *metrics.Registry
}

// SendOpts controls one reliable send.
type SendOpts struct {
	// Unbounded retries forever (until the transport closes) instead of
	// giving up after MaxAttempts — the commit phase of a two-phase
	// transfer uses this, because a commit may already have been applied
	// remotely and must therefore be driven to acknowledgement, never
	// abandoned.
	Unbounded bool
	// OnAcked runs (once, on a transport goroutine) when the receiver
	// acknowledged the message.
	OnAcked func()
	// OnFailed runs when a bounded send exhausted its attempts.
	OnFailed func()
}

// dedup is the per-sender duplicate-suppression window.
type dedup struct {
	seen map[uint64]bool
	max  uint64
}

func (d *dedup) mark(seq uint64) {
	d.seen[seq] = true
	if seq > d.max {
		d.max = seq
	}
	// Prune far-behind entries so long-lived daemons stay bounded: a
	// retransmission older than the window would have been acked (and
	// its sender silenced) long ago.
	if len(d.seen) > 8192 {
		for s := range d.seen {
			if s+4096 < d.max {
				delete(d.seen, s)
			}
		}
	}
}

// Transport is one daemon's wire endpoint: a listener for inbound peer
// and control connections, a lazily-dialed outbound connection per
// peer, and the reliable-delivery machinery (acks, retransmission with
// capped doubling and jitter, receiver-side dedup).
type Transport struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	peers   map[int]*conn            // outbound, by rank
	inbound map[*conn]bool           // accepted connections, severed on Close
	pending map[uint64]chan struct{} // un-acked sends, by seq
	seen    map[int]*dedup           // inbound dedup, by source rank
	nextSeq uint64
	closed  bool

	jmu    sync.Mutex
	jitter *rand.Rand

	stop chan struct{}
	wg   sync.WaitGroup

	cSent, cRetries, cAcked, cFailed, cDups *metrics.Counter
}

// NewTransport starts listening on cfg.Addrs[cfg.Rank] and returns the
// endpoint. Close releases it.
func NewTransport(cfg Config) (*Transport, error) {
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Addrs) {
		return nil, fmt.Errorf("wire: rank %d outside address table of %d", cfg.Rank, len(cfg.Addrs))
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = DefaultRetryCap
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, err
	}
	t := &Transport{
		cfg:     cfg,
		ln:      ln,
		peers:   make(map[int]*conn),
		inbound: make(map[*conn]bool),
		pending: make(map[uint64]chan struct{}),
		seen:    make(map[int]*dedup),
		jitter:  rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Rank)<<20 ^ 0x77697265)),
		stop:    make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		t.cSent = reg.Counter("wire.sent")
		t.cRetries = reg.Counter("wire.retries")
		t.cAcked = reg.Counter("wire.acked")
		t.cFailed = reg.Counter("wire.failed")
		t.cDups = reg.Counter("wire.dups")
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with :0 ports).
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Close stops the listener, severs every connection and terminates the
// retry goroutines. In-flight sends are abandoned; their callbacks do
// not run.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.stop)
	t.ln.Close()
	for _, c := range t.peers {
		c.close()
	}
	t.peers = make(map[int]*conn)
	for c := range t.inbound {
		c.close()
	}
	t.inbound = make(map[*conn]bool)
	t.mu.Unlock()
	t.wg.Wait()
}

// Send delivers one message reliably: it is retransmitted on a
// capped-doubling, jittered timer until the destination acknowledges
// it, the attempt budget runs out (bounded sends), or the transport
// closes. Send never blocks on the network; all I/O happens on the
// message's retry goroutine.
func (t *Transport) Send(dst int, kind string, round uint64, body any, opts SendOpts) error {
	if dst < 0 || dst >= len(t.cfg.Addrs) {
		return fmt.Errorf("wire: destination rank %d outside address table", dst)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("wire: transport closed")
	}
	t.nextSeq++
	m := Msg{Seq: t.nextSeq, Src: t.cfg.Rank, Kind: kind, Round: round, Body: raw}
	acked := make(chan struct{})
	t.pending[m.Seq] = acked
	t.mu.Unlock()
	if t.cSent != nil {
		t.cSent.Inc()
	}
	t.wg.Add(1)
	go t.retryLoop(dst, m, acked, opts)
	return nil
}

// retryLoop drives one message to acknowledgement (or failure).
func (t *Transport) retryLoop(dst int, m Msg, acked chan struct{}, opts SendOpts) {
	defer t.wg.Done()
	backoff := t.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		t.deliver(dst, m)
		wait := backoff + t.jitterFor(backoff)
		timer := time.NewTimer(wait)
		select {
		case <-acked:
			timer.Stop()
			if t.cAcked != nil {
				t.cAcked.Inc()
			}
			if opts.OnAcked != nil {
				opts.OnAcked()
			}
			return
		case <-t.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if !opts.Unbounded && attempt+1 >= t.cfg.MaxAttempts {
			t.mu.Lock()
			delete(t.pending, m.Seq)
			t.mu.Unlock()
			if t.cFailed != nil {
				t.cFailed.Inc()
			}
			if opts.OnFailed != nil {
				opts.OnFailed()
			}
			return
		}
		if t.cRetries != nil {
			t.cRetries.Inc()
		}
		if backoff < t.cfg.RetryCap {
			backoff *= 2
			if backoff > t.cfg.RetryCap {
				backoff = t.cfg.RetryCap
			}
		}
	}
}

// jitterFor draws a uniform jitter in [0, backoff/4].
func (t *Transport) jitterFor(backoff time.Duration) time.Duration {
	if backoff <= 4 {
		return 0
	}
	t.jmu.Lock()
	defer t.jmu.Unlock()
	return time.Duration(t.jitter.Int63n(int64(backoff / 4)))
}

// deliver makes one best-effort attempt to put the message on the wire;
// errors are swallowed (the retry timer is the recovery path).
func (t *Transport) deliver(dst int, m Msg) {
	c, err := t.peerConn(dst)
	if err != nil {
		return
	}
	if err := c.writeFrame(frameMsg, m); err != nil {
		t.dropPeer(dst, c)
	}
}

// peerConn returns the cached outbound connection to dst, dialing and
// handshaking a fresh one if needed.
func (t *Transport) peerConn(dst int) (*conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("wire: transport closed")
	}
	if c, ok := t.peers[dst]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr := t.cfg.Addrs[dst]
	t.mu.Unlock()

	nc, err := net.DialTimeout("tcp", addr, t.cfg.WriteTimeout)
	if err != nil {
		return nil, err
	}
	c := newConn(nc, t.cfg.WriteTimeout)
	if _, err := handshakeDial(c, Hello{Version: Version, ClusterID: t.cfg.ClusterID, Rank: t.cfg.Rank, Role: "peer"}); err != nil {
		c.close()
		return nil, err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.close()
		return nil, fmt.Errorf("wire: transport closed")
	}
	if prev, ok := t.peers[dst]; ok {
		// Lost a dial race; keep the established one.
		t.mu.Unlock()
		c.close()
		return prev, nil
	}
	t.peers[dst] = c
	t.mu.Unlock()

	// Outbound connections carry only acks back; drain them.
	t.wg.Add(1)
	go t.ackLoop(dst, c)
	return c, nil
}

// dropPeer discards a failed outbound connection so the next attempt
// redials.
func (t *Transport) dropPeer(dst int, c *conn) {
	t.mu.Lock()
	if t.peers[dst] == c {
		delete(t.peers, dst)
	}
	t.mu.Unlock()
	c.close()
}

// ackLoop reads acknowledgement frames off an outbound connection.
func (t *Transport) ackLoop(dst int, c *conn) {
	defer t.wg.Done()
	for {
		kind, body, err := c.readFrame()
		if err != nil {
			t.dropPeer(dst, c)
			return
		}
		if kind != frameAck {
			continue
		}
		var a Ack
		if json.Unmarshal(body, &a) != nil {
			continue
		}
		t.mu.Lock()
		ch, ok := t.pending[a.Seq]
		if ok {
			delete(t.pending, a.Seq)
		}
		t.mu.Unlock()
		if ok {
			close(ch)
		}
	}
}

// acceptLoop serves inbound peer and control connections.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.serveConn(nc)
	}
}

// serveConn handshakes one inbound connection and dispatches its
// frames. Version or cluster mismatches are answered with our own
// HelloAck (so the dialer can diagnose) and a close.
func (t *Transport) serveConn(nc net.Conn) {
	defer t.wg.Done()
	c := newConn(nc, t.cfg.WriteTimeout)
	defer c.close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[c] = true
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
	}()
	kind, body, err := c.readFrame()
	if err != nil || kind != frameHello {
		return
	}
	var hello Hello
	if json.Unmarshal(body, &hello) != nil {
		return
	}
	if err := c.writeFrame(frameHelloAck, HelloAck{Version: Version, Rank: t.cfg.Rank}); err != nil {
		return
	}
	if hello.Version != Version || hello.ClusterID != t.cfg.ClusterID {
		return
	}
	for {
		kind, body, err := c.readFrame()
		if err != nil {
			return
		}
		switch kind {
		case frameMsg:
			var m Msg
			if json.Unmarshal(body, &m) != nil {
				continue
			}
			if t.accept(m) {
				c.writeFrame(frameAck, Ack{Seq: m.Seq})
			}
		case frameReq:
			var r Req
			if json.Unmarshal(body, &r) != nil {
				continue
			}
			c.writeFrame(frameResp, t.serveReq(r))
		}
	}
}

// accept runs the dedup window and, for a first delivery, the handler.
// It reports whether an ack should be sent (always: duplicates re-ack
// so a sender whose first ack was lost goes quiet).
func (t *Transport) accept(m Msg) bool {
	t.mu.Lock()
	d := t.seen[m.Src]
	if d == nil {
		d = &dedup{seen: make(map[uint64]bool)}
		t.seen[m.Src] = d
	}
	if d.seen[m.Seq] {
		t.mu.Unlock()
		if t.cDups != nil {
			t.cDups.Inc()
		}
		return true
	}
	d.mark(m.Seq)
	t.mu.Unlock()
	if t.cfg.Handler != nil {
		t.cfg.Handler(m)
	}
	return true
}

// serveReq answers one control request.
func (t *Transport) serveReq(r Req) Resp {
	if t.cfg.Request == nil {
		return Resp{Err: "no control handler"}
	}
	out, err := t.cfg.Request(r.Kind, r.Body)
	if err != nil {
		return Resp{Err: err.Error()}
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return Resp{Err: err.Error()}
	}
	return Resp{OK: true, Body: raw}
}

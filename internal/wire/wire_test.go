package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// freeAddrs reserves n distinct localhost addresses by binding
// ephemeral ports and releasing them. The tiny race (another process
// grabbing the port between close and reuse) is acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func newPair(t *testing.T, h0, h1 func(m Msg)) (*Transport, *Transport) {
	t.Helper()
	addrs := freeAddrs(t, 2)
	cfg := Config{ClusterID: "test", Addrs: addrs, Seed: 1,
		RetryBase: 10 * time.Millisecond, RetryCap: 100 * time.Millisecond}
	c0, c1 := cfg, cfg
	c0.Rank, c0.Handler = 0, h0
	c1.Rank, c1.Handler = 1, h1
	t0, err := NewTransport(c0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTransport(c1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(t0.Close)
	t.Cleanup(t1.Close)
	return t0, t1
}

// TestSendDeliversOnce: a reliable send reaches the peer's handler
// exactly once and the OnAcked callback fires.
func TestSendDeliversOnce(t *testing.T) {
	var got atomic.Int64
	done := make(chan Msg, 1)
	t0, _ := newPair(t, nil, func(m Msg) {
		got.Add(1)
		done <- m
	})
	acked := make(chan struct{})
	err := t0.Send(1, "ping", 7, map[string]int{"x": 42}, SendOpts{OnAcked: func() { close(acked) }})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m.Kind != "ping" || m.Round != 7 || m.Src != 0 {
			t.Fatalf("bad message: %+v", m)
		}
		var body map[string]int
		if err := json.Unmarshal(m.Body, &body); err != nil || body["x"] != 42 {
			t.Fatalf("bad body: %s", m.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
	}
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("ack never fired")
	}
	time.Sleep(50 * time.Millisecond)
	if n := got.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
}

// TestRetryAcrossLateStart: a message sent before the receiver exists
// is retransmitted until the receiver comes up — the wire-level analog
// of the sim executor's retried delivery.
func TestRetryAcrossLateStart(t *testing.T) {
	addrs := freeAddrs(t, 2)
	cfg := Config{ClusterID: "test", Addrs: addrs, Seed: 1,
		RetryBase: 10 * time.Millisecond, RetryCap: 50 * time.Millisecond, MaxAttempts: 50}
	c0 := cfg
	c0.Rank = 0
	t0, err := NewTransport(c0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(t0.Close)

	acked := make(chan struct{})
	if err := t0.Send(1, "late", 1, nil, SendOpts{OnAcked: func() { close(acked) }}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let a few attempts fail

	done := make(chan struct{}, 1)
	c1 := cfg
	c1.Rank = 1
	c1.Handler = func(m Msg) { done <- struct{}{} }
	t1, err := NewTransport(c1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(t1.Close)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retransmission never reached the late receiver")
	}
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("ack never fired after late start")
	}
}

// TestBoundedSendFails: with nobody listening, a bounded send exhausts
// its attempts and reports failure.
func TestBoundedSendFails(t *testing.T) {
	addrs := freeAddrs(t, 2)
	cfg := Config{Rank: 0, ClusterID: "test", Addrs: addrs, Seed: 1,
		RetryBase: 5 * time.Millisecond, RetryCap: 10 * time.Millisecond, MaxAttempts: 3}
	tr, err := NewTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	failed := make(chan struct{})
	if err := tr.Send(1, "doomed", 1, nil, SendOpts{OnFailed: func() { close(failed) }}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("bounded send never failed")
	}
}

// TestDedupWindow: a retransmitted (duplicate) sequence number is
// absorbed without a second handler run, and still acknowledged.
func TestDedupWindow(t *testing.T) {
	var runs atomic.Int64
	addrs := freeAddrs(t, 1)
	tr, err := NewTransport(Config{Rank: 0, ClusterID: "test", Addrs: addrs, Seed: 1,
		Handler: func(m Msg) { runs.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	m := Msg{Seq: 9, Src: 3, Kind: "dup"}
	if !tr.accept(m) || !tr.accept(m) {
		t.Fatal("accept must ack both copies")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
}

// TestControlCall: the synchronous request/response path.
func TestControlCall(t *testing.T) {
	addrs := freeAddrs(t, 1)
	tr, err := NewTransport(Config{Rank: 0, ClusterID: "test", Addrs: addrs, Seed: 1,
		Request: func(kind string, body json.RawMessage) (any, error) {
			if kind == "boom" {
				return nil, fmt.Errorf("kaput")
			}
			return map[string]string{"echo": kind}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)

	out, err := Call(tr.Addr(), "test", "status", nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var reply map[string]string
	if err := json.Unmarshal(out, &reply); err != nil || reply["echo"] != "status" {
		t.Fatalf("bad reply: %s", out)
	}
	if _, err := Call(tr.Addr(), "test", "boom", nil, 2*time.Second); err == nil {
		t.Fatal("error reply must surface as an error")
	}
}

// TestHandshakeVersionMismatch: a dialer speaking a different protocol
// version is told the server's version and refused.
func TestHandshakeVersionMismatch(t *testing.T) {
	addrs := freeAddrs(t, 1)
	tr, err := NewTransport(Config{Rank: 0, ClusterID: "test", Addrs: addrs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)

	nc, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := newConn(nc, time.Second)
	if err := c.writeFrame(frameHello, Hello{Version: Version + 1, ClusterID: "test", Rank: 1, Role: "peer"}); err != nil {
		t.Fatal(err)
	}
	kind, body, err := c.readFrame()
	if err != nil || kind != frameHelloAck {
		t.Fatalf("expected hello-ack, got kind %d err %v", kind, err)
	}
	var ack HelloAck
	if err := json.Unmarshal(body, &ack); err != nil || ack.Version != Version {
		t.Fatalf("bad hello-ack: %s", body)
	}
	// The server must close on us: the next read fails (it never
	// processes frames from a mismatched peer).
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := c.readFrame(); err == nil {
		t.Fatal("server kept the mismatched connection open")
	}
}

// TestConcurrentSends: many goroutines sending at once, all delivered
// exactly once — the mesh under -race.
func TestConcurrentSends(t *testing.T) {
	const msgs = 64
	var got sync.Map
	var count atomic.Int64
	all := make(chan struct{})
	t0, _ := newPair(t, nil, func(m Msg) {
		var i int
		json.Unmarshal(m.Body, &i)
		if _, dup := got.LoadOrStore(i, true); dup {
			t.Errorf("payload %d delivered twice", i)
		}
		if count.Add(1) == msgs {
			close(all)
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := t0.Send(1, "n", 1, i, SendOpts{}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	select {
	case <-all:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d messages arrived", count.Load(), msgs)
	}
}

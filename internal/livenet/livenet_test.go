package livenet

import (
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ident"
	"p2plb/internal/ktree"
	"p2plb/internal/par"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

func fixture(seed int64, nodes, vsPer int) (*chord.Ring, *ktree.Tree) {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), vsPer)
	}
	mu := float64(nodes) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		panic(err)
	}
	if err := tree.Build(); err != nil {
		panic(err)
	}
	return ring, tree
}

func TestAggregateLBIMatchesSequential(t *testing.T) {
	ring, tree := fixture(1, 128, 5)
	// Deposit every node's report at a fixed leaf choice.
	inbox := make(map[*ktree.Node][]core.LBI)
	var want core.LBI
	for _, n := range ring.Nodes() {
		rep := core.NodeLBI(n)
		want = want.Merge(rep)
		vs := n.VServers()[0]
		inbox[tree.LeavesOf(vs)[0]] = append(inbox[tree.LeavesOf(vs)[0]], rep)
	}
	got := AggregateLBI(tree, inbox)
	if got != want {
		t.Fatalf("concurrent aggregate %+v != sequential %+v", got, want)
	}
}

func TestAggregateLBIEmptyInbox(t *testing.T) {
	_, tree := fixture(2, 16, 3)
	got := AggregateLBI(tree, map[*ktree.Node][]core.LBI{})
	if got.Valid() {
		t.Fatalf("empty inbox should aggregate to invalid LBI, got %+v", got)
	}
}

func TestSweepVSAPairsEverything(t *testing.T) {
	ring, tree := fixture(3, 64, 4)
	// One big light node and offers scattered at many leaves.
	inbox := make(map[*ktree.Node]*core.PairList)
	big := ring.AliveNodes()[0]
	leaf0 := tree.LeavesOf(big.VServers()[0])[0]
	pl := &core.PairList{}
	pl.AddLight(1e12, big, 0)
	inbox[leaf0] = pl
	offers := 0
	for _, n := range ring.AliveNodes()[1:17] {
		vs := n.VServers()[0]
		leaf := tree.LeavesOf(vs)[0]
		p := inbox[leaf]
		if p == nil {
			p = &core.PairList{}
			inbox[leaf] = p
		}
		vs.Load = 5
		p.AddOffer(vs, n, 0)
		offers++
	}
	pairs, left := SweepVSA(tree, inbox, 1, 30)
	if len(pairs) != offers {
		t.Fatalf("paired %d of %d offers", len(pairs), offers)
	}
	if left.Offers() != 0 {
		t.Fatalf("%d offers left unpaired", left.Offers())
	}
	for _, p := range pairs {
		if p.To != big {
			t.Fatal("pairing chose the wrong light node")
		}
	}
}

func TestRunRoundBalances(t *testing.T) {
	ring, tree := fixture(4, 256, 5)
	res, err := RunRound(ring, tree, core.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyBefore < 128 {
		t.Fatalf("fixture too tame: %d heavy", res.HeavyBefore)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("%d heavy remain (unassigned %d)", res.HeavyAfter, res.UnassignedOffers)
	}
	if res.MovedLoad <= 0 || len(res.Assignments) == 0 {
		t.Fatal("nothing moved")
	}
	ring.CheckInvariants()
	tree.CheckInvariants()
}

func TestRunRoundMatchesBalancerAggregates(t *testing.T) {
	// Concurrent round vs the sequential Balancer on identical rings:
	// the global tuple and classification census must agree exactly.
	ringA, treeA := fixture(5, 160, 5)
	resA, err := RunRound(ringA, treeA, core.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ringB, treeB := fixture(5, 160, 5)
	bal, _ := core.NewBalancer(ringB, treeB, core.Config{Epsilon: 0.05})
	resB, err := bal.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if resA.Global != resB.Global {
		t.Errorf("global differs: %+v vs %+v", resA.Global, resB.Global)
	}
	if resA.HeavyBefore != resB.HeavyBefore {
		t.Errorf("heavy-before differs: %d vs %d", resA.HeavyBefore, resB.HeavyBefore)
	}
	if resA.HeavyAfter != 0 || resB.HeavyAfter != 0 {
		t.Errorf("both should balance: %d / %d", resA.HeavyAfter, resB.HeavyAfter)
	}
	diff := resA.MovedLoad - resB.MovedLoad
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05*resB.MovedLoad {
		t.Errorf("moved load diverges: %.0f vs %.0f", resA.MovedLoad, resB.MovedLoad)
	}
}

func TestRunRoundReproducible(t *testing.T) {
	// Same seed → same pairing outcome, despite nondeterministic
	// goroutine interleaving.
	run := func() (float64, int) {
		ring, tree := fixture(6, 96, 4)
		res, err := RunRound(ring, tree, core.Config{Epsilon: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return res.MovedLoad, len(res.Assignments)
	}
	m1, a1 := run()
	m2, a2 := run()
	if m1 != m2 || a1 != a2 {
		t.Fatalf("not reproducible: %v/%d vs %v/%d", m1, a1, m2, a2)
	}
}

func TestRunRoundValidation(t *testing.T) {
	ring, tree := fixture(7, 16, 3)
	if _, err := RunRound(ring, tree, core.Config{Epsilon: -1}); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := RunRound(ring, tree, core.Config{Mode: core.ProximityAware}); err == nil {
		t.Error("aware mode should be rejected (needs a mapper anyway)")
	}
	empty := chord.NewRing(sim.NewEngine(1), chord.Config{})
	emptyTree, _ := ktree.New(empty, 2)
	if _, err := RunRound(empty, emptyTree, core.Config{}); err == nil {
		t.Error("empty ring should fail")
	}
}

func TestUnitLoadGini(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	a, _ := ring.AddNodeWithIDs(-1, 10, []ident.ID{100})
	b, _ := ring.AddNodeWithIDs(-1, 10, []ident.ID{200})
	a.VServers()[0].Load = 10
	b.VServers()[0].Load = 10
	if g := UnitLoadGini(ring); g != 0 {
		t.Fatalf("equal loads should give Gini 0, got %v", g)
	}
	b.VServers()[0].Load = 0
	if g := UnitLoadGini(ring); g <= 0.4 {
		t.Fatalf("concentrated load should give high Gini, got %v", g)
	}
}

func BenchmarkConcurrentRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ring, tree := fixture(int64(i), 512, 5)
		if _, err := RunRound(ring, tree, core.Config{Epsilon: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelSweepIsolation is the -race regression test for the
// sim.Engine.Rand() single-goroutine contract: a parallel sweep over
// RunRound instances is only safe when every worker owns its engine,
// ring and tree outright (the pattern figure sweeps use via par.Map).
// Each worker builds a private fixture, runs a round, and the sweep is
// repeated to pin down determinism; sharing any of those objects across
// workers would trip the race detector here.
func TestParallelSweepIsolation(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	sweep := func() []float64 {
		return par.Map(seeds, 0, func(seed int64) float64 {
			ring, tree := fixture(seed, 96, 4)
			res, err := RunRound(ring, tree, core.Config{Epsilon: 0.05})
			if err != nil {
				t.Error(err)
				return -1
			}
			if res.MovedLoad <= 0 {
				t.Errorf("seed %d moved no load", seed)
			}
			return res.MovedLoad
		})
	}
	first := sweep()
	second := sweep()
	for i := range seeds {
		if first[i] != second[i] {
			t.Errorf("seed %d: moved load %v then %v — parallel sweep not deterministic",
				seeds[i], first[i], second[i])
		}
	}
}

package livenet

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ident"
	"p2plb/internal/ktree"
)

// snapshotPlacement records (node index → sorted VS ids) plus the total
// load, so tests can assert a cancelled round mutated nothing.
func snapshotPlacement(ring *chord.Ring) (map[int][]ident.ID, float64) {
	out := make(map[int][]ident.ID)
	var total float64
	for _, n := range ring.Nodes() {
		var ids []ident.ID
		for _, vs := range n.VServers() {
			ids = append(ids, vs.ID)
			total += vs.Load
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) //lbvet:ignore identcompare total-order sort for a stable fingerprint
		out[n.Index] = ids
	}
	return out, total
}

func placementEqual(a, b map[int][]ident.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// TestRunRoundCtxPreCancelled: a cancelled context fails fast with the
// ring untouched.
func TestRunRoundCtxPreCancelled(t *testing.T) {
	ring, tree := fixture(21, 128, 4)
	before, loadBefore := snapshotPlacement(ring)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunRoundCtx(ctx, ring, tree, core.Config{Epsilon: 0.05}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after, loadAfter := snapshotPlacement(ring)
	if !placementEqual(before, after) || loadBefore != loadAfter {
		t.Fatal("cancelled round mutated the ring")
	}
}

// TestRunRoundCtxBackgroundMatchesRunRound: the ctx variant with a live
// context is the same round.
func TestRunRoundCtxBackgroundMatchesRunRound(t *testing.T) {
	ringA, treeA := fixture(22, 96, 4)
	resA, err := RunRoundCtx(context.Background(), ringA, treeA, core.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ringB, treeB := fixture(22, 96, 4)
	resB, err := RunRound(ringB, treeB, core.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Global != resB.Global || resA.MovedLoad != resB.MovedLoad ||
		len(resA.Assignments) != len(resB.Assignments) {
		t.Fatalf("ctx round diverged: %+v vs %+v", resA, resB)
	}
}

// countNodes walks the KT tree (test helper; the tree has no walker).
func countNodes(root *ktree.Node) int {
	n := 1
	for _, c := range root.Children {
		n += countNodes(c)
	}
	return n
}

// TestReduceStopSkipsRemainingWork: closing the stop channel from
// inside an eval makes the reduction drain without evaluating the
// untouched subtrees, and every spawned goroutine still terminates —
// under -race a leaked writer still touching the counter after the
// test's final read would be flagged.
func TestReduceStopSkipsRemainingWork(t *testing.T) {
	_, tree := fixture(23, 512, 4)
	total := countNodes(tree.Root())
	stop := make(chan struct{})
	var evals atomic.Int64
	reduceStop(stop, tree.Root(), func(n *ktree.Node, children []int) int {
		if evals.Add(1) == 3 {
			close(stop)
		}
		return 1
	})
	got := int(evals.Load())
	if got >= total {
		t.Fatalf("stop did not short-circuit: %d of %d nodes evaluated", got, total)
	}
	if got < 3 {
		t.Fatalf("only %d evals before stop — fixture too small", got)
	}
}

// TestRunRoundCtxConcurrentCancel races a cancel against live rounds:
// whatever the interleaving, a round either completes normally or
// reports the cancellation with the ring exactly as it was. Run under
// -race this also exercises the drain paths for leaks.
func TestRunRoundCtxConcurrentCancel(t *testing.T) {
	sawCancel := false
	for i := 0; i < 12; i++ {
		ring, tree := fixture(int64(100+i), 192, 4)
		before, loadBefore := snapshotPlacement(ring)
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i%4) * 100 * time.Microsecond)
		res, err := RunRoundCtx(ctx, ring, tree, core.Config{Epsilon: 0.05})
		cancel()
		switch {
		case err == nil:
			if res.MovedLoad <= 0 {
				t.Fatalf("iteration %d: completed round moved nothing", i)
			}
		case err == context.Canceled:
			sawCancel = true
			after, loadAfter := snapshotPlacement(ring)
			if !placementEqual(before, after) || loadBefore != loadAfter {
				t.Fatalf("iteration %d: cancelled round mutated the ring", i)
			}
		default:
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
	}
	// Both outcomes are timing-dependent; the guaranteed pre-cancel path
	// is covered by TestRunRoundCtxPreCancelled, so a sweep that never
	// cancels mid-flight is fine — just note it.
	if !sawCancel {
		t.Log("no mid-round cancellation observed in this run (timing-dependent)")
	}
}

package livenet

import (
	"testing"

	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/workload"
)

// TestLazyRingCacheUnderLiveRounds drives mixed add/remove/transfer
// sequences against the ring between real in-process rounds. Each batch
// of mutations invalidates the epoch-tagged position cache; the
// CheckInvariants call then asserts every lazily revalidated position
// agrees with the array index, and RunRound exercises the concurrent
// classification and sweep over the same ring — so under -race this
// also pins that the parallel round never writes the cache.
func TestLazyRingCacheUnderLiveRounds(t *testing.T) {
	ring, tree := fixture(21, 96, 4)
	rng := ring.Engine().Rand()
	profile := workload.GnutellaProfile()
	cfg := core.Config{Epsilon: 0.05}

	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			ring.AddNode(-1, profile.Sample(rng), 4)
		}
		alive := ring.AliveNodes()
		for i := 0; i < 4 && len(alive) > 16; i++ {
			j := rng.Intn(len(alive))
			ring.RemoveNode(alive[j])
			alive[j] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		}
		for i := 0; i < 4; i++ {
			from := alive[rng.Intn(len(alive))]
			to := alive[rng.Intn(len(alive))]
			if vs := from.RandomVS(rng); vs != nil {
				ring.Transfer(vs, to)
			}
		}
		// Every position read below goes through a stale cache first.
		ring.CheckInvariants()
		for _, vs := range ring.VServers() {
			if !ring.RegionOf(vs).Contains(vs.ID) {
				t.Fatalf("round %d: region of %s does not contain its ID", round, vs.ID)
			}
		}

		// Membership changed, so rebuild the tree and re-derive loads
		// from the new regions, then run a full concurrent round.
		mu := float64(len(alive)) * 100
		model := workload.Gaussian{Mu: mu, Sigma: mu / 400}
		for _, vs := range ring.VServers() {
			vs.Load = model.Load(rng, ring.RegionOf(vs).Fraction())
		}
		var err error
		tree, err = ktree.New(ring, 2)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tree.Build(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		res, err := RunRound(ring, tree, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.HeavyAfter > res.HeavyBefore {
			t.Fatalf("round %d: round made things worse (%d -> %d heavy)",
				round, res.HeavyBefore, res.HeavyAfter)
		}
		ring.CheckInvariants()
		tree.CheckInvariants()
	}
}

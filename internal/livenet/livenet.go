// Package livenet executes the load-balancing sweeps as real concurrent
// computations: one goroutine per KT node, channels as the parent-child
// links. Where internal/sim provides deterministic virtual time and
// internal/protocol explicit message events, livenet demonstrates that
// the algorithm itself is order-independent — the LBI merge is
// commutative and associative, and rendezvous pairing depends only on
// list contents — so a truly parallel execution (tens of thousands of
// goroutines on however many cores exist) produces the same balancing
// outcome as the sequential ones. The tests run under the race detector
// and cross-check results against core.Balancer.
//
// The converge-casts are classic parallel tree reductions; on a
// multi-core host they also serve as the fast path for very large
// simulated systems.
package livenet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/par"
	"p2plb/internal/stats"
)

// spawnDepth bounds the goroutine fan-out of the parallel reductions:
// nodes above this depth get their own goroutine (up to K^spawnDepth of
// them — ample parallelism for any core count); deeper subtrees reduce
// sequentially inside their ancestor's goroutine. Without the cutoff a
// full-scale tree (~700k KT nodes) would allocate hundreds of thousands
// of stacks for no extra parallelism.
const spawnDepth = 8

// AggregateLBI performs the bottom-up LBI converge-cast concurrently:
// KT nodes in the top spawnDepth levels run as goroutines reading their
// children's results from channels; deeper subtrees reduce sequentially.
func AggregateLBI(tree *ktree.Tree, inbox map[*ktree.Node][]core.LBI) core.LBI {
	var sequential func(n *ktree.Node) core.LBI
	sequential = func(n *ktree.Node) core.LBI {
		var agg core.LBI
		for _, rep := range inbox[n] {
			agg = agg.Merge(rep)
		}
		for _, c := range n.Children {
			if c != nil {
				agg = agg.Merge(sequential(c))
			}
		}
		return agg
	}
	var spawn func(n *ktree.Node) <-chan core.LBI
	spawn = func(n *ktree.Node) <-chan core.LBI {
		out := make(chan core.LBI, 1)
		if n.Depth >= spawnDepth {
			go func() { out <- sequential(n) }()
			return out
		}
		var childCh []<-chan core.LBI
		for _, c := range n.Children {
			if c != nil {
				childCh = append(childCh, spawn(c))
			}
		}
		go func() {
			var agg core.LBI
			for _, rep := range inbox[n] {
				agg = agg.Merge(rep)
			}
			for _, ch := range childCh {
				agg = agg.Merge(<-ch)
			}
			out <- agg
		}()
		return out
	}
	return <-spawn(tree.Root())
}

// pairSink collects pairings emitted by concurrently running
// rendezvous goroutines.
type pairSink struct {
	mu    sync.Mutex
	pairs []core.Pair
}

func (s *pairSink) add(ps []core.Pair) {
	if len(ps) == 0 {
		return
	}
	s.mu.Lock()
	s.pairs = append(s.pairs, ps...)
	s.mu.Unlock()
}

// SweepVSA performs the bottom-up VSA sweep concurrently: each KT node
// goroutine merges its children's unpaired lists with its own inbox,
// pairs when it qualifies as a rendezvous point (threshold reached, or
// root), and sends leftovers upward. It returns all pairings and the
// list left unpaired at the root. The inbox PairLists are consumed.
func SweepVSA(tree *ktree.Tree, inbox map[*ktree.Node]*core.PairList, lmin float64, threshold int) ([]core.Pair, *core.PairList) {
	if threshold == 0 {
		threshold = core.DefaultRendezvousThreshold
	}
	sink := &pairSink{}
	process := func(n *ktree.Node, lists *core.PairList) {
		isRoot := n.Parent == nil
		if lists.Size() > 0 && (isRoot || (threshold > 0 && lists.Size() >= threshold)) {
			sink.add(lists.Pair(lmin))
		}
	}
	var sequential func(n *ktree.Node) *core.PairList
	sequential = func(n *ktree.Node) *core.PairList {
		lists := inbox[n]
		if lists == nil {
			lists = &core.PairList{}
		}
		for _, c := range n.Children {
			if c != nil {
				lists.Merge(sequential(c))
			}
		}
		process(n, lists)
		return lists
	}
	var spawn func(n *ktree.Node) <-chan *core.PairList
	spawn = func(n *ktree.Node) <-chan *core.PairList {
		out := make(chan *core.PairList, 1)
		if n.Depth >= spawnDepth {
			go func() { out <- sequential(n) }()
			return out
		}
		var childCh []<-chan *core.PairList
		for _, c := range n.Children {
			if c != nil {
				childCh = append(childCh, spawn(c))
			}
		}
		go func() {
			lists := inbox[n]
			if lists == nil {
				lists = &core.PairList{}
			}
			for _, ch := range childCh {
				lists.Merge(<-ch)
			}
			process(n, lists)
			out <- lists
		}()
		return out
	}
	left := <-spawn(tree.Root())
	return sink.pairs, left
}

// Result is a concurrent round's outcome (a subset of core.Result: the
// live execution has no virtual clock, so there are no phase times).
type Result struct {
	Global                                  core.LBI
	HeavyBefore, LightBefore, NeutralBefore int
	HeavyAfter, LightAfter, NeutralAfter    int
	Assignments                             []core.Pair
	MovedLoad                               float64
	UnassignedOffers                        int
}

// RunRound executes a complete load-balancing round with concurrent
// sweeps: parallel LBI reduction, parallel classification, concurrent
// VSA sweep, then transfers applied to the ring. The seed drives the
// (sequential) randomized reporting choices, so a round is reproducible
// even though execution interleaving is not.
func RunRound(ring *chord.Ring, tree *ktree.Tree, cfg core.Config, seed int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode != core.ProximityIgnorant {
		return nil, fmt.Errorf("livenet: only proximity-ignorant rounds are implemented")
	}
	if ring.NumVServers() == 0 {
		return nil, fmt.Errorf("livenet: ring has no virtual servers")
	}
	if tree.Root() == nil {
		if err := tree.Build(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// LBI reporting (sequential: consumes the round RNG) and the
	// concurrent aggregation.
	lbiInbox := make(map[*ktree.Node][]core.LBI)
	var alive []*chord.Node
	for _, n := range ring.Nodes() {
		if !n.Alive {
			continue
		}
		alive = append(alive, n)
		vs := n.RandomVS(rng)
		if vs == nil {
			all := ring.VServers()
			vs = all[rng.Intn(len(all))]
		}
		leaves := tree.LeavesOf(vs)
		leaf := leaves[rng.Intn(len(leaves))]
		lbiInbox[leaf] = append(lbiInbox[leaf], core.NodeLBI(n))
	}
	global := AggregateLBI(tree, lbiInbox)
	if !global.Valid() {
		return nil, fmt.Errorf("livenet: no node reported LBI")
	}
	res := &Result{Global: global}

	// Classification in parallel across nodes.
	states := make([]*core.NodeState, len(alive))
	par.For(len(alive), 0, func(i int) {
		states[i] = core.ClassifyNode(alive[i], global, cfg.Epsilon, cfg.Subset)
	})
	for _, st := range states {
		switch st.Class {
		case core.Heavy:
			res.HeavyBefore++
		case core.Light:
			res.LightBefore++
		default:
			res.NeutralBefore++
		}
	}

	// VSA inboxes (sequential RNG), concurrent sweep.
	vsaInbox := make(map[*ktree.Node]*core.PairList)
	leafOf := make(map[*chord.VServer]*ktree.Node)
	for _, st := range states {
		if st.Class == core.Neutral {
			continue
		}
		vs := st.Node.RandomVS(rng)
		if vs == nil {
			all := ring.VServers()
			vs = all[rng.Intn(len(all))]
		}
		leaf, ok := leafOf[vs]
		if !ok {
			leaves := tree.LeavesOf(vs)
			leaf = leaves[rng.Intn(len(leaves))]
			leafOf[vs] = leaf
		}
		pl := vsaInbox[leaf]
		if pl == nil {
			pl = &core.PairList{}
			vsaInbox[leaf] = pl
		}
		switch st.Class {
		case core.Light:
			pl.AddLight(st.Deficit, st.Node, 0)
		case core.Heavy:
			for _, offer := range st.Offers {
				pl.AddOffer(offer, st.Node, 0)
			}
		}
	}
	pairs, left := SweepVSA(tree, vsaInbox, global.Lmin, cfg.RendezvousThreshold)
	// The sink collects pairs in goroutine-completion order; sort them
	// so the result (including float summation order) is reproducible.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].VS.ID < pairs[j].VS.ID }) //lbvet:ignore identcompare total-order sort for a reproducible result order
	res.Assignments = pairs
	res.UnassignedOffers = left.Offers()

	// Transfers mutate the ring: apply sequentially.
	for _, p := range pairs {
		ring.Transfer(p.VS, p.To)
		res.MovedLoad += p.Load
	}
	for _, n := range alive {
		st := core.ClassifyNode(n, global, cfg.Epsilon, cfg.Subset)
		switch st.Class {
		case core.Heavy:
			res.HeavyAfter++
		case core.Light:
			res.LightAfter++
		default:
			res.NeutralAfter++
		}
	}
	if _, err := tree.Repair(); err != nil {
		return nil, err
	}
	return res, nil
}

// UnitLoadGini is a convenience: the Gini coefficient of per-node unit
// load, computed in parallel-friendly one pass.
func UnitLoadGini(ring *chord.Ring) float64 {
	var units []float64
	for _, n := range ring.Nodes() {
		if n.Alive {
			units = append(units, n.TotalLoad()/n.Capacity)
		}
	}
	return stats.Gini(units)
}

// Package livenet is the concurrent executor of the load-balancing
// protocol: it drives the same per-KT-node state machines as the
// deterministic-sim executor (internal/protocol) — lbnode.LBICollect,
// lbnode.VSACollect, lbnode.Classify, lbnode.DepositVSA — but over real
// goroutines and channels instead of simulated message events: one
// goroutine per KT subtree in the top levels, channels as the
// parent-child links. There is no algorithm copy here; the sweeps are a
// generic concurrent tree reduction (reduce) with the machine
// transitions as the per-node evaluation, so livenet is the multi-core
// fast path for very large rings by construction. The machines are pure
// and the LBI merge is commutative and associative, so the parallel
// execution's outcome is interleaving-independent; the tests run under
// the race detector and cross-check results against both core.Balancer
// and the protocol executor (see the cross-executor equivalence test in
// internal/lbnode).
//
// The live execution has no virtual clock and no fault plan: delivery
// is the Go memory model, so acks, retries and epoch timers — transport
// concerns of the sim executor — have no counterpart here.
package livenet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ktree"
	"p2plb/internal/lbnode"
	"p2plb/internal/par"
	"p2plb/internal/stats"
)

// spawnDepth bounds the goroutine fan-out of the parallel reductions:
// nodes above this depth get their own goroutine (up to K^spawnDepth of
// them — ample parallelism for any core count); deeper subtrees reduce
// sequentially inside their ancestor's goroutine. Without the cutoff a
// full-scale tree (~700k KT nodes) would allocate hundreds of thousands
// of stacks for no extra parallelism.
const spawnDepth = 8

// reduce runs a bottom-up converge-cast over the KT tree: eval sees one
// node together with its children's already-reduced results (in child
// order) and returns the node's own result. KT nodes in the top
// spawnDepth levels run as goroutines reading their children's results
// from channels; deeper subtrees reduce sequentially. eval runs exactly
// once per node, from a single goroutine at a time, so driving a pure
// lbnode machine inside it needs no locking.
func reduce[T any](root *ktree.Node, eval func(n *ktree.Node, children []T) T) T {
	return reduceStop(nil, root, eval)
}

// reduceStop is reduce with a stop channel: once stop is closed, every
// node whose evaluation has not yet begun is skipped (its zero value
// propagates upward) and the reduction drains quickly instead of
// grinding through the remaining subtrees. A parent reads its children
// before checking stop, so eval never sees a mix of real and skipped
// child results without the stop flag also being visible to the caller
// that will discard the tainted root value. Every spawned goroutine
// sends exactly once into a buffered channel, so an abandoned reduction
// leaks nothing.
func reduceStop[T any](stop <-chan struct{}, root *ktree.Node, eval func(n *ktree.Node, children []T) T) T {
	stopped := func() bool {
		if stop == nil {
			return false
		}
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	var sequential func(n *ktree.Node) T
	sequential = func(n *ktree.Node) T {
		var zero T
		if stopped() {
			return zero
		}
		var children []T
		for _, c := range n.Children {
			children = append(children, sequential(c))
		}
		if stopped() {
			return zero
		}
		return eval(n, children)
	}
	var spawn func(n *ktree.Node) <-chan T
	spawn = func(n *ktree.Node) <-chan T {
		out := make(chan T, 1)
		if n.Depth >= spawnDepth {
			go func() { out <- sequential(n) }()
			return out
		}
		var childCh []<-chan T
		for _, c := range n.Children {
			childCh = append(childCh, spawn(c))
		}
		go func() {
			var zero T
			children := make([]T, len(childCh))
			for i, ch := range childCh {
				children[i] = <-ch
			}
			if stopped() {
				out <- zero
				return
			}
			out <- eval(n, children)
		}()
		return out
	}
	return <-spawn(root)
}

// AggregateLBI performs the bottom-up LBI converge-cast concurrently,
// one lbnode.LBICollect epoch per KT node: local reports seed the
// epoch, children's subtree aggregates fold through the machine in
// child-index order (the machine buffers them, so the sim executor's
// arrival-order replies fold identically).
func AggregateLBI(tree *ktree.Tree, inbox map[*ktree.Node][]core.LBI) core.LBI {
	return aggregateLBIStop(nil, tree, inbox)
}

func aggregateLBIStop(stop <-chan struct{}, tree *ktree.Tree, inbox map[*ktree.Node][]core.LBI) core.LBI {
	return reduceStop(stop, tree.Root(), func(n *ktree.Node, children []core.LBI) core.LBI {
		col := lbnode.NewLBICollect(inbox[n], len(children))
		for i, sub := range children {
			col.ChildReply(i, sub)
		}
		return col.Aggregate()
	})
}

// pairSink collects pairings emitted by concurrently running
// rendezvous goroutines.
type pairSink struct {
	mu    sync.Mutex
	pairs []core.Pair
}

func (s *pairSink) add(ps []core.Pair) {
	if len(ps) == 0 {
		return
	}
	s.mu.Lock()
	s.pairs = append(s.pairs, ps...)
	s.mu.Unlock()
}

// SweepVSA performs the bottom-up VSA sweep concurrently, one
// lbnode.VSACollect epoch per KT node: children's unpaired lists merge
// through the machine, rendezvous points (threshold reached, or the
// root) pair and emit, and leftovers flow upward. It returns all
// pairings and the list left unpaired at the root. The inbox PairLists
// are consumed.
func SweepVSA(tree *ktree.Tree, inbox map[*ktree.Node]*core.PairList, lmin float64, threshold int) ([]core.Pair, *core.PairList) {
	return sweepVSAStop(nil, tree, inbox, lmin, threshold)
}

func sweepVSAStop(stop <-chan struct{}, tree *ktree.Tree, inbox map[*ktree.Node]*core.PairList, lmin float64, threshold int) ([]core.Pair, *core.PairList) {
	sink := &pairSink{}
	left := reduceStop(stop, tree.Root(), func(n *ktree.Node, children []*core.PairList) *core.PairList {
		col := lbnode.NewVSACollect(inbox[n], len(children))
		for _, sub := range children {
			col.ChildReply(sub)
		}
		sink.add(col.Rendezvous(n.Parent == nil, threshold, lmin))
		return col.Lists()
	})
	// By the time reduce returns, every worker that called sink.add has
	// been joined through the per-node channels, so the sink is
	// quiescent and this read cannot race the locked writers.
	//lbvet:ignore lockguard reduce joins all workers before this read; the sink is quiescent
	return sink.pairs, left
}

// Result is a concurrent round's outcome (a subset of core.Result: the
// live execution has no virtual clock, so there are no phase times).
type Result struct {
	Global                                  core.LBI
	HeavyBefore, LightBefore, NeutralBefore int
	HeavyAfter, LightAfter, NeutralAfter    int
	Assignments                             []core.Pair
	MovedLoad                               float64
	UnassignedOffers                        int
}

// RunRound executes a complete load-balancing round with concurrent
// sweeps: parallel LBI reduction, parallel classification, concurrent
// VSA sweep, then transfers applied to the ring. The randomized
// reporting choices are drawn sequentially from the ring engine's RNG
// through the canonical placement pre-pass (lbnode.PlaceRound) — the
// identical sequence the deterministic-sim executor draws — so a round
// is reproducible even though execution interleaving is not, and the
// two executors' transfer sets match exactly.
func RunRound(ring *chord.Ring, tree *ktree.Tree, cfg core.Config) (*Result, error) {
	return RunRoundCtx(context.Background(), ring, tree, cfg)
}

// RunRoundCtx is RunRound with graceful shutdown: when ctx is
// cancelled, in-flight tree reductions drain (skipping not-yet-started
// subtrees) and the round returns ctx's error with the ring untouched —
// cancellation is checked one final time before the transfer phase, and
// transfers are the only ring mutation, so a cancelled round never
// leaves a half-applied transfer set. A cancellation that lands after
// the transfer phase began lets the round finish normally: tearing the
// transfer loop would trade a clean shutdown for a corrupted ring.
func RunRoundCtx(ctx context.Context, ring *chord.Ring, tree *ktree.Tree, cfg core.Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Mode != core.ProximityIgnorant {
		return nil, fmt.Errorf("livenet: only proximity-ignorant rounds are implemented")
	}
	if ring.NumVServers() == 0 {
		return nil, fmt.Errorf("livenet: ring has no virtual servers")
	}
	if tree.Root() == nil {
		if err := tree.Build(); err != nil {
			return nil, err
		}
	}

	// Canonical placement (sequential: consumes the engine RNG), then
	// the concurrent aggregation.
	place := lbnode.PlaceRound(ring, tree, ring.Engine().Rand(), nil)
	lbiInbox := make(map[*ktree.Node][]core.LBI)
	place.DepositReports(lbiInbox)
	global := aggregateLBIStop(ctx.Done(), tree, lbiInbox)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !global.Valid() {
		return nil, fmt.Errorf("livenet: no node reported LBI")
	}
	res := &Result{Global: global}

	// Classification in parallel across nodes.
	states := make([]*core.NodeState, len(place.Nodes))
	par.For(len(place.Nodes), 0, func(i int) {
		states[i] = lbnode.Classify(place.Nodes[i], global, cfg.Epsilon, cfg.Subset)
	})
	res.HeavyBefore, res.LightBefore, res.NeutralBefore = lbnode.Tally(states)

	// VSA inboxes from the placement, concurrent sweep.
	vsaInbox := make(map[*ktree.Node]*core.PairList)
	for _, st := range states {
		if st.Class == core.Neutral {
			continue
		}
		leaf, ok := place.VSALeaf[st.Node]
		if !ok {
			continue // fresh joiner: no leaf until the next repair
		}
		pl := vsaInbox[leaf]
		if pl == nil {
			pl = &core.PairList{}
			vsaInbox[leaf] = pl
		}
		lbnode.DepositVSA(pl, st, 0)
	}
	pairs, left := sweepVSAStop(ctx.Done(), tree, vsaInbox, global.Lmin, cfg.RendezvousThreshold)
	// Last cancellation point: a cancelled sweep returns partial pairs
	// and a nil leftover list, and past here the round commits its
	// transfers.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The sink collects pairs in goroutine-completion order; sort them
	// so the result (including float summation order) is reproducible.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].VS.ID < pairs[j].VS.ID }) //lbvet:ignore identcompare total-order sort for a reproducible result order
	res.Assignments = pairs
	res.UnassignedOffers = left.Offers()

	// Transfers mutate the ring: apply sequentially.
	for _, p := range pairs {
		ring.Transfer(p.VS, p.To)
		res.MovedLoad += p.Load
	}
	res.HeavyAfter, res.LightAfter, res.NeutralAfter = lbnode.Census(ring.Nodes(), global, cfg.Epsilon, cfg.Subset)
	if _, err := tree.Repair(); err != nil {
		return nil, err
	}
	return res, nil
}

// UnitLoadGini is a convenience: the Gini coefficient of per-node unit
// load, computed in parallel-friendly one pass.
func UnitLoadGini(ring *chord.Ring) float64 {
	var units []float64
	for _, n := range ring.Nodes() {
		if n.Alive {
			units = append(units, n.TotalLoad()/n.Capacity)
		}
	}
	return stats.Gini(units)
}

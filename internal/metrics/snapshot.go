package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
)

// Bucket is one non-empty histogram bucket in a snapshot: observations
// v with Lo <= v < Hi.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram frozen at snapshot time. Only
// non-empty buckets are kept.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an approximate q-quantile (q in [0,1]) assuming a
// uniform spread inside each bucket. It returns 0 for an empty
// histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var seen float64
	for _, b := range h.Buckets {
		next := seen + float64(b.Count)
		if next >= target {
			lo, hi := float64(b.Lo), float64(b.Hi)
			if lo < float64(h.Min) {
				lo = float64(h.Min)
			}
			if hi > float64(h.Max)+1 {
				hi = float64(h.Max) + 1
			}
			if b.Count == 0 || hi <= lo {
				return lo
			}
			frac := (target - seen) / float64(b.Count)
			return lo + frac*(hi-lo)
		}
		seen = next
	}
	return float64(h.Max)
}

// merge combines another snapshot of the same (or a disjoint) histogram
// into h.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if o.Count == 0 {
		return h
	}
	if h.Count == 0 {
		return o
	}
	out := HistogramSnapshot{
		Count: h.Count + o.Count,
		Sum:   h.Sum + o.Sum,
		Min:   h.Min,
		Max:   h.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	byLo := make(map[int64]Bucket, len(h.Buckets)+len(o.Buckets))
	for _, b := range h.Buckets {
		byLo[b.Lo] = b
	}
	for _, b := range o.Buckets {
		if prev, ok := byLo[b.Lo]; ok {
			prev.Count += b.Count
			byLo[b.Lo] = prev
		} else {
			byLo[b.Lo] = b
		}
	}
	for _, b := range byLo {
		out.Buckets = append(out.Buckets, b)
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Lo < out.Buckets[j].Lo })
	return out
}

// Snapshot is a point-in-time copy of a Registry's contents, suitable
// for JSON/CSV export, merging across runs, and diffing across PRs (the
// BENCH_*.json trajectory).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Floats     map[string]float64           `json:"floats,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string][]Point           `json:"series,omitempty"`
}

// Snapshot freezes the registry's current contents.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Floats:     make(map[string]float64, len(r.floats)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Series:     make(map[string][]Point, len(r.series)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, f := range r.floats {
		s.Floats[name] = f.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	for name, ser := range r.series {
		s.Series[name] = ser.Points()
	}
	return s
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if out.Count > 0 {
		out.Min = h.min.Load()
		out.Max = h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			out.Buckets = append(out.Buckets, Bucket{Lo: BucketLo(i), Hi: BucketHi(i), Count: n})
		}
	}
	return out
}

// Merge folds another snapshot into s: counters and floats add,
// histograms combine, series concatenate (sorted by time).
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	if s.Floats == nil {
		s.Floats = make(map[string]float64)
	}
	for k, v := range o.Floats {
		s.Floats[k] += v
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for k, v := range o.Histograms {
		s.Histograms[k] = s.Histograms[k].merge(v)
	}
	if s.Series == nil {
		s.Series = make(map[string][]Point)
	}
	for k, pts := range o.Series {
		merged := append(append([]Point(nil), s.Series[k]...), pts...)
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].T < merged[j].T })
		s.Series[k] = merged
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a snapshot previously written with WriteJSON.
func ReadJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

// WriteCSV writes the snapshot as flat rows: kind,name,field,value.
// Histograms expand to count/sum/min/max/mean rows plus one row per
// bucket; series to one row per point (field is the timestamp).
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "field", "value"}); err != nil {
		return err
	}
	fmtInt := func(v int64) string { return strconv.FormatInt(v, 10) }
	fmtFloat := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, name := range sortedKeys(s.Counters) {
		cw.Write([]string{"counter", name, "value", fmtInt(s.Counters[name])})
	}
	for _, name := range sortedKeys(s.Floats) {
		cw.Write([]string{"float", name, "value", fmtFloat(s.Floats[name])})
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		cw.Write([]string{"histogram", name, "count", fmtInt(h.Count)})
		cw.Write([]string{"histogram", name, "sum", fmtInt(h.Sum)})
		cw.Write([]string{"histogram", name, "min", fmtInt(h.Min)})
		cw.Write([]string{"histogram", name, "max", fmtInt(h.Max)})
		cw.Write([]string{"histogram", name, "mean", fmtFloat(h.Mean())})
		for _, b := range h.Buckets {
			lo := fmtInt(b.Lo)
			if b.Lo == math.MinInt64 {
				lo = "-inf"
			}
			cw.Write([]string{"histogram", name, "bucket<" + lo + ">", fmtInt(b.Count)})
		}
	}
	for _, name := range sortedKeys(s.Series) {
		for _, p := range s.Series[name] {
			cw.Write([]string{"series", name, fmtFloat(p.T), fmtFloat(p.V)})
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes the snapshot to path: CSV when the path ends in
// ".csv", indented JSON otherwise.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		if err := s.WriteCSV(f); err != nil {
			return fmt.Errorf("metrics: writing %s: %w", path, err)
		}
		return nil
	}
	if err := s.WriteJSON(f); err != nil {
		return fmt.Errorf("metrics: writing %s: %w", path, err)
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package metrics is the simulator's observability substrate: named
// counters, power-of-two-bucket histograms, append-only time series and
// span timers, collected in a Registry and exported as JSON or CSV
// snapshots.
//
// Every primitive is safe for concurrent use (atomic operations on the
// hot paths, a mutex only on series appends and registry misses), and
// the hot-path cost of an increment or observation is a handful of
// atomic adds — cheap enough to leave enabled inside the discrete-event
// engine's message loop. Call sites that fire per simulated message
// cache the metric pointer instead of going through the registry map
// each time; the registry's get-or-create is for once-per-round and
// setup paths.
//
// Instrumented layers and their name prefixes:
//
//	msg.<kind>.{count,cost}   sim.Engine per-message-kind accounting
//	sim.queue.depth           event-queue depth at schedule time
//	chord.lookup.{hops,latency}
//	core.phase.*, core.pairs.*, core.moved_load, core.subset.cost
//	protocol.phase.*, protocol.{timeouts,aborted_transfers}
//	daemon.gini.{before,after} (series over virtual time)
//
// Durations recorded by simulation code are in virtual-time units;
// wall-clock spans (cmd/lbbench) are in nanoseconds. The unit is part
// of the metric's contract, not encoded in the snapshot.
package metrics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use and safe for concurrent increments.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any sign; counters conventionally only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter accumulates a float64 total (moved load, shed load —
// quantities that are not integers). The zero value is ready to use;
// Add is lock-free (CAS on the bit pattern).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v.
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the accumulated total.
func (f *FloatCounter) Value() float64 {
	return math.Float64frombits(f.bits.Load())
}

// histBuckets is the fixed bucket count: bucket 0 holds observations
// <= 0, bucket i (1..64) holds observations in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed-size power-of-two-bucket histogram over int64
// observations (latencies, hop counts, queue depths). Observations are
// a few atomic adds; there is no allocation after creation. Create
// histograms through a Registry (or NewHistogram) — the zero value has
// an invalid min/max seed.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLo returns the inclusive lower bound of bucket i (math.MinInt64
// for bucket 0).
func BucketLo(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	return int64(1) << uint(i-1)
}

// BucketHi returns the exclusive upper bound of bucket i.
func BucketHi(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Point is one sample of a time series.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is an append-only time series (virtual time → value), used for
// slow-changing observables like the daemon's imbalance over time.
type Series struct {
	mu  sync.Mutex
	pts []Point
}

// Append records a point.
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	s.pts = append(s.pts, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns a copy of the recorded points.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.pts...)
}

// Clock supplies the current time for a Span, in whatever unit the
// caller measures (virtual-time units inside the simulator, nanoseconds
// for wall-clock benchmarking).
type Clock func() int64

// Span measures one phase: StartSpan captures the clock, End observes
// the elapsed duration into the histogram.
type Span struct {
	h     *Histogram
	clock Clock
	start int64
}

// StartSpan begins a span against h using clock.
func StartSpan(h *Histogram, clock Clock) Span {
	return Span{h: h, clock: clock, start: clock()}
}

// End observes the elapsed duration and returns it.
func (s Span) End() int64 {
	d := s.clock() - s.start
	s.h.Observe(d)
	return d
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and safe for concurrent use; each metric kind has its own namespace.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		floats:   make(map[string]*FloatCounter),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Float returns the named float counter, creating it on first use.
func (r *Registry) Float(name string) *FloatCounter {
	r.mu.RLock()
	f := r.floats[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.floats[name]; f == nil {
		f = &FloatCounter{}
		r.floats[name] = f
	}
	return f
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	r.mu.RLock()
	s := r.series[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[name]; s == nil {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Span starts a phase span against the named histogram.
func (r *Registry) Span(name string, clock Clock) Span {
	return StartSpan(r.Histogram(name), clock)
}

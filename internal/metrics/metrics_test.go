package metrics

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrement(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
			reg.Float("moved").Add(0.5)
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Float("moved").Value(); got != workers*0.5 {
		t.Errorf("float counter = %v, want %v", got, workers*0.5)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			h := reg.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}()
	}
	wg.Wait()
	h := reg.Histogram("lat")
	n := int64(workers * perWorker)
	if h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
	if want := n * (n - 1) / 2; h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
	snap := reg.Snapshot().Histograms["lat"]
	if snap.Min != 0 || snap.Max != n-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", snap.Min, snap.Max, n-1)
	}
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != n {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{-3, 0, 1, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	snap := snapshotHistogram(h)
	want := map[int64]int64{math.MinInt64: 2, 1: 2, 2: 2, 4: 1, 512: 1}
	got := map[int64]int64{}
	for _, b := range snap.Buckets {
		got[b.Lo] = b.Count
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %v, want %v", got, want)
	}
	if snap.Min != -3 || snap.Max != 1000 {
		t.Errorf("min/max = %d/%d", snap.Min, snap.Max)
	}
	// The 0.5 quantile must land in a populated bucket's range.
	if q := snap.Quantile(0.5); q < -3 || q > 1000 {
		t.Errorf("median %v out of observed range", q)
	}
}

func TestSpan(t *testing.T) {
	now := int64(100)
	clock := func() int64 { return now }
	reg := NewRegistry()
	sp := reg.Span("phase.vsa", clock)
	now = 350
	if d := sp.End(); d != 250 {
		t.Errorf("span duration = %d, want 250", d)
	}
	h := reg.Snapshot().Histograms["phase.vsa"]
	if h.Count != 1 || h.Sum != 250 {
		t.Errorf("histogram after span = %+v", h)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("msgs").Add(42)
	reg.Float("moved").Add(17.5)
	h := reg.Histogram("hops")
	for _, v := range []int64{1, 2, 3, 9, 80} {
		h.Observe(v)
	}
	reg.Series("gini").Append(10, 0.41)
	reg.Series("gini").Append(20, 0.12)

	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip mismatch:\n  out: %+v\n  in:  %+v", snap, back)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only-b").Add(1)
	a.Float("f").Add(1.5)
	b.Float("f").Add(2.5)
	for _, v := range []int64{1, 5} {
		a.Histogram("h").Observe(v)
	}
	for _, v := range []int64{5, 100} {
		b.Histogram("h").Observe(v)
	}
	a.Series("s").Append(2, 20)
	b.Series("s").Append(1, 10)

	snap := a.Snapshot()
	snap.Merge(b.Snapshot())
	if snap.Counters["c"] != 7 || snap.Counters["only-b"] != 1 {
		t.Errorf("merged counters = %v", snap.Counters)
	}
	if snap.Floats["f"] != 4.0 {
		t.Errorf("merged float = %v", snap.Floats["f"])
	}
	h := snap.Histograms["h"]
	if h.Count != 4 || h.Sum != 111 || h.Min != 1 || h.Max != 100 {
		t.Errorf("merged histogram = %+v", h)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i-1].Lo >= h.Buckets[i].Lo {
			t.Errorf("merged buckets not sorted: %+v", h.Buckets)
		}
	}
	s := snap.Series["s"]
	if len(s) != 2 || s[0].T != 1 || s[1].T != 2 {
		t.Errorf("merged series = %v", s)
	}
}

func TestSnapshotCSV(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("msgs").Add(5)
	reg.Histogram("hops").Observe(3)
	reg.Series("gini").Append(1, 0.5)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kind,name,field,value", "counter,msgs,value,5", "histogram,hops,count,1", "series,gini,1,0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestQuantileDegenerate(t *testing.T) {
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(7)
	}
	snap := snapshotHistogram(h)
	if q := snap.Quantile(0.99); q < 4 || q > 8 {
		t.Errorf("constant-sample quantile = %v, want ~7", q)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1 << 40, 41}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		b := bucketOf(c.v)
		if c.v > 0 && (c.v < BucketLo(b) || c.v >= BucketHi(b)) {
			t.Errorf("value %d outside bucket [%d,%d)", c.v, BucketLo(b), BucketHi(b))
		}
	}
}

package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample std of this classic set: variance = 32/7.
	if !almost(s.Std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 || s.Median != 3.5 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	// Must not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); !almost(g, 0, 1e-12) {
		t.Errorf("equal Gini = %v", g)
	}
	// One owner of everything among n → (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); !almost(g, 0.75, 1e-12) {
		t.Errorf("concentrated Gini = %v", g)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero Gini = %v", g)
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			xs = append(xs, float64(x))
		}
		g := Gini(xs)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedHistogram(t *testing.T) {
	var h WeightedHistogram
	h.Add(0, 10)
	h.Add(2, 30)
	h.Add(2, 10)
	h.Add(5, 50)
	if h.Total() != 100 {
		t.Fatalf("Total = %v", h.Total())
	}
	if h.MaxBucket() != 5 {
		t.Fatalf("MaxBucket = %d", h.MaxBucket())
	}
	if h.Weight(2) != 40 || h.Weight(1) != 0 || h.Weight(99) != 0 {
		t.Fatalf("Weight wrong: %v %v %v", h.Weight(2), h.Weight(1), h.Weight(99))
	}
	pdf := h.PDF()
	want := []float64{0.1, 0, 0.4, 0, 0, 0.5}
	for i := range want {
		if !almost(pdf[i], want[i], 1e-12) {
			t.Errorf("PDF[%d] = %v, want %v", i, pdf[i], want[i])
		}
	}
	cdf := h.CDF()
	wantCDF := []float64{0.1, 0.1, 0.5, 0.5, 0.5, 1.0}
	for i := range wantCDF {
		if !almost(cdf[i], wantCDF[i], 1e-12) {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], wantCDF[i])
		}
	}
	if !almost(h.FractionWithin(2), 0.5, 1e-12) {
		t.Errorf("FractionWithin(2) = %v", h.FractionWithin(2))
	}
	if !almost(h.FractionWithin(100), 1, 1e-12) {
		t.Errorf("FractionWithin(100) = %v", h.FractionWithin(100))
	}
}

func TestWeightedHistogramEmpty(t *testing.T) {
	var h WeightedHistogram
	if h.PDF() != nil || h.CDF() != nil {
		t.Error("empty histogram PDF/CDF should be nil")
	}
	if h.MaxBucket() != -1 {
		t.Errorf("empty MaxBucket = %d", h.MaxBucket())
	}
	if h.FractionWithin(3) != 0 {
		t.Error("empty FractionWithin should be 0")
	}
}

func TestWeightedHistogramMerge(t *testing.T) {
	var a, b WeightedHistogram
	a.Add(1, 5)
	b.Add(1, 5)
	b.Add(3, 10)
	a.Merge(&b)
	if a.Total() != 20 || a.Weight(1) != 10 || a.Weight(3) != 10 {
		t.Fatalf("merge wrong: total=%v w1=%v w3=%v", a.Total(), a.Weight(1), a.Weight(3))
	}
}

func TestWeightedHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	var h WeightedHistogram
	h.Add(-1, 1)
}

func TestHistogramCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h WeightedHistogram
	for i := 0; i < 1000; i++ {
		h.Add(rng.Intn(40), rng.Float64())
	}
	cdf := h.CDF()
	prev := 0.0
	for i, v := range cdf {
		if v+1e-12 < prev {
			t.Fatalf("CDF decreases at %d: %v < %v", i, v, prev)
		}
		prev = v
	}
	if !almost(cdf[len(cdf)-1], 1, 1e-9) {
		t.Fatalf("CDF final = %v", cdf[len(cdf)-1])
	}
}

func TestGroupedSum(t *testing.T) {
	g := NewGroupedSum()
	g.Add(10, 1)
	g.Add(1, 2)
	g.Add(10, 3)
	g.Add(100, 4)
	classes := g.Classes()
	if len(classes) != 3 || classes[0] != 1 || classes[1] != 10 || classes[2] != 100 {
		t.Fatalf("Classes = %v", classes)
	}
	if g.Sum(10) != 4 || g.Count(10) != 2 || !almost(g.Mean(10), 2, 1e-12) {
		t.Fatalf("class 10 stats wrong: %v %v %v", g.Sum(10), g.Count(10), g.Mean(10))
	}
	if g.Mean(555) != 0 || g.Count(555) != 0 {
		t.Error("unseen class should report zeros")
	}
}

func TestSortedVariantsMatchUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		want := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		got := SummarizeSorted(sorted)
		if got != want {
			t.Fatalf("SummarizeSorted = %+v, Summarize = %+v", got, want)
		}
		for _, p := range []float64{0, 1, 25, 50, 90, 99, 100} {
			if a, b := Percentile(xs, p), PercentileSorted(sorted, p); a != b {
				t.Fatalf("p%v: Percentile %v != PercentileSorted %v", p, a, b)
			}
		}
	}
}

func TestPercentileSortedDegenerate(t *testing.T) {
	if !math.IsNaN(PercentileSorted(nil, 50)) {
		t.Error("empty sample should be NaN")
	}
	if got := PercentileSorted([]float64{7}, 99); got != 7 {
		t.Errorf("single sample p99 = %v", got)
	}
	if s := SummarizeSorted(nil); s.N != 0 {
		t.Errorf("empty SummarizeSorted = %+v", s)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// Package stats implements the descriptive statistics the experiment
// harness reports: summaries (mean/stddev/percentiles), weighted
// histograms and CDFs over integer buckets (used for the moved-load
// versus hop-distance figures), grouped aggregation by class (used for
// the load-by-capacity figures), and load-imbalance metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample. It copies and sorts xs once; callers that already hold
// sorted data (or need several percentiles of the same sample) should
// sort once themselves and use SummarizeSorted/PercentileSorted.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return SummarizeSorted(sorted)
}

// SummarizeSorted computes a Summary of an ascending-sorted sample
// without copying or re-sorting it. xs is not modified.
func SummarizeSorted(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[len(xs)-1]}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = PercentileSorted(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It does not modify xs.
// It returns NaN for an empty sample. It copies and sorts xs on every
// call; use PercentileSorted on pre-sorted data to avoid the O(n log n)
// per query.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted returns the p-th percentile (0..100) of an
// ascending-sorted sample with linear interpolation, without copying or
// re-sorting. It returns NaN for an empty sample.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Gini returns the Gini coefficient of the non-negative sample xs:
// 0 for perfectly equal values, approaching 1 for maximal inequality.
// It returns 0 for empty samples or all-zero samples.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*cum)/(n*total) - (n+1)/n
}

// WeightedHistogram accumulates weights into integer buckets. Buckets grow
// on demand; bucket b collects the total weight of observations with
// integer coordinate b. It backs the "percentage of total moved load vs
// hop distance" plots: the coordinate is a hop count, the weight a load.
type WeightedHistogram struct {
	buckets []float64
	total   float64
}

// Add adds weight w at integer coordinate b (negative coordinates panic,
// hop distances are never negative).
func (h *WeightedHistogram) Add(b int, w float64) {
	if b < 0 {
		panic(fmt.Sprintf("stats: negative histogram bucket %d", b))
	}
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b] += w
	h.total += w
}

// Merge adds all of o's buckets into h.
func (h *WeightedHistogram) Merge(o *WeightedHistogram) {
	for b, w := range o.buckets {
		if w != 0 {
			h.Add(b, w)
		}
	}
}

// Total returns the total accumulated weight.
func (h *WeightedHistogram) Total() float64 { return h.total }

// MaxBucket returns the largest coordinate that has been touched, or -1
// if the histogram is empty.
func (h *WeightedHistogram) MaxBucket() int { return len(h.buckets) - 1 }

// Weight returns the raw weight in bucket b (0 if never touched).
func (h *WeightedHistogram) Weight(b int) float64 {
	if b < 0 || b >= len(h.buckets) {
		return 0
	}
	return h.buckets[b]
}

// PDF returns, per bucket 0..MaxBucket, the fraction of total weight in
// that bucket. It returns nil for an empty histogram.
func (h *WeightedHistogram) PDF() []float64 {
	if h.total == 0 {
		return nil
	}
	out := make([]float64, len(h.buckets))
	for i, w := range h.buckets {
		out[i] = w / h.total
	}
	return out
}

// CDF returns, per bucket b, the fraction of total weight at coordinates
// <= b. The final element is 1 (up to rounding). It returns nil for an
// empty histogram.
func (h *WeightedHistogram) CDF() []float64 {
	pdf := h.PDF()
	if pdf == nil {
		return nil
	}
	cum := 0.0
	out := make([]float64, len(pdf))
	for i, p := range pdf {
		cum += p
		out[i] = cum
	}
	return out
}

// FractionWithin returns the fraction of total weight at coordinates <= b.
func (h *WeightedHistogram) FractionWithin(b int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum float64
	for i := 0; i <= b && i < len(h.buckets); i++ {
		cum += h.buckets[i]
	}
	return cum / h.total
}

// GroupedSum aggregates (class → total value, count). It backs the
// load-by-capacity-class figures.
type GroupedSum struct {
	order []float64
	sums  map[float64]float64
	cnts  map[float64]int
}

// NewGroupedSum returns an empty GroupedSum.
func NewGroupedSum() *GroupedSum {
	return &GroupedSum{sums: make(map[float64]float64), cnts: make(map[float64]int)}
}

// Add records value v for class key.
func (g *GroupedSum) Add(key, v float64) {
	if _, ok := g.sums[key]; !ok {
		g.order = append(g.order, key)
	}
	g.sums[key] += v
	g.cnts[key]++
}

// Classes returns the class keys in ascending order.
func (g *GroupedSum) Classes() []float64 {
	out := make([]float64, len(g.order))
	copy(out, g.order)
	sort.Float64s(out)
	return out
}

// Sum returns the total value recorded for class key.
func (g *GroupedSum) Sum(key float64) float64 { return g.sums[key] }

// Count returns the number of observations for class key.
func (g *GroupedSum) Count(key float64) int { return g.cnts[key] }

// Mean returns the mean value for class key (0 if unseen).
func (g *GroupedSum) Mean(key float64) float64 {
	if g.cnts[key] == 0 {
		return 0
	}
	return g.sums[key] / float64(g.cnts[key])
}
